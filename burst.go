package fairbench

import (
	"fmt"

	"fairbench/internal/report"
	"fairbench/internal/rfc2544"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// Burst-sensitivity experiment (extension): RFC 2544's constant-rate
// offered load hides how systems behave under bursty arrivals. This
// experiment measures loss and tail latency at 70% of each system's
// zero-loss throughput under three arrival processes of identical mean
// rate — constant, Poisson, and two-state on/off bursts — for the
// baseline and SmartNIC firewalls. Accelerated fast paths with shallow
// buffers can look great at constant rate and degrade under bursts;
// reporting both is part of a fair evaluation.

// BurstPoint is one (system, arrival process) measurement.
type BurstPoint struct {
	System       string
	Arrival      string
	OfferedPps   float64
	LossFraction float64
	LatencyP99Us float64
}

// BurstResult is the experiment outcome.
type BurstResult struct {
	Points []BurstPoint
}

// RunBurstSensitivity measures both systems under all three processes.
func RunBurstSensitivity(o ExpOptions) (BurstResult, error) {
	o = o.withDefaults()
	gen := func() (*workload.Generator, error) { return testbed.E6Workload(o.Seed) }
	systems := []struct {
		name   string
		mk     rfc2544.DUTFactory
		maxPps float64
	}{
		{"fw-host-1core", func() (*testbed.Deployment, error) { return testbed.BaselineFirewall(1) }, 16e6},
		{"fw-smartnic", func() (*testbed.Deployment, error) { return testbed.SmartNICFirewall() }, 24e6},
	}
	arrivals := func() []workload.Arrival {
		return []workload.Arrival{workload.CBR{}, workload.Poisson{}, &workload.OnOff{}}
	}

	var res BurstResult
	for _, sys := range systems {
		cap, err := rfc2544.Throughput(sys.mk, gen, o.searchOpts(sys.maxPps))
		if err != nil {
			return res, fmt.Errorf("burst: measuring %s capacity: %w", sys.name, err)
		}
		if cap.Pps == 0 {
			return res, fmt.Errorf("burst: %s has no sustainable rate", sys.name)
		}
		load := cap.Pps * 0.7
		for _, arr := range arrivals() {
			d, err := sys.mk()
			if err != nil {
				return res, err
			}
			g, err := gen()
			if err != nil {
				return res, err
			}
			r, err := d.Run(g, arr, load, o.TrialSeconds)
			if err != nil {
				return res, err
			}
			res.Points = append(res.Points, BurstPoint{
				System:       sys.name,
				Arrival:      arr.Name(),
				OfferedPps:   load,
				LossFraction: r.LossFraction,
				LatencyP99Us: r.LatencyP99Us,
			})
		}
	}
	return res, nil
}

// BurstReport renders the experiment.
func BurstReport(r BurstResult) string {
	t := report.NewTable("Burst sensitivity at 70% load: arrival process vs loss and tail latency",
		"System", "Arrivals", "Offered (Mpps)", "Loss", "p99 (µs)")
	for _, p := range r.Points {
		t.AddRowf("%s|%s|%.2f|%.4f%%|%.2f",
			p.System, p.Arrival, p.OfferedPps/1e6, p.LossFraction*100, p.LatencyP99Us)
	}
	return t.Text()
}

// BurstLatencyChart renders p99 latency per arrival process.
func BurstLatencyChart(r BurstResult) *report.LineChart {
	bySystem := map[string][]report.XY{}
	var order []string
	for _, p := range r.Points {
		if _, ok := bySystem[p.System]; !ok {
			order = append(order, p.System)
		}
		bySystem[p.System] = append(bySystem[p.System], report.XY{
			X: float64(len(bySystem[p.System])), Y: p.LatencyP99Us,
		})
	}
	c := &report.LineChart{
		Title:  "p99 latency by arrival process (0=CBR, 1=Poisson, 2=on/off)",
		XLabel: "Arrival process",
		YLabel: "p99 latency (µs)",
	}
	for _, name := range order {
		c.Series = append(c.Series, report.Series{Name: name, Points: bySystem[name]})
	}
	return c
}
