package fairbench

import "testing"

// Byte-identity regression tests: every reporting artifact must come
// out byte-for-byte identical across in-process runs at the same seed.
// reflect.DeepEqual on result structs would miss formatting drift
// (map-ordered rows, %g jitter), so these compare the rendered bytes.

func TestOperatingCurveCSVByteIdentity(t *testing.T) {
	o := Quick()
	o.Seed = 7
	run := func() string {
		res, err := RunOperatingCurves(o)
		if err != nil {
			t.Fatal(err)
		}
		return OperatingCurveCSV(res)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("OperatingCurveCSV not byte-identical across runs at seed %d:\n--- first ---\n%s\n--- second ---\n%s", o.Seed, a, b)
	}
}

func TestBottleneckProfileArtifactsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("profiler saturation searches are slow; skipping in -short")
	}
	o := Quick()
	o.Seed = 7
	run := func() [4]string {
		bp, err := RunBottleneckProfile(o)
		if err != nil {
			t.Fatal(err)
		}
		return [4]string{
			BottleneckProfileReport(bp),
			BottleneckCostCSV(bp),
			BottleneckMapCSV(bp),
			BottleneckCostChart(bp).SVG(),
		}
	}
	a, b := run(), run()
	for i, name := range [4]string{"report", "cost CSV", "map CSV", "cost SVG"} {
		if a[i] != b[i] {
			t.Errorf("profiler %s not byte-identical across runs at seed %d:\n--- first ---\n%s\n--- second ---\n%s", name, o.Seed, a[i], b[i])
		}
	}
}
