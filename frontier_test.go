package fairbench

import (
	"strings"
	"testing"
)

func TestRunFrontier(t *testing.T) {
	res, err := RunFrontier(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 6 {
		t.Fatalf("systems = %d", len(res.Systems))
	}
	if len(res.Frontier)+len(res.Dominated) != len(res.Systems) {
		t.Error("frontier and dominated must partition the sweep")
	}
	if len(res.Frontier) == 0 || len(res.Dominated) == 0 {
		t.Errorf("frontier = %d, dominated = %d; both should be non-empty for this design space",
			len(res.Frontier), len(res.Dominated))
	}
	// Every dominated system has an explaining verdict with a winning
	// frontier member.
	if len(res.Verdicts) != len(res.Dominated) {
		t.Errorf("verdicts = %d, dominated = %d", len(res.Verdicts), len(res.Dominated))
	}
	for _, v := range res.Verdicts {
		if v.Direct != Dominates {
			t.Errorf("dominated-system verdict relation = %v", v.Direct)
		}
	}
	// The switch deployment burns 200 W on a workload with little
	// in-network-droppable traffic: it must not be on the frontier.
	for _, s := range res.Frontier {
		if s.Name == "fw-switch" {
			t.Error("fw-switch should be dominated under the E6 (20% attack) workload")
		}
	}
	// The one-core host is the cheapest point and must be on the
	// frontier.
	found := false
	for _, s := range res.Frontier {
		if s.Name == "fw-host-1core" {
			found = true
		}
	}
	if !found {
		t.Error("fw-host-1core (cheapest) should be on the frontier")
	}

	rep := FrontierReport(res)
	for _, frag := range []string{"On frontier", "✓", "✗", "Gb/s per W"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	svg := FrontierPlot(res).SVG()
	if !strings.Contains(svg, "fw-smartnic") || !strings.Contains(svg, "<circle") {
		t.Error("frontier plot incomplete")
	}
}

func TestFrontierDeterministic(t *testing.T) {
	a, err := RunFrontier(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFrontier(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Systems {
		if a.Systems[i] != b.Systems[i] {
			t.Fatalf("frontier sweep not deterministic at %d: %+v vs %+v",
				i, a.Systems[i], b.Systems[i])
		}
	}
}
