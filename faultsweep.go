package fairbench

import (
	"fmt"
	"sort"

	"fairbench/internal/core"
	"fairbench/internal/fault"
	"fairbench/internal/measure"
	"fairbench/internal/metric"
	"fairbench/internal/report"
	"fairbench/internal/runner"
	"fairbench/internal/stats"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// Fault sweep: fairness under failure. The paper's Principle 2 says
// systems must be compared in the same operating regime; a deployment's
// regimes include degraded ones. This experiment runs the §4.2 pair —
// the SmartNIC-accelerated firewall vs the 2-core host baseline — at a
// fixed offered load under every regime in the scenario catalogue
// (healthy, SmartNIC outage, core brownout, link loss, burst overload),
// and asks whether the healthy-regime Pareto verdict survives failure.

// faultSweepOfferedPps is the sweep's fixed offered load: just under
// the SmartNIC fast-path capacity, comfortably within the 2-core
// baseline, so healthy-regime differences come from the systems and
// degraded-regime differences come from the faults.
const faultSweepOfferedPps = 4e6

// FaultedMeasurement is one system's measured operating point under one
// fault regime, including the degraded-regime figures of merit.
type FaultedMeasurement struct {
	Name         string
	GoodputGbps  float64
	PowerWatts   float64
	LossFraction float64
	// Availability figures from the per-window meter.
	Availability          float64
	MinWindowAvailability float64
	DegradationDepth      float64
	RecoverySeconds       float64
}

// FaultSweepRow pairs the two systems' measurements under one regime.
// Proposed and Baseline are the nominal (median-goodput) trials; the
// trial slices and availability CIs are populated when the sweep was
// replicated (Trials >= 2).
type FaultSweepRow struct {
	Regime             testbed.FaultRegime
	Proposed, Baseline FaultedMeasurement
	// Per-trial replicates, in trial order (single-element when
	// unreplicated).
	ProposedTrials, BaselineTrials []FaultedMeasurement
	// Bootstrap confidence intervals of the availability medians
	// (zero-valued when unreplicated).
	ProposedAvailCI, BaselineAvailCI stats.Interval
}

// FaultSweepResult is the full sweep plus the cross-regime comparison.
type FaultSweepResult struct {
	OfferedPps float64
	Rows       []FaultSweepRow
	Comparison core.DegradedComparison
	// Robust attaches per-regime relation agreement under bootstrap
	// resampling when the sweep was replicated (Trials >= 2), else nil.
	Robust *core.RobustDegradedComparison
}

// runFaulted measures one deployment under one fault spec with the
// workload seeded for one trial. The fault schedule itself is part of
// the regime, so it does not vary across trials — only the traffic
// does.
func runFaulted(mk func() (*testbed.Deployment, error), o ExpOptions, spec fault.Spec, seed uint64) (FaultedMeasurement, error) {
	d, err := mk()
	if err != nil {
		return FaultedMeasurement{}, err
	}
	g, err := testbed.E6Workload(seed)
	if err != nil {
		return FaultedMeasurement{}, err
	}
	res, rep, err := d.RunWithFaults(g, workload.Poisson{}, faultSweepOfferedPps, o.TrialSeconds, spec)
	if err != nil {
		return FaultedMeasurement{}, err
	}
	m := FaultedMeasurement{
		Name:                  res.Name,
		GoodputGbps:           res.Processed.GbPerSecond(),
		PowerWatts:            res.ProvisionedPowerWatts,
		LossFraction:          res.LossFraction,
		Availability:          rep.Avail.Availability,
		MinWindowAvailability: rep.Avail.MinWindowAvailability,
		DegradationDepth:      rep.Avail.DegradationDepth,
		RecoverySeconds:       rep.Avail.RecoverySeconds,
	}
	for _, c := range []struct {
		what string
		v    float64
	}{{"goodput", m.GoodputGbps}, {"power", m.PowerWatts}, {"availability", m.Availability}} {
		if err := measure.CheckFinite(res.Name+" "+c.what, c.v); err != nil {
			return FaultedMeasurement{}, err
		}
	}
	return m, nil
}

// runFaultedTrials replicates runFaulted over o.Trials seeded trials
// and returns the replicates in trial order. Trials fan out over
// runner.Map when o.Jobs > 1; each trial builds its own deployment and
// generator, so results are independent of worker count and identical
// to a serial run.
func runFaultedTrials(mk func() (*testbed.Deployment, error), o ExpOptions, spec fault.Spec) ([]FaultedMeasurement, error) {
	k := o.Trials
	if k < 1 {
		k = 1
	}
	return runner.Map(o.Jobs, k, func(t int) (FaultedMeasurement, error) {
		seed := TrialSeed(o.Seed, t)
		m, err := runFaulted(mk, o, spec, seed)
		if err != nil {
			return FaultedMeasurement{}, fmt.Errorf("trial %d (seed %d): %w", t, seed, err)
		}
		return m, nil
	})
}

// nominalFaulted picks the median-goodput trial (stable sort,
// lower-middle element — the same rule replicated systems use).
func nominalFaulted(trials []FaultedMeasurement) FaultedMeasurement {
	idx := make([]int, len(trials))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return trials[idx[a]].GoodputGbps < trials[idx[b]].GoodputGbps
	})
	return trials[idx[(len(trials)-1)/2]]
}

// faultedSamples extracts paired (goodput, power) samples for the
// bootstrap, plus the availability samples.
func faultedSamples(trials []FaultedMeasurement) (pt core.PointSamples, avail []float64) {
	for _, m := range trials {
		pt.Perf = append(pt.Perf, m.GoodputGbps)
		pt.Cost = append(pt.Cost, m.PowerWatts)
		avail = append(avail, m.Availability)
	}
	return pt, avail
}

// RunFaultSweep measures both systems under every catalogue regime and
// compares them per regime (first regime = healthy reference). With
// Trials >= 2 each (system, regime) cell is replicated over
// independently seeded trials, availability medians carry bootstrap
// CIs, and the cross-regime comparison carries per-regime relation
// agreement.
func RunFaultSweep(o ExpOptions) (FaultSweepResult, error) {
	out := FaultSweepResult{OfferedPps: faultSweepOfferedPps}
	if err := o.Validate(); err != nil {
		return out, err
	}
	o = o.withDefaults()
	var pts []core.RegimePoint
	var rpts []core.ReplicatedRegimePoint
	for i, regime := range testbed.FaultSweepRegimes(o.TrialSeconds) {
		spec := fault.Spec{}
		if regime.Spec != "" {
			var err error
			spec, err = fault.ParseSpec(regime.Spec)
			if err != nil {
				return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
			}
		}
		propTrials, err := runFaultedTrials(func() (*testbed.Deployment, error) { return testbed.SmartNICFirewall() }, o, spec)
		if err != nil {
			return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
		}
		baseTrials, err := runFaultedTrials(func() (*testbed.Deployment, error) { return testbed.BaselineFirewall(2) }, o, spec)
		if err != nil {
			return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
		}
		row := FaultSweepRow{
			Regime:         regime,
			Proposed:       nominalFaulted(propTrials),
			Baseline:       nominalFaulted(baseTrials),
			ProposedTrials: propTrials,
			BaselineTrials: baseTrials,
		}
		propPt, propAvail := faultedSamples(propTrials)
		basePt, baseAvail := faultedSamples(baseTrials)
		if o.Trials >= 2 {
			// Independent resampling streams per (regime, system).
			if row.ProposedAvailCI, err = stats.MedianCI(propAvail, 200, o.CI, stats.MixSeed(o.Seed, uint64(2*i)+50)); err != nil {
				return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
			}
			if row.BaselineAvailCI, err = stats.MedianCI(baseAvail, 200, o.CI, stats.MixSeed(o.Seed, uint64(2*i)+51)); err != nil {
				return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
			}
		}
		out.Rows = append(out.Rows, row)
		pt := core.RegimePoint{
			Regime:   regime.Name,
			Proposed: core.Pt(metric.Q(row.Proposed.GoodputGbps, metric.GigabitPerSecond), metric.Q(row.Proposed.PowerWatts, metric.Watt)),
			Baseline: core.Pt(metric.Q(row.Baseline.GoodputGbps, metric.GigabitPerSecond), metric.Q(row.Baseline.PowerWatts, metric.Watt)),
		}
		pts = append(pts, pt)
		rpts = append(rpts, core.ReplicatedRegimePoint{
			RegimePoint:     pt,
			ProposedSamples: propPt,
			BaselineSamples: basePt,
		})
	}
	var err error
	out.Comparison, err = core.CompareUnderRegimes(core.DefaultPlane(), pts, core.DefaultTolerance)
	if err != nil {
		return out, fmt.Errorf("fault sweep: %w", err)
	}
	if o.Trials >= 2 {
		robust, err := core.CompareUnderRegimesReplicated(core.DefaultPlane(), rpts, core.DefaultTolerance,
			core.RobustOptions{Level: o.CI, Seed: o.Seed})
		if err != nil {
			return out, fmt.Errorf("fault sweep: %w", err)
		}
		out.Robust = &robust
	}
	return out, nil
}

// FaultSweepReport renders the sweep: per-regime measurements, the
// per-regime verdicts, and the stability conclusion.
func FaultSweepReport(r FaultSweepResult) string {
	t := report.NewTable(
		fmt.Sprintf("Fairness under failure: fw-smartnic vs fw-host-2core at %.1f Mpps offered", r.OfferedPps/1e6),
		"Regime", "System", "Goodput (Gb/s)", "Power (W)", "Loss", "Availability", "Depth", "Recovery (ms)")
	for _, row := range r.Rows {
		for _, m := range []FaultedMeasurement{row.Proposed, row.Baseline} {
			t.AddRowf("%s|%s|%.2f|%.0f|%.4f|%.4f|%.4f|%.2f",
				row.Regime.Name, m.Name, m.GoodputGbps, m.PowerWatts,
				m.LossFraction, m.Availability, m.DegradationDepth, m.RecoverySeconds*1e3)
		}
	}
	vt := report.NewTable("Per-regime verdicts (reference: "+r.Comparison.Verdicts[0].Regime+")",
		"Regime", "Relation", "Region class", "Agreement", "Fault spec")
	for i, v := range r.Comparison.Verdicts {
		spec := r.Rows[i].Regime.Spec
		if spec == "" {
			spec = "(none)"
		}
		agreement := "-"
		if r.Robust != nil && i < len(r.Robust.Confidence) {
			agreement = fmt.Sprintf("%.0f%%", r.Robust.Confidence[i].Agreement*100)
		}
		vt.AddRowf("%s|proposed %s baseline|%s|%s|%s", v.Regime, v.Relation, v.Class, agreement, spec)
	}
	out := t.Text() + "\n"
	if r.Robust != nil {
		at := report.NewTable("Availability medians with bootstrap CIs (replicated sweep)",
			"Regime", "System", "Availability CI")
		for _, row := range r.Rows {
			at.AddRowf("%s|%s|%s", row.Regime.Name, row.Proposed.Name, row.ProposedAvailCI)
			at.AddRowf("%s|%s|%s", row.Regime.Name, row.Baseline.Name, row.BaselineAvailCI)
		}
		out += at.Text() + "\n" + vt.Text() + "\n" + r.Robust.Summary() + "\n"
		return out
	}
	return out + vt.Text() + "\n" + r.Comparison.Summary() + "\n"
}

// FaultSweepCSV renders the sweep data for plotting.
func FaultSweepCSV(r FaultSweepResult) string {
	t := report.NewTable("", "regime", "system", "goodput_gbps", "power_w", "loss_fraction",
		"availability", "min_window_availability", "degradation_depth", "recovery_ms", "relation")
	for i, row := range r.Rows {
		rel := r.Comparison.Verdicts[i].Relation
		for _, m := range []FaultedMeasurement{row.Proposed, row.Baseline} {
			t.AddRowf("%s|%s|%.4f|%.1f|%.6f|%.6f|%.6f|%.6f|%.4f|%s",
				row.Regime.Name, m.Name, m.GoodputGbps, m.PowerWatts, m.LossFraction,
				m.Availability, m.MinWindowAvailability, m.DegradationDepth, m.RecoverySeconds*1e3, rel)
		}
	}
	return t.CSV()
}
