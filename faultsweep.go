package fairbench

import (
	"fmt"

	"fairbench/internal/core"
	"fairbench/internal/fault"
	"fairbench/internal/measure"
	"fairbench/internal/metric"
	"fairbench/internal/report"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// Fault sweep: fairness under failure. The paper's Principle 2 says
// systems must be compared in the same operating regime; a deployment's
// regimes include degraded ones. This experiment runs the §4.2 pair —
// the SmartNIC-accelerated firewall vs the 2-core host baseline — at a
// fixed offered load under every regime in the scenario catalogue
// (healthy, SmartNIC outage, core brownout, link loss, burst overload),
// and asks whether the healthy-regime Pareto verdict survives failure.

// faultSweepOfferedPps is the sweep's fixed offered load: just under
// the SmartNIC fast-path capacity, comfortably within the 2-core
// baseline, so healthy-regime differences come from the systems and
// degraded-regime differences come from the faults.
const faultSweepOfferedPps = 4e6

// FaultedMeasurement is one system's measured operating point under one
// fault regime, including the degraded-regime figures of merit.
type FaultedMeasurement struct {
	Name         string
	GoodputGbps  float64
	PowerWatts   float64
	LossFraction float64
	// Availability figures from the per-window meter.
	Availability          float64
	MinWindowAvailability float64
	DegradationDepth      float64
	RecoverySeconds       float64
}

// FaultSweepRow pairs the two systems' measurements under one regime.
type FaultSweepRow struct {
	Regime             testbed.FaultRegime
	Proposed, Baseline FaultedMeasurement
}

// FaultSweepResult is the full sweep plus the cross-regime comparison.
type FaultSweepResult struct {
	OfferedPps float64
	Rows       []FaultSweepRow
	Comparison core.DegradedComparison
}

// runFaulted measures one deployment under one fault spec.
func runFaulted(mk func() (*testbed.Deployment, error), o ExpOptions, spec fault.Spec) (FaultedMeasurement, error) {
	d, err := mk()
	if err != nil {
		return FaultedMeasurement{}, err
	}
	g, err := testbed.E6Workload(o.Seed)
	if err != nil {
		return FaultedMeasurement{}, err
	}
	res, rep, err := d.RunWithFaults(g, workload.Poisson{}, faultSweepOfferedPps, o.TrialSeconds, spec)
	if err != nil {
		return FaultedMeasurement{}, err
	}
	m := FaultedMeasurement{
		Name:                  res.Name,
		GoodputGbps:           res.Processed.GbPerSecond(),
		PowerWatts:            res.ProvisionedPowerWatts,
		LossFraction:          res.LossFraction,
		Availability:          rep.Avail.Availability,
		MinWindowAvailability: rep.Avail.MinWindowAvailability,
		DegradationDepth:      rep.Avail.DegradationDepth,
		RecoverySeconds:       rep.Avail.RecoverySeconds,
	}
	for _, c := range []struct {
		what string
		v    float64
	}{{"goodput", m.GoodputGbps}, {"power", m.PowerWatts}, {"availability", m.Availability}} {
		if err := measure.CheckFinite(res.Name+" "+c.what, c.v); err != nil {
			return FaultedMeasurement{}, err
		}
	}
	return m, nil
}

// RunFaultSweep measures both systems under every catalogue regime and
// compares them per regime (first regime = healthy reference).
func RunFaultSweep(o ExpOptions) (FaultSweepResult, error) {
	o = o.withDefaults()
	out := FaultSweepResult{OfferedPps: faultSweepOfferedPps}
	var pts []core.RegimePoint
	for _, regime := range testbed.FaultSweepRegimes(o.TrialSeconds) {
		spec := fault.Spec{}
		if regime.Spec != "" {
			var err error
			spec, err = fault.ParseSpec(regime.Spec)
			if err != nil {
				return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
			}
		}
		prop, err := runFaulted(func() (*testbed.Deployment, error) { return testbed.SmartNICFirewall() }, o, spec)
		if err != nil {
			return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
		}
		base, err := runFaulted(func() (*testbed.Deployment, error) { return testbed.BaselineFirewall(2) }, o, spec)
		if err != nil {
			return out, fmt.Errorf("fault sweep: regime %s: %w", regime.Name, err)
		}
		out.Rows = append(out.Rows, FaultSweepRow{Regime: regime, Proposed: prop, Baseline: base})
		pts = append(pts, core.RegimePoint{
			Regime:   regime.Name,
			Proposed: core.Pt(metric.Q(prop.GoodputGbps, metric.GigabitPerSecond), metric.Q(prop.PowerWatts, metric.Watt)),
			Baseline: core.Pt(metric.Q(base.GoodputGbps, metric.GigabitPerSecond), metric.Q(base.PowerWatts, metric.Watt)),
		})
	}
	var err error
	out.Comparison, err = core.CompareUnderRegimes(core.DefaultPlane(), pts, core.DefaultTolerance)
	if err != nil {
		return out, fmt.Errorf("fault sweep: %w", err)
	}
	return out, nil
}

// FaultSweepReport renders the sweep: per-regime measurements, the
// per-regime verdicts, and the stability conclusion.
func FaultSweepReport(r FaultSweepResult) string {
	t := report.NewTable(
		fmt.Sprintf("Fairness under failure: fw-smartnic vs fw-host-2core at %.1f Mpps offered", r.OfferedPps/1e6),
		"Regime", "System", "Goodput (Gb/s)", "Power (W)", "Loss", "Availability", "Depth", "Recovery (ms)")
	for _, row := range r.Rows {
		for _, m := range []FaultedMeasurement{row.Proposed, row.Baseline} {
			t.AddRowf("%s|%s|%.2f|%.0f|%.4f|%.4f|%.4f|%.2f",
				row.Regime.Name, m.Name, m.GoodputGbps, m.PowerWatts,
				m.LossFraction, m.Availability, m.DegradationDepth, m.RecoverySeconds*1e3)
		}
	}
	vt := report.NewTable("Per-regime verdicts (reference: "+r.Comparison.Verdicts[0].Regime+")",
		"Regime", "Relation", "Region class", "Fault spec")
	for i, v := range r.Comparison.Verdicts {
		t := r.Rows[i].Regime.Spec
		if t == "" {
			t = "(none)"
		}
		vt.AddRowf("%s|proposed %s baseline|%s|%s", v.Regime, v.Relation, v.Class, t)
	}
	return t.Text() + "\n" + vt.Text() + "\n" + r.Comparison.Summary() + "\n"
}

// FaultSweepCSV renders the sweep data for plotting.
func FaultSweepCSV(r FaultSweepResult) string {
	t := report.NewTable("", "regime", "system", "goodput_gbps", "power_w", "loss_fraction",
		"availability", "min_window_availability", "degradation_depth", "recovery_ms", "relation")
	for i, row := range r.Rows {
		rel := r.Comparison.Verdicts[i].Relation
		for _, m := range []FaultedMeasurement{row.Proposed, row.Baseline} {
			t.AddRowf("%s|%s|%.4f|%.1f|%.6f|%.6f|%.6f|%.6f|%.4f|%s",
				row.Regime.Name, m.Name, m.GoodputGbps, m.PowerWatts, m.LossFraction,
				m.Availability, m.MinWindowAvailability, m.DegradationDepth, m.RecoverySeconds*1e3, rel)
		}
	}
	return t.CSV()
}
