package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunQuickGeneratesAllArtifactsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration is slow")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", dir, "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1.txt", "table1.md", "table1.csv", "scorecard.txt",
		"figure1a.svg", "figure1b.svg", "figure1.txt",
		"figure2.svg", "figure2.csv", "figure2.txt", "figure3.svg",
		"example-smartnic.txt", "example-smartnic-robust.md",
		"example-switch.txt", "example-latency.txt",
		"pitfalls.txt", "rfc2544.txt", "rfc2544-loss.csv",
		"rfc2544-latency.csv", "rfc2544-loss.svg", "rfc2544-latency.svg",
		"burst.txt", "burst-latency.svg", "ablation-stateful.txt",
		"operating-curves.txt", "operating-curves.csv",
		"fault-sweep.txt", "fault-sweep.csv", "sensitivity.txt",
		"frontier.txt", "frontier.svg", "pricing-release.json",
		"manifest.json",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "artifacts in") {
		t.Errorf("summary line missing:\n%s", out.String())
	}
	robust, err := os.ReadFile(filepath.Join(dir, "example-smartnic-robust.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"confidence", "resamples", "bootstrap CIs"} {
		if !strings.Contains(string(robust), frag) {
			t.Errorf("robust artifact missing %q", frag)
		}
	}

	// Resume smoke: delete one artifact, re-run with -resume, and only
	// the owning experiment regenerates — every other artifact keeps
	// its mtime.
	mtimes := map[string]time.Time{}
	for _, name := range want {
		if info, err := os.Stat(filepath.Join(dir, name)); err == nil {
			mtimes[name] = info.ModTime()
		}
	}
	if err := os.Remove(filepath.Join(dir, "pitfalls.txt")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-out", dir, "-quick", "-resume"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "pitfalls.txt")); err != nil {
		t.Errorf("deleted artifact not regenerated: %v", err)
	}
	for _, name := range want {
		if name == "pitfalls.txt" || name == "manifest.json" {
			continue
		}
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("artifact %s lost on resume: %v", name, err)
			continue
		}
		if !info.ModTime().Equal(mtimes[name]) {
			t.Errorf("artifact %s was rewritten on resume", name)
		}
	}
	if !strings.Contains(out.String(), "skip") {
		t.Errorf("resume run should report skipped experiments:\n%s", out.String())
	}

	// Resuming under different options refuses to mix artifacts.
	if err := run([]string{"-out", dir, "-quick", "-resume", "-seed", "2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch on resume: err = %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp-timeout", "-1s"}, &out); err == nil {
		t.Error("negative -exp-timeout should fail")
	}
	if err := run([]string{"-trials", "-2"}, &out); err == nil {
		t.Error("negative -trials should fail")
	}
	if err := run([]string{"-retries", "-1"}, &out); err == nil {
		t.Error("negative -retries should fail")
	}
}

func TestRunBadOutputDir(t *testing.T) {
	var out bytes.Buffer
	// A file path where a directory is required: fails before any
	// experiment runs.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", f, "-quick"}, &out); err == nil {
		t.Error("output path collision should fail")
	}
}
