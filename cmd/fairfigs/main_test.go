package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fairbench"
	"fairbench/internal/telemetry"
)

func TestRunQuickGeneratesAllArtifactsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration is slow")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", dir, "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1.txt", "table1.md", "table1.csv", "scorecard.txt",
		"figure1a.svg", "figure1b.svg", "figure1.txt",
		"figure2.svg", "figure2.csv", "figure2.txt", "figure3.svg",
		"example-smartnic.txt", "example-smartnic-robust.md",
		"example-switch.txt", "example-latency.txt",
		"pitfalls.txt", "rfc2544.txt", "rfc2544-loss.csv",
		"rfc2544-latency.csv", "rfc2544-loss.svg", "rfc2544-latency.svg",
		"burst.txt", "burst-latency.svg", "ablation-stateful.txt",
		"operating-curves.txt", "operating-curves.csv",
		"fault-sweep.txt", "fault-sweep.csv", "sensitivity.txt",
		"state-pressure.txt", "state-pressure.csv",
		"state-pressure-curves.csv", "state-pressure-flipmap.csv",
		"frontier.txt", "frontier.svg", "pricing-release.json",
		"manifest.json",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "artifacts in") {
		t.Errorf("summary line missing:\n%s", out.String())
	}
	robust, err := os.ReadFile(filepath.Join(dir, "example-smartnic-robust.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"confidence", "resamples", "bootstrap CIs"} {
		if !strings.Contains(string(robust), frag) {
			t.Errorf("robust artifact missing %q", frag)
		}
	}

	// Resume smoke: delete one artifact, re-run with -resume, and only
	// the owning experiment regenerates — every other artifact keeps
	// its mtime.
	mtimes := map[string]time.Time{}
	for _, name := range want {
		if info, err := os.Stat(filepath.Join(dir, name)); err == nil {
			mtimes[name] = info.ModTime()
		}
	}
	if err := os.Remove(filepath.Join(dir, "pitfalls.txt")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-out", dir, "-quick", "-resume"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "pitfalls.txt")); err != nil {
		t.Errorf("deleted artifact not regenerated: %v", err)
	}
	for _, name := range want {
		if name == "pitfalls.txt" || name == "manifest.json" {
			continue
		}
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("artifact %s lost on resume: %v", name, err)
			continue
		}
		if !info.ModTime().Equal(mtimes[name]) {
			t.Errorf("artifact %s was rewritten on resume", name)
		}
	}
	if !strings.Contains(out.String(), "skip") {
		t.Errorf("resume run should report skipped experiments:\n%s", out.String())
	}

	// Resuming under different options refuses to mix artifacts.
	if err := run([]string{"-out", dir, "-quick", "-resume", "-seed", "2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch on resume: err = %v", err)
	}
}

// TestParallelRunMatchesSerialBytes is the command-level acceptance
// check: the same quick sweep at -jobs=1 (bare) and -jobs=8 (with
// telemetry and pprof capture attached) produces byte-identical
// artifact directories. The journal and the telemetry files are
// excluded — both record wall-clock execution history and are
// documented as not being determinism surfaces. Running the parallel
// leg fully observed is the meta-test that attaching the observability
// layer cannot change a single output byte.
func TestParallelRunMatchesSerialBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("two full artifact regenerations are slow")
	}
	serialDir, parallelDir := t.TempDir(), t.TempDir()
	pprofDir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", serialDir, "-quick", "-jobs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-out", parallelDir, "-quick", "-jobs", "8",
		"-telemetry", "-pprof-dir", pprofDir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(serialDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("suspiciously few artifacts: %d", len(entries))
	}
	for _, e := range entries {
		if e.Name() == "journal.jsonl" || telemetry.IsTelemetryFile(e.Name()) {
			continue
		}
		want, err := os.ReadFile(filepath.Join(serialDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(parallelDir, e.Name()))
		if err != nil {
			t.Errorf("artifact %s missing from parallel run: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("artifact %s differs between -jobs=1 and -jobs=8", e.Name())
		}
	}

	// The observed run produced its telemetry artifacts and profiles
	// beside (not inside) the deterministic surface.
	for _, name := range []string{telemetry.FileName, telemetry.SummaryName, telemetry.GanttName} {
		info, err := os.Stat(filepath.Join(parallelDir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("telemetry artifact %s: %v", name, err)
		}
	}
	for _, name := range []string{telemetry.CPUProfileName, telemetry.HeapProfileName} {
		info, err := os.Stat(filepath.Join(pprofDir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("profile %s: %v", name, err)
		}
	}
	got := out.String()
	for _, frag := range []string{"slowest cells:", "pool utilization"} {
		if !strings.Contains(got, frag) {
			t.Errorf("observed-run summary missing %q:\n%s", frag, got)
		}
	}
}

// TestFingerprintExcludesJobs is the regression guard on the resume
// contract: the run fingerprint must not encode -jobs (or any other
// knob that cannot change the bytes), so a serial run can be resumed
// in parallel and vice versa.
func TestFingerprintExcludesJobs(t *testing.T) {
	opts := fairbench.ExpOptions{TrialSeconds: 0.02, Seed: 1, Trials: 3}
	fp := fingerprintFor(opts, false)
	if strings.Contains(fp, "jobs") {
		t.Fatalf("fingerprint %q encodes jobs; serial and parallel runs could not share a resume", fp)
	}
	// The knobs that DO change bytes must all be present.
	for _, frag := range []string{"trial=0.02", "seed=1", "trials=3", "quick=false"} {
		if !strings.Contains(fp, frag) {
			t.Errorf("fingerprint %q missing %q", fp, frag)
		}
	}
	// And it must react to each of them.
	for _, changed := range []string{
		fingerprintFor(fairbench.ExpOptions{TrialSeconds: 0.01, Seed: 1, Trials: 3}, false),
		fingerprintFor(fairbench.ExpOptions{TrialSeconds: 0.02, Seed: 2, Trials: 3}, false),
		fingerprintFor(fairbench.ExpOptions{TrialSeconds: 0.02, Seed: 1, Trials: 4}, false),
		fingerprintFor(opts, true),
	} {
		if changed == fp {
			t.Errorf("fingerprint did not change with a byte-affecting option: %q", fp)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp-timeout", "-1s"}, &out); err == nil {
		t.Error("negative -exp-timeout should fail")
	}
	if err := run([]string{"-run-timeout", "-1s"}, &out); err == nil {
		t.Error("negative -run-timeout should fail")
	}
	if err := run([]string{"-trials", "-2"}, &out); err == nil {
		t.Error("negative -trials should fail")
	}
	if err := run([]string{"-retries", "-1"}, &out); err == nil {
		t.Error("negative -retries should fail")
	}
}

func TestRunBadOutputDir(t *testing.T) {
	var out bytes.Buffer
	// A file path where a directory is required: fails before any
	// experiment runs.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", f, "-quick"}, &out); err == nil {
		t.Error("output path collision should fail")
	}
}
