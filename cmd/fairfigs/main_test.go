package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickGeneratesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration is slow")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", dir, "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1.txt", "table1.md", "table1.csv", "scorecard.txt",
		"figure1a.svg", "figure1b.svg", "figure1.txt",
		"figure2.svg", "figure2.csv", "figure2.txt", "figure3.svg",
		"example-smartnic.txt", "example-switch.txt", "example-latency.txt",
		"pitfalls.txt", "rfc2544.txt", "rfc2544-loss.csv",
		"rfc2544-latency.csv", "rfc2544-loss.svg", "rfc2544-latency.svg",
		"burst.txt", "burst-latency.svg", "ablation-stateful.txt",
		"operating-curves.txt", "operating-curves.csv",
		"fault-sweep.txt", "fault-sweep.csv", "sensitivity.txt",
		"frontier.txt", "frontier.svg", "pricing-release.json",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "artifacts in") {
		t.Errorf("summary line missing:\n%s", out.String())
	}
}

func TestRunBadOutputDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline before failing on the directory")
	}
	var out bytes.Buffer
	// A file path where a directory is required.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", f, "-quick"}, &out); err == nil {
		t.Error("output path collision should fail")
	}
}
