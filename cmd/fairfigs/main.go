// Command fairfigs regenerates every table and figure of the paper —
// Table 1, Figures 1-3, the three worked examples (§4.2, §4.2.1, §4.3),
// the pitfall demonstrations, the RFC 2544 measurement suite, and the
// §3.1 pricing-model release — into an output directory.
//
// Usage:
//
//	fairfigs [-out DIR] [-trial SECONDS] [-seed N] [-quick]
//
// Outputs are deterministic for a given seed and trial length, so the
// directory is diffable across runs and machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fairbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fairfigs:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fairfigs", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory")
	trial := fs.Float64("trial", 0.02, "simulated seconds per measurement trial")
	seed := fs.Uint64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "reduced fidelity (shorter trials, coarser search)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := fairbench.ExpOptions{TrialSeconds: *trial, Seed: *seed}
	if *quick {
		opts = fairbench.Quick()
		opts.Seed = *seed
	}

	start := time.Now()
	artifacts, err := fairbench.RenderAll(opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, a := range artifacts {
		path := filepath.Join(*outDir, a.Name)
		if err := os.WriteFile(path, a.Body, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", path, len(a.Body))
	}
	fmt.Fprintf(stdout, "%d artifacts in %v\n", len(artifacts), time.Since(start).Round(time.Millisecond))
	return nil
}
