// Command fairfigs regenerates every table and figure of the paper —
// Table 1, Figures 1-3, the three worked examples (§4.2, §4.2.1, §4.3),
// the pitfall demonstrations, the RFC 2544 measurement suite, the
// replicated robust-verdict example, and the §3.1 pricing-model release
// — into an output directory.
//
// Usage:
//
//	fairfigs [-out DIR] [-trial SECONDS] [-seed N] [-quick]
//	         [-trials K] [-jobs N] [-resume] [-exp-timeout DURATION]
//	         [-run-timeout DURATION] [-telemetry] [-pprof-dir DIR]
//
// The sweep runs through a fault-tolerant parallel runner: experiments
// fan out across a bounded worker pool (-jobs; 0 = one worker per
// core), each one panic-isolated and deadline-bounded, artifacts are
// written atomically (a killed run never leaves a truncated file), and
// completed experiments land in an fsync'd journal that lets -resume
// skip exactly the work already done. Results are merged in experiment
// order, so for a given seed, trial length and trial count the output
// directory is byte-identical at any -jobs value — diffable across
// runs, machines and parallelism levels.
//
// With -telemetry, the sweep additionally streams wall-clock telemetry
// (cell spans, retries, pool samples) to telemetry.jsonl in -out and
// renders a run summary and cell-execution Gantt chart beside it; with
// -pprof-dir, CPU and heap profiles bracket the sweep. Neither changes
// a single artifact byte — telemetry files sit outside the
// byte-identity surface, exactly like the journal.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fairbench"
	"fairbench/internal/measure"
	"fairbench/internal/runner"
	"fairbench/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fairfigs:", err)
		os.Exit(1)
	}
}

// fingerprintFor ties a journal/manifest to the option set that
// produced its artifacts; -resume refuses to mix fingerprints. By
// contract the fingerprint must not encode -jobs (or any other
// execution knob that cannot change the bytes): a serial run may be
// resumed in parallel and vice versa.
func fingerprintFor(opts fairbench.ExpOptions, quick bool) string {
	return fmt.Sprintf("v1 trial=%g seed=%d trials=%d quick=%t",
		opts.TrialSeconds, opts.Seed, opts.Trials, quick)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fairfigs", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory")
	trial := fs.Float64("trial", 0.02, "simulated seconds per measurement trial")
	seed := fs.Uint64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "reduced fidelity (shorter trials, coarser search)")
	trials := fs.Int("trials", 1, "independently seeded replicate measurements per system")
	jobs := fs.Int("jobs", 0, "experiments run concurrently (0 = one per core; output is identical at any value)")
	resume := fs.Bool("resume", false, "skip experiments whose artifacts are already intact in -out")
	expTimeout := fs.Duration("exp-timeout", 0, "per-experiment wall-clock deadline (0 = none)")
	runTimeout := fs.Duration("run-timeout", 0, "whole-run wall-clock deadline (0 = none; cut-off experiments resume later)")
	retries := fs.Int("retries", 1, "extra attempts (with a fresh seed) after a non-finite measurement")
	telemetryOn := fs.Bool("telemetry", false, "stream wall-clock telemetry to telemetry.jsonl in -out and render summary + Gantt")
	pprofDir := fs.String("pprof-dir", "", "write CPU and heap profiles bracketing the sweep into this directory")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expTimeout < 0 {
		return fmt.Errorf("-exp-timeout must be >= 0, got %v", *expTimeout)
	}
	if *runTimeout < 0 {
		return fmt.Errorf("-run-timeout must be >= 0, got %v", *runTimeout)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}

	opts := fairbench.ExpOptions{TrialSeconds: *trial, Seed: *seed, Trials: *trials}
	if *quick {
		opts = fairbench.Quick()
		opts.Seed = *seed
		opts.Trials = *trials
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	fingerprint := fingerprintFor(opts, *quick)

	var exps []runner.Experiment
	for _, spec := range fairbench.Experiments() {
		spec := spec
		exps = append(exps, runner.Experiment{
			Name: spec.Name,
			Run: func(attempt int) ([]runner.Artifact, error) {
				o := opts
				if attempt > 0 {
					// A non-finite measurement poisoned the previous
					// attempt: derive a fresh seed far from the
					// per-trial seed sequence.
					o.Seed = fairbench.TrialSeed(o.Seed, 1<<20+attempt)
				}
				arts, err := spec.Render(o)
				if err != nil {
					return nil, err
				}
				out := make([]runner.Artifact, len(arts))
				for i, a := range arts {
					out[i] = runner.Artifact{Name: a.Name, Body: a.Body}
				}
				return out, nil
			},
		})
	}

	normJobs := runner.NormalizeJobs(*jobs)

	// Observability taps: both are read-only and sit outside the
	// byte-identity surface — attaching them cannot change an artifact.
	var observer runner.Observer
	var rec *telemetry.Recorder
	stopSampler := func() {}
	if *telemetryOn {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		r, cerr := telemetry.Create(filepath.Join(*outDir, telemetry.FileName), telemetry.Options{
			Label:       "fairfigs sweep",
			Fingerprint: fingerprint,
			Jobs:        normJobs,
			Cells:       len(exps),
		})
		if cerr != nil {
			return cerr
		}
		rec = r
		observer = rec.RunnerObserver()
		stop := rec.StartSampler(0)
		stopped := false
		stopSampler = func() {
			if !stopped {
				stopped = true
				stop()
			}
		}
		defer stopSampler()
	}
	if *pprofDir != "" {
		stopProfiles, err := telemetry.CaptureProfiles(*pprofDir)
		if err != nil {
			return err
		}
		defer func() {
			if perr := stopProfiles(); perr != nil {
				fmt.Fprintln(stdout, "pprof:", perr)
			}
		}()
	}

	start := time.Now() //fairlint:allow wallclock operator progress reporting, never enters artifacts
	res, err := runner.Run(exps, runner.Options{
		OutDir:      *outDir,
		Jobs:        normJobs,
		Timeout:     *expTimeout,
		RunTimeout:  *runTimeout,
		Retries:     *retries,
		ShouldRetry: func(err error) bool { return errors.Is(err, measure.ErrNonFinite) },
		Backoff:     runner.BackoffConfig{Base: 50 * time.Millisecond},
		Resume:      *resume,
		Fingerprint: fingerprint,
		Log:         stdout,
		Observer:    observer,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond) //fairlint:allow wallclock operator progress reporting, never enters artifacts
	fmt.Fprintf(stdout, "%d artifacts in %v (%d experiments run, %d skipped, %d quarantined, %d unfinished)\n",
		res.ArtifactsWritten, elapsed, res.Ran, res.Skipped, res.Quarantined, res.Unfinished)
	if slow := res.SlowestCells(3); len(slow) > 0 {
		parts := make([]string, len(slow))
		for i, cw := range slow {
			parts[i] = fmt.Sprintf("%s %.0f ms", cw.Experiment, cw.WallMS)
		}
		fmt.Fprintf(stdout, "slowest cells: %s\n", strings.Join(parts, ", "))
	}
	if rec != nil {
		stopSampler()
		// A telemetry write failure degrades observability, never the run.
		if terr := rec.Close(); terr != nil {
			fmt.Fprintln(stdout, "telemetry:", terr)
		} else if sum, terr := telemetry.WriteArtifacts(filepath.Join(*outDir, telemetry.FileName)); terr != nil {
			fmt.Fprintln(stdout, "telemetry:", terr)
		} else {
			fmt.Fprintf(stdout, "telemetry: %s, %s (pool utilization %.0f%%)\n",
				telemetry.SummaryName, telemetry.GanttName, sum.UtilizationPct)
		}
	}
	return res.Err()
}
