// Command fairfigs regenerates every table and figure of the paper —
// Table 1, Figures 1-3, the three worked examples (§4.2, §4.2.1, §4.3),
// the pitfall demonstrations, the RFC 2544 measurement suite, the
// replicated robust-verdict example, and the §3.1 pricing-model release
// — into an output directory.
//
// Usage:
//
//	fairfigs [-out DIR] [-trial SECONDS] [-seed N] [-quick]
//	         [-trials K] [-resume] [-exp-timeout DURATION]
//
// The sweep runs through a crash-safe runner: each experiment is
// panic-isolated and deadline-bounded, artifacts are written atomically
// (a killed run never leaves a truncated file), and a manifest
// checkpoint in the output directory lets -resume skip experiments
// whose artifacts are already intact. Outputs are deterministic for a
// given seed, trial length and trial count, so the directory is
// diffable across runs and machines.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fairbench"
	"fairbench/internal/measure"
	"fairbench/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fairfigs:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fairfigs", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory")
	trial := fs.Float64("trial", 0.02, "simulated seconds per measurement trial")
	seed := fs.Uint64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "reduced fidelity (shorter trials, coarser search)")
	trials := fs.Int("trials", 1, "independently seeded replicate measurements per system")
	resume := fs.Bool("resume", false, "skip experiments whose artifacts are already intact in -out")
	expTimeout := fs.Duration("exp-timeout", 0, "per-experiment wall-clock deadline (0 = none)")
	retries := fs.Int("retries", 1, "extra attempts (with a fresh seed) after a non-finite measurement")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expTimeout < 0 {
		return fmt.Errorf("-exp-timeout must be >= 0, got %v", *expTimeout)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}

	opts := fairbench.ExpOptions{TrialSeconds: *trial, Seed: *seed, Trials: *trials}
	if *quick {
		opts = fairbench.Quick()
		opts.Seed = *seed
		opts.Trials = *trials
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	// The fingerprint ties a manifest to the option set that produced
	// its artifacts; -resume refuses to mix fingerprints.
	fingerprint := fmt.Sprintf("v1 trial=%g seed=%d trials=%d quick=%t",
		opts.TrialSeconds, opts.Seed, opts.Trials, *quick)

	var exps []runner.Experiment
	for _, spec := range fairbench.Experiments() {
		spec := spec
		exps = append(exps, runner.Experiment{
			Name: spec.Name,
			Run: func(attempt int) ([]runner.Artifact, error) {
				o := opts
				if attempt > 0 {
					// A non-finite measurement poisoned the previous
					// attempt: derive a fresh seed far from the
					// per-trial seed sequence.
					o.Seed = fairbench.TrialSeed(o.Seed, 1<<20+attempt)
				}
				arts, err := spec.Render(o)
				if err != nil {
					return nil, err
				}
				out := make([]runner.Artifact, len(arts))
				for i, a := range arts {
					out[i] = runner.Artifact{Name: a.Name, Body: a.Body}
				}
				return out, nil
			},
		})
	}

	start := time.Now() //fairlint:allow wallclock operator progress reporting, never enters artifacts
	res, err := runner.Run(exps, runner.Options{
		OutDir:      *outDir,
		Timeout:     *expTimeout,
		Retries:     *retries,
		ShouldRetry: func(err error) bool { return errors.Is(err, measure.ErrNonFinite) },
		Resume:      *resume,
		Fingerprint: fingerprint,
		Log:         stdout,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d artifacts in %v (%d experiments run, %d skipped)\n",
		res.ArtifactsWritten, time.Since(start).Round(time.Millisecond), res.Ran, res.Skipped) //fairlint:allow wallclock operator progress reporting, never enters artifacts
	return res.Err()
}
