package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-dir", "testdata/clean", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, stderr: %s, stdout: %s", code, errBuf.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree produced output: %s", out.String())
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-dir", "testdata/dirty", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "seedprov") || !strings.Contains(out.String(), "bad.go:8") {
		t.Errorf("finding not reported with position: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "1 finding(s)") {
		t.Errorf("summary missing from stderr: %s", errBuf.String())
	}
}

func TestJSONOutputDeterministic(t *testing.T) {
	render := func() string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-json", "-dir", "testdata/dirty", "./..."}, &out, &errBuf); code != 1 {
			t.Fatalf("exit = %d (stderr: %s)", code, errBuf.String())
		}
		return out.String()
	}
	first := render()
	var findings []map[string]any
	if err := json.Unmarshal([]byte(first), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, first)
	}
	if len(findings) != 1 || findings[0]["rule"] != "seedprov" {
		t.Errorf("unexpected findings: %s", first)
	}
	if second := render(); second != first {
		t.Errorf("-json output not byte-identical\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

func TestUsageErrorExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage: fairvet") {
		t.Errorf("usage missing: %s", errBuf.String())
	}
}
