// A fairvet-clean fixture: parameter-seeded randomness, no laundered
// nondeterminism, no cross-function order leaks.
package clean

import "math/rand"

// Draw samples from a caller-seeded generator.
func Draw(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
