// A fixture with one deliberate seedprov violation for CLI tests.
package dirty

import "math/rand"

// Fixed uses a hardcoded seed: the experiment cannot be re-seeded.
func Fixed() *rand.Rand {
	return rand.New(rand.NewSource(1234))
}
