// Command fairvet runs fairlint's whole-program companion: an
// interprocedural call-graph analysis that catches determinism
// violations no per-file rule can see — wall clock, global RNG, and
// goroutine spawns laundered into the sim boundary through wrappers;
// RNG seeds that never derive from a Spec or trial parameter;
// allocations on //fairbench:hotpath-annotated paths; and map
// iteration order that escapes through returns or struct fields into
// artifact writers. See internal/vet for the rule catalog.
//
// Usage:
//
//	fairvet [-json] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/sim",
// "./cmd/..."); the default is ./... . Exits 1 when findings remain
// after //fairlint:allow suppression, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fairbench/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	dir := fs.String("dir", "", "module root to analyze (default: nearest go.mod above the working directory)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fairvet [-json] [-dir root] [packages...]\nrules: %v\n", vet.KnownRules())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "fairvet:", err)
			return 2
		}
	}

	findings, err := vet.Run(vet.Config{Dir: root, Patterns: fs.Args()})
	if err != nil {
		fmt.Fprintln(stderr, "fairvet:", err)
		return 2
	}

	if *jsonOut {
		if err := vet.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "fairvet:", err)
			return 2
		}
	} else {
		if err := vet.WriteText(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "fairvet:", err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "fairvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, mirroring how the go tool locates the main module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (run fairvet inside the module)", dir)
		}
		dir = parent
	}
}
