package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairbench/internal/telemetry"
)

// TestRunWithTelemetry brackets a short fixed-rate run with -telemetry
// and -pprof-dir and checks the stream: one "fairsim" span that ended
// ok, at least one runtime sample, and both profiles on disk — while
// the measured output on stdout is unchanged.
func TestRunWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	telPath := filepath.Join(dir, telemetry.FileName)
	pprofDir := filepath.Join(dir, "pprof")

	var plain, observed bytes.Buffer
	args := []string{"-system", "host", "-pps", "1e6", "-seconds", "0.005"}
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-telemetry", telPath, "-pprof-dir", pprofDir), &observed); err != nil {
		t.Fatal(err)
	}
	if plain.String() != observed.String() {
		t.Error("attaching telemetry changed the measured output")
	}

	log, err := telemetry.ParseFile(telPath)
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.Label != "fairsim" {
		t.Errorf("header = %+v", log.Header)
	}
	var span *telemetry.Event
	samples := 0
	for i, ev := range log.Events {
		switch ev.Ev {
		case telemetry.EvCellFinish:
			span = &log.Events[i]
		case telemetry.EvSample:
			samples++
		}
	}
	if span == nil || span.Cell != "fairsim" || span.Status != "ok" {
		t.Errorf("fairsim span = %+v", span)
	}
	if samples == 0 {
		t.Error("no runtime samples (the stop function takes a final one)")
	}

	for _, name := range []string{telemetry.CPUProfileName, telemetry.HeapProfileName} {
		info, err := os.Stat(filepath.Join(pprofDir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("profile %s: %v", name, err)
		}
	}
}

// A failing run must close the span with status "failed" and still
// produce a parseable stream.
func TestRunTelemetrySpanRecordsFailure(t *testing.T) {
	dir := t.TempDir()
	telPath := filepath.Join(dir, "telemetry.jsonl")
	var out bytes.Buffer
	err := run([]string{"-system", "nope", "-telemetry", telPath}, &out)
	if err == nil {
		t.Fatal("unknown system must fail")
	}
	log, perr := telemetry.ParseFile(telPath)
	if perr != nil {
		t.Fatal(perr)
	}
	for _, ev := range log.Events {
		if ev.Ev == telemetry.EvCellFinish && ev.Cell == "fairsim" {
			if ev.Status != "failed" || !strings.Contains(ev.Error, "unknown system") {
				t.Errorf("span = %+v", ev)
			}
			return
		}
	}
	t.Errorf("no fairsim span in %+v", log.Events)
}

func TestRunTelemetryBadPaths(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-telemetry", filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}, &out); err == nil {
		t.Error("uncreatable telemetry file must fail")
	}
	if err := run([]string{"-pprof-dir", string([]byte{0})}, &out); err == nil {
		t.Error("uncreatable pprof dir must fail")
	}
}
