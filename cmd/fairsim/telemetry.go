package main

import (
	"fairbench/internal/telemetry"
)

// attachTelemetry brackets one fairsim invocation with the wall-clock
// observability layer: a "fairsim" span (status ok/failed from the
// run's returned error), a background runtime sampler, and — when
// pprofDir is set — CPU and heap profiles. It returns a finish
// function the caller defers with a pointer to its named error; all
// telemetry sits outside the deterministic output surface, so
// attaching it cannot change a single byte fairsim prints or writes.
func attachTelemetry(telemetryPath, pprofDir string) (finish func(*error), err error) {
	stopProfiles := func() error { return nil }
	if pprofDir != "" {
		stopProfiles, err = telemetry.CaptureProfiles(pprofDir)
		if err != nil {
			return nil, err
		}
	}
	var rec *telemetry.Recorder
	stopSampler := func() {}
	endSpan := func(error) {}
	if telemetryPath != "" {
		rec, err = telemetry.Create(telemetryPath, telemetry.Options{Label: "fairsim", Jobs: 1, Cells: 1})
		if err != nil {
			stopProfiles()
			return nil, err
		}
		stopSampler = rec.StartSampler(0)
		endSpan = rec.Span("fairsim")
	}
	return func(errp *error) {
		endSpan(*errp)
		stopSampler()
		if rec != nil {
			if cerr := rec.Close(); cerr != nil && *errp == nil {
				*errp = cerr
			}
		}
		if perr := stopProfiles(); perr != nil && *errp == nil {
			*errp = perr
		}
	}, nil
}
