package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHost(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "host", "-pps", "1e6", "-seconds", "0.005"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"fw-host-1core", "processed", "power (provisioned)", "50.0 W", "Per-device"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunAllSystems(t *testing.T) {
	for _, sys := range []string{"smartnic", "switch", "fpga"} {
		var out bytes.Buffer
		err := run([]string{"-system", sys, "-pps", "1e6", "-seconds", "0.003"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !strings.Contains(out.String(), "Jain fairness index") {
			t.Errorf("%s output incomplete:\n%s", sys, out.String())
		}
	}
}

func TestRunPoissonAndCores(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-cores", "2", "-poisson", "-pps", "2e6", "-seconds", "0.003"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fw-host-2core") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunSearch(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-search", "-seconds", "0.004"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RFC 2544 zero-loss throughput") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUnknownSystem(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-system", "quantum"}, &out); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]float64{"c": 1, "a": 2, "b": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "flow.fbtrace")
	var out bytes.Buffer
	if err := run([]string{"-record", trace, "-count", "3000", "-pps", "1e6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded 3000 packets") {
		t.Errorf("record output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", trace, "-system", "host"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replayed 3000 packets") || !strings.Contains(got, "processed") {
		t.Errorf("replay output:\n%s", got)
	}
	// An accelerated replay overloads the single core.
	out.Reset()
	if err := run([]string{"-replay", trace, "-stretch", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stretch 0.20") {
		t.Errorf("stretch output:\n%s", out.String())
	}
}

func TestReplayMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay", "/no/such/trace"}, &out); err == nil {
		t.Error("missing trace should fail")
	}
}

func TestRunWithImpairmentFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pps", "1e6", "-seconds", "0.005", "-impair-drop", "0.2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "impairments injected") {
		t.Errorf("impairment summary missing:\n%s", got)
	}
	if !strings.Contains(got, "loss") {
		t.Errorf("result table missing:\n%s", got)
	}
}

func TestRunRejectsBadImpairment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-impair-drop", "2"}, &out); err == nil {
		t.Error("probability > 1 should fail")
	}
}
