package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairbench/internal/obs"
)

func TestRunHost(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "host", "-pps", "1e6", "-seconds", "0.005"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"fw-host-1core", "processed", "power (provisioned)", "50.0 W", "Per-device"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunAllSystems(t *testing.T) {
	for _, sys := range []string{"smartnic", "switch", "fpga"} {
		var out bytes.Buffer
		err := run([]string{"-system", sys, "-pps", "1e6", "-seconds", "0.003"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !strings.Contains(out.String(), "Jain fairness index") {
			t.Errorf("%s output incomplete:\n%s", sys, out.String())
		}
	}
}

func TestRunPoissonAndCores(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-cores", "2", "-poisson", "-pps", "2e6", "-seconds", "0.003"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fw-host-2core") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunSearch(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-search", "-seconds", "0.004"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RFC 2544 zero-loss throughput") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUnknownSystem(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-system", "quantum"}, &out); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]float64{"c": 1, "a": 2, "b": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}

func TestRecordAndReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "flow.fbtrace")
	var out bytes.Buffer
	if err := run([]string{"-record", trace, "-count", "3000", "-pps", "1e6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded 3000 packets") {
		t.Errorf("record output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-replay", trace, "-system", "host"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replayed 3000 packets") || !strings.Contains(got, "processed") {
		t.Errorf("replay output:\n%s", got)
	}
	// An accelerated replay overloads the single core.
	out.Reset()
	if err := run([]string{"-replay", trace, "-stretch", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stretch 0.20") {
		t.Errorf("stretch output:\n%s", out.String())
	}
}

func TestReplayMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay", "/no/such/trace"}, &out); err == nil {
		t.Error("missing trace should fail")
	}
}

func TestRunWithImpairmentFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-pps", "1e6", "-seconds", "0.005", "-impair-drop", "0.2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "impairments injected") {
		t.Errorf("impairment summary missing:\n%s", got)
	}
	if !strings.Contains(got, "loss") {
		t.Errorf("result table missing:\n%s", got)
	}
}

func TestRunRejectsBadImpairment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-impair-drop", "2"}, &out); err == nil {
		t.Error("probability > 1 should fail")
	}
}

func TestConflictingFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"record+replay", []string{"-record", "a", "-replay", "b"}, "mutually exclusive"},
		{"search+replay", []string{"-search", "-replay", "b"}, "mutually exclusive"},
		{"search+record", []string{"-search", "-record", "a"}, "mutually exclusive"},
		{"trace+search", []string{"-trace", "t.jsonl", "-search"}, "-trace"},
		{"trace+record", []string{"-trace", "t.jsonl", "-record", "a"}, "-trace"},
		{"sample-every alone", []string{"-sample-every", "0.001"}, "requires -trace"},
		{"metrics alone", []string{"-metrics", "m.csv"}, "requires -trace"},
		{"negative sample period", []string{"-trace", "t.jsonl", "-sample-every", "-1"}, "positive"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.jsonl")
	metricsPath := filepath.Join(dir, "metrics.csv")
	var out bytes.Buffer
	err := run([]string{"-system", "smartnic", "-pps", "2e6", "-seconds", "0.005",
		"-trace", tracePath, "-sample-every", "0.001", "-metrics", metricsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"trace:", "Per-stage latency breakdown", "queue", "service", "io", "metrics snapshot"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}

	// The trace file is JSONL whose span events' stages sum to their
	// end-to-end latency (the headline acceptance criterion).
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var spans, samples int
	for i, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		switch e.Kind {
		case "span":
			spans++
			var sum float64
			for _, st := range e.Stages {
				sum += st.Dur
			}
			if math.Abs(sum-e.Dur) > 1e-12 {
				t.Fatalf("span %d stages sum %v != dur %v", e.ID, sum, e.Dur)
			}
		case "sample":
			samples++
		}
	}
	if spans == 0 || samples == 0 {
		t.Errorf("trace has %d spans, %d samples; want both > 0", spans, samples)
	}

	m, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(m), "name,labels,kind,value,count\n") {
		t.Errorf("metrics CSV malformed:\n%s", m)
	}
}

func TestReplayWithTrace(t *testing.T) {
	dir := t.TempDir()
	rec := filepath.Join(dir, "flow.fbtrace")
	tracePath := filepath.Join(dir, "replay.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-record", rec, "-count", "2000", "-pps", "1e6"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-replay", rec, "-trace", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Per-stage latency breakdown") {
		t.Errorf("replay trace output:\n%s", out.String())
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
}

func TestMetricsJSONLExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.jsonl")
	metricsPath := filepath.Join(dir, "metrics.jsonl")
	var out bytes.Buffer
	err := run([]string{"-system", "host", "-pps", "1e6", "-seconds", "0.003",
		"-trace", tracePath, "-metrics", metricsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var p obs.Point
		if err := json.Unmarshal([]byte(ln), &p); err != nil {
			t.Fatalf("metrics line %d does not parse: %v", i, err)
		}
	}
}

func TestRunWithFaultsFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "smartnic", "-poisson", "-pps", "4e6", "-seconds", "0.02",
		"-faults", "outage:dev=smartnic,at=5ms,for=5ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"Injected faults", "outage", "availability", "depth", "recovery", "loss"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunFaultsComposesWithTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "faulted.jsonl")
	var out bytes.Buffer
	err := run([]string{"-system", "smartnic", "-pps", "2e6", "-seconds", "0.01",
		"-faults", "outage:dev=smartnic,at=2ms,for=2ms", "-trace", tracePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var faultSpans, faultEnds int
	for i, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		switch e.Kind {
		case "fault":
			faultSpans++
		case "fault-end":
			faultEnds++
		}
	}
	if faultSpans != 1 || faultEnds != 1 {
		t.Errorf("trace has %d fault / %d fault-end events, want 1/1", faultSpans, faultEnds)
	}
}

func TestReplayWithFaultsFlag(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "flow.fbtrace")
	var out bytes.Buffer
	if err := run([]string{"-record", trace, "-count", "5000", "-pps", "1e6"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"-replay", trace, "-system", "host",
		"-faults", "linkloss:prob=0.2;seed:5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Injected faults") || !strings.Contains(got, "dropped") {
		t.Errorf("faulted replay output:\n%s", got)
	}
}

func TestFaultsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"faults+search", []string{"-faults", "linkloss:prob=0.1", "-search"}, "mutually exclusive"},
		{"faults+record", []string{"-faults", "linkloss:prob=0.1", "-record", "a"}, "mutually exclusive"},
		{"faults+impair", []string{"-faults", "linkloss:prob=0.1", "-impair-drop", "0.1"}, "mutually exclusive"},
		{"unknown kind", []string{"-faults", "meteor:dev=cores"}, "-faults"},
		{"bad prob", []string{"-faults", "linkloss:prob=1.5"}, "-faults"},
		{"bad duration", []string{"-faults", "outage:dev=cores,at=banana"}, "-faults"},
		{"missing value", []string{"-faults", "outage:dev="}, "-faults"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestRunReplicatedFixedRate(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "host", "-pps", "1e6", "-seconds", "0.003",
		"-trials", "3", "-ci", "0.9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"Replication over 3 seeded trials", "90% bootstrap CIs",
		"throughput (Gb/s)", "latency p99", "Half-width", "CV"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
	// Deterministic: same flags, same bytes.
	var again bytes.Buffer
	if err := run([]string{"-system", "host", "-pps", "1e6", "-seconds", "0.003",
		"-trials", "3", "-ci", "0.9"}, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("replicated run is not deterministic across invocations")
	}
}

func TestRunReplicatedSearch(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-search", "-seconds", "0.003", "-trials", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"RFC 2544 zero-loss throughput", "zero-loss rate (Mpps)",
		"Replication over 2 seeded trials"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestTrialsFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-trials", "0"},
		{"-trials", "2", "-record", "x.trace"},
		{"-trials", "2", "-replay", "x.trace"},
		{"-trials", "2", "-trace", "x.jsonl"},
		{"-trials", "2", "-faults", "linkloss:prob=0.01"},
		{"-ci", "0.9"},                 // -ci without replication
		{"-trials", "2", "-ci", "1.5"}, // level outside (0, 1)
		{"-trials", "2", "-ci", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("%v should be rejected", args)
		}
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	// The per-device power table iterates this result; it must be sorted
	// on every call or map iteration order would leak into the artifact.
	m := map[string]float64{}
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, k := range want {
		m[k] = float64(i)
	}
	for trial := 0; trial < 50; trial++ {
		got := sortedKeys(m)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: keys[%d] = %q, want %q (unsorted map order leaked)", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRunProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profile runs many saturation searches")
	}
	var out bytes.Buffer
	if err := run([]string{"-profile", "-system", "smartnic", "-seconds", "0.004"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"fw-smartnic saturates", "Per-operator saturation deltas",
		"smartnic-fastpath", "pre-knee", "post-knee", "Bottleneck per load regime"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunProfileHostCores(t *testing.T) {
	if testing.Short() {
		t.Skip("profile runs many saturation searches")
	}
	var out bytes.Buffer
	if err := run([]string{"-profile", "-system", "host", "-cores", "2", "-seconds", "0.004"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fw-host-2core saturates") {
		t.Errorf("-cores 2 should profile the 2-core host:\n%s", out.String())
	}
}

func TestProfileFlagConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"profile+search", []string{"-profile", "-search"}, "mutually exclusive"},
		{"profile+replay", []string{"-profile", "-replay", "f"}, "-record/-replay"},
		{"profile+faults", []string{"-profile", "-faults", "linkloss:prob=0.1"}, "healthy"},
		{"profile+trace", []string{"-profile", "-trace", "t.jsonl"}, "mutually exclusive"},
		{"profile+impair", []string{"-profile", "-impair-drop", "0.1"}, "-impair-*"},
		{"profile+pps", []string{"-profile", "-pps", "1e6"}, "canonical workload"},
		{"profile+fpga", []string{"-profile", "-system", "fpga"}, "no profile target"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestRunScenarioSmartNIC(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "smartnic", "-poisson", "-pps", "6e6", "-seconds", "0.01",
		"-scenario", "zipf:flows=50000,skew=1.1,tcp=0.3;synflood:rate=0.5;churn:life=5ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"scenario: zipf:flows=50000", "seed:1", // canonical spec echoed with defaults applied
		"fw-smartnic-ct", "state pressure", "collateral",
		"offload-table", "conntrack", "Per-class delivery", "synflood",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunScenarioHostSeedPrecedence(t *testing.T) {
	// An explicitly-set -seed overrides the spec's seed clause; the
	// echoed canonical spec shows the seed that actually ran.
	var out bytes.Buffer
	err := run([]string{"-system", "host", "-cores", "2", "-pps", "2e6", "-seconds", "0.005",
		"-seed", "9", "-scenario", "zipf:flows=4096;flashcrowd:at=1ms,for=2ms,peak=3;seed:4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"seed:9", "fw-host-2core-ct", "flashcrowd:at=0.001"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunScenarioReplicated(t *testing.T) {
	args := []string{"-system", "host", "-pps", "2e6", "-seconds", "0.004", "-trials", "3",
		"-scenario", "zipf:flows=4096,tcp=0.3;synflood:rate=0.4"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"Replication over 3 seeded trials", "state pressure"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Error("replicated scenario run is not deterministic across invocations")
	}
}

func TestScenarioFlagConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"scenario+search", []string{"-scenario", "zipf:flows=1024", "-search"}, "mutually exclusive"},
		{"scenario+record", []string{"-scenario", "zipf:flows=1024", "-record", "a"}, "-record/-replay"},
		{"scenario+replay", []string{"-scenario", "zipf:flows=1024", "-replay", "a"}, "-record/-replay"},
		{"scenario+faults", []string{"-scenario", "zipf:flows=1024", "-faults", "linkloss:prob=0.1"}, "mutually exclusive"},
		{"scenario+trace", []string{"-scenario", "zipf:flows=1024", "-trace", "t.jsonl"}, "mutually exclusive"},
		{"scenario+impair", []string{"-scenario", "zipf:flows=1024", "-impair-drop", "0.1"}, "-impair-*"},
		{"scenario+profile", []string{"-scenario", "zipf:flows=1024", "-profile"}, "mutually exclusive"},
		{"scenario+flows", []string{"-scenario", "zipf:flows=1024", "-flows", "99"}, "owns the workload shape"},
		{"scenario+attack", []string{"-scenario", "zipf:flows=1024", "-attack", "0.5"}, "owns the workload shape"},
		{"scenario+switch", []string{"-scenario", "zipf:flows=1024", "-system", "switch"}, "host and smartnic"},
		{"bad spec", []string{"-scenario", "meteor:rate=1"}, "-scenario"},
		{"empty spec clause", []string{"-scenario", "zipf:flows=banana"}, "-scenario"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}
