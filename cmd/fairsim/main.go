// Command fairsim runs one simulated heterogeneous deployment under a
// configurable workload and prints its measured operating point —
// throughput, latency, loss, fairness and composed power. It is the
// "run one testbed experiment" tool; fairfigs orchestrates full
// reproductions.
//
// Usage:
//
//	fairsim -system {host|smartnic|switch|fpga} [-cores N] [-pps RATE]
//	        [-seconds S] [-attack FRAC] [-poisson] [-seed N] [-search]
//	        [-profile] [-trials K] [-ci LEVEL]
//	        [-impair-drop P] [-impair-corrupt P] [-impair-dup P]
//	        [-faults SPEC] [-scenario SPEC]
//	        [-record FILE -count N] [-replay FILE -stretch X]
//	        [-trace FILE [-sample-every DT] [-metrics FILE]]
//	        [-telemetry FILE] [-pprof-dir DIR]
//
// With -search, an RFC 2544 binary search for the zero-loss throughput
// replaces the single fixed-rate run. The -impair-* flags inject
// ingress faults; -record captures a trace and -replay runs one through
// the deployment at its recorded (optionally stretched) timestamps.
//
// With -profile, the run becomes a saturation-delta bottleneck profile
// of the deployment's canonical scenario: the RFC 2544 saturation
// search is repeated with each pipeline operator ablated to price the
// operator (Δ = saturation ablated − full, with bootstrap CIs over
// -trials replicates), and the full pipeline is observed below and
// above the knee to name the bottleneck device per load regime.
// Supported systems: host (1 or 2 -cores), smartnic, switch. -profile
// uses the scenario's canonical workload, so it conflicts with the
// workload and run-mode flags.
//
// With -trials K (K >= 2), the fixed-rate run or the -search is
// replicated over K independently seeded trials: the nominal
// (median-throughput) result is printed alongside per-metric bootstrap
// confidence intervals at level -ci (default 0.95). Replication applies
// to generated traffic only, so -trials conflicts with -record,
// -replay, -trace and -faults.
//
// With -faults, the run injects a deterministic fault schedule —
// device outages with failover, brownout derating, link loss and
// corruption, burst overload — and reports per-window availability,
// degradation depth and recovery time alongside the measurement. The
// spec grammar is internal/fault's, e.g.:
//
//	fairsim -system smartnic -faults 'outage:dev=smartnic,at=10ms,for=10ms'
//	fairsim -system host -faults 'brownout:dev=cores,at=0,for=20ms,factor=0.5;seed:17'
//
// -faults composes with -trace (fault windows appear as spans in the
// trace) and with -replay (faults strike the replayed traffic; burst
// clauses are ignored because replay pacing is the trace's).
//
// With -scenario, the run drives an internet-scale overload scenario —
// Zipf flow populations up to 10^7 concurrent flows, diurnal load
// curves, flash crowds, SYN-flood and amplification blends, flow churn
// — through a deployment with bounded, eviction-managed state tables,
// and reports per-class goodput vs throughput, collateral damage and
// table pressure alongside the measurement. The spec grammar is
// internal/workload's, e.g.:
//
//	fairsim -system smartnic -scenario 'zipf:flows=1000000,skew=1.1;synflood:rate=0.5;churn:life=10ms'
//	fairsim -system host -cores 2 -scenario 'flashcrowd:at=10ms,for=20ms,peak=3;seed:7'
//
// Scenario runs support host and smartnic systems (the bounded-table
// deployments). The spec owns the workload shape, so -scenario
// conflicts with -attack/-flows and with the other run modes; -poisson
// and -pps still select arrivals and offered load.
//
// With -trace, the run writes a deterministic JSONL observability trace
// (per-packet lifecycle spans with per-stage latency attribution,
// kernel progress, and — with -sample-every — periodic per-device
// utilization/queue/power samples) and prints the per-stage latency
// breakdown. -metrics additionally exports the metrics registry
// snapshot (CSV, or JSONL when the file name ends in .jsonl).
//
// -trace records the simulation's virtual-time events and is part of
// the deterministic output; -telemetry instead records wall-clock
// telemetry about the process itself (the run span, goroutine/heap
// samples) and -pprof-dir captures CPU/heap profiles bracketing the
// run. Both compose with every run mode and change no measured output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fairbench"
	"fairbench/internal/fault"
	"fairbench/internal/hw"
	"fairbench/internal/measure"
	"fairbench/internal/nf"
	"fairbench/internal/obs"
	"fairbench/internal/profile"
	"fairbench/internal/report"
	"fairbench/internal/rfc2544"
	"fairbench/internal/stats"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fairsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("fairsim", flag.ContinueOnError)
	system := fs.String("system", "host", "deployment: host, smartnic, switch, or fpga")
	cores := fs.Int("cores", 1, "host dataplane cores (host and switch systems)")
	pps := fs.Float64("pps", 2e6, "offered load in packets per second")
	seconds := fs.Float64("seconds", 0.05, "simulated duration per run")
	attack := fs.Float64("attack", 0.2, "fraction of traffic from the blocklisted prefix")
	flows := fs.Int("flows", 1024, "number of distinct flows")
	poisson := fs.Bool("poisson", false, "Poisson arrivals instead of constant rate")
	seed := fs.Uint64("seed", 1, "random seed (determinism: same seed, same results)")
	search := fs.Bool("search", false, "RFC 2544 throughput search instead of a fixed-rate run")
	profileFlag := fs.Bool("profile", false, "saturation-delta bottleneck profile of the deployment's canonical scenario")
	trials := fs.Int("trials", 1, "independently seeded replicate runs (>= 2 enables bootstrap CIs)")
	ci := fs.Float64("ci", 0.95, "bootstrap confidence level for -trials >= 2, in (0, 1)")
	dropProb := fs.Float64("impair-drop", 0, "ingress drop probability (failure injection)")
	corruptProb := fs.Float64("impair-corrupt", 0, "ingress byte-corruption probability")
	dupProb := fs.Float64("impair-dup", 0, "ingress duplication probability")
	faults := fs.String("faults", "", "fault spec, e.g. 'outage:dev=smartnic,at=10ms,for=10ms;linkloss:prob=0.01'")
	scenario := fs.String("scenario", "", "overload scenario spec, e.g. 'zipf:flows=1000000,skew=1.1;synflood:rate=0.5;churn:life=10ms'")
	record := fs.String("record", "", "record a trace of the workload to this file and exit")
	count := fs.Int("count", 10000, "packets to record with -record")
	replay := fs.String("replay", "", "replay a recorded trace through the deployment instead of generating traffic")
	stretch := fs.Float64("stretch", 1, "timestamp scale for -replay (0.5 = twice as fast)")
	trace := fs.String("trace", "", "write a JSONL observability trace of the run to this file")
	sampleEvery := fs.Float64("sample-every", 0, "periodic device sampling interval in simulated seconds (requires -trace)")
	metrics := fs.String("metrics", "", "export the metrics snapshot to this file (requires -trace; .jsonl for JSONL, CSV otherwise)")
	telemetryPath := fs.String("telemetry", "", "write wall-clock telemetry (run span, runtime samples) to this JSONL file")
	pprofDir := fs.String("pprof-dir", "", "write CPU and heap profiles bracketing the run into this directory")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Wall-clock observability (distinct from -trace, which records the
	// simulation's virtual-time events): a run span, runtime samples and
	// optional profiles, none of which touch the measured output.
	if *telemetryPath != "" || *pprofDir != "" {
		finish, terr := attachTelemetry(*telemetryPath, *pprofDir)
		if terr != nil {
			return terr
		}
		defer finish(&err)
	}

	// Reject contradictory mode combinations up front: each of -record,
	// -replay and -search selects a different run mode.
	switch {
	case *record != "" && *replay != "":
		return fmt.Errorf("-record and -replay are mutually exclusive (record writes a trace, replay consumes one)")
	case *search && *replay != "":
		return fmt.Errorf("-search and -replay are mutually exclusive (the throughput search generates its own load)")
	case *search && *record != "":
		return fmt.Errorf("-search and -record are mutually exclusive")
	}
	if *trace != "" && (*search || *record != "") {
		return fmt.Errorf("-trace applies to a single measured run; it cannot be combined with -search or -record")
	}
	if *trace == "" && *sampleEvery != 0 {
		return fmt.Errorf("-sample-every requires -trace")
	}
	if *trace == "" && *metrics != "" {
		return fmt.Errorf("-metrics requires -trace")
	}
	if *sampleEvery < 0 {
		return fmt.Errorf("-sample-every must be positive, got %v", *sampleEvery)
	}

	// Replication applies to generated traffic: a replayed trace or a
	// recorded one is a single fixed artifact, a trace file documents
	// one run, and a fault schedule is defined against one timeline.
	ciSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "ci" {
			ciSet = true
		}
	})
	if *trials < 1 {
		return fmt.Errorf("-trials must be >= 1, got %d", *trials)
	}
	if err := stats.CheckLevel(*ci); err != nil {
		return fmt.Errorf("-ci: %w", err)
	}
	if ciSet && *trials < 2 {
		return fmt.Errorf("-ci requires -trials >= 2 (one trial has no distribution to bootstrap)")
	}
	if *trials > 1 {
		switch {
		case *record != "":
			return fmt.Errorf("-trials and -record are mutually exclusive (a recorded trace is one trial)")
		case *replay != "":
			return fmt.Errorf("-trials and -replay are mutually exclusive (a replayed trace is one trial)")
		case *trace != "":
			return fmt.Errorf("-trials and -trace are mutually exclusive (a trace documents a single run)")
		case *faults != "":
			return fmt.Errorf("-trials and -faults are mutually exclusive (the fault schedule is defined against one run's timeline)")
		}
	}

	// -faults drives a dedicated measured run: it composes with -trace
	// and -replay but not with the other run modes or the legacy
	// impairment flags (the fault spec subsumes them).
	var faultSpec fault.Spec
	if *faults != "" {
		switch {
		case *search:
			return fmt.Errorf("-faults and -search are mutually exclusive (the throughput search assumes the healthy regime)")
		case *record != "":
			return fmt.Errorf("-faults and -record are mutually exclusive (recording captures workload, not faults)")
		case *dropProb != 0 || *corruptProb != 0 || *dupProb != 0:
			return fmt.Errorf("-faults and -impair-* are mutually exclusive (use linkloss/linkcorrupt clauses instead)")
		}
		var err error
		faultSpec, err = fault.ParseSpec(*faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}

	if *profileFlag {
		// The profiler owns its run modes and canonical workloads, so
		// every other mode or workload-shaping flag is a conflict.
		switch {
		case *search:
			return fmt.Errorf("-profile and -search are mutually exclusive (-profile runs its own saturation searches)")
		case *record != "" || *replay != "":
			return fmt.Errorf("-profile cannot be combined with -record/-replay")
		case *faults != "":
			return fmt.Errorf("-profile and -faults are mutually exclusive (the profile measures the healthy pipeline)")
		case *trace != "":
			return fmt.Errorf("-profile and -trace are mutually exclusive")
		case *scenario != "":
			return fmt.Errorf("-profile and -scenario are mutually exclusive (each owns the run's workload)")
		case *dropProb != 0 || *corruptProb != 0 || *dupProb != 0:
			return fmt.Errorf("-profile and -impair-* are mutually exclusive")
		}
		var workloadFlags []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "pps", "attack", "flows", "poisson":
				workloadFlags = append(workloadFlags, "-"+f.Name)
			}
		})
		if len(workloadFlags) > 0 {
			return fmt.Errorf("-profile uses the scenario's canonical workload; drop %s", strings.Join(workloadFlags, ", "))
		}
		name := *system
		if name == "host" {
			name = fmt.Sprintf("host-%dcore", *cores)
		}
		target, err := testbed.FirewallProfileTarget(name)
		if err != nil {
			return err
		}
		p, err := profile.Run(target, profile.Options{
			TrialSeconds: *seconds,
			Seed:         *seed,
			Trials:       *trials,
			Level:        *ci,
		})
		if err != nil {
			return err
		}
		printProfile(stdout, p)
		return nil
	}

	// -scenario drives an internet-scale overload scenario through a
	// bounded-state deployment. The spec owns the workload shape and
	// state metering is the run's observability, so the other run modes
	// and workload-shaping flags conflict.
	if *scenario != "" {
		switch {
		case *search:
			return fmt.Errorf("-scenario and -search are mutually exclusive (the scenario shapes its own offered load over time)")
		case *record != "" || *replay != "":
			return fmt.Errorf("-scenario cannot be combined with -record/-replay (the scenario generates its own traffic)")
		case *faults != "":
			return fmt.Errorf("-scenario and -faults are mutually exclusive (overload is the scenario's failure mode)")
		case *trace != "":
			return fmt.Errorf("-scenario and -trace are mutually exclusive (state metering is the scenario run's observability)")
		case *dropProb != 0 || *corruptProb != 0 || *dupProb != 0:
			return fmt.Errorf("-scenario and -impair-* are mutually exclusive")
		}
		var workloadFlags []string
		seedSet := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "attack", "flows":
				workloadFlags = append(workloadFlags, "-"+f.Name)
			case "seed":
				seedSet = true
			}
		})
		if len(workloadFlags) > 0 {
			return fmt.Errorf("the scenario spec owns the workload shape; drop %s (use zipf:flows=,attack= clauses)",
				strings.Join(workloadFlags, ", "))
		}
		return runScenario(stdout, *scenario, *system, *cores, *pps, *seconds,
			*poisson, *seed, seedSet, *trials, *ci)
	}

	mkDeployment := func() (*testbed.Deployment, error) {
		switch *system {
		case "host":
			return testbed.BaselineFirewall(*cores)
		case "smartnic":
			return testbed.SmartNICFirewall()
		case "switch":
			return testbed.SwitchFirewall(*cores)
		case "fpga":
			return testbed.FPGAFirewall(hw.FPGAConfig{})
		default:
			return nil, fmt.Errorf("unknown system %q", *system)
		}
	}
	mkGenSeeded := func(s uint64) (*workload.Generator, error) {
		return workload.NewGenerator(workload.Spec{
			Flows:          *flows,
			AttackFraction: *attack,
			Seed:           s,
		})
	}
	mkGen := func() (*workload.Generator, error) { return mkGenSeeded(*seed) }

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := mkGen()
		if err != nil {
			return err
		}
		var arrival workload.Arrival = workload.CBR{}
		if *poisson {
			arrival = workload.Poisson{}
		}
		if err := workload.Record(f, g, arrival, *pps, *count); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d packets at %.2f Mpps to %s\n", *count, *pps/1e6, *record)
		return nil
	}

	// attachTrace wires the observability tracer to d when -trace is
	// set; the returned finish writes the breakdown and metrics after a
	// successful run.
	attachTrace := func(d *testbed.Deployment) (finish func() error, err error) {
		if *trace == "" {
			return func() error { return nil }, nil
		}
		f, err := os.Create(*trace)
		if err != nil {
			return nil, err
		}
		tr := obs.New(f)
		d.Observe(tr, *sampleEvery)
		return func() error {
			if err := tr.Err(); err != nil {
				f.Close()
				return fmt.Errorf("trace: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\ntrace: %d events to %s\n", tr.Events(), *trace)
			printBreakdown(stdout, tr.Breakdown())
			if *metrics != "" {
				if err := exportMetrics(*metrics, tr.Registry()); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "metrics snapshot to %s\n", *metrics)
			}
			return nil
		}, nil
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := workload.NewTraceReader(f)
		if err != nil {
			return err
		}
		defer tr.Close()
		d, err := mkDeployment()
		if err != nil {
			return err
		}
		finish, err := attachTrace(d)
		if err != nil {
			return err
		}
		if *faults != "" {
			res, rep, err := d.RunTraceWithFaults(tr, *stretch, faultSpec)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "replayed %d packets (stretch %.2f)\n", tr.Count(), *stretch)
			printFaultReport(stdout, rep)
			printResult(stdout, res)
			return finish()
		}
		res, err := d.RunTrace(tr, *stretch)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "replayed %d packets (stretch %.2f)\n", tr.Count(), *stretch)
		printResult(stdout, res)
		return finish()
	}

	if *search {
		results := make([]testbed.Result, 0, *trials)
		ppsSamples := make([]float64, 0, *trials)
		for t := 0; t < *trials; t++ {
			s := fairbench.TrialSeed(*seed, t)
			res, err := rfc2544.Throughput(mkDeployment,
				func() (*workload.Generator, error) { return mkGenSeeded(s) },
				rfc2544.Opts{TrialSeconds: *seconds})
			if err != nil {
				return fmt.Errorf("trial %d (seed %d): %w", t, s, err)
			}
			if t == 0 {
				fmt.Fprintf(stdout, "RFC 2544 zero-loss throughput: %.3f Mpps (%.2f Gb/s) over %d trials\n",
					res.Pps/1e6, res.Gbps, len(res.Trials))
				printResult(stdout, res.Passing)
			}
			results = append(results, res.Passing)
			ppsSamples = append(ppsSamples, res.Pps)
		}
		if *trials > 1 {
			if err := printReplication(stdout, results, ppsSamples, *ci, *seed); err != nil {
				return err
			}
		}
		return nil
	}

	var arrival workload.Arrival = workload.CBR{}
	if *poisson {
		arrival = workload.Poisson{}
	}

	if *trials > 1 {
		im := testbed.Impairments{DropProb: *dropProb, CorruptProb: *corruptProb, DupProb: *dupProb}
		results := make([]testbed.Result, 0, *trials)
		for t := 0; t < *trials; t++ {
			s := fairbench.TrialSeed(*seed, t)
			d, err := mkDeployment()
			if err != nil {
				return err
			}
			g, err := mkGenSeeded(s)
			if err != nil {
				return err
			}
			res, _, err := d.RunWithImpairments(g, arrival, *pps, *seconds, im)
			if err != nil {
				return fmt.Errorf("trial %d (seed %d): %w", t, s, err)
			}
			if t == 0 {
				printResult(stdout, res)
			}
			results = append(results, res)
		}
		return printReplication(stdout, results, nil, *ci, *seed)
	}

	d, err := mkDeployment()
	if err != nil {
		return err
	}
	g, err := mkGen()
	if err != nil {
		return err
	}
	finish, err := attachTrace(d)
	if err != nil {
		return err
	}
	if *faults != "" {
		res, rep, err := d.RunWithFaults(g, arrival, *pps, *seconds, faultSpec)
		if err != nil {
			return err
		}
		printFaultReport(stdout, rep)
		printResult(stdout, res)
		return finish()
	}
	im := testbed.Impairments{DropProb: *dropProb, CorruptProb: *corruptProb, DupProb: *dupProb}
	res, stats, err := d.RunWithImpairments(g, arrival, *pps, *seconds, im)
	if err != nil {
		return err
	}
	if stats != (testbed.ImpairStats{}) {
		fmt.Fprintf(stdout, "impairments injected: %d dropped, %d corrupted, %d duplicated\n",
			stats.Dropped, stats.Corrupted, stats.Duplicated)
	}
	printResult(stdout, res)
	return finish()
}

// runScenario drives an overload scenario through a bounded-state
// deployment and prints the measurement with its state-pressure
// accounting. trials >= 2 replicates over independently seeded runs.
// An explicitly-set -seed overrides the spec's seed clause.
func runScenario(w io.Writer, spec, system string, cores int, pps, seconds float64,
	poisson bool, seed uint64, seedSet bool, trials int, ci float64) error {
	sc, err := workload.ParseScenario(spec)
	if err != nil {
		return fmt.Errorf("-scenario: %w", err)
	}
	if seedSet {
		sc.Seed = seed
	}
	mk := func(s uint64) (*testbed.Deployment, []measure.StateProbe, error) {
		// The production conntrack posture: a bounded table with LRU
		// eviction and SYN cookies (fairfigs' state-pressure experiment
		// sweeps the alternatives).
		ct := nf.ConntrackConfig{MaxEntries: 1 << 16, Policy: nf.EvictLRU, SYNCookies: true, Seed: s}
		switch system {
		case "host":
			return testbed.StatePressureHost(fmt.Sprintf("fw-host-%dcore-ct", cores), cores, ct)
		case "smartnic":
			return testbed.StatePressureSmartNIC("fw-smartnic-ct", testbed.ScenarioSmartNIC, ct)
		default:
			return nil, nil, fmt.Errorf("-scenario supports the bounded-table host and smartnic systems, not %q", system)
		}
	}
	var arrival workload.Arrival = workload.CBR{}
	if poisson {
		arrival = workload.Poisson{}
	}
	results := make([]testbed.Result, 0, trials)
	for t := 0; t < trials; t++ {
		s := fairbench.TrialSeed(sc.Seed, t)
		d, probes, err := mk(s)
		if err != nil {
			return err
		}
		trial := sc
		trial.Seed = s
		sg, err := workload.NewScenarioGen(trial)
		if err != nil {
			return err
		}
		sm := measure.NewStateMeter()
		for _, p := range probes {
			sm.AddProbe(p)
		}
		res, err := d.RunScenario(sg, arrival, pps, seconds, sm)
		if err != nil {
			return fmt.Errorf("trial %d (seed %d): %w", t, s, err)
		}
		if t == 0 {
			fmt.Fprintf(w, "scenario: %s\n", trial.String())
			printResult(w, res)
			sum, err := sm.Summarize(seconds)
			if err != nil {
				return err
			}
			printStatePressure(w, sum, testbed.ConntrackStatsOf(d))
		}
		results = append(results, res)
	}
	if trials > 1 {
		return printReplication(w, results, nil, ci, sc.Seed)
	}
	return nil
}

// printStatePressure renders the per-class goodput accounting, the
// state-table pressure and the conntrack attribution of a scenario run.
func printStatePressure(w io.Writer, s measure.StateSummary, ct nf.ConntrackStats) {
	fmt.Fprintf(w, "\nstate pressure: %s\n", s)
	t := report.NewTable("Per-class delivery", "Class", "Offered", "Delivered", "Dropped", "Evict losses")
	for _, c := range s.Classes {
		name := c.Class
		if name == "" {
			name = "legit"
		}
		t.AddRowf("%s|%d|%d|%d|%d", name, c.Offered, c.Delivered, c.Dropped, c.Lost)
	}
	fmt.Fprint(w, t.Text())
	fmt.Fprintf(w, "conntrack: %d new flows, %d fast path, %d overflow drops, %d evicted (%d established), %d cookies sent, %d validated\n",
		ct.NewFlows, ct.FastPath, ct.OverflowDrops, ct.Evicted, ct.EvictedEstablished,
		ct.SYNCookiesSent, ct.CookieBypassed)
}

// printProfile renders a saturation-delta profile: the saturation
// point, the per-operator costs and the bottleneck per load regime.
func printProfile(w io.Writer, p profile.Profile) {
	fmt.Fprintf(w, "%s saturates at %.3f Mpps (%.2f Gb/s), CI [%.3f, %.3f] Mpps over %d trial(s)\n",
		p.System, p.SaturationPps/1e6, p.SaturationGbps,
		p.SaturationCI.Lo/1e6, p.SaturationCI.Hi/1e6, p.Trials)
	ops := report.NewTable("Per-operator saturation deltas (Δ = ablated − full)",
		"Operator", "Ablated (Mpps)", "Δ (Mpps)", "CI (Mpps)", "Share")
	for _, op := range p.Operators {
		ops.AddRowf("%s|%.3f|%+.3f|[%.3f, %.3f]|%+.1f%%",
			op.Operator, op.AblatedPps/1e6, op.DeltaPps/1e6,
			op.DeltaCI.Lo/1e6, op.DeltaCI.Hi/1e6, op.Share*100)
	}
	fmt.Fprint(w, ops.Text())
	bt := report.NewTable("Bottleneck per load regime",
		"Regime", "Load", "Offered (Mpps)", "Loss", "Bottleneck", "Mean util", "Max queue")
	for _, reg := range p.Regimes {
		bt.AddRowf("%s|%.0f%%|%.3f|%.2f%%|%s|%.0f%%|%d",
			reg.Regime, reg.LoadFraction*100, reg.OfferedPps/1e6,
			reg.LossFraction*100, reg.Device, reg.Utilization*100, reg.MaxQueue)
	}
	fmt.Fprint(w, bt.Text())
}

// printFaultReport renders the injected fault schedule and the
// availability figures of a faulted run.
func printFaultReport(w io.Writer, rep testbed.FaultReport) {
	t := report.NewTable(fmt.Sprintf("Injected faults: %s", rep.Spec),
		"Window", "Kind", "Target", "Start (ms)", "End (ms)", "Severity")
	for i, win := range rep.Windows {
		sev := "-"
		if win.Severity != 0 {
			sev = fmt.Sprintf("%g", win.Severity)
		}
		t.AddRowf("%d|%s|%s|%.3f|%.3f|%s",
			i, win.Kind, win.Target, win.Start*1e3, win.End*1e3, sev)
	}
	fmt.Fprint(w, t.Text())
	if rep.LinkDropped > 0 || rep.LinkCorrupted > 0 {
		fmt.Fprintf(w, "link faults: %d dropped, %d corrupted\n", rep.LinkDropped, rep.LinkCorrupted)
	}
	fmt.Fprintf(w, "%s\n", rep.Avail)
}

// printBreakdown renders the per-stage latency attribution of a traced
// run.
func printBreakdown(w io.Writer, bd *obs.Breakdown) {
	stages := bd.Stages()
	if len(stages) == 0 {
		return
	}
	t := report.NewTable(fmt.Sprintf("Per-stage latency breakdown (%d spans)", bd.Spans()),
		"Stage", "Count", "Mean (µs)", "Total (ms)", "Share")
	total := bd.TotalSeconds()
	for _, st := range stages {
		share := 0.0
		if total > 0 {
			share = st.TotalSeconds / total
		}
		t.AddRowf("%s|%d|%.3f|%.3f|%.1f%%",
			st.Name, st.Count, st.MeanSeconds()*1e6, st.TotalSeconds*1e3, share*100)
	}
	fmt.Fprint(w, t.Text())
}

// exportMetrics writes the registry snapshot: JSONL when the path ends
// in .jsonl, CSV otherwise.
func exportMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return reg.ExportJSONL(f)
	}
	return reg.ExportCSV(f)
}

func printResult(w io.Writer, res testbed.Result) {
	t := report.NewTable(fmt.Sprintf("%s (%v simulated)", res.Name, res.Duration), "Metric", "Value")
	t.AddRowf("offered|%s", res.Offered)
	t.AddRowf("processed|%s", res.Processed)
	t.AddRowf("forwarded|%s", res.Forwarded)
	t.AddRowf("loss|%.4f%%", res.LossFraction*100)
	t.AddRowf("latency p50|%.2f µs", res.LatencyP50Us)
	t.AddRowf("latency p99|%.2f µs", res.LatencyP99Us)
	t.AddRowf("Jain fairness index|%.4f", res.JFI)
	t.AddRowf("power (provisioned)|%.1f W", res.ProvisionedPowerWatts)
	t.AddRowf("power (average)|%.1f W", res.AvgPowerWatts)
	fmt.Fprint(w, t.Text())
	if len(res.PerDeviceAvgWatts) > 0 {
		dt := report.NewTable("Per-device average power", "Device", "Watts")
		for _, name := range sortedKeys(res.PerDeviceAvgWatts) {
			dt.AddRowf("%s|%.2f", name, res.PerDeviceAvgWatts[name])
		}
		fmt.Fprint(w, "\n"+dt.Text())
	}
}

// printReplication renders per-metric bootstrap confidence intervals
// over replicated runs. The first result shown above it is the trial-0
// (base seed) run; the table quantifies how much the remaining seeds
// moved each metric. ppsSamples optionally carries the RFC 2544 search
// rates (nil for fixed-rate runs). Deterministic in seed.
func printReplication(w io.Writer, results []testbed.Result, ppsSamples []float64, level float64, seed uint64) error {
	const resamples = 200
	collect := func(get func(testbed.Result) float64) []float64 {
		out := make([]float64, len(results))
		for i, r := range results {
			out[i] = get(r)
		}
		return out
	}
	rows := []struct {
		name    string
		samples []float64
	}{
		{"throughput (Gb/s)", collect(func(r testbed.Result) float64 { return r.Processed.GbPerSecond() })},
		{"latency p50 (µs)", collect(func(r testbed.Result) float64 { return r.LatencyP50Us })},
		{"latency p99 (µs)", collect(func(r testbed.Result) float64 { return r.LatencyP99Us })},
		{"avg power (W)", collect(func(r testbed.Result) float64 { return r.AvgPowerWatts })},
	}
	if ppsSamples != nil {
		mpps := make([]float64, len(ppsSamples))
		for i, v := range ppsSamples {
			mpps[i] = v / 1e6
		}
		rows = append([]struct {
			name    string
			samples []float64
		}{{"zero-loss rate (Mpps)", mpps}}, rows...)
	}
	t := report.NewTable(
		fmt.Sprintf("Replication over %d seeded trials (%.0f%% bootstrap CIs, %d resamples)",
			len(results), level*100, resamples),
		"Metric", "Median", "CI", "Half-width", "CV")
	for i, row := range rows {
		interval, err := stats.MedianCI(row.samples, resamples, level, stats.MixSeed(seed, uint64(i)+100))
		if err != nil {
			return err
		}
		t.AddRowf("%s|%.4f|%s|%.4f|%.4f",
			row.name, stats.Median(row.samples), interval, interval.HalfWidth(), stats.CV(row.samples))
	}
	fmt.Fprint(w, "\n"+t.Text())
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
