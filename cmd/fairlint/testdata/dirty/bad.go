// A fixture with one deliberate wallclock violation for CLI tests.
package dirty

import "time"

func Stamp() time.Time {
	return time.Now()
}
