// A fairlint-clean fixture: deterministic, sorted, sentinel-correct.
package clean

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

var ErrEmpty = errors.New("clean: empty input")

func render(w io.Writer, m map[string]int) error {
	if len(m) == 0 {
		return fmt.Errorf("render: %w", ErrEmpty)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, m[k]); err != nil {
			return err
		}
	}
	return nil
}
