// Command fairbench evaluates a comparison spec (JSON) with the
// fair-comparison methodology and prints an explained verdict per
// baseline.
//
// Usage:
//
//	fairbench [-json] [-example] [-audit] [-bench-json] [spec.json]
//
// With -example, the built-in §4.2 SmartNIC-firewall spec is evaluated.
// Otherwise the spec is read from the given file, or from stdin when no
// file is given.
//
// With -bench-json, fairbench instead runs the pipeline's hot-path
// benchmarks (simulation kernel, packet parse, firewall processing,
// end-to-end testbed packet, span emission) and prints a JSON baseline
// document; redirect it to BENCH_baseline.json to (re)establish the
// perf trajectory the ROADMAP tracks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairbench"
)

const exampleSpec = `{
  "plane": "throughput-power",
  "proposed": {"name": "fw-smartnic", "perf": 20, "cost": 70, "scalable": true},
  "baselines": [
    {"name": "fw-1core", "perf": 10, "cost": 50, "scalable": true},
    {"name": "fw-2core", "perf": 18, "cost": 80, "scalable": true}
  ]
}`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fairbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the text report")
	example := fs.Bool("example", false, "evaluate the built-in paper §4.2 example spec")
	audit := fs.Bool("audit", false, "treat the input as an evaluation-design audit spec and run the seven-principle checklist")
	benchJSON := fs.Bool("bench-json", false, "run the hot-path benchmarks and emit a BENCH baseline JSON document")
	fs.SetOutput(stdout)
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: fairbench [-json] [-example] [-audit] [-bench-json] [spec.json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchJSON {
		if *example || *audit || fs.NArg() > 0 {
			return fmt.Errorf("-bench-json takes no spec input")
		}
		return runBenchJSON(stdout)
	}

	var data []byte
	var err error
	switch {
	case *example:
		data = []byte(exampleSpec)
	case fs.NArg() >= 1:
		data, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		data, err = io.ReadAll(stdin)
		if err != nil {
			return err
		}
	}

	if *audit {
		design, err := fairbench.ParseAuditSpec(data)
		if err != nil {
			return err
		}
		findings := fairbench.Audit(design)
		fmt.Fprint(stdout, fairbench.AuditReport(findings))
		return nil
	}

	spec, err := fairbench.ParseSpec(data)
	if err != nil {
		return err
	}
	res, err := fairbench.EvaluateSpec(spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		out, err := res.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
		return nil
	}
	fmt.Fprint(stdout, res.Report())
	return nil
}
