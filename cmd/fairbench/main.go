// Command fairbench evaluates a comparison spec (JSON) with the
// fair-comparison methodology and prints an explained verdict per
// baseline.
//
// Usage:
//
//	fairbench [-json] [-example] [-audit] [spec.json]
//	fairbench -bench-json [-o FILE]
//	fairbench -compare [-threshold R] [-case-thresholds ...] [-warn-only]
//	          [-max-alloc-growth N] old.json new.json
//
// With -example, the built-in §4.2 SmartNIC-firewall spec is evaluated.
// Otherwise the spec is read from the given file, or from stdin when no
// file is given.
//
// With -bench-json, fairbench instead runs the pipeline's hot-path
// benchmarks (simulation kernel, packet parse, firewall processing,
// end-to-end testbed packet, span emission, runner cells) and emits a
// JSON baseline document — to the -o file when given, otherwise to
// stdout. Progress goes to stderr only, so stdout stays pure JSON and
// `fairbench -bench-json > BENCH_baseline.json` (re)establishes the
// perf trajectory the ROADMAP tracks.
//
// With -compare, fairbench diffs two such documents and exits nonzero
// when any case regressed past its threshold — the bench-trajectory
// gate CI runs against BENCH_baseline.json. allocs_per_op is gated
// strictly: counts are deterministic within a Go version, so any
// growth past -max-alloc-growth (default 0) fails even under
// -warn-only; the gate relaxes to a notice when the two documents were
// measured on different Go versions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairbench"
)

const exampleSpec = `{
  "plane": "throughput-power",
  "proposed": {"name": "fw-smartnic", "perf": 20, "cost": 70, "scalable": true},
  "baselines": [
    {"name": "fw-1core", "perf": 10, "cost": 50, "scalable": true},
    {"name": "fw-2core", "perf": 18, "cost": 80, "scalable": true}
  ]
}`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fairbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the text report")
	example := fs.Bool("example", false, "evaluate the built-in paper §4.2 example spec")
	audit := fs.Bool("audit", false, "treat the input as an evaluation-design audit spec and run the seven-principle checklist")
	benchJSONMode := fs.Bool("bench-json", false, "run the hot-path benchmarks and emit a BENCH baseline JSON document")
	benchOut := fs.String("o", "", "with -bench-json: write the JSON document to this file instead of stdout")
	compareMode := fs.Bool("compare", false, "diff two -bench-json documents (old.json new.json) and fail on regression")
	threshold := fs.Float64("threshold", defaultThreshold,
		"with -compare: ns_per_op ratio (new/old) above which a case counts as regressed")
	caseThresholds := fs.String("case-thresholds", "",
		`with -compare: per-case overrides as "name=ratio,name=ratio"`)
	warnOnly := fs.Bool("warn-only", false, "with -compare: report ns_per_op regressions but exit zero (alloc growth still fails)")
	maxAllocGrowth := fs.Int64("max-alloc-growth", 0,
		"with -compare: allowed allocs_per_op growth per case (negative disables the alloc gate)")
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fairbench [-json] [-example] [-audit] [spec.json]")
		fmt.Fprintln(stderr, "       fairbench -bench-json [-o FILE]")
		fmt.Fprintln(stderr, "       fairbench -compare [-threshold R] [-case-thresholds name=R,...] [-warn-only] [-max-alloc-growth N] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchJSONMode && *compareMode {
		return fmt.Errorf("-bench-json and -compare are mutually exclusive")
	}

	if *benchJSONMode {
		if *example || *audit || fs.NArg() > 0 {
			return fmt.Errorf("-bench-json takes no spec input")
		}
		out := stdout
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return benchJSON(benchCases(), out, stderr)
	}

	if *compareMode {
		if *example || *audit {
			return fmt.Errorf("-compare takes two bench JSON files, not spec input")
		}
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two arguments: old.json new.json")
		}
		perCase, err := parseCaseThresholds(*caseThresholds)
		if err != nil {
			return err
		}
		return runCompare(stdout, fs.Arg(0), fs.Arg(1), compareOptions{
			Threshold:      *threshold,
			CaseThresholds: perCase,
			WarnOnly:       *warnOnly,
			MaxAllocGrowth: *maxAllocGrowth,
		})
	}

	var data []byte
	var err error
	switch {
	case *example:
		data = []byte(exampleSpec)
	case fs.NArg() >= 1:
		data, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		data, err = io.ReadAll(stdin)
		if err != nil {
			return err
		}
	}

	if *audit {
		design, err := fairbench.ParseAuditSpec(data)
		if err != nil {
			return err
		}
		findings := fairbench.Audit(design)
		fmt.Fprint(stdout, fairbench.AuditReport(findings))
		return nil
	}

	spec, err := fairbench.ParseSpec(data)
	if err != nil {
		return err
	}
	res, err := fairbench.EvaluateSpec(spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		out, err := res.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
		return nil
	}
	fmt.Fprint(stdout, res.Report())
	return nil
}
