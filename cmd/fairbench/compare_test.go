package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchDoc marshals a synthetic bench document for the compare
// tests.
func writeBenchDoc(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	doc := benchDoc{Schema: "fairbench-bench/v1", GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64",
		Benchmarks: results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baselineResults() []benchResult {
	return []benchResult{
		{Name: "packet-parse", NsPerOp: 100},
		{Name: "sim-event-throughput", NsPerOp: 50},
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", baselineResults())
	// packet-parse regresses 2x, past the default 1.5x gate.
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 200},
		{Name: "sim-event-throughput", NsPerOp: 50},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{})
	if err == nil {
		t.Fatal("2x regression must exit nonzero")
	}
	if !strings.Contains(err.Error(), "packet-parse") {
		t.Errorf("error does not name the regressed case: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "2.00x") {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestCompareIdenticalDocsPass(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", baselineResults())
	nw := writeBenchDoc(t, dir, "new.json", baselineResults())
	var out bytes.Buffer
	if err := run([]string{"-compare", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("identical docs must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestCompareWarnOnly(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", baselineResults())
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 500},
		{Name: "sim-event-throughput", NsPerOp: 50},
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", "-warn-only", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("warn-only must exit zero: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "warn-only") {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestComparePerCaseThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", baselineResults())
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 200}, // 2x, allowed by the 3x override
		{Name: "sim-event-throughput", NsPerOp: 50},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", "-case-thresholds", "packet-parse=3.0", old, nw},
		strings.NewReader(""), &out, &bytes.Buffer{})
	if err != nil {
		t.Fatalf("override should absorb the 2x: %v\n%s", err, out.String())
	}
	// But tightening the override below 2x must fail it.
	err = run([]string{"-compare", "-case-thresholds", "packet-parse=1.1", old, nw},
		strings.NewReader(""), &out, &bytes.Buffer{})
	if err == nil {
		t.Fatal("tightened override must fail the 2x case")
	}
}

func TestCompareMissingAndNewCases(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", baselineResults())
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "sim-event-throughput", NsPerOp: 50},
		{Name: "brand-new-case", NsPerOp: 10},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{})
	if err == nil {
		t.Fatal("a dropped case must fail the gate")
	}
	got := out.String()
	if !strings.Contains(got, "MISSING") || !strings.Contains(got, "packet-parse") {
		t.Errorf("missing case not reported:\n%s", got)
	}
	if !strings.Contains(got, "brand-new-case") || !strings.Contains(got, "no baseline yet") {
		t.Errorf("new case not reported:\n%s", got)
	}
}

func TestCompareFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-compare", "one.json"},                          // not two args
		{"-compare", "a.json", "b.json", "c.json"},        // not two args
		{"-compare", "-example", "a.json", "b.json"},      // spec-mode conflict
		{"-compare", "-bench-json", "a.json", "b.json"},   // mode conflict
		{"-compare", "-case-thresholds", "bad", "a", "b"}, // malformed override
	} {
		if err := run(args, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("%v: expected an error", args)
		}
	}
}

func TestCompareRejectsNonBenchDoc(t *testing.T) {
	dir := t.TempDir()
	bogus := filepath.Join(dir, "bogus.json")
	if err := os.WriteFile(bogus, []byte(`{"schema":"other/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeBenchDoc(t, dir, "good.json", baselineResults())
	if err := run([]string{"-compare", bogus, good}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("non-bench schema must be rejected")
	}
	if err := run([]string{"-compare", good, filepath.Join(dir, "absent.json")},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must be rejected")
	}
}

func TestParseCaseThresholds(t *testing.T) {
	got, err := parseCaseThresholds("a=1.5, b=2")
	if err != nil || got["a"] != 1.5 || got["b"] != 2 {
		t.Errorf("got %v, %v", got, err)
	}
	for _, bad := range []string{"a", "=2", "a=zero", "a=-1"} {
		if _, err := parseCaseThresholds(bad); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
	if got, err := parseCaseThresholds(""); err != nil || got != nil {
		t.Errorf("empty: %v, %v", got, err)
	}
}

// TestBenchJSONKeepsStdoutPure pins the stream contract: progress on
// stderr only, the JSON document alone on the output writer. Uses tiny
// fake cases so the test runs in milliseconds.
func TestBenchJSONKeepsStdoutPure(t *testing.T) {
	cases := map[string]func(b *testing.B){
		"fake-a": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = i * i
			}
		},
		"fake-b": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = i + i
			}
		},
	}
	var out, progress bytes.Buffer
	if err := benchJSON(cases, &out, &progress); err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out.String())
	}
	if len(doc.Benchmarks) != 2 || doc.Benchmarks[0].Name != "fake-a" {
		t.Errorf("doc = %+v", doc)
	}
	for _, frag := range []string{"bench 1/2 fake-a", "bench 2/2 fake-b", "ns/op"} {
		if !strings.Contains(progress.String(), frag) {
			t.Errorf("progress missing %q:\n%s", frag, progress.String())
		}
	}
}

func TestCompareAllocGate(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchDoc(t, dir, "old.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "obs-span", NsPerOp: 300, AllocsPerOp: 6},
	})
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 100, AllocsPerOp: 2}, // new allocation on a zero-alloc path
		{Name: "obs-span", NsPerOp: 300, AllocsPerOp: 6},
	})
	// Alloc growth fails the gate even under -warn-only: counts are
	// deterministic, so there is no runner noise to forgive.
	var out bytes.Buffer
	err := run([]string{"-compare", "-warn-only", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{})
	if err == nil {
		t.Fatal("alloc growth must exit nonzero despite -warn-only")
	}
	if !strings.Contains(err.Error(), "packet-parse") {
		t.Errorf("error does not name the case: %v", err)
	}
	if !strings.Contains(out.String(), "ALLOCS") {
		t.Errorf("report missing the ALLOCS line:\n%s", out.String())
	}
	// A loosened budget absorbs the growth; a negative one disables the
	// gate entirely.
	for _, budget := range []string{"2", "-1"} {
		var out bytes.Buffer
		if err := run([]string{"-compare", "-max-alloc-growth", budget, old, nw},
			strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
			t.Errorf("-max-alloc-growth %s should pass: %v\n%s", budget, err, out.String())
		}
	}
}

func TestCompareAllocGateNeedsMatchingGoVersion(t *testing.T) {
	// Escape analysis moves allocation counts across Go releases, so
	// the alloc gate only arms when both documents share a version.
	dir := t.TempDir()
	doc := benchDoc{Schema: "fairbench-bench/v1", GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
		Benchmarks: []benchResult{{Name: "packet-parse", NsPerOp: 100, AllocsPerOp: 0}}}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, data, 0o644); err != nil {
		t.Fatal(err)
	}
	nw := writeBenchDoc(t, dir, "new.json", []benchResult{
		{Name: "packet-parse", NsPerOp: 100, AllocsPerOp: 5},
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", old, nw}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("cross-version alloc growth must not fail: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "alloc gate off") {
		t.Errorf("report missing the cross-version notice:\n%s", out.String())
	}
}
