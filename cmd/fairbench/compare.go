package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench-trajectory gate (-compare): diff two -bench-json documents and
// fail when a case's ns_per_op grew past its threshold. The default is
// deliberately generous — these are wall-clock numbers from shared CI
// runners, so the gate is meant to catch step-change regressions (a 2×
// slowdown from an accidental O(n²) path), not single-digit noise.

// defaultThreshold is the ns_per_op ratio (new/old) above which a case
// counts as regressed unless overridden per case.
const defaultThreshold = 1.5

// compareOptions configures runCompare.
type compareOptions struct {
	// Threshold applies to every case without an override.
	Threshold float64
	// CaseThresholds overrides the threshold per benchmark name.
	CaseThresholds map[string]float64
	// WarnOnly reports ns_per_op regressions but returns nil so CI can
	// observe the trajectory before enforcing it. Alloc regressions are
	// NOT covered: allocation counts are deterministic on a given Go
	// version, so they fail the gate even under WarnOnly.
	WarnOnly bool
	// MaxAllocGrowth is the allowed absolute growth in allocs_per_op
	// (default 0: any new allocation on a hot path fails). Negative
	// disables the alloc gate.
	MaxAllocGrowth int64
}

// parseCaseThresholds parses "name=ratio,name=ratio".
func parseCaseThresholds(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("case threshold %q: want name=ratio", part)
		}
		ratio, err := strconv.ParseFloat(val, 64)
		if err != nil || ratio <= 0 {
			return nil, fmt.Errorf("case threshold %q: bad ratio %q", part, val)
		}
		out[name] = ratio
	}
	return out, nil
}

// loadBenchDoc reads and validates one -bench-json document.
func loadBenchDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != "fairbench-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q is not a fairbench bench document", path, doc.Schema)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// runCompare diffs old against new and returns a non-nil error (the
// nonzero exit) when any case regressed and WarnOnly is off. Cases
// missing from the new document also fail — a silently dropped
// benchmark is how trajectories go dark. allocs_per_op is gated
// separately and strictly: allocation counts don't wobble with runner
// load the way wall-clock does, so growth past MaxAllocGrowth fails
// even under WarnOnly — but only when both documents come from the
// same Go version (the compiler's escape analysis moves counts across
// releases).
func runCompare(stdout io.Writer, oldPath, newPath string, o compareOptions) error {
	oldDoc, err := loadBenchDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadBenchDoc(newPath)
	if err != nil {
		return err
	}
	newByName := map[string]benchResult{}
	for _, b := range newDoc.Benchmarks {
		newByName[b.Name] = b
	}
	gateAllocs := o.MaxAllocGrowth >= 0 && oldDoc.GoVersion == newDoc.GoVersion
	if o.MaxAllocGrowth >= 0 && !gateAllocs {
		fmt.Fprintf(stdout, "alloc gate off: baseline is %s, new document is %s (counts not comparable)\n",
			oldDoc.GoVersion, newDoc.GoVersion)
	}

	var regressed, missing, allocGrew []string
	fmt.Fprintf(stdout, "bench compare: %s -> %s (threshold %.2fx)\n", oldPath, newPath, o.Threshold)
	for _, old := range oldDoc.Benchmarks {
		nw, ok := newByName[old.Name]
		delete(newByName, old.Name)
		if !ok {
			missing = append(missing, old.Name)
			fmt.Fprintf(stdout, "  MISSING %-28s dropped from new document\n", old.Name)
			continue
		}
		limit := o.Threshold
		if t, ok := o.CaseThresholds[old.Name]; ok {
			limit = t
		}
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = nw.NsPerOp / old.NsPerOp
		}
		verdict := "ok"
		if ratio > limit {
			verdict = "REGRESSED"
			regressed = append(regressed, old.Name)
		} else if ratio > 0 && ratio < 1/limit {
			verdict = "improved"
		}
		fmt.Fprintf(stdout, "  %-9s %-28s %12.0f -> %12.0f ns/op  %5.2fx (limit %.2fx)\n",
			verdict, old.Name, old.NsPerOp, nw.NsPerOp, ratio, limit)
		if gateAllocs && nw.AllocsPerOp > old.AllocsPerOp+o.MaxAllocGrowth {
			allocGrew = append(allocGrew, old.Name)
			fmt.Fprintf(stdout, "  ALLOCS    %-28s %12d -> %12d allocs/op (limit +%d)\n",
				old.Name, old.AllocsPerOp, nw.AllocsPerOp, o.MaxAllocGrowth)
		}
	}
	extra := make([]string, 0, len(newByName))
	for name := range newByName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(stdout, "  new       %-28s (no baseline yet)\n", name)
	}

	if len(regressed) == 0 && len(missing) == 0 && len(allocGrew) == 0 {
		fmt.Fprintf(stdout, "no regressions across %d cases\n", len(oldDoc.Benchmarks))
		return nil
	}
	msg := fmt.Sprintf("%d regressed, %d missing, %d alloc growth of %d cases",
		len(regressed), len(missing), len(allocGrew), len(oldDoc.Benchmarks))
	fmt.Fprintln(stdout, msg)
	if len(allocGrew) > 0 {
		// Deterministic on this Go version: warn-only never applies.
		return fmt.Errorf("alloc regression: %s allocate more per op than the baseline allows",
			strings.Join(allocGrew, ", "))
	}
	if o.WarnOnly {
		fmt.Fprintln(stdout, "(warn-only: not failing the run)")
		return nil
	}
	return fmt.Errorf("bench regression: %s (regressed: %s)",
		msg, strings.Join(append(regressed, missing...), ", "))
}
