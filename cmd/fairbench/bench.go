package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"

	"fairbench/internal/nf"
	"fairbench/internal/obs"
	"fairbench/internal/packet"
	"fairbench/internal/runner"
	"fairbench/internal/sim"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// Performance baseline (-bench-json): the ROADMAP asks for a perf
// trajectory across PRs, which needs a first checked-in baseline.
// This file measures the pipeline's hot paths with testing.Benchmark
// (a command cannot import _test files, so the closures mirror the
// bench_test.go shapes) and emits a stable JSON document. The numbers
// are machine-dependent by nature — the artifact documents a
// trajectory on comparable hardware, it is not a determinism surface.

// benchResult is one benchmark's figures.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchDoc is the emitted document.
type benchDoc struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchCases returns the hot-path benchmarks, keyed by stable names.
// Each op is one event/packet, so ops_per_sec reads as events/sec or
// packets/sec directly.
func benchCases() map[string]func(b *testing.B) {
	return map[string]func(b *testing.B){
		// Simulation kernel: schedule-and-run one event per op.
		"sim-event-throughput": func(b *testing.B) {
			s := sim.New()
			var tick func()
			n := 0
			tick = func() {
				n++
				if n < b.N {
					_ = s.At(s.Now()+1, tick)
				}
			}
			_ = s.At(1, tick)
			b.ResetTimer()
			s.RunAll()
		},
		// Header parse and validation of one prebuilt frame per op.
		"packet-parse": func(b *testing.B) {
			g, err := workload.NewGenerator(workload.Spec{Flows: 64, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			pk, err := g.Next()
			if err != nil {
				b.Fatal(err)
			}
			p := packet.NewParser()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Parse(pk.Frame); err != nil {
					b.Fatal(err)
				}
			}
		},
		// Linear-matcher firewall processing one parsed packet per op.
		"nf-firewall-process": func(b *testing.B) {
			fw := nf.NewFirewall("bench", nf.NewLinearMatcher(
				testbed.FirewallRules(testbed.DefaultFillerRules)))
			g, err := workload.NewGenerator(workload.Spec{Flows: 64, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			pk, err := g.Next()
			if err != nil {
				b.Fatal(err)
			}
			p := packet.NewParser()
			if err := p.Parse(pk.Frame); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fw.Process(p, pk.Frame); err != nil {
					b.Fatal(err)
				}
			}
		},
		// End-to-end simulated SmartNIC deployment: one offered packet
		// per op (4 Mpps CBR, so wall time per op is the simulator's
		// per-packet cost across dispatch, devices and meters).
		"testbed-smartnic-packet": func(b *testing.B) {
			d, err := testbed.SmartNICFirewall()
			if err != nil {
				b.Fatal(err)
			}
			g, err := testbed.E6Workload(1)
			if err != nil {
				b.Fatal(err)
			}
			const pps = 4e6
			b.ResetTimer()
			if _, err := d.Run(g, workload.CBR{}, pps, float64(b.N)/pps); err != nil {
				b.Fatal(err)
			}
		},
		// Observability span lifecycle: open, attribute, end (no writer).
		"obs-span": func(b *testing.B) {
			tr := obs.New(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.StartSpan(float64(i))
				sp.Stage("queue", 1e-6)
				sp.Stage("service", 2e-6)
				sp.End("bench", "forward")
			}
		},
		// Parallel sweep executor: one sweep cell per op, serial vs a
		// worker per core. The cell body is a short simulation-kernel
		// burst — the pair documents the executor's speedup trajectory on
		// the machine at hand.
		"runner-cell-serial":   benchRunnerCells(1),
		"runner-cell-parallel": benchRunnerCells(runtime.NumCPU()),
		// Bounded conntrack under table pressure: one packet per op
		// against a table a quarter the size of the flow population, so
		// every policy runs its degradation path (refusal or eviction)
		// continuously, not just its fast path.
		"nf-conntrack-evict-none":   benchConntrack(nf.EvictNone),
		"nf-conntrack-evict-random": benchConntrack(nf.EvictRandom),
		"nf-conntrack-evict-lru":    benchConntrack(nf.EvictLRU),
		// Internet-scale scenario generation: one drawn packet per op
		// from a Zipf population with SYN flood and churn active — the
		// overload experiments' per-packet generation cost.
		"workload-scenario-gen": func(b *testing.B) {
			sc, err := workload.ParseScenario(
				"zipf:flows=1000000,skew=1.1,tcp=0.3;synflood:rate=0.3;churn:life=5ms;seed:1")
			if err != nil {
				b.Fatal(err)
			}
			g, err := workload.NewScenarioGen(sc)
			if err != nil {
				b.Fatal(err)
			}
			const dt = 2.5e-7 // 4 Mpps arrival spacing drives the churn clock
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.NextAt(float64(i) * dt); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// benchConntrack measures the stateful firewall with the given eviction
// policy at a 4:1 flow-to-table ratio. Each op is one packet.
func benchConntrack(policy nf.EvictPolicy) func(b *testing.B) {
	return func(b *testing.B) {
		const flows, entries = 4096, 1024
		ct := nf.NewConntrackWith("bench", nf.NewLinearMatcher(
			testbed.FirewallRules(testbed.DefaultFillerRules)),
			nf.ConntrackConfig{MaxEntries: entries, Policy: policy, Seed: 1})
		g, err := workload.NewGenerator(workload.Spec{Flows: flows, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		parsers := make([]*packet.Parser, flows)
		for i := range parsers {
			pk, err := g.Next()
			if err != nil {
				b.Fatal(err)
			}
			parsers[i] = packet.NewParser()
			if err := parsers[i].Parse(pk.Frame); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ct.Process(parsers[i%flows], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRunnerCells measures runner.Map over CPU-bound cells at the
// given worker count. Each op is one cell (a 2000-event simulator
// burst), so serial vs parallel ns_per_op reads directly as the
// executor's per-cell speedup.
func benchRunnerCells(jobs int) func(b *testing.B) {
	return func(b *testing.B) {
		cell := func(int) (int, error) {
			s := sim.New()
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < 2000 {
					_ = s.At(s.Now()+1, tick)
				}
			}
			_ = s.At(1, tick)
			s.RunAll()
			return n, nil
		}
		b.ResetTimer()
		if _, err := runner.Map(jobs, b.N, cell); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJSON measures every case and writes the JSON document to out.
// Human-readable progress goes to progress only: out may be stdout in a
// `fairbench -bench-json > baseline.json` pipe and must stay pure JSON.
func benchJSON(cases map[string]func(b *testing.B), out, progress io.Writer) error {
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)

	doc := benchDoc{
		Schema:    "fairbench-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for i, name := range names {
		fmt.Fprintf(progress, "bench %d/%d %s...", i+1, len(names), name)
		r := testing.Benchmark(cases[name])
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		fmt.Fprintf(progress, " %.0f ns/op\n", ns)
		res := benchResult{
			Name:        name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if ns > 0 {
			res.OpsPerSec = 1e9 / ns
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(data))
	return err
}
