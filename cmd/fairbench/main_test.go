package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExample(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-example"}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"fw-smartnic", "proposed-superior", "Principle 6"} {
		if !strings.Contains(got, frag) {
			t.Errorf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-example", "-json"}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Proposed string `json:"proposed"`
		Verdicts []struct {
			Conclusion string `json:"conclusion"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if parsed.Proposed != "fw-smartnic" || len(parsed.Verdicts) != 2 {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestRunFromFile(t *testing.T) {
	spec := `{
	  "plane": "latency-power",
	  "proposed": {"name": "a", "perf": 5, "cost": 100},
	  "baselines": [{"name": "b", "perf": 10, "cost": 300}]
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "proposed-superior") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunFromStdin(t *testing.T) {
	spec := `{
	  "proposed": {"name": "a", "perf": 20, "cost": 70, "scalable": true},
	  "baselines": [{"name": "b", "perf": 10, "cost": 50, "scalable": true}]
	}`
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(spec), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Comparison: a") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("{nope"), &out, &bytes.Buffer{}); err == nil {
		t.Error("bad spec should fail")
	}
	if err := run([]string{"/does/not/exist.json"}, strings.NewReader(""), &out, &bytes.Buffer{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunAuditMode(t *testing.T) {
	spec := `{
	  "cost_metrics": ["tco"],
	  "systems": [{"name": "sys", "components": {"host": {"tco": 10000}}}]
	}`
	var out bytes.Buffer
	if err := run([]string{"-audit"}, strings.NewReader(spec), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "violation") || !strings.Contains(got, "Principle 1") {
		t.Errorf("audit output:\n%s", got)
	}
}

func TestBenchJSONRejectsSpecInput(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-bench-json", "-example"},
		{"-bench-json", "-audit"},
		{"-bench-json", "spec.json"},
	} {
		if err := run(args, strings.NewReader(""), &out, &bytes.Buffer{}); err == nil {
			t.Errorf("%v: expected an error", args)
		}
	}
}

func TestBenchJSONEmitsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks take seconds each")
	}
	var out bytes.Buffer
	if err := run([]string{"-bench-json"}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string `json:"schema"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != "fairbench-bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Benchmarks) != 11 {
		t.Fatalf("want 11 benchmarks, got %d", len(doc.Benchmarks))
	}
	for i, b := range doc.Benchmarks {
		if b.NsPerOp <= 0 {
			t.Errorf("benchmark %s: ns_per_op %v", b.Name, b.NsPerOp)
		}
		if i > 0 && doc.Benchmarks[i-1].Name >= b.Name {
			t.Errorf("benchmarks not sorted by name at %d: %s >= %s", i, doc.Benchmarks[i-1].Name, b.Name)
		}
	}
}
