package fairbench

import (
	"strings"
	"testing"

	"fairbench/internal/rfc2544"
)

func TestRunBurstSensitivity(t *testing.T) {
	res, err := RunBurstSensitivity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 { // 2 systems × 3 arrival processes
		t.Fatalf("points = %d", len(res.Points))
	}
	byKey := map[string]BurstPoint{}
	for _, p := range res.Points {
		byKey[p.System+"/"+p.Arrival] = p
	}
	for _, sys := range []string{"fw-host-1core", "fw-smartnic"} {
		cbr, ok1 := byKey[sys+"/cbr"]
		onoff, ok2 := byKey[sys+"/onoff-20%-2.0ms"]
		if !ok1 || !ok2 {
			t.Fatalf("missing points for %s: %v", sys, byKey)
		}
		// Bursty arrivals at the same mean load must not improve tail
		// latency, and generally worsen it substantially.
		if onoff.LatencyP99Us < cbr.LatencyP99Us {
			t.Errorf("%s: on/off p99 (%v) below CBR p99 (%v)", sys, onoff.LatencyP99Us, cbr.LatencyP99Us)
		}
		// CBR at 70%% load is loss-free.
		if cbr.LossFraction > 0.001 {
			t.Errorf("%s: CBR loss = %v", sys, cbr.LossFraction)
		}
	}

	rep := BurstReport(res)
	for _, frag := range []string{"Burst sensitivity", "cbr", "poisson", "onoff"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	svg := BurstLatencyChart(res).SVG()
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("chart series = %d", strings.Count(svg, "<polyline"))
	}
}

func TestRFC2544Charts(t *testing.T) {
	// Synthetic series — render-only.
	e := RFC2544Result{}
	e.LossCurve = append(e.LossCurve,
		lossPoint(1e6, 0), lossPoint(4e6, 0.2), lossPoint(8e6, 0.6))
	e.Latency = append(e.Latency,
		latPoint(0.5, 4, 5), latPoint(1.0, 90, 160))
	loss := RFC2544LossChart(e).SVG()
	if !strings.Contains(loss, "frame-loss") {
		t.Error("loss chart missing title")
	}
	lat := RFC2544LatencyChart(e).SVG()
	if strings.Count(lat, "<polyline") != 2 {
		t.Error("latency chart should have p50 and p99 series")
	}
}

// lossPoint and latPoint build synthetic RFC 2544 series entries.
func lossPoint(pps, frac float64) rfc2544.LossPoint {
	return rfc2544.LossPoint{OfferedPps: pps, LossFraction: frac}
}

func latPoint(load, p50, p99 float64) rfc2544.LatencyPoint {
	return rfc2544.LatencyPoint{LoadFraction: load, P50Us: p50, P99Us: p99}
}
