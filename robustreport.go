package fairbench

import (
	"fmt"
	"strings"

	"fairbench/internal/core"
	"fairbench/internal/report"
)

// RobustSmartNICReport renders the replicated §4.2 example as markdown:
// the per-trial measurements behind each system, the per-axis bootstrap
// confidence intervals, and the robust verdict with its conclusion
// distribution. Deterministic in the option seed.
func RobustSmartNICReport(e SmartNICResult, o ExpOptions) string {
	var b strings.Builder
	b.WriteString("# §4.2 example under replication: robust verdict\n\n")
	fmt.Fprintf(&b, "Each system measured over %d independently seeded RFC 2544 searches "+
		"(base seed %d, per-trial seeds via SplitMix mixing).\n\n",
		len(e.Proposed.Trials), o.Seed)

	trials := report.NewTable("Per-trial measurements",
		"System", "Trial", "Seed", "Throughput (Gb/s)", "Power (W)", "p99 latency (µs)")
	for _, sys := range []ReplicatedSystem{e.Baseline2, e.Proposed} {
		for i, m := range sys.Trials {
			trials.AddRowf("%s|%d|%d|%.3f|%.0f|%.2f",
				sys.Name, i, sys.Seeds[i], m.ThroughputGbps, m.PowerWatts, m.LatencyP99Us)
		}
	}
	b.WriteString(trials.Markdown())
	b.WriteString("\n")

	if e.RobustVs2 == nil {
		b.WriteString("Run was not replicated (Trials < 2): no robust verdict.\n")
		return b.String()
	}
	rv := e.RobustVs2

	axes := report.NewTable(fmt.Sprintf("Across-trial axis summaries (%.0f%% bootstrap CIs)", rv.Level*100),
		"System", "Axis", "Median", "CI", "Half-width", "CV", "Outlier trials")
	addAxis := func(system, axis string, s core.AxisSummary) {
		axes.AddRowf("%s|%s|%.3f|%s|%.3f|%.4f|%d",
			system, axis, s.Median, s.CI, s.CI.HalfWidth(), s.CV, s.Outliers)
	}
	addAxis(e.Proposed.Name, "throughput (Gb/s)", rv.ProposedPerf)
	addAxis(e.Proposed.Name, "power (W)", rv.ProposedCost)
	addAxis(e.Baseline2.Name, "throughput (Gb/s)", rv.BaselinePerf)
	addAxis(e.Baseline2.Name, "power (W)", rv.BaselineCost)
	b.WriteString(axes.Markdown())
	b.WriteString("\n")

	fmt.Fprintf(&b, "## Verdict\n\n%s vs %s: **%s**\n\n", e.Proposed.Name, e.Baseline2.Name, rv)
	dist := report.NewTable("Conclusion distribution over resamples", "Conclusion", "Resamples", "Share")
	for _, c := range conclusionOrder(rv) {
		n := rv.Distribution[c]
		dist.AddRowf("%s|%d|%.1f%%", c, n, 100*float64(n)/float64(rv.Resamples))
	}
	b.WriteString(dist.Markdown())
	b.WriteString("\n")
	if len(rv.Flips) > 0 {
		names := make([]string, len(rv.Flips))
		for i, c := range rv.Flips {
			names[i] = c.String()
		}
		fmt.Fprintf(&b, "Observed flips (most frequent first): %s.\n\n", strings.Join(names, ", "))
	} else {
		b.WriteString("No resample disagreed with the nominal conclusion.\n\n")
	}
	fmt.Fprintf(&b, "Sensitivity grid at the measured noise level: %.1f%% of ±%.0f%% "+
		"perturbations keep the nominal conclusion (%d evaluations).\n",
		rv.Sensitivity.Stability*100, rv.Sensitivity.RelError*100, rv.Sensitivity.Evaluations)
	return b.String()
}

// conclusionOrder lists the observed conclusions nominal-first, then
// flips by descending frequency — the order a reader scans them in.
func conclusionOrder(rv *core.RobustVerdict) []core.Conclusion {
	out := []core.Conclusion{rv.Conclusion}
	out = append(out, rv.Flips...)
	return out
}
