package fairbench

import (
	"fmt"
	"sort"

	"fairbench/internal/core"
	"fairbench/internal/measure"
	"fairbench/internal/metric"
	"fairbench/internal/nf"
	"fairbench/internal/report"
	"fairbench/internal/runner"
	"fairbench/internal/stats"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// State pressure: fairness under overload. The fault sweep asks
// whether a verdict survives component failure; this experiment asks
// whether it survives *state exhaustion* — internet-scale adversarial
// traffic (SYN floods, flash crowds, flow churn) pressing on bounded
// conntrack and offload tables. The §4.2 pair is re-run with explicit
// degradation semantics (eviction policies, SYN cookies, offload-table
// punting), per-class goodput-vs-throughput metering, and a verdict
// flip map over offload-table provisioning: the same comparison that
// favours the SmartNIC at ample table sizes inverts when churned flows
// overflow a fail-closed offload table, so the claim must state the
// provisioning regime it holds in (Principle 2 applied to a knob).

// statePressureOfferedPps fixes the offered load above the SmartNIC
// fast-path capacity (4.2 Mpps) and the single host core (~4.4 Mpps)
// but within their sum and within the 2-core baseline: the SmartNIC
// system delivers it only while the offload table actually absorbs the
// flow population, which is exactly the pressure this experiment
// varies. (The fault sweep deliberately sits below both; overload is
// this experiment's subject, not a nuisance.)
const statePressureOfferedPps = 6e6

// statePressureFlows scales the concurrent flow population to the
// trial length so per-flow repeat counts — and with them offload-table
// hit rates — stay meaningful at any fidelity (~16 packets per flow on
// average). The scenario generator itself is O(1) in the population
// size; workload tests exercise it at 10^7 flows.
func statePressureFlows(durationSeconds float64) int {
	flows := int(statePressureOfferedPps * durationSeconds / 16)
	if flows < 512 {
		flows = 512
	}
	if flows > 1<<20 {
		flows = 1 << 20
	}
	return flows
}

// statePressureConntrack is the production host-table configuration
// both systems run: a bounded LRU table with SYN cookies, sized to
// absorb the legitimate population.
func statePressureConntrack(seed uint64) nf.ConntrackConfig {
	return nf.ConntrackConfig{MaxEntries: 1 << 16, Policy: nf.EvictLRU, SYNCookies: true, Seed: seed}
}

// StatePressureRegime is one adversarial traffic regime: a name and
// the full scenario spec that reproduces it (replayable via
// fairsim -scenario).
type StatePressureRegime struct {
	Name     string
	Scenario workload.Scenario
}

// StatePressureRegimes returns the overload catalogue, scaled to the
// trial length: nominal Zipf traffic, a flash crowd doubling offered
// load mid-run, a half-rate spoofed SYN flood, and whole-population
// flow churn. The first regime is the healthy reference.
func StatePressureRegimes(durationSeconds float64) []StatePressureRegime {
	base := workload.Scenario{
		Flows:       statePressureFlows(durationSeconds),
		Skew:        1.1,
		TCPFraction: 0.3,
	}
	flash, flood, churn := base, base, base
	flash.Flash = &workload.FlashClause{At: durationSeconds * 0.25, For: durationSeconds * 0.5, Peak: 2}
	flood.SYNFlood = &workload.FloodClause{Rate: 0.5}
	churn.Churn = &workload.ChurnClause{Lifetime: durationSeconds / 2}
	return []StatePressureRegime{
		{Name: "nominal", Scenario: base},
		{Name: "flash-crowd", Scenario: flash},
		{Name: "syn-flood", Scenario: flood},
		{Name: "churn", Scenario: churn},
	}
}

// statePressureProposed builds the SmartNIC system with the given
// offload-table provisioning.
func statePressureProposed(seed uint64, tableSize int, evict nf.EvictPolicy) (*testbed.Deployment, []measure.StateProbe, error) {
	snic := testbed.ScenarioSmartNIC
	snic.FlowTableSize = tableSize
	snic.TableEvict = evict
	snic.EvictSeed = seed
	return testbed.StatePressureSmartNIC("fw-smartnic-ct", snic, statePressureConntrack(seed))
}

// statePressureBaseline builds the 2-core host system.
func statePressureBaseline(seed uint64) (*testbed.Deployment, []measure.StateProbe, error) {
	return testbed.StatePressureHost("fw-host-2core-ct", 2, statePressureConntrack(seed))
}

// StatePressureMeasurement is one system's measured operating point
// under one regime: the Pareto coordinates (goodput, power) plus the
// state-pressure figures of merit.
type StatePressureMeasurement struct {
	Name string
	// GoodputGbps counts delivered legitimate traffic only;
	// ThroughputGbps counts everything delivered.
	GoodputGbps, ThroughputGbps float64
	PowerWatts                  float64
	LossFraction                float64
	// CollateralFraction is the share of legitimate packets the system
	// failed under pressure.
	CollateralFraction float64
	// State carries the full per-class and per-table summary (the
	// occupancy curves come from State.Samples).
	State measure.StateSummary
	// Conntrack aggregates the host tables' attributed counters.
	Conntrack nf.ConntrackStats
}

// PrimaryTable returns the system's headline state table (the offload
// table for the SmartNIC system, the conntrack table for the host).
func (m StatePressureMeasurement) PrimaryTable() measure.StateTableSummary {
	if len(m.State.Tables) == 0 {
		return measure.StateTableSummary{}
	}
	return m.State.Tables[0]
}

// StatePressureRow pairs the two systems' measurements under one
// regime. Proposed and Baseline are the nominal (median-goodput)
// trials; the trial slices and collateral CIs are populated when the
// run was replicated (Trials >= 2).
type StatePressureRow struct {
	Regime                         StatePressureRegime
	Proposed, Baseline             StatePressureMeasurement
	ProposedTrials, BaselineTrials []StatePressureMeasurement
	// Bootstrap confidence intervals of the collateral-damage medians
	// (zero-valued when unreplicated).
	ProposedCollateralCI, BaselineCollateralCI stats.Interval
}

// StatePressureFlipRow is the proposed system's measurement at one
// offload-table size of the flip-map sweep (the baseline is the churn
// row's — it does not depend on the swept knob).
type StatePressureFlipRow struct {
	TableSize      int
	Proposed       StatePressureMeasurement
	ProposedTrials []StatePressureMeasurement
}

// EvictionPolicyRow is one host-table degradation policy measured
// under the SYN-flood regime.
type EvictionPolicyRow struct {
	Policy      string
	Measurement StatePressureMeasurement
}

// StatePressureResult is the full experiment.
type StatePressureResult struct {
	OfferedPps float64
	Rows       []StatePressureRow
	// Comparison asks whether the healthy-regime verdict survives the
	// overload catalogue; Robust attaches per-regime relation agreement
	// when replicated.
	Comparison core.DegradedComparison
	Robust     *core.RobustDegradedComparison
	// FlipMap sweeps the offload-table size under churn with a
	// fail-closed (EvictNone) table; FlipRobust attaches per-size
	// agreement when replicated.
	FlipMap    core.FlipMap
	FlipRows   []StatePressureFlipRow
	FlipRobust *core.RobustDegradedComparison
	// Policies compares host-table eviction policies under the
	// SYN-flood regime.
	Policies []EvictionPolicyRow
}

// runStatePressure measures one system under one scenario with the
// traffic seeded for one trial.
func runStatePressure(mk func(seed uint64) (*testbed.Deployment, []measure.StateProbe, error), o ExpOptions, sc workload.Scenario, seed uint64) (StatePressureMeasurement, error) {
	d, probes, err := mk(seed)
	if err != nil {
		return StatePressureMeasurement{}, err
	}
	sc.Seed = seed
	sg, err := workload.NewScenarioGen(sc)
	if err != nil {
		return StatePressureMeasurement{}, err
	}
	sm := measure.NewStateMeter()
	for _, p := range probes {
		sm.AddProbe(p)
	}
	res, err := d.RunScenario(sg, workload.Poisson{}, statePressureOfferedPps, o.TrialSeconds, sm)
	if err != nil {
		return StatePressureMeasurement{}, err
	}
	s, err := sm.Summarize(o.TrialSeconds)
	if err != nil {
		return StatePressureMeasurement{}, err
	}
	m := StatePressureMeasurement{
		Name:               res.Name,
		GoodputGbps:        s.GoodputGbps,
		ThroughputGbps:     s.ThroughputGbps,
		PowerWatts:         res.ProvisionedPowerWatts,
		LossFraction:       res.LossFraction,
		CollateralFraction: s.CollateralFraction,
		State:              s,
		Conntrack:          testbed.ConntrackStatsOf(d),
	}
	for _, c := range []struct {
		what string
		v    float64
	}{{"goodput", m.GoodputGbps}, {"power", m.PowerWatts}, {"collateral", m.CollateralFraction}} {
		if err := measure.CheckFinite(res.Name+" "+c.what, c.v); err != nil {
			return StatePressureMeasurement{}, err
		}
	}
	return m, nil
}

// runStatePressureTrials replicates runStatePressure over o.Trials
// seeded trials; trials fan out over runner.Map when o.Jobs > 1 and
// are byte-identical at any worker count.
func runStatePressureTrials(mk func(seed uint64) (*testbed.Deployment, []measure.StateProbe, error), o ExpOptions, sc workload.Scenario) ([]StatePressureMeasurement, error) {
	k := o.Trials
	if k < 1 {
		k = 1
	}
	return runner.Map(o.Jobs, k, func(t int) (StatePressureMeasurement, error) {
		seed := TrialSeed(o.Seed, t)
		m, err := runStatePressure(mk, o, sc, seed)
		if err != nil {
			return StatePressureMeasurement{}, fmt.Errorf("trial %d (seed %d): %w", t, seed, err)
		}
		return m, nil
	})
}

// nominalStatePressure picks the median-goodput trial (stable sort,
// lower-middle element — the rule every replicated driver uses).
func nominalStatePressure(trials []StatePressureMeasurement) StatePressureMeasurement {
	idx := make([]int, len(trials))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return trials[idx[a]].GoodputGbps < trials[idx[b]].GoodputGbps
	})
	return trials[idx[(len(trials)-1)/2]]
}

// statePressureSamples extracts paired (goodput, power) samples for
// the bootstrap, plus the collateral-damage samples.
func statePressureSamples(trials []StatePressureMeasurement) (pt core.PointSamples, collateral []float64) {
	for _, m := range trials {
		pt.Perf = append(pt.Perf, m.GoodputGbps)
		pt.Cost = append(pt.Cost, m.PowerWatts)
		collateral = append(collateral, m.CollateralFraction)
	}
	return pt, collateral
}

func statePressurePoint(m StatePressureMeasurement) core.Point {
	return core.Pt(metric.Q(m.GoodputGbps, metric.GigabitPerSecond), metric.Q(m.PowerWatts, metric.Watt))
}

// statePressureFlipSizes is the offload-table provisioning sweep,
// amply-provisioned end first (the flip map's reference).
var statePressureFlipSizes = []int{65536, 16384, 4096, 1024}

// RunStatePressure measures both systems under every overload regime,
// compares them per regime (first regime = healthy reference), sweeps
// the offload-table size under churn with a fail-closed table for the
// verdict flip map, and compares host-table eviction policies under
// the SYN flood. With Trials >= 2 every (system, regime) and flip-map
// cell is replicated over independently seeded trials and the verdicts
// carry bootstrap relation agreement.
func RunStatePressure(o ExpOptions) (StatePressureResult, error) {
	out := StatePressureResult{OfferedPps: statePressureOfferedPps}
	if err := o.Validate(); err != nil {
		return out, err
	}
	o = o.withDefaults()
	plane := core.DefaultPlane()

	proposed := func(seed uint64) (*testbed.Deployment, []measure.StateProbe, error) {
		return statePressureProposed(seed, testbed.ScenarioSmartNIC.FlowTableSize, nf.EvictLRU)
	}

	regimes := StatePressureRegimes(o.TrialSeconds)
	for i := range regimes {
		// Stamp the base seed so the reported spec replays trial 0
		// verbatim (TrialSeed(seed, 0) == seed); replicate trials
		// override it per trial.
		regimes[i].Scenario.Seed = o.Seed
	}
	var pts []core.RegimePoint
	var rpts []core.ReplicatedRegimePoint
	for i, regime := range regimes {
		propTrials, err := runStatePressureTrials(proposed, o, regime.Scenario)
		if err != nil {
			return out, fmt.Errorf("state pressure: regime %s: %w", regime.Name, err)
		}
		baseTrials, err := runStatePressureTrials(statePressureBaseline, o, regime.Scenario)
		if err != nil {
			return out, fmt.Errorf("state pressure: regime %s: %w", regime.Name, err)
		}
		row := StatePressureRow{
			Regime:         regime,
			Proposed:       nominalStatePressure(propTrials),
			Baseline:       nominalStatePressure(baseTrials),
			ProposedTrials: propTrials,
			BaselineTrials: baseTrials,
		}
		propPt, propColl := statePressureSamples(propTrials)
		basePt, baseColl := statePressureSamples(baseTrials)
		if o.Trials >= 2 {
			// Independent resampling streams per (regime, system),
			// offset away from the other drivers' streams.
			if row.ProposedCollateralCI, err = stats.MedianCI(propColl, 200, o.CI, stats.MixSeed(o.Seed, uint64(2*i)+70)); err != nil {
				return out, fmt.Errorf("state pressure: regime %s: %w", regime.Name, err)
			}
			if row.BaselineCollateralCI, err = stats.MedianCI(baseColl, 200, o.CI, stats.MixSeed(o.Seed, uint64(2*i)+71)); err != nil {
				return out, fmt.Errorf("state pressure: regime %s: %w", regime.Name, err)
			}
		}
		out.Rows = append(out.Rows, row)
		pt := core.RegimePoint{
			Regime:   regime.Name,
			Proposed: statePressurePoint(row.Proposed),
			Baseline: statePressurePoint(row.Baseline),
		}
		pts = append(pts, pt)
		rpts = append(rpts, core.ReplicatedRegimePoint{
			RegimePoint:     pt,
			ProposedSamples: propPt,
			BaselineSamples: basePt,
		})
	}
	var err error
	out.Comparison, err = core.CompareUnderRegimes(plane, pts, core.DefaultTolerance)
	if err != nil {
		return out, fmt.Errorf("state pressure: %w", err)
	}
	if o.Trials >= 2 {
		robust, err := core.CompareUnderRegimesReplicated(plane, rpts, core.DefaultTolerance,
			core.RobustOptions{Level: o.CI, Seed: o.Seed})
		if err != nil {
			return out, fmt.Errorf("state pressure: %w", err)
		}
		out.Robust = &robust
	}

	// Flip map: the churn regime against a fail-closed offload table,
	// swept over provisioning. Churned flows retire their five-tuples,
	// so a full EvictNone table clogs with stale entries and new
	// generations punt to the single host core; the amply-provisioned
	// end absorbs every generation. The baseline does not depend on the
	// swept knob — reuse the churn row's trials.
	churn := regimes[len(regimes)-1]
	baseFlip := out.Rows[len(out.Rows)-1]
	var flipPts []core.ParamPoint
	var flipRpts []core.ReplicatedRegimePoint
	baseFlipPt, _ := statePressureSamples(baseFlip.BaselineTrials)
	for _, size := range statePressureFlipSizes {
		size := size
		mk := func(seed uint64) (*testbed.Deployment, []measure.StateProbe, error) {
			return statePressureProposed(seed, size, nf.EvictNone)
		}
		trials, err := runStatePressureTrials(mk, o, churn.Scenario)
		if err != nil {
			return out, fmt.Errorf("state pressure: flip map table=%d: %w", size, err)
		}
		nominal := nominalStatePressure(trials)
		out.FlipRows = append(out.FlipRows, StatePressureFlipRow{TableSize: size, Proposed: nominal, ProposedTrials: trials})
		flipPts = append(flipPts, core.ParamPoint{
			Param:    float64(size),
			Label:    fmt.Sprintf("%d", size),
			Proposed: statePressurePoint(nominal),
			Baseline: statePressurePoint(baseFlip.Baseline),
		})
		propPt, _ := statePressureSamples(trials)
		flipRpts = append(flipRpts, core.ReplicatedRegimePoint{
			RegimePoint: core.RegimePoint{
				Regime:   fmt.Sprintf("table=%d", size),
				Proposed: statePressurePoint(nominal),
				Baseline: statePressurePoint(baseFlip.Baseline),
			},
			ProposedSamples: propPt,
			BaselineSamples: baseFlipPt,
		})
	}
	out.FlipMap, err = core.FlipMapOverParam(plane, "offload-table entries", flipPts, core.DefaultTolerance)
	if err != nil {
		return out, fmt.Errorf("state pressure: flip map: %w", err)
	}
	if o.Trials >= 2 {
		robust, err := core.CompareUnderRegimesReplicated(plane, flipRpts, core.DefaultTolerance,
			core.RobustOptions{Level: o.CI, Seed: o.Seed})
		if err != nil {
			return out, fmt.Errorf("state pressure: flip map: %w", err)
		}
		out.FlipRobust = &robust
	}

	// Eviction-policy comparison: the host system's connection table
	// under the SYN flood, sized so the legitimate population fits but
	// the flood presses. Fail-closed refuses new legitimate flows;
	// random eviction tears down established ones; LRU sheds the
	// never-touched-again flood entries; SYN cookies keep the flood out
	// of the table entirely.
	floodSc := regimes[2].Scenario
	policyEntries := floodSc.Flows / 2
	if policyEntries < 256 {
		policyEntries = 256
	}
	for _, pol := range []struct {
		name    string
		policy  nf.EvictPolicy
		cookies bool
	}{
		{"none", nf.EvictNone, false},
		{"random", nf.EvictRandom, false},
		{"lru", nf.EvictLRU, false},
		{"lru+syncookies", nf.EvictLRU, true},
	} {
		mk := func(seed uint64) (*testbed.Deployment, []measure.StateProbe, error) {
			ct := nf.ConntrackConfig{MaxEntries: policyEntries, Policy: pol.policy, SYNCookies: pol.cookies, Seed: seed}
			return testbed.StatePressureHost("fw-host-2core-ct", 2, ct)
		}
		m, err := runStatePressure(mk, o, floodSc, TrialSeed(o.Seed, 0))
		if err != nil {
			return out, fmt.Errorf("state pressure: policy %s: %w", pol.name, err)
		}
		out.Policies = append(out.Policies, EvictionPolicyRow{Policy: pol.name, Measurement: m})
	}
	return out, nil
}

// StatePressureReport renders the experiment: per-regime measurements,
// the cross-regime verdicts, the flip map, the eviction-policy
// comparison, and the scenario specs that reproduce each regime.
func StatePressureReport(r StatePressureResult) string {
	t := report.NewTable(
		fmt.Sprintf("State pressure: fw-smartnic-ct vs fw-host-2core-ct at %.1f Mpps offered", r.OfferedPps/1e6),
		"Regime", "System", "Goodput (Gb/s)", "Throughput (Gb/s)", "Power (W)", "Collateral", "Table", "Peak occ", "Evict/s")
	for _, row := range r.Rows {
		for _, m := range []StatePressureMeasurement{row.Proposed, row.Baseline} {
			tb := m.PrimaryTable()
			t.AddRowf("%s|%s|%.3f|%.3f|%.0f|%.4f|%s|%d/%d|%.0f",
				row.Regime.Name, m.Name, m.GoodputGbps, m.ThroughputGbps, m.PowerWatts,
				m.CollateralFraction, tb.Name, tb.PeakOccupancy, tb.Capacity, tb.EvictionsPerSecond)
		}
	}
	out := t.Text() + "\n"

	vt := report.NewTable("Per-regime verdicts (reference: "+r.Comparison.Verdicts[0].Regime+")",
		"Regime", "Relation", "Region class", "Agreement")
	for i, v := range r.Comparison.Verdicts {
		agreement := "-"
		if r.Robust != nil && i < len(r.Robust.Confidence) {
			agreement = fmt.Sprintf("%.0f%%", r.Robust.Confidence[i].Agreement*100)
		}
		vt.AddRowf("%s|proposed %s baseline|%s|%s", v.Regime, v.Relation, v.Class, agreement)
	}
	out += vt.Text() + "\n"

	ft := report.NewTable("Verdict flip map: offload-table entries under churn (EvictNone, fail closed)",
		"Entries", "Relation", "Region class", "Flipped", "Agreement", "Goodput (Gb/s)", "Offload peak occ")
	for i, e := range r.FlipMap.Entries {
		flipped := ""
		if e.Flipped {
			flipped = "FLIP"
		}
		agreement := "-"
		if r.FlipRobust != nil && i < len(r.FlipRobust.Confidence) {
			agreement = fmt.Sprintf("%.0f%%", r.FlipRobust.Confidence[i].Agreement*100)
		}
		fr := r.FlipRows[i]
		tb := fr.Proposed.PrimaryTable()
		ft.AddRowf("%s|proposed %s baseline|%s|%s|%s|%.3f|%d/%d",
			e.Label, e.Relation, e.Class, flipped, agreement, fr.Proposed.GoodputGbps, tb.PeakOccupancy, tb.Capacity)
	}
	out += ft.Text() + "\n" + r.FlipMap.Summary() + "\n\n"

	pt := report.NewTable("Host-table eviction policy under SYN flood (2048+ entry table, 2 cores)",
		"Policy", "Goodput (Gb/s)", "Collateral", "Overflow drops", "Established evicted", "Cookies sent", "Cookie bypassed")
	for _, p := range r.Policies {
		cs := p.Measurement.Conntrack
		pt.AddRowf("%s|%.3f|%.4f|%d|%d|%d|%d",
			p.Policy, p.Measurement.GoodputGbps, p.Measurement.CollateralFraction,
			cs.OverflowDrops, cs.EvictedEstablished, cs.SYNCookiesSent, cs.CookieBypassed)
	}
	out += pt.Text() + "\n"

	if r.Robust != nil {
		ct := report.NewTable("Collateral-damage medians with bootstrap CIs (replicated run)",
			"Regime", "System", "Collateral CI")
		for _, row := range r.Rows {
			ct.AddRowf("%s|%s|%s", row.Regime.Name, row.Proposed.Name, row.ProposedCollateralCI)
			ct.AddRowf("%s|%s|%s", row.Regime.Name, row.Baseline.Name, row.BaselineCollateralCI)
		}
		out += ct.Text() + "\n" + r.Robust.Summary() + "\n"
	} else {
		out += r.Comparison.Summary() + "\n"
	}

	out += "\nScenario specs (replay with fairsim -scenario):\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-12s %s\n", row.Regime.Name, row.Regime.Scenario.String())
	}
	return out
}

// StatePressureCSV renders the per-regime data for plotting.
func StatePressureCSV(r StatePressureResult) string {
	t := report.NewTable("", "regime", "system", "goodput_gbps", "throughput_gbps", "power_w",
		"loss_fraction", "collateral_fraction", "table", "peak_occupancy", "capacity",
		"occupancy_fraction", "evictions_per_s", "relation")
	for i, row := range r.Rows {
		rel := r.Comparison.Verdicts[i].Relation
		for _, m := range []StatePressureMeasurement{row.Proposed, row.Baseline} {
			tb := m.PrimaryTable()
			t.AddRowf("%s|%s|%.4f|%.4f|%.1f|%.6f|%.6f|%s|%d|%d|%.4f|%.1f|%s",
				row.Regime.Name, m.Name, m.GoodputGbps, m.ThroughputGbps, m.PowerWatts,
				m.LossFraction, m.CollateralFraction, tb.Name, tb.PeakOccupancy, tb.Capacity,
				tb.OccupancyFraction, tb.EvictionsPerSecond, rel)
		}
	}
	return t.CSV()
}

// StatePressureCurvesCSV renders the sampled occupancy series of every
// probed table — the pressure curves.
func StatePressureCurvesCSV(r StatePressureResult) string {
	t := report.NewTable("", "regime", "system", "t_s", "table", "occupancy", "capacity", "evictions")
	for _, row := range r.Rows {
		for _, m := range []StatePressureMeasurement{row.Proposed, row.Baseline} {
			for _, s := range m.State.Samples {
				for j, tb := range m.State.Tables {
					t.AddRowf("%s|%s|%.6f|%s|%d|%d|%d",
						row.Regime.Name, m.Name, s.T, tb.Name, s.Occupancy[j], tb.Capacity, s.Evictions[j])
				}
			}
		}
	}
	return t.CSV()
}

// StatePressureFlipCSV renders the flip-map sweep.
func StatePressureFlipCSV(r StatePressureResult) string {
	base := StatePressureMeasurement{}
	if len(r.Rows) > 0 {
		base = r.Rows[len(r.Rows)-1].Baseline
	}
	t := report.NewTable("", "offload_entries", "proposed_goodput_gbps", "proposed_power_w",
		"baseline_goodput_gbps", "baseline_power_w", "offload_peak_occupancy", "install_refusals_seen",
		"relation", "region_class", "flipped", "agreement")
	for i, e := range r.FlipMap.Entries {
		fr := r.FlipRows[i]
		tb := fr.Proposed.PrimaryTable()
		agreement := ""
		if r.FlipRobust != nil && i < len(r.FlipRobust.Confidence) {
			agreement = fmt.Sprintf("%.4f", r.FlipRobust.Confidence[i].Agreement)
		}
		t.AddRowf("%d|%.4f|%.1f|%.4f|%.1f|%d|%t|%s|%s|%t|%s",
			fr.TableSize, fr.Proposed.GoodputGbps, fr.Proposed.PowerWatts,
			base.GoodputGbps, base.PowerWatts, tb.PeakOccupancy,
			tb.PeakOccupancy >= fr.TableSize, e.Relation, e.Class, e.Flipped, agreement)
	}
	return t.CSV()
}
