package fairbench

import (
	"errors"
	"strings"
	"testing"

	"fairbench/internal/core"
)

// These are the repository's integration tests: each one runs a full
// experiment — workload generation → discrete-event simulation of the
// heterogeneous deployment → RFC 2544 measurement → seven-principle
// evaluation — and checks the paper's qualitative conclusion holds.

func TestCompareThroughputPowerPaperNumbers(t *testing.T) {
	// The §4.2 worked example verbatim.
	v, err := CompareThroughputPower(
		SystemPoint{Name: "fw-smartnic", Gbps: 20, Watts: 70, Scalable: true},
		SystemPoint{Name: "fw-1core", Gbps: 10, Watts: 50, Scalable: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Direct != Incomparable {
		t.Errorf("direct relation = %v, want Incomparable", v.Direct)
	}
	if v.Conclusion != ProposedSuperior {
		t.Errorf("after ideal scaling, conclusion = %v, want ProposedSuperior (20/70 > 10/50 per watt)", v.Conclusion)
	}

	// And the in-region 2-core comparison.
	v2, err := CompareThroughputPower(
		SystemPoint{Name: "fw-smartnic", Gbps: 20, Watts: 70, Scalable: true},
		SystemPoint{Name: "fw-2core", Gbps: 18, Watts: 80, Scalable: true})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Direct != Dominates || v2.Conclusion != ProposedSuperior {
		t.Errorf("2-core comparison: %v/%v", v2.Direct, v2.Conclusion)
	}
}

func TestCompareLatencyPowerPaperNumbers(t *testing.T) {
	// §4.3 verbatim: comparable then incomparable.
	v, err := CompareLatencyPower(
		SystemPoint{Name: "a", LatencyUs: 5, Watts: 100},
		SystemPoint{Name: "b", LatencyUs: 10, Watts: 300})
	if err != nil {
		t.Fatal(err)
	}
	if v.Conclusion != ProposedSuperior {
		t.Errorf("comparable latency pair: %v", v.Conclusion)
	}
	v2, err := CompareLatencyPower(
		SystemPoint{Name: "a", LatencyUs: 5, Watts: 200},
		SystemPoint{Name: "b", LatencyUs: 8, Watts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Conclusion != IncomparableSystems {
		t.Errorf("incomparable latency pair: %v", v2.Conclusion)
	}
	if v2.Scaled != nil {
		t.Error("latency must never be ideally scaled")
	}
}

func TestRunTable1(t *testing.T) {
	res := RunTable1()
	if len(res.Classification.ContextIndependent) < 5 {
		t.Errorf("context-independent metrics = %d", len(res.Classification.ContextIndependent))
	}
	if len(res.Classification.ContextDependent) < 3 {
		t.Errorf("context-dependent metrics = %d", len(res.Classification.ContextDependent))
	}
	txt := Table1Report(res).Text()
	for _, frag := range []string{"Total cost of ownership", "Power draw", "Context Dependent", "Context Independent"} {
		if !strings.Contains(txt, frag) {
			t.Errorf("Table 1 report missing %q:\n%s", frag, txt)
		}
	}
	sc := ScorecardReport(res).Text()
	if !strings.Contains(sc, "✓") || !strings.Contains(sc, "✗") {
		t.Errorf("scorecard should mark passes and failures:\n%s", sc)
	}
}

func TestRunFigure1(t *testing.T) {
	res, err := RunFigure1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1a: same cost, tuple-space faster.
	if res.OldSameCost.PowerWatts != res.NewSameCost.PowerWatts {
		t.Errorf("Fig 1a systems should share cost: %v vs %v W",
			res.OldSameCost.PowerWatts, res.NewSameCost.PowerWatts)
	}
	if res.NewSameCost.ThroughputGbps <= res.OldSameCost.ThroughputGbps*1.1 {
		t.Errorf("tuple-space (%v Gb/s) should clearly beat linear (%v Gb/s) at equal cost",
			res.NewSameCost.ThroughputGbps, res.OldSameCost.ThroughputGbps)
	}
	if res.VerdictSameCost.Regime != core.SameCost {
		t.Errorf("Fig 1a regime = %v", res.VerdictSameCost.Regime)
	}
	if res.VerdictSameCost.Conclusion != ProposedSuperior {
		t.Errorf("Fig 1a conclusion = %v", res.VerdictSameCost.Conclusion)
	}
	// Fig 1b: same performance, fewer watts.
	if res.OldSamePerf.PowerWatts <= res.NewSamePerf.PowerWatts {
		t.Errorf("Fig 1b: old system should need more power (%v vs %v W)",
			res.OldSamePerf.PowerWatts, res.NewSamePerf.PowerWatts)
	}
	if res.VerdictSamePerf.Conclusion != ProposedSuperior {
		t.Errorf("Fig 1b conclusion = %v", res.VerdictSamePerf.Conclusion)
	}
}

func TestRunFigure2(t *testing.T) {
	res, err := RunFigure2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 25 {
		t.Fatalf("grid size = %d", len(res.Grid))
	}
	classes := make(map[RegionClass]int)
	for _, c := range res.Grid {
		classes[c.Class]++
	}
	// All four quadrant classes must appear in the sweep.
	for _, cls := range []RegionClass{
		core.InRegionDominates, core.InRegionDominated,
		core.OutsideCheaperWorse, core.OutsideFasterCostlier,
	} {
		if classes[cls] == 0 {
			t.Errorf("class %v never appears in the Figure 2 sweep", cls)
		}
	}
	// The (1.0, 1.0) cell is the reference itself.
	found := false
	for _, c := range res.Grid {
		if c.Gbps == res.Reference.ThroughputGbps && c.Watts == res.Reference.PowerWatts {
			if c.Class != core.InRegionEqual {
				t.Errorf("reference cell class = %v", c.Class)
			}
			found = true
		}
	}
	if !found {
		t.Error("reference cell missing from sweep")
	}
}

func TestRunSmartNIC(t *testing.T) {
	res, err := RunSmartNIC(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Measured shape of §4.2: the accelerated system is faster and
	// costlier than the 1-core baseline.
	if res.Proposed.ThroughputGbps <= res.Baseline1.ThroughputGbps*1.4 {
		t.Errorf("SmartNIC speedup too small: %v vs %v Gb/s",
			res.Proposed.ThroughputGbps, res.Baseline1.ThroughputGbps)
	}
	if res.Proposed.PowerWatts != 70 || res.Baseline1.PowerWatts != 50 || res.Baseline2.PowerWatts != 80 {
		t.Errorf("powers = %v/%v/%v W, want 70/50/80",
			res.Proposed.PowerWatts, res.Baseline1.PowerWatts, res.Baseline2.PowerWatts)
	}
	if res.VerdictVs1.Direct != Incomparable {
		t.Errorf("proposed vs 1-core should be incomparable as measured: %v", res.VerdictVs1.Direct)
	}
	if res.VerdictVs1.Conclusion != ProposedSuperior {
		t.Errorf("after ideal scaling: %v, want ProposedSuperior", res.VerdictVs1.Conclusion)
	}
	// The paper's conclusion: at the 2-core scaled regime, the
	// proposed system dominates.
	if res.VerdictVs2.Conclusion != ProposedSuperior {
		t.Errorf("vs 2-core baseline: %v, want ProposedSuperior", res.VerdictVs2.Conclusion)
	}
}

func TestRunSwitchScaling(t *testing.T) {
	res, err := RunSwitchScaling(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Shape of §4.2.1: proposed ≈3x the baseline throughput at ≈2x the
	// power; ideal scaling still leaves the proposed system superior.
	ratio := res.Proposed.ThroughputGbps / res.Baseline.ThroughputGbps
	if ratio < 2 {
		t.Errorf("switch speedup = %.2fx, want >= 2x (paper: ~2.9x)", ratio)
	}
	if res.Proposed.PowerWatts != 200 {
		t.Errorf("proposed power = %v, want 200", res.Proposed.PowerWatts)
	}
	if res.Verdict.Scaled == nil {
		t.Fatal("verdict should include the ideal-scaling construction")
	}
	if res.Verdict.Conclusion != ProposedSuperior {
		t.Errorf("conclusion = %v, want ProposedSuperior", res.Verdict.Conclusion)
	}
	// The scaled-baseline cost at matched performance must exceed the
	// proposed system's cost (the paper's 286 W vs 200 W shape).
	atPerf := res.Verdict.Scaled.AtMatchedPerf
	if atPerf.Cost.Canonical() <= 200 {
		t.Errorf("scaled baseline at matched perf costs %v, should exceed 200 W", atPerf.Cost)
	}
}

func TestRunLatency(t *testing.T) {
	res, err := RunLatency(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.VerdictComparable.Conclusion != ProposedSuperior {
		t.Errorf("comparable pair: %v, want ProposedSuperior (FPGA dominates big host)", res.VerdictComparable.Conclusion)
	}
	if res.VerdictIncomparable.Conclusion != IncomparableSystems {
		t.Errorf("incomparable pair: %v, want IncomparableSystems", res.VerdictIncomparable.Conclusion)
	}
	// P7 must be among the applied principles in both cases.
	for _, v := range []Verdict{res.VerdictComparable, res.VerdictIncomparable} {
		has := false
		for _, p := range v.Applied {
			if p == core.P7NonScalable {
				has = true
			}
		}
		if !has {
			t.Errorf("P7 not applied: %v", v.Applied)
		}
	}
}

func TestRunPitfalls(t *testing.T) {
	res, err := RunPitfalls()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.ScaleProposedErr, core.ErrScaleProposed) {
		t.Errorf("pitfall 1 error = %v", res.ScaleProposedErr)
	}
	foundCoverage := false
	for _, w := range res.CoverageWarnings {
		if strings.Contains(w, "not generous") {
			foundCoverage = true
		}
	}
	if !foundCoverage {
		t.Errorf("pitfall 2 warnings = %v", res.CoverageWarnings)
	}
	if !errors.Is(res.NonScalableErr, core.ErrNotScalableMetric) {
		t.Errorf("pitfall 3 error = %v", res.NonScalableErr)
	}
}

func TestRunRFC2544(t *testing.T) {
	res, err := RunRFC2544(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Pps < 2e6 || res.Throughput.Pps > 5e6 {
		t.Errorf("baseline throughput = %v pps", res.Throughput.Pps)
	}
	if len(res.Latency) != 6 {
		t.Fatalf("latency points = %d", len(res.Latency))
	}
	if res.Latency[0].P99Us > res.Latency[len(res.Latency)-1].P99Us {
		t.Error("latency should grow with load")
	}
	if len(res.LossCurve) != 7 {
		t.Fatalf("loss points = %d", len(res.LossCurve))
	}
	if res.LossCurve[0].LossFraction > 0.001 || res.LossCurve[6].LossFraction < 0.3 {
		t.Errorf("loss curve shape wrong: %v ... %v",
			res.LossCurve[0].LossFraction, res.LossCurve[6].LossFraction)
	}
	if res.BackToBack <= 0 {
		t.Errorf("back-to-back = %d", res.BackToBack)
	}
}

func TestFormatVerdict(t *testing.T) {
	v, err := CompareThroughputPower(
		SystemPoint{Name: "new", Gbps: 100, Watts: 200, Scalable: true},
		SystemPoint{Name: "old", Gbps: 35, Watts: 100, Scalable: true})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatVerdict(v)
	for _, frag := range []string{"new vs old", "Principle 6", "claim:", "conclusion: proposed-superior"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatVerdict missing %q:\n%s", frag, out)
		}
	}
}

func TestExpOptionsDefaults(t *testing.T) {
	o := ExpOptions{}.withDefaults()
	if o.TrialSeconds != 0.02 || o.Seed != 1 || o.SearchResolution != 0.02 {
		t.Errorf("defaults = %+v", o)
	}
	q := Quick()
	if q.TrialSeconds >= o.TrialSeconds {
		t.Error("Quick should reduce trial time")
	}
}
