package fairbench

import (
	"fmt"

	"fairbench/internal/obs"
	"fairbench/internal/report"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// Observability artifacts for the §4.2 SmartNIC firewall example: a
// traced run attributes every packet's end-to-end latency to pipeline
// stages, turning the single "latency p50" number into an auditable
// breakdown (where do the microseconds go — NIC fast path vs. host
// I/O?). This is the paper's §4.3 point made measurable: the host's
// fixed I/O latency dominates even at low utilization.

// BreakdownResult is a traced SmartNIC firewall run.
type BreakdownResult struct {
	// Result is the measured operating point.
	Result testbed.Result
	// Stages aggregates per-stage latency attribution over all spans.
	Stages []obs.StageStat
	// Spans is the number of packet lifecycle spans recorded.
	Spans uint64
	// TotalSeconds sums end-to-end latency across all spans.
	TotalSeconds float64
	// FirstSpans holds the first packet lifecycles of the run (up to
	// 40), which the timeline renders.
	FirstSpans []obs.Event
}

// RunSmartNICBreakdown runs the SmartNIC firewall under the E6 workload
// with tracing attached and returns the per-stage latency attribution.
func RunSmartNICBreakdown(o ExpOptions) (BreakdownResult, error) {
	o = o.withDefaults()
	d, err := testbed.SmartNICFirewall()
	if err != nil {
		return BreakdownResult{}, err
	}
	g, err := testbed.E6Workload(o.Seed)
	if err != nil {
		return BreakdownResult{}, err
	}
	tr := obs.New(nil)
	var first []obs.Event
	tr.SetSink(func(e obs.Event) {
		if e.Kind == "span" && len(first) < 40 {
			first = append(first, e)
		}
	})
	d.Observe(tr, o.TrialSeconds/50)
	res, err := d.Run(g, workload.Poisson{}, 4e6, o.TrialSeconds)
	if err != nil {
		return BreakdownResult{}, err
	}
	bd := tr.Breakdown()
	return BreakdownResult{
		Result:       res,
		Stages:       bd.Stages(),
		Spans:        bd.Spans(),
		TotalSeconds: bd.TotalSeconds(),
		FirstSpans:   first,
	}, nil
}

// BreakdownReport renders the per-stage latency attribution table.
func BreakdownReport(r BreakdownResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("SmartNIC firewall: per-stage latency breakdown (%d packets)", r.Spans),
		"Stage", "Count", "Mean (µs)", "Total (ms)", "Share")
	for _, st := range r.Stages {
		share := 0.0
		if r.TotalSeconds > 0 {
			share = st.TotalSeconds / r.TotalSeconds
		}
		t.AddRowf("%s|%d|%.3f|%.3f|%.1f%%",
			st.Name, st.Count, st.MeanSeconds()*1e6, st.TotalSeconds*1e3, share*100)
	}
	return t
}

// BreakdownTimeline renders the first packet lifecycles as a Gantt-style
// timeline: one lane per deciding device, one colored segment per
// attributed stage, µs of virtual time on the x axis.
func BreakdownTimeline(r BreakdownResult) *report.Timeline {
	tl := &report.Timeline{
		Title:  "SmartNIC firewall: first packet lifecycles by stage",
		XLabel: "virtual time (µs)",
	}
	laneIdx := map[string]int{}
	for _, e := range r.FirstSpans {
		i, ok := laneIdx[e.Device]
		if !ok {
			i = len(tl.Lanes)
			laneIdx[e.Device] = i
			tl.Lanes = append(tl.Lanes, report.TimelineLane{Name: e.Device})
		}
		at := e.T * 1e6 // µs
		for _, st := range e.Stages {
			if st.Dur <= 0 {
				continue
			}
			end := at + st.Dur*1e6
			tl.Lanes[i].Spans = append(tl.Lanes[i].Spans, report.TimelineSpan{
				Start: at, End: end, Class: st.Name,
			})
			at = end
		}
	}
	return tl
}
