package fairbench_test

import (
	"fmt"

	"fairbench"
	"fairbench/internal/cost"
	"fairbench/internal/metric"
)

// The paper's §4.2 worked example: a SmartNIC-accelerated firewall
// versus its software baseline. The systems operate in different
// regimes, so the methodology ideally scales the baseline before
// concluding.
func ExampleCompareThroughputPower() {
	v, err := fairbench.CompareThroughputPower(
		fairbench.SystemPoint{Name: "fw-smartnic", Gbps: 20, Watts: 70, Scalable: true},
		fairbench.SystemPoint{Name: "fw-1core", Gbps: 10, Watts: 50, Scalable: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("regime:", v.Regime)
	fmt.Println("direct:", v.Direct)
	fmt.Println("conclusion:", v.Conclusion)
	// Output:
	// regime: different-regime
	// direct: ?
	// conclusion: proposed-superior
}

// The paper's §4.3 example: latency does not scale, so systems outside
// each other's comparison regions are fundamentally incomparable.
func ExampleCompareLatencyPower() {
	v, err := fairbench.CompareLatencyPower(
		fairbench.SystemPoint{Name: "a", LatencyUs: 5, Watts: 200},
		fairbench.SystemPoint{Name: "b", LatencyUs: 8, Watts: 100})
	if err != nil {
		panic(err)
	}
	fmt.Println("conclusion:", v.Conclusion)
	fmt.Println("scaled:", v.Scaled != nil)
	// Output:
	// conclusion: incomparable
	// scaled: false
}

// Declarative evaluation from JSON: ship the spec with a paper so
// reviewers re-run the comparison.
func ExampleEvaluateSpec() {
	spec, err := fairbench.ParseSpec([]byte(`{
	  "proposed": {"name": "new", "perf": 100, "cost": 200, "scalable": true},
	  "baselines": [{"name": "old", "perf": 35, "cost": 100, "scalable": true}]
	}`))
	if err != nil {
		panic(err)
	}
	res, err := fairbench.EvaluateSpec(spec)
	if err != nil {
		panic(err)
	}
	v := res.Verdicts[0]
	fmt.Println(v.Conclusion)
	fmt.Printf("scaled baseline at matched cost: %s\n", v.Scaled.AtMatchedCost)
	// Output:
	// proposed-superior
	// scaled baseline at matched cost: (70 Gb/s, 200 W)
}

// Auditing an evaluation design before submission: using CPU cores as
// the cost metric fails end-to-end coverage once one system contains an
// FPGA (§3.3).
func ExampleAudit() {
	r := metric.Standard()
	findings := fairbench.Audit(fairbench.EvaluationDesign{
		CostMetrics: []metric.Descriptor{r.MustLookup(metric.MetricCores)},
		Systems: []fairbench.DesignSystem{
			{Name: "cpu-only", Components: []cost.Component{{
				Name:  "host",
				Costs: cost.Vector{metric.MetricCores: metric.Q(8, metric.Core)},
			}}},
			{Name: "cpu+fpga", Components: []cost.Component{
				{Name: "host", Costs: cost.Vector{metric.MetricCores: metric.Q(4, metric.Core)}},
				{Name: "fpga", Costs: cost.Vector{metric.MetricLUTs: metric.Q(180000, metric.LUT)}},
			}},
		},
	})
	for _, f := range findings {
		if f.Severity == fairbench.Violation {
			fmt.Println(f.Principle)
		}
	}
	// Output:
	// Principle 3
}
