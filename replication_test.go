package fairbench

import (
	"errors"
	"reflect"
	"testing"
)

// replicationOpts is a reduced-fidelity option set for multi-trial
// tests: five full RFC 2544 searches per system are expensive at Quick
// fidelity, and the replication machinery is what is under test here,
// not measurement accuracy.
func replicationOpts(trials int) ExpOptions {
	return ExpOptions{TrialSeconds: 0.004, Seed: 1, SearchResolution: 0.1, Trials: trials, CI: 0.95}
}

func TestTrialSeedDerivation(t *testing.T) {
	// Trial 0 uses the base seed unchanged: single-trial runs reproduce
	// historical artifacts byte for byte.
	if got := TrialSeed(7, 0); got != 7 {
		t.Errorf("TrialSeed(7, 0) = %d, want 7", got)
	}
	// No aliasing across (seed, trial) pairs: additive seed+k schemes
	// collide on (1,2) vs (2,1); the mixed derivation must not.
	if TrialSeed(1, 2) == TrialSeed(2, 1) {
		t.Error("TrialSeed aliases (1,2) with (2,1)")
	}
	// Deterministic and distinct per trial.
	seen := map[uint64]bool{}
	for k := 0; k < 8; k++ {
		s := TrialSeed(42, k)
		if s != TrialSeed(42, k) {
			t.Fatalf("TrialSeed not deterministic at k=%d", k)
		}
		if seen[s] {
			t.Fatalf("TrialSeed(42, %d) = %d collides with an earlier trial", k, s)
		}
		seen[s] = true
	}
}

func TestExpOptionsValidate(t *testing.T) {
	if err := (ExpOptions{Trials: -1}).Validate(); !errors.Is(err, ErrBadTrials) {
		t.Errorf("Trials=-1: err = %v, want ErrBadTrials", err)
	}
	for _, ci := range []float64{-0.5, 1.5, nan()} {
		if err := (ExpOptions{CI: ci}).Validate(); !errors.Is(err, ErrBadCI) {
			t.Errorf("CI=%v: err = %v, want ErrBadCI", ci, err)
		}
	}
	// Zero values mean "use defaults" and are valid.
	if err := (ExpOptions{}).Validate(); err != nil {
		t.Errorf("zero options: %v", err)
	}
	if err := DefaultExpOptions().Validate(); err != nil {
		t.Errorf("default options: %v", err)
	}
	// The typed errors surface through the drivers before simulation.
	if _, err := RunSmartNIC(ExpOptions{Trials: -3}); !errors.Is(err, ErrBadTrials) {
		t.Errorf("RunSmartNIC bad trials: %v", err)
	}
	if _, err := RunFigure1(ExpOptions{CI: 2}); !errors.Is(err, ErrBadCI) {
		t.Errorf("RunFigure1 bad CI: %v", err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestReplicatedNominalIsMedianTrial(t *testing.T) {
	mk := func(name string, gbps float64) MeasuredSystem {
		return MeasuredSystem{Name: name, ThroughputGbps: gbps}
	}
	r := replicated([]MeasuredSystem{mk("c", 30), mk("a", 10), mk("b", 20)}, []uint64{1, 2, 3})
	if r.Name != "b" || r.ThroughputGbps != 20 {
		t.Errorf("nominal = %+v, want the median-throughput trial", r.MeasuredSystem)
	}
	if len(r.Trials) != 3 || len(r.Seeds) != 3 {
		t.Errorf("trials/seeds = %d/%d", len(r.Trials), len(r.Seeds))
	}
	got := r.ThroughputSamples()
	if !reflect.DeepEqual(got, []float64{30, 10, 20}) {
		t.Errorf("samples keep trial order: %v", got)
	}
	// Even trial count: lower-middle element, deterministically.
	r = replicated([]MeasuredSystem{mk("d", 40), mk("a", 10), mk("c", 30), mk("b", 20)}, []uint64{1, 2, 3, 4})
	if r.Name != "b" {
		t.Errorf("even-count nominal = %s, want b (lower middle)", r.Name)
	}
}

// TestSmartNICRobustVerdictDeterministic is the E6 acceptance check:
// with >=5 seeded trials the robust verdict (confidence, CIs, flip
// set) is byte-identical across repeated runs of the same seed.
func TestSmartNICRobustVerdictDeterministic(t *testing.T) {
	o := replicationOpts(5)
	a, err := RunSmartNIC(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.RobustVs2 == nil {
		t.Fatal("Trials=5 should produce a robust verdict")
	}
	rv := a.RobustVs2
	if rv.Confidence < 0 || rv.Confidence > 1 {
		t.Errorf("confidence = %v, want in [0,1]", rv.Confidence)
	}
	if rv.ProposedTrials != 5 || rv.BaselineTrials != 5 {
		t.Errorf("trial counts = %d/%d, want 5/5", rv.ProposedTrials, rv.BaselineTrials)
	}
	total := 0
	for _, n := range rv.Distribution {
		total += n
	}
	if total != rv.Resamples {
		t.Errorf("distribution sums to %d, want %d", total, rv.Resamples)
	}
	if len(a.Proposed.Trials) != 5 || len(a.Proposed.Seeds) != 5 {
		t.Errorf("proposed trials/seeds = %d/%d", len(a.Proposed.Trials), len(a.Proposed.Seeds))
	}

	b, err := RunSmartNIC(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed replicated runs differ:\n%+v\nvs\n%+v", a.RobustVs2, b.RobustVs2)
	}

	// A different base seed perturbs the per-trial measurements.
	o2 := o
	o2.Seed = 99
	c, err := RunSmartNIC(o2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Proposed.ThroughputSamples(), c.Proposed.ThroughputSamples()) {
		t.Error("different base seeds produced identical trial samples")
	}
}

func TestSwitchScalingRobustVerdict(t *testing.T) {
	res, err := RunSwitchScaling(replicationOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust == nil {
		t.Fatal("Trials=3 should produce a robust verdict")
	}
	if res.Robust.Conclusion != res.Verdict.Conclusion {
		t.Errorf("robust nominal conclusion %v != point verdict %v",
			res.Robust.Conclusion, res.Verdict.Conclusion)
	}
	if got := res.Robust.Confidence; got < 0 || got > 1 {
		t.Errorf("confidence = %v, want in [0,1]", got)
	}
	single, err := RunSwitchScaling(replicationOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if single.Robust != nil {
		t.Error("single-trial switch-scaling run should not carry a robust verdict")
	}
}

func TestSingleTrialMatchesHistoricalBehaviour(t *testing.T) {
	// Trials=1 must reproduce the exact measurement an unreplicated run
	// produced (trial 0 uses the base seed unchanged) and carry no
	// robust verdict.
	o := replicationOpts(1)
	res, err := RunSmartNIC(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.RobustVs2 != nil {
		t.Error("single-trial run should not carry a robust verdict")
	}
	if len(res.Proposed.Trials) != 1 || res.Proposed.Seeds[0] != o.Seed {
		t.Errorf("single trial should use the base seed: %+v", res.Proposed.Seeds)
	}
	if res.Proposed.MeasuredSystem != res.Proposed.Trials[0] {
		t.Error("nominal of a single-trial run must be that trial")
	}
}
