package fairbench

import (
	"strings"
	"testing"

	"fairbench/internal/core"
)

func TestRunStatefulAblation(t *testing.T) {
	res, err := RunStatefulAblation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Same hardware, same power.
	if res.Stateless.PowerWatts != res.Stateful.PowerWatts {
		t.Errorf("powers differ: %v vs %v", res.Stateless.PowerWatts, res.Stateful.PowerWatts)
	}
	// Connection tracking must clearly win under long-flow traffic.
	if res.Speedup < 1.15 {
		t.Errorf("stateful speedup = %.2fx, want > 1.15x", res.Speedup)
	}
	// Principle 4 applies: same-cost regime, unidimensional claim.
	if res.Verdict.Regime != core.SameCost {
		t.Errorf("regime = %v", res.Verdict.Regime)
	}
	if res.Verdict.Conclusion != ProposedSuperior {
		t.Errorf("conclusion = %v", res.Verdict.Conclusion)
	}
	rep := StatefulAblationReport(res)
	for _, frag := range []string{"speedup", "identical cost", "Principle 4"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
}
