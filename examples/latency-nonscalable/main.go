// latency-nonscalable reproduces the paper's §4.3 examples: comparing
// systems in the latency/power plane, where the performance metric does
// not scale and ideal scaling is therefore off the table (Principle 7).
//
//	go run ./examples/latency-nonscalable
package main

import (
	"flag"
	"fmt"
	"log"

	"fairbench"
)

func main() {
	trial := flag.Float64("trial", 0.01, "simulated seconds per measurement trial")
	flag.Parse()

	fmt.Println("Simulating three deployments at a fixed 2 Mpps load and comparing")
	fmt.Println("p99 latency against power (latency does not scale — Principle 7)...")
	fmt.Println()

	res, err := fairbench.RunLatency(fairbench.ExpOptions{TrialSeconds: *trial})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.LatencyReport(res))
	fmt.Println()
	fmt.Println("Paper's shape: when the baseline is already in the proposed system's")
	fmt.Println("comparison region (FPGA vs the big host) an objective claim is")
	fmt.Println("possible; when it is not (FPGA vs the small, cheaper host), the")
	fmt.Println("systems are fundamentally incomparable — report both points.")
}
