// Quickstart: evaluate the paper's §4.2 worked example with the public
// API — no simulation, just the methodology applied to reported
// numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairbench"
)

func main() {
	// The numbers straight from the paper: a software firewall on one
	// core does 10 Gb/s at 50 W; accelerated with a SmartNIC it does
	// 20 Gb/s at 70 W.
	proposed := fairbench.SystemPoint{Name: "fw-smartnic", Gbps: 20, Watts: 70, Scalable: true}
	baseline := fairbench.SystemPoint{Name: "fw-1core", Gbps: 10, Watts: 50, Scalable: true}

	// Naive evaluations would claim "2x faster!" and stop. The
	// methodology instead notices the systems operate in different
	// regimes (the accelerated one is faster AND costlier), ideally
	// scales the baseline into the proposed system's comparison
	// region, and only then concludes.
	v, err := fairbench.CompareThroughputPower(proposed, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.FormatVerdict(v))
	fmt.Println()

	// The same methodology refuses unfair claims. Latency does not
	// scale, so two systems outside each other's comparison regions
	// are simply incomparable — report both numbers and let readers
	// decide (§4.3).
	lv, err := fairbench.CompareLatencyPower(
		fairbench.SystemPoint{Name: "lowlat-a", LatencyUs: 5, Watts: 200},
		fairbench.SystemPoint{Name: "lowlat-b", LatencyUs: 8, Watts: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.FormatVerdict(lv))
}
