// tco-release demonstrates §3.1's remedy for context-dependent cost
// metrics: instead of publishing a TCO dollar figure (which no one else
// can reproduce), publish the pricing model and bills of materials, and
// let every reader compute TCO under their own deployment context.
//
// The program computes TCO for the same two systems under two very
// different contexts — a big-city enterprise and a rural bulk-buying
// hyperscaler — showing the dollar figures diverge while the
// context-independent metrics (watts, rack units) stay identical.
//
//	go run ./examples/tco-release
package main

import (
	"fmt"
	"log"

	"fairbench"
	"fairbench/internal/cost"
	"fairbench/internal/report"
)

func main() {
	release, err := fairbench.PricingRelease()
	if err != nil {
		log.Fatal(err)
	}
	model, boms, err := cost.UnmarshalRelease(release)
	if err != nil {
		log.Fatal(err)
	}

	contexts := []cost.Context{
		{
			Name: "big-city-enterprise", EnergyUSDPerKWh: 0.25,
			RackUSDPerUnitYear: 1200, PUE: 1.6, OpsUSDPerDeviceYear: 500,
			CarbonKgPerKWh: 0.4,
		},
		{
			Name: "rural-hyperscaler", EnergyUSDPerKWh: 0.06,
			RackUSDPerUnitYear: 200, PUE: 1.1, HardwareDiscount: 0.35,
			OpsUSDPerDeviceYear: 120, CarbonKgPerKWh: 0.2,
		},
	}

	t := report.NewTable(
		fmt.Sprintf("TCO over %.0f years — same systems, different contexts (§3.1)", model.Years),
		"System", "Context", "Hardware ($)", "Energy ($)", "Rack ($)", "Ops ($)", "Total ($)")
	for _, bom := range boms {
		for _, ctx := range contexts {
			tco, err := model.TCO(bom, ctx)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRowf("%s|%s|%.0f|%.0f|%.0f|%.0f|%.0f",
				bom.System, ctx.Name, tco.HardwareUSD, tco.EnergyUSD, tco.RackUSD, tco.OpsUSD, tco.TotalUSD)
		}
	}
	fmt.Print(t.Text())

	ci := report.NewTable("\nContext-independent costs — identical for every deployer (Principle 1)",
		"System", "Power (W)", "Rack (RU)")
	for _, bom := range boms {
		ci.AddRowf("%s|%.0f|%.0f", bom.System, bom.TotalPowerWatts(), bom.TotalRackUnits())
	}
	fmt.Print(ci.Text())

	fmt.Println("\nThe release artifact itself (publish this with the paper):")
	fmt.Println(string(release)[:400] + " ...")
}
