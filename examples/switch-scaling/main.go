// switch-scaling reproduces the paper's §4.2.1 worked example: a
// firewall whose blocklist is pre-applied by a programmable switch at
// line rate, compared against the host-only baseline using ideal
// scaling (Principles 5-6, Figure 3). It also writes the Figure 3 SVG.
//
//	go run ./examples/switch-scaling [-svg figure3.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fairbench"
)

func main() {
	svgPath := flag.String("svg", "", "write the Figure 3 SVG here (optional)")
	trial := flag.Float64("trial", 0.01, "simulated seconds per measurement trial")
	flag.Parse()

	fmt.Println("Simulating the §4.2.1 deployments: 75% of offered traffic is")
	fmt.Println("blocklisted scan traffic a programmable switch can drop in-network...")
	fmt.Println()

	res, err := fairbench.RunSwitchScaling(fairbench.ExpOptions{TrialSeconds: *trial})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.SwitchScalingReport(res))

	if *svgPath != "" {
		svg := fairbench.Figure3Plot(res).SVG()
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *svgPath)
	}

	fmt.Println()
	fmt.Println("Paper's shape: proposed ~100 Gb/s @ 200 W; baseline ~35 Gb/s @ ~100 W;")
	fmt.Println("ideally scaled baseline needs ~2.9x its power to match — so the switch")
	fmt.Println("design is superior at its performance-cost target, without ever")
	fmt.Println("provisioning multiple physical hosts.")
}
