// smartnic-firewall reproduces the paper's §4.2 worked example
// end-to-end: it simulates a software firewall on one and two host
// cores and the same firewall with SmartNIC flow offload, measures each
// system's RFC 2544 zero-loss throughput and composed power, and
// applies the seven-principle evaluation.
//
//	go run ./examples/smartnic-firewall [-trial 0.02]
package main

import (
	"flag"
	"fmt"
	"log"

	"fairbench"
)

func main() {
	trial := flag.Float64("trial", 0.01, "simulated seconds per measurement trial")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	fmt.Println("Simulating the §4.2 deployments (this runs real packets")
	fmt.Println("through real firewall code on simulated hardware)...")
	fmt.Println()

	res, err := fairbench.RunSmartNIC(fairbench.ExpOptions{TrialSeconds: *trial, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.SmartNICReport(res))
	fmt.Println()
	fmt.Println("Paper's shape: baseline ~10 Gb/s @ 50 W; SmartNIC ~2x faster @ 70 W;")
	fmt.Println("baseline with a second core lands in the SmartNIC system's comparison")
	fmt.Println("region and is dominated — the accelerated design is a genuine win.")
}
