// design-sweep generalises the paper's two-system comparisons to a
// whole design space: it measures six firewall deployments — CPU
// scaling, SmartNIC offload, switch preprocessing, FPGA pipeline —
// under one workload, computes the throughput/power Pareto frontier,
// and explains why each dominated design loses. Optionally writes the
// frontier scatter plot as SVG.
//
//	go run ./examples/design-sweep [-svg frontier.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fairbench"
)

func main() {
	svgPath := flag.String("svg", "", "write the frontier SVG here (optional)")
	trial := flag.Float64("trial", 0.008, "simulated seconds per measurement trial")
	flag.Parse()

	fmt.Println("Measuring six deployments under a common workload (RFC 2544")
	fmt.Println("zero-loss throughput each; this takes a minute)...")
	fmt.Println()

	res, err := fairbench.RunFrontier(fairbench.ExpOptions{TrialSeconds: *trial, SearchResolution: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fairbench.FrontierReport(res))

	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(fairbench.FrontierPlot(res).SVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}

	fmt.Println()
	fmt.Println("Only frontier systems are candidates for deployment; each dominated")
	fmt.Println("design is accompanied by the verdict that disqualifies it. Note the")
	fmt.Println("workload matters: under this mix (20% blocklisted traffic) the")
	fmt.Println("switch's 90 W buys little — under the §4.2.1 mix (75%) it wins.")
}
