// audit-checklist demonstrates the §5 reviewer workflow: audit an
// evaluation design against the paper's seven principles before
// submission. The example audits a deliberately flawed design — TCO and
// CPU cores as cost metrics over a CPU-vs-FPGA comparison, a cross-
// regime "2x faster" claim, and ideal scaling applied to the proposed
// system — and prints the findings.
//
//	go run ./examples/audit-checklist
package main

import (
	"fmt"
	"log"

	"fairbench"
	"fairbench/internal/cost"
	"fairbench/internal/metric"
)

func main() {
	r := metric.Standard()
	design := fairbench.EvaluationDesign{
		CostMetrics: []metric.Descriptor{
			r.MustLookup(metric.MetricTCO),   // context-dependent
			r.MustLookup(metric.MetricCores), // not end-to-end over FPGAs
		},
		PerfMetrics: []metric.Descriptor{r.MustLookup(metric.MetricThroughputBps)},
		Systems: []fairbench.DesignSystem{
			{
				Name:     "cpu-baseline",
				Scalable: true,
				// Only half the costed server is used — pitfall 2.
				UtilizedFraction: 0.5,
				Components: []cost.Component{{
					Name: "host",
					Costs: cost.Vector{
						metric.MetricTCO:   metric.Q(12000, metric.USD),
						metric.MetricCores: metric.Q(8, metric.Core),
					},
				}},
			},
			{
				Name:     "fpga-proposed",
				Scalable: true,
				Components: []cost.Component{
					{Name: "host", Costs: cost.Vector{
						metric.MetricTCO:   metric.Q(15000, metric.USD),
						metric.MetricCores: metric.Q(2, metric.Core),
					}},
					{Name: "fpga", Costs: cost.Vector{
						metric.MetricTCO:  metric.Q(4000, metric.USD),
						metric.MetricLUTs: metric.Q(200000, metric.LUT),
					}},
				},
			},
		},
		ClaimsAcrossRegimes: true, // "2x faster" with more hardware
		IdealScaling: &fairbench.IdealScalingUse{
			ScaledSystem:   "fpga-proposed", // pitfall 1: scaling the proposal
			ProposedSystem: "fpga-proposed",
			MetricScalable: true,
		},
	}

	findings := fairbench.Audit(design)
	fmt.Print(fairbench.AuditReport(findings))

	violations := 0
	for _, f := range findings {
		if f.Severity == fairbench.Violation {
			violations++
		}
	}
	if violations == 0 {
		log.Fatal("expected violations in the deliberately flawed design")
	}
	fmt.Printf("\n%d violations — this evaluation would not convince a reviewer.\n", violations)
	fmt.Println("Fixes: report power (context-independent, end-to-end); compare at")
	fmt.Println("the proposed system's comparison region; ideally scale only the")
	fmt.Println("baseline, and only the fraction of hardware it actually uses.")
}
