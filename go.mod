module fairbench

go 1.22
