package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// Internet-scale scenarios. The RFC 2544 synthetics in gen.go hold a
// per-flow state slice and a per-(flow,size) frame cache — fine at a
// few thousand flows, fatal at the 10⁶–10⁷ concurrent flows where NF
// state planes actually start to hurt. ScenarioGen therefore computes
// every per-flow property (addresses, ports, protocol, attack
// membership, churn phase) as a pure hash of (seed, flow index): no
// per-flow allocation, memory bounded by a handful of frame templates,
// and byte-identical streams per seed by construction. On top of the
// flow population sit the load shapes that stress state: diurnal rate
// curves, flash crowds, SYN-flood and amplification mixes blended with
// legitimate traffic, and long-duration flow churn.

// ErrScenario wraps every scenario-spec parse or validation error.
var ErrScenario = errors.New("workload: bad scenario spec")

// Class labels a generated packet's traffic class for goodput
// accounting. ClassLegit is the only class that counts toward goodput.
type Class string

// Traffic classes.
const (
	ClassLegit   Class = "legit"
	ClassAttack  Class = "attack"   // blocklisted-prefix base flows
	ClassFlood   Class = "synflood" // spoofed never-repeating TCP SYNs
	ClassAmplify Class = "amplify"  // large UDP from a small reflector set
)

// DiurnalClause shapes offered load as 1 - depth·cos(2πt/period): the
// run starts at the trough and peaks mid-period.
type DiurnalClause struct {
	Period, Depth float64
}

// FlashClause multiplies offered load by Peak during [At, At+For).
type FlashClause struct {
	At, For, Peak float64
}

// FloodClause blends spoofed TCP SYNs (each a never-before-seen
// five-tuple) into the stream at the given packet fraction, optionally
// windowed to [At, At+For) (zero window means the whole run).
type FloodClause struct {
	Rate, At, For float64
}

// AmplifyClause blends large UDP frames from a small reflector set at
// the given packet fraction, optionally windowed like FloodClause.
type AmplifyClause struct {
	Rate    float64
	Size    int
	At, For float64
}

// ChurnClause retires and replaces flows: each flow's five-tuple
// changes every Lifetime seconds (with a per-flow phase so the
// population turns over smoothly, not in lockstep).
type ChurnClause struct {
	Lifetime float64
}

// Scenario is a parsed -scenario spec.
type Scenario struct {
	// Flows is the concurrent flow population (default 1<<20).
	Flows int
	// Skew is the Zipf popularity exponent: 0 draws flows uniformly;
	// values > 1 use O(1)-memory rejection-inversion sampling. Values
	// in (0, 1] need the O(n) cumulative-table sampler and are only
	// accepted for populations up to 2^20 flows.
	Skew float64
	// AttackFraction of base flows originate from AttackPrefix.
	AttackFraction float64
	// TCPFraction of base flows are TCP (SYN on ~1/8 of their packets,
	// modelling connection setup within long-lived flows).
	TCPFraction float64
	// Seed derives all random streams (default 1).
	Seed uint64

	Diurnal  *DiurnalClause
	Flash    *FlashClause
	SYNFlood *FloodClause
	Amplify  *AmplifyClause
	Churn    *ChurnClause
}

// maxScenarioFlows bounds the population (2^27 ≈ 134M) so a typo'd
// exponent fails fast instead of producing a meaningless run.
const maxScenarioFlows = 1 << 27

// tableZipfMaxFlows bounds populations usable with skew in (0, 1],
// where only the O(n) cumulative-table sampler applies.
const tableZipfMaxFlows = 1 << 20

func (sc Scenario) withDefaults() Scenario {
	if sc.Flows == 0 {
		sc.Flows = 1 << 20
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Amplify != nil && sc.Amplify.Size == 0 {
		sc.Amplify.Size = 1200
	}
	return sc
}

// Validate checks a scenario after defaults are applied.
func (sc Scenario) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrScenario, fmt.Sprintf(format, args...))
	}
	if sc.Flows < 1 || sc.Flows > maxScenarioFlows {
		return bad("flows=%d outside [1, %d]", sc.Flows, maxScenarioFlows)
	}
	if sc.Skew < 0 || math.IsNaN(sc.Skew) || math.IsInf(sc.Skew, 0) {
		return bad("skew=%v must be finite and >= 0", sc.Skew)
	}
	if sc.Skew > 0 && sc.Skew <= 1 && sc.Flows > tableZipfMaxFlows {
		return bad("skew in (0, 1] needs the O(n) cumulative-table sampler, capped at %d flows; use skew > 1 (O(1)-memory rejection-inversion) at internet scale", tableZipfMaxFlows)
	}
	if sc.AttackFraction < 0 || sc.AttackFraction > 1 {
		return bad("attack=%v outside [0, 1]", sc.AttackFraction)
	}
	if sc.TCPFraction < 0 || sc.TCPFraction > 1 {
		return bad("tcp=%v outside [0, 1]", sc.TCPFraction)
	}
	if d := sc.Diurnal; d != nil {
		if d.Period <= 0 || d.Depth < 0 || d.Depth >= 1 {
			return bad("diurnal needs period > 0 and depth in [0, 1)")
		}
	}
	if f := sc.Flash; f != nil {
		if f.At < 0 || f.For <= 0 || f.Peak <= 0 {
			return bad("flashcrowd needs at >= 0, for > 0, peak > 0")
		}
	}
	blend := 0.0
	if f := sc.SYNFlood; f != nil {
		if f.Rate <= 0 || f.Rate >= 1 || f.At < 0 || f.For < 0 {
			return bad("synflood needs rate in (0, 1) and non-negative window")
		}
		blend += f.Rate
	}
	if a := sc.Amplify; a != nil {
		if a.Rate <= 0 || a.Rate >= 1 || a.At < 0 || a.For < 0 {
			return bad("amplify needs rate in (0, 1) and non-negative window")
		}
		if a.Size < packet.MinFrameLen || a.Size > packet.MaxFrameLen {
			return bad("amplify size=%d outside [%d, %d]", a.Size, packet.MinFrameLen, packet.MaxFrameLen)
		}
		blend += a.Rate
	}
	if blend >= 1 {
		return bad("attack blend rates sum to %v, leaving no legitimate traffic", blend)
	}
	if c := sc.Churn; c != nil {
		if c.Lifetime <= 0 {
			return bad("churn needs life > 0")
		}
	}
	return nil
}

// String renders the canonical spec (clauses in fixed order), suitable
// for reports and re-parsing.
func (sc Scenario) String() string {
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "zipf:flows=%d,skew=%s", sc.Flows, num(sc.Skew))
	if sc.AttackFraction > 0 {
		fmt.Fprintf(&b, ",attack=%s", num(sc.AttackFraction))
	}
	if sc.TCPFraction > 0 {
		fmt.Fprintf(&b, ",tcp=%s", num(sc.TCPFraction))
	}
	if d := sc.Diurnal; d != nil {
		fmt.Fprintf(&b, ";diurnal:period=%s,depth=%s", num(d.Period), num(d.Depth))
	}
	if f := sc.Flash; f != nil {
		fmt.Fprintf(&b, ";flashcrowd:at=%s,for=%s,peak=%s", num(f.At), num(f.For), num(f.Peak))
	}
	if f := sc.SYNFlood; f != nil {
		fmt.Fprintf(&b, ";synflood:rate=%s", num(f.Rate))
		if f.At != 0 || f.For != 0 {
			fmt.Fprintf(&b, ",at=%s,for=%s", num(f.At), num(f.For))
		}
	}
	if a := sc.Amplify; a != nil {
		fmt.Fprintf(&b, ";amplify:rate=%s,size=%d", num(a.Rate), a.Size)
		if a.At != 0 || a.For != 0 {
			fmt.Fprintf(&b, ",at=%s,for=%s", num(a.At), num(a.For))
		}
	}
	if c := sc.Churn; c != nil {
		fmt.Fprintf(&b, ";churn:life=%s", num(c.Lifetime))
	}
	fmt.Fprintf(&b, ";seed:%d", sc.Seed)
	return b.String()
}

// ParseScenario parses a -scenario spec: semicolon-separated clauses of
// the form kind:key=val,key=val. Kinds: zipf (flows, skew, attack,
// tcp), diurnal (period, depth), flashcrowd (at, for, peak), synflood
// (rate, at, for), amplify (rate, size, at, for), churn (life), and
// seed:N. Durations accept Go syntax ("250ms") or plain seconds.
//
//	zipf:flows=1e6,skew=1.1,attack=0.2;synflood:rate=0.4;churn:life=5s;seed:7
func ParseScenario(s string) (Scenario, error) {
	var sc Scenario
	if strings.TrimSpace(s) == "" {
		return sc, fmt.Errorf("%w: empty spec", ErrScenario)
	}
	seen := map[string]bool{}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		head, rest, _ := strings.Cut(raw, ":")
		head = strings.TrimSpace(head)
		if seen[head] {
			return sc, fmt.Errorf("%w: duplicate clause %q", ErrScenario, head)
		}
		seen[head] = true
		if head == "seed" {
			seed, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return sc, fmt.Errorf("%w: seed %q: %v", ErrScenario, rest, err)
			}
			sc.Seed = seed
			continue
		}
		params, err := parseScenarioParams(head, rest)
		if err != nil {
			return sc, err
		}
		if err := applyScenarioClause(&sc, head, params); err != nil {
			return sc, err
		}
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// parseScenarioParams splits "key=val,key=val" into a map.
func parseScenarioParams(clause, s string) (map[string]string, error) {
	params := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return params, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(key) == "" {
			return nil, fmt.Errorf("%w: %s: parameter %q is not key=val", ErrScenario, clause, part)
		}
		params[strings.TrimSpace(key)] = strings.TrimSpace(val)
	}
	return params, nil
}

// applyScenarioClause interprets one parsed clause into sc.
func applyScenarioClause(sc *Scenario, head string, params map[string]string) error {
	get := func(key string) (float64, bool, error) {
		raw, ok := params[key]
		if !ok {
			return 0, false, nil
		}
		delete(params, key)
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %s: %s=%q is not a number", ErrScenario, head, key, raw)
		}
		return v, true, nil
	}
	getDur := func(key string) (float64, bool, error) {
		raw, ok := params[key]
		if !ok {
			return 0, false, nil
		}
		delete(params, key)
		v, err := parseScenarioSeconds(raw)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %s: %s=%q is not a duration", ErrScenario, head, key, raw)
		}
		return v, true, nil
	}
	var err error
	take := func(dst *float64, key string, dur bool) {
		if err != nil {
			return
		}
		var v float64
		var ok bool
		if dur {
			v, ok, err = getDur(key)
		} else {
			v, ok, err = get(key)
		}
		if ok {
			*dst = v
		}
	}
	switch head {
	case "zipf":
		flows, haveFlows, ferr := get("flows")
		if ferr != nil {
			return ferr
		}
		if haveFlows {
			if flows != math.Trunc(flows) || flows < 1 {
				return fmt.Errorf("%w: zipf: flows=%v is not a positive whole count", ErrScenario, flows)
			}
			sc.Flows = int(flows)
		}
		take(&sc.Skew, "skew", false)
		take(&sc.AttackFraction, "attack", false)
		take(&sc.TCPFraction, "tcp", false)
	case "diurnal":
		d := &DiurnalClause{}
		take(&d.Period, "period", true)
		take(&d.Depth, "depth", false)
		sc.Diurnal = d
	case "flashcrowd":
		f := &FlashClause{}
		take(&f.At, "at", true)
		take(&f.For, "for", true)
		take(&f.Peak, "peak", false)
		sc.Flash = f
	case "synflood":
		f := &FloodClause{}
		take(&f.Rate, "rate", false)
		take(&f.At, "at", true)
		take(&f.For, "for", true)
		sc.SYNFlood = f
	case "amplify":
		a := &AmplifyClause{}
		take(&a.Rate, "rate", false)
		var size float64
		take(&size, "size", false)
		a.Size = int(size)
		take(&a.At, "at", true)
		take(&a.For, "for", true)
		sc.Amplify = a
	case "churn":
		c := &ChurnClause{}
		take(&c.Lifetime, "life", true)
		sc.Churn = c
	default:
		return fmt.Errorf("%w: unknown clause %q", ErrScenario, head)
	}
	if err != nil {
		return err
	}
	if len(params) > 0 {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("%w: %s: unknown parameter %q", ErrScenario, head, keys[0])
	}
	return nil
}

// parseScenarioSeconds accepts Go duration syntax or plain seconds.
func parseScenarioSeconds(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// mix64 hashes two words with SplitMix64 finalisation — the pure
// function behind all per-flow properties.
func mix64(a, b uint64) uint64 {
	z := a + b*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// zipfRejInv samples Zipf ranks by Hörmann's rejection-inversion
// (the transformed-rejection method behind math/rand's sampler):
// invert the integral bound h of the density, then accept/reject
// against the true mass. O(1) memory and O(1) expected draws for any
// population size — the property that unlocks 10⁷-flow populations —
// valid for exponent q > 1.
type zipfRejInv struct {
	rng          *sim.RNG
	imax         float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
	s            float64
}

// newZipfRejInv builds a sampler over ranks [0, n) with exponent q > 1.
func newZipfRejInv(rng *sim.RNG, n int, q float64) *zipfRejInv {
	if n <= 0 || q <= 1 {
		panic("workload: rejection-inversion Zipf requires n > 0 and skew > 1")
	}
	z := &zipfRejInv{rng: rng, imax: float64(n - 1), q: q}
	z.oneminusQ = 1 - q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - 1 - z.hxm // h(0.5) - exp(-q·log v) - hxm, v = 1
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-q*math.Ln2))
	return z
}

// h is the integral of the extended density x^(-q) (with v = 1).
func (z *zipfRejInv) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(1+x)) * z.oneminusQinv
}

// hinv is h's inverse.
func (z *zipfRejInv) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - 1
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *zipfRejInv) Draw() int {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return int(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-z.q*math.Log(k+1)) {
			return int(k)
		}
	}
}

// scnTemplate is one cached frame shape: the built bytes plus the
// five-tuple currently patched into them.
type scnTemplate struct {
	proto byte
	size  int
	syn   bool
	frame []byte
	cur   packet.FiveTuple
}

// ScenarioStats counts generated packets per class.
type ScenarioStats struct {
	Base, Flood, Amplify uint64
}

// ScenarioGen generates a Scenario's packet stream. Memory use is O(1)
// in the flow population: per-flow properties are hashes of the flow
// index, and frames are patched in place over a handful of templates.
// Returned frames alias those templates — consumers must parse or copy
// before the next call, exactly like Generator.
type ScenarioGen struct {
	sc      Scenario
	rng     *sim.RNG
	zipfRI  *zipfRejInv
	zipfTab *sim.Zipf
	sizes   *Mix

	flowSeed, churnSeed, floodSeed, ampSeed uint64
	floodCount                              uint64
	templates                               []*scnTemplate

	stats ScenarioStats
}

// reflectorSet is the amplification attack's source population: small
// by design (reflection abuses a few open resolvers), so it pressures
// bandwidth, not state tables.
const reflectorSet = 64

// baseSYNProb is the chance a legitimate TCP flow's packet carries a
// SYN (connection setup inside long-lived flows).
const baseSYNProb = 0.125

// NewScenarioGen builds a generator for sc (defaults applied,
// validated).
func NewScenarioGen(sc Scenario) (*ScenarioGen, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(sc.Seed)
	g := &ScenarioGen{
		sc:        sc,
		rng:       root.Derive("scenario-draws"),
		sizes:     IMIX(),
		flowSeed:  root.Derive("scenario-flows").Uint64(),
		churnSeed: root.Derive("scenario-churn").Uint64(),
		floodSeed: root.Derive("scenario-flood").Uint64(),
		ampSeed:   root.Derive("scenario-amplify").Uint64(),
	}
	switch {
	case sc.Skew > 1:
		g.zipfRI = newZipfRejInv(root.Derive("scenario-zipf"), sc.Flows, sc.Skew)
	case sc.Skew > 0:
		g.zipfTab = sim.NewZipf(root.Derive("scenario-zipf"), sc.Flows, sc.Skew)
	}
	return g, nil
}

// Spec returns the effective scenario.
func (g *ScenarioGen) Spec() Scenario { return g.sc }

// Flows returns the concurrent flow population size.
func (g *ScenarioGen) Flows() int { return g.sc.Flows }

// Stats snapshots per-class generation counts.
func (g *ScenarioGen) Stats() ScenarioStats { return g.stats }

// ArrivalRNG returns a dedicated random stream for inter-arrival
// draws, derived like Generator's so timing and content stay
// independently reproducible.
func (g *ScenarioGen) ArrivalRNG() *sim.RNG { return sim.NewRNG(g.sc.Seed).Derive("arrivals") }

// RateFactor scales offered load at simulated time t: the diurnal
// curve times the flash-crowd step. Feed it to the testbed's rate
// hook.
func (g *ScenarioGen) RateFactor(t float64) float64 {
	f := 1.0
	if d := g.sc.Diurnal; d != nil {
		f *= 1 - d.Depth*math.Cos(2*math.Pi*t/d.Period)
	}
	if fc := g.sc.Flash; fc != nil && t >= fc.At && t < fc.At+fc.For {
		f *= fc.Peak
	}
	return f
}

// windowActive reports whether an attack window covers t (a zero
// window means always).
func windowActive(at, dur, t float64) bool {
	if at == 0 && dur == 0 {
		return true
	}
	return t >= at && t < at+dur
}

// NextAt produces the next packet for simulated time t. The frame
// aliases an internal template; parse or copy before the next call.
//
//fairbench:hotpath fairbench case workload-scenario-gen
func (g *ScenarioGen) NextAt(t float64) (Pkt, Class, error) {
	floodRate, ampRate := 0.0, 0.0
	if f := g.sc.SYNFlood; f != nil && windowActive(f.At, f.For, t) {
		floodRate = f.Rate
	}
	if a := g.sc.Amplify; a != nil && windowActive(a.At, a.For, t) {
		ampRate = a.Rate
	}
	if floodRate > 0 || ampRate > 0 {
		u := g.rng.Float64()
		if u < floodRate {
			return g.nextFlood()
		}
		if u < floodRate+ampRate {
			return g.nextAmplify()
		}
	}
	return g.nextBase(t)
}

// nextBase draws a flow from the Zipf population.
func (g *ScenarioGen) nextBase(t float64) (Pkt, Class, error) {
	var idx int
	switch {
	case g.zipfRI != nil:
		idx = g.zipfRI.Draw()
	case g.zipfTab != nil:
		idx = g.zipfTab.Draw()
	default:
		idx = g.rng.Intn(g.sc.Flows)
	}
	ft, attack := g.flowTuple(idx, g.generation(idx, t))
	size := g.sizes.Next(g.rng)
	syn := false
	if ft.Proto == packet.ProtoTCP {
		syn = g.rng.Float64() < baseSYNProb
	}
	frame, err := g.emit(ft, size, syn)
	if err != nil {
		return Pkt{}, ClassLegit, err
	}
	g.stats.Base++
	class := ClassLegit
	if attack {
		class = ClassAttack
	}
	return Pkt{Flow: ft, Frame: frame, Attack: attack, Class: class}, class, nil
}

// nextFlood emits one spoofed SYN: a monotone counter hashed into a
// fresh, legitimate-looking five-tuple, so every packet is a new flow
// to any state plane.
func (g *ScenarioGen) nextFlood() (Pkt, Class, error) {
	c := g.floodCount
	g.floodCount++
	h := mix64(g.floodSeed, c)
	ft := packet.FiveTuple{
		Src:     packet.Addr4{10, byte(1 + h%60), byte(c >> 8), byte(c)},
		Dst:     packet.Addr4{192, 168, 1, byte(1 + h%200)},
		SrcPort: uint16(1024 + (h>>16)%60000),
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
	frame, err := g.emit(ft, packet.MinFrameLen, true)
	if err != nil {
		return Pkt{}, ClassFlood, err
	}
	g.stats.Flood++
	return Pkt{Flow: ft, Frame: frame, Attack: true, Class: ClassFlood}, ClassFlood, nil
}

// nextAmplify emits one large UDP frame from the reflector set.
func (g *ScenarioGen) nextAmplify() (Pkt, Class, error) {
	k := g.rng.Intn(reflectorSet)
	h := mix64(g.ampSeed, uint64(k))
	ft := packet.FiveTuple{
		Src:     packet.Addr4{10, 70, 1, byte(k)},
		Dst:     packet.Addr4{192, 168, 1, byte(1 + h%200)},
		SrcPort: uint16(1024 + k),
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
	frame, err := g.emit(ft, g.sc.Amplify.Size, false)
	if err != nil {
		return Pkt{}, ClassAmplify, err
	}
	g.stats.Amplify++
	return Pkt{Flow: ft, Frame: frame, Attack: true, Class: ClassAmplify}, ClassAmplify, nil
}

// generation returns flow i's churn generation at time t (0 without
// churn). Each generation is a distinct five-tuple; the per-flow phase
// staggers turnover across the population.
func (g *ScenarioGen) generation(i int, t float64) uint32 {
	c := g.sc.Churn
	if c == nil {
		return 0
	}
	phase := unit(mix64(g.churnSeed, uint64(i))) * c.Lifetime
	return uint32((t + phase) / c.Lifetime)
}

// flowTuple synthesises flow i's five-tuple for a churn generation —
// a pure function of (seed, i, gen), the bounded-memory core.
func (g *ScenarioGen) flowTuple(i int, gen uint32) (packet.FiveTuple, bool) {
	h := mix64(g.flowSeed, uint64(i))
	attack := unit(h) < g.sc.AttackFraction
	proto := packet.ProtoUDP
	if unit(mix64(h, 0x7c9)) < g.sc.TCPFraction {
		proto = packet.ProtoTCP
	}
	hg := h
	if gen != 0 {
		// A new generation keeps the flow's identity bits (address
		// class, popularity rank) but renews its ephemeral port — the
		// old five-tuple retires from every state table's perspective.
		hg = mix64(h, uint64(gen))
	}
	var src packet.Addr4
	if attack {
		src = packet.Addr4{10, 66, byte(i >> 8), byte(i)}
	} else {
		src = packet.Addr4{10, byte(1 + h%60), byte(i >> 8), byte(i)}
	}
	var dstPort uint16
	switch {
	case proto == packet.ProtoTCP:
		dstPort = 443
	case (h>>8)%5 == 0:
		dstPort = uint16(2000 + h%100)
	default:
		dstPort = 53
	}
	return packet.FiveTuple{
		Src:     src,
		Dst:     packet.Addr4{192, 168, 1, byte(1 + h%200)},
		SrcPort: uint16(1024 + (hg>>24)%60000),
		DstPort: dstPort,
		Proto:   proto,
	}, attack
}

// emit returns a frame for ft, reusing the (proto, size, syn) template
// and patching the five-tuple in place with incremental checksum
// updates — the zero-allocation steady state.
func (g *ScenarioGen) emit(ft packet.FiveTuple, size int, syn bool) ([]byte, error) {
	var tp *scnTemplate
	for _, c := range g.templates {
		if c.proto == ft.Proto && c.size == size && c.syn == syn {
			tp = c
			break
		}
	}
	if tp == nil {
		frame, err := buildScenarioFrame(ft, size, syn)
		if err != nil {
			return nil, err
		}
		tp = &scnTemplate{proto: ft.Proto, size: size, syn: syn, frame: frame, cur: ft}
		//fairlint:allow hotalloc template cache miss path; steady state serves patched cached frames
		g.templates = append(g.templates, tp)
		return tp.frame, nil
	}
	if tp.cur != ft {
		patchTuple(tp.frame, tp.cur, ft)
		tp.cur = ft
	}
	return tp.frame, nil
}

// buildScenarioFrame builds a fresh template frame.
func buildScenarioFrame(ft packet.FiveTuple, size int, syn bool) ([]byte, error) {
	if ft.Proto == packet.ProtoUDP {
		return buildFrame(ft, size)
	}
	overhead := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.TCPMinHeaderLen
	payLen := size - overhead
	if payLen < 0 {
		payLen = 0
	}
	//fairlint:allow hotalloc template frame is built once per (proto,size,syn) signature, then cached
	payload := make([]byte, payLen)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	flags := packet.FlagACK
	if syn {
		flags = packet.FlagSYN
	}
	return packet.BuildTCP4(genOpts, ft, flags, 1, 1, payload)
}

// patchTuple rewrites the five-tuple fields of a built frame in place,
// fixing the IP and transport checksums incrementally (RFC 1624) —
// the same arithmetic the NAT fast path uses. old and new must share a
// protocol, which templates guarantee.
func patchTuple(frame []byte, old, new packet.FiveTuple) {
	const ipStart = packet.EthernetHeaderLen
	const l4Start = ipStart + packet.IPv4MinHeaderLen

	ipCheck := scnBeU16(frame[ipStart+10:])
	ipCheck = packet.UpdateChecksum32(ipCheck, old.Src.Uint32(), new.Src.Uint32())
	ipCheck = packet.UpdateChecksum32(ipCheck, old.Dst.Uint32(), new.Dst.Uint32())
	copy(frame[ipStart+12:ipStart+16], new.Src[:])
	copy(frame[ipStart+16:ipStart+20], new.Dst[:])
	scnPutU16(frame[ipStart+10:], ipCheck)

	checkOff := l4Start + 16 // TCP
	if new.Proto == packet.ProtoUDP {
		checkOff = l4Start + 6
	}
	check := scnBeU16(frame[checkOff:])
	if new.Proto != packet.ProtoUDP || check != 0 { // zero UDP check = none
		check = packet.UpdateChecksum32(check, old.Src.Uint32(), new.Src.Uint32())
		check = packet.UpdateChecksum32(check, old.Dst.Uint32(), new.Dst.Uint32())
		check = packet.UpdateChecksum16(check, old.SrcPort, new.SrcPort)
		check = packet.UpdateChecksum16(check, old.DstPort, new.DstPort)
		if new.Proto == packet.ProtoUDP && check == 0 {
			check = 0xffff
		}
		scnPutU16(frame[checkOff:], check)
	}
	scnPutU16(frame[l4Start:], new.SrcPort)
	scnPutU16(frame[l4Start+2:], new.DstPort)
}

func scnBeU16(b []byte) uint16     { return uint16(b[0])<<8 | uint16(b[1]) }
func scnPutU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
