package workload

import (
	"math"
	"strings"
	"testing"

	"fairbench/internal/sim"
)

func TestOnOffLongRunRate(t *testing.T) {
	// Property: the long-run average arrival rate equals the nominal
	// rate despite burstiness.
	o := &OnOff{}
	rng := sim.NewRNG(9)
	const pps = 1e6
	const n = 300000
	var total float64
	for i := 0; i < n; i++ {
		g := o.NextGap(rng, pps)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	rate := n / total
	if math.Abs(rate-pps)/pps > 0.05 {
		t.Errorf("long-run rate = %v, want ≈%v", rate, pps)
	}
}

func TestOnOffIsBurstier(t *testing.T) {
	// The squared coefficient of variation of inter-arrival gaps must
	// exceed Poisson's (which is 1).
	gaps := func(a Arrival, seed uint64) (mean, cv2 float64) {
		rng := sim.NewRNG(seed)
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := a.NextGap(rng, 1e6)
			sum += g
			sumSq += g * g
		}
		mean = sum / n
		variance := sumSq/n - mean*mean
		return mean, variance / (mean * mean)
	}
	_, poissonCV2 := gaps(Poisson{}, 5)
	_, onoffCV2 := gaps(&OnOff{}, 5)
	if onoffCV2 < poissonCV2*2 {
		t.Errorf("on/off CV² = %v should far exceed Poisson's %v", onoffCV2, poissonCV2)
	}
}

func TestOnOffDefaultsAndName(t *testing.T) {
	o := &OnOff{}
	if !strings.HasPrefix(o.Name(), "onoff-20%") {
		t.Errorf("Name = %q", o.Name())
	}
	custom := &OnOff{OnFraction: 0.5, MeanCycleSeconds: 4e-3}
	if !strings.HasPrefix(custom.Name(), "onoff-50%") {
		t.Errorf("Name = %q", custom.Name())
	}
	// Out-of-range params fall back to defaults rather than breaking.
	bad := &OnOff{OnFraction: 7, OffRateFraction: -2}
	rng := sim.NewRNG(1)
	if g := bad.NextGap(rng, 1e6); g <= 0 || math.IsNaN(g) {
		t.Errorf("gap with bad params = %v", g)
	}
}

func TestOnOffDeterministic(t *testing.T) {
	mk := func() []float64 {
		o := &OnOff{}
		rng := sim.NewRNG(77)
		var out []float64
		for i := 0; i < 1000; i++ {
			out = append(out, o.NextGap(rng, 1e6))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("on/off arrivals must be deterministic per seed")
		}
	}
}
