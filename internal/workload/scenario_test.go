package workload

import (
	"bytes"
	"errors"
	"hash/fnv"
	"io"
	"math"
	"strings"
	"testing"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=1e6,skew=1.1,attack=0.2,tcp=0.3;diurnal:period=60s,depth=0.5;flashcrowd:at=10s,for=20s,peak=3;synflood:rate=0.4,at=5s,for=10s;amplify:rate=0.1,size=1200;churn:life=30s;seed:7")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Flows != 1_000_000 || sc.Skew != 1.1 || sc.AttackFraction != 0.2 || sc.TCPFraction != 0.3 {
		t.Errorf("zipf clause = %+v", sc)
	}
	if sc.Seed != 7 {
		t.Errorf("seed = %d", sc.Seed)
	}
	if sc.Diurnal == nil || sc.Diurnal.Period != 60 || sc.Diurnal.Depth != 0.5 {
		t.Errorf("diurnal = %+v", sc.Diurnal)
	}
	if sc.Flash == nil || sc.Flash.At != 10 || sc.Flash.For != 20 || sc.Flash.Peak != 3 {
		t.Errorf("flash = %+v", sc.Flash)
	}
	if sc.SYNFlood == nil || sc.SYNFlood.Rate != 0.4 || sc.SYNFlood.At != 5 || sc.SYNFlood.For != 10 {
		t.Errorf("synflood = %+v", sc.SYNFlood)
	}
	if sc.Amplify == nil || sc.Amplify.Rate != 0.1 || sc.Amplify.Size != 1200 {
		t.Errorf("amplify = %+v", sc.Amplify)
	}
	if sc.Churn == nil || sc.Churn.Lifetime != 30 {
		t.Errorf("churn = %+v", sc.Churn)
	}
}

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario("zipf:skew=1.2")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Flows != 1<<20 || sc.Seed != 1 {
		t.Errorf("defaults: flows=%d seed=%d", sc.Flows, sc.Seed)
	}
	// Durations accept plain seconds too.
	sc, err = ParseScenario("zipf:flows=100;churn:life=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Churn.Lifetime != 2.5 {
		t.Errorf("plain-seconds lifetime = %v", sc.Churn.Lifetime)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus:flows=1",
		"zipf:flows=abc",
		"zipf:flows=1.5",
		"zipf:flows=0",
		"zipf:skew=-1",
		"zipf:skew=0.5,flows=2097152", // table sampler over its cap
		"zipf:attack=1.5",
		"zipf:tcp=-0.1",
		"zipf:wat=1",
		"zipf:flows",
		"diurnal:period=0,depth=0.5",
		"diurnal:period=10,depth=1",
		"flashcrowd:at=1,for=0,peak=2",
		"synflood:rate=0",
		"synflood:rate=1",
		"synflood:rate=0.6;amplify:rate=0.5", // blend >= 1
		"amplify:rate=0.1,size=20",
		"churn:life=0",
		"seed:xyz",
		"zipf:flows=1;zipf:flows=2",
	}
	for _, in := range cases {
		if _, err := ParseScenario(in); !errors.Is(err, ErrScenario) {
			t.Errorf("ParseScenario(%q) = %v, want ErrScenario", in, err)
		}
	}
}

func TestScenarioStringRoundTrip(t *testing.T) {
	specs := []string{
		"zipf:flows=4096,skew=1.1,attack=0.25;synflood:rate=0.3;churn:life=5;seed:3",
		"zipf:flows=64;diurnal:period=10,depth=0.4;amplify:rate=0.2,size=1200;seed:9",
		"zipf:flows=128,skew=2;flashcrowd:at=1,for=2,peak=4;seed:1",
	}
	for _, in := range specs {
		sc, err := ParseScenario(in)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", in, err)
		}
		again, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", sc.String(), err)
		}
		if again.String() != sc.String() {
			t.Errorf("round trip changed spec:\n  %s\n  %s", sc.String(), again.String())
		}
	}
}

// streamDigest hashes n packets of a scenario stream: frame bytes,
// class, and declared flow, at a fixed packet rate over simulated time.
func streamDigest(t *testing.T, spec string, n int) uint64 {
	t.Helper()
	sc, err := ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for i := 0; i < n; i++ {
		tm := float64(i) * 1e-3
		p, class, err := g.NextAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(p.Frame)
		h.Write([]byte(class))
		var ftb [16]byte
		copy(ftb[:4], p.Flow.Src[:])
		copy(ftb[4:8], p.Flow.Dst[:])
		ftb[8] = byte(p.Flow.SrcPort >> 8)
		ftb[9] = byte(p.Flow.SrcPort)
		ftb[10] = byte(p.Flow.DstPort >> 8)
		ftb[11] = byte(p.Flow.DstPort)
		ftb[12] = p.Flow.Proto
		h.Write(ftb[:])
	}
	return h.Sum64()
}

func TestScenarioStreamByteIdenticalPerSeed(t *testing.T) {
	const spec = "zipf:flows=1e6,skew=1.1,attack=0.2,tcp=0.3;synflood:rate=0.2;amplify:rate=0.1;churn:life=0.5;diurnal:period=4,depth=0.3;seed:11"
	a := streamDigest(t, spec, 5000)
	b := streamDigest(t, spec, 5000)
	if a != b {
		t.Fatal("same seed must produce a byte-identical stream")
	}
	c := streamDigest(t, strings.Replace(spec, "seed:11", "seed:12", 1), 5000)
	if c == a {
		t.Fatal("different seeds should not collide")
	}
}

func TestScenarioBoundedMemoryAtInternetScale(t *testing.T) {
	// 10^7 concurrent flows: per-flow state would be hundreds of MB;
	// the generator must hold only frame templates.
	sc, err := ParseScenario("zipf:flows=1e7,skew=1.1,tcp=0.5;synflood:rate=0.1;amplify:rate=0.05;churn:life=1;seed:2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[packet.FiveTuple]bool{}
	for i := 0; i < 20000; i++ {
		p, _, err := g.NextAt(float64(i) * 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Frame) < packet.MinFrameLen {
			t.Fatalf("undersized frame %d", len(p.Frame))
		}
		seen[p.Flow] = true
	}
	// Templates: {60,594,1514} × UDP/TCP-ACK/TCP-SYN combinations plus
	// flood SYN and amplify shapes — a handful, regardless of flows.
	if n := len(g.templates); n > 12 {
		t.Errorf("template cache grew to %d entries — per-flow state leaking in", n)
	}
	if len(seen) < 5000 {
		t.Errorf("only %d distinct flows in 20k packets at 10M population", len(seen))
	}
}

func TestScenarioSteadyStateZeroAlloc(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=1e6,skew=1.1,tcp=0.5;synflood:rate=0.2;amplify:rate=0.1;churn:life=1;seed:3")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the template cache through every (proto, size, syn) shape.
	for i := 0; i < 20000; i++ {
		if _, _, err := g.NextAt(float64(i) * 1e-4); err != nil {
			t.Fatal(err)
		}
	}
	tm := 2.0
	allocs := testing.AllocsPerRun(2000, func() {
		if _, _, err := g.NextAt(tm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state NextAt allocates %v per packet, want 0", allocs)
	}
}

func TestScenarioFramesParseAndMatchFlow(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=1024,skew=1.3,tcp=0.5,attack=0.2;synflood:rate=0.2;amplify:rate=0.1;churn:life=0.2;seed:5")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewParser()
	for i := 0; i < 5000; i++ {
		pk, class, err := g.NextAt(float64(i) * 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Parse(pk.Frame); err != nil {
			t.Fatalf("packet %d (%s) does not parse: %v", i, class, err)
		}
		ft, ok := p.FiveTuple()
		if !ok || ft != pk.Flow {
			t.Fatalf("packet %d (%s): frame five-tuple %v != declared %v", i, class, ft, pk.Flow)
		}
	}
}

func TestScenarioPatchedFrameEqualsFreshBuild(t *testing.T) {
	// The in-place incremental-checksum retuple must be byte-identical
	// to building the frame from scratch — otherwise checksums drift
	// packet by packet.
	sc, err := ParseScenario("zipf:flows=512,skew=1.2,tcp=0.5;synflood:rate=0.2;amplify:rate=0.1;seed:6")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	const l4Start = packet.EthernetHeaderLen + packet.IPv4MinHeaderLen
	for i := 0; i < 5000; i++ {
		pk, _, err := g.NextAt(float64(i) * 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]byte(nil), pk.Frame...)
		syn := false
		if pk.Flow.Proto == packet.ProtoTCP {
			syn = packet.TCPFlags(got[l4Start+13]).Has(packet.FlagSYN)
		}
		want, err := buildScenarioFrame(pk.Flow, len(got), syn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("packet %d: patched frame differs from fresh build for %v", i, pk.Flow)
		}
	}
}

func TestScenarioFloodTuplesNeverRepeat(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=64;synflood:rate=0.9;seed:8")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[packet.FiveTuple]bool{}
	floods := 0
	for i := 0; i < 30000; i++ {
		pk, class, err := g.NextAt(0)
		if err != nil {
			t.Fatal(err)
		}
		if class != ClassFlood {
			continue
		}
		floods++
		if pk.Flow.Proto != packet.ProtoTCP || pk.Flow.DstPort != 443 {
			t.Fatalf("flood packet is not a 443/TCP SYN: %v", pk.Flow)
		}
		if pk.Flow.Src[1] == 66 {
			t.Fatalf("flood source in the blocklisted prefix defeats its purpose: %v", pk.Flow.Src)
		}
		if seen[pk.Flow] {
			t.Fatalf("flood five-tuple repeated after %d floods: %v", floods, pk.Flow)
		}
		seen[pk.Flow] = true
	}
	if floods < 25000 {
		t.Errorf("flood count = %d of 30000 at rate 0.9", floods)
	}
}

func TestScenarioAmplifyShape(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=64;amplify:rate=0.5,size=1400;seed:9")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[packet.Addr4]bool{}
	amps := 0
	for i := 0; i < 10000; i++ {
		pk, class, err := g.NextAt(0)
		if err != nil {
			t.Fatal(err)
		}
		if class != ClassAmplify {
			continue
		}
		amps++
		if len(pk.Frame) != 1400 || pk.Flow.Proto != packet.ProtoUDP || pk.Flow.DstPort != 53 {
			t.Fatalf("amplify packet shape: len=%d %v", len(pk.Frame), pk.Flow)
		}
		srcs[pk.Flow.Src] = true
	}
	if amps < 4000 {
		t.Errorf("amplify count = %d of 10000 at rate 0.5", amps)
	}
	if len(srcs) > reflectorSet {
		t.Errorf("%d reflector sources, want <= %d (amplification is state-light by design)", len(srcs), reflectorSet)
	}
}

func TestScenarioAttackWindows(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=64;synflood:rate=0.8,at=10,for=5;seed:10")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	countAt := func(tm float64) int {
		n := 0
		for i := 0; i < 2000; i++ {
			_, class, err := g.NextAt(tm)
			if err != nil {
				t.Fatal(err)
			}
			if class == ClassFlood {
				n++
			}
		}
		return n
	}
	if n := countAt(5); n != 0 {
		t.Errorf("%d floods before the window", n)
	}
	if n := countAt(12); n < 1200 {
		t.Errorf("%d floods of 2000 inside the window at rate 0.8", n)
	}
	if n := countAt(20); n != 0 {
		t.Errorf("%d floods after the window", n)
	}
}

func TestScenarioChurnRetiresTuples(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=256;churn:life=1;seed:12")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The same flow index must map to a stable tuple within a
	// generation and a different one far later.
	ft0, _ := g.flowTuple(7, g.generation(7, 0))
	ft0b, _ := g.flowTuple(7, g.generation(7, 0))
	if ft0 != ft0b {
		t.Fatal("tuple synthesis is not a pure function")
	}
	ftLater, _ := g.flowTuple(7, g.generation(7, 100))
	if ft0 == ftLater {
		t.Fatal("churn did not retire the tuple after 100 lifetimes")
	}
	if ft0.Src != ftLater.Src || ft0.Dst != ftLater.Dst || ft0.Proto != ftLater.Proto {
		t.Error("churn should renew the ephemeral port, not the flow's identity")
	}
	// Turnover is staggered: at any instant only a fraction of flows
	// sit near a generation boundary.
	changedEarly := 0
	for i := 0; i < 256; i++ {
		a, _ := g.flowTuple(i, g.generation(i, 0))
		b, _ := g.flowTuple(i, g.generation(i, 0.25))
		if a != b {
			changedEarly++
		}
	}
	if changedEarly == 0 || changedEarly > 128 {
		t.Errorf("%d of 256 flows churned in a quarter lifetime, want a staggered fraction", changedEarly)
	}
}

func TestScenarioRateFactor(t *testing.T) {
	sc, err := ParseScenario("zipf:flows=64;diurnal:period=10,depth=0.5;flashcrowd:at=2,for=1,peak=4;seed:1")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScenarioGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.RateFactor(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("trough factor = %v, want 0.5", got)
	}
	if got := g.RateFactor(5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("peak factor = %v, want 1.5", got)
	}
	withFlash := g.RateFactor(2.5)
	base := 1 - 0.5*math.Cos(2*math.Pi*2.5/10)
	if math.Abs(withFlash-4*base) > 1e-12 {
		t.Errorf("flash factor = %v, want %v", withFlash, 4*base)
	}
	if got := g.RateFactor(3.5); math.Abs(got-(1-0.5*math.Cos(2*math.Pi*3.5/10))) > 1e-12 {
		t.Errorf("post-flash factor = %v", got)
	}
}

func TestZipfRejInvDistribution(t *testing.T) {
	// The O(1)-memory sampler must agree with the O(n) table sampler on
	// head concentration for the same exponent.
	const n = 1000
	const draws = 50000
	ri := newZipfRejInv(sim.NewRNG(42), n, 1.3)
	riCounts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := ri.Draw()
		if k < 0 || k >= n {
			t.Fatalf("rank %d outside [0, %d)", k, n)
		}
		riCounts[k]++
	}
	tab := sim.NewZipf(sim.NewRNG(43), n, 1.3)
	tabCounts := make([]int, n)
	for i := 0; i < draws; i++ {
		tabCounts[tab.Draw()]++
	}
	head := func(c []int) float64 {
		s := 0
		for i := 0; i < 10; i++ {
			s += c[i]
		}
		return float64(s) / draws
	}
	hr, ht := head(riCounts), head(tabCounts)
	if math.Abs(hr-ht) > 0.03 {
		t.Errorf("top-10 mass: rejection-inversion %v vs table %v", hr, ht)
	}
	if riCounts[0] < riCounts[1] {
		t.Error("rank 0 should be the hottest")
	}
}

// FuzzParseScenario checks the scenario parser never panics, wraps all
// failures in ErrScenario, and canonicalises: a successfully parsed
// spec re-renders and re-parses to the same canonical string.
func FuzzParseScenario(f *testing.F) {
	f.Add("zipf:flows=1e6,skew=1.1,attack=0.2;synflood:rate=0.4;churn:life=5s;seed:7")
	f.Add("zipf:flows=64;diurnal:period=60s,depth=0.5;flashcrowd:at=10,for=20,peak=3")
	f.Add("amplify:rate=0.1,size=1200;seed:1")
	f.Add("zipf:skew=0.5,flows=1048576")
	f.Add(";;;")
	f.Add("zipf:")
	f.Add("seed:18446744073709551615")
	f.Add("churn:life=-3h")
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseScenario(in)
		if err != nil {
			if !errors.Is(err, ErrScenario) {
				t.Fatalf("error does not wrap ErrScenario: %v", err)
			}
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("parsed scenario fails its own validation: %v", err)
		}
		again, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", sc.String(), err)
		}
		if again.String() != sc.String() {
			t.Fatalf("canonical form is not a fixed point:\n  %s\n  %s", sc.String(), again.String())
		}
	})
}

// FuzzTraceRead feeds arbitrary bytes to the trace reader: it must
// never panic and must fail with ErrBadTrace (or end with io.EOF), no
// matter how the stream is corrupted.
func FuzzTraceRead(f *testing.F) {
	g, err := NewGenerator(Spec{Flows: 4, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := Record(&valid, g, CBR{}, 1e6, 8); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FBTRACE1"))
	f.Add(bytes.Repeat([]byte{0x1f, 0x8b}, 20))
	trunc := valid.Bytes()
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("open error does not wrap ErrBadTrace: %v", err)
			}
			return
		}
		defer tr.Close()
		for i := 0; i < 1000; i++ {
			rec, err := tr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("read error is neither EOF nor ErrBadTrace: %v", err)
				}
				return
			}
			if len(rec.Frame) > 0xffff {
				t.Fatal("oversize frame from reader")
			}
		}
	})
}
