package workload

import (
	"fmt"

	"fairbench/internal/sim"
)

// OnOff is a two-state bursty arrival process (a Markov-modulated
// Poisson process): the source alternates between an ON state emitting
// at a multiple of the nominal rate and an OFF state emitting almost
// nothing, with exponentially distributed sojourn times. The long-run
// average rate equals the nominal rate, so throughput comparisons stay
// fair while burst-sensitivity (queue depths, SmartNIC punting,
// back-to-back tolerance) is exercised.
type OnOff struct {
	// OnFraction is the long-run fraction of time spent ON, in (0, 1)
	// (default 0.2 — bursty).
	OnFraction float64
	// MeanCycleSeconds is the mean ON+OFF cycle length (default 2 ms).
	MeanCycleSeconds float64
	// OffRateFraction is the OFF-state rate as a fraction of nominal
	// (default 0.01; zero would starve the arrival loop).
	OffRateFraction float64

	on        bool
	remaining float64 // seconds left in the current state
	init      bool
}

func (o *OnOff) params() (onFrac, cycle, offFrac float64) {
	onFrac = o.OnFraction
	if onFrac <= 0 || onFrac >= 1 {
		onFrac = 0.2
	}
	cycle = o.MeanCycleSeconds
	if cycle <= 0 {
		cycle = 2e-3
	}
	offFrac = o.OffRateFraction
	if offFrac <= 0 || offFrac >= 1 {
		offFrac = 0.01
	}
	return
}

// Name implements Arrival.
func (o *OnOff) Name() string {
	onFrac, cycle, _ := o.params()
	return fmt.Sprintf("onoff-%.0f%%-%.1fms", onFrac*100, cycle*1e3)
}

// NextGap implements Arrival. The ON-state rate is chosen so the
// long-run average equals pps:
//
//	onRate·onFrac + offRate·(1-onFrac) = pps
func (o *OnOff) NextGap(rng *sim.RNG, pps float64) float64 {
	onFrac, cycle, offFrac := o.params()
	offRate := pps * offFrac
	onRate := (pps - offRate*(1-onFrac)) / onFrac

	if !o.init {
		o.init = true
		o.on = rng.Float64() < onFrac
		o.remaining = o.sojourn(rng, onFrac, cycle)
	}

	var gap float64
	for {
		rate := offRate
		if o.on {
			rate = onRate
		}
		step := rng.Exp(rate)
		if step <= o.remaining {
			o.remaining -= step
			gap += step
			return gap
		}
		// The state expires before the next arrival: advance time to
		// the state boundary and flip.
		gap += o.remaining
		o.on = !o.on
		o.remaining = o.sojourn(rng, onFrac, cycle)
	}
}

// sojourn draws the next state's duration: mean onFrac·cycle for ON,
// (1-onFrac)·cycle for OFF.
func (o *OnOff) sojourn(rng *sim.RNG, onFrac, cycle float64) float64 {
	mean := (1 - onFrac) * cycle
	if o.on {
		mean = onFrac * cycle
	}
	return rng.Exp(1 / mean)
}
