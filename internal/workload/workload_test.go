package workload

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

func TestFixedSize(t *testing.T) {
	f := FixedSize(64)
	rng := sim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if f.Next(rng) != 64 {
			t.Fatal("fixed size must be constant")
		}
	}
	if f.Mean() != 64 || f.Name() != "fixed-64" {
		t.Errorf("Mean/Name = %v/%q", f.Mean(), f.Name())
	}
}

func TestIMIXDistribution(t *testing.T) {
	m := IMIX()
	rng := sim.NewRNG(2)
	counts := map[int]int{}
	const n = 120000
	for i := 0; i < n; i++ {
		counts[m.Next(rng)]++
	}
	// Weights 7:4:1 over 60/594/1514.
	if got := float64(counts[60]) / n; math.Abs(got-7.0/12) > 0.01 {
		t.Errorf("60B fraction = %v, want ≈0.583", got)
	}
	if got := float64(counts[594]) / n; math.Abs(got-4.0/12) > 0.01 {
		t.Errorf("594B fraction = %v, want ≈0.333", got)
	}
	if got := float64(counts[1514]) / n; math.Abs(got-1.0/12) > 0.01 {
		t.Errorf("1514B fraction = %v, want ≈0.083", got)
	}
	wantMean := (7.0*60 + 4*594 + 1*1514) / 12
	if math.Abs(m.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", m.Mean(), wantMean)
	}
}

func TestNewMixValidation(t *testing.T) {
	if _, err := NewMix("m", nil, nil); err == nil {
		t.Error("empty mix should fail")
	}
	if _, err := NewMix("m", []int{64}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := NewMix("m", []int{10}, []float64{1}); err == nil {
		t.Error("sub-minimum frame should fail")
	}
	if _, err := NewMix("m", []int{64}, []float64{0}); err == nil {
		t.Error("zero weight should fail")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []uint64 {
		g, err := NewGenerator(Spec{Flows: 64, ZipfSkew: 1.1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var hashes []uint64
		for i := 0; i < 500; i++ {
			p, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, p.Flow.FastHash()^uint64(len(p.Frame)))
		}
		return hashes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at packet %d", i)
		}
	}
}

func TestGeneratorFramesParseAndMatchFlow(t *testing.T) {
	g, err := NewGenerator(Spec{Flows: 32, TCPFraction: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewParser()
	for i := 0; i < 500; i++ {
		pk, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Parse(pk.Frame); err != nil {
			t.Fatalf("generated frame %d does not parse: %v", i, err)
		}
		ft, ok := p.FiveTuple()
		if !ok || ft != pk.Flow {
			t.Fatalf("frame five-tuple %v != declared flow %v", ft, pk.Flow)
		}
	}
}

func TestGeneratorAttackFraction(t *testing.T) {
	g, err := NewGenerator(Spec{Flows: 4000, AttackFraction: 0.65, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	attack := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pk, _ := g.Next()
		if pk.Attack {
			attack++
			if pk.Flow.Src[0] != 10 || pk.Flow.Src[1] != 66 {
				t.Fatalf("attack flow not in 10.66/16: %v", pk.Flow.Src)
			}
		} else if pk.Flow.Src[1] == 66 {
			t.Fatalf("benign flow in attack prefix: %v", pk.Flow.Src)
		}
	}
	frac := float64(attack) / n
	if math.Abs(frac-0.65) > 0.03 {
		t.Errorf("attack fraction = %v, want ≈0.65", frac)
	}
}

func TestGeneratorZipfSkewsPopularity(t *testing.T) {
	g, err := NewGenerator(Spec{Flows: 1000, ZipfSkew: 1.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[packet.FiveTuple]int)
	for i := 0; i < 20000; i++ {
		pk, _ := g.Next()
		counts[pk.Flow]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2000 {
		t.Errorf("hottest flow count = %d; Zipf 1.3 should concentrate traffic", max)
	}
	// Uniform comparison.
	gu, _ := NewGenerator(Spec{Flows: 1000, Seed: 6})
	uc := make(map[packet.FiveTuple]int)
	for i := 0; i < 20000; i++ {
		pk, _ := gu.Next()
		uc[pk.Flow]++
	}
	umax := 0
	for _, c := range uc {
		if c > umax {
			umax = c
		}
	}
	if umax >= max {
		t.Errorf("uniform max %d should be far below zipf max %d", umax, max)
	}
}

func TestGeneratorSpecValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{AttackFraction: 1.5}); err == nil {
		t.Error("attack fraction > 1 should fail")
	}
	if _, err := NewGenerator(Spec{TCPFraction: -0.1}); err == nil {
		t.Error("negative TCP fraction should fail")
	}
}

func TestNextCopyIsPrivate(t *testing.T) {
	g, _ := NewGenerator(Spec{Flows: 1, Seed: 7})
	a, err := g.NextCopy()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Next()
	if &a.Frame[0] == &b.Frame[0] {
		t.Fatal("NextCopy must not alias the template")
	}
	orig := b.Frame[20]
	a.Frame[20] ^= 0xff
	if b.Frame[20] != orig {
		t.Error("mutating the copy must not affect the template")
	}
}

func TestArrivalProcesses(t *testing.T) {
	rng := sim.NewRNG(8)
	if got := (CBR{}).NextGap(rng, 1000); got != 0.001 {
		t.Errorf("CBR gap = %v", got)
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		g := (Poisson{}).NextGap(rng, 1000)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	if mean := sum / n; math.Abs(mean-0.001) > 0.0001 {
		t.Errorf("Poisson mean gap = %v, want 0.001", mean)
	}
	if (CBR{}).Name() != "cbr" || (Poisson{}).Name() != "poisson" {
		t.Error("arrival names")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, _ := NewGenerator(Spec{Flows: 16, Seed: 10})
	var buf bytes.Buffer
	if err := Record(&buf, g, CBR{}, 1e6, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var prevTS uint64
	n := 0
	p := packet.NewParser()
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.TimestampNanos < prevTS {
			t.Fatal("timestamps must be monotone")
		}
		prevTS = rec.TimestampNanos
		if err := p.Parse(rec.Frame); err != nil {
			t.Fatalf("replayed frame does not parse: %v", err)
		}
		n++
	}
	if n != 100 || tr.Count() != 100 {
		t.Errorf("replayed %d records", n)
	}
	// CBR at 1 Mpps: last timestamp ≈ 100 µs.
	if prevTS < 99_000 || prevTS > 101_000 {
		t.Errorf("last timestamp = %d ns, want ≈100µs", prevTS)
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v", err)
	}
}

func TestTraceWriterRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(TraceRecord{Frame: make([]byte, 70000)}); err == nil {
		t.Error("oversize frame should fail")
	}
}

func TestRecordValidation(t *testing.T) {
	g, _ := NewGenerator(Spec{Flows: 1})
	var buf bytes.Buffer
	if err := Record(&buf, g, CBR{}, 0, 10); err == nil {
		t.Error("zero pps should fail")
	}
	if err := Record(&buf, g, CBR{}, 100, -1); err == nil {
		t.Error("negative count should fail")
	}
}
