package workload

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace record/replay. The format is a gzip stream of length-prefixed
// records:
//
//	magic   [8]byte  "FBTRACE1"
//	record  := tsNanos uint64 | frameLen uint16 | frame [frameLen]byte
//
// It stands in for pcap in this offline environment; converting to/from
// pcap would be a trivial header change.

var traceMagic = [8]byte{'F', 'B', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadTrace is returned for malformed trace streams.
var ErrBadTrace = errors.New("workload: malformed trace")

// TraceRecord is one captured packet.
type TraceRecord struct {
	// TimestampNanos is the packet's offset from trace start.
	TimestampNanos uint64
	// Frame is the full Ethernet frame.
	Frame []byte
}

// TraceWriter streams records to an underlying writer.
type TraceWriter struct {
	gz  *gzip.Writer
	bw  *bufio.Writer
	n   uint64
	err error
}

// NewTraceWriter writes a trace header to w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("workload: writing trace header: %w", err)
	}
	return &TraceWriter{gz: gz, bw: bw}, nil
}

// Write appends one record.
func (tw *TraceWriter) Write(rec TraceRecord) error {
	if tw.err != nil {
		return tw.err
	}
	if len(rec.Frame) > 0xffff {
		return fmt.Errorf("%w: frame of %d bytes", ErrBadTrace, len(rec.Frame))
	}
	var hdr [10]byte
	binary.BigEndian.PutUint64(hdr[0:8], rec.TimestampNanos)
	binary.BigEndian.PutUint16(hdr[8:10], uint16(len(rec.Frame)))
	if _, err := tw.bw.Write(hdr[:]); err != nil {
		tw.err = err
		return err
	}
	if _, err := tw.bw.Write(rec.Frame); err != nil {
		tw.err = err
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *TraceWriter) Count() uint64 { return tw.n }

// Close flushes and closes the compressed stream (not the underlying
// writer).
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if err := tw.bw.Flush(); err != nil {
		return err
	}
	return tw.gz.Close()
}

// TraceReader streams records from a trace.
type TraceReader struct {
	gz *gzip.Reader
	br *bufio.Reader
	n  uint64
}

// NewTraceReader validates the header of r.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	br := bufio.NewReader(gz)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	return &TraceReader{gz: gz, br: br}, nil
}

// Next returns the next record, or io.EOF at end of trace.
func (tr *TraceReader) Next() (TraceRecord, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(tr.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return TraceRecord{}, io.EOF
		}
		return TraceRecord{}, fmt.Errorf("%w: truncated record header", ErrBadTrace)
	}
	ts := binary.BigEndian.Uint64(hdr[0:8])
	n := binary.BigEndian.Uint16(hdr[8:10])
	frame := make([]byte, n)
	if _, err := io.ReadFull(tr.br, frame); err != nil {
		return TraceRecord{}, fmt.Errorf("%w: truncated frame", ErrBadTrace)
	}
	tr.n++
	return TraceRecord{TimestampNanos: ts, Frame: frame}, nil
}

// Count returns the number of records read so far.
func (tr *TraceReader) Count() uint64 { return tr.n }

// Close closes the decompressor.
func (tr *TraceReader) Close() error { return tr.gz.Close() }

// Record captures n packets from a generator at the given rate into w,
// timestamped by the arrival process.
func Record(w io.Writer, gen *Generator, arrival Arrival, pps float64, n int) error {
	if pps <= 0 || n < 0 {
		return fmt.Errorf("workload: invalid record params pps=%v n=%d", pps, n)
	}
	tw, err := NewTraceWriter(w)
	if err != nil {
		return err
	}
	rng := gen.ArrivalRNG()
	var ts float64
	for i := 0; i < n; i++ {
		p, err := gen.Next()
		if err != nil {
			return err
		}
		ts += arrival.NextGap(rng, pps)
		if err := tw.Write(TraceRecord{TimestampNanos: uint64(ts * 1e9), Frame: p.Frame}); err != nil {
			return err
		}
	}
	return tw.Close()
}
