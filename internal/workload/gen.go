// Package workload generates synthetic traffic for the simulated
// deployments: RFC 2544-style fixed-size and IMIX packet mixes, Zipf
// flow popularity, constant-rate and Poisson arrivals, and configurable
// fractions of blocklisted ("attack") traffic for the firewall
// experiments. It also records and replays traces in a compact binary
// format, substituting for the proprietary production traces the
// paper's example systems would be evaluated with.
package workload

import (
	"fmt"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// SizeDist selects frame sizes.
type SizeDist interface {
	// Next returns the next frame size in bytes (Ethernet, no FCS).
	Next(rng *sim.RNG) int
	// Mean returns the expected frame size in bytes.
	Mean() float64
	// Name labels the distribution in reports.
	Name() string
}

// FixedSize is a constant frame size — RFC 2544 throughput tests use
// 64-byte minimum frames.
type FixedSize int

// Next implements SizeDist.
func (f FixedSize) Next(*sim.RNG) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed-%d", int(f)) }

// imixEntry is one component of a mixture distribution.
type imixEntry struct {
	size   int
	weight float64
}

// Mix is a weighted mixture of frame sizes.
type Mix struct {
	name    string
	entries []imixEntry
	cum     []float64
	mean    float64
}

// NewMix builds a mixture from (size, weight) pairs; weights are
// normalised.
func NewMix(name string, sizes []int, weights []float64) (*Mix, error) {
	if len(sizes) == 0 || len(sizes) != len(weights) {
		return nil, fmt.Errorf("workload: mix needs matching non-empty sizes and weights")
	}
	m := &Mix{name: name}
	var total float64
	for i, s := range sizes {
		if s < packet.MinFrameLen || s > packet.MaxFrameLen {
			return nil, fmt.Errorf("workload: frame size %d outside [%d, %d]", s, packet.MinFrameLen, packet.MaxFrameLen)
		}
		if weights[i] <= 0 {
			return nil, fmt.Errorf("workload: non-positive weight %v", weights[i])
		}
		total += weights[i]
		m.entries = append(m.entries, imixEntry{size: s, weight: weights[i]})
	}
	var cum float64
	for _, e := range m.entries {
		cum += e.weight / total
		m.cum = append(m.cum, cum)
		m.mean += e.weight / total * float64(e.size)
	}
	return m, nil
}

// IMIX returns the classic "simple IMIX" mixture: 64-byte (58.33%),
// 594-byte (33.33%), 1518-byte (8.33%) frames. The 64-byte component is
// padded to the 60-byte minimum our builder enforces (we model frames
// without FCS; a wire 64-byte frame is 60 bytes here).
func IMIX() *Mix {
	m, err := NewMix("imix", []int{60, 594, 1514}, []float64{7, 4, 1})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return m
}

// Next implements SizeDist.
func (m *Mix) Next(rng *sim.RNG) int {
	u := rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.entries[i].size
		}
	}
	return m.entries[len(m.entries)-1].size
}

// Mean implements SizeDist.
func (m *Mix) Mean() float64 { return m.mean }

// Name implements SizeDist.
func (m *Mix) Name() string { return m.name }

// Spec configures a traffic generator.
type Spec struct {
	// Flows is the number of distinct five-tuples (default 1024).
	Flows int
	// ZipfSkew skews flow popularity; 0 draws flows uniformly.
	ZipfSkew float64
	// Sizes selects frame sizes (default IMIX).
	Sizes SizeDist
	// AttackFraction is the probability a generated flow originates
	// from the blocklisted prefix AttackPrefix — traffic the firewall
	// examples drop, and the switch experiment pre-drops in-network.
	AttackFraction float64
	// TCPFraction is the probability a flow is TCP rather than UDP
	// (default 0 — UDP keeps generation cheap; TCP flows exercise the
	// TCP path).
	TCPFraction float64
	// Seed derives all random streams (default 1).
	Seed uint64
}

// AttackPrefix is the source prefix of blocklisted traffic: 10.66.0.0/16.
var AttackPrefix = packet.Addr4{10, 66, 0, 0}

func (s Spec) withDefaults() Spec {
	if s.Flows == 0 {
		s.Flows = 1024
	}
	if s.Sizes == nil {
		s.Sizes = IMIX()
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Pkt is one generated packet: its flow, pre-built frame bytes, and
// whether it came from the attack prefix (ground truth for loss
// accounting). Scenario generators additionally stamp the traffic
// class for goodput metering; the plain Generator leaves it empty
// (treated as legitimate).
type Pkt struct {
	Flow   packet.FiveTuple
	Frame  []byte
	Attack bool
	Class  Class
}

// Generator produces packets per a Spec. Frames are pre-built per
// (flow, size) template and the returned slice aliases the template:
// consumers that rewrite frames in place must copy first (or use
// NextCopy).
type Generator struct {
	spec  Spec
	flows []flowState
	zipf  *sim.Zipf
	rng   *sim.RNG
	// Generated counts packets produced.
	Generated uint64
	// templates caches built frames per flow index and size.
	templates map[templateKey][]byte
}

type flowState struct {
	ft     packet.FiveTuple
	attack bool
}

type templateKey struct {
	flow int
	size int
}

// NewGenerator builds a generator.
func NewGenerator(spec Spec) (*Generator, error) {
	spec = spec.withDefaults()
	if spec.Flows < 0 || spec.AttackFraction < 0 || spec.AttackFraction > 1 || spec.TCPFraction < 0 || spec.TCPFraction > 1 {
		return nil, fmt.Errorf("workload: invalid spec %+v", spec)
	}
	g := &Generator{spec: spec, rng: sim.NewRNG(spec.Seed), templates: make(map[templateKey][]byte)}
	flowRng := g.rng.Derive("flows")
	for i := 0; i < spec.Flows; i++ {
		attack := flowRng.Float64() < spec.AttackFraction
		var src packet.Addr4
		if attack {
			src = packet.Addr4{10, 66, byte(i >> 8), byte(i)}
		} else {
			src = packet.Addr4{10, byte(1 + i%60), byte(i >> 8), byte(i)}
		}
		proto := packet.ProtoUDP
		if flowRng.Float64() < spec.TCPFraction {
			proto = packet.ProtoTCP
		}
		ft := packet.FiveTuple{
			Src:     src,
			Dst:     packet.Addr4{192, 168, 1, byte(1 + i%200)},
			SrcPort: uint16(1024 + i%60000),
			DstPort: pickDstPort(proto, i),
			Proto:   proto,
		}
		g.flows = append(g.flows, flowState{ft: ft, attack: attack})
	}
	if spec.ZipfSkew > 0 && spec.Flows > 0 {
		g.zipf = sim.NewZipf(g.rng.Derive("zipf"), spec.Flows, spec.ZipfSkew)
	}
	return g, nil
}

// pickDstPort steers generated flows toward the example rule sets'
// accept ports (443/TCP, 53/UDP) with some spread.
func pickDstPort(proto uint8, i int) uint16 {
	if proto == packet.ProtoTCP {
		return 443
	}
	if i%5 == 0 {
		return uint16(2000 + i%100)
	}
	return 53
}

// Spec returns the effective specification.
func (g *Generator) Spec() Spec { return g.spec }

// ArrivalRNG returns a dedicated random stream for inter-arrival draws,
// derived from the generator's seed so that packet content and arrival
// timing are independently reproducible.
func (g *Generator) ArrivalRNG() *sim.RNG { return sim.NewRNG(g.spec.Seed).Derive("arrivals") }

// Flows returns the generated flow population size.
func (g *Generator) Flows() int { return len(g.flows) }

// Next produces the next packet. The frame aliases an internal
// template; copy before mutating.
func (g *Generator) Next() (Pkt, error) {
	if len(g.flows) == 0 {
		return Pkt{}, fmt.Errorf("workload: generator has no flows")
	}
	var idx int
	if g.zipf != nil {
		idx = g.zipf.Draw()
	} else {
		idx = g.rng.Intn(len(g.flows))
	}
	fs := g.flows[idx]
	size := g.spec.Sizes.Next(g.rng)
	key := templateKey{flow: idx, size: size}
	frame, ok := g.templates[key]
	if !ok {
		var err error
		frame, err = buildFrame(fs.ft, size)
		if err != nil {
			return Pkt{}, err
		}
		g.templates[key] = frame
	}
	g.Generated++
	return Pkt{Flow: fs.ft, Frame: frame, Attack: fs.attack}, nil
}

// NextCopy is Next but returns a private copy of the frame, safe to
// mutate (needed by NAT/LB deployments).
func (g *Generator) NextCopy() (Pkt, error) {
	p, err := g.Next()
	if err != nil {
		return Pkt{}, err
	}
	frame := make([]byte, len(p.Frame))
	copy(frame, p.Frame)
	p.Frame = frame
	return p, nil
}

var genOpts = packet.BuildOpts{
	SrcMAC: packet.MAC{0x02, 0xfa, 0x1b, 0, 0, 1},
	DstMAC: packet.MAC{0x02, 0xfa, 0x1b, 0, 0, 2},
}

// buildFrame constructs a frame of exactly size bytes for the flow.
func buildFrame(ft packet.FiveTuple, size int) ([]byte, error) {
	var overhead int
	switch ft.Proto {
	case packet.ProtoUDP:
		overhead = packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.UDPHeaderLen
	case packet.ProtoTCP:
		overhead = packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.TCPMinHeaderLen
	default:
		return nil, fmt.Errorf("workload: unsupported proto %d", ft.Proto)
	}
	payLen := size - overhead
	if payLen < 0 {
		payLen = 0
	}
	//fairlint:allow hotalloc template payload is built once per flow signature, then cached
	payload := make([]byte, payLen)
	for i := range payload {
		payload[i] = byte('a' + i%26) // benign filler, no DPI signatures
	}
	if ft.Proto == packet.ProtoUDP {
		return packet.BuildUDP4(genOpts, ft, payload)
	}
	return packet.BuildTCP4(genOpts, ft, packet.FlagACK, 1, 1, payload)
}

// Arrival is an inter-arrival process over simulated time.
type Arrival interface {
	// NextGap returns seconds until the next arrival at rate pps.
	NextGap(rng *sim.RNG, pps float64) float64
	// Name labels the process.
	Name() string
}

// CBR is constant bit/packet rate: deterministic inter-arrival gaps,
// the RFC 2544 offered-load model.
type CBR struct{}

// NextGap implements Arrival.
func (CBR) NextGap(_ *sim.RNG, pps float64) float64 { return 1 / pps }

// Name implements Arrival.
func (CBR) Name() string { return "cbr" }

// Poisson draws exponential gaps — bursty arrivals for latency studies.
type Poisson struct{}

// NextGap implements Arrival.
func (Poisson) NextGap(rng *sim.RNG, pps float64) float64 { return rng.Exp(pps) }

// Name implements Arrival.
func (Poisson) Name() string { return "poisson" }
