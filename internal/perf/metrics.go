package perf

import (
	"fmt"
	"time"
)

// Jain computes Jain's fairness index over per-entity allocations
// (Jain, Chiu, Hawe 1984 — the paper's reference [13] for a
// non-scalable metric):
//
//	JFI = (Σx)² / (n · Σx²)
//
// The result lies in [1/n, 1]; 1 means perfectly fair. An empty or
// all-zero allocation returns 0 (undefined fairness) rather than NaN.
func Jain(alloc []float64) float64 {
	if len(alloc) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range alloc {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(alloc)) * sumSq)
}

// Throughput summarises data transferred over an interval as both a bit
// rate and a packet rate. It is the unit-bearing result of a measurement
// window (see internal/measure for live meters).
type Throughput struct {
	Bits    uint64
	Packets uint64
	Elapsed time.Duration
}

// BitsPerSecond returns the measured bit rate, or 0 for an empty window.
func (t Throughput) BitsPerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bits) / t.Elapsed.Seconds()
}

// PacketsPerSecond returns the measured packet rate, or 0 for an empty
// window.
func (t Throughput) PacketsPerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Packets) / t.Elapsed.Seconds()
}

// GbPerSecond returns the bit rate in Gb/s.
func (t Throughput) GbPerSecond() float64 { return t.BitsPerSecond() / 1e9 }

// Add combines two measurement windows covering the same elapsed
// interval (e.g. per-core meters on one system). It returns an error if
// the windows disagree on duration by more than 1%, which would make the
// summed rate meaningless.
func (t Throughput) Add(o Throughput) (Throughput, error) {
	if t.Elapsed == 0 {
		return o, nil
	}
	if o.Elapsed == 0 {
		return t, nil
	}
	ratio := float64(t.Elapsed) / float64(o.Elapsed)
	if ratio < 0.99 || ratio > 1.01 {
		return Throughput{}, fmt.Errorf("perf: cannot add throughput over mismatched windows (%v vs %v)", t.Elapsed, o.Elapsed)
	}
	return Throughput{
		Bits:    t.Bits + o.Bits,
		Packets: t.Packets + o.Packets,
		Elapsed: t.Elapsed,
	}, nil
}

// String renders e.g. "9.87 Gb/s (1.2 Mpps)".
func (t Throughput) String() string {
	return fmt.Sprintf("%.3f Gb/s (%.3f Mpps)", t.GbPerSecond(), t.PacketsPerSecond()/1e6)
}

// LineRateBps returns the theoretical Ethernet line rate in payload bits
// per second for a link of linkBps raw rate carrying frames of frameBytes,
// accounting for the 20 bytes of per-frame overhead on the wire
// (preamble 7 + SFD 1 + inter-frame gap 12). This is the standard
// RFC 2544-style conversion between link speed and achievable frame
// throughput.
func LineRateBps(linkBps float64, frameBytes int) float64 {
	if frameBytes <= 0 || linkBps <= 0 {
		return 0
	}
	const wireOverhead = 20
	frames := linkBps / (float64(frameBytes+wireOverhead) * 8)
	return frames * float64(frameBytes) * 8
}

// LineRatePps returns the maximum frames per second on a link of linkBps
// raw rate with frames of frameBytes (including the 20-byte wire
// overhead). For 10 Gb/s and 64-byte frames this is the familiar
// 14.88 Mpps.
func LineRatePps(linkBps float64, frameBytes int) float64 {
	if frameBytes <= 0 || linkBps <= 0 {
		return 0
	}
	const wireOverhead = 20
	return linkBps / (float64(frameBytes+wireOverhead) * 8)
}
