package perf

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Record(float64(i%1000000) + 1)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram(0)
	for i := 0; i < 1_000_000; i++ {
		_ = h.Record(float64(i%100000) + 1)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Quantile(0.99)
	}
	_ = sink
}

func BenchmarkJain(b *testing.B) {
	alloc := make([]float64, 4096)
	for i := range alloc {
		alloc[i] = float64(i%37) + 1
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Jain(alloc)
	}
	_ = sink
}
