// Package perf provides performance-metric computation for systems
// evaluation: latency distributions with high-dynamic-range histograms,
// throughput summaries, and Jain's fairness index (JFI).
//
// The paper (§4.3) distinguishes scalable performance metrics
// (throughput) from non-scalable ones (latency, JFI); that distinction
// lives in the metric descriptors (internal/metric) and is consumed by
// the comparison engine (internal/core). This package computes the
// values themselves.
package perf

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a log-bucketed high-dynamic-range histogram of
// non-negative values (typically latencies in nanoseconds). It offers
// bounded relative error on quantiles while using constant memory,
// in the spirit of HdrHistogram.
//
// The zero value is not ready for use; call NewHistogram.
type Histogram struct {
	// growth is the bucket boundary growth factor, e.g. 1.02 for ~2%
	// relative quantile error.
	growth float64
	// logGrowth caches math.Log(growth).
	logGrowth float64
	// counts[0] counts values in [0, 1); counts[i] counts values in
	// [growth^(i-1), growth^i) for i >= 1.
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// DefaultGrowth is the bucket growth factor used by NewHistogram when
// given a non-positive growth; it bounds quantile error to about 1%.
const DefaultGrowth = 1.02

// NewHistogram returns a histogram with the given bucket growth factor
// (must be > 1; pass 0 for DefaultGrowth).
func NewHistogram(growth float64) *Histogram {
	if growth <= 1 {
		growth = DefaultGrowth
	}
	return &Histogram{
		growth:    growth,
		logGrowth: math.Log(growth),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

// bucketIndex maps a value to its bucket.
func (h *Histogram) bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	return int(math.Log(v)/h.logGrowth) + 1
}

// bucketUpper returns the exclusive upper bound of bucket i, used as the
// reported quantile value (so quantiles never under-report).
func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Pow(h.growth, float64(i))
}

// Record adds one observation. Negative, NaN and infinite values are
// rejected with an error rather than silently skewing the distribution.
func (h *Histogram) Record(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("perf: cannot record %v in histogram", v)
	}
	i := h.bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	return nil
}

// RecordDuration records a time.Duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) error {
	return h.Record(float64(d.Nanoseconds()))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded values, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) with
// relative error bounded by the growth factor. Quantile(0.5) is the
// median, Quantile(0.99) the 99th percentile. Returns 0 if the
// histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q < 0 || q > 1 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := h.bucketUpper(i)
			// Never report beyond the observed max.
			if u > h.max {
				return h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds all observations of o into h. The histograms must share a
// growth factor.
func (h *Histogram) Merge(o *Histogram) error {
	if h.growth != o.growth {
		return fmt.Errorf("perf: cannot merge histograms with growth %v and %v", h.growth, o.growth)
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	return nil
}

// Reset clears all recorded observations, retaining the growth factor.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Summary is a fixed set of distribution statistics, convenient for
// reporting latency in evaluation tables.
type Summary struct {
	Count               uint64
	Mean, Min, Max      float64
	P50, P90, P99, P999 float64
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// ExactQuantile computes the q-quantile of a sample slice exactly (by
// sorting a copy). It is the reference implementation the histogram is
// property-tested against, and is also useful for small samples.
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 || q < 0 || q > 1 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
