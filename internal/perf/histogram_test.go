package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if err := h.Record(v); err != nil {
			t.Fatalf("Record(%v): %v", v, err)
		}
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d, want 10", h.Count())
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("Mean = %v, want 5.5", got)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", h.Min(), h.Max())
	}
}

func TestHistogramRejectsBadValues(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := h.Record(v); err == nil {
			t.Errorf("Record(%v) should fail", v)
		}
	}
	if h.Count() != 0 {
		t.Errorf("rejected values must not be counted; Count = %d", h.Count())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram statistics should be 0")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Property: for any sample set, Quantile(q) is within growth-factor
	// relative error above the exact quantile, and never exceeds max.
	h := NewHistogram(1.02)
	f := func(raw []uint32, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h.Reset()
		samples := make([]float64, len(raw))
		for i, r := range raw {
			samples[i] = float64(r%1_000_000) + 0.5
			if err := h.Record(samples[i]); err != nil {
				return false
			}
		}
		q := float64(qRaw%101) / 100
		approx := h.Quantile(q)
		exact := ExactQuantile(samples, q)
		if approx > h.Max()+1e-9 {
			return false
		}
		// Upper-bound property with bounded relative error: the bucket
		// upper bound is at most growth× the exact value (+1 absolute
		// slack for the [0,1) bucket).
		return approx+1e-9 >= exact && approx <= exact*1.02+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(0)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		_ = h.Record(r.ExpFloat64() * 1000)
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: Q(%v)=%v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1.05), NewHistogram(1.05)
	for i := 1; i <= 100; i++ {
		_ = a.Record(float64(i))
	}
	for i := 101; i <= 200; i++ {
		_ = b.Record(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 200 {
		t.Errorf("merged Count = %d, want 200", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Errorf("merged Min/Max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 95 || med > 110 {
		t.Errorf("merged median = %v, want ≈100", med)
	}
}

func TestHistogramMergeMismatchedGrowth(t *testing.T) {
	a, b := NewHistogram(1.02), NewHistogram(1.05)
	if err := a.Merge(b); err == nil {
		t.Error("merging histograms with different growth should fail")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0)
	_ = h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset should clear observations")
	}
	_ = h.Record(3)
	if h.Min() != 3 || h.Max() != 3 {
		t.Errorf("post-reset Min/Max = %v/%v, want 3/3", h.Min(), h.Max())
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram(0)
	if err := h.RecordDuration(5 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if got := h.Mean(); got != 5000 {
		t.Errorf("Mean = %v ns, want 5000", got)
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 1000; i++ {
		_ = h.Record(float64(i))
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.P50 < 480 || s.P50 > 520 {
		t.Errorf("P50 = %v, want ≈500", s.P50)
	}
	if s.P99 < 975 || s.P99 > 1000 {
		t.Errorf("P99 = %v, want ≈990", s.P99)
	}
	if s.P999 < s.P99 || s.Max < s.P999 {
		t.Errorf("percentile ordering violated: p99=%v p999=%v max=%v", s.P99, s.P999, s.Max)
	}
}

func TestExactQuantile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := ExactQuantile(s, c.q); got != c.want {
			t.Errorf("ExactQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if ExactQuantile(nil, 0.5) != 0 {
		t.Error("empty sample quantile should be 0")
	}
}

func TestHistogramSubNanosecondBucket(t *testing.T) {
	h := NewHistogram(0)
	_ = h.Record(0)
	_ = h.Record(0.25)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(1); q > 1 {
		t.Errorf("all values < 1 but Quantile(1) = %v", q)
	}
}
