package perf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJainKnownValues(t *testing.T) {
	cases := []struct {
		alloc []float64
		want  float64
	}{
		{[]float64{1, 1, 1, 1}, 1},                  // perfectly fair
		{[]float64{1, 0, 0, 0}, 0.25},               // maximally unfair: 1/n
		{[]float64{4, 2}, (6.0 * 6.0) / (2 * 20.0)}, // 36/40 = 0.9
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := Jain(c.alloc); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.alloc, got, c.want)
		}
	}
}

func TestJainBoundsProperty(t *testing.T) {
	// Property (paper [13]): JFI ∈ [1/n, 1] for any non-zero allocation.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		alloc := make([]float64, len(raw))
		nonZero := false
		for i, r := range raw {
			alloc[i] = float64(r)
			if r != 0 {
				nonZero = true
			}
		}
		j := Jain(alloc)
		if !nonZero {
			return j == 0
		}
		n := float64(len(alloc))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestJainScaleInvariant(t *testing.T) {
	// Property: JFI is invariant under scaling all allocations by k > 0.
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := float64(kRaw%100) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r) + 1
			b[i] = (float64(r) + 1) * k
		}
		return math.Abs(Jain(a)-Jain(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThroughputRates(t *testing.T) {
	tp := Throughput{Bits: 10_000_000_000, Packets: 1_000_000, Elapsed: time.Second}
	if got := tp.GbPerSecond(); math.Abs(got-10) > 1e-9 {
		t.Errorf("GbPerSecond = %v, want 10", got)
	}
	if got := tp.PacketsPerSecond(); math.Abs(got-1e6) > 1e-9 {
		t.Errorf("PacketsPerSecond = %v, want 1e6", got)
	}
	var empty Throughput
	if empty.BitsPerSecond() != 0 || empty.PacketsPerSecond() != 0 {
		t.Error("empty window rates should be 0")
	}
}

func TestThroughputAdd(t *testing.T) {
	a := Throughput{Bits: 100, Packets: 10, Elapsed: time.Second}
	b := Throughput{Bits: 200, Packets: 20, Elapsed: time.Second}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.Bits != 300 || sum.Packets != 30 {
		t.Errorf("sum = %+v", sum)
	}

	// Mismatched windows must fail.
	c := Throughput{Bits: 1, Packets: 1, Elapsed: 2 * time.Second}
	if _, err := a.Add(c); err == nil {
		t.Error("adding mismatched windows should fail")
	}

	// Zero windows pass through.
	if got, err := a.Add(Throughput{}); err != nil || got != a {
		t.Errorf("a + zero = %+v, %v", got, err)
	}
	if got, err := (Throughput{}).Add(b); err != nil || got != b {
		t.Errorf("zero + b = %+v, %v", got, err)
	}
}

func TestThroughputString(t *testing.T) {
	tp := Throughput{Bits: 9_870_000_000, Packets: 1_200_000, Elapsed: time.Second}
	s := tp.String()
	if !strings.Contains(s, "9.870 Gb/s") || !strings.Contains(s, "1.200 Mpps") {
		t.Errorf("String = %q", s)
	}
}

func TestLineRate64ByteFrames(t *testing.T) {
	// Classic figure: 10 GbE with 64-byte frames carries 14.88 Mpps.
	pps := LineRatePps(10e9, 64)
	if math.Abs(pps-14_880_952.38) > 1 {
		t.Errorf("LineRatePps(10G, 64) = %v, want ≈14.88M", pps)
	}
	bps := LineRateBps(10e9, 64)
	want := pps * 64 * 8
	if math.Abs(bps-want) > 1 {
		t.Errorf("LineRateBps = %v, want %v", bps, want)
	}
}

func TestLineRateLargeFramesApproachLink(t *testing.T) {
	bps := LineRateBps(10e9, 1518)
	if bps < 9.8e9 || bps >= 10e9 {
		t.Errorf("1518B payload rate = %v, want just under 10e9", bps)
	}
}

func TestLineRateDegenerate(t *testing.T) {
	if LineRateBps(0, 64) != 0 || LineRateBps(10e9, 0) != 0 || LineRatePps(-1, 64) != 0 {
		t.Error("degenerate line rates should be 0")
	}
}
