package rfc2544

import (
	"testing"

	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

func baselineDUT(cores int) DUTFactory {
	return func() (*testbed.Deployment, error) { return testbed.BaselineFirewall(cores) }
}

func e6gen() GenFactory {
	return func() (*workload.Generator, error) { return testbed.E6Workload(1) }
}

// fastOpts keeps simulated trial time small for unit tests.
var fastOpts = Opts{
	MinPps:       0.2e6,
	MaxPps:       12e6,
	TrialSeconds: 0.01,
}

func TestThroughputSearchFindsCoreCapacity(t *testing.T) {
	res, err := Throughput(baselineDUT(1), e6gen(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// One scenario core sustains ≈3.2 Mpps of the E6 mix.
	if res.Pps < 2.5e6 || res.Pps > 4.2e6 {
		t.Errorf("zero-loss throughput = %v pps, want ≈3.2M", res.Pps)
	}
	if res.Gbps < 6 || res.Gbps > 13 {
		t.Errorf("throughput = %v Gb/s, want ≈10", res.Gbps)
	}
	if len(res.Trials) < 4 {
		t.Errorf("binary search should take several trials, got %d", len(res.Trials))
	}
	// The passing trial itself must meet the threshold.
	if res.Passing.LossFraction > 0.001 {
		t.Errorf("reported throughput has loss %v", res.Passing.LossFraction)
	}
}

func TestThroughputScalesWithCores(t *testing.T) {
	one, err := Throughput(baselineDUT(1), e6gen(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Throughput(baselineDUT(2), e6gen(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := two.Pps / one.Pps
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2-core/1-core throughput ratio = %.2f, want ≈2 (Figure 1b's premise)", ratio)
	}
}

func TestThroughputCeilingSustained(t *testing.T) {
	// With a tiny ceiling the DUT passes at MaxPps and the search
	// reports the ceiling.
	opts := fastOpts
	opts.MaxPps = 1e6
	res, err := Throughput(baselineDUT(1), e6gen(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pps != 1e6 {
		t.Errorf("ceiling throughput = %v, want 1e6", res.Pps)
	}
}

func TestThroughputFloorOverloaded(t *testing.T) {
	// With a floor far above capacity, even MinPps fails → zero.
	opts := fastOpts
	opts.MinPps = 30e6
	opts.MaxPps = 40e6
	res, err := Throughput(baselineDUT(1), e6gen(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pps != 0 {
		t.Errorf("overloaded floor should yield 0, got %v", res.Pps)
	}
}

func TestThroughputValidatesBounds(t *testing.T) {
	if _, err := Throughput(baselineDUT(1), e6gen(), Opts{MinPps: 10, MaxPps: 5, TrialSeconds: 0.001}); err == nil {
		t.Error("inverted bounds should fail")
	}
}

func TestLatencyAtLoadsMonotone(t *testing.T) {
	pts, err := LatencyAtLoads(baselineDUT(1), e6gen(), 3e6, []float64{0.1, 0.5, 0.9}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Queueing: p99 latency grows with load.
	if !(pts[0].P99Us <= pts[1].P99Us && pts[1].P99Us <= pts[2].P99Us) {
		t.Errorf("p99 not monotone with load: %v / %v / %v", pts[0].P99Us, pts[1].P99Us, pts[2].P99Us)
	}
	if pts[0].MeanUs <= 0 {
		t.Error("latency should be positive")
	}
}

func TestLatencyAtLoadsValidation(t *testing.T) {
	if _, err := LatencyAtLoads(baselineDUT(1), e6gen(), 0, []float64{0.5}, fastOpts); err == nil {
		t.Error("zero throughput should fail")
	}
	if _, err := LatencyAtLoads(baselineDUT(1), e6gen(), 1e6, []float64{-1}, fastOpts); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestFrameLossCurveMonotoneAfterKnee(t *testing.T) {
	rates := []float64{1e6, 3e6, 6e6, 9e6}
	pts, err := FrameLossCurve(baselineDUT(1), e6gen(), rates, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].LossFraction > 0.001 {
		t.Errorf("below-capacity loss = %v", pts[0].LossFraction)
	}
	if pts[3].LossFraction < 0.5 {
		t.Errorf("3x-capacity loss = %v, want heavy", pts[3].LossFraction)
	}
	if pts[2].LossFraction > pts[3].LossFraction {
		t.Error("loss should not decrease with offered load beyond the knee")
	}
}

func TestFrameLossCurveValidation(t *testing.T) {
	if _, err := FrameLossCurve(baselineDUT(1), e6gen(), []float64{0}, fastOpts); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestBackToBack(t *testing.T) {
	// At 4x core capacity, the queue (512 descriptors) bounds burst
	// tolerance.
	burst, err := BackToBack(baselineDUT(1), e6gen(), 12e6, 4096, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if burst <= 0 || burst >= 4096 {
		t.Errorf("burst tolerance = %d, want inside (0, 4096)", burst)
	}
	// A deeper search ceiling at sustainable rate returns the ceiling.
	burst2, err := BackToBack(baselineDUT(1), e6gen(), 1e6, 512, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if burst2 != 512 {
		t.Errorf("sustainable-rate burst = %d, want ceiling 512", burst2)
	}
}

func TestBackToBackValidation(t *testing.T) {
	if _, err := BackToBack(baselineDUT(1), e6gen(), 0, 100, fastOpts); err == nil {
		t.Error("zero pps should fail")
	}
	if _, err := BackToBack(baselineDUT(1), e6gen(), 1e6, 0, fastOpts); err == nil {
		t.Error("zero burst should fail")
	}
}
