// Package rfc2544 implements the benchmarking methodology of RFC 2544
// (Bradner & McQuaid), the community-standard procedure the paper cites
// (§1, reference [2]) as the established way to measure the
// *performance* side of an evaluation: zero-loss throughput via binary
// search over offered load, latency at fractions of that throughput,
// frame-loss-rate curves, and back-to-back burst tolerance.
//
// Each trial builds a fresh device-under-test so state (queues, flow
// tables) never leaks between offered loads, mirroring the RFC's
// requirement that trials be independent.
package rfc2544

import (
	"fmt"

	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// DUTFactory builds a fresh device under test for one trial.
type DUTFactory func() (*testbed.Deployment, error)

// GenFactory builds a fresh (identically seeded) traffic generator for
// one trial.
type GenFactory func() (*workload.Generator, error)

// Opts parameterises a throughput search.
type Opts struct {
	// MinPps and MaxPps bound the binary search (defaults 0.1M, 50M).
	MinPps, MaxPps float64
	// LossThreshold is the maximum acceptable loss fraction for a trial
	// to pass; RFC 2544 throughput is strictly zero-loss, but a small
	// epsilon (default 0.1%) keeps discrete-event edge effects from
	// dominating.
	LossThreshold float64
	// TrialSeconds is the simulated duration per trial (default 20 ms;
	// the RFC's 60 s is unnecessary for a deterministic simulator).
	TrialSeconds float64
	// ResolutionFraction stops the search when the bracket is within
	// this relative width (default 2%).
	ResolutionFraction float64
	// Arrival is the offered-load process (default CBR, per the RFC).
	Arrival workload.Arrival
}

func (o Opts) withDefaults() Opts {
	if o.MinPps == 0 {
		o.MinPps = 0.1e6
	}
	if o.MaxPps == 0 {
		o.MaxPps = 50e6
	}
	if o.LossThreshold == 0 {
		o.LossThreshold = 0.001
	}
	if o.TrialSeconds == 0 {
		o.TrialSeconds = 0.02
	}
	if o.ResolutionFraction == 0 {
		o.ResolutionFraction = 0.02
	}
	if o.Arrival == nil {
		o.Arrival = workload.CBR{}
	}
	return o
}

// Trial is one offered-load measurement.
type Trial struct {
	OfferedPps float64
	Loss       float64
	Pass       bool
	Result     testbed.Result
}

// ThroughputResult is the outcome of a throughput search.
type ThroughputResult struct {
	// Pps is the highest offered rate whose loss stayed within
	// threshold.
	Pps float64
	// Gbps is Pps converted using the measured processed bit rate of
	// the passing trial (so it reflects the actual frame mix).
	Gbps float64
	// Passing is the measurement at the reported throughput.
	Passing testbed.Result
	// Trials records the search trajectory.
	Trials []Trial
}

// runTrial executes one independent trial.
func runTrial(dut DUTFactory, gen GenFactory, arrival workload.Arrival, pps, seconds float64) (Trial, error) {
	d, err := dut()
	if err != nil {
		return Trial{}, fmt.Errorf("rfc2544: building DUT: %w", err)
	}
	g, err := gen()
	if err != nil {
		return Trial{}, fmt.Errorf("rfc2544: building generator: %w", err)
	}
	res, err := d.Run(g, arrival, pps, seconds)
	if err != nil {
		return Trial{}, err
	}
	return Trial{OfferedPps: pps, Loss: res.LossFraction, Result: res}, nil
}

// Throughput performs the RFC 2544 §26.1 binary search for the highest
// offered rate with (near-)zero loss.
func Throughput(dut DUTFactory, gen GenFactory, opts Opts) (ThroughputResult, error) {
	opts = opts.withDefaults()
	if opts.MinPps <= 0 || opts.MaxPps <= opts.MinPps {
		return ThroughputResult{}, fmt.Errorf("rfc2544: invalid search bounds [%v, %v]", opts.MinPps, opts.MaxPps)
	}
	var out ThroughputResult

	record := func(t Trial) bool {
		t.Pass = t.Loss <= opts.LossThreshold
		out.Trials = append(out.Trials, t)
		if t.Pass && t.OfferedPps > out.Pps {
			out.Pps = t.OfferedPps
			out.Passing = t.Result
		}
		return t.Pass
	}

	// Establish brackets.
	lo, err := runTrial(dut, gen, opts.Arrival, opts.MinPps, opts.TrialSeconds)
	if err != nil {
		return out, err
	}
	if !record(lo) {
		// Even the minimum rate overloads: report zero throughput.
		return out, nil
	}
	hi, err := runTrial(dut, gen, opts.Arrival, opts.MaxPps, opts.TrialSeconds)
	if err != nil {
		return out, err
	}
	if record(hi) {
		// The DUT sustains the search ceiling.
		out.Gbps = out.Passing.Processed.GbPerSecond()
		return out, nil
	}

	loPps, hiPps := opts.MinPps, opts.MaxPps
	for hiPps-loPps > opts.ResolutionFraction*hiPps {
		mid := (loPps + hiPps) / 2
		t, err := runTrial(dut, gen, opts.Arrival, mid, opts.TrialSeconds)
		if err != nil {
			return out, err
		}
		if record(t) {
			loPps = mid
		} else {
			hiPps = mid
		}
	}
	out.Gbps = out.Passing.Processed.GbPerSecond()
	return out, nil
}

// LatencyPoint is the latency measured at a fraction of throughput.
type LatencyPoint struct {
	LoadFraction float64
	OfferedPps   float64
	MeanUs       float64
	P50Us        float64
	P99Us        float64
}

// LatencyAtLoads measures latency at the given fractions of a
// previously determined throughput (RFC 2544 §26.2 measures at the
// throughput rate; fractions generalise to load-latency curves).
func LatencyAtLoads(dut DUTFactory, gen GenFactory, throughputPps float64, fractions []float64, opts Opts) ([]LatencyPoint, error) {
	opts = opts.withDefaults()
	if throughputPps <= 0 {
		return nil, fmt.Errorf("rfc2544: non-positive throughput %v", throughputPps)
	}
	var out []LatencyPoint
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("rfc2544: non-positive load fraction %v", f)
		}
		t, err := runTrial(dut, gen, opts.Arrival, throughputPps*f, opts.TrialSeconds)
		if err != nil {
			return nil, err
		}
		out = append(out, LatencyPoint{
			LoadFraction: f,
			OfferedPps:   t.OfferedPps,
			MeanUs:       t.Result.LatencyMeanUs,
			P50Us:        t.Result.LatencyP50Us,
			P99Us:        t.Result.LatencyP99Us,
		})
	}
	return out, nil
}

// LossPoint is one point of a frame-loss-rate curve.
type LossPoint struct {
	OfferedPps   float64
	LossFraction float64
}

// FrameLossCurve measures loss at each offered rate (RFC 2544 §26.3).
func FrameLossCurve(dut DUTFactory, gen GenFactory, rates []float64, opts Opts) ([]LossPoint, error) {
	opts = opts.withDefaults()
	var out []LossPoint
	for _, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("rfc2544: non-positive rate %v", r)
		}
		t, err := runTrial(dut, gen, opts.Arrival, r, opts.TrialSeconds)
		if err != nil {
			return nil, err
		}
		out = append(out, LossPoint{OfferedPps: r, LossFraction: t.Loss})
	}
	return out, nil
}

// BackToBack finds the longest burst at burstPps the DUT absorbs
// without loss (RFC 2544 §26.4), searching over burst sizes up to
// maxBurst packets.
func BackToBack(dut DUTFactory, gen GenFactory, burstPps float64, maxBurst int, opts Opts) (int, error) {
	opts = opts.withDefaults()
	if burstPps <= 0 || maxBurst <= 0 {
		return 0, fmt.Errorf("rfc2544: invalid burst params pps=%v max=%d", burstPps, maxBurst)
	}
	lossless := func(burst int) (bool, error) {
		seconds := float64(burst) / burstPps
		t, err := runTrial(dut, gen, workload.CBR{}, burstPps, seconds)
		if err != nil {
			return false, err
		}
		return t.Loss == 0, nil
	}
	lo, hi := 0, maxBurst
	ok, err := lossless(maxBurst)
	if err != nil {
		return 0, err
	}
	if ok {
		return maxBurst, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := lossless(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
