package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fairbench/internal/report"
)

// The reporter turns a telemetry stream back into answers to the
// questions the paper says evaluations must be able to answer about
// themselves: where did the wall-clock time go (slowest cells,
// critical path), what did fault tolerance cost (retry hotspots,
// quarantines), and how well was the hardware used (pool
// utilization). The same stream renders as a per-worker Gantt chart
// so a sweep's schedule is inspectable at a glance.

// SummaryName and GanttName are the artifact filenames rendered next
// to the stream. Both carry the telemetry- prefix IsTelemetryFile
// excludes from byte-identity comparisons.
const (
	SummaryName = "telemetry-summary.txt"
	GanttName   = "telemetry-gantt.svg"
)

// RunLog is a parsed telemetry stream.
type RunLog struct {
	Header Header
	Events []Event
}

// Parse reads a stream. A torn final line (the process died
// mid-append) is dropped without error, like the runner's journal.
func Parse(r io.Reader) (*RunLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	log := &RunLog{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if err := json.Unmarshal([]byte(line), &log.Header); err != nil || log.Header.Telemetry != Format {
				return nil, fmt.Errorf("%w (header %.40q)", ErrFormat, line)
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Ev == "" {
			break // torn or corrupt: drop this line and everything after
		}
		log.Events = append(log.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: parse: %w", err)
	}
	if first {
		return nil, fmt.Errorf("%w (empty stream)", ErrFormat)
	}
	return log, nil
}

// ParseFile parses the stream at path.
func ParseFile(path string) (*RunLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open %s: %w", path, err)
	}
	defer f.Close()
	return Parse(f)
}

// CellSummary aggregates one cell's events.
type CellSummary struct {
	Cell      string
	Worker    int
	Status    string
	Attempts  int
	WallMS    float64
	BackoffMS float64
	Errors    []string // one per failed attempt: "panic", "timeout", "error"
}

// Summary is the whole-run rollup.
type Summary struct {
	Label string
	Jobs  int
	// Cells indexes every cell that appears in the stream, sorted by
	// name.
	Cells []CellSummary
	// Terminal-state counts; ResumeSkips and Cutoffs count cells that
	// never ran this run.
	OK, Failed, Quarantined, ResumeSkips, Cutoffs int
	Retries                                       int
	PoolShrinks                                   int
	// WallMS is the stream duration (first event to last).
	WallMS float64
	// BusyMS totals cell wall time across workers; UtilizationPct is
	// BusyMS / (Jobs × WallMS).
	BusyMS         float64
	UtilizationPct float64
	// CriticalPathMS is the longest single cell — no schedule at any
	// worker count can finish faster. IdealWallMS is the perfect-
	// packing bound BusyMS / Jobs; actual wall beyond max(critical,
	// ideal) is scheduling slack or non-cell overhead.
	CriticalPathMS float64
	IdealWallMS    float64
	// Peak runtime figures across samples.
	PeakGoroutines int
	PeakHeapBytes  uint64
	GCPauseMS      float64
	Samples        int
}

// Summarize rolls a parsed stream up.
func Summarize(log *RunLog) Summary {
	s := Summary{Label: log.Header.Label, Jobs: log.Header.Jobs}
	if s.Jobs < 1 {
		s.Jobs = 1
	}
	cells := map[string]*CellSummary{}
	cell := func(name string) *CellSummary {
		c := cells[name]
		if c == nil {
			c = &CellSummary{Cell: name, Worker: -1}
			cells[name] = c
		}
		return c
	}
	var firstT, lastT float64
	for i, ev := range log.Events {
		if i == 0 || ev.TMS < firstT {
			firstT = ev.TMS
		}
		if ev.TMS > lastT {
			lastT = ev.TMS
		}
		switch ev.Ev {
		case EvCellStart:
			c := cell(ev.Cell)
			c.Worker = ev.Worker
			if ev.Attempt > 0 {
				s.Retries++
			}
		case EvCellError:
			cell(ev.Cell).Errors = append(cell(ev.Cell).Errors, ev.Kind)
		case EvRetryWait:
			cell(ev.Cell).BackoffMS += ev.WaitMS
		case EvCellFinish:
			c := cell(ev.Cell)
			c.Status = ev.Status
			c.Attempts = ev.Attempts
			c.WallMS = ev.WallMS
			c.Worker = ev.Worker
			switch ev.Status {
			case "ok":
				s.OK++
			case "failed":
				s.Failed++
			case "quarantined":
				s.Quarantined++
			}
			s.BusyMS += ev.WallMS
		case EvResumeSkip:
			cell(ev.Cell).Status = "resume-skip"
			s.ResumeSkips++
		case EvCutoff:
			cell(ev.Cell).Status = "cutoff"
			s.Cutoffs++
		case EvPoolShrink:
			s.PoolShrinks++
		case EvSample:
			s.Samples++
			if ev.Goroutines > s.PeakGoroutines {
				s.PeakGoroutines = ev.Goroutines
			}
			if ev.HeapBytes > s.PeakHeapBytes {
				s.PeakHeapBytes = ev.HeapBytes
			}
			if ev.GCPauseMS > s.GCPauseMS {
				s.GCPauseMS = ev.GCPauseMS
			}
		}
	}
	s.WallMS = lastT - firstT
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := *cells[name]
		if c.WallMS > s.CriticalPathMS {
			s.CriticalPathMS = c.WallMS
		}
		s.Cells = append(s.Cells, c)
	}
	s.IdealWallMS = s.BusyMS / float64(s.Jobs)
	if s.WallMS > 0 {
		s.UtilizationPct = 100 * s.BusyMS / (float64(s.Jobs) * s.WallMS)
	}
	return s
}

// Slowest returns up to n cells by descending wall duration (name
// tie-break).
func (s Summary) Slowest(n int) []CellSummary {
	out := append([]CellSummary(nil), s.Cells...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallMS > out[j].WallMS })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// RetryHotspots returns the cells that needed more than one attempt,
// most attempts first (name tie-break).
func (s Summary) RetryHotspots() []CellSummary {
	var out []CellSummary
	for _, c := range s.Cells {
		if c.Attempts > 1 {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Attempts > out[j].Attempts })
	return out
}

// Text renders the operator-facing run summary.
func (s Summary) Text() string {
	var b strings.Builder
	label := s.Label
	if label == "" {
		label = "run"
	}
	fmt.Fprintf(&b, "telemetry: %s — %d cells at %d workers in %.0f ms wall\n",
		label, len(s.Cells), s.Jobs, s.WallMS)
	fmt.Fprintf(&b, "outcomes: %d ok, %d failed, %d quarantined, %d resume-skipped, %d cut off; %d retries",
		s.OK, s.Failed, s.Quarantined, s.ResumeSkips, s.Cutoffs, s.Retries)
	if s.PoolShrinks > 0 {
		fmt.Fprintf(&b, "; pool shrank %d time(s)", s.PoolShrinks)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "pool utilization: %.0f%% (busy %.0f ms across %d workers over %.0f ms)\n",
		s.UtilizationPct, s.BusyMS, s.Jobs, s.WallMS)
	fmt.Fprintf(&b, "lower bounds: critical path %.0f ms (longest cell), ideal packing %.0f ms (busy/workers)\n",
		s.CriticalPathMS, s.IdealWallMS)
	if slow := s.Slowest(5); len(slow) > 0 && slow[0].WallMS > 0 {
		b.WriteString("slowest cells:\n")
		for _, c := range slow {
			if c.WallMS <= 0 {
				break
			}
			fmt.Fprintf(&b, "  %-32s %8.1f ms  (%d attempt(s), %s)\n", c.Cell, c.WallMS, c.Attempts, c.Status)
		}
	}
	if hot := s.RetryHotspots(); len(hot) > 0 {
		b.WriteString("retry hotspots:\n")
		for _, c := range hot {
			fmt.Fprintf(&b, "  %-32s %d attempts (%s), %.0f ms in backoff\n",
				c.Cell, c.Attempts, strings.Join(c.Errors, ","), c.BackoffMS)
		}
	}
	if s.Samples > 0 {
		fmt.Fprintf(&b, "runtime peaks over %d samples: %d goroutines, %.1f MiB heap, %.1f ms cumulative GC pause\n",
			s.Samples, s.PeakGoroutines, float64(s.PeakHeapBytes)/(1<<20), s.GCPauseMS)
	}
	return b.String()
}

// Gantt renders the stream as a per-worker cell-execution chart: one
// lane per pool worker, one segment per attempt, colored by outcome
// (ok / failed / quarantined / retried attempt / backoff wait). It is
// the wall-clock sibling of internal/report's virtual-time timeline.
func Gantt(log *RunLog) string {
	type open struct {
		t       float64
		attempt int
	}
	lanes := map[int][]report.TimelineSpan{}
	pending := map[string]open{}
	finalAttempts := map[string]int{}
	for _, ev := range log.Events {
		if ev.Ev == EvCellFinish {
			finalAttempts[ev.Cell] = ev.Attempts
		}
	}
	addSpan := func(worker int, sp report.TimelineSpan) {
		lanes[worker] = append(lanes[worker], sp)
	}
	for _, ev := range log.Events {
		switch ev.Ev {
		case EvCellStart:
			pending[ev.Cell] = open{t: ev.TMS, attempt: ev.Attempt}
		case EvCellError:
			// An attempt that was retried afterwards draws as "retry";
			// the terminal attempt is drawn at cell-finish with the
			// cell's final status instead.
			if o, ok := pending[ev.Cell]; ok && ev.Attempt < finalAttempts[ev.Cell]-1 {
				addSpan(ev.Worker, report.TimelineSpan{
					Start: o.t, End: ev.TMS, Class: "retry",
				})
				delete(pending, ev.Cell)
			}
		case EvRetryWait:
			if ev.WaitMS > 0 {
				addSpan(ev.Worker, report.TimelineSpan{
					Start: ev.TMS, End: ev.TMS + ev.WaitMS, Class: "backoff",
				})
			}
		case EvCellFinish:
			o, ok := pending[ev.Cell]
			if !ok {
				o = open{t: ev.TMS - ev.WallMS}
			}
			delete(pending, ev.Cell)
			class := ev.Status
			if class == "" {
				class = "ok"
			}
			addSpan(ev.Worker, report.TimelineSpan{
				Start: o.t, End: ev.TMS, Class: class, Label: ev.Cell,
			})
		}
	}
	workers := make([]int, 0, len(lanes))
	for w := range lanes {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	tl := report.Timeline{
		Title:  "Cell execution by pool worker (wall clock)",
		XLabel: "wall-clock ms since run start",
	}
	for _, w := range workers {
		name := fmt.Sprintf("worker %d", w)
		if w < 0 {
			name = "(no worker)"
		}
		spans := lanes[w]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		tl.Lanes = append(tl.Lanes, report.TimelineLane{Name: name, Spans: spans})
	}
	return tl.SVG()
}

// WriteArtifacts renders the summary and Gantt next to the stream at
// jsonlPath, returning the parsed summary for the caller's own
// reporting. Artifact names carry the telemetry- prefix, so
// byte-identity comparisons exclude them along with the stream.
func WriteArtifacts(jsonlPath string) (Summary, error) {
	log, err := ParseFile(jsonlPath)
	if err != nil {
		return Summary{}, err
	}
	s := Summarize(log)
	dir := strings.TrimSuffix(jsonlPath, FileName)
	if dir == jsonlPath { // stream under a non-canonical name: render beside it
		dir = jsonlPath + "-"
	}
	if err := os.WriteFile(dir+SummaryName, []byte(s.Text()), 0o644); err != nil {
		return s, fmt.Errorf("telemetry: summary: %w", err)
	}
	if err := os.WriteFile(dir+GanttName, []byte(Gantt(log)), 0o644); err != nil {
		return s, fmt.Errorf("telemetry: gantt: %w", err)
	}
	return s, nil
}
