// Package telemetry is the wall-clock observability layer for
// everything outside the deterministic simulation boundary. Where
// internal/obs traces virtual time inside the sim — byte-identical
// per seed, part of the artifact surface — telemetry records what the
// harness itself did in real time: when each runner cell started and
// finished, how long retries backed off, where the worker pool sat
// idle, how the heap and goroutine count moved while a sweep ran.
//
// The two layers never mix. Telemetry output (telemetry.jsonl and the
// summary/Gantt artifacts rendered from it) is machine- and
// run-dependent by nature, so it is excluded from byte-identity
// guarantees exactly like the runner's journal, and telemetry must
// never feed back into execution: attaching a Recorder cannot change
// a single artifact byte. fairlint's wallclock rule allowlists this
// package (alongside internal/runner) and continues to flag wall
// clock reads everywhere else.
//
// A Recorder writes an append-only JSONL stream: a self-identifying
// header, one event per runner state transition (via the
// runner.Observer adapter), periodic runtime samples (goroutines,
// heap, GC pause totals, pool occupancy, counter rates), and a
// closing run-end event. The reporter in this package turns the
// stream back into a run summary and a cell-execution Gantt chart.
package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FileName is the canonical telemetry stream filename inside a run's
// output directory.
const FileName = "telemetry.jsonl"

// Format tags the header line so a telemetry file is self-identifying.
const Format = "fairbench-telemetry/v1"

// ErrFormat is returned when a parsed file is not a telemetry stream.
var ErrFormat = errors.New("telemetry: not a telemetry stream")

// IsTelemetryFile reports whether an output-directory entry belongs to
// the telemetry layer (the JSONL stream and the summary/Gantt
// artifacts rendered from it). Byte-identity comparisons exclude these
// names the same way they exclude the runner's journal: both record
// wall-clock execution history, not deterministic output.
func IsTelemetryFile(name string) bool {
	return name == FileName || strings.HasPrefix(name, "telemetry-")
}

// Header is the first line of a telemetry stream.
type Header struct {
	Telemetry   string `json:"telemetry"`
	Label       string `json:"label,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Start       string `json:"start"` // RFC 3339, wall clock
	Jobs        int    `json:"jobs,omitempty"`
	Cells       int    `json:"cells,omitempty"`
}

// Event kinds appearing in the stream. Cell-scoped events carry the
// cell name; worker is -1 when no pool worker is involved.
const (
	EvCellStart  = "cell-start"  // a worker begins an attempt
	EvCellError  = "cell-error"  // an attempt failed (kind: panic/timeout/error)
	EvRetryWait  = "retry-wait"  // backoff sleep before the next attempt
	EvCellFinish = "cell-finish" // terminal state (status, attempts, wall_ms)
	EvResumeSkip = "resume-skip" // resume found the cell complete
	EvCutoff     = "cutoff"      // run deadline left the cell unstarted
	EvPoolShrink = "pool-shrink" // repeated panics retired a worker
	EvSample     = "sample"      // periodic runtime/pool sample
	EvRunEnd     = "run-end"     // stream closed cleanly
)

// Event is one line of the stream after the header. Unused fields are
// omitted; TMS is milliseconds since the header's start time.
type Event struct {
	Ev      string  `json:"ev"`
	TMS     float64 `json:"t_ms"`
	Cell    string  `json:"cell,omitempty"`
	Worker  int     `json:"worker,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	// Kind classifies cell-error events: "panic", "timeout" or "error".
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
	// WaitMS is the backoff duration of a retry-wait event.
	WaitMS float64 `json:"wait_ms,omitempty"`
	// Terminal cell state (cell-finish events).
	Status    string  `json:"status,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	Artifacts int     `json:"artifacts,omitempty"`
	// Workers is the pool width after a pool-shrink event.
	Workers int `json:"workers,omitempty"`
	// Sample payload (sample events).
	Goroutines int                `json:"goroutines,omitempty"`
	HeapBytes  uint64             `json:"heap_bytes,omitempty"`
	GCPauseMS  float64            `json:"gc_pause_ms,omitempty"`
	NumGC      uint32             `json:"num_gc,omitempty"`
	Busy       int                `json:"workers_busy,omitempty"`
	CellsDone  int                `json:"cells_done,omitempty"`
	Counters   map[string]int64   `json:"counters,omitempty"`
	Rates      map[string]float64 `json:"rates,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// Clock supplies timestamps (nil = the wall clock). Tests inject a
	// FakeClock so nothing sleeps.
	Clock Clock
	// Label names the run in the header (e.g. "fairfigs sweep").
	Label string
	// Fingerprint ties the stream to the option set of the run it
	// observed (the runner's resume fingerprint).
	Fingerprint string
	// Jobs and Cells size the run for the header and the reporter's
	// utilization math.
	Jobs, Cells int
}

// Recorder writes a telemetry stream. All methods are safe for
// concurrent use by pool workers; write errors are sticky and
// surfaced by Close, so instrumentation call sites stay unconditional.
type Recorder struct {
	clock Clock
	start time.Time
	jobs  int

	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	err    error

	// Pool occupancy and progress, readable by the sampler.
	busy      atomic.Int64
	cellsDone atomic.Int64

	countersMu sync.Mutex
	counters   map[string]*Counter
	lastSample struct {
		t      time.Time
		valid  bool
		counts map[string]int64
	}
}

// New writes the stream to w (which the Recorder does not close).
func New(w io.Writer, o Options) *Recorder {
	if o.Clock == nil {
		o.Clock = Wall
	}
	r := &Recorder{
		clock:    o.Clock,
		start:    o.Clock.Now(),
		jobs:     o.Jobs,
		w:        w,
		counters: map[string]*Counter{},
	}
	r.emit(Header{
		Telemetry:   Format,
		Label:       o.Label,
		Fingerprint: o.Fingerprint,
		Start:       r.start.UTC().Format(time.RFC3339Nano),
		Jobs:        o.Jobs,
		Cells:       o.Cells,
	})
	return r
}

// Create opens path for appending a fresh stream (truncating any
// previous one) and returns a Recorder that closes it on Close.
func Create(path string, o Options) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: create %s: %w", path, err)
	}
	r := New(f, o)
	r.closer = f
	return r, nil
}

// now returns milliseconds since the stream started.
func (r *Recorder) now() float64 {
	return float64(r.clock.Now().Sub(r.start)) / float64(time.Millisecond)
}

// emit marshals one line under the lock. The first write error sticks;
// later emits become no-ops so a full disk degrades telemetry, never
// the run.
func (r *Recorder) emit(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if _, err := r.w.Write(data); err != nil {
		r.err = fmt.Errorf("telemetry: write: %w", err)
	}
}

// Event appends an arbitrary event, stamping TMS.
func (r *Recorder) Event(ev Event) {
	ev.TMS = r.now()
	r.emit(ev)
}

// Span opens a named wall-clock span (recorded as a cell-start with no
// worker) and returns a closure that ends it: status "ok" on a nil
// error, "failed" otherwise. It is the single-run shape of the runner
// cell events, used by commands that do one thing (fairsim) rather
// than a sweep.
func (r *Recorder) Span(name string) func(error) {
	start := r.clock.Now()
	r.Event(Event{Ev: EvCellStart, Cell: name, Worker: -1})
	return func(err error) {
		ev := Event{
			Ev:       EvCellFinish,
			Cell:     name,
			Worker:   -1,
			Status:   "ok",
			Attempts: 1,
			WallMS:   float64(r.clock.Now().Sub(start)) / float64(time.Millisecond),
		}
		if err != nil {
			ev.Status = "failed"
			ev.Error = err.Error()
		}
		r.Event(ev)
	}
}

// Close emits the run-end event, flushes, closes the underlying file
// (when the Recorder opened it) and reports the first write error.
func (r *Recorder) Close() error {
	r.Event(Event{Ev: EvRunEnd, CellsDone: int(r.cellsDone.Load())})
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closer != nil {
		if cerr := r.closer.Close(); cerr != nil && r.err == nil {
			r.err = fmt.Errorf("telemetry: close: %w", cerr)
		}
		r.closer = nil
	}
	return r.err
}

// Counter is a named atomic counter whose value and rate the sampler
// publishes. Cells bump counters for whatever throughput they want
// tracked (sim events, packets); the zero counter-set costs nothing.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Recorder) Counter(name string) *Counter {
	r.countersMu.Lock()
	defer r.countersMu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}
