package telemetry

import (
	"sync"
	"time"
)

// Clock abstracts the wall clock so telemetry unit tests can drive
// time deterministically instead of sleeping. Production code uses
// Wall; tests use a FakeClock advanced by hand.
type Clock interface {
	Now() time.Time
}

// Wall is the real wall clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for tests. The zero value is
// unusable; construct with NewFakeClock.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake time forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
