package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// CPUProfileName and HeapProfileName are the files CaptureProfiles
// writes into its directory.
const (
	CPUProfileName  = "cpu.pprof"
	HeapProfileName = "heap.pprof"
)

// CaptureProfiles brackets a run with pprof capture: it starts a CPU
// profile in dir immediately and returns a stop function that ends the
// CPU profile and writes a heap profile (after a GC, so the heap
// figure is live bytes, not garbage). Profiles are diagnostic
// artifacts like the telemetry stream — machine-dependent, never part
// of the byte-identity surface.
func CaptureProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: pprof dir: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, CPUProfileName))
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		cerr := cpu.Close()
		heap, err := os.Create(filepath.Join(dir, HeapProfileName))
		if err != nil {
			return fmt.Errorf("telemetry: heap profile: %w", err)
		}
		defer heap.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("telemetry: heap profile: %w", err)
		}
		if cerr != nil {
			return fmt.Errorf("telemetry: cpu profile: %w", cerr)
		}
		return nil
	}, nil
}
