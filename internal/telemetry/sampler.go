package telemetry

import (
	"runtime"
	"runtime/metrics"
	"sort"
	"time"
)

// The sampler records what the harness costs while it runs: goroutine
// count, heap in use, cumulative GC pause, worker-pool occupancy, and
// the value and rate of every registered counter. Samples are events
// in the same stream as the cell transitions, so the reporter can
// line "the pool was 40% idle here" up against "these three cells
// were retrying".

// Sample takes one sample now and appends it to the stream. The
// background loop started by StartSampler calls this on every tick;
// tests call it directly so nothing sleeps.
func (r *Recorder) Sample() {
	goroutines, heap, pauseMS, numGC := runtimeSample()
	ev := Event{
		Ev:         EvSample,
		Goroutines: goroutines,
		HeapBytes:  heap,
		GCPauseMS:  pauseMS,
		NumGC:      numGC,
		Busy:       int(r.busy.Load()),
		CellsDone:  int(r.cellsDone.Load()),
	}

	r.countersMu.Lock()
	if len(r.counters) > 0 {
		now := r.clock.Now()
		names := make([]string, 0, len(r.counters))
		for name := range r.counters {
			names = append(names, name)
		}
		sort.Strings(names)
		counts := make(map[string]int64, len(names))
		for _, name := range names {
			counts[name] = r.counters[name].Value()
		}
		ev.Counters = counts
		if r.lastSample.valid {
			if dt := now.Sub(r.lastSample.t).Seconds(); dt > 0 {
				rates := make(map[string]float64, len(names))
				for _, name := range names {
					rates[name] = float64(counts[name]-r.lastSample.counts[name]) / dt
				}
				ev.Rates = rates
			}
		}
		r.lastSample.t = now
		r.lastSample.valid = true
		r.lastSample.counts = counts
	}
	r.countersMu.Unlock()

	r.Event(ev)
}

// StartSampler samples every period on a background goroutine until
// the returned stop function is called; stop takes one final sample so
// short runs still get at least one. Periods <= 0 default to 100ms.
func (r *Recorder) StartSampler(period time.Duration) (stop func()) {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				r.Sample()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		r.Sample()
	}
}

// runtimeSample reads the process-level figures. Goroutine count and
// heap-in-use come from runtime/metrics (the sampling-friendly API);
// cumulative GC pause falls back to MemStats, which is the only stable
// home of the pause total.
func runtimeSample() (goroutines int, heap uint64, pauseMS float64, numGC uint32) {
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		goroutines = int(samples[0].Value.Uint64())
	} else {
		goroutines = runtime.NumGoroutine()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if samples[1].Value.Kind() == metrics.KindUint64 {
		heap = samples[1].Value.Uint64()
	} else {
		heap = ms.HeapInuse
	}
	return goroutines, heap, float64(ms.PauseTotalNs) / 1e6, ms.NumGC
}
