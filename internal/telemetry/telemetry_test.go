package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func TestRecorderStreamRoundTrip(t *testing.T) {
	clk := NewFakeClock(t0)
	var buf bytes.Buffer
	r := New(&buf, Options{Clock: clk, Label: "unit", Fingerprint: "fp1", Jobs: 4, Cells: 2})

	clk.Advance(10 * time.Millisecond)
	r.Event(Event{Ev: EvCellStart, Cell: "a", Worker: 1})
	clk.Advance(5 * time.Millisecond)
	r.Event(Event{Ev: EvCellFinish, Cell: "a", Worker: 1, Status: "ok", Attempts: 1, WallMS: 5})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := log.Header
	if h.Telemetry != Format || h.Label != "unit" || h.Fingerprint != "fp1" || h.Jobs != 4 || h.Cells != 2 {
		t.Errorf("header = %+v", h)
	}
	if h.Start != t0.Format(time.RFC3339Nano) {
		t.Errorf("start = %q, want fake-clock time", h.Start)
	}
	if len(log.Events) != 3 { // start, finish, run-end
		t.Fatalf("events = %d, want 3: %+v", len(log.Events), log.Events)
	}
	if log.Events[0].TMS != 10 || log.Events[1].TMS != 15 {
		t.Errorf("timestamps = %v, %v; want 10, 15 (fake-clock ms)", log.Events[0].TMS, log.Events[1].TMS)
	}
	if log.Events[2].Ev != EvRunEnd {
		t.Errorf("final event = %q, want run-end", log.Events[2].Ev)
	}
}

func TestSpan(t *testing.T) {
	clk := NewFakeClock(t0)
	var buf bytes.Buffer
	r := New(&buf, Options{Clock: clk, Label: "span"})
	done := r.Span("one-run")
	clk.Advance(42 * time.Millisecond)
	done(nil)
	doneErr := r.Span("other-run")
	clk.Advance(time.Millisecond)
	doneErr(errors.New("boom"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var finishes []Event
	for _, ev := range log.Events {
		if ev.Ev == EvCellFinish {
			finishes = append(finishes, ev)
		}
	}
	if len(finishes) != 2 {
		t.Fatalf("finishes = %+v", finishes)
	}
	if finishes[0].Cell != "one-run" || finishes[0].Status != "ok" || finishes[0].WallMS != 42 {
		t.Errorf("ok span = %+v", finishes[0])
	}
	if finishes[1].Status != "failed" || finishes[1].Error != "boom" {
		t.Errorf("failed span = %+v", finishes[1])
	}
}

func TestSampleRecordsRuntimeAndCounterRates(t *testing.T) {
	clk := NewFakeClock(t0)
	var buf bytes.Buffer
	r := New(&buf, Options{Clock: clk, Jobs: 2})
	c := r.Counter("events")
	c.Add(100)
	r.Sample()
	clk.Advance(2 * time.Second)
	c.Add(300)
	r.Sample()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Event
	for _, ev := range log.Events {
		if ev.Ev == EvSample {
			samples = append(samples, ev)
		}
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	if samples[0].Goroutines <= 0 || samples[0].HeapBytes == 0 {
		t.Errorf("first sample missing runtime figures: %+v", samples[0])
	}
	if samples[0].Counters["events"] != 100 || samples[1].Counters["events"] != 400 {
		t.Errorf("counter values = %v, %v", samples[0].Counters, samples[1].Counters)
	}
	if len(samples[0].Rates) != 0 {
		t.Errorf("first sample has no predecessor, rates = %v", samples[0].Rates)
	}
	// 300 events over the 2 fake seconds between samples.
	if got := samples[1].Rates["events"]; got != 150 {
		t.Errorf("rate = %v events/s, want 150", got)
	}
}

func TestCounterIsStable(t *testing.T) {
	r := New(&bytes.Buffer{}, Options{Clock: NewFakeClock(t0)})
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Error("same name must return the same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Errorf("value = %d", b.Value())
	}
}

func TestParseRejectsNonTelemetry(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"journal":"other"}` + "\n")); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
	if _, err := Parse(strings.NewReader("")); !errors.Is(err, ErrFormat) {
		t.Errorf("empty stream: err = %v, want ErrFormat", err)
	}
}

func TestParseDropsTornTail(t *testing.T) {
	clk := NewFakeClock(t0)
	var buf bytes.Buffer
	r := New(&buf, Options{Clock: clk})
	r.Event(Event{Ev: EvCellStart, Cell: "a"})
	r.Event(Event{Ev: EvCellFinish, Cell: "a", Status: "ok"})
	full := buf.String()
	torn := full[:len(full)-7] + "\n" // corrupt the final line, keep it newline-terminated
	log, err := Parse(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 1 || log.Events[0].Ev != EvCellStart {
		t.Errorf("events after torn tail = %+v", log.Events)
	}
}

func TestStickyWriteError(t *testing.T) {
	clk := NewFakeClock(t0)
	w := &failAfter{n: 1}
	r := New(w, Options{Clock: clk})
	r.Event(Event{Ev: EvCellStart, Cell: "a"}) // fails
	r.Event(Event{Ev: EvCellStart, Cell: "b"}) // no-op after the sticky error
	if err := r.Close(); err == nil {
		t.Error("Close must surface the first write error")
	}
	if w.writes != 2 { // header + first failing event, nothing after
		t.Errorf("writes = %d, want 2", w.writes)
	}
}

type failAfter struct {
	n, writes int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.n {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestIsTelemetryFile(t *testing.T) {
	for name, want := range map[string]bool{
		FileName:        true,
		SummaryName:     true,
		GanttName:       true,
		"journal.jsonl": false,
		"figure1.svg":   false,
		"manifest.json": false,
	} {
		if got := IsTelemetryFile(name); got != want {
			t.Errorf("IsTelemetryFile(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestEventJSONOmitsUnusedFields(t *testing.T) {
	data, err := json.Marshal(Event{Ev: EvCellStart, TMS: 1, Cell: "a", Worker: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"heap_bytes", "status", "rates", "wait_ms"} {
		if strings.Contains(string(data), absent) {
			t.Errorf("cell-start JSON carries %q: %s", absent, data)
		}
	}
}
