package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fairbench/internal/runner"
	"fairbench/internal/runner/chaos"
)

// The acceptance test for the observability layer: a chaos-injected
// parallel sweep must produce a telemetry stream that accounts for
// every cell — no lost or duplicate cell IDs, retries and quarantines
// visible — while the deterministic output surface (manifest and
// artifacts) stays byte-identical to an unobserved run.

func chaosCells(n int) []runner.Experiment {
	cells := make([]runner.Experiment, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cell-%02d", i)
		cells[i] = runner.Experiment{
			Name: name,
			Run: func(attempt int) ([]runner.Artifact, error) {
				return []runner.Artifact{{Name: name + ".txt", Body: []byte(name + " content\n")}}, nil
			},
		}
	}
	return cells
}

func runChaosSweep(t *testing.T, outDir string, jobs int, spec chaos.Spec, rec *Recorder) runner.Result {
	t.Helper()
	inj := chaos.New(spec)
	opts := runner.Options{
		OutDir:      outDir,
		Jobs:        jobs,
		Retries:     2,
		ShouldRetry: chaos.Retryable,
		Fingerprint: "telemetry-chaos-v1",
	}
	if spec.TornWriteProb > 0 || spec.ENOSPCProb > 0 {
		opts.WriteArtifact = inj.ArtifactWriter()
	}
	if rec != nil {
		opts.Observer = rec.RunnerObserver()
	}
	res, err := runner.Run(inj.WrapCells(chaosCells(24)), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChaosSweepTelemetryAccountsForEveryCell(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	rec, err := Create(path, Options{Label: "chaos sweep", Fingerprint: "telemetry-chaos-v1", Jobs: 4, Cells: 24})
	if err != nil {
		t.Fatal(err)
	}
	stopSampler := rec.StartSampler(5 * time.Millisecond)
	res := runChaosSweep(t, dir, 4, chaos.Spec{Seed: 7, PanicProb: 0.3, TornWriteProb: 0.2}, rec)
	stopSampler()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every cell appears exactly once in a terminal state, and every
	// started cell reaches one — no lost, no duplicated IDs.
	terminal := map[string]int{}
	started := map[string]bool{}
	for _, ev := range log.Events {
		switch ev.Ev {
		case EvCellStart:
			started[ev.Cell] = true
		case EvCellFinish, EvResumeSkip, EvCutoff:
			terminal[ev.Cell]++
		}
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("cell-%02d", i)
		if terminal[name] != 1 {
			t.Errorf("cell %s has %d terminal events, want exactly 1", name, terminal[name])
		}
		if !started[name] {
			t.Errorf("cell %s never started", name)
		}
	}
	if len(terminal) != 24 {
		t.Errorf("terminal events for %d distinct cells, want 24", len(terminal))
	}

	// The chaos schedule at this seed injects retryable faults; the
	// stream must show them as retries (attempt > 0 starts preceded by
	// cell-error events) and agree with the runner's own accounting.
	s := Summarize(log)
	if s.Retries == 0 {
		t.Error("chaos schedule produced no visible retries — raise PanicProb or the stream is lossy")
	}
	if s.OK != 24-res.Failed-res.Quarantined || s.Failed != res.Failed || s.Quarantined != res.Quarantined {
		t.Errorf("stream outcomes (ok %d failed %d quarantined %d) disagree with runner result (%d/%d/%d)",
			s.OK, s.Failed, s.Quarantined, 24-res.Failed-res.Quarantined, res.Failed, res.Quarantined)
	}
	errored := 0
	for _, ev := range log.Events {
		if ev.Ev == EvCellError {
			errored++
			if ev.Kind != "panic" && ev.Kind != "error" {
				t.Errorf("unexpected error kind %q: %+v", ev.Kind, ev)
			}
		}
	}
	if errored == 0 {
		t.Error("no cell-error events despite injected faults")
	}
	if s.Samples == 0 {
		t.Error("sampler produced no samples")
	}
	for _, ev := range log.Events {
		if ev.Ev == EvSample && ev.Goroutines <= 0 {
			t.Errorf("sample without goroutine count: %+v", ev)
		}
	}

	// Wall durations land in the journal, never in the manifest.
	_, recs, found, err := runner.LoadJournal(filepath.Join(dir, runner.JournalName))
	if err != nil || !found {
		t.Fatalf("journal: %v found=%v", err, found)
	}
	withWall := 0
	for _, r := range recs {
		if r.WallMS > 0 {
			withWall++
		}
	}
	if withWall == 0 {
		t.Error("journal records carry no wall durations")
	}
	manifestBytes, err := os.ReadFile(filepath.Join(dir, runner.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(manifestBytes, []byte("wall_ms")) {
		t.Error("manifest carries wall_ms — wall time leaked into the determinism surface")
	}

	// The summary and Gantt render from the chaotic stream.
	sum, err := WriteArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK == 0 {
		t.Errorf("rendered summary: %+v", sum)
	}
	if _, err := os.Stat(filepath.Join(dir, GanttName)); err != nil {
		t.Errorf("gantt artifact: %v", err)
	}
}

// TestTelemetryNeverChangesOutputBytes pins the determinism contract:
// the artifact directory (journal and telemetry files excluded) is
// byte-identical with telemetry attached vs detached and at jobs=1 vs
// jobs=8, under the same chaos schedule.
func TestTelemetryNeverChangesOutputBytes(t *testing.T) {
	// Execution faults only: panic decisions are keyed by (cell,
	// attempt), so both directories see the identical chaos schedule.
	// (IO-fault decisions are keyed by absolute artifact path and would
	// legitimately diverge across temp dirs.)
	spec := chaos.Spec{Seed: 11, PanicProb: 0.3}
	baseline := t.TempDir()
	runChaosSweep(t, baseline, 1, spec, nil)

	observed := t.TempDir()
	rec, err := Create(filepath.Join(observed, FileName), Options{Jobs: 8, Cells: 24})
	if err != nil {
		t.Fatal(err)
	}
	runChaosSweep(t, observed, 8, spec, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteArtifacts(filepath.Join(observed, FileName)); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == runner.JournalName || IsTelemetryFile(e.Name()) {
			continue
		}
		want, err := os.ReadFile(filepath.Join(baseline, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(observed, e.Name()))
		if err != nil {
			t.Errorf("%s missing from observed run: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs between unobserved jobs=1 and observed jobs=8 runs", e.Name())
		}
	}
	// And the observed run produced the telemetry files next to the
	// untouched artifacts.
	for _, name := range []string{FileName, SummaryName, GanttName} {
		if _, err := os.Stat(filepath.Join(observed, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
