package telemetry

import (
	"errors"
	"time"

	"fairbench/internal/runner"
)

// RunnerObserver adapts the Recorder to the runner's instrumentation
// seam: every pool state transition becomes one stream event, and the
// recorder's occupancy gauges (busy workers, cells done) track the
// pool for the sampler. Attach with runner.Options.Observer.
func (r *Recorder) RunnerObserver() runner.Observer {
	return runnerObserver{r}
}

type runnerObserver struct {
	r *Recorder
}

func (o runnerObserver) CellStart(cell string, worker, attempt int) {
	if attempt == 0 {
		o.r.busy.Add(1)
	}
	o.r.Event(Event{Ev: EvCellStart, Cell: cell, Worker: worker, Attempt: attempt})
}

func (o runnerObserver) CellAttemptError(cell string, worker, attempt int, err error) {
	o.r.Event(Event{
		Ev:      EvCellError,
		Cell:    cell,
		Worker:  worker,
		Attempt: attempt,
		Kind:    errorKind(err),
		Error:   errString(err),
	})
}

func (o runnerObserver) CellRetryWait(cell string, worker, attempt int, wait time.Duration) {
	o.r.Event(Event{
		Ev:      EvRetryWait,
		Cell:    cell,
		Worker:  worker,
		Attempt: attempt,
		WaitMS:  float64(wait) / float64(time.Millisecond),
	})
}

func (o runnerObserver) CellFinish(cell string, worker int, rec runner.Record) {
	o.r.busy.Add(-1)
	o.r.cellsDone.Add(1)
	o.r.Event(Event{
		Ev:        EvCellFinish,
		Cell:      cell,
		Worker:    worker,
		Status:    string(rec.Status),
		Attempts:  rec.Attempts,
		WallMS:    rec.WallMS,
		Artifacts: len(rec.Artifacts),
		Error:     firstLine(rec.Error),
	})
}

func (o runnerObserver) CellResumeSkip(cell string) {
	o.r.Event(Event{Ev: EvResumeSkip, Cell: cell, Worker: -1})
}

func (o runnerObserver) CellCutoff(cell string) {
	o.r.Event(Event{Ev: EvCutoff, Cell: cell, Worker: -1})
}

func (o runnerObserver) PoolShrink(remaining int) {
	o.r.Event(Event{Ev: EvPoolShrink, Worker: -1, Workers: remaining})
}

// errorKind classifies an attempt error for the stream: panics and
// per-cell deadline overruns are first-class shapes the reporter
// aggregates; everything else is a plain error.
func errorKind(err error) string {
	switch {
	case errors.Is(err, runner.ErrPanic):
		return "panic"
	case errors.Is(err, runner.ErrDeadline):
		return "timeout"
	default:
		return "error"
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return firstLine(err.Error())
}

// firstLine truncates multi-line errors (panic stacks) to their first
// line: the stream is an index into what happened, not a crash dump.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
