package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildStream writes a synthetic two-worker run with the FakeClock:
// cell a (ok, 30ms, worker 0), cell b (ok after one retried panic,
// worker 1), cell c (quarantined, worker 0), one resume skip, one
// sample. Everything below derives from this fixture.
func buildStream(t *testing.T) *bytes.Buffer {
	t.Helper()
	clk := NewFakeClock(t0)
	var buf bytes.Buffer
	r := New(&buf, Options{Clock: clk, Label: "fixture", Jobs: 2, Cells: 4})
	r.Event(Event{Ev: EvResumeSkip, Cell: "skipped", Worker: -1})

	r.Event(Event{Ev: EvCellStart, Cell: "a", Worker: 0, Attempt: 0})
	r.Event(Event{Ev: EvCellStart, Cell: "b", Worker: 1, Attempt: 0})
	clk.Advance(10 * time.Millisecond)
	r.Event(Event{Ev: EvCellError, Cell: "b", Worker: 1, Attempt: 0, Kind: "panic", Error: "injected"})
	r.Event(Event{Ev: EvRetryWait, Cell: "b", Worker: 1, Attempt: 0, WaitMS: 5})
	clk.Advance(5 * time.Millisecond)
	r.Event(Event{Ev: EvCellStart, Cell: "b", Worker: 1, Attempt: 1})
	clk.Advance(15 * time.Millisecond)
	r.Event(Event{Ev: EvCellFinish, Cell: "a", Worker: 0, Status: "ok", Attempts: 1, WallMS: 30, Artifacts: 2})
	r.Event(Event{Ev: EvCellFinish, Cell: "b", Worker: 1, Status: "ok", Attempts: 2, WallMS: 30, Artifacts: 1})
	r.Event(Event{Ev: EvCellStart, Cell: "c", Worker: 0, Attempt: 0})
	clk.Advance(10 * time.Millisecond)
	r.Event(Event{Ev: EvCellError, Cell: "c", Worker: 0, Attempt: 0, Kind: "error", Error: "bad"})
	r.Event(Event{Ev: EvCellFinish, Cell: "c", Worker: 0, Status: "quarantined", Attempts: 1, WallMS: 10, Error: "bad"})
	r.Sample()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestSummarize(t *testing.T) {
	log, err := Parse(buildStream(t))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(log)
	if s.OK != 2 || s.Quarantined != 1 || s.Failed != 0 || s.ResumeSkips != 1 {
		t.Errorf("outcomes: %+v", s)
	}
	if s.Retries != 1 {
		t.Errorf("retries = %d, want 1", s.Retries)
	}
	if len(s.Cells) != 4 {
		t.Errorf("cells = %d, want 4 (a, b, c, skipped)", len(s.Cells))
	}
	if s.WallMS != 40 {
		t.Errorf("wall = %v, want 40 (fixture span)", s.WallMS)
	}
	if s.BusyMS != 70 { // 30 + 30 + 10
		t.Errorf("busy = %v, want 70", s.BusyMS)
	}
	if s.CriticalPathMS != 30 || s.IdealWallMS != 35 {
		t.Errorf("bounds: critical %v ideal %v", s.CriticalPathMS, s.IdealWallMS)
	}
	// 70 busy / (2 workers × 40 wall) = 87.5%
	if s.UtilizationPct != 87.5 {
		t.Errorf("utilization = %v, want 87.5", s.UtilizationPct)
	}
	if s.Samples != 1 || s.PeakGoroutines <= 0 {
		t.Errorf("samples: %d, peak goroutines %d", s.Samples, s.PeakGoroutines)
	}

	slow := s.Slowest(2)
	if len(slow) != 2 || slow[0].WallMS != 30 {
		t.Errorf("slowest = %+v", slow)
	}
	hot := s.RetryHotspots()
	if len(hot) != 1 || hot[0].Cell != "b" || hot[0].Attempts != 2 || hot[0].BackoffMS != 5 {
		t.Errorf("hotspots = %+v", hot)
	}

	text := s.Text()
	for _, frag := range []string{"fixture", "2 ok", "1 quarantined", "1 resume-skipped",
		"pool utilization: 88%", "critical path 30 ms", "retry hotspots", "b", "goroutines"} {
		if !strings.Contains(text, frag) {
			t.Errorf("summary text missing %q:\n%s", frag, text)
		}
	}
}

func TestGantt(t *testing.T) {
	log, err := Parse(buildStream(t))
	if err != nil {
		t.Fatal(err)
	}
	svg := Gantt(log)
	for _, frag := range []string{"<svg", "worker 0", "worker 1", "wall-clock ms"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("gantt missing %q", frag)
		}
	}
	// The retried attempt of b and its backoff wait must be visible as
	// their own classes, alongside the terminal statuses.
	for _, class := range []string{"retry", "backoff", "ok", "quarantined"} {
		if !strings.Contains(svg, ">"+class+"<") {
			t.Errorf("gantt legend missing class %q", class)
		}
	}
	if svg != Gantt(log) {
		t.Error("gantt render is not deterministic for a fixed stream")
	}
}

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, buildStream(t).Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := WriteArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.OK != 2 {
		t.Errorf("summary: %+v", s)
	}
	sum, err := os.ReadFile(filepath.Join(dir, SummaryName))
	if err != nil || !strings.Contains(string(sum), "pool utilization") {
		t.Errorf("summary artifact: %v\n%s", err, sum)
	}
	gantt, err := os.ReadFile(filepath.Join(dir, GanttName))
	if err != nil || !strings.Contains(string(gantt), "<svg") {
		t.Errorf("gantt artifact: %v", err)
	}
	for _, name := range []string{FileName, SummaryName, GanttName} {
		if !IsTelemetryFile(name) {
			t.Errorf("artifact %q escapes the byte-identity exclusion", name)
		}
	}
}
