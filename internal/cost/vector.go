// Package cost implements the cost side of fair heterogeneous-systems
// evaluation: per-component cost vectors, end-to-end composition with
// coverage checking (paper Principle 3), and releasable pricing models
// that turn context-dependent TCO into something other researchers can
// recompute for their own context (paper §3.1).
package cost

import (
	"errors"
	"fmt"
	"sort"

	"fairbench/internal/metric"
)

// ErrNotCovered is returned when a cost metric cannot be measured for a
// component of a system under evaluation — the end-to-end coverage
// failure of paper §3.3 (e.g. asking for FPGA LUTs on a CPU-only
// system, or forgetting the FPGA when counting cores).
var ErrNotCovered = errors.New("cost: metric does not cover component")

// Vector maps metric names to measured quantities for one component
// (a CPU, a SmartNIC, a switch, ...). A nil Vector is an empty vector.
type Vector map[string]metric.Quantity

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, q := range v {
		out[k] = q
	}
	return out
}

// Get returns the quantity for a metric name.
func (v Vector) Get(name string) (metric.Quantity, bool) {
	q, ok := v[name]
	return q, ok
}

// Set records a quantity for a metric name, replacing any previous one.
func (v Vector) Set(name string, q metric.Quantity) { v[name] = q }

// Metrics returns the metric names present, sorted.
func (v Vector) Metrics() []string {
	names := make([]string, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Add returns the metric-wise sum of two vectors over the union of their
// metrics. Missing entries are treated as absent, not zero: a metric
// present in only one operand appears in the result tagged as partial
// via the returned partial set. Callers that need end-to-end coverage
// should use Compose instead, which makes missing entries an error.
func (v Vector) Add(o Vector) (sum Vector, partial map[string]bool, err error) {
	sum = make(Vector)
	partial = make(map[string]bool)
	for k, q := range v {
		if oq, ok := o[k]; ok {
			s, aerr := q.Add(oq)
			if aerr != nil {
				return nil, nil, fmt.Errorf("cost: adding metric %q: %w", k, aerr)
			}
			sum[k] = s
		} else {
			sum[k] = q
			partial[k] = true
		}
	}
	for k, q := range o {
		if _, ok := v[k]; !ok {
			sum[k] = q
			partial[k] = true
		}
	}
	return sum, partial, nil
}

// Scale returns the vector with every quantity multiplied by k. This is
// the cost side of ideal linear scaling (paper §4.2.1).
func (v Vector) Scale(k float64) Vector {
	out := make(Vector, len(v))
	for name, q := range v {
		out[name] = q.Scale(k)
	}
	return out
}

// Component is a named part of a system together with its cost vector.
// End-to-end coverage (Principle 3) demands that "all components of the
// systems that are needed to produce the output are captured in the
// cost".
type Component struct {
	// Name identifies the component, e.g. "host-cpu", "smartnic".
	Name string
	// Costs holds the component's measured cost metrics.
	Costs Vector
}

// Compose sums metric name across all components, enforcing end-to-end
// coverage: every component must report the metric, otherwise
// ErrNotCovered is returned naming the offending component. This is the
// programmatic form of Principle 3.
func Compose(name string, components []Component) (metric.Quantity, error) {
	if len(components) == 0 {
		return metric.Quantity{}, fmt.Errorf("cost: composing %q over no components", name)
	}
	var total metric.Quantity
	for i, c := range components {
		q, ok := c.Costs[name]
		if !ok {
			return metric.Quantity{}, fmt.Errorf("%w: metric %q missing on component %q", ErrNotCovered, name, c.Name)
		}
		if i == 0 {
			total = q
			continue
		}
		sum, err := total.Add(q)
		if err != nil {
			return metric.Quantity{}, fmt.Errorf("cost: composing %q at component %q: %w", name, c.Name, err)
		}
		total = sum
	}
	return total, nil
}

// Coverage reports which of the named metrics have end-to-end coverage
// over the components: covered[name] is true exactly when every
// component reports the metric. It is the planning companion to
// Compose — use it to pick a cost metric that can actually be reported
// for all systems in an evaluation (paper §3.3).
func Coverage(names []string, components []Component) map[string]bool {
	covered := make(map[string]bool, len(names))
	for _, n := range names {
		ok := len(components) > 0
		for _, c := range components {
			if _, present := c.Costs[n]; !present {
				ok = false
				break
			}
		}
		covered[n] = ok
	}
	return covered
}

// CommonMetrics returns the metric names reported by every one of the
// given component lists (one list per system under comparison), sorted.
// These are the candidate end-to-end cost metrics for the evaluation.
func CommonMetrics(systems ...[]Component) []string {
	counts := make(map[string]int)
	for _, comps := range systems {
		cov := make(map[string]bool)
		for _, c := range comps {
			for name := range c.Costs {
				cov[name] = true
			}
		}
		// The metric must cover every component, not just appear once.
		for name := range cov {
			all := true
			for _, c := range comps {
				if _, ok := c.Costs[name]; !ok {
					all = false
					break
				}
			}
			if all {
				counts[name]++
			}
		}
	}
	var out []string
	for name, n := range counts {
		if n == len(systems) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
