package cost

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fairbench/internal/metric"
)

func wattVec(w float64) Vector {
	return Vector{metric.MetricPower: metric.Q(w, metric.Watt)}
}

func TestComposeEndToEnd(t *testing.T) {
	// A system of host CPU + SmartNIC: power composes end-to-end.
	comps := []Component{
		{Name: "host", Costs: Vector{
			metric.MetricPower: metric.Q(50, metric.Watt),
			metric.MetricCores: metric.Q(4, metric.Core),
		}},
		{Name: "smartnic", Costs: Vector{
			metric.MetricPower: metric.Q(20, metric.Watt),
			metric.MetricLUTs:  metric.Q(100, metric.KiloLUT),
		}},
	}
	total, err := Compose(metric.MetricPower, comps)
	if err != nil {
		t.Fatalf("Compose(power): %v", err)
	}
	if total.Value != 70 || total.Unit != metric.Watt {
		t.Errorf("total power = %v, want 70 W", total)
	}
}

func TestComposeDetectsCoverageHole(t *testing.T) {
	// §3.3's example: "number of CPU cores ... does not account for the
	// cost of the FPGA in one of the systems."
	comps := []Component{
		{Name: "host", Costs: Vector{metric.MetricCores: metric.Q(4, metric.Core)}},
		{Name: "fpga", Costs: Vector{metric.MetricLUTs: metric.Q(200, metric.KiloLUT)}},
	}
	_, err := Compose(metric.MetricCores, comps)
	if !errors.Is(err, ErrNotCovered) {
		t.Fatalf("Compose(cores) over host+fpga: err = %v, want ErrNotCovered", err)
	}
}

func TestComposeEmpty(t *testing.T) {
	if _, err := Compose(metric.MetricPower, nil); err == nil {
		t.Error("composing over no components should fail")
	}
}

func TestComposeIncompatibleUnits(t *testing.T) {
	comps := []Component{
		{Name: "a", Costs: Vector{"m": metric.Q(1, metric.Watt)}},
		{Name: "b", Costs: Vector{"m": metric.Q(1, metric.Core)}},
	}
	if _, err := Compose("m", comps); err == nil {
		t.Error("composing mismatched dimensions should fail")
	}
}

func TestCoverage(t *testing.T) {
	comps := []Component{
		{Name: "host", Costs: Vector{
			metric.MetricPower: metric.Q(50, metric.Watt),
			metric.MetricCores: metric.Q(4, metric.Core),
		}},
		{Name: "switch", Costs: Vector{
			metric.MetricPower: metric.Q(150, metric.Watt),
		}},
	}
	cov := Coverage([]string{metric.MetricPower, metric.MetricCores, metric.MetricLUTs}, comps)
	if !cov[metric.MetricPower] {
		t.Error("power should be covered")
	}
	if cov[metric.MetricCores] {
		t.Error("cores should not be covered (switch has none)")
	}
	if cov[metric.MetricLUTs] {
		t.Error("LUTs should not be covered")
	}
	if c := Coverage([]string{metric.MetricPower}, nil); c[metric.MetricPower] {
		t.Error("no components implies no coverage")
	}
}

func TestCommonMetrics(t *testing.T) {
	// System A: CPU-only. System B: CPU + FPGA. The only metrics usable
	// for a fair comparison are those covering both end-to-end.
	sysA := []Component{
		{Name: "host", Costs: Vector{
			metric.MetricPower: metric.Q(100, metric.Watt),
			metric.MetricCores: metric.Q(8, metric.Core),
		}},
	}
	sysB := []Component{
		{Name: "host", Costs: Vector{
			metric.MetricPower: metric.Q(60, metric.Watt),
			metric.MetricCores: metric.Q(4, metric.Core),
		}},
		{Name: "fpga", Costs: Vector{
			metric.MetricPower: metric.Q(40, metric.Watt),
			metric.MetricLUTs:  metric.Q(500, metric.KiloLUT),
		}},
	}
	got := CommonMetrics(sysA, sysB)
	want := []string{metric.MetricPower}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CommonMetrics = %v, want %v (cores fail end-to-end on B, LUTs fail on A)", got, want)
	}
}

func TestVectorAddPartial(t *testing.T) {
	a := Vector{
		metric.MetricPower: metric.Q(50, metric.Watt),
		metric.MetricCores: metric.Q(4, metric.Core),
	}
	b := Vector{
		metric.MetricPower: metric.Q(20, metric.Watt),
		metric.MetricLUTs:  metric.Q(1, metric.KiloLUT),
	}
	sum, partial, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum[metric.MetricPower].Value != 70 {
		t.Errorf("power sum = %v", sum[metric.MetricPower])
	}
	if !partial[metric.MetricCores] || !partial[metric.MetricLUTs] {
		t.Errorf("partial = %v, want cores and luts flagged", partial)
	}
	if partial[metric.MetricPower] {
		t.Error("power should not be flagged partial")
	}
}

func TestVectorScale(t *testing.T) {
	v := wattVec(100)
	s := v.Scale(2.857142857)
	if math.Abs(s[metric.MetricPower].Value-285.7142857) > 1e-6 {
		t.Errorf("scaled power = %v, want ≈285.71 (the paper's 286 W)", s[metric.MetricPower].Value)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := wattVec(10)
	c := v.Clone()
	c.Set(metric.MetricPower, metric.Q(99, metric.Watt))
	if v[metric.MetricPower].Value != 10 {
		t.Error("Clone must not alias the original")
	}
}

func TestVectorMetricsSorted(t *testing.T) {
	v := Vector{"z": metric.Q(1, metric.Watt), "a": metric.Q(2, metric.Watt)}
	got := v.Metrics()
	if !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Errorf("Metrics = %v", got)
	}
}
