package cost

import (
	"encoding/json"
	"fmt"
	"math"

	"fairbench/internal/metric"
)

// Context holds the deployment-specific parameters that make TCO
// context-dependent (paper §3.1): energy prices, rack rents, purchase
// discounts. Two organisations evaluating the *same* hardware will hold
// different Contexts and therefore compute different TCOs — which is
// exactly why raw TCO numbers do not belong in papers.
type Context struct {
	// Name labels the context, e.g. "hyperscaler-bulk" or
	// "university-lab".
	Name string `json:"name"`
	// EnergyUSDPerKWh is the electricity price.
	EnergyUSDPerKWh float64 `json:"energy_usd_per_kwh"`
	// RackUSDPerUnitYear is the yearly rent of one rack unit (power and
	// cooling excluded; those come from EnergyUSDPerKWh and PUE).
	RackUSDPerUnitYear float64 `json:"rack_usd_per_unit_year"`
	// PUE is the facility's power usage effectiveness (>= 1); total
	// facility energy is IT energy × PUE.
	PUE float64 `json:"pue"`
	// HardwareDiscount is the fractional discount off list price
	// obtained by this purchaser (0 = list price, 0.3 = 30% off bulk
	// discount).
	HardwareDiscount float64 `json:"hardware_discount"`
	// OpsUSDPerDeviceYear is the administration cost per device-year.
	OpsUSDPerDeviceYear float64 `json:"ops_usd_per_device_year"`
	// CarbonKgPerKWh is the grid's carbon intensity, used for carbon
	// estimates (itself context-dependent, §3.2).
	CarbonKgPerKWh float64 `json:"carbon_kg_per_kwh"`
}

// Validate checks the context for physically meaningful values.
func (c Context) Validate() error {
	if c.PUE < 1 {
		return fmt.Errorf("cost: context %q: PUE %v < 1", c.Name, c.PUE)
	}
	if c.EnergyUSDPerKWh < 0 || c.RackUSDPerUnitYear < 0 || c.OpsUSDPerDeviceYear < 0 {
		return fmt.Errorf("cost: context %q: negative prices", c.Name)
	}
	if c.HardwareDiscount < 0 || c.HardwareDiscount >= 1 {
		return fmt.Errorf("cost: context %q: discount %v outside [0,1)", c.Name, c.HardwareDiscount)
	}
	return nil
}

// BillOfMaterials is the context-independent description of what a
// system is made of: per-device list prices, power draws and rack
// occupancy. This — not a TCO dollar figure — is what a paper should
// release (§3.1: "release (with the paper) the pricing model used to
// compute the TCO, allowing others to compute TCO for their systems").
type BillOfMaterials struct {
	// System names the system the BOM describes.
	System string `json:"system"`
	// Items lists the devices.
	Items []BOMItem `json:"items"`
}

// BOMItem is one device in a bill of materials.
type BOMItem struct {
	Device       string  `json:"device"`
	Count        int     `json:"count"`
	ListPriceUSD float64 `json:"list_price_usd"`
	PowerWatts   float64 `json:"power_watts"`
	RackUnits    float64 `json:"rack_units"`
	DeviceCount  int     `json:"managed_devices"` // devices needing administration; default Count
}

// Validate checks the BOM for meaningful values.
func (b BillOfMaterials) Validate() error {
	if len(b.Items) == 0 {
		return fmt.Errorf("cost: BOM %q has no items", b.System)
	}
	for _, it := range b.Items {
		if it.Count <= 0 {
			return fmt.Errorf("cost: BOM %q item %q: count %d", b.System, it.Device, it.Count)
		}
		if it.ListPriceUSD < 0 || it.PowerWatts < 0 || it.RackUnits < 0 {
			return fmt.Errorf("cost: BOM %q item %q: negative values", b.System, it.Device)
		}
	}
	return nil
}

// TotalPowerWatts returns the context-independent total power of the BOM.
func (b BillOfMaterials) TotalPowerWatts() float64 {
	var w float64
	for _, it := range b.Items {
		w += float64(it.Count) * it.PowerWatts
	}
	return w
}

// TotalRackUnits returns the total rack occupancy of the BOM.
func (b BillOfMaterials) TotalRackUnits() float64 {
	var ru float64
	for _, it := range b.Items {
		ru += float64(it.Count) * it.RackUnits
	}
	return ru
}

// TotalListPriceUSD returns the undiscounted hardware price.
func (b BillOfMaterials) TotalListPriceUSD() float64 {
	var p float64
	for _, it := range b.Items {
		p += float64(it.Count) * it.ListPriceUSD
	}
	return p
}

// TCOBreakdown itemises a TCO computation so readers can audit which
// parts are context-sensitive.
type TCOBreakdown struct {
	Context     string  `json:"context"`
	System      string  `json:"system"`
	Years       float64 `json:"years"`
	HardwareUSD float64 `json:"hardware_usd"`
	EnergyUSD   float64 `json:"energy_usd"`
	RackUSD     float64 `json:"rack_usd"`
	OpsUSD      float64 `json:"ops_usd"`
	TotalUSD    float64 `json:"total_usd"`
	CarbonKg    float64 `json:"carbon_kg"`
}

// PricingModel computes TCO from a context-independent BOM and a
// context. Marshal it to JSON and publish it alongside results; other
// researchers then substitute their own Context.
type PricingModel struct {
	// Years is the amortisation horizon.
	Years float64 `json:"years"`
	// DutyCycle is the fraction of time the system draws its rated
	// power (1 = always on at full draw).
	DutyCycle float64 `json:"duty_cycle"`
}

// DefaultPricingModel is a conventional 3-year, always-on model.
var DefaultPricingModel = PricingModel{Years: 3, DutyCycle: 1}

// TCO computes the total cost of ownership of the BOM under ctx.
func (m PricingModel) TCO(b BillOfMaterials, ctx Context) (TCOBreakdown, error) {
	if err := b.Validate(); err != nil {
		return TCOBreakdown{}, err
	}
	if err := ctx.Validate(); err != nil {
		return TCOBreakdown{}, err
	}
	if m.Years <= 0 || m.DutyCycle < 0 || m.DutyCycle > 1 {
		return TCOBreakdown{}, fmt.Errorf("cost: pricing model years=%v duty=%v invalid", m.Years, m.DutyCycle)
	}
	hoursTotal := m.Years * 365 * 24 * m.DutyCycle
	kwh := b.TotalPowerWatts() / 1000 * hoursTotal * ctx.PUE

	var devices int
	for _, it := range b.Items {
		n := it.DeviceCount
		if n == 0 {
			n = it.Count
		}
		devices += n
	}

	out := TCOBreakdown{
		Context:     ctx.Name,
		System:      b.System,
		Years:       m.Years,
		HardwareUSD: b.TotalListPriceUSD() * (1 - ctx.HardwareDiscount),
		EnergyUSD:   kwh * ctx.EnergyUSDPerKWh,
		RackUSD:     b.TotalRackUnits() * ctx.RackUSDPerUnitYear * m.Years,
		OpsUSD:      float64(devices) * ctx.OpsUSDPerDeviceYear * m.Years,
		CarbonKg:    kwh * ctx.CarbonKgPerKWh,
	}
	out.TotalUSD = out.HardwareUSD + out.EnergyUSD + out.RackUSD + out.OpsUSD
	if math.IsNaN(out.TotalUSD) || math.IsInf(out.TotalUSD, 0) {
		return TCOBreakdown{}, fmt.Errorf("cost: TCO overflow for %q under %q", b.System, ctx.Name)
	}
	return out, nil
}

// ContextIndependentVector extracts the context-independent cost metrics
// of the BOM as a cost Vector (power, rack space, i.e. the quantities
// identical for any two identical deployments), ready for use in a fair
// comparison. Note hardware price is deliberately *not* included: it is
// context-dependent (Table 1).
func (b BillOfMaterials) ContextIndependentVector() Vector {
	return Vector{
		metric.MetricPower:     metric.Q(b.TotalPowerWatts(), metric.Watt),
		metric.MetricRackSpace: metric.Q(b.TotalRackUnits(), metric.RackUnit),
	}
}

// MarshalRelease serialises the pricing model and BOM into the JSON
// artifact a paper should publish: everything needed for a reader to
// recompute TCO under their own context.
func MarshalRelease(m PricingModel, boms ...BillOfMaterials) ([]byte, error) {
	type release struct {
		Model PricingModel      `json:"pricing_model"`
		BOMs  []BillOfMaterials `json:"bills_of_materials"`
	}
	return json.MarshalIndent(release{Model: m, BOMs: boms}, "", "  ")
}

// UnmarshalRelease parses an artifact produced by MarshalRelease.
func UnmarshalRelease(data []byte) (PricingModel, []BillOfMaterials, error) {
	var rel struct {
		Model PricingModel      `json:"pricing_model"`
		BOMs  []BillOfMaterials `json:"bills_of_materials"`
	}
	if err := json.Unmarshal(data, &rel); err != nil {
		return PricingModel{}, nil, fmt.Errorf("cost: parsing release: %w", err)
	}
	return rel.Model, rel.BOMs, nil
}
