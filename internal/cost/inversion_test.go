package cost

import "testing"

// Two systems designed to invert: one hardware-heavy but frugal
// (accelerator card), one cheap to buy but power- and space-hungry
// (extra commodity servers).
func inversionPair() (BillOfMaterials, BillOfMaterials) {
	accel := BillOfMaterials{
		System: "accelerated",
		Items: []BOMItem{
			{Device: "server", Count: 1, ListPriceUSD: 6000, PowerWatts: 200, RackUnits: 1},
			{Device: "accelerator", Count: 1, ListPriceUSD: 11000, PowerWatts: 60, RackUnits: 0},
		},
	}
	scaleOut := BillOfMaterials{
		System: "scale-out",
		Items: []BOMItem{
			{Device: "server", Count: 4, ListPriceUSD: 1800, PowerWatts: 350, RackUnits: 2},
		},
	}
	return accel, scaleOut
}

func TestSweepContextsInverts(t *testing.T) {
	accel, scaleOut := inversionPair()
	res, err := SweepContexts(DefaultPricingModel, accel, scaleOut, ContextGrid())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inverted {
		t.Fatalf("sweep should demonstrate rank inversion: firstWins=%d otherWins=%d",
			res.FirstWins, res.OtherWins)
	}
	if res.FirstWins+res.OtherWins != len(res.Points) {
		t.Error("win counts must partition the sweep")
	}
	// Sanity: in the cheapest-energy/cheapest-rack context the
	// scale-out option should be competitive; in the priciest context
	// the accelerator (less power, less space) should win.
	var cheapCtx, priceyCtx *RankPoint
	for i := range res.Points {
		switch res.Points[i].Context.Name {
		case "e0.05-r150-p1.1-d35%":
			cheapCtx = &res.Points[i]
		case "e0.30-r2000-p1.6-d0%":
			priceyCtx = &res.Points[i]
		}
	}
	if cheapCtx == nil || priceyCtx == nil {
		t.Fatal("expected grid contexts missing")
	}
	if cheapCtx.FirstCheaper {
		t.Errorf("cheap context: accelerated (%v) should lose to scale-out (%v)",
			cheapCtx.TCOFirst, cheapCtx.TCOOther)
	}
	if !priceyCtx.FirstCheaper {
		t.Errorf("pricey context: accelerated (%v) should beat scale-out (%v)",
			priceyCtx.TCOFirst, priceyCtx.TCOOther)
	}
}

func TestSweepContextsValidation(t *testing.T) {
	a, b := inversionPair()
	if _, err := SweepContexts(DefaultPricingModel, a, b, nil); err == nil {
		t.Error("empty context list should fail")
	}
	bad := []Context{{Name: "bad", PUE: 0.2}}
	if _, err := SweepContexts(DefaultPricingModel, a, b, bad); err == nil {
		t.Error("invalid context should fail")
	}
}

func TestContextGridShape(t *testing.T) {
	grid := ContextGrid()
	if len(grid) != 3*3*2*2 {
		t.Fatalf("grid size = %d", len(grid))
	}
	seen := map[string]bool{}
	for _, c := range grid {
		if err := c.Validate(); err != nil {
			t.Errorf("grid context %q invalid: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate context name %q", c.Name)
		}
		seen[c.Name] = true
	}
}
