package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairbench/internal/metric"
)

// Property-based tests on composition: end-to-end cost aggregation must
// behave like a commutative monoid over components, or Principle 3
// arithmetic would depend on presentation order.

func randComponents(r *rand.Rand, n int) []Component {
	out := make([]Component, n)
	for i := range out {
		out[i] = Component{
			Name: string(rune('a' + i)),
			Costs: Vector{
				metric.MetricPower: metric.Q(float64(r.Intn(500))+1, metric.Watt),
			},
		}
	}
	return out
}

func TestComposeOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		comps := randComponents(r, n)
		a, err := Compose(metric.MetricPower, comps)
		if err != nil {
			return false
		}
		// Shuffle and recompose.
		shuffled := append([]Component(nil), comps...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := Compose(metric.MetricPower, shuffled)
		if err != nil {
			return false
		}
		return math.Abs(a.Canonical()-b.Canonical()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComposeEqualsManualSum(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		comps := randComponents(r, n)
		total, err := Compose(metric.MetricPower, comps)
		if err != nil {
			return false
		}
		var manual float64
		for _, c := range comps {
			manual += c.Costs[metric.MetricPower].Canonical()
		}
		return math.Abs(total.Canonical()-manual) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaleComposeCommute(t *testing.T) {
	// Scaling every component by k then composing equals composing
	// then scaling — the identity that makes ideal scaling of
	// multi-component systems well-defined.
	r := rand.New(rand.NewSource(71))
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%5) + 1
		k := float64(kRaw%40)/10 + 0.1
		comps := randComponents(r, n)

		scaledComps := make([]Component, n)
		for i, c := range comps {
			scaledComps[i] = Component{Name: c.Name, Costs: c.Costs.Scale(k)}
		}
		a, err1 := Compose(metric.MetricPower, scaledComps)
		whole, err2 := Compose(metric.MetricPower, comps)
		if err1 != nil || err2 != nil {
			return false
		}
		b := whole.Scale(k)
		return math.Abs(a.Canonical()-b.Canonical()) < 1e-6*math.Max(1, b.Canonical())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTCOMonotoneInPrices(t *testing.T) {
	// Raising any context price never lowers TCO.
	bom := testBOM()
	base := Context{Name: "b", EnergyUSDPerKWh: 0.1, RackUSDPerUnitYear: 500, PUE: 1.3, OpsUSDPerDeviceYear: 200}
	baseTCO, err := DefaultPricingModel.TCO(bom, base)
	if err != nil {
		t.Fatal(err)
	}
	bump := []func(Context) Context{
		func(c Context) Context { c.EnergyUSDPerKWh *= 2; return c },
		func(c Context) Context { c.RackUSDPerUnitYear *= 2; return c },
		func(c Context) Context { c.PUE += 0.5; return c },
		func(c Context) Context { c.OpsUSDPerDeviceYear *= 2; return c },
	}
	for i, f := range bump {
		got, err := DefaultPricingModel.TCO(bom, f(base))
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalUSD <= baseTCO.TotalUSD {
			t.Errorf("bump %d: TCO %v not above base %v", i, got.TotalUSD, baseTCO.TotalUSD)
		}
	}
	// Discounts lower it.
	disc := base
	disc.HardwareDiscount = 0.5
	got, err := DefaultPricingModel.TCO(bom, disc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalUSD >= baseTCO.TotalUSD {
		t.Errorf("discounted TCO %v not below base %v", got.TotalUSD, baseTCO.TotalUSD)
	}
}
