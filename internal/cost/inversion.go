package cost

import "fmt"

// Rank inversion: the paper traces the "many heated debates ... about
// the value of specialized hardware" to TCO's context dependence
// (§3.1, footnote 2) — two organisations computing TCO for the same
// pair of systems can reach opposite orderings. This file makes that
// concrete: sweep a grid of deployment contexts and detect whether the
// cheaper system flips.

// RankPoint is the TCO ordering of two systems under one context.
type RankPoint struct {
	Context  Context
	TCOFirst float64 // TCO of the first system
	TCOOther float64 // TCO of the second system
	// FirstCheaper reports whether the first system wins under this
	// context.
	FirstCheaper bool
}

// InversionResult summarises a context sweep.
type InversionResult struct {
	Points []RankPoint
	// Inverted reports whether both orderings occur across the sweep —
	// the demonstration that raw TCO comparisons do not transfer
	// between contexts.
	Inverted bool
	// FirstWins and OtherWins count contexts per ordering.
	FirstWins, OtherWins int
}

// SweepContexts computes the TCO ordering of two systems across the
// given contexts.
func SweepContexts(m PricingModel, first, other BillOfMaterials, contexts []Context) (InversionResult, error) {
	if len(contexts) == 0 {
		return InversionResult{}, fmt.Errorf("cost: context sweep needs contexts")
	}
	var res InversionResult
	for _, ctx := range contexts {
		a, err := m.TCO(first, ctx)
		if err != nil {
			return res, fmt.Errorf("cost: TCO of %q under %q: %w", first.System, ctx.Name, err)
		}
		b, err := m.TCO(other, ctx)
		if err != nil {
			return res, fmt.Errorf("cost: TCO of %q under %q: %w", other.System, ctx.Name, err)
		}
		p := RankPoint{Context: ctx, TCOFirst: a.TotalUSD, TCOOther: b.TotalUSD, FirstCheaper: a.TotalUSD < b.TotalUSD}
		if p.FirstCheaper {
			res.FirstWins++
		} else {
			res.OtherWins++
		}
		res.Points = append(res.Points, p)
	}
	res.Inverted = res.FirstWins > 0 && res.OtherWins > 0
	return res, nil
}

// ContextGrid builds a grid of plausible deployment contexts spanning
// energy prices, rack rents, PUE and purchasing power — the axes the
// paper names as sources of TCO variation (§1, §3.1).
func ContextGrid() []Context {
	var out []Context
	energies := []float64{0.05, 0.15, 0.30}
	racks := []float64{150, 800, 2000}
	pues := []float64{1.1, 1.6}
	discounts := []float64{0, 0.35}
	for _, e := range energies {
		for _, r := range racks {
			for _, p := range pues {
				for _, d := range discounts {
					out = append(out, Context{
						Name:                fmt.Sprintf("e%.2f-r%.0f-p%.1f-d%.0f%%", e, r, p, d*100),
						EnergyUSDPerKWh:     e,
						RackUSDPerUnitYear:  r,
						PUE:                 p,
						HardwareDiscount:    d,
						OpsUSDPerDeviceYear: 200,
						CarbonKgPerKWh:      0.3,
					})
				}
			}
		}
	}
	return out
}
