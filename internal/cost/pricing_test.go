package cost

import (
	"math"
	"testing"

	"fairbench/internal/metric"
)

func testBOM() BillOfMaterials {
	return BillOfMaterials{
		System: "firewall-smartnic",
		Items: []BOMItem{
			{Device: "server", Count: 1, ListPriceUSD: 8000, PowerWatts: 300, RackUnits: 2},
			{Device: "smartnic", Count: 1, ListPriceUSD: 2000, PowerWatts: 60, RackUnits: 0},
		},
	}
}

func cityContext() Context {
	return Context{
		Name:                "big-city-enterprise",
		EnergyUSDPerKWh:     0.25,
		RackUSDPerUnitYear:  1200,
		PUE:                 1.6,
		HardwareDiscount:    0,
		OpsUSDPerDeviceYear: 500,
		CarbonKgPerKWh:      0.4,
	}
}

func ruralBulkContext() Context {
	return Context{
		Name:                "rural-hyperscaler",
		EnergyUSDPerKWh:     0.06,
		RackUSDPerUnitYear:  200,
		PUE:                 1.1,
		HardwareDiscount:    0.35,
		OpsUSDPerDeviceYear: 120,
		CarbonKgPerKWh:      0.2,
	}
}

func TestTCOIsContextDependent(t *testing.T) {
	// The paper's core §3.1 claim, demonstrated: the *same* system
	// yields very different TCO for different deployers.
	bom := testBOM()
	m := DefaultPricingModel
	city, err := m.TCO(bom, cityContext())
	if err != nil {
		t.Fatalf("TCO(city): %v", err)
	}
	rural, err := m.TCO(bom, ruralBulkContext())
	if err != nil {
		t.Fatalf("TCO(rural): %v", err)
	}
	if city.TotalUSD <= rural.TotalUSD {
		t.Errorf("city TCO (%v) should exceed rural bulk TCO (%v)", city.TotalUSD, rural.TotalUSD)
	}
	if city.TotalUSD < 1.5*rural.TotalUSD {
		t.Errorf("contexts should diverge substantially: city %v vs rural %v", city.TotalUSD, rural.TotalUSD)
	}
}

func TestContextIndependentVectorIsInvariant(t *testing.T) {
	// Power and rack space do not vary with context: they are computed
	// from the BOM alone. This is the operational meaning of Principle 1.
	bom := testBOM()
	v := bom.ContextIndependentVector()
	if v[metric.MetricPower].Value != 360 {
		t.Errorf("power = %v, want 360 W", v[metric.MetricPower])
	}
	if v[metric.MetricRackSpace].Value != 2 {
		t.Errorf("rack = %v, want 2 RU", v[metric.MetricRackSpace])
	}
	if _, ok := v[metric.MetricPrice]; ok {
		t.Error("context-independent vector must not include hardware price")
	}
	if _, ok := v[metric.MetricTCO]; ok {
		t.Error("context-independent vector must not include TCO")
	}
}

func TestTCOBreakdownArithmetic(t *testing.T) {
	bom := BillOfMaterials{
		System: "simple",
		Items:  []BOMItem{{Device: "box", Count: 2, ListPriceUSD: 1000, PowerWatts: 100, RackUnits: 1}},
	}
	ctx := Context{Name: "flat", EnergyUSDPerKWh: 0.10, RackUSDPerUnitYear: 100, PUE: 1.0, OpsUSDPerDeviceYear: 50}
	m := PricingModel{Years: 1, DutyCycle: 1}
	got, err := m.TCO(bom, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.HardwareUSD != 2000 {
		t.Errorf("hardware = %v", got.HardwareUSD)
	}
	wantEnergy := 0.2 * 8760 * 0.10 // 200 W for a year at $0.10/kWh
	if math.Abs(got.EnergyUSD-wantEnergy) > 1e-6 {
		t.Errorf("energy = %v, want %v", got.EnergyUSD, wantEnergy)
	}
	if got.RackUSD != 200 {
		t.Errorf("rack = %v, want 200", got.RackUSD)
	}
	if got.OpsUSD != 100 {
		t.Errorf("ops = %v, want 100", got.OpsUSD)
	}
	wantTotal := got.HardwareUSD + got.EnergyUSD + got.RackUSD + got.OpsUSD
	if got.TotalUSD != wantTotal {
		t.Errorf("total = %v, want %v", got.TotalUSD, wantTotal)
	}
}

func TestTCOValidation(t *testing.T) {
	m := DefaultPricingModel
	if _, err := m.TCO(BillOfMaterials{System: "empty"}, cityContext()); err == nil {
		t.Error("empty BOM should fail")
	}
	bad := cityContext()
	bad.PUE = 0.5
	if _, err := m.TCO(testBOM(), bad); err == nil {
		t.Error("PUE < 1 should fail")
	}
	neg := cityContext()
	neg.EnergyUSDPerKWh = -1
	if _, err := m.TCO(testBOM(), neg); err == nil {
		t.Error("negative price should fail")
	}
	discount := cityContext()
	discount.HardwareDiscount = 1.5
	if _, err := m.TCO(testBOM(), discount); err == nil {
		t.Error("discount >= 1 should fail")
	}
	badModel := PricingModel{Years: 0, DutyCycle: 1}
	if _, err := badModel.TCO(testBOM(), cityContext()); err == nil {
		t.Error("zero-year model should fail")
	}
}

func TestBOMItemValidation(t *testing.T) {
	b := BillOfMaterials{System: "x", Items: []BOMItem{{Device: "d", Count: 0}}}
	if err := b.Validate(); err == nil {
		t.Error("zero count should fail validation")
	}
	b = BillOfMaterials{System: "x", Items: []BOMItem{{Device: "d", Count: 1, PowerWatts: -5}}}
	if err := b.Validate(); err == nil {
		t.Error("negative power should fail validation")
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	// §3.1's remedy: publish the pricing model so others can compute
	// TCO for their context. The artifact must round-trip.
	bomA, bomB := testBOM(), BillOfMaterials{
		System: "firewall-baseline",
		Items:  []BOMItem{{Device: "server", Count: 1, ListPriceUSD: 8000, PowerWatts: 300, RackUnits: 2}},
	}
	data, err := MarshalRelease(DefaultPricingModel, bomA, bomB)
	if err != nil {
		t.Fatalf("MarshalRelease: %v", err)
	}
	model, boms, err := UnmarshalRelease(data)
	if err != nil {
		t.Fatalf("UnmarshalRelease: %v", err)
	}
	if model != DefaultPricingModel {
		t.Errorf("model round-trip: %+v", model)
	}
	if len(boms) != 2 || boms[0].System != "firewall-smartnic" {
		t.Errorf("BOM round-trip: %+v", boms)
	}
	// A reader recomputes TCO under their own context and gets the same
	// answer as the publisher would.
	pub, _ := DefaultPricingModel.TCO(bomA, cityContext())
	reader, err := model.TCO(boms[0], cityContext())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pub.TotalUSD-reader.TotalUSD) > 1e-9 {
		t.Errorf("reader TCO %v != publisher TCO %v", reader.TotalUSD, pub.TotalUSD)
	}
}

func TestUnmarshalReleaseBadJSON(t *testing.T) {
	if _, _, err := UnmarshalRelease([]byte("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestCarbonScalesWithEnergy(t *testing.T) {
	bom := testBOM()
	low, _ := DefaultPricingModel.TCO(bom, ruralBulkContext())
	high, _ := DefaultPricingModel.TCO(bom, cityContext())
	if low.CarbonKg >= high.CarbonKg {
		t.Errorf("carbon should track grid intensity and PUE: %v vs %v", low.CarbonKg, high.CarbonKg)
	}
}

func TestManagedDeviceOverride(t *testing.T) {
	bom := BillOfMaterials{
		System: "cluster",
		Items:  []BOMItem{{Device: "node", Count: 10, ListPriceUSD: 100, PowerWatts: 10, RackUnits: 1, DeviceCount: 2}},
	}
	ctx := Context{Name: "c", PUE: 1, OpsUSDPerDeviceYear: 100}
	got, err := PricingModel{Years: 1, DutyCycle: 1}.TCO(bom, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.OpsUSD != 200 {
		t.Errorf("ops with DeviceCount override = %v, want 200", got.OpsUSD)
	}
}
