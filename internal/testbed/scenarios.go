package testbed

import (
	"fmt"

	"fairbench/internal/hw"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/workload"
)

// This file defines the calibrated scenario configurations that
// reproduce the paper's worked examples (§4.2 SmartNIC firewall,
// §4.2.1 switch preprocessing, §4.3 latency systems). Power figures are
// calibrated so the example deployments land near the paper's numbers:
// chassis 15 W, dataplane core 30 W active, regular NIC 5 W, SmartNIC
// 25 W, switch slice 90 W. Hence:
//
//	baseline 1 core:  15 + 30 + 5        = 50 W   (paper: 50 W)
//	baseline 2 cores: 15 + 60 + 5        = 80 W   (paper: 80 W)
//	SmartNIC system:  15 + 30 + 25       = 70 W   (paper: 70 W)
//	switch system:    90 + 15 + 90 + 5   = 200 W  (paper: 200 W)

// Calibrated device parameters.
var (
	// ScenarioCore is the dataplane core model used by the examples.
	ScenarioCore = hw.CPUConfig{
		FreqHz:         3e9,
		IdleWatts:      10,
		ActiveWatts:    30,
		OverheadCycles: 600,
		QueueDepth:     512,
	}
	// ScenarioChassisWatts and ScenarioNICWatts complete the host BOM.
	ScenarioChassisWatts = 15.0
	ScenarioNICWatts     = 5.0
	// ScenarioSmartNIC is the §4.2 offload NIC: its fast-path capacity
	// (4.2 Mpps ≈ 12 Gb/s of IMIX) plus host slow-path work lands the
	// accelerated system at roughly twice the baseline's throughput.
	ScenarioSmartNIC = hw.SmartNICConfig{
		CapacityPps:           4.2e6,
		IdleWatts:             12,
		ActiveWatts:           25,
		FlowTableSize:         65536,
		OffloadLatencySeconds: 2e-6,
	}
	// ScenarioSwitch is the §4.2.1 preprocessor (a slice of a chassis).
	ScenarioSwitch = hw.SwitchConfig{
		PortRateBps:         100e9,
		Watts:               90,
		StageLatencySeconds: 100e-9,
		Stages:              4,
		TableCapacity:       4096,
		RackUnits:           1,
	}
)

// FirewallRules builds the canonical example rule set:
//
//	rule 0:            drop attack traffic (10.66.0.0/16) — cheap for
//	                   the linear matcher, offloadable to the switch;
//	filler rules:      nFiller rarely-matching drop rules, padding the
//	                   linear scan to a realistic depth;
//	accept rules:      HTTPS (443/TCP) and DNS (53/UDP) into the served
//	                   prefix, plus a band of UDP service ports.
//
// Traffic from workload.NewGenerator matches rule 0 with the spec's
// AttackFraction and otherwise one of the accept rules.
func FirewallRules(nFiller int) []nf.Rule {
	rules := []nf.Rule{{
		ID:     0,
		Src:    nf.Prefix{Addr: workload.AttackPrefix, Bits: 16},
		Action: nf.Drop,
	}}
	for i := 0; i < nFiller; i++ {
		rules = append(rules, nf.Rule{
			ID:     1 + i,
			Src:    nf.Prefix{Addr: packet.Addr4{172, 20, byte(i >> 8), byte(i)}, Bits: 30},
			Action: nf.Drop,
		})
	}
	base := 1 + nFiller
	rules = append(rules,
		nf.Rule{
			ID:       base,
			Dst:      nf.Prefix{Addr: packet.Addr4{192, 168, 1, 0}, Bits: 24},
			DstPorts: nf.PortRange{Lo: 443, Hi: 443}, Proto: packet.ProtoTCP,
			Action: nf.Accept,
		},
		nf.Rule{
			ID:       base + 1,
			Dst:      nf.Prefix{Addr: packet.Addr4{192, 168, 1, 0}, Bits: 24},
			DstPorts: nf.PortRange{Lo: 53, Hi: 53}, Proto: packet.ProtoUDP,
			Action: nf.Accept,
		},
		nf.Rule{
			ID:       base + 2,
			Dst:      nf.Prefix{Addr: packet.Addr4{192, 168, 1, 0}, Bits: 24},
			DstPorts: nf.PortRange{Lo: 2000, Hi: 2099}, Proto: packet.ProtoUDP,
			Action: nf.Accept,
		},
	)
	return rules
}

// DefaultFillerRules is the filler depth used by the examples,
// calibrated so one core sustains ≈10 Gb/s of IMIX (the paper's
// baseline figure).
const DefaultFillerRules = 50

// firewallFactory returns a per-core firewall constructor over the
// canonical rules.
func firewallFactory(rules []nf.Rule) func(int) (nf.Func, error) {
	return func(core int) (nf.Func, error) {
		return nf.NewFirewall(fmt.Sprintf("fw-core%d", core), nf.NewLinearMatcher(rules)), nil
	}
}

// BaselineFirewall is the §4.2 baseline: a software firewall on a
// regular NIC with the given number of cores.
func BaselineFirewall(cores int) (*Deployment, error) {
	return New(Config{
		Name:         fmt.Sprintf("fw-host-%dcore", cores),
		Cores:        cores,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		NICWatts:     ScenarioNICWatts,
		NewNF:        firewallFactory(FirewallRules(DefaultFillerRules)),
	})
}

// SmartNICFirewall is the §4.2 proposed system: the same firewall with
// vetted flows offloaded to a SmartNIC fast path.
func SmartNICFirewall() (*Deployment, error) {
	snic := ScenarioSmartNIC
	return New(Config{
		Name:         "fw-smartnic",
		Cores:        1,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		SmartNIC:     &snic,
		NewNF:        firewallFactory(FirewallRules(DefaultFillerRules)),
	})
}

// SwitchFirewall is the §4.2.1 proposed system: a programmable switch
// pre-drops attack traffic in-network; the host firewall (cores host
// dataplane cores) handles what survives.
func SwitchFirewall(cores int) (*Deployment, error) {
	sw := ScenarioSwitch
	rules := FirewallRules(DefaultFillerRules)
	return New(Config{
		Name:         fmt.Sprintf("fw-switch-%dcore", cores),
		Cores:        cores,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		NICWatts:     ScenarioNICWatts,
		Switch:       &sw,
		SwitchRules:  rules[:1], // the attack-prefix drop rule
		NewNF:        firewallFactory(rules),
	})
}

// FPGAFirewall runs the whole firewall in an FPGA pipeline — the extra
// accelerator point used by the latency examples and frontier sweeps.
func FPGAFirewall(cfg hw.FPGAConfig) (*Deployment, error) {
	return New(Config{
		Name:         "fw-fpga",
		Cores:        0,
		ChassisWatts: ScenarioChassisWatts,
		NICWatts:     ScenarioNICWatts,
		FPGA:         &cfg,
		NewNF:        firewallFactory(FirewallRules(DefaultFillerRules)),
	})
}

// E6Workload is the §4.2 traffic mix: mostly benign IMIX flows with a
// 20% blocklisted component.
func E6Workload(seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(workload.Spec{
		Flows:          1024,
		ZipfSkew:       1.1,
		AttackFraction: 0.20,
		Seed:           seed,
	})
}

// FaultRegime names one operating regime of the fault sweep: a fault
// spec (empty for the healthy regime) in the textual grammar, so the
// same regime can be reproduced with `fairsim -faults`.
type FaultRegime struct {
	// Name labels the regime in reports ("healthy", "smartnic-outage").
	Name string
	// Spec is the fault specification, or "" for the healthy regime.
	Spec string
}

// FaultSweepRegimes is the canonical degraded-regime catalogue for a
// run of the given duration: the healthy reference plus one regime per
// fault model, with windows positioned as fractions of the run so the
// sweep scales with trial fidelity. Device targets absent from a
// deployment no-op, so every regime applies to every compared system —
// the point of the sweep is that both systems experience the *same*
// environment. Times are rendered as plain seconds (the spec grammar
// accepts both).
func FaultSweepRegimes(durationSeconds float64) []FaultRegime {
	d := durationSeconds
	return []FaultRegime{
		{Name: "healthy", Spec: ""},
		{Name: "smartnic-outage",
			Spec: fmt.Sprintf("outage:dev=smartnic,at=%g,for=%g", 0.25*d, 0.25*d)},
		{Name: "core-brownout",
			Spec: fmt.Sprintf("brownout:dev=cores,at=%g,for=%g,factor=0.5", 0.25*d, 0.5*d)},
		{Name: "link-loss", Spec: "linkloss:prob=0.02"},
		{Name: "burst-overload",
			Spec: fmt.Sprintf("burst:factor=3,at=%g,for=%g", 0.25*d, 0.25*d)},
	}
}

// E7Workload is the §4.2.1 mix: 75% of traffic is in-network-droppable
// attack/scan traffic, which is what makes switch preprocessing pay.
// Flow popularity is uniform so receive-side scaling balances the host
// cores — the example's premise that all host cores are usable.
func E7Workload(seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(workload.Spec{
		Flows:          4096,
		AttackFraction: 0.75,
		Seed:           seed,
	})
}
