package testbed

import (
	"errors"
	"testing"

	"fairbench/internal/workload"
)

func TestAblateUnknownStageErrors(t *testing.T) {
	_, err := New(Config{
		Name:         "bad",
		NewNF:        firewallFactory(FirewallRules(0)),
		AblateStages: []string{"no-such-stage"},
	})
	if !errors.Is(err, ErrUnknownStage) {
		t.Fatalf("want ErrUnknownStage, got %v", err)
	}
}

func TestAblateStageRequiresDevice(t *testing.T) {
	for _, stage := range []string{StageSmartNICFastPath, StageSwitchPredrop} {
		_, err := New(Config{
			Name:         "host-only",
			NewNF:        firewallFactory(FirewallRules(0)),
			AblateStages: []string{stage},
		})
		if !errors.Is(err, ErrUnknownStage) {
			t.Errorf("%s on a host-only config: want ErrUnknownStage, got %v", stage, err)
		}
	}
}

func TestFirewallRulesAblated(t *testing.T) {
	full, _, err := firewallRulesAblated(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + DefaultFillerRules + 3; len(full) != want {
		t.Fatalf("full rule set: got %d rules, want %d", len(full), want)
	}
	noAttack, _, err := firewallRulesAblated([]string{StageAttackRule})
	if err != nil {
		t.Fatal(err)
	}
	if len(noAttack) != len(full)-1 || noAttack[0].ID == 0 {
		t.Fatalf("attack-rule ablation: got %d rules, first ID %d", len(noAttack), noAttack[0].ID)
	}
	noFiller, pipeline, err := firewallRulesAblated([]string{StageFillerRules, StageSmartNICFastPath})
	if err != nil {
		t.Fatal(err)
	}
	if len(noFiller) != 4 {
		t.Fatalf("filler ablation: got %d rules, want 4", len(noFiller))
	}
	if len(pipeline) != 1 || pipeline[0] != StageSmartNICFastPath {
		t.Fatalf("pipeline toggles not split out: %v", pipeline)
	}
	if _, _, err := firewallRulesAblated([]string{"bogus"}); !errors.Is(err, ErrUnknownStage) {
		t.Fatalf("want ErrUnknownStage, got %v", err)
	}
}

func TestSmartNICFastPathAblation(t *testing.T) {
	target, err := FirewallProfileTarget("smartnic")
	if err != nil {
		t.Fatal(err)
	}
	run := func(ablate []string) *Deployment {
		d, err := target.Make(ablate)
		if err != nil {
			t.Fatal(err)
		}
		g, err := target.Workload(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(g, workload.CBR{}, 2e6, 0.004); err != nil {
			t.Fatal(err)
		}
		return d
	}
	full := run(nil)
	if full.SmartNIC().Offloaded == 0 {
		t.Fatal("full pipeline: expected offloaded packets")
	}
	ablated := run([]string{StageSmartNICFastPath})
	if got := ablated.SmartNIC().Offloaded; got != 0 {
		t.Fatalf("ablated fast path still offloaded %d packets", got)
	}
	// The device stays provisioned: ablation removes the function, not
	// the hardware, so the cost side of the comparison is unchanged.
	fp, err := full.ProvisionedPowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	ap, err := ablated.ProvisionedPowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if fp != ap {
		t.Fatalf("ablation changed provisioned power: %v vs %v", fp, ap)
	}
}

func TestSwitchPredropAblation(t *testing.T) {
	target, err := FirewallProfileTarget("switch")
	if err != nil {
		t.Fatal(err)
	}
	loss := func(ablate []string) float64 {
		d, err := target.Make(ablate)
		if err != nil {
			t.Fatal(err)
		}
		g, err := target.Workload(1)
		if err != nil {
			t.Fatal(err)
		}
		// Above the 3-core host capacity but well under it once the
		// switch pre-drops the 75% attack share.
		res, err := d.Run(g, workload.CBR{}, 18e6, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		return res.LossFraction
	}
	full := loss(nil)
	ablated := loss([]string{StageSwitchPredrop})
	if ablated <= full {
		t.Fatalf("predrop ablation should overload the host: full loss %v, ablated loss %v", full, ablated)
	}
}

func TestFirewallProfileTargetUnknownSystem(t *testing.T) {
	if _, err := FirewallProfileTarget("toaster"); err == nil {
		t.Fatal("want error for unknown system")
	}
}
