package testbed

import (
	"testing"

	"fairbench/internal/fault"
	"fairbench/internal/hw"
	"fairbench/internal/workload"
)

func mustFaultSpec(t *testing.T, s string) fault.Spec {
	t.Helper()
	spec, err := fault.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSmartNICOutageFailover is the headline failover property: a
// SmartNIC outage mid-run degrades service to the host slow path —
// availability dips below 1, loss is bounded well under the offload's
// traffic share, and the meter sees the recovery.
func TestSmartNICOutageFailover(t *testing.T) {
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	// 4 Mpps: just under fast-path capacity, above what the single
	// host core sustains alone, so the outage visibly degrades service.
	res, rep, err := d.RunWithFaults(e6gen(t), workload.Poisson{}, 4e6, testDuration,
		mustFaultSpec(t, "outage:dev=smartnic,at=5ms,for=5ms"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 1 {
		t.Fatalf("windows = %+v, want exactly one", rep.Windows)
	}
	if rep.Avail.Availability >= 1 {
		t.Error("outage did not dent availability")
	}
	if rep.Avail.Availability < 0.85 {
		t.Errorf("availability = %v: failover should keep most traffic flowing", rep.Avail.Availability)
	}
	if rep.Avail.DegradationDepth <= 0 {
		t.Error("no degradation depth recorded")
	}
	if rep.Avail.RecoverySeconds <= 0 {
		t.Error("no recovery episode recorded")
	}
	// Traffic degrades to the host instead of silently dropping: loss
	// stays far below the fast path's share of healthy traffic.
	if res.LossFraction <= 0 || res.LossFraction > 0.25 {
		t.Errorf("loss = %v, want bounded in (0, 0.25]", res.LossFraction)
	}
	if res.Processed.Packets == 0 {
		t.Fatal("nothing processed")
	}
}

// TestFaultTargetAbsentDeviceIsNoop: the same environment spec applies
// to every compared system; a host-only deployment simply has no
// SmartNIC to lose, so the faulted run matches the healthy one exactly.
func TestFaultTargetAbsentDeviceIsNoop(t *testing.T) {
	run := func(spec fault.Spec) (Result, FaultReport) {
		d, err := BaselineFirewall(2)
		if err != nil {
			t.Fatal(err)
		}
		res, rep, err := d.RunWithFaults(e6gen(t), workload.Poisson{}, 2e6, testDuration, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res, rep
	}
	healthy, _ := run(fault.Spec{})
	faulted, rep := run(mustFaultSpec(t, "outage:dev=smartnic,at=5ms,for=5ms"))
	if healthy.Processed != faulted.Processed || healthy.Offered != faulted.Offered ||
		healthy.LatencyP99Us != faulted.LatencyP99Us {
		t.Errorf("smartnic outage perturbed a host-only deployment:\nhealthy %+v\nfaulted %+v", healthy, faulted)
	}
	if rep.Avail.Availability != 1 {
		t.Errorf("availability = %v, want 1 (fault targets an absent device)", rep.Avail.Availability)
	}
}

// TestFPGAOverflowAccounting pins the satellite-1 fix: with no host
// cores, every offered packet is either processed or counted as loss in
// the measured window — ingress overflow cannot leak packets out of the
// accounting.
func TestFPGAOverflowAccounting(t *testing.T) {
	d, err := FPGAFirewall(hw.FPGAConfig{CapacityPps: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(e6gen(t), workload.Poisson{}, 4e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if d.FPGA().Overflowed == 0 {
		t.Fatal("4 Mpps into a 1 Mpps pipeline did not overflow")
	}
	// Conservation: every offered packet is processed or counted as
	// loss, modulo the pipeline's small ingress buffer still in flight
	// at the horizon.
	lost := uint64(res.LossFraction*float64(res.Offered.Packets) + 0.5)
	if res.Processed.Packets+lost > res.Offered.Packets {
		t.Errorf("processed %d + lost %d exceeds offered %d",
			res.Processed.Packets, lost, res.Offered.Packets)
	}
	if gap := res.Offered.Packets - res.Processed.Packets - lost; gap > 200 {
		t.Errorf("%d offered packets unaccounted for (want ≤ in-flight buffer)", gap)
	}
	if res.LossFraction <= 0.5 {
		t.Errorf("loss = %v, want most of a 4x overload lost", res.LossFraction)
	}
}

// TestFPGAOverflowFailsOverToHost: the same overload with host cores
// present spills to the slow path instead of dropping.
func TestFPGAOverflowFailsOverToHost(t *testing.T) {
	mk := func(cores int) Result {
		d, err := New(Config{
			Name:         "fw-fpga-host",
			Cores:        cores,
			CoreCfg:      ScenarioCore,
			ChassisWatts: ScenarioChassisWatts,
			NICWatts:     ScenarioNICWatts,
			FPGA:         &hw.FPGAConfig{CapacityPps: 1e6},
			NewNF:        firewallFactory(FirewallRules(DefaultFillerRules)),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(e6gen(t), workload.Poisson{}, 2e6, testDuration)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withHost := mk(2)
	if withHost.LossFraction > 0.01 {
		t.Errorf("loss with host failover = %v, want ≈0 (2 cores absorb the spill)", withHost.LossFraction)
	}
}

// TestFPGAOutageFailsOverToHost: an injected FPGA outage degrades to
// the host cores; the pipeline's Unavailable counter proves the outage
// was exercised.
func TestFPGAOutageFailsOverToHost(t *testing.T) {
	d, err := New(Config{
		Name:         "fw-fpga-host",
		Cores:        2,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		NICWatts:     ScenarioNICWatts,
		FPGA:         &hw.FPGAConfig{},
		NewNF:        firewallFactory(FirewallRules(DefaultFillerRules)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := d.RunWithFaults(e6gen(t), workload.Poisson{}, 2e6, testDuration,
		mustFaultSpec(t, "outage:dev=fpga,at=5ms,for=5ms"))
	if err != nil {
		t.Fatal(err)
	}
	if d.FPGA().Unavailable == 0 {
		t.Fatal("outage window saw no pipeline rejections")
	}
	if res.LossFraction > 0.01 {
		t.Errorf("loss = %v, want ≈0 (host absorbs the outage at 2 Mpps)", res.LossFraction)
	}
	if rep.Avail.Availability < 0.99 {
		t.Errorf("availability = %v, want ≈1 under clean failover", rep.Avail.Availability)
	}
}

// TestSwitchOutageFailsOpen: a downed switch preprocessor is bypassed;
// the host firewall holds the full rule set, so classification is
// preserved and nothing is lost at moderate load.
func TestSwitchOutageFailsOpen(t *testing.T) {
	gen := func() *workload.Generator {
		g, err := workload.NewGenerator(workload.Spec{Flows: 4096, AttackFraction: 0.75, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(spec fault.Spec) (*Deployment, Result) {
		d, err := SwitchFirewall(2)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := d.RunWithFaults(gen(), workload.Poisson{}, 1e6, testDuration, spec)
		if err != nil {
			t.Fatal(err)
		}
		return d, res
	}
	dh, healthy := run(fault.Spec{})
	if dh.Switch().PreDropped == 0 {
		t.Fatal("healthy switch run pre-dropped nothing")
	}
	df, faulted := run(mustFaultSpec(t, "outage:dev=switch,at=0,for=0"))
	if df.Switch().PreDropped != 0 {
		t.Errorf("downed switch still processed %d packets", df.Switch().PreDropped)
	}
	if faulted.LossFraction > 0.01 {
		t.Errorf("fail-open loss = %v, want ≈0", faulted.LossFraction)
	}
	// The same policy outcome, now enforced by the host: processed
	// packet counts match (every offered packet still gets a verdict).
	if healthy.Offered.Packets != faulted.Offered.Packets {
		t.Errorf("offered differs: %d vs %d", healthy.Offered.Packets, faulted.Offered.Packets)
	}
}

// TestLinkLossFaults: ingress loss counts against availability and the
// loss fraction, with the casualty count reported.
func TestLinkLossFaults(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := d.RunWithFaults(e6gen(t), workload.CBR{}, 1e6, testDuration,
		mustFaultSpec(t, "linkloss:prob=0.3"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinkDropped == 0 {
		t.Fatal("no link drops recorded")
	}
	if res.LossFraction < 0.25 || res.LossFraction > 0.35 {
		t.Errorf("loss = %v, want ≈0.3", res.LossFraction)
	}
	if rep.Avail.Availability < 0.65 || rep.Avail.Availability > 0.75 {
		t.Errorf("availability = %v, want ≈0.7", rep.Avail.Availability)
	}
}

// TestLinkCorruptFaults: corrupted frames reach the DUT; header
// corruption is caught by validation and surfaces as loss.
func TestLinkCorruptFaults(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := d.RunWithFaults(e6gen(t), workload.CBR{}, 1e6, testDuration,
		mustFaultSpec(t, "linkcorrupt:prob=0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinkCorrupted == 0 {
		t.Fatal("no corruption recorded")
	}
	if res.LossFraction == 0 {
		t.Error("corrupted frames should produce some parse-level loss")
	}
	if res.LossFraction > 0.25 {
		t.Errorf("loss = %v cannot exceed the corruption rate by much", res.LossFraction)
	}
}

// TestBurstOverloadFaults: a burst window multiplies the offered rate.
func TestBurstOverloadFaults(t *testing.T) {
	run := func(spec fault.Spec) Result {
		d, err := BaselineFirewall(1)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := d.RunWithFaults(e6gen(t), workload.CBR{}, 1e6, testDuration, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(fault.Spec{})
	burst := run(mustFaultSpec(t, "burst:factor=3,at=5ms,for=5ms"))
	// A 3x burst over a quarter of the run adds ≈50% more packets.
	lo := float64(healthy.Offered.Packets) * 1.3
	hi := float64(healthy.Offered.Packets) * 1.7
	got := float64(burst.Offered.Packets)
	if got < lo || got > hi {
		t.Errorf("burst offered %v packets, want in [%v, %v] (healthy %d)",
			got, lo, hi, healthy.Offered.Packets)
	}
}

// TestCoreBrownoutDegrades: derated cores serve slower, which shows up
// as queueing latency or loss at a rate the healthy system sustains.
func TestCoreBrownoutDegrades(t *testing.T) {
	run := func(spec fault.Spec) Result {
		d, err := BaselineFirewall(1)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := d.RunWithFaults(e6gen(t), workload.Poisson{}, 3e6, testDuration, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(fault.Spec{})
	browned := run(mustFaultSpec(t, "brownout:dev=cores,at=5ms,for=10ms,factor=0.5"))
	if browned.LossFraction <= healthy.LossFraction && browned.LatencyP99Us <= healthy.LatencyP99Us {
		t.Errorf("brownout had no measurable effect: healthy loss=%v p99=%v, browned loss=%v p99=%v",
			healthy.LossFraction, healthy.LatencyP99Us, browned.LossFraction, browned.LatencyP99Us)
	}
}

// TestRunWithFaultsValidation: malformed params surface as errors.
func TestRunWithFaultsValidation(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.RunWithFaults(e6gen(t), workload.CBR{}, 0, testDuration, fault.Spec{}); err == nil {
		t.Error("zero pps accepted")
	}
	bad := fault.Spec{Clauses: []fault.Clause{{Kind: fault.Brownout, Target: fault.TargetCores, Severity: 2}}}
	if _, _, err := d.RunWithFaults(e6gen(t), workload.CBR{}, 1e6, testDuration, bad); err == nil {
		t.Error("invalid spec accepted")
	}
}
