package testbed

import (
	"errors"
	"fmt"
	"io"

	"fairbench/internal/fault"
	"fairbench/internal/measure"
	"fairbench/internal/packet"
	"fairbench/internal/sim"
	"fairbench/internal/workload"
)

// Trace replay and failure injection: the deployment can be driven from
// a recorded trace instead of a synthetic generator (substituting for
// pcap replay of production traces), and the ingress path can inject
// impairments — drops, corruption, duplication — to exercise the
// decoders' validation and the meters' loss attribution under fault.

// Impairments configures ingress fault injection. Probabilities are per
// packet and independent.
type Impairments struct {
	// DropProb drops the packet before it reaches any device.
	DropProb float64
	// CorruptProb flips one random byte of the frame (a private copy),
	// which the IPv4 checksum validation then catches.
	CorruptProb float64
	// DupProb injects the packet twice.
	DupProb float64
	// Seed drives the impairment stream (default 7).
	Seed uint64
}

// Validate checks probability ranges.
func (im Impairments) Validate() error {
	for _, p := range []float64{im.DropProb, im.CorruptProb, im.DupProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("testbed: impairment probability %v outside [0,1]", p)
		}
	}
	return nil
}

func (im Impairments) enabled() bool {
	return im.DropProb > 0 || im.CorruptProb > 0 || im.DupProb > 0
}

func (im Impairments) rng() *sim.RNG {
	seed := im.Seed
	if seed == 0 {
		seed = 7
	}
	//fairlint:allow seedprov zero Impairments.Seed selects the documented default stream
	return sim.NewRNG(seed).Derive("impair")
}

// ImpairStats counts injected faults.
type ImpairStats struct {
	Dropped, Corrupted, Duplicated uint64
}

// RunWithImpairments is Run with ingress fault injection. Impaired
// drops count as loss (the DUT never saw the packet but the offered
// load included it); corrupted frames reach the DUT and are expected to
// be rejected by header validation.
func (d *Deployment) RunWithImpairments(gen *workload.Generator, arrival workload.Arrival, offeredPps, durationSeconds float64, im Impairments) (Result, ImpairStats, error) {
	if err := im.Validate(); err != nil {
		return Result{}, ImpairStats{}, err
	}
	var stats ImpairStats
	if !im.enabled() {
		res, err := d.Run(gen, arrival, offeredPps, durationSeconds)
		return res, stats, err
	}
	rng := im.rng()
	res, err := d.runInjected(arrival, offeredPps, durationSeconds, gen.ArrivalRNG(), func(tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) error {
		pk, err := gen.NextCopy()
		if err != nil {
			return err
		}
		tput.Offer(len(pk.Frame))
		if rng.Float64() < im.DropProb {
			stats.Dropped++
			tput.Lose()
			return nil
		}
		if rng.Float64() < im.CorruptProb {
			stats.Corrupted++
			pk.Frame[rng.Intn(len(pk.Frame))] ^= 0xff
		}
		d.dispatch(pk, tput, lat, fair)
		if rng.Float64() < im.DupProb {
			stats.Duplicated++
			dup := pk
			dup.Frame = append([]byte(nil), pk.Frame...)
			tput.Offer(len(dup.Frame))
			d.dispatch(dup, tput, lat, fair)
		}
		return nil
	}, nil)
	return res, stats, err
}

// RunTrace replays a recorded trace through the deployment at its
// recorded timestamps (scaled by stretch; 1 = real pacing, 0.5 = twice
// as fast). The trace is read fully before simulation starts.
func (d *Deployment) RunTrace(tr *workload.TraceReader, stretch float64) (Result, error) {
	res, _, err := d.runTrace(tr, stretch, nil, fault.Spec{})
	return res, err
}

// runTrace is the shared replay engine; inj == nil replays fault-free.
func (d *Deployment) runTrace(tr *workload.TraceReader, stretch float64, inj *fault.Injector, spec fault.Spec) (Result, FaultReport, error) {
	if stretch <= 0 {
		return Result{}, FaultReport{}, fmt.Errorf("testbed: non-positive stretch %v", stretch)
	}
	type rec struct {
		at    sim.Time
		frame []byte
	}
	var recs []rec
	for {
		r, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, FaultReport{}, err
		}
		recs = append(recs, rec{at: sim.Time(float64(r.TimestampNanos) * 1e-9 * stretch), frame: r.Frame})
	}
	if len(recs) == 0 {
		return Result{}, FaultReport{}, fmt.Errorf("testbed: empty trace")
	}
	horizon := recs[len(recs)-1].at + 1e-6

	var (
		tput measure.ThroughputMeter
		lat  = measure.NewLatencyMeter()
		fair = measure.NewFairnessMeter()
		rep  = FaultReport{Spec: spec}
	)
	tput.Start(0)
	d.armObs(horizon)
	if inj != nil {
		if err := d.armFaults(inj, horizon); err != nil {
			return Result{}, FaultReport{}, err
		}
	}
	scratch := packet.NewParser()
	for _, r := range recs {
		r := r
		if err := d.s.At(r.at, func() {
			tput.Offer(len(r.frame))
			frame := r.frame
			if inj != nil {
				if inj.DropArrival() {
					rep.LinkDropped++
					tput.Lose()
					d.avail.Offer(d.s.Now().Seconds())
					return
				}
				if idx, corrupt := inj.CorruptArrival(len(frame)); corrupt {
					rep.LinkCorrupted++
					frame = append([]byte(nil), frame...)
					frame[idx] ^= 0xff
				}
			}
			pk := workload.Pkt{Frame: frame}
			if err := scratch.Parse(frame); err == nil {
				if ft, ok := scratch.FiveTuple(); ok {
					pk.Flow = ft
				}
			}
			d.dispatch(pk, &tput, lat, fair)
		}); err != nil {
			return Result{}, FaultReport{}, err
		}
	}
	d.s.Run(horizon + 1)
	tput.Stop(horizon)
	res, err := d.collect(&tput, lat, fair, horizon)
	if err != nil {
		return Result{}, FaultReport{}, err
	}
	if inj != nil {
		rep.Windows = inj.Windows()
		rep.Avail, err = d.avail.Summarize(measure.DefaultAvailabilityThreshold)
		if err != nil {
			return Result{}, FaultReport{}, fmt.Errorf("testbed: %s: availability: %w", d.cfg.Name, err)
		}
	}
	return res, rep, nil
}
