package testbed

import (
	"fmt"
	"strings"
	"testing"

	"fairbench/internal/fault"
	"fairbench/internal/obs"
	"fairbench/internal/workload"
)

// The periodic sampler runs as ordinary simulation events, so it must
// keep ticking straight through fault windows and show the fault in the
// sampled utilization: a SmartNIC outage reroutes traffic to the host
// path, so smartnic samples inside the window read (near) zero busy
// while samples outside show offload load.
func TestSamplerObservesFaultWindow(t *testing.T) {
	const dur = 0.02
	spec, err := fault.ParseSpec(fmt.Sprintf("outage:dev=smartnic,at=%g,for=%g", 0.25*dur, 0.5*dur))
	if err != nil {
		t.Fatal(err)
	}
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	g, err := E6Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(nil)
	var snic []obs.Event
	tr.SetSink(func(e obs.Event) {
		if e.Kind == "sample" && strings.HasSuffix(e.Device, "/smartnic") {
			snic = append(snic, e)
		}
	})
	d.Observe(tr, dur/40)
	if _, _, err := d.RunWithFaults(g, workload.CBR{}, 2e6, dur, spec); err != nil {
		t.Fatal(err)
	}
	if len(snic) == 0 {
		t.Fatal("no smartnic samples recorded")
	}
	// The outage window is [.25d, .75d). Leave one sample period of
	// slack on each side: the first in-window tick still aggregates
	// busy time accrued before the fault hit.
	const lo, hi = 0.25*dur + dur/40, 0.75 * dur
	var inWin, outWin, inMax, outMax float64
	var nIn, nOut int
	for _, e := range snic {
		if e.T >= lo && e.T < hi {
			nIn++
			inWin += e.Util
			if e.Util > inMax {
				inMax = e.Util
			}
		} else {
			nOut++
			outWin += e.Util
			if e.Util > outMax {
				outMax = e.Util
			}
		}
	}
	if nIn == 0 || nOut == 0 {
		t.Fatalf("sampler skipped a region: %d in-window, %d out-of-window samples", nIn, nOut)
	}
	if inMax != 0 {
		t.Errorf("smartnic busy during its own outage: max in-window util %v", inMax)
	}
	if outMax == 0 {
		t.Error("smartnic never busy outside the outage window")
	}
}
