package testbed

import (
	"bytes"
	"testing"

	"fairbench/internal/workload"
)

func TestRunWithImpairmentsDrop(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Fatal("no impairment drops recorded")
	}
	// Impaired drops count as loss relative to offered load.
	frac := res.LossFraction
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("loss fraction = %v, want ≈0.3 (impairment drops)", frac)
	}
	// The surviving 70% is processed normally.
	want := 0.7 * 1e6
	got := res.Processed.PacketsPerSecond()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("processed = %v pps, want ≈%v", got, want)
	}
}

func TestRunWithImpairmentsCorrupt(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{CorruptProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupted == 0 {
		t.Fatal("no corruption recorded")
	}
	// Corrupted frames are mostly rejected by header validation and
	// show up as loss; a byte flip in the payload region survives
	// parsing (UDP checksum is not re-verified by the firewall path),
	// so loss is bounded above by the corruption rate.
	if res.LossFraction == 0 {
		t.Error("corrupted frames should produce some parse-level loss")
	}
	if res.LossFraction > 0.25 {
		t.Errorf("loss = %v, cannot exceed corruption rate by much", res.LossFraction)
	}
}

func TestRunWithImpairmentsDuplicate(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicated == 0 {
		t.Fatal("no duplicates recorded")
	}
	// Offered load includes duplicates: ≈1.5x the nominal rate.
	got := res.Offered.PacketsPerSecond()
	if got < 1.4e6 || got > 1.6e6 {
		t.Errorf("offered with duplication = %v pps, want ≈1.5M", got)
	}
}

func TestImpairmentsValidation(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	if _, _, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, 0.001,
		Impairments{DropProb: 1.5}); err == nil {
		t.Error("probability > 1 should fail")
	}
}

func TestRunWithoutImpairmentsDelegates(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, 0.005, Impairments{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ImpairStats{}) {
		t.Errorf("stats = %+v, want zero", stats)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("clean run loss = %v", res.LossFraction)
	}
}

func TestRunTraceReplay(t *testing.T) {
	// Record a trace from the generator, then replay it through a
	// deployment; the replayed run must process every frame.
	g := e6gen(t)
	var buf bytes.Buffer
	const n = 2000
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, n); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunTrace(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered.Packets != n {
		t.Errorf("offered = %d, want %d", res.Offered.Packets, n)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("replay at 1 Mpps should not overload: loss = %v", res.LossFraction)
	}
	if res.Processed.Packets == 0 || res.LatencyP50Us <= 0 {
		t.Error("replay should process packets and measure latency")
	}
}

func TestRunTraceStretch(t *testing.T) {
	// Stretch 0.25 replays 4x as fast: a trace recorded at 12 Mpps
	// (already above capacity) becomes catastrophic, and one recorded
	// at 1 Mpps becomes 4 Mpps (above the ~3.2 Mpps core) and loses.
	g := e6gen(t)
	var buf bytes.Buffer
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, 20000); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunTrace(tr, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.05 {
		t.Errorf("4x-accelerated replay should overload the core: loss = %v", res.LossFraction)
	}
}

func TestRunTraceValidation(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	var buf bytes.Buffer
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, 5); err != nil {
		t.Fatal(err)
	}
	tr, _ := workload.NewTraceReader(&buf)
	if _, err := d.RunTrace(tr, 0); err == nil {
		t.Error("zero stretch should fail")
	}
	// Empty trace.
	var empty bytes.Buffer
	tw, _ := workload.NewTraceWriter(&empty)
	_ = tw.Close()
	tr2, err := workload.NewTraceReader(&empty)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := BaselineFirewall(1)
	if _, err := d2.RunTrace(tr2, 1); err == nil {
		t.Error("empty trace should fail")
	}
}
