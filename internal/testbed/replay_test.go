package testbed

import (
	"bytes"
	"reflect"
	"testing"

	"fairbench/internal/fault"
	"fairbench/internal/obs"
	"fairbench/internal/workload"
)

func TestRunWithImpairmentsDrop(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Fatal("no impairment drops recorded")
	}
	// Impaired drops count as loss relative to offered load.
	frac := res.LossFraction
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("loss fraction = %v, want ≈0.3 (impairment drops)", frac)
	}
	// The surviving 70% is processed normally.
	want := 0.7 * 1e6
	got := res.Processed.PacketsPerSecond()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("processed = %v pps, want ≈%v", got, want)
	}
}

func TestRunWithImpairmentsCorrupt(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{CorruptProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupted == 0 {
		t.Fatal("no corruption recorded")
	}
	// Corrupted frames are mostly rejected by header validation and
	// show up as loss; a byte flip in the payload region survives
	// parsing (UDP checksum is not re-verified by the firewall path),
	// so loss is bounded above by the corruption rate.
	if res.LossFraction == 0 {
		t.Error("corrupted frames should produce some parse-level loss")
	}
	if res.LossFraction > 0.25 {
		t.Errorf("loss = %v, cannot exceed corruption rate by much", res.LossFraction)
	}
}

func TestRunWithImpairmentsDuplicate(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, testDuration,
		Impairments{DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicated == 0 {
		t.Fatal("no duplicates recorded")
	}
	// Offered load includes duplicates: ≈1.5x the nominal rate.
	got := res.Offered.PacketsPerSecond()
	if got < 1.4e6 || got > 1.6e6 {
		t.Errorf("offered with duplication = %v pps, want ≈1.5M", got)
	}
}

func TestImpairmentsValidation(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	if _, _, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, 0.001,
		Impairments{DropProb: 1.5}); err == nil {
		t.Error("probability > 1 should fail")
	}
}

func TestRunWithoutImpairmentsDelegates(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	res, stats, err := d.RunWithImpairments(g, workload.CBR{}, 1e6, 0.005, Impairments{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ImpairStats{}) {
		t.Errorf("stats = %+v, want zero", stats)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("clean run loss = %v", res.LossFraction)
	}
}

func TestRunTraceReplay(t *testing.T) {
	// Record a trace from the generator, then replay it through a
	// deployment; the replayed run must process every frame.
	g := e6gen(t)
	var buf bytes.Buffer
	const n = 2000
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, n); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunTrace(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered.Packets != n {
		t.Errorf("offered = %d, want %d", res.Offered.Packets, n)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("replay at 1 Mpps should not overload: loss = %v", res.LossFraction)
	}
	if res.Processed.Packets == 0 || res.LatencyP50Us <= 0 {
		t.Error("replay should process packets and measure latency")
	}
}

func TestRunTraceStretch(t *testing.T) {
	// Stretch 0.25 replays 4x as fast: a trace recorded at 12 Mpps
	// (already above capacity) becomes catastrophic, and one recorded
	// at 1 Mpps becomes 4 Mpps (above the ~3.2 Mpps core) and loses.
	g := e6gen(t)
	var buf bytes.Buffer
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, 20000); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunTrace(tr, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.05 {
		t.Errorf("4x-accelerated replay should overload the core: loss = %v", res.LossFraction)
	}
}

func TestRunTraceValidation(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	var buf bytes.Buffer
	if err := workload.Record(&buf, g, workload.CBR{}, 1e6, 5); err != nil {
		t.Fatal(err)
	}
	tr, _ := workload.NewTraceReader(&buf)
	if _, err := d.RunTrace(tr, 0); err == nil {
		t.Error("zero stretch should fail")
	}
	// Empty trace.
	var empty bytes.Buffer
	tw, _ := workload.NewTraceWriter(&empty)
	_ = tw.Close()
	tr2, err := workload.NewTraceReader(&empty)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := BaselineFirewall(1)
	if _, err := d2.RunTrace(tr2, 1); err == nil {
		t.Error("empty trace should fail")
	}
}

// tracedFaultRun executes one SmartNIC firewall run under the given
// fault spec with tracing into buf.
func tracedFaultRun(t *testing.T, seed uint64, specStr string, buf *bytes.Buffer) (Result, FaultReport) {
	t.Helper()
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	g, err := E6Workload(seed)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fault.ParseSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(buf)
	d.Observe(tr, 0.002)
	res, rep, err := d.RunWithFaults(g, workload.Poisson{}, 4e6, testDuration, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatalf("trace error: %v", tr.Err())
	}
	return res, rep
}

// TestFaultedRunDeterministicBytes is the reproducibility contract
// under failure: the same workload seed and the same fault spec
// (including its stochastic MTTF/MTTR schedule and per-packet link
// loss) yield a byte-identical JSONL trace and identical measurements.
func TestFaultedRunDeterministicBytes(t *testing.T) {
	const spec = "outage:dev=smartnic,mttf=8ms,mttr=2ms;linkloss:prob=0.02;seed:7"
	var a, b bytes.Buffer
	resA, repA := tracedFaultRun(t, 42, spec, &a)
	resB, repB := tracedFaultRun(t, 42, spec, &b)
	if a.Len() == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed + same fault spec should yield a byte-identical trace")
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("results differ across identical faulted runs:\n%+v\n%+v", resA, resB)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Errorf("fault reports differ across identical faulted runs:\n%+v\n%+v", repA, repB)
	}
	if !bytes.Contains(a.Bytes(), []byte(`"fault"`)) {
		t.Error("trace records no fault spans")
	}

	// A different fault seed reshuffles the MTTF schedule and the link
	// coin flips: the trace must change.
	var c bytes.Buffer
	tracedFaultRun(t, 42, "outage:dev=smartnic,mttf=8ms,mttr=2ms;linkloss:prob=0.02;seed:8", &c)
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different fault seeds should yield different traces")
	}
}

// TestReplayWithFaultsDeterministic: trace replay under faults is as
// reproducible as generated traffic.
func TestReplayWithFaultsDeterministic(t *testing.T) {
	var rec bytes.Buffer
	if err := workload.Record(&rec, e6gen(t), workload.CBR{}, 1e6, 10000); err != nil {
		t.Fatal(err)
	}
	raw := rec.Bytes()
	spec, err := fault.ParseSpec("linkloss:prob=0.1;brownout:dev=cores,at=2ms,for=4ms,factor=0.5;seed:3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (Result, FaultReport) {
		tr, err := workload.NewTraceReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		d, err := BaselineFirewall(1)
		if err != nil {
			t.Fatal(err)
		}
		res, rep, err := d.RunTraceWithFaults(tr, 1, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res, rep
	}
	resA, repA := run()
	resB, repB := run()
	if !reflect.DeepEqual(resA, resB) || !reflect.DeepEqual(repA, repB) {
		t.Error("faulted replay is not deterministic")
	}
	if repA.LinkDropped == 0 {
		t.Error("replay saw no link drops")
	}
	if resA.LossFraction < 0.05 {
		t.Errorf("loss = %v, want ≥ link-loss floor", resA.LossFraction)
	}
}
