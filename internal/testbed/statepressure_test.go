package testbed

import (
	"fmt"
	"testing"

	"fairbench/internal/measure"
	"fairbench/internal/nf"
	"fairbench/internal/workload"
)

func pressureMeter(t *testing.T, probes []measure.StateProbe) *measure.StateMeter {
	t.Helper()
	sm := measure.NewStateMeter()
	for _, p := range probes {
		sm.AddProbe(p)
	}
	return sm
}

// TestRunScenarioHostStatePressure drives a SYN flood with
// never-repeating tuples into a small LRU conntrack: the table must
// fill, evict, and the meter must split goodput from throughput.
func TestRunScenarioHostStatePressure(t *testing.T) {
	d, probes, err := StatePressureHost("host", 1, nf.ConntrackConfig{MaxEntries: 256, Policy: nf.EvictLRU})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := workload.NewScenarioGen(workload.Scenario{
		Flows:       2048,
		TCPFraction: 0.5,
		SYNFlood:    &workload.FloodClause{Rate: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := pressureMeter(t, probes)
	if _, err := d.RunScenario(sg, workload.CBR{}, 2e6, testDuration, sm); err != nil {
		t.Fatal(err)
	}
	s, err := sm.Summarize(testDuration)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]bool{}
	for _, c := range s.Classes {
		classes[c.Class] = true
	}
	if !classes[string(workload.ClassLegit)] || !classes[string(workload.ClassFlood)] {
		t.Fatalf("classes = %+v, want legit and synflood", s.Classes)
	}
	if s.GoodputPps <= 0 || s.GoodputPps >= s.ThroughputPps {
		t.Errorf("goodput %v vs throughput %v: flood leakage should keep them apart", s.GoodputPps, s.ThroughputPps)
	}
	if len(s.Samples) == 0 {
		t.Fatal("no occupancy samples recorded")
	}
	ct := s.Tables[0]
	if ct.Name != "conntrack" || ct.PeakOccupancy != 256 {
		t.Errorf("conntrack probe = %+v, want full 256-entry table", ct)
	}
	if ct.Evictions == 0 {
		t.Error("LRU table under spoofed flood should evict")
	}
	stats := ConntrackStatsOf(d)
	if stats.Evicted == 0 || stats.NewFlows == 0 {
		t.Errorf("conntrack stats not attributed: %+v", stats)
	}
}

// TestRunScenarioDeterministic: identical scenario + seed + load give
// byte-identical results and state summaries across fresh deployments.
func TestRunScenarioDeterministic(t *testing.T) {
	run := func() (Result, string) {
		d, probes, err := StatePressureHost("host", 1, nf.ConntrackConfig{MaxEntries: 512, Policy: nf.EvictRandom, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sg, err := workload.NewScenarioGen(workload.Scenario{
			Flows:       4096,
			Skew:        1.1,
			TCPFraction: 0.3,
			Seed:        42,
			SYNFlood:    &workload.FloodClause{Rate: 0.2},
			Churn:       &workload.ChurnClause{Lifetime: testDuration / 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		sm := pressureMeter(t, probes)
		res, err := d.RunScenario(sg, workload.Poisson{}, 2e6, testDuration, sm)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sm.Summarize(testDuration)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.String()
	}
	r1, s1 := run()
	r2, s2 := run()
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Errorf("results differ:\n%+v\n%+v", r1, r2)
	}
	if s1 != s2 {
		t.Errorf("state summaries differ:\n%s\n%s", s1, s2)
	}
}

// TestRunScenarioFlashCrowdScalesOffered: a whole-run flash crowd at
// peak 2 should offer ~2x the packets of the flat scenario.
func TestRunScenarioFlashCrowdScalesOffered(t *testing.T) {
	offered := func(flash *workload.FlashClause) float64 {
		d, _, err := StatePressureHost("host", 2, nf.ConntrackConfig{MaxEntries: 4096, Policy: nf.EvictLRU})
		if err != nil {
			t.Fatal(err)
		}
		sg, err := workload.NewScenarioGen(workload.Scenario{Flows: 1024, Flash: flash})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.RunScenario(sg, workload.CBR{}, 1e6, testDuration, nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Offered.Packets)
	}
	flat := offered(nil)
	boosted := offered(&workload.FlashClause{At: 0, For: 10 * testDuration, Peak: 2})
	ratio := boosted / flat
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("flash-crowd offered ratio = %.2f, want ≈2", ratio)
	}
}

// TestRunScenarioOffloadTableOverflow: churned flows against a tiny
// EvictNone offload table must fill it and keep it full (no evictions),
// punting the overflow onto the host path — the degradation regime the
// state-pressure experiment leans on.
func TestRunScenarioOffloadTableOverflow(t *testing.T) {
	snic := ScenarioSmartNIC
	snic.FlowTableSize = 64
	snic.TableEvict = nf.EvictNone
	d, probes, err := StatePressureSmartNIC("snic", snic, nf.ConntrackConfig{MaxEntries: 8192, Policy: nf.EvictLRU})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := workload.NewScenarioGen(workload.Scenario{
		Flows: 4096,
		Churn: &workload.ChurnClause{Lifetime: testDuration / 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := pressureMeter(t, probes)
	if _, err := d.RunScenario(sg, workload.CBR{}, 2e6, testDuration, sm); err != nil {
		t.Fatal(err)
	}
	s, err := sm.Summarize(testDuration)
	if err != nil {
		t.Fatal(err)
	}
	offload := s.Tables[0]
	if offload.Name != "offload-table" {
		t.Fatalf("probe order changed: %+v", s.Tables)
	}
	if offload.PeakOccupancy != 64 {
		t.Errorf("offload table peak = %d, want full 64", offload.PeakOccupancy)
	}
	if offload.Evictions != 0 {
		t.Errorf("EvictNone table evicted %d entries", offload.Evictions)
	}
	if sn := d.SmartNIC(); sn.InstallRefused == 0 {
		t.Error("full EvictNone offload table should refuse installs")
	}
	// Punted flows land on the host conntrack.
	if s.Tables[1].PeakOccupancy == 0 {
		t.Error("host conntrack saw no punted flows")
	}
}

// TestRunScenarioRejectsBadParams covers the guard rails.
func TestRunScenarioRejectsBadParams(t *testing.T) {
	d, _, err := StatePressureHost("host", 1, nf.ConntrackConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := workload.NewScenarioGen(workload.Scenario{Flows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunScenario(sg, workload.CBR{}, 0, testDuration, nil); err == nil {
		t.Error("zero pps accepted")
	}
	if _, err := d.RunScenario(sg, workload.CBR{}, 1e6, 0, nil); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestRunScenarioMillionFlowsBoundedAndDeterministic is the
// internet-scale acceptance check: a 2^20-concurrent-flow Zipf
// population with flood and churn active runs under bounded state (the
// generator draws flows by index without materializing the population;
// the conntrack and offload tables stay at their configured bounds) and
// produces byte-identical summaries across fresh deployments.
func TestRunScenarioMillionFlowsBoundedAndDeterministic(t *testing.T) {
	sc := workload.Scenario{
		Flows:       1 << 20,
		Skew:        1.1,
		TCPFraction: 0.3,
		Seed:        5,
		SYNFlood:    &workload.FloodClause{Rate: 0.3},
		Churn:       &workload.ChurnClause{Lifetime: testDuration / 2},
	}
	const entries = 4096
	run := func() string {
		d, probes, err := StatePressureHost("host", 2, nf.ConntrackConfig{
			MaxEntries: entries, Policy: nf.EvictLRU, SYNCookies: true, Seed: sc.Seed})
		if err != nil {
			t.Fatal(err)
		}
		sg, err := workload.NewScenarioGen(sc)
		if err != nil {
			t.Fatal(err)
		}
		sm := pressureMeter(t, probes)
		res, err := d.RunScenario(sg, workload.Poisson{}, 4e6, testDuration, sm)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sm.Summarize(testDuration)
		if err != nil {
			t.Fatal(err)
		}
		// The table is sharded per core, so the deployment-wide bound is
		// cores x MaxEntries.
		const bound = 2 * entries
		if st := ConntrackStatsOf(d); st.Entries > bound || s.Tables[0].PeakOccupancy > bound {
			t.Fatalf("state exceeded its bound: %d entries, peak %d (cap %d)",
				st.Entries, s.Tables[0].PeakOccupancy, bound)
		}
		if s.GoodputPps <= 0 {
			t.Fatal("million-flow run delivered nothing")
		}
		return fmt.Sprintf("%+v\n%s", res, s)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("million-flow run not byte-identical across fresh deployments:\n%s\n---\n%s", a, b)
	}
}
