package testbed

import (
	"fmt"

	"fairbench/internal/hw"
	"fairbench/internal/measure"
	"fairbench/internal/nf"
	"fairbench/internal/sim"
	"fairbench/internal/workload"
)

// Scenario runs: internet-scale adversarial traffic against bounded
// state planes. RunScenario drives a workload.ScenarioGen through the
// deployment with the scenario's diurnal/flash-crowd rate curve applied
// to the offered load, per-class outcomes metered for the
// goodput-vs-throughput split, and every registered state table sampled
// over simulated time.

// stateSampleWindows is the number of occupancy samples taken across a
// scenario run — enough to draw a pressure curve, few enough to stay
// out of the hot path.
const stateSampleWindows = 48

// MeterState attaches a state-pressure meter for the next run. Probes
// should be registered on the meter before the run; a nil meter (the
// default) keeps the hot path class-blind.
func (d *Deployment) MeterState(sm *measure.StateMeter) { d.state = sm }

// armStateSampler schedules periodic table sampling up to the horizon.
func (d *Deployment) armStateSampler(horizon sim.Time) error {
	every := horizon.Seconds() / stateSampleWindows
	var tick func(at sim.Time) error
	tick = func(at sim.Time) error {
		if at > horizon {
			return nil
		}
		return d.s.At(at, func() {
			d.state.Sample(at.Seconds())
			_ = tick(at + sim.Time(every))
		})
	}
	return tick(sim.Time(every))
}

// RunScenario offers a scenario's traffic at offeredPps (scaled by the
// scenario's rate curve) for the given simulated duration. When sm is
// non-nil it receives per-class outcomes and periodic samples of its
// registered probes; summarize it with sm.Summarize(durationSeconds)
// after the run. Scenario frames alias the generator's templates; the
// deployment parses them synchronously, and MutatesFrames configs get
// private copies, exactly like Run.
func (d *Deployment) RunScenario(sg *workload.ScenarioGen, arrival workload.Arrival, offeredPps, durationSeconds float64, sm *measure.StateMeter) (Result, error) {
	if offeredPps <= 0 || durationSeconds <= 0 {
		return Result{}, fmt.Errorf("testbed: invalid scenario run params pps=%v duration=%v", offeredPps, durationSeconds)
	}
	d.state = sm
	hooks := &runHooks{
		rateFactor: func() float64 { return sg.RateFactor(d.s.Now().Seconds()) },
	}
	if sm != nil {
		hooks.prep = func(horizon sim.Time) error { return d.armStateSampler(horizon) }
	}
	return d.runInjected(arrival, offeredPps, durationSeconds, sg.ArrivalRNG(),
		func(tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) error {
			pk, class, err := sg.NextAt(d.s.Now().Seconds())
			if err != nil {
				return err
			}
			if d.cfg.MutatesFrames {
				pk.Frame = append([]byte(nil), pk.Frame...)
			}
			tput.Offer(len(pk.Frame))
			d.state.Offer(string(class), len(pk.Frame))
			d.dispatch(pk, tput, lat, fair)
			return nil
		}, hooks)
}

// StatePressureHost builds an n-core conntrack firewall over the
// canonical rules with explicit degradation semantics, and returns the
// probes exposing its connection table to state metering. ct.MaxEntries
// is the per-core bound (each core runs a shared-nothing instance);
// ct.Seed is decorrelated per core.
func StatePressureHost(name string, cores int, ct nf.ConntrackConfig) (*Deployment, []measure.StateProbe, error) {
	rules := FirewallRules(DefaultFillerRules)
	var cts []*nf.Conntrack
	d, err := New(Config{
		Name:         name,
		Cores:        cores,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		NICWatts:     ScenarioNICWatts,
		NewNF: func(core int) (nf.Func, error) {
			cfg := ct
			cfg.Seed = ct.Seed + uint64(core)
			c := nf.NewConntrackWith(fmt.Sprintf("ct-core%d", core), nf.NewLinearMatcher(rules), cfg)
			cts = append(cts, c)
			return c, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	probes := []measure.StateProbe{conntrackProbe(cts)}
	return d, probes, nil
}

// StatePressureSmartNIC builds the offload variant: one host core
// running the bounded conntrack firewall fronted by a SmartNIC whose
// offload table is the state plane under test. Probes cover both the
// offload table and the host connection table.
func StatePressureSmartNIC(name string, snic hw.SmartNICConfig, ct nf.ConntrackConfig) (*Deployment, []measure.StateProbe, error) {
	rules := FirewallRules(DefaultFillerRules)
	var cts []*nf.Conntrack
	d, err := New(Config{
		Name:         name,
		Cores:        1,
		CoreCfg:      ScenarioCore,
		ChassisWatts: ScenarioChassisWatts,
		SmartNIC:     &snic,
		NewNF: func(core int) (nf.Func, error) {
			cfg := ct
			cfg.Seed = ct.Seed + uint64(core)
			c := nf.NewConntrackWith(fmt.Sprintf("ct-core%d", core), nf.NewLinearMatcher(rules), cfg)
			cts = append(cts, c)
			return c, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	sn := d.SmartNIC()
	probes := []measure.StateProbe{
		{
			Name:      "offload-table",
			Capacity:  sn.Config().FlowTableSize,
			Occupancy: sn.FlowTableLen,
			Evictions: sn.Evicted,
		},
		conntrackProbe(cts),
	}
	return d, probes, nil
}

// conntrackProbe aggregates shared-nothing per-core connection tables
// into one probe (capacity and occupancy sum across cores).
func conntrackProbe(cts []*nf.Conntrack) measure.StateProbe {
	capacity := 0
	for _, c := range cts {
		capacity += c.MaxEntries()
	}
	return measure.StateProbe{
		Name:     "conntrack",
		Capacity: capacity,
		Occupancy: func() int {
			n := 0
			for _, c := range cts {
				n += c.Entries()
			}
			return n
		},
		Evictions: func() uint64 {
			var n uint64
			for _, c := range cts {
				n += c.Evicted()
			}
			return n
		},
	}
}

// ConntrackStatsOf sums the per-core connection-table statistics of a
// deployment built by the StatePressure constructors — the attributed
// overflow/eviction accounting the reports surface.
func ConntrackStatsOf(d *Deployment) nf.ConntrackStats {
	var out nf.ConntrackStats
	for _, f := range d.nfs {
		c, ok := f.(*nf.Conntrack)
		if !ok {
			continue
		}
		st := c.Stats()
		out.NewFlows += st.NewFlows
		out.FastPath += st.FastPath
		out.Dropped += st.Dropped
		out.OverflowDrops += st.OverflowDrops
		out.Evicted += st.Evicted
		out.EvictedEstablished += st.EvictedEstablished
		out.SYNCookiesSent += st.SYNCookiesSent
		out.CookieBypassed += st.CookieBypassed
		out.TableFull += st.TableFull
		out.Entries += st.Entries
		out.MaxEntries += st.MaxEntries
	}
	return out
}
