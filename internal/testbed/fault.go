package testbed

import (
	"fmt"

	"fairbench/internal/fault"
	"fairbench/internal/measure"
	"fairbench/internal/obs"
	"fairbench/internal/sim"
	"fairbench/internal/workload"
)

// Fault-injected runs: the deployment under a fault.Spec. The injector
// schedules fault windows as first-class simulation events; device
// faults actuate the hardware models through the plant adapter below,
// link faults and burst overload act on the ingress path, and an
// availability meter buckets offered traffic so the run reports
// degraded-regime figures of merit alongside the usual measurement.

// availWindows is how many availability buckets a faulted run's horizon
// is divided into. Fault windows in the scenario catalogue span ~10% of
// a run, so 40 buckets resolve onset, depth and recovery without
// drowning short runs in empty windows.
const availWindows = 40

// FaultReport is the fault-side outcome of a faulted run, alongside the
// usual Result.
type FaultReport struct {
	// Spec is the injected specification.
	Spec fault.Spec
	// Windows is the materialised fault schedule, in deterministic
	// order.
	Windows []fault.Window
	// Avail summarises per-window availability, degradation depth and
	// recovery time.
	Avail measure.AvailSummary
	// LinkDropped and LinkCorrupted count ingress link-fault casualties.
	LinkDropped, LinkCorrupted uint64
}

// plant adapts the deployment's device models to the injector's
// actuation interface. Targets absent from this deployment are no-ops:
// the fault spec describes the environment, and every compared system
// experiences the same environment regardless of which devices it has.
type plant struct{ d *Deployment }

func (p plant) SetDown(t fault.Target, down bool) {
	switch t {
	case fault.TargetCores:
		for _, c := range p.d.cores {
			c.SetDown(down)
		}
	case fault.TargetSmartNIC:
		if p.d.smartnic != nil {
			p.d.smartnic.SetDown(down)
			if down {
				// Firmware crash loses offload state: flows must be
				// re-vetted by the host and re-installed on recovery.
				p.d.smartnic.ResetTable()
			}
		}
	case fault.TargetSwitch:
		if p.d.sw != nil {
			p.d.sw.SetDown(down)
		}
	case fault.TargetFPGA:
		if p.d.fpga != nil {
			p.d.fpga.SetDown(down)
		}
	}
}

func (p plant) SetDerate(t fault.Target, factor float64) {
	switch t {
	case fault.TargetCores:
		for _, c := range p.d.cores {
			c.SetDerate(factor)
		}
	case fault.TargetSmartNIC:
		if p.d.smartnic != nil {
			p.d.smartnic.SetDerate(factor)
		}
	case fault.TargetSwitch:
		if p.d.sw != nil {
			p.d.sw.SetDerate(factor)
		}
	case fault.TargetFPGA:
		if p.d.fpga != nil {
			p.d.fpga.SetDerate(factor)
		}
	}
}

// faultSpanDevice labels the fault span's Device field: the targeted
// device class, or "ingress" for link/burst faults.
func faultSpanDevice(w fault.Window) string {
	if w.Target == fault.TargetNone {
		return "ingress"
	}
	return w.Target.String()
}

// armFaults attaches the availability meter, wires fault spans into the
// trace, and arms the injector's event schedule.
func (d *Deployment) armFaults(inj *fault.Injector, horizon sim.Time) error {
	am, err := measure.NewAvailabilityMeter(horizon.Seconds() / availWindows)
	if err != nil {
		return err
	}
	d.avail = am
	inj.OnTransition(func(w fault.Window, start bool) {
		ev := obs.Event{
			T:      d.s.Now().Seconds(),
			Device: faultSpanDevice(w),
			Verdict: fmt.Sprintf("%s sev=%g clause=%d",
				w.Kind, w.Severity, w.Clause),
		}
		if start {
			ev.Kind = "fault"
			ev.Dur = w.Duration()
		} else {
			ev.Kind = "fault-end"
		}
		d.tr.Emit(ev)
	})
	return inj.Arm(d.s, horizon.Seconds(), plant{d})
}

// RunWithFaults is Run under a fault specification. Link-dropped
// packets count as loss (the offered load included them; the DUT never
// saw them); corrupted frames reach the DUT and die in header
// validation; device outages and brownouts play out in the deployment's
// failover paths. An empty spec measures the healthy regime with the
// availability meter attached, so healthy and degraded runs report
// comparable figures.
func (d *Deployment) RunWithFaults(gen *workload.Generator, arrival workload.Arrival, offeredPps, durationSeconds float64, spec fault.Spec) (Result, FaultReport, error) {
	if offeredPps <= 0 || durationSeconds <= 0 {
		return Result{}, FaultReport{}, fmt.Errorf("testbed: invalid run params pps=%v duration=%v", offeredPps, durationSeconds)
	}
	inj, err := fault.NewInjector(spec)
	if err != nil {
		return Result{}, FaultReport{}, err
	}
	rep := FaultReport{Spec: spec}
	needCopy := d.cfg.MutatesFrames || spec.HasKind(fault.LinkCorrupt)
	hooks := &runHooks{
		prep:       func(horizon sim.Time) error { return d.armFaults(inj, horizon) },
		rateFactor: inj.RateFactor,
	}
	res, err := d.runInjected(arrival, offeredPps, durationSeconds, gen.ArrivalRNG(),
		func(tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) error {
			var pk workload.Pkt
			var err error
			if needCopy {
				pk, err = gen.NextCopy()
			} else {
				pk, err = gen.Next()
			}
			if err != nil {
				return err
			}
			tput.Offer(len(pk.Frame))
			if inj.DropArrival() {
				rep.LinkDropped++
				tput.Lose()
				// Offered but never resolvable: the arrival window
				// records it as lost service.
				d.avail.Offer(d.s.Now().Seconds())
				return nil
			}
			if idx, corrupt := inj.CorruptArrival(len(pk.Frame)); corrupt {
				rep.LinkCorrupted++
				pk.Frame[idx] ^= 0xff
			}
			d.dispatch(pk, tput, lat, fair)
			return nil
		}, hooks)
	if err != nil {
		return Result{}, FaultReport{}, err
	}
	rep.Windows = inj.Windows()
	rep.Avail, err = d.avail.Summarize(measure.DefaultAvailabilityThreshold)
	if err != nil {
		return Result{}, FaultReport{}, fmt.Errorf("testbed: %s: availability: %w", d.cfg.Name, err)
	}
	return res, rep, nil
}

// RunTraceWithFaults replays a recorded trace under a fault
// specification. Burst clauses are ignored: replay pacing comes from
// the recorded timestamps, which a burst multiplier must not rewrite
// (it would change which packets exist, not just when faults strike).
func (d *Deployment) RunTraceWithFaults(tr *workload.TraceReader, stretch float64, spec fault.Spec) (Result, FaultReport, error) {
	inj, err := fault.NewInjector(spec)
	if err != nil {
		return Result{}, FaultReport{}, err
	}
	return d.runTrace(tr, stretch, inj, spec)
}
