package testbed

import (
	"fmt"

	"fairbench/internal/nf"
	"fairbench/internal/workload"
)

// Profile targets: the saturation-delta profiler (internal/profile)
// measures per-operator cost by re-running a system's RFC 2544
// saturation search with one operator ablated at a time. A
// ProfileTarget packages everything the profiler needs to do that for
// one scenario system — a deployment factory that accepts stage
// ablations, a seeded workload factory, the catalogue of ablatable
// operators, and the search ceiling — without the profiler knowing how
// firewalls are assembled.

// ProfileStage describes one ablatable operator of a profile target.
type ProfileStage struct {
	// Name is the toggle passed in Make's ablate list (Stage* constant).
	Name string
	// Description says what ablating the operator removes.
	Description string
}

// ProfileTarget bundles one system for saturation-delta profiling.
type ProfileTarget struct {
	// System is the deployment name ("fw-smartnic").
	System string
	// Stages lists the ablatable operators, in report order.
	Stages []ProfileStage
	// MaxPps bounds the RFC 2544 saturation search.
	MaxPps float64
	// Make builds a fresh deployment with the named stages ablated
	// (nil/empty = full pipeline). Unknown names error with
	// ErrUnknownStage.
	Make func(ablate []string) (*Deployment, error)
	// Workload builds the target's canonical traffic for one seed.
	Workload func(seed uint64) (*workload.Generator, error)
}

// firewallRulesAblated applies the NF-level toggles to the canonical
// rule set and splits out the pipeline-level toggles for
// Config.AblateStages. Unknown toggles error.
func firewallRulesAblated(ablate []string) (rules []nf.Rule, pipeline []string, err error) {
	attack, filler := true, true
	for _, a := range ablate {
		switch a {
		case StageAttackRule:
			attack = false
		case StageFillerRules:
			filler = false
		case StageSmartNICFastPath, StageSwitchPredrop:
			pipeline = append(pipeline, a)
		default:
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownStage, a)
		}
	}
	n := DefaultFillerRules
	if !filler {
		n = 0
	}
	rules = FirewallRules(n)
	if !attack {
		// Drop rule 0: blocklisted traffic now walks the whole chain.
		rules = rules[1:]
	}
	return rules, pipeline, nil
}

// rejectPipeline errors when a host-only target is asked to ablate a
// pipeline stage it does not have.
func rejectPipeline(system string, pipeline []string) error {
	for _, p := range pipeline {
		return fmt.Errorf("%w: %s has no %q stage", ErrUnknownStage, system, p)
	}
	return nil
}

// nfStages is the operator catalogue shared by every firewall target.
func nfStages() []ProfileStage {
	return []ProfileStage{
		{Name: StageAttackRule, Description: "rule-0 early drop of blocklisted traffic"},
		{Name: StageFillerRules, Description: fmt.Sprintf("%d filler rules padding the linear scan", DefaultFillerRules)},
	}
}

// FirewallProfileTarget returns the profile target for one of the
// worked-example firewall systems: "host-1core", "host-2core",
// "smartnic" (§4.2) or "switch" (§4.2.1, 3 host cores, E7 traffic).
func FirewallProfileTarget(system string) (ProfileTarget, error) {
	hostTarget := func(cores int, maxPps float64) ProfileTarget {
		name := fmt.Sprintf("fw-host-%dcore", cores)
		return ProfileTarget{
			System: name,
			Stages: nfStages(),
			MaxPps: maxPps,
			Make: func(ablate []string) (*Deployment, error) {
				rules, pipeline, err := firewallRulesAblated(ablate)
				if err != nil {
					return nil, err
				}
				if err := rejectPipeline(name, pipeline); err != nil {
					return nil, err
				}
				return New(Config{
					Name:         name,
					Cores:        cores,
					CoreCfg:      ScenarioCore,
					ChassisWatts: ScenarioChassisWatts,
					NICWatts:     ScenarioNICWatts,
					NewNF:        firewallFactory(rules),
				})
			},
			Workload: E6Workload,
		}
	}
	switch system {
	case "host-1core":
		return hostTarget(1, 16e6), nil
	case "host-2core":
		return hostTarget(2, 24e6), nil
	case "smartnic":
		return ProfileTarget{
			System: "fw-smartnic",
			Stages: append(nfStages(), ProfileStage{
				Name:        StageSmartNICFastPath,
				Description: "SmartNIC flow-offload fast path (established flows bypass the host)",
			}),
			MaxPps: 24e6,
			Make: func(ablate []string) (*Deployment, error) {
				rules, pipeline, err := firewallRulesAblated(ablate)
				if err != nil {
					return nil, err
				}
				snic := ScenarioSmartNIC
				return New(Config{
					Name:         "fw-smartnic",
					Cores:        1,
					CoreCfg:      ScenarioCore,
					ChassisWatts: ScenarioChassisWatts,
					SmartNIC:     &snic,
					NewNF:        firewallFactory(rules),
					AblateStages: pipeline,
				})
			},
			Workload: E6Workload,
		}, nil
	case "switch":
		return ProfileTarget{
			System: "fw-switch-3core",
			Stages: append(nfStages(), ProfileStage{
				Name:        StageSwitchPredrop,
				Description: "in-network pre-drop of blocklisted traffic on the programmable switch",
			}),
			MaxPps: 48e6,
			Make: func(ablate []string) (*Deployment, error) {
				rules, pipeline, err := firewallRulesAblated(ablate)
				if err != nil {
					return nil, err
				}
				sw := ScenarioSwitch
				// The switch pre-drops with the attack rule, so the
				// NF-level attack-rule ablation empties the switch's
				// table too — the ablated pipeline must not keep the
				// operator in hardware that was removed from software.
				swRules := rules
				if len(swRules) > 0 && swRules[0].ID == 0 {
					swRules = swRules[:1]
				} else {
					swRules = nil
				}
				return New(Config{
					Name:         "fw-switch-3core",
					Cores:        3,
					CoreCfg:      ScenarioCore,
					ChassisWatts: ScenarioChassisWatts,
					NICWatts:     ScenarioNICWatts,
					Switch:       &sw,
					SwitchRules:  swRules,
					NewNF:        firewallFactory(rules),
					AblateStages: pipeline,
				})
			},
			Workload: E7Workload,
		}, nil
	default:
		return ProfileTarget{}, fmt.Errorf("testbed: no profile target for system %q (want host-1core, host-2core, smartnic, or switch)", system)
	}
}
