// Package testbed assembles simulated heterogeneous deployments — hosts
// with CPU cores, optionally fronted by a SmartNIC, a programmable
// switch, or an FPGA — runs traffic through their network functions,
// and reports measured performance (throughput, latency, loss,
// fairness) together with composed cost (power, end-to-end per
// Principle 3).
//
// A Deployment is the simulated stand-in for one of the paper's example
// systems: "software firewall on N cores", "firewall with SmartNIC
// offload", "firewall behind a programmable switch". Its Run method
// produces the (performance, cost) points the core methodology
// compares.
package testbed

import (
	"errors"
	"fmt"
	"time"

	"fairbench/internal/cost"
	"fairbench/internal/hw"
	"fairbench/internal/measure"
	"fairbench/internal/nf"
	"fairbench/internal/obs"
	"fairbench/internal/packet"
	"fairbench/internal/perf"
	"fairbench/internal/sim"
	"fairbench/internal/workload"
)

// Config describes a deployment.
type Config struct {
	// Name labels the deployment in reports.
	Name string
	// Cores is the number of host dataplane cores (default 1).
	Cores int
	// CoreCfg configures each core.
	CoreCfg hw.CPUConfig
	// ChassisWatts is the host's fixed power overhead (default 15 W).
	ChassisWatts float64
	// ChassisRackUnits is the host's rack occupancy (default 1).
	ChassisRackUnits float64
	// NICWatts is the regular NIC's power (default 5 W). Ignored when
	// a SmartNIC is configured (the SmartNIC replaces it).
	NICWatts float64
	// NICRateBps is the NIC line rate (default 100 Gb/s).
	NICRateBps float64

	// SmartNIC, when non-nil, adds a flow-offload SmartNIC.
	SmartNIC *hw.SmartNICConfig
	// Switch, when non-nil, adds a programmable-switch preprocessor
	// running SwitchRules.
	Switch      *hw.SwitchConfig
	SwitchRules []nf.Rule
	// FPGA, when non-nil, runs the whole network function in an FPGA
	// pipeline. Packets the pipeline cannot take (ingress overflow, or
	// an injected outage) spill to the host cores when Cores > 0;
	// with Cores == 0 they are counted as loss in the measured window.
	FPGA *hw.FPGAConfig

	// NewNF builds a network-function instance for core i. Each core
	// gets its own instance (shared-nothing, as real dataplanes do).
	// Required unless FPGA is set, in which case a single functional
	// instance provides verdicts.
	NewNF func(core int) (nf.Func, error)

	// MutatesFrames must be set when the NF rewrites packets (NAT,
	// LB) so the harness hands it private frame copies.
	MutatesFrames bool

	// AblateStages names pipeline stages to disable for this
	// deployment — the saturation-delta profiler's stage toggles. An
	// ablated device stays in the bill of materials (its power is still
	// provisioned and drawn); only its dataplane function is switched
	// off, so a delta against the full pipeline isolates the *function's*
	// contribution. Recognized names: StageSmartNICFastPath (all traffic
	// takes the host slow path) and StageSwitchPredrop (the switch stops
	// preprocessing). NF-level operators are ablated by the scenario
	// constructors instead (see FirewallProfileTarget). Naming a stage
	// the configuration does not include is an error wrapping
	// ErrUnknownStage.
	AblateStages []string
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 && c.FPGA == nil {
		c.Cores = 1
	}
	if c.ChassisWatts == 0 {
		c.ChassisWatts = 15
	}
	if c.ChassisRackUnits == 0 {
		c.ChassisRackUnits = 1
	}
	if c.NICWatts == 0 {
		c.NICWatts = 5
	}
	if c.NICRateBps == 0 {
		c.NICRateBps = 100e9
	}
	return c
}

// Stage toggle names understood by Config.AblateStages and the
// firewall profile targets. The pipeline toggles disable a device's
// dataplane function while keeping the device provisioned; the NF-level
// toggles are interpreted by the scenario constructors, which rebuild
// the rule set.
const (
	// StageSmartNICFastPath disables the SmartNIC flow-offload fast
	// path: no lookups, no installs, every packet takes the host slow
	// path.
	StageSmartNICFastPath = "smartnic-fastpath"
	// StageSwitchPredrop disables the programmable switch's
	// preprocessing stage (as if the switch carried no rules).
	StageSwitchPredrop = "switch-predrop"
	// StageAttackRule removes the firewall's rule-0 early drop of
	// blocklisted traffic (NF-level; see FirewallProfileTarget).
	StageAttackRule = "fw-attack-rule"
	// StageFillerRules removes the firewall's filler rules, collapsing
	// the linear scan to its minimum depth (NF-level).
	StageFillerRules = "fw-filler-rules"
)

// ErrUnknownStage is the typed error for an ablation toggle the target
// pipeline does not have.
var ErrUnknownStage = errors.New("testbed: unknown ablatable stage")

// Deployment is an assembled system ready to run traffic.
type Deployment struct {
	cfg Config
	s   *sim.Sim

	// offSmartNIC and offSwitch record pipeline-stage ablations
	// (Config.AblateStages).
	offSmartNIC bool
	offSwitch   bool

	chassis  *hw.Chassis
	nic      *hw.NIC
	cores    []*hw.Core
	smartnic *hw.SmartNIC
	sw       *hw.Switch
	fpga     *hw.FPGA

	nfs     []nf.Func
	parsers []*packet.Parser

	// tr is the optional observability tracer; nil (the default) keeps
	// the hot path free of tracing work.
	tr          *obs.Tracer
	sampleEvery float64

	// avail is the optional per-window availability meter faulted runs
	// attach; nil (the default) keeps the hot path free of bucketing.
	avail *measure.AvailabilityMeter

	// state is the optional per-class state-pressure meter scenario
	// runs attach; nil (the default) keeps the hot path class-blind.
	state *measure.StateMeter
}

// New assembles a deployment.
func New(cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	if cfg.NewNF == nil {
		return nil, fmt.Errorf("testbed: %s: NewNF is required", cfg.Name)
	}
	if cfg.Cores < 0 {
		return nil, fmt.Errorf("testbed: %s: negative core count", cfg.Name)
	}
	if cfg.FPGA != nil && (cfg.SmartNIC != nil || cfg.Switch != nil) {
		return nil, fmt.Errorf("testbed: %s: FPGA deployments cannot also have SmartNIC/switch", cfg.Name)
	}
	d := &Deployment{cfg: cfg, s: sim.New()}
	d.chassis = hw.NewChassis(cfg.Name+"/chassis", cfg.ChassisWatts, cfg.ChassisRackUnits)

	nInstances := cfg.Cores
	if cfg.FPGA != nil && nInstances == 0 {
		nInstances = 1 // functional instance for verdicts
	}
	for i := 0; i < nInstances; i++ {
		f, err := cfg.NewNF(i)
		if err != nil {
			return nil, fmt.Errorf("testbed: %s: building NF for core %d: %w", cfg.Name, i, err)
		}
		d.nfs = append(d.nfs, f)
		d.parsers = append(d.parsers, packet.NewParser())
	}
	for i := 0; i < cfg.Cores; i++ {
		d.cores = append(d.cores, hw.NewCore(fmt.Sprintf("%s/core%d", cfg.Name, i), d.s, cfg.CoreCfg))
	}
	switch {
	case cfg.SmartNIC != nil:
		d.smartnic = hw.NewSmartNIC(cfg.Name+"/smartnic", d.s, *cfg.SmartNIC)
	default:
		d.nic = hw.NewNIC(cfg.Name+"/nic", cfg.NICRateBps, cfg.NICWatts)
	}
	if cfg.Switch != nil {
		d.sw = hw.NewSwitch(cfg.Name+"/switch", *cfg.Switch)
		d.sw.InstallRules(cfg.SwitchRules)
	}
	if cfg.FPGA != nil {
		d.fpga = hw.NewFPGA(cfg.Name+"/fpga", d.s, *cfg.FPGA)
	}
	for _, st := range cfg.AblateStages {
		switch st {
		case StageSmartNICFastPath:
			if d.smartnic == nil {
				return nil, fmt.Errorf("%w: %s: %q needs a SmartNIC", ErrUnknownStage, cfg.Name, st)
			}
			d.offSmartNIC = true
		case StageSwitchPredrop:
			if d.sw == nil {
				return nil, fmt.Errorf("%w: %s: %q needs a switch", ErrUnknownStage, cfg.Name, st)
			}
			d.offSwitch = true
		default:
			return nil, fmt.Errorf("%w: %s: %q", ErrUnknownStage, cfg.Name, st)
		}
	}
	return d, nil
}

// Name returns the deployment name.
func (d *Deployment) Name() string { return d.cfg.Name }

// Devices lists every powered component, in a stable order.
func (d *Deployment) Devices() []hw.Device {
	out := []hw.Device{d.chassis}
	if d.nic != nil {
		out = append(out, d.nic)
	}
	if d.smartnic != nil {
		out = append(out, d.smartnic)
	}
	for _, c := range d.cores {
		out = append(out, c)
	}
	if d.sw != nil {
		out = append(out, d.sw)
	}
	if d.fpga != nil {
		out = append(out, d.fpga)
	}
	return out
}

// Components returns the cost components for end-to-end composition.
func (d *Deployment) Components() []cost.Component {
	return hw.ComponentsOf(d.Devices()...)
}

// ProvisionedPowerWatts composes peak power across all devices.
func (d *Deployment) ProvisionedPowerWatts() (float64, error) {
	return hw.TotalPowerWatts(d.Devices()...)
}

// SmartNIC exposes the SmartNIC model (nil if absent) for tests.
func (d *Deployment) SmartNIC() *hw.SmartNIC { return d.smartnic }

// Switch exposes the switch model (nil if absent) for tests.
func (d *Deployment) Switch() *hw.Switch { return d.sw }

// FPGA exposes the FPGA model (nil if absent) for tests.
func (d *Deployment) FPGA() *hw.FPGA { return d.fpga }

// kernelTraceEvery throttles kernel progress events: one record per
// this many executed simulation events keeps traces compact while still
// showing virtual-clock progress and queue depth.
const kernelTraceEvery = 256

// Observe attaches an observability tracer to the deployment. Call it
// before Run/RunTrace. The trace records per-packet lifecycle spans
// with a per-stage latency breakdown and kernel progress; when
// sampleEvery > 0, a deterministic periodic sampler additionally
// records per-device utilization, queue depth and instantaneous power
// every sampleEvery seconds of virtual time. A nil tracer (the
// default) leaves the hot path untouched.
func (d *Deployment) Observe(tr *obs.Tracer, sampleEvery float64) {
	d.tr = tr
	d.sampleEvery = sampleEvery
}

// Tracer returns the attached tracer (nil when untraced).
func (d *Deployment) Tracer() *obs.Tracer { return d.tr }

// armObs installs the kernel hook and sampler for a traced run.
func (d *Deployment) armObs(horizon sim.Time) {
	if d.tr == nil {
		return
	}
	d.tr.Emit(obs.Event{T: d.s.Now().Seconds(), Kind: "run", Device: d.cfg.Name})
	d.s.SetTrace(obs.KernelHook(d.tr), kernelTraceEvery)
	if d.sampleEvery > 0 {
		// Scheduling the first tick can only fail for an invalid
		// period, which the Sampler reports; surface it as a trace
		// error rather than failing the measurement.
		sampler := obs.NewSampler(d.tr, d.sampleEvery, d.obsSources()...)
		_ = sampler.Arm(d.s, horizon.Seconds())
	}
}

// finishObs closes out a traced run.
func (d *Deployment) finishObs(end sim.Time) {
	if d.tr == nil {
		return
	}
	d.tr.Emit(obs.Event{T: end.Seconds(), Kind: "run-end", Events: d.s.Processed()})
}

// obsSources builds the sampler probes in the same stable order as
// Devices().
func (d *Deployment) obsSources() []obs.Source {
	out := []obs.Source{{
		Name: d.chassis.Name(), IdleWatts: d.chassis.Watts, ActiveWatts: d.chassis.Watts,
	}}
	if d.nic != nil {
		out = append(out, obs.Source{Name: d.nic.Name(), IdleWatts: d.nic.Watts, ActiveWatts: d.nic.Watts})
	}
	if d.smartnic != nil {
		cfg := d.smartnic.Config()
		out = append(out, obs.Source{
			Name: d.smartnic.Name(), Busy: d.smartnic.BusySeconds, Queue: d.smartnic.BacklogPackets,
			IdleWatts: cfg.IdleWatts, ActiveWatts: cfg.ActiveWatts,
		})
	}
	for _, c := range d.cores {
		cfg := c.Config()
		out = append(out, obs.Source{
			Name: c.Name(), Busy: c.BusySeconds, Queue: c.QueueLen,
			IdleWatts: cfg.IdleWatts, ActiveWatts: cfg.ActiveWatts,
		})
	}
	if d.sw != nil {
		w := d.sw.Config().Watts
		out = append(out, obs.Source{Name: d.sw.Name(), IdleWatts: w, ActiveWatts: w})
	}
	if d.fpga != nil {
		cfg := d.fpga.Config()
		out = append(out, obs.Source{
			Name: d.fpga.Name(), Busy: d.fpga.BusySeconds, Queue: d.fpga.BacklogPackets,
			IdleWatts: cfg.IdleWatts, ActiveWatts: cfg.ActiveWatts,
		})
	}
	return out
}

// startSpan opens a packet lifecycle span (nil when untraced).
func (d *Deployment) startSpan() *obs.Span {
	return d.tr.StartSpan(d.s.Now().Seconds())
}

// spanSojourn attributes a device sojourn to the span's standard
// stages: queueing, service, and fixed I/O latency.
func spanSojourn(sp *obs.Span, so hw.Sojourn) {
	sp.Stage("queue", so.WaitSeconds)
	sp.Stage("service", so.ServiceSeconds)
	sp.Stage("io", so.FixedSeconds)
}

// verdictLabel renders an NF verdict for trace events.
func verdictLabel(forwarded bool) string {
	if forwarded {
		return "forward"
	}
	return "drop"
}

// Result is the measured outcome of a Run.
type Result struct {
	Name     string
	Duration time.Duration

	Offered, Processed, Forwarded perf.Throughput
	LossFraction                  float64

	LatencyMeanUs, LatencyP50Us, LatencyP99Us float64
	JFI                                       float64

	// AvgPowerWatts integrates each device's energy over the run.
	AvgPowerWatts float64
	// ProvisionedPowerWatts is the peak-power cost figure (the number
	// the paper's examples report).
	ProvisionedPowerWatts float64
	// PerDeviceAvgWatts itemises average power.
	PerDeviceAvgWatts map[string]float64
}

// Run offers traffic at offeredPps for the given simulated duration and
// returns the measurement. Each call uses a fresh simulation clock; a
// Deployment should be Run once (build a new one per experiment point).
func (d *Deployment) Run(gen *workload.Generator, arrival workload.Arrival, offeredPps, durationSeconds float64) (Result, error) {
	if offeredPps <= 0 || durationSeconds <= 0 {
		return Result{}, fmt.Errorf("testbed: invalid run params pps=%v duration=%v", offeredPps, durationSeconds)
	}
	return d.runInjected(arrival, offeredPps, durationSeconds, gen.ArrivalRNG(),
		func(tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) error {
			var pk workload.Pkt
			var err error
			if d.cfg.MutatesFrames {
				pk, err = gen.NextCopy()
			} else {
				pk, err = gen.Next()
			}
			if err != nil {
				return err
			}
			tput.Offer(len(pk.Frame))
			d.dispatch(pk, tput, lat, fair)
			return nil
		}, nil)
}

// injector produces and offers one packet per arrival event.
type injector func(*measure.ThroughputMeter, *measure.LatencyMeter, *measure.FairnessMeter) error

// runHooks customises runInjected for faulted runs.
type runHooks struct {
	// prep runs after observability is armed and before arrivals are
	// scheduled — where the fault injector arms its event schedule.
	prep func(horizon sim.Time) error
	// rateFactor scales the offered rate at each arrival (burst
	// overload); nil means a constant factor of 1.
	rateFactor func() float64
}

// runInjected drives the arrival process, calling inject per arrival,
// then drains and collects the measurement. hooks may be nil.
func (d *Deployment) runInjected(arrival workload.Arrival, offeredPps, durationSeconds float64, arrRng *sim.RNG, inject injector, hooks *runHooks) (Result, error) {
	var (
		tput    measure.ThroughputMeter
		lat     = measure.NewLatencyMeter()
		fair    = measure.NewFairnessMeter()
		horizon = sim.Time(durationSeconds)
		injErr  error
	)
	tput.Start(0)
	d.armObs(horizon)
	if hooks != nil && hooks.prep != nil {
		if err := hooks.prep(horizon); err != nil {
			return Result{}, err
		}
	}
	rate := func() float64 { return offeredPps }
	if hooks != nil && hooks.rateFactor != nil {
		rate = func() float64 { return offeredPps * hooks.rateFactor() }
	}

	var schedule func(at sim.Time)
	schedule = func(at sim.Time) {
		if at > horizon {
			return
		}
		if err := d.s.At(at, func() {
			if err := inject(&tput, lat, fair); err != nil && injErr == nil {
				injErr = err
				d.s.Halt()
				return
			}
			schedule(at + sim.Time(arrival.NextGap(arrRng, rate())))
		}); err != nil && injErr == nil {
			injErr = err
		}
	}
	schedule(sim.Time(arrival.NextGap(arrRng, rate())))

	// Run past the horizon so in-flight packets drain (bounded by the
	// largest plausible queueing delay).
	d.s.Run(horizon + 1)
	if injErr != nil {
		return Result{}, injErr
	}
	tput.Stop(horizon)
	return d.collect(&tput, lat, fair, horizon)
}

// collect assembles the Result from the meters and device energy.
func (d *Deployment) collect(tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter, end sim.Time) (Result, error) {
	if end <= 0 {
		// Run/RunTrace validate durations, so this is defensive: a
		// zero-length window must not divide energy by zero below.
		return Result{}, fmt.Errorf("testbed: %s: empty measurement window", d.cfg.Name)
	}
	d.finishObs(end)
	res := Result{
		Name:          d.cfg.Name,
		Duration:      end.Duration(),
		Offered:       tput.Offered(),
		Processed:     tput.Processed(),
		Forwarded:     tput.Forwarded(),
		LossFraction:  tput.LossFraction(),
		LatencyMeanUs: lat.Summary().Mean / 1e3,
		LatencyP50Us:  lat.P50Micros(),
		LatencyP99Us:  lat.P99Micros(),
		JFI:           fair.JFI(),
	}
	var energy float64
	res.PerDeviceAvgWatts = make(map[string]float64)
	for _, dev := range d.Devices() {
		e := dev.EnergyJoules(end)
		energy += e
		res.PerDeviceAvgWatts[dev.Name()] = e / end.Seconds()
	}
	res.AvgPowerWatts = energy / end.Seconds()
	var err error
	res.ProvisionedPowerWatts, err = d.ProvisionedPowerWatts()
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// dispatch pushes one offered packet through the deployment's path.
// When a tracer is attached, every packet gets a lifecycle span whose
// stage durations sum to the latency the meters record. Offload devices
// degrade gracefully: a downed switch fails open (the host firewall
// still holds the full rule set), and FPGA overflow or outage spills to
// the host cores when there are any — traffic is only lost when no
// component can take it.
func (d *Deployment) dispatch(pk workload.Pkt, tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) {
	size := len(pk.Frame)
	arrived := d.s.Now().Seconds()
	d.avail.Offer(arrived)
	extraLatency := 0.0
	sp := d.startSpan()

	// Stage 1: programmable switch preprocessing at line rate. A downed
	// switch is bypassed (fail-open), leaving all classification to the
	// host.
	if d.sw != nil && !d.offSwitch && !d.sw.Down() {
		verdict, swLat := d.sw.Process(pk.Flow)
		sp.Stage("switch", swLat)
		if verdict == nf.Drop {
			// Pre-dropped in-network: processed work, not forwarded.
			tput.Process(size, false)
			d.avail.Resolve(arrived, true)
			d.state.Drop(string(pk.Class))
			_ = lat.RecordSeconds(swLat)
			sp.End(d.sw.Name(), "drop")
			return
		}
		extraLatency += swLat
	}

	// Stage 2: FPGA full offload; overflow, flow-table punts and outage
	// fail over to the host slow path when cores exist.
	if d.fpga != nil {
		verdict := d.functionalVerdict(pk)
		if !d.fpga.SubmitFlow(pk.Flow, func(so hw.Sojourn) {
			forwarded := verdict != nf.Drop
			tput.Process(size, forwarded)
			d.avail.Resolve(arrived, true)
			if forwarded {
				d.state.Deliver(string(pk.Class), size)
				fair.Record(pk.Flow, size)
			} else {
				d.state.Drop(string(pk.Class))
			}
			_ = lat.RecordSeconds(so.Total() + extraLatency)
			spanSojourn(sp, so)
			sp.End(d.fpga.Name(), verdictLabel(forwarded))
		}) {
			if len(d.cores) > 0 {
				d.hostPath(pk, size, extraLatency, sp, tput, lat, fair)
				return
			}
			tput.Lose()
			d.avail.Resolve(arrived, false)
			d.state.Lose(string(pk.Class))
			sp.End(d.fpga.Name(), "loss")
		}
		return
	}

	// Stage 3: SmartNIC fast path for established flows. Saturation,
	// table misses and outages all punt to the host slow path.
	if d.smartnic != nil && !d.offSmartNIC {
		flow := pk.Flow
		if d.smartnic.Offload(flow, func(so hw.Sojourn) {
			tput.Process(size, true)
			d.avail.Resolve(arrived, true)
			d.state.Deliver(string(pk.Class), size)
			fair.Record(flow, size)
			_ = lat.RecordSeconds(so.Total() + extraLatency)
			spanSojourn(sp, so)
			sp.End(d.smartnic.Name(), "forward")
		}) {
			return
		}
	}

	// Stage 4: host slow path.
	d.hostPath(pk, size, extraLatency, sp, tput, lat, fair)
}

// hostPath runs the NF on the packet's RSS core.
func (d *Deployment) hostPath(pk workload.Pkt, size int, extraLatency float64, sp *obs.Span, tput *measure.ThroughputMeter, lat *measure.LatencyMeter, fair *measure.FairnessMeter) {
	arrived := d.s.Now().Seconds()
	if len(d.cores) == 0 {
		tput.Lose()
		d.avail.Resolve(arrived, false)
		d.state.Lose(string(pk.Class))
		sp.End("host", "loss")
		return
	}
	coreID := hw.RSS(pk.Flow, len(d.cores))
	core := d.cores[coreID]
	parser := d.parsers[coreID]
	if err := parser.Parse(pk.Frame); err != nil {
		tput.Lose()
		d.avail.Resolve(arrived, false)
		d.state.Lose(string(pk.Class))
		sp.End(core.Name(), "loss")
		return
	}
	res, err := d.nfs[coreID].Process(parser, pk.Frame)
	if err != nil {
		tput.Lose()
		d.avail.Resolve(arrived, false)
		d.state.Lose(string(pk.Class))
		sp.End(core.Name(), "loss")
		return
	}
	flow := pk.Flow
	class := string(pk.Class)
	ok := core.Submit(res.Cycles, func(so hw.Sojourn) {
		forwarded := res.Verdict != nf.Drop
		tput.Process(size, forwarded)
		d.avail.Resolve(arrived, true)
		if forwarded {
			d.state.Deliver(class, size)
			fair.Record(flow, size)
		} else {
			d.state.Drop(class)
		}
		_ = lat.RecordSeconds(so.Total() + extraLatency)
		spanSojourn(sp, so)
		sp.End(core.Name(), verdictLabel(forwarded))
		// Install the offload entry once the host has vetted the flow.
		if d.smartnic != nil && !d.offSmartNIC && forwarded {
			d.smartnic.Install(flow)
		}
	})
	if !ok {
		tput.Lose()
		d.avail.Resolve(arrived, false)
		d.state.Lose(class)
		sp.End(core.Name(), "loss")
	}
}

// functionalVerdict evaluates the NF logic for the FPGA path (the
// pipeline implements the same function in hardware; we reuse the Go
// implementation for the decision while the FPGA model provides
// timing).
func (d *Deployment) functionalVerdict(pk workload.Pkt) nf.Verdict {
	parser := d.parsers[0]
	if err := parser.Parse(pk.Frame); err != nil {
		return nf.Drop
	}
	res, err := d.nfs[0].Process(parser, pk.Frame)
	if err != nil {
		return nf.Drop
	}
	return res.Verdict
}
