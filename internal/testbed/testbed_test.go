package testbed

import (
	"math"
	"testing"

	"fairbench/internal/cost"
	"fairbench/internal/hw"
	"fairbench/internal/metric"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/workload"
)

const testDuration = 0.02 // seconds of simulated time per run

func e6gen(t *testing.T) *workload.Generator {
	t.Helper()
	g, err := E6Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBaselinePowerMatchesPaper(t *testing.T) {
	for _, tc := range []struct {
		cores int
		want  float64
	}{{1, 50}, {2, 80}} {
		d, err := BaselineFirewall(tc.cores)
		if err != nil {
			t.Fatal(err)
		}
		w, err := d.ProvisionedPowerWatts()
		if err != nil {
			t.Fatal(err)
		}
		if w != tc.want {
			t.Errorf("%d-core baseline power = %v W, want %v (paper §4.2)", tc.cores, w, tc.want)
		}
	}
}

func TestSmartNICPowerMatchesPaper(t *testing.T) {
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.ProvisionedPowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if w != 70 {
		t.Errorf("SmartNIC system power = %v W, want 70 (paper §4.2)", w)
	}
}

func TestSwitchPowerMatchesPaper(t *testing.T) {
	d, err := SwitchFirewall(3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.ProvisionedPowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if w != 200 {
		t.Errorf("switch system power = %v W, want 200 (paper §4.2.1)", w)
	}
}

func TestBaselineRunUnderloaded(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(e6gen(t), workload.CBR{}, 1e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("1 Mpps on a ~3 Mpps core lost %.2f%%", res.LossFraction*100)
	}
	if math.Abs(res.Processed.PacketsPerSecond()-1e6) > 5e4 {
		t.Errorf("processed = %v pps, want ≈1M", res.Processed.PacketsPerSecond())
	}
	// Forwarded < processed: attack traffic is policy-dropped.
	if res.Forwarded.Packets >= res.Processed.Packets {
		t.Error("policy drops should make forwarded < processed")
	}
	if res.LatencyP50Us <= 0 {
		t.Error("latency should be measured")
	}
	if res.AvgPowerWatts <= 0 || res.AvgPowerWatts > res.ProvisionedPowerWatts {
		t.Errorf("avg power %v vs provisioned %v", res.AvgPowerWatts, res.ProvisionedPowerWatts)
	}
}

func TestBaselineRunOverloaded(t *testing.T) {
	d, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(e6gen(t), workload.CBR{}, 8e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.3 {
		t.Errorf("8 Mpps on a ~3 Mpps core should lose heavily; loss = %.2f%%", res.LossFraction*100)
	}
	// The core saturates: processed rate well below offered.
	if res.Processed.PacketsPerSecond() > 4.5e6 {
		t.Errorf("processed %v pps exceeds plausible single-core capacity", res.Processed.PacketsPerSecond())
	}
}

func TestTwoCoresDoubleCapacity(t *testing.T) {
	run := func(cores int) float64 {
		d, err := BaselineFirewall(cores)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(e6gen(t), workload.CBR{}, 12e6, testDuration)
		if err != nil {
			t.Fatal(err)
		}
		return res.Processed.PacketsPerSecond()
	}
	one, two := run(1), run(2)
	ratio := two / one
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2-core/1-core capacity ratio = %.2f, want ≈2", ratio)
	}
}

func TestSmartNICBeatsBaselineThroughput(t *testing.T) {
	base, err := BaselineFirewall(1)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run(e6gen(t), workload.CBR{}, 8e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	accelRes, err := accel.Run(e6gen(t), workload.CBR{}, 8e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	ratio := accelRes.Processed.PacketsPerSecond() / baseRes.Processed.PacketsPerSecond()
	if ratio < 1.5 {
		t.Errorf("SmartNIC speedup = %.2fx, want >= 1.5x (paper: ≈2x)", ratio)
	}
	if accel.SmartNIC().Offloaded == 0 {
		t.Error("fast path never used")
	}
}

func TestSwitchPreFilteringOffloadsHost(t *testing.T) {
	g, err := E7Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := SwitchFirewall(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(g, workload.CBR{}, 20e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if d.Switch().PreDropped == 0 {
		t.Fatal("switch never dropped attack traffic")
	}
	dropFrac := float64(d.Switch().PreDropped) / float64(d.Switch().PreDropped+d.Switch().Passed)
	if math.Abs(dropFrac-0.75) > 0.05 {
		t.Errorf("switch pre-drop fraction = %.2f, want ≈0.75", dropFrac)
	}
	// The whole 20 Mpps offered load is processed with little loss
	// because 75% never reaches the host.
	if res.LossFraction > 0.02 {
		t.Errorf("loss with switch preprocessing = %.2f%%", res.LossFraction*100)
	}

	// The host-only baseline at the same load must collapse.
	g2, _ := E7Workload(1)
	host, err := BaselineFirewall(3)
	if err != nil {
		t.Fatal(err)
	}
	hostRes, err := host.Run(g2, workload.CBR{}, 20e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if hostRes.LossFraction < 0.3 {
		t.Errorf("host-only at 20 Mpps should overload; loss = %.2f%%", hostRes.LossFraction*100)
	}
}

func TestFPGALowFixedLatency(t *testing.T) {
	d, err := FPGAFirewall(hw.FPGAConfig{CapacityPps: 20e6, PipelineLatencySeconds: 1e-6, ActiveWatts: 45})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(e6gen(t), workload.CBR{}, 2e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("FPGA underloaded loss = %v", res.LossFraction)
	}
	if res.LatencyP99Us > 2 {
		t.Errorf("FPGA p99 latency = %v µs, want ≈1µs fixed pipeline", res.LatencyP99Us)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		d, err := BaselineFirewall(1)
		if err != nil {
			t.Fatal(err)
		}
		g := e6gen(t)
		res, err := d.Run(g, workload.Poisson{}, 2e6, testDuration)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Processed.Packets != b.Processed.Packets || a.LatencyP99Us != b.LatencyP99Us || a.AvgPowerWatts != b.AvgPowerWatts {
		t.Errorf("same seed must reproduce identical results:\n%+v\n%+v", a, b)
	}
}

func TestCostVectorCoverage(t *testing.T) {
	// The SmartNIC deployment's components all report power; cores
	// metric fails coverage once the SmartNIC is present.
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	comps := d.Components()
	names := []string{metric.MetricPower, metric.MetricCores}
	cov := costCoverage(names, comps)
	if !cov[metric.MetricPower] {
		t.Error("power must cover the whole deployment")
	}
	if cov[metric.MetricCores] {
		t.Error("cores cannot cover a deployment containing a SmartNIC")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Error("missing NewNF should fail")
	}
	nfFactory := firewallFactory(FirewallRules(1))
	if _, err := New(Config{Name: "x", Cores: -1, NewNF: nfFactory}); err == nil {
		t.Error("negative cores should fail")
	}
	fpga, snic := hw.FPGAConfig{}, hw.SmartNICConfig{}
	if _, err := New(Config{Name: "x", FPGA: &fpga, SmartNIC: &snic, NewNF: nfFactory}); err == nil {
		t.Error("FPGA+SmartNIC should fail")
	}
	d, err := New(Config{Name: "x", NewNF: nfFactory})
	if err != nil {
		t.Fatal(err)
	}
	g := e6gen(t)
	if _, err := d.Run(g, workload.CBR{}, 0, 1); err == nil {
		t.Error("zero pps should fail")
	}
	if _, err := d.Run(g, workload.CBR{}, 1, -1); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestMutatingNFDeployment(t *testing.T) {
	// A NAT deployment must see valid frames and keep them valid; the
	// harness hands it copies so generator templates stay pristine.
	d, err := New(Config{
		Name:          "nat-host",
		Cores:         1,
		CoreCfg:       ScenarioCore,
		ChassisWatts:  ScenarioChassisWatts,
		NICWatts:      ScenarioNICWatts,
		MutatesFrames: true,
		NewNF: func(core int) (nf.Func, error) {
			return nf.NewNAT("nat", packet.Addr4{203, 0, 113, 7}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(workload.Spec{Flows: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(g, workload.CBR{}, 1e6, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction > 0.001 {
		t.Errorf("NAT run loss = %v", res.LossFraction)
	}
	if res.Forwarded.Packets != res.Processed.Packets {
		t.Error("NAT forwards everything it processes")
	}
	// Generator templates must still parse (not corrupted by rewrites).
	p := packet.NewParser()
	for i := 0; i < 100; i++ {
		pk, _ := g.Next()
		if err := p.Parse(pk.Frame); err != nil {
			t.Fatalf("template corrupted by in-place rewrite: %v", err)
		}
	}
}

// costCoverage adapts cost.Coverage for brevity in tests.
func costCoverage(names []string, comps []cost.Component) map[string]bool {
	covered := make(map[string]bool, len(names))
	for _, n := range names {
		ok := len(comps) > 0
		for _, c := range comps {
			if _, present := c.Costs[n]; !present {
				ok = false
				break
			}
		}
		covered[n] = ok
	}
	return covered
}
