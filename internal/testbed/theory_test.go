package testbed

import (
	"math"
	"testing"

	"fairbench/internal/hw"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/workload"
)

// Validation against queueing theory: the simulator's core model is a
// single-server FIFO queue, so with Poisson arrivals and deterministic
// service it must reproduce M/D/1 behaviour, and with constant-rate
// arrivals, D/D/1. Matching closed-form results is the strongest
// correctness evidence a simulator can offer.

// constantCostNF charges a fixed cycle cost regardless of content, so
// service times are deterministic.
type constantCostNF struct{ cycles uint64 }

func (c constantCostNF) Name() string { return "constant" }
func (c constantCostNF) Process(*packet.Parser, []byte) (nf.Result, error) {
	return nf.Result{Verdict: nf.Accept, Cycles: c.cycles}, nil
}

// theoryDeployment builds a 1-core deployment with deterministic
// service time and no fixed host latency.
func theoryDeployment(t *testing.T, nfCycles uint64) *Deployment {
	t.Helper()
	d, err := New(Config{
		Name:  "theory",
		Cores: 1,
		CoreCfg: hw.CPUConfig{
			FreqHz:              1e9,
			OverheadCycles:      1, // uint64 zero means default; 1 cycle ≈ 0
			QueueDepth:          1 << 20,
			FixedLatencySeconds: -1,
		},
		NewNF: func(int) (nf.Func, error) { return constantCostNF{cycles: nfCycles}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMD1MeanWaitMatchesTheory(t *testing.T) {
	// M/D/1: mean waiting time W = ρ·s / (2(1−ρ)), sojourn = W + s.
	// Service s = 1000 cycles at 1 GHz ≈ 1 µs (+1 overhead cycle).
	const (
		serviceSec = 1001e-9
		rho        = 0.7
	)
	lambda := rho / serviceSec
	d := theoryDeployment(t, 1000)
	g, err := workload.NewGenerator(workload.Spec{Flows: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(g, workload.Poisson{}, lambda, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantSojourn := serviceSec + rho*serviceSec/(2*(1-rho))
	gotSojourn := res.LatencyMeanUs * 1e-6
	if math.Abs(gotSojourn-wantSojourn)/wantSojourn > 0.08 {
		t.Errorf("M/D/1 mean sojourn = %.3f µs, theory %.3f µs (ρ=%.1f)",
			gotSojourn*1e6, wantSojourn*1e6, rho)
	}
	if res.LossFraction != 0 {
		t.Errorf("loss below capacity = %v", res.LossFraction)
	}
}

func TestMD1UtilizationSweep(t *testing.T) {
	// Mean wait grows as ρ/(1-ρ): check the ratio at two loads.
	const serviceSec = 1001e-9
	wait := func(rho float64) float64 {
		d := theoryDeployment(t, 1000)
		g, err := workload.NewGenerator(workload.Spec{Flows: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(g, workload.Poisson{}, rho/serviceSec, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return res.LatencyMeanUs*1e-6 - serviceSec
	}
	w50, w90 := wait(0.5), wait(0.9)
	// Theory: W(0.9)/W(0.5) = (0.9/0.1)/(0.5/0.5) = 9.
	ratio := w90 / w50
	if ratio < 6 || ratio > 12 {
		t.Errorf("wait ratio W(0.9)/W(0.5) = %.2f, theory 9", ratio)
	}
}

func TestDD1NoQueueingBelowCapacity(t *testing.T) {
	// D/D/1 with λ < µ: zero queueing — sojourn equals service time
	// exactly for every packet.
	const serviceSec = 1001e-9
	d := theoryDeployment(t, 1000)
	g, err := workload.NewGenerator(workload.Spec{Flows: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(g, workload.CBR{}, 0.8/serviceSec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantUs := serviceSec * 1e6
	if math.Abs(res.LatencyP99Us-wantUs)/wantUs > 0.05 {
		t.Errorf("D/D/1 p99 sojourn = %.4f µs, want service time %.4f µs", res.LatencyP99Us, wantUs)
	}
}

func TestOverloadLossMatchesFluidLimit(t *testing.T) {
	// At λ > µ with a deep queue, the loss fraction approaches
	// 1 − µ/λ (the fluid limit) once the queue fills.
	const serviceSec = 1001e-9
	mu := 1 / serviceSec
	lambda := 2 * mu
	d := theoryDeployment(t, 1000)
	// Shallow queue so the fill transient is negligible.
	d.cores[0] = hw.NewCore("theory/core0", d.s, hw.CPUConfig{
		FreqHz: 1e9, OverheadCycles: 1, QueueDepth: 64, FixedLatencySeconds: -1,
	})
	g, err := workload.NewGenerator(workload.Spec{Flows: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(g, workload.CBR{}, lambda, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - mu/lambda // 0.5
	if math.Abs(res.LossFraction-want) > 0.02 {
		t.Errorf("overload loss = %.4f, fluid limit %.4f", res.LossFraction, want)
	}
	// Processed rate pins at capacity.
	if math.Abs(res.Processed.PacketsPerSecond()-mu)/mu > 0.02 {
		t.Errorf("processed = %v pps, capacity %v", res.Processed.PacketsPerSecond(), mu)
	}
}
