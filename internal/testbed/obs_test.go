package testbed

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fairbench/internal/obs"
	"fairbench/internal/workload"
)

// tracedRun executes one SmartNIC firewall run with tracing into buf.
func tracedRun(t testing.TB, seed uint64, buf *bytes.Buffer, sink func(obs.Event)) Result {
	t.Helper()
	d, err := SmartNICFirewall()
	if err != nil {
		t.Fatal(err)
	}
	g, err := E6Workload(seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(buf)
	tr.SetSink(sink)
	d.Observe(tr, 0.002)
	res, err := d.Run(g, workload.Poisson{}, 4e6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatalf("trace error: %v", tr.Err())
	}
	return res
}

func TestTraceDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	tracedRun(t, 42, &a, nil)
	tracedRun(t, 42, &b, nil)
	if a.Len() == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed should yield a byte-identical JSONL trace")
	}

	var c bytes.Buffer
	tracedRun(t, 43, &c, nil)
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds should yield different traces")
	}
}

func TestSpanStagesSumToLatency(t *testing.T) {
	var spans []obs.Event
	var samples, kernels int
	var buf bytes.Buffer
	res := tracedRun(t, 7, &buf, func(e obs.Event) {
		switch e.Kind {
		case "span":
			spans = append(spans, e)
		case "sample":
			samples++
		case "kernel":
			kernels++
		}
	})

	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Spans cover every offered packet: one per dispatch.
	if uint64(len(spans)) != res.Offered.Packets {
		t.Errorf("spans = %d, offered packets = %d", len(spans), res.Offered.Packets)
	}
	for _, e := range spans {
		var sum float64
		for _, st := range e.Stages {
			sum += st.Dur
		}
		if math.Abs(sum-e.Dur) > 1e-12 {
			t.Fatalf("span %d: stage sum %v != end-to-end %v", e.ID, sum, e.Dur)
		}
		switch e.Verdict {
		case "forward", "drop", "loss":
		default:
			t.Fatalf("span %d: unknown verdict %q", e.ID, e.Verdict)
		}
	}
	if samples == 0 {
		t.Error("sampler emitted no samples")
	}
	if kernels == 0 {
		t.Error("kernel hook emitted no events")
	}

	// Mean end-to-end latency from the breakdown matches the meter.
	var total float64
	var forwarded int
	for _, e := range spans {
		if e.Verdict == "forward" {
			total += e.Dur
			forwarded++
		}
	}
	if forwarded > 0 && res.LatencyMeanUs > 0 {
		// The latency meter sees forwards and policy drops; compare
		// only loosely (same order of magnitude) as a sanity check.
		meanSpanUs := total / float64(forwarded) * 1e6
		if meanSpanUs <= 0 || meanSpanUs > 100*res.LatencyMeanUs {
			t.Errorf("span mean %vµs wildly off meter mean %vµs", meanSpanUs, res.LatencyMeanUs)
		}
	}

	// Every line of the file parses as an Event.
	for i, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("trace line %d does not parse: %v", i, err)
		}
	}
}

func TestUntracedRunUnchanged(t *testing.T) {
	run := func(observe bool) Result {
		d, err := SmartNICFirewall()
		if err != nil {
			t.Fatal(err)
		}
		g, err := E6Workload(5)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			d.Observe(obs.New(nil), 0.002)
		}
		res, err := d.Run(g, workload.Poisson{}, 4e6, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	traced := run(true)
	if plain.Offered != traced.Offered || plain.Forwarded != traced.Forwarded ||
		plain.LatencyMeanUs != traced.LatencyMeanUs {
		t.Errorf("tracing changed the measurement: %+v vs %+v", plain, traced)
	}
}

func benchRun(b *testing.B, observe bool) {
	for i := 0; i < b.N; i++ {
		d, err := SmartNICFirewall()
		if err != nil {
			b.Fatal(err)
		}
		g, err := E6Workload(9)
		if err != nil {
			b.Fatal(err)
		}
		if observe {
			tr := obs.New(nil)
			d.Observe(tr, 0.002)
		}
		if _, err := d.Run(g, workload.Poisson{}, 4e6, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchTracingOff vs ...On quantifies the tracing tax; the
// Off variant is the guard that the nil-safe hooks keep the untraced
// hot path cheap.
func BenchmarkDispatchTracingOff(b *testing.B) { benchRun(b, false) }
func BenchmarkDispatchTracingOn(b *testing.B)  { benchRun(b, true) }
