// Package nf implements network functions that do genuine per-packet
// work over frames from internal/packet: a 5-tuple firewall with two
// matcher implementations, source NAT with incremental checksum
// rewriting, a consistent-hash load balancer, an Aho–Corasick DPI
// engine, and a flow counter.
//
// Every Process call returns the number of abstract CPU cycles the
// operation consumed, derived from the work actually performed (rules
// scanned, bytes inspected, hashes computed). The hardware models in
// internal/hw convert cycles to simulated time and energy, which is how
// the reproduced performance-cost points stay measurements rather than
// constants.
package nf

import (
	"fairbench/internal/packet"
)

// Verdict is a network function's decision about a packet.
type Verdict int

const (
	// Accept forwards the packet unchanged.
	Accept Verdict = iota
	// Drop discards the packet.
	Drop
	// Rewritten forwards the packet after in-place modification
	// (NAT, load balancing).
	Rewritten
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	case Rewritten:
		return "rewritten"
	default:
		return "unknown"
	}
}

// Result reports a processing outcome and its cycle cost.
type Result struct {
	Verdict Verdict
	// Cycles is the abstract CPU cycle cost of this packet, derived
	// from work performed.
	Cycles uint64
}

// Func is a network function. Implementations receive the parsed view
// of the frame (the caller owns and reuses the parser) and may mutate
// the frame bytes in place when returning Rewritten. Implementations
// are not safe for concurrent use unless stated; per-core pipelines
// own their instances.
type Func interface {
	// Name identifies the function in reports.
	Name() string
	// Process handles one packet.
	Process(p *packet.Parser, frame []byte) (Result, error)
}

// Cycle cost model. The constants approximate a ~3 GHz x86 core running
// a DPDK-style run-to-completion dataplane; their absolute values only
// set the simulator's clock scale, while their ratios (per-rule scan vs
// hash lookup vs per-byte inspection) shape the performance differences
// between implementations — which is what the evaluation methodology
// consumes.
const (
	// CyclesParse is charged for header parsing and validation.
	CyclesParse = 60
	// CyclesPerLinearRule is charged per rule examined in a linear scan.
	CyclesPerLinearRule = 6
	// CyclesPerTupleGroup is charged per mask-group hash lookup.
	CyclesPerTupleGroup = 24
	// CyclesNATHit is the cost of an established-flow NAT rewrite.
	CyclesNATHit = 90
	// CyclesNATMiss is the additional cost of allocating a new binding.
	CyclesNATMiss = 220
	// CyclesLBPick is the cost of a consistent-hash backend pick.
	CyclesLBPick = 70
	// CyclesPerPayloadByte is charged per payload byte inspected by DPI.
	CyclesPerPayloadByte = 2
	// CyclesCount is the cost of a flow-counter update.
	CyclesCount = 35
)

// Pipeline chains several functions; the first Drop wins and the cycle
// costs accumulate. It implements Func itself.
type Pipeline struct {
	name  string
	funcs []Func
}

// NewPipeline builds a pipeline.
func NewPipeline(name string, funcs ...Func) *Pipeline {
	return &Pipeline{name: name, funcs: funcs}
}

// Name implements Func.
func (pl *Pipeline) Name() string { return pl.name }

// Process runs each stage in order, stopping at the first Drop.
func (pl *Pipeline) Process(p *packet.Parser, frame []byte) (Result, error) {
	out := Result{Verdict: Accept}
	for _, f := range pl.funcs {
		r, err := f.Process(p, frame)
		out.Cycles += r.Cycles
		if err != nil {
			return out, err
		}
		if r.Verdict == Drop {
			out.Verdict = Drop
			return out, nil
		}
		if r.Verdict == Rewritten {
			out.Verdict = Rewritten
		}
	}
	return out, nil
}
