package nf

import (
	"testing"

	"fairbench/internal/packet"
)

// ctRules allow TCP to 443 and UDP to 53 from anywhere benign, behind a
// realistic depth of filler rules (so the slow-path scan costs more
// than the established-flow hash lookup, as in production rule sets).
var ctRules = func() []Rule {
	rules := []Rule{{ID: 0, Src: pfx(10, 66, 0, 0, 16), Action: Drop}}
	for i := 0; i < 40; i++ {
		rules = append(rules, Rule{ID: 1 + i, Src: pfx(172, 20, byte(i), 0, 30), Action: Drop})
	}
	return append(rules,
		Rule{ID: 41, DstPorts: PortRange{443, 443}, Proto: packet.ProtoTCP, Action: Accept},
		Rule{ID: 42, DstPorts: PortRange{53, 53}, Proto: packet.ProtoUDP, Action: Accept},
	)
}()

func ctFlow(port uint16) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr4{10, 1, 0, 1}, Dst: packet.Addr4{192, 168, 1, 2},
		SrcPort: port, DstPort: 443, Proto: packet.ProtoTCP,
	}
}

// sendTCP processes one crafted TCP packet through the conntrack.
func sendTCP(t *testing.T, c *Conntrack, ft packet.FiveTuple, flags packet.TCPFlags) Result {
	t.Helper()
	frame, err := packet.BuildTCP4(natOpts, ft, flags, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewParser()
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	res, err := c.Process(p, frame)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConntrackHandshakeLifecycle(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 0)
	ft := ctFlow(40000)

	// SYN: new flow, slow path, accepted.
	res := sendTCP(t, c, ft, packet.FlagSYN)
	if res.Verdict != Accept {
		t.Fatalf("SYN verdict = %v", res.Verdict)
	}
	if s, ok := c.State(ft); !ok || s != StateNew {
		t.Fatalf("state after SYN = %v, %v", s, ok)
	}
	slowCycles := res.Cycles

	// SYN-ACK from the reverse direction: fast path (reverse lookup),
	// moves to established.
	res = sendTCP(t, c, ft.Reverse(), packet.FlagSYN|packet.FlagACK)
	if res.Verdict != Accept {
		t.Fatalf("SYN-ACK verdict = %v", res.Verdict)
	}
	if s, _ := c.State(ft); s != StateEstablished {
		t.Fatalf("state after SYN-ACK = %v", s)
	}
	if res.Cycles >= slowCycles {
		t.Errorf("fast path (%d cycles) should be cheaper than slow path (%d)", res.Cycles, slowCycles)
	}

	// Data packets in both directions stay established.
	sendTCP(t, c, ft, packet.FlagACK|packet.FlagPSH)
	if s, _ := c.State(ft); s != StateEstablished {
		t.Fatal("data packet should not change established state")
	}

	// FIN both ways closes and removes the entry.
	sendTCP(t, c, ft, packet.FlagFIN|packet.FlagACK)
	if s, _ := c.State(ft); s != StateClosing {
		t.Fatalf("state after first FIN = %v", s)
	}
	sendTCP(t, c, ft.Reverse(), packet.FlagFIN|packet.FlagACK)
	if _, ok := c.State(ft); ok {
		t.Fatal("connection should be removed after both FINs")
	}
	if c.Entries() != 0 {
		t.Errorf("entries = %d", c.Entries())
	}
}

func TestConntrackRSTTearsDown(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 0)
	ft := ctFlow(40001)
	sendTCP(t, c, ft, packet.FlagSYN)
	sendTCP(t, c, ft, packet.FlagRST)
	if _, ok := c.State(ft); ok {
		t.Fatal("RST should remove the connection")
	}
}

func TestConntrackRejectsStrayMidConnection(t *testing.T) {
	// A bare ACK with no tracked state is dropped even though the rule
	// set would accept the 5-tuple — the stateful fail-closed posture.
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 0)
	res := sendTCP(t, c, ctFlow(40002), packet.FlagACK)
	if res.Verdict != Drop {
		t.Fatalf("stray ACK verdict = %v", res.Verdict)
	}
	if c.Entries() != 0 {
		t.Error("stray packet must not create state")
	}
}

func TestConntrackRespectsRules(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 0)
	// Blocklisted source: dropped on the slow path.
	bad := packet.FiveTuple{
		Src: packet.Addr4{10, 66, 1, 1}, Dst: packet.Addr4{192, 168, 1, 2},
		SrcPort: 1, DstPort: 443, Proto: packet.ProtoTCP,
	}
	res := sendTCP(t, c, bad, packet.FlagSYN)
	if res.Verdict != Drop {
		t.Fatalf("blocklisted SYN verdict = %v", res.Verdict)
	}
	// Unmatched port: dropped.
	odd := ctFlow(40003)
	odd.DstPort = 8080
	if res := sendTCP(t, c, odd, packet.FlagSYN); res.Verdict != Drop {
		t.Fatalf("unmatched-port SYN verdict = %v", res.Verdict)
	}
}

func TestConntrackTableLimit(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 2)
	sendTCP(t, c, ctFlow(1000), packet.FlagSYN)
	sendTCP(t, c, ctFlow(1001), packet.FlagSYN)
	res := sendTCP(t, c, ctFlow(1002), packet.FlagSYN)
	if res.Verdict != Drop {
		t.Fatalf("over-limit SYN verdict = %v", res.Verdict)
	}
	if c.TableFull != 1 {
		t.Errorf("TableFull = %d", c.TableFull)
	}
}

func TestConntrackUDPEstablishedOnFirstAccept(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 0)
	ft := packet.FiveTuple{
		Src: packet.Addr4{10, 1, 0, 1}, Dst: packet.Addr4{192, 168, 1, 2},
		SrcPort: 5000, DstPort: 53, Proto: packet.ProtoUDP,
	}
	frame, err := packet.BuildUDP4(natOpts, ft, []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.NewParser()
	_ = p.Parse(frame)
	res, err := c.Process(p, frame)
	if err != nil || res.Verdict != Accept {
		t.Fatalf("UDP first packet: %v %v", res.Verdict, err)
	}
	if s, ok := c.State(ft); !ok || s != StateEstablished {
		t.Fatalf("UDP state = %v, %v", s, ok)
	}
	// Reverse direction flows on the fast path.
	rev, _ := packet.BuildUDP4(natOpts, ft.Reverse(), []byte("answer"))
	_ = p.Parse(rev)
	res2, err := c.Process(p, rev)
	if err != nil || res2.Verdict != Accept {
		t.Fatalf("UDP reverse: %v %v", res2.Verdict, err)
	}
	if res2.Cycles != CyclesParse+CyclesConntrackHit {
		t.Errorf("reverse cycles = %d, want fast path", res2.Cycles)
	}
}

func TestConnStateString(t *testing.T) {
	if StateNew.String() != "new" || StateEstablished.String() != "established" ||
		StateClosing.String() != "closing" || ConnState(9).String() != "unknown" {
		t.Error("state names")
	}
}

func TestTokenBucketPolicing(t *testing.T) {
	clock := 0.0
	now := func() float64 { return clock }
	tb, err := NewTokenBucket("tb", 1000, 10, now)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := packet.BuildUDP4(natOpts, natFlow(1, packet.ProtoUDP), nil)
	p := packet.NewParser()
	_ = p.Parse(frame)

	// Burst of 10 conforms; the 11th at the same instant is policed.
	for i := 0; i < 10; i++ {
		res, _ := tb.Process(p, frame)
		if res.Verdict != Accept {
			t.Fatalf("packet %d policed within burst", i)
		}
	}
	res, _ := tb.Process(p, frame)
	if res.Verdict != Drop {
		t.Fatal("11th packet should be policed")
	}
	if tb.Conforming != 10 || tb.Policed != 1 {
		t.Errorf("counters = %d/%d", tb.Conforming, tb.Policed)
	}

	// After 5 ms at 1000 pps, 5 tokens refill.
	clock += 0.005
	for i := 0; i < 5; i++ {
		res, _ := tb.Process(p, frame)
		if res.Verdict != Accept {
			t.Fatalf("refilled packet %d policed", i)
		}
	}
	if res, _ := tb.Process(p, frame); res.Verdict != Drop {
		t.Fatal("bucket should be empty again")
	}

	// Refill never exceeds the burst.
	clock += 100
	if got := tb.Tokens(); got != 10 {
		t.Errorf("tokens = %v, want burst cap 10", got)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	now := func() float64 { return 0 }
	if _, err := NewTokenBucket("tb", 0, 10, now); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewTokenBucket("tb", 100, 0.5, now); err == nil {
		t.Error("burst < 1 should fail")
	}
	if _, err := NewTokenBucket("tb", 100, 10, nil); err == nil {
		t.Error("nil clock should fail")
	}
}
