package nf

import (
	"fmt"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// Graceful degradation under state pressure starts with one question:
// what happens to the N+1'th flow when the table holds N? The three
// conventional answers — refuse (fail closed), evict a random victim
// (DoS-resistant, hurts legitimate flows uniformly), evict the least
// recently used (protects the hot set, thrashes under scanning
// attacks) — have different collateral-damage profiles, and those
// profiles are exactly what overload-regime comparisons must surface.
// FlowTable packages the bounded-table-plus-policy mechanics once so
// conntrack, NAT, the load balancer and the hardware offload tables
// all degrade under the same, seeded, deterministic semantics.

// EvictPolicy selects what a full FlowTable does on insert.
type EvictPolicy uint8

// Eviction policies.
const (
	// EvictNone refuses inserts when full (fail closed).
	EvictNone EvictPolicy = iota
	// EvictRandom evicts a uniformly random entry (seeded).
	EvictRandom
	// EvictLRU evicts the least recently touched entry.
	EvictLRU
)

// String names the policy.
func (p EvictPolicy) String() string {
	switch p {
	case EvictNone:
		return "none"
	case EvictRandom:
		return "random"
	case EvictLRU:
		return "lru"
	default:
		return "unknown"
	}
}

// ParseEvictPolicy parses "none", "random" or "lru".
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	switch s {
	case "none":
		return EvictNone, nil
	case "random":
		return EvictRandom, nil
	case "lru":
		return EvictLRU, nil
	default:
		return EvictNone, fmt.Errorf("nf: unknown eviction policy %q (want none, random or lru)", s)
	}
}

// noSlot marks the absence of a neighbour in the intrusive LRU list.
const noSlot = int32(-1)

// ftEntry is one occupied slot: the key, a small caller-defined value,
// and intrusive recency-list links (head = most recently used).
type ftEntry struct {
	ft         packet.FiveTuple
	val        uint32
	prev, next int32
}

// FlowTable is a bounded five-tuple → uint32 map with a pluggable
// eviction policy. The entry pool is a slice grown once up to capacity
// and recycled through a free list, so the steady state allocates
// nothing and memory stays bounded by the capacity regardless of how
// many distinct flows pass through. Eviction randomness comes from a
// seeded sim.RNG — the policy stays inside the determinism boundary.
type FlowTable struct {
	capacity int
	policy   EvictPolicy
	rng      *sim.RNG
	idx      map[packet.FiveTuple]int32
	entries  []ftEntry
	free     []int32
	head     int32 // most recently used
	tail     int32 // least recently used
	// Evictions counts entries removed to make room for inserts.
	Evictions uint64
}

// NewFlowTable builds a table bounded at capacity entries (<=0 means
// 1M). The seed matters only for EvictRandom.
func NewFlowTable(capacity int, policy EvictPolicy, seed uint64) *FlowTable {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &FlowTable{
		capacity: capacity,
		policy:   policy,
		rng:      sim.NewRNG(seed).Derive("evict"),
		idx:      make(map[packet.FiveTuple]int32),
		head:     noSlot,
		tail:     noSlot,
	}
}

// Len returns the live entry count.
func (t *FlowTable) Len() int { return len(t.idx) }

// Cap returns the capacity bound.
func (t *FlowTable) Cap() int { return t.capacity }

// Policy returns the eviction policy.
func (t *FlowTable) Policy() EvictPolicy { return t.policy }

// Get looks up ft without touching recency.
func (t *FlowTable) Get(ft packet.FiveTuple) (uint32, bool) {
	slot, ok := t.idx[ft]
	if !ok {
		return 0, false
	}
	return t.entries[slot].val, true
}

// Touch marks ft as most recently used (no-op if absent).
func (t *FlowTable) Touch(ft packet.FiveTuple) {
	if slot, ok := t.idx[ft]; ok {
		t.moveToFront(slot)
	}
}

// Set updates the value of an existing entry (no recency change) and
// reports whether it was present.
func (t *FlowTable) Set(ft packet.FiveTuple, v uint32) bool {
	slot, ok := t.idx[ft]
	if ok {
		t.entries[slot].val = v
	}
	return ok
}

// Put inserts or updates ft. When the table is full, EvictNone refuses
// (ok=false); the other policies evict a victim first and return its
// key and value so callers can release per-flow resources (a NAT port,
// an offload credit) — evictions must never leak.
func (t *FlowTable) Put(ft packet.FiveTuple, v uint32) (victim packet.FiveTuple, victimVal uint32, evicted, ok bool) {
	if slot, present := t.idx[ft]; present {
		t.entries[slot].val = v
		t.moveToFront(slot)
		return packet.FiveTuple{}, 0, false, true
	}
	if len(t.idx) >= t.capacity {
		var slot int32
		switch t.policy {
		case EvictRandom:
			// The pool is fully occupied whenever the table is full, so
			// a uniform slot draw is a uniform entry draw.
			slot = int32(t.rng.Intn(len(t.entries)))
		case EvictLRU:
			slot = t.tail
		default:
			return packet.FiveTuple{}, 0, false, false
		}
		e := t.entries[slot]
		t.removeSlot(slot)
		victim, victimVal, evicted = e.ft, e.val, true
		t.Evictions++
	}
	slot := t.allocSlot()
	t.entries[slot] = ftEntry{ft: ft, val: v, prev: noSlot, next: t.head}
	if t.head != noSlot {
		t.entries[t.head].prev = slot
	}
	t.head = slot
	if t.tail == noSlot {
		t.tail = slot
	}
	t.idx[ft] = slot
	return victim, victimVal, evicted, true
}

// Delete removes ft and reports whether it was present.
func (t *FlowTable) Delete(ft packet.FiveTuple) bool {
	slot, ok := t.idx[ft]
	if !ok {
		return false
	}
	t.removeSlot(slot)
	return true
}

// Reset drops every entry (capacity and pool are retained).
func (t *FlowTable) Reset() {
	for ft := range t.idx {
		delete(t.idx, ft)
	}
	t.free = t.free[:0]
	for i := range t.entries {
		t.free = append(t.free, int32(i))
	}
	t.head, t.tail = noSlot, noSlot
}

// allocSlot returns a free pool slot, growing the pool while under
// capacity. Callers ensure room exists (evict or refuse first).
func (t *FlowTable) allocSlot() int32 {
	if n := len(t.free); n > 0 {
		slot := t.free[n-1]
		t.free = t.free[:n-1]
		return slot
	}
	//fairlint:allow hotalloc pool grows once to capacity; steady state recycles free-list slots
	t.entries = append(t.entries, ftEntry{})
	return int32(len(t.entries) - 1)
}

// removeSlot unlinks a slot from the recency list, the index and
// returns it to the free list.
func (t *FlowTable) removeSlot(slot int32) {
	e := &t.entries[slot]
	if e.prev != noSlot {
		t.entries[e.prev].next = e.next
	} else {
		t.head = e.next
	}
	if e.next != noSlot {
		t.entries[e.next].prev = e.prev
	} else {
		t.tail = e.prev
	}
	delete(t.idx, e.ft)
	//fairlint:allow hotalloc free-list length is bounded by pool capacity; append never grows it
	t.free = append(t.free, slot)
}

// moveToFront makes slot the most recently used.
func (t *FlowTable) moveToFront(slot int32) {
	if t.head == slot {
		return
	}
	e := &t.entries[slot]
	if e.prev != noSlot {
		t.entries[e.prev].next = e.next
	}
	if e.next != noSlot {
		t.entries[e.next].prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev = noSlot
	e.next = t.head
	if t.head != noSlot {
		t.entries[t.head].prev = slot
	}
	t.head = slot
	if t.tail == noSlot {
		t.tail = slot
	}
}
