package nf

import (
	"fmt"
	"sort"

	"fairbench/internal/packet"
)

// ahoNode is one state of the Aho–Corasick automaton, dense over bytes
// for branch-free stepping on the hot path. During construction, next
// entries of -1 mean "no trie edge"; buildDFA folds failure transitions
// in so that after construction every entry is a valid state.
type ahoNode struct {
	next    [256]int32
	fail    int32
	outputs []int32 // pattern indices ending at this state
}

// AhoCorasick is a multi-pattern string matcher over packet payloads —
// the signature-matching core of intrusion-detection network functions.
// Matching is O(payload bytes + matches) regardless of pattern count.
type AhoCorasick struct {
	nodes    []ahoNode
	patterns []string
}

// NewAhoCorasick builds the automaton for the given patterns. Empty
// pattern lists are allowed (the automaton matches nothing); empty
// pattern strings are rejected.
func NewAhoCorasick(patterns []string) (*AhoCorasick, error) {
	a := &AhoCorasick{patterns: append([]string(nil), patterns...)}
	a.nodes = append(a.nodes, newAhoNode())

	for pi, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("nf: empty DPI pattern at index %d", pi)
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			nxt := a.nodes[cur].next[c]
			if nxt == -1 {
				a.nodes = append(a.nodes, newAhoNode())
				nxt = int32(len(a.nodes) - 1)
				a.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		a.nodes[cur].outputs = append(a.nodes[cur].outputs, int32(pi))
	}
	a.buildDFA()
	return a, nil
}

func newAhoNode() ahoNode {
	var n ahoNode
	for i := range n.next {
		n.next[i] = -1
	}
	return n
}

// buildDFA computes failure links breadth-first and folds them into the
// transition table, turning the trie into a DFA.
func (a *AhoCorasick) buildDFA() {
	queue := make([]int32, 0, len(a.nodes))
	root := &a.nodes[0]
	for c := 0; c < 256; c++ {
		if v := root.next[c]; v == -1 {
			root.next[c] = 0
		} else {
			a.nodes[v].fail = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			v := a.nodes[u].next[c]
			failNext := a.nodes[a.nodes[u].fail].next[c]
			if v == -1 {
				a.nodes[u].next[c] = failNext
				continue
			}
			a.nodes[v].fail = failNext
			a.nodes[v].outputs = append(a.nodes[v].outputs, a.nodes[failNext].outputs...)
			queue = append(queue, v)
		}
	}
}

// Patterns returns the compiled pattern list.
func (a *AhoCorasick) Patterns() []string { return a.patterns }

// States returns the automaton size (useful for memory-cost reporting).
func (a *AhoCorasick) States() int { return len(a.nodes) }

// Search scans data and calls fn with (pattern index, end offset) for
// every match. fn returning false stops the scan early.
func (a *AhoCorasick) Search(data []byte, fn func(pattern int, end int) bool) {
	state := int32(0)
	for i, b := range data {
		state = a.nodes[state].next[b]
		for _, pi := range a.nodes[state].outputs {
			if !fn(int(pi), i+1) {
				return
			}
		}
	}
}

// Contains reports whether any pattern occurs in data.
func (a *AhoCorasick) Contains(data []byte) bool {
	found := false
	a.Search(data, func(int, int) bool {
		found = true
		return false
	})
	return found
}

// DPI is an intrusion-detection network function: packets whose payload
// matches any signature are dropped (inline IPS behaviour). The cycle
// cost is proportional to payload bytes inspected, which is what makes
// DPI the CPU-heavy workload in the offload experiments.
type DPI struct {
	name string
	ac   *AhoCorasick
	// Alerts counts matched packets per pattern index.
	Alerts map[int]uint64
	// Inspected counts total payload bytes scanned.
	Inspected uint64
}

// NewDPI builds an inline DPI engine for the given signatures.
func NewDPI(name string, signatures []string) (*DPI, error) {
	ac, err := NewAhoCorasick(signatures)
	if err != nil {
		return nil, err
	}
	return &DPI{name: name, ac: ac, Alerts: make(map[int]uint64)}, nil
}

// Name implements Func.
func (d *DPI) Name() string { return d.name }

// Process implements Func.
func (d *DPI) Process(p *packet.Parser, _ []byte) (Result, error) {
	payload := p.Payload
	d.Inspected += uint64(len(payload))
	cycles := uint64(CyclesParse) + uint64(len(payload))*CyclesPerPayloadByte
	verdict := Accept
	d.ac.Search(payload, func(pattern, _ int) bool {
		d.Alerts[pattern]++
		verdict = Drop
		return false
	})
	return Result{Verdict: verdict, Cycles: cycles}, nil
}

// FlowCounter counts packets and bytes per flow — the bookkeeping
// network function used for fairness (JFI) measurements.
type FlowCounter struct {
	name string
	// Packets and Bytes are per-flow tallies.
	Packets map[packet.FiveTuple]uint64
	Bytes   map[packet.FiveTuple]uint64
}

// NewFlowCounter builds a counter.
func NewFlowCounter(name string) *FlowCounter {
	return &FlowCounter{
		name:    name,
		Packets: make(map[packet.FiveTuple]uint64),
		Bytes:   make(map[packet.FiveTuple]uint64),
	}
}

// Name implements Func.
func (c *FlowCounter) Name() string { return c.name }

// Process implements Func.
func (c *FlowCounter) Process(p *packet.Parser, frame []byte) (Result, error) {
	if ft, ok := p.FiveTuple(); ok {
		c.Packets[ft]++
		c.Bytes[ft] += uint64(len(frame))
	}
	return Result{Verdict: Accept, Cycles: CyclesParse + CyclesCount}, nil
}

// ByteAllocations returns per-flow byte counts as a sorted slice, the
// input Jain's fairness index expects. Sorting pins the float
// accumulation order downstream, which map iteration would otherwise
// randomize run to run.
func (c *FlowCounter) ByteAllocations() []float64 {
	out := make([]float64, 0, len(c.Bytes))
	for _, b := range c.Bytes {
		out = append(out, float64(b))
	}
	sort.Float64s(out)
	return out
}
