package nf

import (
	"errors"
	"fmt"

	"fairbench/internal/packet"
)

// ErrPortsExhausted is returned when the NAT has no free external ports.
var ErrPortsExhausted = errors.New("nf: NAT external port pool exhausted")

// ErrBindingsExhausted is returned when the binding table is full and
// the eviction policy refuses to make room (EvictNone).
var ErrBindingsExhausted = errors.New("nf: NAT binding table exhausted")

// NATConfig bounds the binding table and selects what happens at the
// bound. The zero value preserves the historical behaviour: bindings
// bounded only by the 55536-port external pool, fail closed on
// exhaustion.
type NATConfig struct {
	// MaxBindings bounds the translation table (<=0 means bounded only
	// by the external port pool).
	MaxBindings int
	// Policy is applied when a new flow arrives at a full table.
	// EvictNone refuses the flow (ErrBindingsExhausted); the eviction
	// policies tear down a victim binding and recycle its port.
	Policy EvictPolicy
	// Seed drives eviction randomness (EvictRandom only).
	Seed uint64
}

// NAT implements source NAT (masquerading): outbound flows get their
// source address rewritten to the external address and their source
// port to an allocated external port. Checksums are fixed incrementally
// (RFC 1624) rather than recomputed — the realistic fast path.
type NAT struct {
	name     string
	extern   packet.Addr4
	cfg      NATConfig
	nextPort uint16
	minPort  uint16
	bindings *FlowTable
	used     map[uint16]bool
	// Hits and Misses count established-flow rewrites vs new bindings.
	Hits, Misses uint64
	// Exhausted counts flows refused because neither a port nor a
	// binding slot could be found — attributed state-pressure drops.
	Exhausted uint64
}

// NewNAT builds a source NAT with external address extern, allocating
// ports from 10000 upward.
func NewNAT(name string, extern packet.Addr4) *NAT {
	return NewNATWith(name, extern, NATConfig{})
}

// NewNATWith builds a source NAT with explicit binding-table bounds and
// degradation semantics.
func NewNATWith(name string, extern packet.Addr4, cfg NATConfig) *NAT {
	maxBindings := cfg.MaxBindings
	if maxBindings <= 0 {
		// The port pool is the real bound; size the table to match so
		// Put never evicts before the pool runs dry.
		maxBindings = 65536
	}
	return &NAT{
		name:     name,
		extern:   extern,
		cfg:      cfg,
		minPort:  10000,
		nextPort: 10000,
		bindings: NewFlowTable(maxBindings, cfg.Policy, cfg.Seed),
		used:     make(map[uint16]bool),
	}
}

// Name implements Func.
func (n *NAT) Name() string { return n.name }

// Bindings returns the number of active translations.
func (n *NAT) Bindings() int { return n.bindings.Len() }

// MaxBindings returns the binding-table bound.
func (n *NAT) MaxBindings() int { return n.bindings.Cap() }

// Evicted returns the number of bindings torn down to admit new flows.
func (n *NAT) Evicted() uint64 { return n.bindings.Evictions }

func (n *NAT) allocPort() (uint16, error) {
	for tries := 0; tries < 65536; tries++ {
		p := n.nextPort
		n.nextPort++
		if n.nextPort == 0 {
			n.nextPort = n.minPort
		}
		if p >= n.minPort && !n.used[p] {
			n.used[p] = true
			return p, nil
		}
	}
	return 0, ErrPortsExhausted
}

// Process implements Func. IPv4 TCP/UDP packets are rewritten in place;
// anything else passes through unmodified.
func (n *NAT) Process(p *packet.Parser, frame []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		return Result{Verdict: Accept, Cycles: CyclesParse}, nil
	}
	port, hit := n.bindings.Get(ft)
	cycles := uint64(CyclesParse + CyclesNATHit)
	if !hit {
		newPort, err := n.allocPort()
		if err != nil {
			n.Exhausted++
			return Result{Verdict: Drop, Cycles: cycles}, err
		}
		_, victimPort, evicted, inserted := n.bindings.Put(ft, uint32(newPort))
		if !inserted {
			// Full table, EvictNone: release the port and fail closed
			// with the refusal attributed to binding exhaustion.
			delete(n.used, newPort)
			n.Exhausted++
			return Result{Verdict: Drop, Cycles: cycles},
				fmt.Errorf("%w: %d bindings", ErrBindingsExhausted, n.bindings.Cap())
		}
		if evicted {
			// Recycle the victim's external port — evictions must not
			// leak pool capacity.
			delete(n.used, uint16(victimPort))
		}
		port = uint32(newPort)
		cycles += CyclesNATMiss
		n.Misses++
	} else {
		n.bindings.Touch(ft)
		n.Hits++
	}

	if err := rewriteSource(p, frame, n.extern, uint16(port)); err != nil {
		return Result{Verdict: Drop, Cycles: cycles}, err
	}
	return Result{Verdict: Rewritten, Cycles: cycles}, nil
}

// rewriteSource rewrites the IPv4 source address and transport source
// port in frame, updating the IP and transport checksums incrementally.
func rewriteSource(p *packet.Parser, frame []byte, newAddr packet.Addr4, newPort uint16) error {
	ethLen := p.Eth.HeaderLen()
	ipStart := ethLen
	ipHdrLen := p.IP4.HeaderLen()
	if len(frame) < ipStart+ipHdrLen {
		return fmt.Errorf("nf: frame shorter than parsed headers")
	}
	oldAddr := p.IP4.Src

	// IP header: source address bytes 12..16, checksum bytes 10..12.
	ipCheck := beU16(frame[ipStart+10:])
	ipCheck = packet.UpdateChecksum32(ipCheck, oldAddr.Uint32(), newAddr.Uint32())
	copy(frame[ipStart+12:ipStart+16], newAddr[:])
	putU16(frame[ipStart+10:], ipCheck)

	l4Start := ipStart + ipHdrLen
	switch p.IP4.Protocol {
	case packet.ProtoTCP:
		if len(frame) < l4Start+packet.TCPMinHeaderLen {
			return fmt.Errorf("nf: truncated TCP header")
		}
		oldPort := beU16(frame[l4Start:])
		check := beU16(frame[l4Start+16:])
		// TCP checksum covers the pseudo-header (address) and the port.
		check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
		check = packet.UpdateChecksum16(check, oldPort, newPort)
		putU16(frame[l4Start:], newPort)
		putU16(frame[l4Start+16:], check)
	case packet.ProtoUDP:
		if len(frame) < l4Start+packet.UDPHeaderLen {
			return fmt.Errorf("nf: truncated UDP header")
		}
		oldPort := beU16(frame[l4Start:])
		check := beU16(frame[l4Start+6:])
		if check != 0 { // zero means "no checksum" in UDP/IPv4
			check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
			check = packet.UpdateChecksum16(check, oldPort, newPort)
			if check == 0 {
				check = 0xffff
			}
			putU16(frame[l4Start+6:], check)
		}
		putU16(frame[l4Start:], newPort)
	}
	return nil
}

func beU16(b []byte) uint16     { return uint16(b[0])<<8 | uint16(b[1]) }
func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
