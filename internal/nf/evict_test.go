package nf

import (
	"errors"
	"testing"

	"fairbench/internal/packet"
)

func evFlow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr4{10, 1, byte(i >> 8), byte(i)}, Dst: packet.Addr4{192, 168, 1, 2},
		SrcPort: uint16(1024 + i), DstPort: 443, Proto: packet.ProtoTCP,
	}
}

func TestFlowTableBasics(t *testing.T) {
	ft := NewFlowTable(4, EvictNone, 1)
	if ft.Cap() != 4 || ft.Len() != 0 {
		t.Fatalf("cap/len = %d/%d", ft.Cap(), ft.Len())
	}
	for i := 0; i < 4; i++ {
		if _, _, _, ok := ft.Put(evFlow(i), uint32(i)); !ok {
			t.Fatalf("insert %d refused below capacity", i)
		}
	}
	if v, ok := ft.Get(evFlow(2)); !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	// Full + EvictNone: refuse, no eviction.
	if _, _, evicted, ok := ft.Put(evFlow(9), 9); ok || evicted {
		t.Fatal("full EvictNone table must refuse without evicting")
	}
	// Updating an existing key is not an insert and always succeeds.
	if _, _, _, ok := ft.Put(evFlow(2), 22); !ok {
		t.Fatal("update of existing key refused")
	}
	if v, _ := ft.Get(evFlow(2)); v != 22 {
		t.Fatalf("updated value = %d", v)
	}
	if !ft.Delete(evFlow(0)) || ft.Delete(evFlow(0)) {
		t.Fatal("delete should succeed once")
	}
	if _, _, _, ok := ft.Put(evFlow(9), 9); !ok {
		t.Fatal("insert after delete should reuse the slot")
	}
	if ft.Len() != 4 {
		t.Fatalf("len = %d", ft.Len())
	}
}

func TestFlowTableLRUEvictsColdest(t *testing.T) {
	ft := NewFlowTable(3, EvictLRU, 1)
	for i := 0; i < 3; i++ {
		ft.Put(evFlow(i), uint32(i))
	}
	// Touch 0 so 1 becomes the coldest.
	ft.Touch(evFlow(0))
	victim, val, evicted, ok := ft.Put(evFlow(3), 3)
	if !ok || !evicted {
		t.Fatalf("evicting insert: evicted=%v ok=%v", evicted, ok)
	}
	if victim != evFlow(1) || val != 1 {
		t.Fatalf("victim = %v (val %d), want flow 1", victim, val)
	}
	if _, ok := ft.Get(evFlow(0)); !ok {
		t.Error("touched entry evicted")
	}
	if ft.Evictions != 1 {
		t.Errorf("Evictions = %d", ft.Evictions)
	}
}

func TestFlowTableRandomEvictionDeterministic(t *testing.T) {
	run := func() []packet.FiveTuple {
		ft := NewFlowTable(8, EvictRandom, 42)
		var victims []packet.FiveTuple
		for i := 0; i < 64; i++ {
			if v, _, evicted, ok := ft.Put(evFlow(i), uint32(i)); ok && evicted {
				victims = append(victims, v)
			}
		}
		return victims
	}
	a, b := run(), run()
	if len(a) != 64-8 {
		t.Fatalf("evictions = %d, want %d", len(a), 64-8)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim %d differs across identically seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlowTableMemoryBounded(t *testing.T) {
	// A million distinct flows through a 512-entry table must not grow
	// the pool past the capacity — bounded state is the whole point.
	ft := NewFlowTable(512, EvictLRU, 7)
	for i := 0; i < 1_000_000; i++ {
		ft.Put(evFlow(i%65521), uint32(i))
	}
	if ft.Len() > 512 {
		t.Fatalf("len = %d > cap", ft.Len())
	}
	if got := len(ft.entries); got > 512 {
		t.Fatalf("entry pool grew to %d slots", got)
	}
}

func TestParseEvictPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EvictPolicy
	}{{"none", EvictNone}, {"random", EvictRandom}, {"lru", EvictLRU}} {
		got, err := ParseEvictPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEvictPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseEvictPolicy("fifo"); err == nil {
		t.Error("unknown policy should fail")
	}
}

// TestConntrackOverflowAttributed is the regression test for the
// silent-refusal bug: every packet arriving at a full fail-closed
// table must land in OverflowDrops (and Dropped), never vanish from
// the accounting.
func TestConntrackOverflowAttributed(t *testing.T) {
	c := NewConntrack("ct", NewLinearMatcher(ctRules), 4)
	const offered = 32
	for i := 0; i < offered; i++ {
		sendTCP(t, c, ctFlow(uint16(2000+i)), packet.FlagSYN)
	}
	st := c.Stats()
	if st.NewFlows != 4 {
		t.Errorf("NewFlows = %d, want 4", st.NewFlows)
	}
	if st.OverflowDrops != offered-4 {
		t.Errorf("OverflowDrops = %d, want %d", st.OverflowDrops, offered-4)
	}
	if st.Dropped < st.OverflowDrops {
		t.Errorf("OverflowDrops (%d) must be a subset of Dropped (%d)", st.OverflowDrops, st.Dropped)
	}
	// Conservation: every offered packet is attributed to exactly one
	// outcome counter.
	if got := st.NewFlows + st.FastPath + st.Dropped + st.SYNCookiesSent + st.CookieBypassed; got != offered {
		t.Errorf("outcome counters sum to %d, want %d offered", got, offered)
	}
	if st.TableFull != offered-4 {
		t.Errorf("TableFull = %d, want %d", st.TableFull, offered-4)
	}
}

func TestConntrackLRUEvictionAdmitsNewFlows(t *testing.T) {
	c := NewConntrackWith("ct", NewLinearMatcher(ctRules),
		ConntrackConfig{MaxEntries: 4, Policy: EvictLRU, Seed: 1})
	const offered = 12
	for i := 0; i < offered; i++ {
		res := sendTCP(t, c, ctFlow(uint16(3000+i)), packet.FlagSYN)
		if res.Verdict != Accept {
			t.Fatalf("flow %d refused despite eviction policy", i)
		}
	}
	st := c.Stats()
	if st.NewFlows != offered {
		t.Errorf("NewFlows = %d, want %d", st.NewFlows, offered)
	}
	if st.OverflowDrops != 0 {
		t.Errorf("OverflowDrops = %d with eviction on", st.OverflowDrops)
	}
	if st.Evicted != offered-4 {
		t.Errorf("Evicted = %d, want %d", st.Evicted, offered-4)
	}
	if st.Entries != 4 {
		t.Errorf("Entries = %d", st.Entries)
	}
}

func TestConntrackEvictionCollateralCountsEstablished(t *testing.T) {
	c := NewConntrackWith("ct", NewLinearMatcher(ctRules),
		ConntrackConfig{MaxEntries: 2, Policy: EvictLRU, Seed: 1})
	// Establish one connection fully.
	sendTCP(t, c, ctFlow(100), packet.FlagSYN)
	sendTCP(t, c, ctFlow(100).Reverse(), packet.FlagSYN|packet.FlagACK)
	// Two more SYNs evict the established flow (now the coldest) and
	// then one of the new ones — the first eviction is collateral
	// damage to a vetted connection.
	sendTCP(t, c, ctFlow(101), packet.FlagSYN)
	sendTCP(t, c, ctFlow(102), packet.FlagSYN)
	sendTCP(t, c, ctFlow(103), packet.FlagSYN)
	st := c.Stats()
	if st.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", st.Evicted)
	}
	if st.EvictedEstablished != 1 {
		t.Errorf("EvictedEstablished = %d, want 1", st.EvictedEstablished)
	}
}

func TestConntrackSYNCookiesUnderPressure(t *testing.T) {
	c := NewConntrackWith("ct", NewLinearMatcher(ctRules),
		ConntrackConfig{MaxEntries: 2, SYNCookies: true, Seed: 1})
	sendTCP(t, c, ctFlow(200), packet.FlagSYN)
	sendTCP(t, c, ctFlow(201), packet.FlagSYN)

	// Table full: a rule-matched SYN is answered statelessly instead of
	// dropped, at extra cycle cost.
	res := sendTCP(t, c, ctFlow(202), packet.FlagSYN)
	if res.Verdict != Accept {
		t.Fatalf("cookie SYN verdict = %v", res.Verdict)
	}
	if res.Cycles <= CyclesParse+CyclesSYNCookie {
		t.Errorf("cookie path cycles = %d, want rule scan + cookie cost", res.Cycles)
	}
	if c.Entries() != 2 {
		t.Errorf("cookie accept must not create state, entries = %d", c.Entries())
	}
	// The cookie'd flow's ACK continues statelessly too.
	res = sendTCP(t, c, ctFlow(202), packet.FlagACK)
	if res.Verdict != Accept {
		t.Fatalf("cookie ACK verdict = %v", res.Verdict)
	}
	st := c.Stats()
	if st.SYNCookiesSent != 1 || st.CookieBypassed != 1 {
		t.Errorf("cookie counters = %d/%d, want 1/1", st.SYNCookiesSent, st.CookieBypassed)
	}
	// A blocklisted source gains nothing from cookies.
	bad := packet.FiveTuple{
		Src: packet.Addr4{10, 66, 1, 1}, Dst: packet.Addr4{192, 168, 1, 2},
		SrcPort: 1, DstPort: 443, Proto: packet.ProtoTCP,
	}
	if res := sendTCP(t, c, bad, packet.FlagSYN); res.Verdict != Drop {
		t.Error("cookies must not bypass the rule set")
	}
}

// TestConntrackEvictionHotPathAllocs guards the zero-allocation claim
// the fairbench gate enforces: steady-state eviction must not allocate.
func TestConntrackEvictionHotPathAllocs(t *testing.T) {
	for _, policy := range []EvictPolicy{EvictRandom, EvictLRU} {
		c := NewConntrackWith("ct", NewLinearMatcher(ctRules),
			ConntrackConfig{MaxEntries: 64, Policy: policy, Seed: 1})
		frames := make([][]byte, 256)
		for i := range frames {
			f, err := packet.BuildTCP4(natOpts, ctFlow(uint16(5000+i)), packet.FlagSYN, 1, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = f
		}
		p := packet.NewParser()
		// Warm up: fill the table and let the map settle.
		for _, f := range frames {
			_ = p.Parse(f)
			if _, err := c.Process(p, f); err != nil {
				t.Fatal(err)
			}
		}
		n := 0
		allocs := testing.AllocsPerRun(400, func() {
			f := frames[n%len(frames)]
			n++
			_ = p.Parse(f)
			_, _ = c.Process(p, f)
		})
		if allocs > 0 {
			t.Errorf("policy %v: %v allocs/op on the eviction hot path", policy, allocs)
		}
	}
}

func TestNATBindingEviction(t *testing.T) {
	n := NewNATWith("nat", packet.Addr4{203, 0, 113, 1},
		NATConfig{MaxBindings: 4, Policy: EvictLRU, Seed: 1})
	p := packet.NewParser()
	send := func(i int) error {
		frame, err := packet.BuildUDP4(natOpts, natFlow(uint16(i), packet.ProtoUDP), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
		_, err = n.Process(p, frame)
		return err
	}
	for i := 0; i < 32; i++ {
		if err := send(i); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	if n.Bindings() != 4 {
		t.Errorf("bindings = %d", n.Bindings())
	}
	if n.Evicted() != 32-4 {
		t.Errorf("evicted = %d, want %d", n.Evicted(), 32-4)
	}
	// Ports must be recycled, not leaked: the used set tracks only live
	// bindings.
	if got := len(n.used); got != 4 {
		t.Errorf("used ports = %d, want 4", got)
	}
}

func TestNATBindingsExhaustedTyped(t *testing.T) {
	n := NewNATWith("nat", packet.Addr4{203, 0, 113, 1}, NATConfig{MaxBindings: 2})
	p := packet.NewParser()
	var lastErr error
	for i := 0; i < 3; i++ {
		frame, err := packet.BuildUDP4(natOpts, natFlow(uint16(i), packet.ProtoUDP), nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = p.Parse(frame)
		_, lastErr = n.Process(p, frame)
	}
	if !errors.Is(lastErr, ErrBindingsExhausted) {
		t.Fatalf("err = %v, want ErrBindingsExhausted", lastErr)
	}
	if n.Exhausted != 1 {
		t.Errorf("Exhausted = %d", n.Exhausted)
	}
}

func TestLBAffinityPinsAcrossRingChange(t *testing.T) {
	lb := NewLoadBalancer("lb", 16)
	lb.EnableAffinity(64, EvictLRU, 1)
	lb.AddBackend(Backend{Name: "a", Addr: packet.Addr4{10, 0, 0, 1}})
	lb.AddBackend(Backend{Name: "b", Addr: packet.Addr4{10, 0, 0, 2}})

	ft := natFlow(7, packet.ProtoUDP)
	first, _, err := lb.pickWithAffinity(ft)
	if err != nil {
		t.Fatal(err)
	}
	// Adding a backend perturbs the ring; the pinned flow must not move.
	lb.AddBackend(Backend{Name: "c", Addr: packet.Addr4{10, 0, 0, 3}})
	again, cycles, err := lb.pickWithAffinity(ft)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != first.Name {
		t.Fatalf("pinned flow moved %s -> %s", first.Name, again.Name)
	}
	if cycles != CyclesParse+CyclesLBAffinity {
		t.Errorf("affinity hit cycles = %d", cycles)
	}
	// Removing the pinned backend breaks affinity but keeps service.
	lb.RemoveBackend(first.Name)
	moved, _, err := lb.pickWithAffinity(ft)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Name == first.Name {
		t.Fatal("stale pin must not resolve to a removed backend")
	}
	if lb.AffinityBroken == 0 {
		t.Error("stale pin should count as broken affinity")
	}
}

func TestLBAffinityOverflowFallsBackToRing(t *testing.T) {
	lb := NewLoadBalancer("lb", 16)
	lb.EnableAffinity(2, EvictNone, 1)
	lb.AddBackend(Backend{Name: "a", Addr: packet.Addr4{10, 0, 0, 1}})
	for i := 0; i < 8; i++ {
		if _, _, err := lb.pickWithAffinity(natFlow(uint16(i), packet.ProtoUDP)); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	if lb.AffinityEntries() != 2 {
		t.Errorf("affinity entries = %d", lb.AffinityEntries())
	}
	if lb.AffinityBroken != 6 {
		t.Errorf("AffinityBroken = %d, want 6", lb.AffinityBroken)
	}
}
