package nf

import (
	"fmt"
	"testing"

	"fairbench/internal/packet"
)

// Matcher ablation benches (DESIGN.md §4): linear scan cost grows with
// the rule count, tuple-space cost with the number of mask groups.

func syntheticRules(n int) []Rule {
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, Rule{
			ID:       i,
			Src:      Prefix{Addr: packet.Addr4From(uint32(0x0a000000 + i)), Bits: 32},
			Dst:      pfx(192, 168, 0, 1, 32),
			DstPorts: PortRange{Lo: 80, Hi: 80},
			Proto:    packet.ProtoTCP,
			Action:   Accept,
		})
	}
	return rules
}

func missFlowBench() packet.FiveTuple {
	return flow(packet.Addr4{172, 16, 9, 9}, packet.Addr4{8, 8, 8, 8}, 1234, 80, packet.ProtoTCP)
}

func BenchmarkLinearMatcher(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			m := NewLinearMatcher(syntheticRules(n))
			ft := missFlowBench()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Match(ft)
			}
		})
	}
}

func BenchmarkTupleSpaceMatcher(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			m, err := NewTupleSpaceMatcher(syntheticRules(n))
			if err != nil {
				b.Fatal(err)
			}
			ft := missFlowBench()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Match(ft)
			}
		})
	}
}

func BenchmarkFirewallProcess(b *testing.B) {
	fw := NewFirewall("fw", NewLinearMatcher(testRules))
	p := packet.NewParser()
	frame := buildForBench(b, natFlow(1, packet.ProtoTCP), []byte("payload"))
	if err := p.Parse(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Process(p, frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNATEstablishedFlow(b *testing.B) {
	n := NewNAT("nat", packet.Addr4{203, 0, 113, 1})
	p := packet.NewParser()
	pristine := buildForBench(b, natFlow(1, packet.ProtoUDP), []byte("x"))
	frame := make([]byte, len(pristine))
	copy(frame, pristine)
	if err := p.Parse(frame); err != nil {
		b.Fatal(err)
	}
	// Establish the binding once.
	if _, err := n.Process(p, frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Restore the original packet: NAT rewrites in place, and the
		// benchmark measures the established-flow path for the same
		// flow, as a forwarding loop would see it.
		copy(frame, pristine)
		if err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
		if _, err := n.Process(p, frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBalancerPick(b *testing.B) {
	lb := NewLoadBalancer("lb", 64)
	for i := 0; i < 8; i++ {
		lb.AddBackend(Backend{Name: fmt.Sprintf("b%d", i), Addr: packet.Addr4{10, 0, 1, byte(i)}})
	}
	ft := natFlow(1, packet.ProtoTCP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Pick(ft); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAhoCorasickSearch(b *testing.B) {
	patterns := []string{"attack", "exploit", "/etc/passwd", "SELECT *", "cmd.exe", "wget http"}
	ac, err := NewAhoCorasick(patterns)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1400)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ac.Contains(payload)
	}
}

// buildForBench mirrors buildFor for benchmarks.
func buildForBench(b *testing.B, ft packet.FiveTuple, payload []byte) []byte {
	b.Helper()
	var frame []byte
	var err error
	if ft.Proto == packet.ProtoTCP {
		frame, err = packet.BuildTCP4(natOpts, ft, packet.FlagACK, 7, 9, payload)
	} else {
		frame, err = packet.BuildUDP4(natOpts, ft, payload)
	}
	if err != nil {
		b.Fatal(err)
	}
	return frame
}
