package nf

import (
	"fairbench/internal/packet"
)

// Connection-tracking (stateful) firewall. Rule lookup happens only for
// the first packet of a flow; established flows take a hash-table fast
// path. This is the software analogue of SmartNIC flow offload — and
// the reason per-packet cost drops sharply once a flow is vetted, which
// is the effect the §4.2 example's accelerator exploits in hardware.

// ConnState tracks a TCP connection's lifecycle (UDP flows are modelled
// as established-on-first-accept with idle expiry left to table churn).
type ConnState uint8

// Connection states.
const (
	StateNew ConnState = iota
	StateEstablished
	StateClosing
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateEstablished:
		return "established"
	case StateClosing:
		return "closing"
	default:
		return "unknown"
	}
}

// CyclesConntrackHit is the fast-path cost of an established-flow
// lookup — far below a rule-set scan.
const CyclesConntrackHit = 80

// Conntrack is a stateful firewall: new flows consult the rule matcher,
// established flows bypass it.
type Conntrack struct {
	name    string
	matcher Matcher
	// MaxEntries bounds the connection table; new flows beyond it are
	// dropped (fail closed), the conventional DoS posture.
	MaxEntries int
	table      map[packet.FiveTuple]ConnState
	// Stats.
	NewFlows, FastPath, TableFull, Dropped uint64
}

// NewConntrack builds a stateful firewall over matcher with the given
// table bound (<=0 means 1M entries).
func NewConntrack(name string, m Matcher, maxEntries int) *Conntrack {
	if maxEntries <= 0 {
		maxEntries = 1 << 20
	}
	return &Conntrack{
		name:       name,
		matcher:    m,
		MaxEntries: maxEntries,
		table:      make(map[packet.FiveTuple]ConnState),
	}
}

// Name implements Func.
func (c *Conntrack) Name() string { return c.name }

// Entries returns the live connection count.
func (c *Conntrack) Entries() int { return len(c.table) }

// State reports the tracked state of a flow (either direction).
func (c *Conntrack) State(ft packet.FiveTuple) (ConnState, bool) {
	if s, ok := c.table[ft]; ok {
		return s, true
	}
	s, ok := c.table[ft.Reverse()]
	return s, ok
}

// Process implements Func.
func (c *Conntrack) Process(p *packet.Parser, _ []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		c.Dropped++
		return Result{Verdict: Drop, Cycles: CyclesParse}, nil
	}

	// Fast path: known flow in either direction.
	if state, known := c.State(ft); known {
		res := Result{Verdict: Accept, Cycles: CyclesParse + CyclesConntrackHit}
		if ft.Proto == packet.ProtoTCP {
			c.advance(ft, state, p.TCP.Flags)
		}
		c.FastPath++
		return res, nil
	}

	// Slow path: classify the new flow against the rule set.
	rule, cycles, matched := c.matcher.Match(ft)
	res := Result{Cycles: CyclesParse + cycles}
	if !matched || rule.Action == Drop {
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	// TCP flows must begin with a SYN; anything else without state is
	// a stray mid-connection packet (fail closed).
	if ft.Proto == packet.ProtoTCP && !p.TCP.Flags.Has(packet.FlagSYN) {
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	if len(c.table) >= c.MaxEntries {
		c.TableFull++
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	state := StateEstablished
	if ft.Proto == packet.ProtoTCP {
		state = StateNew
	}
	c.table[ft] = state
	c.NewFlows++
	res.Verdict = Accept
	return res, nil
}

// advance moves a TCP connection through its lifecycle and removes
// finished connections from the table.
func (c *Conntrack) advance(ft packet.FiveTuple, state ConnState, flags packet.TCPFlags) {
	key := ft
	if _, ok := c.table[key]; !ok {
		key = ft.Reverse()
	}
	switch {
	case flags.Has(packet.FlagRST):
		delete(c.table, key)
	case flags.Has(packet.FlagFIN):
		if state == StateClosing {
			delete(c.table, key)
		} else {
			c.table[key] = StateClosing
		}
	case state == StateNew && flags.Has(packet.FlagACK):
		c.table[key] = StateEstablished
	}
}
