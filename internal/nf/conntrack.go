package nf

import (
	"fairbench/internal/packet"
)

// Connection-tracking (stateful) firewall. Rule lookup happens only for
// the first packet of a flow; established flows take a hash-table fast
// path. This is the software analogue of SmartNIC flow offload — and
// the reason per-packet cost drops sharply once a flow is vetted, which
// is the effect the §4.2 example's accelerator exploits in hardware.
//
// The table is bounded, and what happens past the bound is a first-
// class, configurable policy (ConntrackConfig): refuse new flows (the
// conventional fail-closed DoS posture, now with attributed overflow
// accounting), evict a random or least-recently-used entry, and/or
// answer TCP SYNs statelessly with SYN cookies so connection setup
// survives table exhaustion at extra per-packet cost. Overload-regime
// comparisons depend on these semantics being explicit: a stateful
// firewall that silently sheds new flows looks identical to a healthy
// one on a throughput plot.

// ConnState tracks a TCP connection's lifecycle (UDP flows are modelled
// as established-on-first-accept with idle expiry left to table churn).
type ConnState uint8

// Connection states.
const (
	StateNew ConnState = iota
	StateEstablished
	StateClosing
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateEstablished:
		return "established"
	case StateClosing:
		return "closing"
	default:
		return "unknown"
	}
}

// CyclesConntrackHit is the fast-path cost of an established-flow
// lookup — far below a rule-set scan.
const CyclesConntrackHit = 80

// CyclesSYNCookie is the extra cost of generating or validating a SYN
// cookie: connection state is recomputed from the packet instead of
// read from the table, the classic throughput-for-memory trade.
const CyclesSYNCookie = 110

// ConntrackConfig bounds the connection table and selects degradation
// behaviour at the bound.
type ConntrackConfig struct {
	// MaxEntries bounds the table (<=0 means 1M entries).
	MaxEntries int
	// Policy is applied when a new flow arrives at a full table.
	Policy EvictPolicy
	// SYNCookies answers TCP SYNs statelessly when the table cannot
	// take the flow, and accepts rule-matched mid-connection TCP
	// packets by cookie validation instead of dropping them.
	SYNCookies bool
	// Seed drives eviction randomness (EvictRandom only).
	Seed uint64
}

// ConntrackStats is a point-in-time snapshot of the counters. Every
// processed packet lands in exactly one of the outcome counters, so
// drops under pressure are attributed, never silently lost.
type ConntrackStats struct {
	// NewFlows counts table installs; FastPath counts established-flow
	// hits that bypassed the rule scan.
	NewFlows, FastPath uint64
	// Dropped counts every dropped packet; OverflowDrops is the subset
	// refused solely because the table was full (EvictNone).
	Dropped, OverflowDrops uint64
	// Evicted counts entries removed to admit new flows;
	// EvictedEstablished is the subset that held established
	// connections — the collateral-damage signal.
	Evicted, EvictedEstablished uint64
	// SYNCookiesSent counts stateless SYN accepts under pressure;
	// CookieBypassed counts mid-connection packets accepted by cookie
	// validation with no table entry.
	SYNCookiesSent, CookieBypassed uint64
	// TableFull counts arrivals at a full table whatever the outcome.
	TableFull uint64
	// Entries and MaxEntries snapshot table occupancy.
	Entries, MaxEntries int
}

// Conntrack is a stateful firewall: new flows consult the rule matcher,
// established flows bypass it.
type Conntrack struct {
	name    string
	matcher Matcher
	cfg     ConntrackConfig
	table   *FlowTable
	// Stats (see ConntrackStats for the accounting contract).
	NewFlows, FastPath, Dropped    uint64
	OverflowDrops                  uint64
	EvictedEstablished             uint64
	SYNCookiesSent, CookieBypassed uint64
	// TableFull counts arrivals at a full table whatever the outcome
	// (refused, evicted-to-admit, or cookie-answered).
	TableFull uint64
}

// NewConntrack builds a fail-closed stateful firewall over matcher with
// the given table bound (<=0 means 1M entries).
func NewConntrack(name string, m Matcher, maxEntries int) *Conntrack {
	return NewConntrackWith(name, m, ConntrackConfig{MaxEntries: maxEntries})
}

// NewConntrackWith builds a stateful firewall with explicit degradation
// semantics.
func NewConntrackWith(name string, m Matcher, cfg ConntrackConfig) *Conntrack {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 20
	}
	return &Conntrack{
		name:    name,
		matcher: m,
		cfg:     cfg,
		table:   NewFlowTable(cfg.MaxEntries, cfg.Policy, cfg.Seed),
	}
}

// Name implements Func.
func (c *Conntrack) Name() string { return c.name }

// Entries returns the live connection count.
func (c *Conntrack) Entries() int { return c.table.Len() }

// MaxEntries returns the table bound.
func (c *Conntrack) MaxEntries() int { return c.table.Cap() }

// Config returns the degradation configuration.
func (c *Conntrack) Config() ConntrackConfig { return c.cfg }

// Evicted returns the number of entries evicted to admit new flows.
func (c *Conntrack) Evicted() uint64 { return c.table.Evictions }

// Stats snapshots the counters.
func (c *Conntrack) Stats() ConntrackStats {
	return ConntrackStats{
		NewFlows:           c.NewFlows,
		FastPath:           c.FastPath,
		Dropped:            c.Dropped,
		OverflowDrops:      c.OverflowDrops,
		Evicted:            c.table.Evictions,
		EvictedEstablished: c.EvictedEstablished,
		SYNCookiesSent:     c.SYNCookiesSent,
		CookieBypassed:     c.CookieBypassed,
		TableFull:          c.TableFull,
		Entries:            c.table.Len(),
		MaxEntries:         c.table.Cap(),
	}
}

// State reports the tracked state of a flow (either direction).
func (c *Conntrack) State(ft packet.FiveTuple) (ConnState, bool) {
	if v, ok := c.table.Get(ft); ok {
		return ConnState(v), true
	}
	v, ok := c.table.Get(ft.Reverse())
	return ConnState(v), ok
}

// Process implements Func.
//
//fairbench:hotpath fairbench case nf-conntrack-evict-*
func (c *Conntrack) Process(p *packet.Parser, _ []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		c.Dropped++
		return Result{Verdict: Drop, Cycles: CyclesParse}, nil
	}

	// Fast path: known flow in either direction.
	if state, known := c.State(ft); known {
		res := Result{Verdict: Accept, Cycles: CyclesParse + CyclesConntrackHit}
		c.table.Touch(ft)
		c.table.Touch(ft.Reverse())
		if ft.Proto == packet.ProtoTCP {
			c.advance(ft, state, p.TCP.Flags)
		}
		c.FastPath++
		return res, nil
	}

	// Slow path: classify the new flow against the rule set.
	rule, cycles, matched := c.matcher.Match(ft)
	res := Result{Cycles: CyclesParse + cycles}
	if !matched || rule.Action == Drop {
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	// TCP flows must begin with a SYN; anything else without state is a
	// stray mid-connection packet (fail closed) — unless SYN cookies
	// are on, in which case a rule-matched packet is accepted by cookie
	// validation, the stateless continuation of a cookie'd handshake.
	if ft.Proto == packet.ProtoTCP && !p.TCP.Flags.Has(packet.FlagSYN) {
		if c.cfg.SYNCookies {
			c.CookieBypassed++
			res.Verdict = Accept
			res.Cycles += CyclesSYNCookie
			return res, nil
		}
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	if c.table.Len() >= c.table.Cap() {
		c.TableFull++
		if c.cfg.Policy == EvictNone {
			// SYN cookies keep TCP setup alive without table state; all
			// other overflow arrivals are refused, with the refusal
			// attributed rather than folded into generic drops.
			if c.cfg.SYNCookies && ft.Proto == packet.ProtoTCP {
				c.SYNCookiesSent++
				res.Verdict = Accept
				res.Cycles += CyclesSYNCookie
				return res, nil
			}
			c.OverflowDrops++
			c.Dropped++
			res.Verdict = Drop
			return res, nil
		}
	}
	state := StateEstablished
	if ft.Proto == packet.ProtoTCP {
		state = StateNew
	}
	_, victimState, evicted, inserted := c.table.Put(ft, uint32(state))
	if !inserted {
		// Unreachable with the overflow branch above, but keep the
		// accounting total: a refused insert is an attributed drop.
		c.OverflowDrops++
		c.Dropped++
		res.Verdict = Drop
		return res, nil
	}
	if evicted && ConnState(victimState) == StateEstablished {
		c.EvictedEstablished++
	}
	c.NewFlows++
	res.Verdict = Accept
	return res, nil
}

// advance moves a TCP connection through its lifecycle and removes
// finished connections from the table.
func (c *Conntrack) advance(ft packet.FiveTuple, state ConnState, flags packet.TCPFlags) {
	key := ft
	if _, ok := c.table.Get(key); !ok {
		key = ft.Reverse()
	}
	switch {
	case flags.Has(packet.FlagRST):
		c.table.Delete(key)
	case flags.Has(packet.FlagFIN):
		if state == StateClosing {
			c.table.Delete(key)
		} else {
			c.table.Set(key, uint32(StateClosing))
		}
	case state == StateNew && flags.Has(packet.FlagACK):
		c.table.Set(key, uint32(StateEstablished))
	}
}
