package nf

import (
	"strings"
	"testing"

	"fairbench/internal/packet"
	"fairbench/internal/perf"
)

func TestLoadBalancerPickStable(t *testing.T) {
	lb := NewLoadBalancer("lb", 64)
	lb.AddBackend(Backend{Name: "b1", Addr: packet.Addr4{10, 0, 1, 1}})
	lb.AddBackend(Backend{Name: "b2", Addr: packet.Addr4{10, 0, 1, 2}})
	lb.AddBackend(Backend{Name: "b3", Addr: packet.Addr4{10, 0, 1, 3}})

	ft := natFlow(4242, packet.ProtoTCP)
	first, err := lb.Pick(ft)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b, _ := lb.Pick(ft)
		if b.Name != first.Name {
			t.Fatal("pick must be deterministic per flow")
		}
	}
	// Direction symmetry: the reverse flow lands on the same backend.
	rev, _ := lb.Pick(ft.Reverse())
	if rev.Name != first.Name {
		t.Error("reverse direction should pick the same backend")
	}
}

func TestLoadBalancerSpread(t *testing.T) {
	lb := NewLoadBalancer("lb", 64)
	for _, n := range []string{"b1", "b2", "b3", "b4"} {
		lb.AddBackend(Backend{Name: n, Addr: packet.Addr4{10, 0, 1, byte(len(n))}})
	}
	counts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		ft := packet.FiveTuple{
			Src: packet.Addr4From(uint32(0x0a000000 + i)), Dst: packet.Addr4{1, 1, 1, 1},
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP,
		}
		b, err := lb.Pick(ft)
		if err != nil {
			t.Fatal(err)
		}
		counts[b.Name]++
	}
	for n, c := range counts {
		if c < 2000 || c > 10000 {
			t.Errorf("backend %s got %d of 20000 flows; want roughly even spread", n, c)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d backends used", len(counts))
	}
}

func TestLoadBalancerChurnRemapsFraction(t *testing.T) {
	// Consistent hashing: removing one of four backends should remap
	// roughly 1/4 of flows, not all of them.
	build := func(backends []string) map[int]string {
		lb := NewLoadBalancer("lb", 64)
		for i, n := range backends {
			lb.AddBackend(Backend{Name: n, Addr: packet.Addr4{10, 0, 1, byte(i)}})
		}
		out := make(map[int]string)
		for i := 0; i < 5000; i++ {
			ft := packet.FiveTuple{
				Src: packet.Addr4From(uint32(0x0a000000 + i)), Dst: packet.Addr4{1, 1, 1, 1},
				SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP,
			}
			b, _ := lb.Pick(ft)
			out[i] = b.Name
		}
		return out
	}
	before := build([]string{"b1", "b2", "b3", "b4"})
	after := build([]string{"b1", "b2", "b3"})
	moved := 0
	for i, n := range before {
		if after[i] != n {
			moved++
		}
	}
	frac := float64(moved) / float64(len(before))
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("churn moved %.0f%% of flows; consistent hashing should move ≈25%%", frac*100)
	}
}

func TestLoadBalancerProcessRewrites(t *testing.T) {
	lb := NewLoadBalancer("lb", 16)
	backend := Backend{Name: "b1", Addr: packet.Addr4{10, 0, 9, 9}}
	lb.AddBackend(backend)
	ft := natFlow(1000, packet.ProtoTCP)
	frame := buildFor(t, ft, []byte("payload"))
	p := packet.NewParser()
	_ = p.Parse(frame)
	res, err := lb.Process(p, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Rewritten {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	p2 := packet.NewParser()
	if err := p2.Parse(frame); err != nil {
		t.Fatalf("rewritten frame invalid: %v", err)
	}
	if p2.IP4.Dst != backend.Addr {
		t.Errorf("dst = %v", p2.IP4.Dst)
	}
	l4 := frame[p2.Eth.HeaderLen()+p2.IP4.HeaderLen() : p2.Eth.HeaderLen()+int(p2.IP4.Length)]
	if !packet.VerifyChecksumTCP(p2.IP4.Src, p2.IP4.Dst, l4) {
		t.Error("TCP checksum invalid after LB rewrite")
	}
	if lb.PerBackend["b1"] != 1 {
		t.Errorf("PerBackend = %v", lb.PerBackend)
	}
}

func TestLoadBalancerNoBackends(t *testing.T) {
	lb := NewLoadBalancer("lb", 8)
	if _, err := lb.Pick(natFlow(1, packet.ProtoTCP)); err != ErrNoBackends {
		t.Errorf("err = %v", err)
	}
	lb.AddBackend(Backend{Name: "x", Addr: packet.Addr4{1, 2, 3, 4}})
	lb.RemoveBackend("x")
	if lb.Backends() != 0 {
		t.Error("RemoveBackend failed")
	}
}

func TestAhoCorasickBasics(t *testing.T) {
	ac, err := NewAhoCorasick([]string{"he", "she", "his", "hers"})
	if err != nil {
		t.Fatal(err)
	}
	var hits []string
	ac.Search([]byte("ushers"), func(p, end int) bool {
		hits = append(hits, ac.Patterns()[p])
		return true
	})
	// Classic example: "ushers" contains she, he, hers.
	want := map[string]bool{"she": true, "he": true, "hers": true}
	if len(hits) != 3 {
		t.Fatalf("hits = %v, want 3 matches", hits)
	}
	for _, h := range hits {
		if !want[h] {
			t.Errorf("unexpected match %q", h)
		}
	}
}

func TestAhoCorasickOverlapsAndNoMatch(t *testing.T) {
	ac, _ := NewAhoCorasick([]string{"aa"})
	count := 0
	ac.Search([]byte("aaaa"), func(int, int) bool { count++; return true })
	if count != 3 {
		t.Errorf("overlapping 'aa' in 'aaaa' = %d, want 3", count)
	}
	if ac.Contains([]byte("bbbb")) {
		t.Error("no match expected")
	}
	empty, _ := NewAhoCorasick(nil)
	if empty.Contains([]byte("anything")) {
		t.Error("empty automaton matches nothing")
	}
}

func TestAhoCorasickRejectsEmptyPattern(t *testing.T) {
	if _, err := NewAhoCorasick([]string{"ok", ""}); err == nil {
		t.Error("empty pattern should be rejected")
	}
}

func TestAhoCorasickMatchesNaive(t *testing.T) {
	// Property check against naive search on random-ish data.
	patterns := []string{"attack", "tac", "ck", "kat", "tta"}
	ac, err := NewAhoCorasick(patterns)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("kattackattacktactickck")
	got := make(map[string]int)
	ac.Search(data, func(p, _ int) bool { got[patterns[p]]++; return true })
	for _, pat := range patterns {
		naive := strings.Count(string(data), pat)
		// strings.Count does not count overlapping occurrences; count
		// them naively.
		overlap := 0
		for i := 0; i+len(pat) <= len(data); i++ {
			if string(data[i:i+len(pat)]) == pat {
				overlap++
			}
		}
		if got[pat] != overlap {
			t.Errorf("pattern %q: ac=%d naive=%d (strings.Count=%d)", pat, got[pat], overlap, naive)
		}
	}
}

func TestDPIDropsSignatureTraffic(t *testing.T) {
	d, err := NewDPI("ips", []string{"EVIL", "exploit"})
	if err != nil {
		t.Fatal(err)
	}
	ft := natFlow(2000, packet.ProtoTCP)
	bad := buildFor(t, ft, []byte("payload with EVIL inside"))
	good := buildFor(t, ft, []byte("plain payload"))
	p := packet.NewParser()

	_ = p.Parse(bad)
	res, err := d.Process(p, bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Drop {
		t.Errorf("signature traffic verdict = %v", res.Verdict)
	}
	if d.Alerts[0] != 1 {
		t.Errorf("Alerts = %v", d.Alerts)
	}

	_ = p.Parse(good)
	res2, err := d.Process(p, good)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Accept {
		t.Errorf("clean traffic verdict = %v", res2.Verdict)
	}
	// DPI cost scales with payload length.
	if res.Cycles <= CyclesParse {
		t.Error("DPI cycles should include per-byte inspection")
	}
	if d.Inspected == 0 {
		t.Error("Inspected bytes not counted")
	}
}

func TestFlowCounterAndJFI(t *testing.T) {
	c := NewFlowCounter("count")
	p := packet.NewParser()
	// Two flows with unequal byte shares.
	for i := 0; i < 9; i++ {
		frame := buildFor(t, natFlow(1, packet.ProtoUDP), make([]byte, 100))
		_ = p.Parse(frame)
		if _, err := c.Process(p, frame); err != nil {
			t.Fatal(err)
		}
	}
	frame := buildFor(t, natFlow(2, packet.ProtoUDP), make([]byte, 100))
	_ = p.Parse(frame)
	if _, err := c.Process(p, frame); err != nil {
		t.Fatal(err)
	}
	if len(c.Packets) != 2 {
		t.Fatalf("flows = %d", len(c.Packets))
	}
	j := perf.Jain(c.ByteAllocations())
	if j <= 0.5 || j >= 1 {
		t.Errorf("JFI of 9:1 split = %v, want in (0.5, 1)", j)
	}
}

func TestPipeline(t *testing.T) {
	fw := NewFirewall("fw", NewLinearMatcher([]Rule{
		{ID: 0, Proto: packet.ProtoTCP, Action: Accept},
	}))
	d, _ := NewDPI("ips", []string{"EVIL"})
	pl := NewPipeline("fw+ips", fw, d)
	if pl.Name() != "fw+ips" {
		t.Error("name")
	}
	p := packet.NewParser()

	// TCP with clean payload: passes both, cycles accumulate.
	clean := buildFor(t, natFlow(1, packet.ProtoTCP), []byte("fine"))
	_ = p.Parse(clean)
	res, err := pl.Process(p, clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Errorf("verdict = %v", res.Verdict)
	}
	if res.Cycles < 2*CyclesParse {
		t.Errorf("pipeline cycles = %d, want both stages charged", res.Cycles)
	}

	// UDP: firewall default-drops, DPI never runs.
	udp := buildFor(t, natFlow(1, packet.ProtoUDP), []byte("EVIL"))
	_ = p.Parse(udp)
	res2, _ := pl.Process(p, udp)
	if res2.Verdict != Drop {
		t.Errorf("verdict = %v", res2.Verdict)
	}
	if d.Alerts[0] != 0 {
		t.Error("DPI should not have run after a Drop")
	}

	// TCP with signature: firewall accepts, DPI drops.
	evil := buildFor(t, natFlow(1, packet.ProtoTCP), []byte("EVIL"))
	_ = p.Parse(evil)
	res3, _ := pl.Process(p, evil)
	if res3.Verdict != Drop {
		t.Errorf("verdict = %v", res3.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if Accept.String() != "accept" || Drop.String() != "drop" || Rewritten.String() != "rewritten" {
		t.Error("verdict strings")
	}
	if Verdict(99).String() != "unknown" {
		t.Error("unknown verdict")
	}
}

func TestByteAllocationsSortedDeterministic(t *testing.T) {
	// ByteAllocations pins the downstream float accumulation order by
	// sorting; map iteration order must not reach the caller. The large
	// value makes any unsorted order visible to Jain's index too.
	c := NewFlowCounter("count")
	c.Bytes[natFlow(99, packet.ProtoUDP)] = 1 << 53
	for i := uint16(0); i < 12; i++ {
		c.Bytes[natFlow(i, packet.ProtoUDP)] = uint64(i) + 1
	}
	want := make([]float64, 0, 13)
	for i := 1; i <= 12; i++ {
		want = append(want, float64(i))
	}
	want = append(want, float64(uint64(1)<<53))
	for trial := 0; trial < 50; trial++ {
		got := c.ByteAllocations()
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: alloc[%d] = %v, want %v (unsorted map order leaked)", trial, i, got[i], want[i])
			}
		}
	}
}
