package nf

import (
	"errors"
	"fmt"
	"sort"

	"fairbench/internal/packet"
)

// Backend is a load-balancer target.
type Backend struct {
	Name string
	Addr packet.Addr4
}

// CyclesLBAffinity is the cost of an affinity-table hit — a single
// hash lookup, cheaper than walking the consistent-hash ring.
const CyclesLBAffinity = 45

// LoadBalancer rewrites destination addresses to a backend chosen by
// consistent hashing over the flow five-tuple, so all packets of a flow
// (and its reverse direction, via the symmetric FastHash) reach the
// same backend, and backend churn remaps only ~1/n of flows.
//
// An optional bounded flow-affinity table (EnableAffinity) pins flows
// to the backend picked on their first packet, surviving ring changes.
// When the table overflows, EvictNone degrades gracefully: the flow
// falls back to the stateless ring pick (service continues, affinity
// guarantees don't), with the miss attributed in AffinityBroken.
type LoadBalancer struct {
	name     string
	ring     []ringEntry // sorted by hash
	backends map[string]Backend
	// PerBackend counts packets steered to each backend name.
	PerBackend map[string]uint64
	vnodes     int
	affinity   *FlowTable
	order      []string // backend names by affinity index
	// AffinityHits counts packets steered by the affinity table;
	// AffinityBroken counts flows that could not get (or lost) an
	// affinity slot and fell back to the ring — the collateral signal
	// under state pressure.
	AffinityHits, AffinityBroken uint64
}

type ringEntry struct {
	hash uint64
	name string
}

// ErrNoBackends is returned when processing with an empty ring.
var ErrNoBackends = errors.New("nf: load balancer has no backends")

// NewLoadBalancer builds a balancer with the given virtual-node count
// per backend (more vnodes → smoother distribution; 64 is customary).
func NewLoadBalancer(name string, vnodes int) *LoadBalancer {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &LoadBalancer{
		name:       name,
		backends:   make(map[string]Backend),
		PerBackend: make(map[string]uint64),
		vnodes:     vnodes,
	}
}

// Name implements Func.
func (lb *LoadBalancer) Name() string { return lb.name }

// EnableAffinity attaches a bounded flow-affinity table (<=0 capacity
// means 1M entries). The seed matters only for EvictRandom.
func (lb *LoadBalancer) EnableAffinity(capacity int, policy EvictPolicy, seed uint64) {
	lb.affinity = NewFlowTable(capacity, policy, seed)
}

// AffinityEntries returns the live affinity-table size (0 when
// affinity is off).
func (lb *LoadBalancer) AffinityEntries() int {
	if lb.affinity == nil {
		return 0
	}
	return lb.affinity.Len()
}

// AffinityEvicted returns the number of affinity entries evicted to
// admit new flows.
func (lb *LoadBalancer) AffinityEvicted() uint64 {
	if lb.affinity == nil {
		return 0
	}
	return lb.affinity.Evictions
}

// AddBackend inserts a backend into the ring.
func (lb *LoadBalancer) AddBackend(b Backend) {
	if _, dup := lb.backends[b.Name]; dup {
		lb.RemoveBackend(b.Name)
	}
	lb.backends[b.Name] = b
	// The affinity table stores indices into order, so the slice is
	// append-only: removed names stay as tombstones (validated against
	// the live backend map on lookup) and re-adds reuse their slot.
	seen := false
	for _, name := range lb.order {
		if name == b.Name {
			seen = true
			break
		}
	}
	if !seen {
		lb.order = append(lb.order, b.Name)
	}
	for v := 0; v < lb.vnodes; v++ {
		lb.ring = append(lb.ring, ringEntry{hash: vnodeHash(b.Name, v), name: b.Name})
	}
	sort.Slice(lb.ring, func(i, j int) bool { return lb.ring[i].hash < lb.ring[j].hash })
}

// RemoveBackend removes a backend and its virtual nodes.
func (lb *LoadBalancer) RemoveBackend(name string) {
	delete(lb.backends, name)
	kept := lb.ring[:0]
	for _, e := range lb.ring {
		if e.name != name {
			kept = append(kept, e)
		}
	}
	lb.ring = kept
}

// Backends returns the number of live backends.
func (lb *LoadBalancer) Backends() int { return len(lb.backends) }

// Pick returns the backend for a flow.
func (lb *LoadBalancer) Pick(ft packet.FiveTuple) (Backend, error) {
	if len(lb.ring) == 0 {
		return Backend{}, ErrNoBackends
	}
	h := ft.FastHash()
	// First ring entry with hash >= h, wrapping.
	i := sort.Search(len(lb.ring), func(i int) bool { return lb.ring[i].hash >= h })
	if i == len(lb.ring) {
		i = 0
	}
	return lb.backends[lb.ring[i].name], nil
}

// Process implements Func: rewrites the destination address to the
// picked backend (destination NAT style) with incremental checksum fix.
func (lb *LoadBalancer) Process(p *packet.Parser, frame []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		return Result{Verdict: Accept, Cycles: CyclesParse}, nil
	}
	b, cycles, err := lb.pickWithAffinity(ft)
	if err != nil {
		return Result{Verdict: Drop, Cycles: cycles}, err
	}
	lb.PerBackend[b.Name]++
	if err := rewriteDest(p, frame, b.Addr); err != nil {
		return Result{Verdict: Drop, Cycles: cycles}, err
	}
	return Result{Verdict: Rewritten, Cycles: cycles}, nil
}

// pickWithAffinity consults the affinity table first (when enabled),
// falling back to — and then trying to record — the ring pick.
func (lb *LoadBalancer) pickWithAffinity(ft packet.FiveTuple) (Backend, uint64, error) {
	if lb.affinity == nil {
		b, err := lb.Pick(ft)
		return b, CyclesParse + CyclesLBPick, err
	}
	if idx, hit := lb.affinity.Get(ft); hit {
		if int(idx) < len(lb.order) {
			if b, alive := lb.backends[lb.order[idx]]; alive {
				lb.affinity.Touch(ft)
				lb.AffinityHits++
				return b, CyclesParse + CyclesLBAffinity, nil
			}
		}
		// Stale pin: the backend left the pool. Drop the entry and
		// re-pick below — the flow's affinity is broken, not its
		// service.
		lb.affinity.Delete(ft)
		lb.AffinityBroken++
	}
	b, err := lb.Pick(ft)
	if err != nil {
		return b, CyclesParse + CyclesLBPick, err
	}
	if idx, known := lb.backendIndex(b.Name); known {
		if _, _, _, ok := lb.affinity.Put(ft, idx); !ok {
			// Full table, EvictNone: serve via the ring without a pin.
			lb.AffinityBroken++
		}
	}
	return b, CyclesParse + CyclesLBPick, nil
}

// backendIndex returns the order-slice index for a backend name.
func (lb *LoadBalancer) backendIndex(name string) (uint32, bool) {
	for i, n := range lb.order {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

// rewriteDest rewrites the IPv4 destination address with incremental
// checksum updates to the IP and transport checksums.
func rewriteDest(p *packet.Parser, frame []byte, newAddr packet.Addr4) error {
	ipStart := p.Eth.HeaderLen()
	ipHdrLen := p.IP4.HeaderLen()
	if len(frame) < ipStart+ipHdrLen {
		return fmt.Errorf("nf: frame shorter than parsed headers")
	}
	oldAddr := p.IP4.Dst

	ipCheck := beU16(frame[ipStart+10:])
	ipCheck = packet.UpdateChecksum32(ipCheck, oldAddr.Uint32(), newAddr.Uint32())
	copy(frame[ipStart+16:ipStart+20], newAddr[:])
	putU16(frame[ipStart+10:], ipCheck)

	l4Start := ipStart + ipHdrLen
	switch p.IP4.Protocol {
	case packet.ProtoTCP:
		check := beU16(frame[l4Start+16:])
		check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
		putU16(frame[l4Start+16:], check)
	case packet.ProtoUDP:
		check := beU16(frame[l4Start+6:])
		if check != 0 {
			check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
			if check == 0 {
				check = 0xffff
			}
			putU16(frame[l4Start+6:], check)
		}
	}
	return nil
}

// vnodeHash hashes a backend name and virtual-node index (FNV-1a with
// finalisation).
func vnodeHash(name string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(v)
	h *= prime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
