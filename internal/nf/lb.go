package nf

import (
	"errors"
	"fmt"
	"sort"

	"fairbench/internal/packet"
)

// Backend is a load-balancer target.
type Backend struct {
	Name string
	Addr packet.Addr4
}

// LoadBalancer rewrites destination addresses to a backend chosen by
// consistent hashing over the flow five-tuple, so all packets of a flow
// (and its reverse direction, via the symmetric FastHash) reach the
// same backend, and backend churn remaps only ~1/n of flows.
type LoadBalancer struct {
	name     string
	ring     []ringEntry // sorted by hash
	backends map[string]Backend
	// PerBackend counts packets steered to each backend name.
	PerBackend map[string]uint64
	vnodes     int
}

type ringEntry struct {
	hash uint64
	name string
}

// ErrNoBackends is returned when processing with an empty ring.
var ErrNoBackends = errors.New("nf: load balancer has no backends")

// NewLoadBalancer builds a balancer with the given virtual-node count
// per backend (more vnodes → smoother distribution; 64 is customary).
func NewLoadBalancer(name string, vnodes int) *LoadBalancer {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &LoadBalancer{
		name:       name,
		backends:   make(map[string]Backend),
		PerBackend: make(map[string]uint64),
		vnodes:     vnodes,
	}
}

// Name implements Func.
func (lb *LoadBalancer) Name() string { return lb.name }

// AddBackend inserts a backend into the ring.
func (lb *LoadBalancer) AddBackend(b Backend) {
	if _, dup := lb.backends[b.Name]; dup {
		lb.RemoveBackend(b.Name)
	}
	lb.backends[b.Name] = b
	for v := 0; v < lb.vnodes; v++ {
		lb.ring = append(lb.ring, ringEntry{hash: vnodeHash(b.Name, v), name: b.Name})
	}
	sort.Slice(lb.ring, func(i, j int) bool { return lb.ring[i].hash < lb.ring[j].hash })
}

// RemoveBackend removes a backend and its virtual nodes.
func (lb *LoadBalancer) RemoveBackend(name string) {
	delete(lb.backends, name)
	kept := lb.ring[:0]
	for _, e := range lb.ring {
		if e.name != name {
			kept = append(kept, e)
		}
	}
	lb.ring = kept
}

// Backends returns the number of live backends.
func (lb *LoadBalancer) Backends() int { return len(lb.backends) }

// Pick returns the backend for a flow.
func (lb *LoadBalancer) Pick(ft packet.FiveTuple) (Backend, error) {
	if len(lb.ring) == 0 {
		return Backend{}, ErrNoBackends
	}
	h := ft.FastHash()
	// First ring entry with hash >= h, wrapping.
	i := sort.Search(len(lb.ring), func(i int) bool { return lb.ring[i].hash >= h })
	if i == len(lb.ring) {
		i = 0
	}
	return lb.backends[lb.ring[i].name], nil
}

// Process implements Func: rewrites the destination address to the
// picked backend (destination NAT style) with incremental checksum fix.
func (lb *LoadBalancer) Process(p *packet.Parser, frame []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		return Result{Verdict: Accept, Cycles: CyclesParse}, nil
	}
	b, err := lb.Pick(ft)
	if err != nil {
		return Result{Verdict: Drop, Cycles: CyclesParse + CyclesLBPick}, err
	}
	lb.PerBackend[b.Name]++
	if err := rewriteDest(p, frame, b.Addr); err != nil {
		return Result{Verdict: Drop, Cycles: CyclesParse + CyclesLBPick}, err
	}
	return Result{Verdict: Rewritten, Cycles: CyclesParse + CyclesLBPick}, nil
}

// rewriteDest rewrites the IPv4 destination address with incremental
// checksum updates to the IP and transport checksums.
func rewriteDest(p *packet.Parser, frame []byte, newAddr packet.Addr4) error {
	ipStart := p.Eth.HeaderLen()
	ipHdrLen := p.IP4.HeaderLen()
	if len(frame) < ipStart+ipHdrLen {
		return fmt.Errorf("nf: frame shorter than parsed headers")
	}
	oldAddr := p.IP4.Dst

	ipCheck := beU16(frame[ipStart+10:])
	ipCheck = packet.UpdateChecksum32(ipCheck, oldAddr.Uint32(), newAddr.Uint32())
	copy(frame[ipStart+16:ipStart+20], newAddr[:])
	putU16(frame[ipStart+10:], ipCheck)

	l4Start := ipStart + ipHdrLen
	switch p.IP4.Protocol {
	case packet.ProtoTCP:
		check := beU16(frame[l4Start+16:])
		check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
		putU16(frame[l4Start+16:], check)
	case packet.ProtoUDP:
		check := beU16(frame[l4Start+6:])
		if check != 0 {
			check = packet.UpdateChecksum32(check, oldAddr.Uint32(), newAddr.Uint32())
			if check == 0 {
				check = 0xffff
			}
			putU16(frame[l4Start+6:], check)
		}
	}
	return nil
}

// vnodeHash hashes a backend name and virtual-node index (FNV-1a with
// finalisation).
func vnodeHash(name string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(v)
	h *= prime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
