package nf

import (
	"fmt"

	"fairbench/internal/packet"
)

// Prefix is an IPv4 prefix for rule matching.
type Prefix struct {
	Addr packet.Addr4
	Bits uint8 // 0 matches everything
}

// Contains reports whether the prefix covers addr.
func (p Prefix) Contains(addr packet.Addr4) bool {
	if p.Bits == 0 {
		return true
	}
	if p.Bits > 32 {
		return false
	}
	shift := 32 - uint32(p.Bits)
	return addr.Uint32()>>shift == p.Addr.Uint32()>>shift
}

// String renders CIDR form.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// PortRange matches an inclusive port interval; the zero value (0,0)
// matches any port.
type PortRange struct {
	Lo, Hi uint16
}

// Any reports whether the range matches all ports.
func (r PortRange) Any() bool { return r.Lo == 0 && r.Hi == 0 }

// Contains reports whether the range covers port.
func (r PortRange) Contains(port uint16) bool {
	if r.Any() {
		return true
	}
	return port >= r.Lo && port <= r.Hi
}

// Rule is a classic 5-tuple firewall rule.
type Rule struct {
	Src, Dst Prefix
	SrcPorts PortRange
	DstPorts PortRange
	Proto    uint8 // 0 = any
	Action   Verdict
	// ID is an opaque rule identifier surfaced in match statistics.
	ID int
}

// Matches reports whether the rule covers the flow.
func (r Rule) Matches(ft packet.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != ft.Proto {
		return false
	}
	return r.Src.Contains(ft.Src) && r.Dst.Contains(ft.Dst) &&
		r.SrcPorts.Contains(ft.SrcPort) && r.DstPorts.Contains(ft.DstPort)
}

// Matcher classifies a flow against a rule set. Implementations also
// report the work performed so the cycle model reflects algorithmic
// differences (the DESIGN.md matcher ablation).
type Matcher interface {
	// Match returns the first matching rule and true, charging cycles.
	Match(ft packet.FiveTuple) (Rule, uint64, bool)
	// Len returns the number of installed rules.
	Len() int
}

// LinearMatcher scans rules in priority order — the textbook baseline.
type LinearMatcher struct {
	rules []Rule
}

// NewLinearMatcher copies rules in priority order.
func NewLinearMatcher(rules []Rule) *LinearMatcher {
	return &LinearMatcher{rules: append([]Rule(nil), rules...)}
}

// Len implements Matcher.
func (m *LinearMatcher) Len() int { return len(m.rules) }

// Match implements Matcher: first match wins, cycles grow with the
// number of rules examined.
//
//fairbench:hotpath fairbench case nf-firewall-process
func (m *LinearMatcher) Match(ft packet.FiveTuple) (Rule, uint64, bool) {
	for i, r := range m.rules {
		if r.Matches(ft) {
			return r, uint64(i+1) * CyclesPerLinearRule, true
		}
	}
	return Rule{}, uint64(len(m.rules)) * CyclesPerLinearRule, false
}

// tupleKey is an exact-match key under a specific mask group.
type tupleKey struct {
	src, dst         uint32
	srcPort, dstPort uint16
	proto            uint8
}

// maskGroup is one tuple space: all rules sharing a mask signature.
type maskGroup struct {
	srcBits, dstBits       uint8
	srcPortAny, dstPortAny bool
	protoAny               bool
	rules                  map[tupleKey]Rule
}

func (g *maskGroup) key(ft packet.FiveTuple) tupleKey {
	k := tupleKey{}
	if g.srcBits > 0 {
		k.src = ft.Src.Uint32() >> (32 - uint32(g.srcBits))
	}
	if g.dstBits > 0 {
		k.dst = ft.Dst.Uint32() >> (32 - uint32(g.dstBits))
	}
	if !g.srcPortAny {
		k.srcPort = ft.SrcPort
	}
	if !g.dstPortAny {
		k.dstPort = ft.DstPort
	}
	if !g.protoAny {
		k.proto = ft.Proto
	}
	return k
}

// TupleSpaceMatcher implements tuple-space search (Srinivasan &
// Varghese): rules are grouped by mask signature and each group is one
// hash lookup. Match cost grows with the number of distinct mask
// groups, not the number of rules — the classic trade against linear
// scan. Port ranges other than any/exact are not supported by this
// matcher and are rejected at construction.
type TupleSpaceMatcher struct {
	groups []*maskGroup
	n      int
}

// NewTupleSpaceMatcher builds the tuple spaces. Rules with true port
// ranges (not any, not single-port) return an error; priority between
// overlapping rules follows lowest rule index via tie-break on ID order
// within a lookup round.
func NewTupleSpaceMatcher(rules []Rule) (*TupleSpaceMatcher, error) {
	m := &TupleSpaceMatcher{}
	byMask := make(map[string]*maskGroup)
	for i, r := range rules {
		if !r.SrcPorts.Any() && r.SrcPorts.Lo != r.SrcPorts.Hi {
			return nil, fmt.Errorf("nf: tuple-space matcher: rule %d has src port range %d-%d (only any/exact supported)", i, r.SrcPorts.Lo, r.SrcPorts.Hi)
		}
		if !r.DstPorts.Any() && r.DstPorts.Lo != r.DstPorts.Hi {
			return nil, fmt.Errorf("nf: tuple-space matcher: rule %d has dst port range %d-%d (only any/exact supported)", i, r.DstPorts.Lo, r.DstPorts.Hi)
		}
		sig := fmt.Sprintf("%d/%d/%t/%t/%t", r.Src.Bits, r.Dst.Bits, r.SrcPorts.Any(), r.DstPorts.Any(), r.Proto == 0)
		g, ok := byMask[sig]
		if !ok {
			g = &maskGroup{
				srcBits: r.Src.Bits, dstBits: r.Dst.Bits,
				srcPortAny: r.SrcPorts.Any(), dstPortAny: r.DstPorts.Any(),
				protoAny: r.Proto == 0,
				rules:    make(map[tupleKey]Rule),
			}
			byMask[sig] = g
			m.groups = append(m.groups, g)
		}
		k := tupleKey{}
		if g.srcBits > 0 {
			k.src = r.Src.Addr.Uint32() >> (32 - uint32(g.srcBits))
		}
		if g.dstBits > 0 {
			k.dst = r.Dst.Addr.Uint32() >> (32 - uint32(g.dstBits))
		}
		if !g.srcPortAny {
			k.srcPort = r.SrcPorts.Lo
		}
		if !g.dstPortAny {
			k.dstPort = r.DstPorts.Lo
		}
		if !g.protoAny {
			k.proto = r.Proto
		}
		if _, dup := g.rules[k]; !dup {
			g.rules[k] = r // first (highest-priority) rule wins the slot
		}
		m.n++
	}
	return m, nil
}

// Len implements Matcher.
func (m *TupleSpaceMatcher) Len() int { return m.n }

// Match implements Matcher. All groups are probed (the standard
// algorithm must, to find the highest-priority match), costing one hash
// lookup each; the lowest rule ID among hits wins.
func (m *TupleSpaceMatcher) Match(ft packet.FiveTuple) (Rule, uint64, bool) {
	cycles := uint64(len(m.groups)) * CyclesPerTupleGroup
	best := Rule{}
	found := false
	for _, g := range m.groups {
		if r, ok := g.rules[g.key(ft)]; ok {
			if !found || r.ID < best.ID {
				best = r
				found = true
			}
		}
	}
	return best, cycles, found
}

// Firewall is a stateless packet filter over a Matcher.
type Firewall struct {
	name    string
	matcher Matcher
	// DefaultAction applies when no rule matches.
	DefaultAction Verdict
	// Matched counts per-rule hits by rule ID.
	Matched map[int]uint64
	// Dropped and Accepted count outcomes.
	Dropped, Accepted uint64
}

// NewFirewall builds a firewall with a default-drop policy.
func NewFirewall(name string, m Matcher) *Firewall {
	return &Firewall{name: name, matcher: m, DefaultAction: Drop, Matched: make(map[int]uint64)}
}

// Name implements Func.
func (f *Firewall) Name() string { return f.name }

// Process implements Func: non-IPv4-TCP/UDP traffic is dropped (a
// firewall that cannot classify fails closed), otherwise the matcher
// decides.
//
//fairbench:hotpath fairbench case nf-firewall-process
func (f *Firewall) Process(p *packet.Parser, _ []byte) (Result, error) {
	ft, ok := p.FiveTuple()
	if !ok {
		f.Dropped++
		return Result{Verdict: Drop, Cycles: CyclesParse}, nil
	}
	rule, cycles, matched := f.matcher.Match(ft)
	res := Result{Cycles: CyclesParse + cycles}
	if matched {
		f.Matched[rule.ID]++
		res.Verdict = rule.Action
	} else {
		res.Verdict = f.DefaultAction
	}
	if res.Verdict == Drop {
		f.Dropped++
	} else {
		f.Accepted++
	}
	return res, nil
}
