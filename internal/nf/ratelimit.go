package nf

import (
	"fmt"

	"fairbench/internal/packet"
)

// Token-bucket rate limiter (policer). Time comes from an injected
// clock so the limiter works both under the discrete-event simulator
// (pass the simulation clock) and in tests (pass a fake).

// CyclesPolice is the per-packet cost of a token-bucket decision.
const CyclesPolice = 50

// TokenBucket polices aggregate throughput to ratePps with the given
// burst allowance. Packets arriving with an empty bucket are dropped.
type TokenBucket struct {
	name    string
	ratePps float64
	burst   float64
	now     func() float64

	tokens   float64
	lastFill float64
	// Conforming and Policed count outcomes.
	Conforming, Policed uint64
}

// NewTokenBucket builds a policer. rate must be positive, burst at
// least 1 token, and now a monotone clock in seconds.
func NewTokenBucket(name string, ratePps, burst float64, now func() float64) (*TokenBucket, error) {
	if ratePps <= 0 {
		return nil, fmt.Errorf("nf: token bucket rate %v must be positive", ratePps)
	}
	if burst < 1 {
		return nil, fmt.Errorf("nf: token bucket burst %v must be >= 1", burst)
	}
	if now == nil {
		return nil, fmt.Errorf("nf: token bucket needs a clock")
	}
	return &TokenBucket{
		name:     name,
		ratePps:  ratePps,
		burst:    burst,
		now:      now,
		tokens:   burst,
		lastFill: now(),
	}, nil
}

// Name implements Func.
func (tb *TokenBucket) Name() string { return tb.name }

// Tokens returns the current bucket level (after refill), for tests.
func (tb *TokenBucket) Tokens() float64 {
	tb.refill()
	return tb.tokens
}

func (tb *TokenBucket) refill() {
	now := tb.now()
	if now <= tb.lastFill {
		return
	}
	tb.tokens += (now - tb.lastFill) * tb.ratePps
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.lastFill = now
}

// Process implements Func.
func (tb *TokenBucket) Process(_ *packet.Parser, _ []byte) (Result, error) {
	tb.refill()
	res := Result{Cycles: CyclesParse + CyclesPolice}
	if tb.tokens >= 1 {
		tb.tokens--
		tb.Conforming++
		res.Verdict = Accept
		return res, nil
	}
	tb.Policed++
	res.Verdict = Drop
	return res, nil
}
