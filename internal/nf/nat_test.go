package nf

import (
	"testing"

	"fairbench/internal/packet"
)

var natOpts = packet.BuildOpts{SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2}}

func natFlow(srcPort uint16, proto uint8) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr4{192, 168, 0, 10}, Dst: packet.Addr4{1, 2, 3, 4},
		SrcPort: srcPort, DstPort: 80, Proto: proto,
	}
}

func buildFor(t *testing.T, ft packet.FiveTuple, payload []byte) []byte {
	t.Helper()
	var frame []byte
	var err error
	if ft.Proto == packet.ProtoTCP {
		frame, err = packet.BuildTCP4(natOpts, ft, packet.FlagACK, 7, 9, payload)
	} else {
		frame, err = packet.BuildUDP4(natOpts, ft, payload)
	}
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestNATRewritesAndChecksumsStayValid(t *testing.T) {
	extern := packet.Addr4{203, 0, 113, 1}
	for _, proto := range []uint8{packet.ProtoTCP, packet.ProtoUDP} {
		n := NewNAT("nat", extern)
		ft := natFlow(5555, proto)
		frame := buildFor(t, ft, []byte("hello-nat"))
		p := packet.NewParser()
		if err := p.Parse(frame); err != nil {
			t.Fatal(err)
		}
		res, err := n.Process(p, frame)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Rewritten {
			t.Fatalf("proto %d: verdict = %v", proto, res.Verdict)
		}
		// Reparse the rewritten frame: it must still be fully valid
		// (the IPv4 decoder verifies the header checksum).
		p2 := packet.NewParser()
		if err := p2.Parse(frame); err != nil {
			t.Fatalf("proto %d: rewritten frame invalid: %v", proto, err)
		}
		if p2.IP4.Src != extern {
			t.Errorf("proto %d: src = %v, want %v", proto, p2.IP4.Src, extern)
		}
		ft2, _ := p2.FiveTuple()
		if ft2.SrcPort == 5555 {
			t.Errorf("proto %d: source port not rewritten", proto)
		}
		// Transport checksum must verify after the incremental update.
		ipStart := p2.Eth.HeaderLen()
		l4 := frame[ipStart+p2.IP4.HeaderLen() : ipStart+int(p2.IP4.Length)]
		if proto == packet.ProtoTCP {
			if !packet.VerifyChecksumTCP(p2.IP4.Src, p2.IP4.Dst, l4) {
				t.Errorf("TCP checksum invalid after NAT")
			}
		} else {
			if !packet.VerifyChecksumUDP(p2.IP4.Src, p2.IP4.Dst, l4) {
				t.Errorf("UDP checksum invalid after NAT")
			}
		}
	}
}

func TestNATBindingReuse(t *testing.T) {
	n := NewNAT("nat", packet.Addr4{203, 0, 113, 1})
	ft := natFlow(6000, packet.ProtoUDP)
	p := packet.NewParser()

	frame1 := buildFor(t, ft, nil)
	_ = p.Parse(frame1)
	res1, err := n.Process(p, frame1)
	if err != nil {
		t.Fatal(err)
	}
	p1 := packet.NewParser()
	_ = p1.Parse(frame1)
	port1, _ := p1.FiveTuple()

	frame2 := buildFor(t, ft, nil)
	_ = p.Parse(frame2)
	res2, err := n.Process(p, frame2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := packet.NewParser()
	_ = p2.Parse(frame2)
	port2, _ := p2.FiveTuple()

	if port1.SrcPort != port2.SrcPort {
		t.Errorf("same flow must reuse its binding: %d vs %d", port1.SrcPort, port2.SrcPort)
	}
	if n.Bindings() != 1 || n.Hits != 1 || n.Misses != 1 {
		t.Errorf("bindings=%d hits=%d misses=%d", n.Bindings(), n.Hits, n.Misses)
	}
	if res2.Cycles >= res1.Cycles {
		t.Errorf("established-flow cost (%d) should be below first-packet cost (%d)", res2.Cycles, res1.Cycles)
	}
}

func TestNATDistinctFlowsDistinctPorts(t *testing.T) {
	n := NewNAT("nat", packet.Addr4{203, 0, 113, 1})
	seen := make(map[uint16]bool)
	p := packet.NewParser()
	for i := 0; i < 100; i++ {
		ft := natFlow(uint16(7000+i), packet.ProtoUDP)
		frame := buildFor(t, ft, nil)
		_ = p.Parse(frame)
		if _, err := n.Process(p, frame); err != nil {
			t.Fatal(err)
		}
		out := packet.NewParser()
		_ = out.Parse(frame)
		oft, _ := out.FiveTuple()
		if seen[oft.SrcPort] {
			t.Fatalf("external port %d reused across flows", oft.SrcPort)
		}
		seen[oft.SrcPort] = true
	}
	if n.Bindings() != 100 {
		t.Errorf("bindings = %d", n.Bindings())
	}
}

func TestNATPassesNonIP(t *testing.T) {
	n := NewNAT("nat", packet.Addr4{203, 0, 113, 1})
	e := packet.Ethernet{EtherType: 0x0806}
	frame := make([]byte, 60)
	_, _ = e.SerializeTo(frame)
	p := packet.NewParser()
	_ = p.Parse(frame)
	res, err := n.Process(p, frame)
	if err != nil || res.Verdict != Accept {
		t.Errorf("non-IP through NAT: %v %v", res.Verdict, err)
	}
}
