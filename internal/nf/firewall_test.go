package nf

import (
	"math/rand"
	"testing"

	"fairbench/internal/packet"
)

func pfx(a, b, c, d byte, bits uint8) Prefix {
	return Prefix{Addr: packet.Addr4{a, b, c, d}, Bits: bits}
}

func flow(src, dst packet.Addr4, sp, dp uint16, proto uint8) packet.FiveTuple {
	return packet.FiveTuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: proto}
}

var testRules = []Rule{
	{ID: 0, Src: pfx(10, 0, 0, 0, 8), Dst: pfx(192, 168, 1, 0, 24), DstPorts: PortRange{443, 443}, Proto: packet.ProtoTCP, Action: Accept},
	{ID: 1, Src: pfx(10, 0, 0, 0, 8), Dst: pfx(192, 168, 1, 0, 24), DstPorts: PortRange{53, 53}, Proto: packet.ProtoUDP, Action: Accept},
	{ID: 2, Src: pfx(10, 66, 0, 0, 16), Action: Drop}, // blocklisted subnet
	{ID: 3, Src: pfx(0, 0, 0, 0, 0), Dst: pfx(192, 168, 2, 0, 24), DstPorts: PortRange{80, 80}, Proto: packet.ProtoTCP, Action: Accept},
}

func TestPrefixContains(t *testing.T) {
	p := pfx(10, 1, 0, 0, 16)
	if !p.Contains(packet.Addr4{10, 1, 200, 3}) {
		t.Error("10.1.200.3 should match 10.1.0.0/16")
	}
	if p.Contains(packet.Addr4{10, 2, 0, 1}) {
		t.Error("10.2.0.1 should not match 10.1.0.0/16")
	}
	if !pfx(0, 0, 0, 0, 0).Contains(packet.Addr4{1, 2, 3, 4}) {
		t.Error("/0 matches everything")
	}
	if !pfx(10, 0, 0, 5, 32).Contains(packet.Addr4{10, 0, 0, 5}) {
		t.Error("/32 exact match")
	}
	if pfx(10, 0, 0, 5, 33).Contains(packet.Addr4{10, 0, 0, 5}) {
		t.Error("invalid bits should never match")
	}
	if got := pfx(10, 0, 0, 0, 8).String(); got != "10.0.0.0/8" {
		t.Errorf("Prefix string = %q", got)
	}
}

func TestPortRange(t *testing.T) {
	if !(PortRange{}).Any() || !(PortRange{}).Contains(12345) {
		t.Error("zero range matches any port")
	}
	r := PortRange{100, 200}
	if !r.Contains(100) || !r.Contains(200) || !r.Contains(150) {
		t.Error("inclusive bounds")
	}
	if r.Contains(99) || r.Contains(201) {
		t.Error("outside bounds")
	}
}

func TestLinearMatcherFirstMatchWins(t *testing.T) {
	m := NewLinearMatcher(testRules)
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Flow matching rule 0.
	ft := flow(packet.Addr4{10, 5, 5, 5}, packet.Addr4{192, 168, 1, 9}, 40000, 443, packet.ProtoTCP)
	r, cycles, ok := m.Match(ft)
	if !ok || r.ID != 0 {
		t.Fatalf("match = %+v, %v", r, ok)
	}
	if cycles != CyclesPerLinearRule {
		t.Errorf("cycles for first rule = %d, want %d", cycles, CyclesPerLinearRule)
	}
	// Blocklisted source also covered by rule 0's prefix? 10.66.x is
	// inside 10/8 but port/proto differ; it falls to rule 2.
	ft2 := flow(packet.Addr4{10, 66, 1, 1}, packet.Addr4{8, 8, 8, 8}, 1, 2, packet.ProtoTCP)
	r2, cycles2, ok2 := m.Match(ft2)
	if !ok2 || r2.ID != 2 {
		t.Fatalf("match2 = %+v, %v", r2, ok2)
	}
	if cycles2 != 3*CyclesPerLinearRule {
		t.Errorf("cycles after scanning 3 rules = %d", cycles2)
	}
	// No match: full scan cost.
	ftMiss := flow(packet.Addr4{172, 16, 0, 1}, packet.Addr4{8, 8, 8, 8}, 1, 2, packet.ProtoTCP)
	_, cyclesMiss, okMiss := m.Match(ftMiss)
	if okMiss {
		t.Error("should not match")
	}
	if cyclesMiss != 4*CyclesPerLinearRule {
		t.Errorf("miss cycles = %d", cyclesMiss)
	}
}

func TestTupleSpaceMatcherAgreesWithLinear(t *testing.T) {
	// Property: for rule sets without true port ranges, tuple-space and
	// linear matchers return the same rule on every flow.
	ts, err := NewTupleSpaceMatcher(testRules)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinearMatcher(testRules)
	if ts.Len() != lin.Len() {
		t.Fatalf("Len mismatch: %d vs %d", ts.Len(), lin.Len())
	}
	r := rand.New(rand.NewSource(31))
	addrs := []packet.Addr4{
		{10, 5, 5, 5}, {10, 66, 1, 1}, {192, 168, 1, 9}, {192, 168, 2, 7}, {8, 8, 8, 8}, {172, 16, 0, 1},
	}
	ports := []uint16{53, 80, 443, 40000, 1}
	protos := []uint8{packet.ProtoTCP, packet.ProtoUDP}
	for i := 0; i < 5000; i++ {
		ft := flow(addrs[r.Intn(len(addrs))], addrs[r.Intn(len(addrs))],
			ports[r.Intn(len(ports))], ports[r.Intn(len(ports))], protos[r.Intn(len(protos))])
		lr, _, lok := lin.Match(ft)
		tr, _, tok := ts.Match(ft)
		if lok != tok {
			t.Fatalf("flow %v: linear ok=%v tuple ok=%v", ft, lok, tok)
		}
		if lok && lr.ID != tr.ID {
			t.Fatalf("flow %v: linear rule %d, tuple rule %d", ft, lr.ID, tr.ID)
		}
	}
}

func TestTupleSpaceMatcherRejectsRanges(t *testing.T) {
	rules := []Rule{{DstPorts: PortRange{100, 200}}}
	if _, err := NewTupleSpaceMatcher(rules); err == nil {
		t.Error("port ranges should be rejected by the tuple-space matcher")
	}
	rules = []Rule{{SrcPorts: PortRange{100, 200}}}
	if _, err := NewTupleSpaceMatcher(rules); err == nil {
		t.Error("src port ranges should be rejected too")
	}
}

func TestTupleSpaceCyclesIndependentOfRuleCount(t *testing.T) {
	// The ablation's point: tuple-space cost tracks mask groups, linear
	// cost tracks rules. Build 1000 exact-match rules in one group.
	var rules []Rule
	for i := 0; i < 1000; i++ {
		rules = append(rules, Rule{
			ID:       i,
			Src:      Prefix{Addr: packet.Addr4From(uint32(0x0a000000 + i)), Bits: 32},
			Dst:      pfx(192, 168, 0, 1, 32),
			DstPorts: PortRange{80, 80}, Proto: packet.ProtoTCP,
			Action: Accept,
		})
	}
	ts, err := NewTupleSpaceMatcher(rules)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinearMatcher(rules)
	missFlow := flow(packet.Addr4{172, 16, 0, 1}, packet.Addr4{8, 8, 8, 8}, 1, 2, packet.ProtoTCP)
	_, tsCycles, _ := ts.Match(missFlow)
	_, linCycles, _ := lin.Match(missFlow)
	if tsCycles != CyclesPerTupleGroup {
		t.Errorf("tuple-space miss cost = %d, want one group (%d)", tsCycles, CyclesPerTupleGroup)
	}
	if linCycles != 1000*CyclesPerLinearRule {
		t.Errorf("linear miss cost = %d", linCycles)
	}
	if tsCycles >= linCycles {
		t.Error("tuple-space should beat linear on large single-group rule sets")
	}
}

func TestTupleSpacePriorityOnOverlap(t *testing.T) {
	// Two rules in different groups both match; the lower ID must win.
	rules := []Rule{
		{ID: 0, Src: pfx(10, 0, 0, 0, 8), Action: Drop},
		{ID: 1, Src: pfx(10, 1, 0, 0, 16), Action: Accept},
	}
	ts, err := NewTupleSpaceMatcher(rules)
	if err != nil {
		t.Fatal(err)
	}
	ft := flow(packet.Addr4{10, 1, 2, 3}, packet.Addr4{8, 8, 8, 8}, 1, 2, packet.ProtoTCP)
	r, _, ok := ts.Match(ft)
	if !ok || r.ID != 0 {
		t.Errorf("overlap priority: got rule %d, want 0", r.ID)
	}
}

func TestFirewallProcess(t *testing.T) {
	fw := NewFirewall("fw", NewLinearMatcher(testRules))
	p := packet.NewParser()
	opts := packet.BuildOpts{SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2}}

	// Accepted flow (rule 0).
	goodFlow := flow(packet.Addr4{10, 5, 5, 5}, packet.Addr4{192, 168, 1, 9}, 40000, 443, packet.ProtoTCP)
	frame, err := packet.BuildTCP4(opts, goodFlow, packet.FlagACK, 1, 1, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Process(p, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Accept {
		t.Errorf("verdict = %v, want Accept", res.Verdict)
	}
	if res.Cycles <= CyclesParse {
		t.Errorf("cycles = %d, should include match work", res.Cycles)
	}

	// Default drop for unmatched flow.
	badFlow := flow(packet.Addr4{172, 16, 0, 1}, packet.Addr4{8, 8, 8, 8}, 1, 2, packet.ProtoUDP)
	frame2, _ := packet.BuildUDP4(opts, badFlow, nil)
	_ = p.Parse(frame2)
	res2, err := fw.Process(p, frame2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Drop {
		t.Errorf("unmatched verdict = %v, want default Drop", res2.Verdict)
	}
	if fw.Accepted != 1 || fw.Dropped != 1 {
		t.Errorf("counters: accepted=%d dropped=%d", fw.Accepted, fw.Dropped)
	}
	if fw.Matched[0] != 1 {
		t.Errorf("rule 0 hits = %d", fw.Matched[0])
	}
}

func TestFirewallDropsNonIP(t *testing.T) {
	fw := NewFirewall("fw", NewLinearMatcher(testRules))
	e := packet.Ethernet{EtherType: 0x0806}
	frame := make([]byte, 60)
	if _, err := e.SerializeTo(frame); err != nil {
		t.Fatal(err)
	}
	p := packet.NewParser()
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Process(p, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Drop {
		t.Error("non-IP traffic should fail closed")
	}
}
