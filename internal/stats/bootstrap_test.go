package stats

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestBootstrapDeterminism(t *testing.T) {
	s := []float64{3.1, 2.9, 3.0, 3.3, 2.8, 3.2}
	a, err := Bootstrap(s, 500, 11, Median)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(s, 500, 11, Median)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give identical bootstrap distributions")
	}
	c, err := Bootstrap(s, 500, 12, Median)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should give different distributions")
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	// Samples clustered near 10: the CI must cover 10 and be narrow.
	s := []float64{9.8, 10.1, 10.0, 9.9, 10.2, 10.05, 9.95}
	ci, err := MedianCI(s, 1000, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(10.0) {
		t.Errorf("CI %v should contain 10", ci)
	}
	if ci.HalfWidth() <= 0 || ci.HalfWidth() > 0.5 {
		t.Errorf("half-width %v implausible for this spread", ci.HalfWidth())
	}
}

func TestBootstrapZeroVariance(t *testing.T) {
	ci, err := MedianCI([]float64{7, 7, 7, 7, 7}, 200, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 7 || ci.Hi != 7 {
		t.Errorf("zero-variance CI = %v, want degenerate [7, 7]", ci)
	}
	if hw := ci.HalfWidth(); hw != 0 {
		t.Errorf("zero-variance half-width = %v, want 0", hw)
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := Bootstrap(nil, 100, 1, Median); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty samples: %v, want ErrNoSamples", err)
	}
	if _, err := Bootstrap([]float64{1, math.NaN()}, 100, 1, Median); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN sample: %v, want ErrNonFinite", err)
	}
	if _, err := Bootstrap([]float64{1, 2}, 0, 1, Median); !errors.Is(err, ErrResamples) {
		t.Errorf("zero resamples: %v, want ErrResamples", err)
	}
	for _, lvl := range []float64{0, 1, -0.5, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := MedianCI([]float64{1, 2, 3}, 10, lvl, 1); !errors.Is(err, ErrLevel) {
			t.Errorf("level %v: err = %v, want ErrLevel", lvl, err)
		}
	}
}

func TestPercentileIntervalOrdering(t *testing.T) {
	dist := []float64{5, 1, 4, 2, 3, 9, 0, 8, 7, 6}
	ci, err := PercentileInterval(dist, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo >= ci.Hi {
		t.Errorf("interval inverted: %v", ci)
	}
	if ci.Lo < 0 || ci.Hi > 9 {
		t.Errorf("interval %v outside data range", ci)
	}
}
