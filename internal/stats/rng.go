// Package stats provides the deterministic statistics the robustness
// layer is built on: a seedable SplitMix64 generator, summary
// statistics (median, percentiles, coefficient of variation, MAD
// outlier flagging) and seeded bootstrap resampling with percentile
// confidence intervals. Everything is stdlib-only and free of global
// state: the same seed produces byte-identical resamples on every
// platform, which is what lets a RobustVerdict reproduce exactly.
package stats

import "math"

// RNG is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use NewRNG to seed explicitly. SplitMix64 passes
// BigCrush, needs only a uint64 of state, and — unlike math/rand — has
// a stable, documented output sequence we control, so resamples are
// reproducible across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value of the SplitMix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// Rejection sampling removes the modulo bias, keeping resample index
// distributions exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in a uint64.
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// MixSeed derives an independent stream seed from a base seed and a
// stream index using the SplitMix64 finalizer. Unlike additive schemes
// (base+k), mixed seeds do not alias across (base, k) pairs — seed 1
// trial 2 and seed 2 trial 1 get unrelated streams — which is what the
// multi-trial replication layer needs when deriving per-trial seeds.
func MixSeed(base, k uint64) uint64 {
	z := base + (k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
