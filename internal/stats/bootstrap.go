package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrLevel is returned for a confidence level outside (0, 1) or
// non-finite.
var ErrLevel = errors.New("stats: confidence level must be finite and in (0, 1)")

// ErrResamples is returned for a non-positive resample count.
var ErrResamples = errors.New("stats: resample count must be positive")

// CheckLevel validates a confidence level.
func CheckLevel(level float64) error {
	if math.IsNaN(level) || math.IsInf(level, 0) || level <= 0 || level >= 1 {
		return fmt.Errorf("%w: got %v", ErrLevel, level)
	}
	return nil
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// HalfWidth returns half the interval width — the ± figure reports
// quote next to a point estimate.
func (i Interval) HalfWidth() float64 {
	return (i.Hi - i.Lo) / 2
}

// Contains reports whether v lies inside the interval (inclusive).
func (i Interval) Contains(v float64) bool {
	return v >= i.Lo && v <= i.Hi
}

// String renders "[lo, hi]" with compact formatting.
func (i Interval) String() string {
	return fmt.Sprintf("[%.4g, %.4g]", i.Lo, i.Hi)
}

// ResampleIndices fills idx with n uniform draws from [0, n) where
// n = len(idx) — one bootstrap resample of an n-sample set. Exposed so
// callers resampling paired axes can reuse one index set across axes.
func ResampleIndices(r *RNG, idx []int) {
	n := len(idx)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
}

// Bootstrap draws `resamples` bootstrap resamples of samples, applies
// stat to each, and returns the resulting statistic distribution in
// draw order. The same (samples, resamples, seed, stat) quadruple
// yields a byte-identical result on every run and platform.
func Bootstrap(samples []float64, resamples int, seed uint64, stat func([]float64) float64) ([]float64, error) {
	if err := CheckFinite(samples); err != nil {
		return nil, err
	}
	if resamples <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrResamples, resamples)
	}
	rng := NewRNG(seed)
	idx := make([]int, len(samples))
	draw := make([]float64, len(samples))
	out := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		ResampleIndices(rng, idx)
		for i, j := range idx {
			draw[i] = samples[j]
		}
		out[r] = stat(draw)
	}
	return out, nil
}

// PercentileInterval returns the two-sided percentile interval of the
// given distribution at the given confidence level (e.g. 0.95 keeps
// the central 95%).
func PercentileInterval(dist []float64, level float64) (Interval, error) {
	if err := CheckLevel(level); err != nil {
		return Interval{}, err
	}
	if len(dist) == 0 {
		return Interval{}, ErrNoSamples
	}
	alpha := (1 - level) / 2
	return Interval{
		Lo: Percentile(dist, alpha),
		Hi: Percentile(dist, 1-alpha),
	}, nil
}

// BootstrapCI bootstraps the given statistic and returns its
// percentile confidence interval. Deterministic in the seed.
func BootstrapCI(samples []float64, resamples int, level float64, seed uint64, stat func([]float64) float64) (Interval, error) {
	dist, err := Bootstrap(samples, resamples, seed, stat)
	if err != nil {
		return Interval{}, err
	}
	return PercentileInterval(dist, level)
}

// MedianCI is BootstrapCI of the median — the robustness layer's
// standard per-axis interval.
func MedianCI(samples []float64, resamples int, level float64, seed uint64) (Interval, error) {
	return BootstrapCI(samples, resamples, level, seed, Median)
}
