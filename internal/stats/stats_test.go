package stats

import (
	"errors"
	"math"
	"testing"
)

func TestMeanMedianPercentile(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	if m := Mean(s); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
	if m := Median(s); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
	if m := Median([]float64{5, 1, 9}); m != 5 {
		t.Errorf("odd median = %v, want 5", m)
	}
	if p := Percentile(s, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(s, 1); p != 4 {
		t.Errorf("p100 = %v, want 4", p)
	}
	if p := Percentile([]float64{0, 10}, 0.25); p != 2.5 {
		t.Errorf("p25 = %v, want 2.5 (linear interpolation)", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) || !math.IsNaN(Mean(nil)) {
		t.Error("empty-set estimators should return NaN")
	}
	// Percentile must not reorder the caller's slice.
	if s[0] != 4 || s[3] != 2 {
		t.Errorf("input mutated: %v", s)
	}
}

func TestStdDevAndCV(t *testing.T) {
	if sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(sd-2.138) > 0.001 {
		t.Errorf("stddev = %v, want ~2.138", sd)
	}
	if sd := StdDev([]float64{7}); sd != 0 {
		t.Errorf("single-sample stddev = %v, want 0", sd)
	}
	if cv := CV([]float64{10, 10, 10}); cv != 0 {
		t.Errorf("zero-variance CV = %v, want 0", cv)
	}
	if cv := CV([]float64{0, 0}); cv != 0 {
		t.Errorf("zero-mean CV = %v, want 0", cv)
	}
	if cv := CV([]float64{90, 110}); math.Abs(cv-0.1414) > 0.001 {
		t.Errorf("CV = %v, want ~0.1414", cv)
	}
}

func TestMADOutliers(t *testing.T) {
	s := []float64{10, 10.1, 9.9, 10.05, 50}
	out := Outliers(s, DefaultOutlierK)
	if len(out) != 1 || out[0] != 4 {
		t.Errorf("outliers = %v, want [4]", out)
	}
	// Zero spread: any deviation is an outlier.
	out = Outliers([]float64{5, 5, 5, 6}, DefaultOutlierK)
	if len(out) != 1 || out[0] != 3 {
		t.Errorf("zero-spread outliers = %v, want [3]", out)
	}
	if out := Outliers([]float64{1, 2}, DefaultOutlierK); out != nil {
		t.Errorf("tiny sets should not flag outliers, got %v", out)
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite([]float64{1, 2}); err != nil {
		t.Errorf("finite samples rejected: %v", err)
	}
	if err := CheckFinite(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty set error = %v, want ErrNoSamples", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := CheckFinite([]float64{1, bad}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("CheckFinite(%v) = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestRNGDeterminismAndUniformity(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverge at step %d", i)
		}
	}
	// Different seeds diverge immediately.
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first value")
	}
	// Intn stays in range and hits every bucket over enough draws.
	r := NewRNG(7)
	seen := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n == 0 {
			t.Errorf("Intn never produced %d", v)
		}
	}
	// Float64 in [0, 1).
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestMixSeedNoAdditiveAliasing(t *testing.T) {
	// The naive base+k scheme aliases (1, 2) with (2, 1); MixSeed must
	// not.
	if MixSeed(1, 2) == MixSeed(2, 1) {
		t.Error("MixSeed aliases across (base, k) pairs")
	}
	if MixSeed(0, 0) == MixSeed(1, 0) {
		t.Error("MixSeed ignores the base seed")
	}
	if MixSeed(5, 0) == MixSeed(5, 1) {
		t.Error("MixSeed ignores the stream index")
	}
	// Deterministic.
	if MixSeed(9, 3) != MixSeed(9, 3) {
		t.Error("MixSeed is not a pure function")
	}
}
