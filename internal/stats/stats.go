package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by estimators given an empty sample set.
var ErrNoSamples = errors.New("stats: no samples")

// ErrNonFinite is returned when a sample set contains NaN or ±Inf.
var ErrNonFinite = errors.New("stats: non-finite sample")

// CheckFinite rejects sample sets poisoned by NaN or ±Inf values.
func CheckFinite(samples []float64) error {
	if len(samples) == 0 {
		return ErrNoSamples
	}
	for i, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: sample %d is %v", ErrNonFinite, i, v)
		}
	}
	return nil
}

// Mean returns the arithmetic mean. Mean of an empty set is NaN.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Median returns the 50th percentile (see Percentile).
func Median(samples []float64) float64 {
	return Percentile(samples, 0.5)
}

// Percentile returns the p-quantile (p in [0, 1]) using linear
// interpolation between order statistics (the common "type 7"
// definition). It copies its input; the caller's slice is untouched.
// Percentile of an empty set is NaN.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// StdDev returns the sample standard deviation (n-1 denominator).
// It is 0 for fewer than two samples.
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	ss := 0.0
	for _, v := range samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)-1))
}

// CV returns the coefficient of variation (stddev / |mean|), the
// scale-free run-to-run noise figure the replication layer reports.
// It is 0 when the mean is 0 (all-zero samples) and for n < 2.
func CV(samples []float64) float64 {
	m := Mean(samples)
	if m == 0 || math.IsNaN(m) {
		return 0
	}
	return StdDev(samples) / math.Abs(m)
}

// MAD returns the median absolute deviation from the median — a robust
// spread estimate a single wild trial cannot inflate.
func MAD(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	med := Median(samples)
	devs := make([]float64, len(samples))
	for i, v := range samples {
		devs[i] = math.Abs(v - med)
	}
	return Median(devs)
}

// DefaultOutlierK is the conventional MAD-based outlier cut: a sample
// further than K scaled MADs from the median is flagged. 1.4826 scales
// MAD to the standard deviation of a normal distribution, so K=3.5
// approximates a 3.5-sigma rule.
const DefaultOutlierK = 3.5

// madToSigma rescales MAD to a normal-consistent sigma estimate.
const madToSigma = 1.4826

// Outliers returns the indices of samples further than k scaled MADs
// from the median, in ascending order. With zero spread (MAD == 0) any
// sample differing from the median is flagged.
func Outliers(samples []float64, k float64) []int {
	if len(samples) < 3 {
		return nil
	}
	med := Median(samples)
	mad := MAD(samples)
	var out []int
	for i, v := range samples {
		dev := math.Abs(v - med)
		if mad == 0 {
			if dev > 0 {
				out = append(out, i)
			}
			continue
		}
		if dev/(mad*madToSigma) > k {
			out = append(out, i)
		}
	}
	return out
}
