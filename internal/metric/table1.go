package metric

import "sort"

// Table1 reproduces the paper's Table 1: the classification of common
// cost metrics into context-dependent and context-independent. The rows
// are computed from descriptor properties, not hard-coded, so registering
// new metrics extends the table.
type Table1 struct {
	// ContextDependent lists cost metrics whose value can differ for
	// identical deployments depending on who evaluates them and when.
	ContextDependent []Descriptor
	// ContextIndependent lists cost metrics that yield identical values
	// for identical deployments.
	ContextIndependent []Descriptor
	// Qualified lists metrics (also present in one of the two groups)
	// whose classification holds only with extra reported information,
	// e.g. rack space (§3.4).
	Qualified []Descriptor
}

// ClassifyTable1 builds Table 1 from the cost metrics in r.
func ClassifyTable1(r *Registry) Table1 {
	var t Table1
	for _, d := range r.Costs() {
		if d.Props.ContextIndependent {
			t.ContextIndependent = append(t.ContextIndependent, d)
		} else {
			t.ContextDependent = append(t.ContextDependent, d)
		}
		if d.Props.Qualification != "" {
			t.Qualified = append(t.Qualified, d)
		}
	}
	return t
}

// ScoreRow is one row of the §3.4 practical-metric scorecard: a metric
// and a pass/fail judgement against each of the three principles.
type ScoreRow struct {
	Metric             Descriptor
	ContextIndependent bool
	Quantifiable       bool
	EndToEnd           bool
	// Suitable is the overall verdict: all three principles pass.
	Suitable bool
	// Caveat is the qualification, if any.
	Caveat string
}

// Scorecard builds the §3.4 scorecard for the cost metrics in r, sorted
// with suitable metrics first, then by name — mirroring the paper's
// discussion order (power first, TCO and carbon last).
func Scorecard(r *Registry) []ScoreRow {
	var rows []ScoreRow
	for _, d := range r.Costs() {
		rows = append(rows, ScoreRow{
			Metric:             d,
			ContextIndependent: d.Props.ContextIndependent,
			Quantifiable:       d.Props.Quantifiable,
			EndToEnd:           d.Props.EndToEnd,
			Suitable:           d.Props.Good(),
			Caveat:             d.Props.Qualification,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Suitable != rows[j].Suitable {
			return rows[i].Suitable
		}
		return rows[i].Metric.Name < rows[j].Metric.Name
	})
	return rows
}
