package metric

import (
	"strings"
	"testing"
)

func TestStandardRegistryPopulated(t *testing.T) {
	r := Standard()
	if r.Len() < 15 {
		t.Fatalf("standard registry has %d metrics, want >= 15", r.Len())
	}
	for _, name := range []string{
		MetricPower, MetricTCO, MetricCores, MetricLUTs, MetricRackSpace,
		MetricCarbon, MetricThroughputBps, MetricLatency, MetricJFI,
	} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("standard registry missing %q", name)
		}
	}
}

func TestPowerMeetsAllThreePrinciples(t *testing.T) {
	// §3.4: "Unsurprisingly, power meets all three of our requirements."
	d := Standard().MustLookup(MetricPower)
	if !d.Props.Good() {
		t.Errorf("power properties = %+v, want all three principles satisfied", d.Props)
	}
	if d.Direction != LowerIsBetter || d.Kind != Cost {
		t.Errorf("power direction/kind = %v/%v", d.Direction, d.Kind)
	}
}

func TestTCOFailsContextIndependence(t *testing.T) {
	// §3.1: TCO is the canonical context-dependent metric.
	d := Standard().MustLookup(MetricTCO)
	if d.Props.ContextIndependent {
		t.Error("TCO should not be context-independent")
	}
	if !d.Props.Quantifiable {
		t.Error("TCO is quantifiable (it is computed routinely in industry)")
	}
}

func TestCoresAndLUTsFailEndToEnd(t *testing.T) {
	// §3.3 / §3.4: cores and LUTs cannot be added across device types.
	for _, name := range []string{MetricCores, MetricLUTs} {
		d := Standard().MustLookup(name)
		if d.Props.EndToEnd {
			t.Errorf("%s should fail end-to-end coverage", name)
		}
		if !d.Props.ContextIndependent || !d.Props.Quantifiable {
			t.Errorf("%s should be context-independent and quantifiable", name)
		}
	}
}

func TestCarbonFailsQuantifiable(t *testing.T) {
	d := Standard().MustLookup(MetricCarbon)
	if d.Props.Quantifiable {
		t.Error("carbon footprint should not (yet) be quantifiable (§3.2)")
	}
}

func TestLatencyAndJFINotScalable(t *testing.T) {
	// §4.3: "some metrics do not scale when we scale the system, e.g.,
	// latency and JFI."
	for _, name := range []string{MetricLatency, MetricJFI} {
		if d := Standard().MustLookup(name); d.Scalable {
			t.Errorf("%s should be marked non-scalable", name)
		}
	}
	for _, name := range []string{MetricThroughputBps, MetricPower} {
		if d := Standard().MustLookup(name); !d.Scalable {
			t.Errorf("%s should be marked scalable", name)
		}
	}
}

func TestRegistryRegisterValidate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Descriptor{Name: "", Unit: Watt}); err == nil {
		t.Error("registering a nameless descriptor should fail")
	}
	if err := r.Register(Descriptor{Name: "x", Unit: Unit{}}); err == nil {
		t.Error("registering a zero-scale unit should fail")
	}
	d := Descriptor{Name: "x", Unit: Watt, Kind: Cost}
	if err := r.Register(d); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, ok := r.Lookup("x")
	if !ok || got.Name != "x" {
		t.Errorf("Lookup after Register = %+v, %v", got, ok)
	}
}

func TestRegistryListSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(Descriptor{Name: n, Unit: Watt})
	}
	list := r.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[2].Name != "zeta" {
		t.Errorf("List not sorted: %v", list)
	}
}

func TestRegistryCostPerfSplit(t *testing.T) {
	r := Standard()
	for _, d := range r.Costs() {
		if d.Kind != Cost {
			t.Errorf("Costs() returned %s of kind %v", d.Name, d.Kind)
		}
	}
	for _, d := range r.Performances() {
		if d.Kind != Performance {
			t.Errorf("Performances() returned %s of kind %v", d.Name, d.Kind)
		}
	}
	if len(r.Costs()) == 0 || len(r.Performances()) == 0 {
		t.Error("standard registry should have both kinds")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of missing metric did not panic")
		}
	}()
	NewRegistry().MustLookup("no-such-metric")
}

func TestDescriptorString(t *testing.T) {
	d := Standard().MustLookup(MetricCores)
	s := d.String()
	if !strings.Contains(s, "!E2E") {
		t.Errorf("descriptor string %q should flag failed end-to-end property", s)
	}
	p := Standard().MustLookup(MetricPower)
	if s := p.String(); !strings.Contains(s, "CI Q E2E") || strings.Contains(s, "!") {
		t.Errorf("power descriptor string %q should show all properties passing", s)
	}
}

func TestZeroRegistryUsable(t *testing.T) {
	var r Registry
	if err := r.Register(Descriptor{Name: "m", Unit: Watt}); err != nil {
		t.Fatalf("zero-value registry Register: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}
