package metric

import "fmt"

// Unit is a named scale of a Dimension. Converting a value expressed in
// this unit to the dimension's canonical unit multiplies by Scale.
//
// Units are value types; two units are interchangeable exactly when all
// their fields are equal. Predefined units for the metrics discussed in
// the paper are provided as package variables.
type Unit struct {
	// Name is the full human-readable name, e.g. "gigabit per second".
	Name string
	// Symbol is the short form used in tables, e.g. "Gb/s".
	Symbol string
	// Dim is the unit's dimension.
	Dim Dimension
	// Scale converts a value in this unit to the canonical unit of Dim.
	// It must be positive.
	Scale float64
}

// String returns the unit symbol.
func (u Unit) String() string { return u.Symbol }

// Compatible reports whether quantities in units u and o measure the same
// dimension and can therefore be converted into one another.
func (u Unit) Compatible(o Unit) bool { return u.Dim == o.Dim }

// Predefined units. Canonical units have Scale 1.
var (
	// Dimensionless.
	Scalar  = Unit{Name: "scalar", Symbol: "", Dim: Dimension{}, Scale: 1}
	Percent = Unit{Name: "percent", Symbol: "%", Dim: Dimension{}, Scale: 0.01}

	// Data.
	Bit      = Unit{Name: "bit", Symbol: "b", Dim: Dim(DimData, 1), Scale: 1}
	Kilobit  = Unit{Name: "kilobit", Symbol: "kb", Dim: Dim(DimData, 1), Scale: 1e3}
	Megabit  = Unit{Name: "megabit", Symbol: "Mb", Dim: Dim(DimData, 1), Scale: 1e6}
	Gigabit  = Unit{Name: "gigabit", Symbol: "Gb", Dim: Dim(DimData, 1), Scale: 1e9}
	ByteUnit = Unit{Name: "byte", Symbol: "B", Dim: Dim(DimData, 1), Scale: 8}

	// Packets.
	Packet = Unit{Name: "packet", Symbol: "pkt", Dim: Dim(DimPackets, 1), Scale: 1}

	// Time.
	Second      = Unit{Name: "second", Symbol: "s", Dim: Dim(DimTime, 1), Scale: 1}
	Millisecond = Unit{Name: "millisecond", Symbol: "ms", Dim: Dim(DimTime, 1), Scale: 1e-3}
	Microsecond = Unit{Name: "microsecond", Symbol: "µs", Dim: Dim(DimTime, 1), Scale: 1e-6}
	Nanosecond  = Unit{Name: "nanosecond", Symbol: "ns", Dim: Dim(DimTime, 1), Scale: 1e-9}
	Hour        = Unit{Name: "hour", Symbol: "h", Dim: Dim(DimTime, 1), Scale: 3600}
	Year        = Unit{Name: "year", Symbol: "yr", Dim: Dim(DimTime, 1), Scale: 365 * 24 * 3600}

	// Rates.
	BitPerSecond     = Unit{Name: "bit per second", Symbol: "b/s", Dim: Dim(DimData, 1, DimTime, -1), Scale: 1}
	MegabitPerSecond = Unit{Name: "megabit per second", Symbol: "Mb/s", Dim: Dim(DimData, 1, DimTime, -1), Scale: 1e6}
	GigabitPerSecond = Unit{Name: "gigabit per second", Symbol: "Gb/s", Dim: Dim(DimData, 1, DimTime, -1), Scale: 1e9}
	PacketPerSecond  = Unit{Name: "packet per second", Symbol: "pps", Dim: Dim(DimPackets, 1, DimTime, -1), Scale: 1}
	MegaPacketPerSec = Unit{Name: "million packets per second", Symbol: "Mpps", Dim: Dim(DimPackets, 1, DimTime, -1), Scale: 1e6}

	// Energy and power.
	Joule        = Unit{Name: "joule", Symbol: "J", Dim: Dim(DimEnergy, 1), Scale: 1}
	KilowattHour = Unit{Name: "kilowatt hour", Symbol: "kWh", Dim: Dim(DimEnergy, 1), Scale: 3.6e6}
	Watt         = Unit{Name: "watt", Symbol: "W", Dim: Dim(DimEnergy, 1, DimTime, -1), Scale: 1}
	Kilowatt     = Unit{Name: "kilowatt", Symbol: "kW", Dim: Dim(DimEnergy, 1, DimTime, -1), Scale: 1e3}
	// BTUPerHour measures heat dissipation; 1 BTU/h = 0.29307107 W.
	BTUPerHour = Unit{Name: "BTU per hour", Symbol: "BTU/h", Dim: Dim(DimEnergy, 1, DimTime, -1), Scale: 0.29307107}

	// Space and silicon.
	CubicMetre        = Unit{Name: "cubic metre", Symbol: "m³", Dim: Dim(DimVolume, 1), Scale: 1}
	RackUnit          = Unit{Name: "rack unit", Symbol: "RU", Dim: Dim(DimRackUnits, 1), Scale: 1}
	SquareMillimetre  = Unit{Name: "square millimetre", Symbol: "mm²", Dim: Dim(DimArea, 1), Scale: 1}
	Core              = Unit{Name: "CPU core", Symbol: "core", Dim: Dim(DimCores, 1), Scale: 1}
	LUT               = Unit{Name: "FPGA lookup table", Symbol: "LUT", Dim: Dim(DimLUTs, 1), Scale: 1}
	KiloLUT           = Unit{Name: "thousand FPGA lookup tables", Symbol: "kLUT", Dim: Dim(DimLUTs, 1), Scale: 1e3}
	MemByte           = Unit{Name: "byte of memory", Symbol: "B(mem)", Dim: Dim(DimMemory, 1), Scale: 1}
	Megabyte          = Unit{Name: "megabyte of memory", Symbol: "MB", Dim: Dim(DimMemory, 1), Scale: 1e6}
	TransactionPerSec = Unit{Name: "transaction per second", Symbol: "tps", Dim: Dim(DimTransactions, 1, DimTime, -1), Scale: 1}

	// Economic (context-dependent dimensions).
	USD           = Unit{Name: "US dollar", Symbol: "$", Dim: Dim(DimCurrency, 1), Scale: 1}
	USDPerKWh     = Unit{Name: "US dollar per kilowatt hour", Symbol: "$/kWh", Dim: Dim(DimCurrency, 1).Div(Dim(DimEnergy, 1)), Scale: 1 / 3.6e6}
	KgCO2e        = Unit{Name: "kilogram CO2 equivalent", Symbol: "kgCO2e", Dim: Dim(DimCarbon, 1), Scale: 1}
	GramCO2PerKWh = Unit{Name: "gram CO2e per kilowatt hour", Symbol: "gCO2e/kWh", Dim: Dim(DimCarbon, 1).Div(Dim(DimEnergy, 1)), Scale: 1e-3 / 3.6e6}
)

// CanonicalUnit returns an anonymous unit with Scale 1 for dimension d.
// It is used when arithmetic on quantities produces a dimension with no
// predefined unit.
func CanonicalUnit(d Dimension) Unit {
	return Unit{Name: "canonical " + d.String(), Symbol: d.String(), Dim: d, Scale: 1}
}

// MustCompatible panics unless u and o share a dimension. It is a guard
// for internal call sites where incompatibility is a programming error.
func MustCompatible(u, o Unit) {
	if !u.Compatible(o) {
		panic(fmt.Sprintf("metric: incompatible units %s (%s) and %s (%s)",
			u.Symbol, u.Dim, o.Symbol, o.Dim))
	}
}
