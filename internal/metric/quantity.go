package metric

import (
	"errors"
	"fmt"
	"math"
)

// ErrIncompatible is returned by quantity arithmetic when the operands
// measure different dimensions (for example, adding watts to CPU cores).
// Refusing such operations is what lets the cost framework detect
// end-to-end coverage violations instead of silently mixing units.
var ErrIncompatible = errors.New("metric: incompatible dimensions")

// Quantity is a physical or resource quantity: a value with a unit.
// The zero value is a dimensionless zero.
type Quantity struct {
	Value float64
	Unit  Unit
}

// Q is shorthand for constructing a Quantity.
func Q(v float64, u Unit) Quantity { return Quantity{Value: v, Unit: u} }

// Canonical returns the value expressed in the canonical unit of the
// quantity's dimension (e.g. Gb/s → b/s, kWh → J).
func (q Quantity) Canonical() float64 { return q.Value * q.Unit.Scale }

// Convert re-expresses q in unit u. It returns ErrIncompatible if u
// measures a different dimension.
func (q Quantity) Convert(u Unit) (Quantity, error) {
	if !q.Unit.Compatible(u) {
		return Quantity{}, fmt.Errorf("%w: cannot convert %s to %s", ErrIncompatible, q.Unit.Dim, u.Dim)
	}
	return Quantity{Value: q.Canonical() / u.Scale, Unit: u}, nil
}

// MustConvert is Convert but panics on incompatibility; for use where the
// units are statically known to match.
func (q Quantity) MustConvert(u Unit) Quantity {
	r, err := q.Convert(u)
	if err != nil {
		panic(err)
	}
	return r
}

// Add returns q+o expressed in q's unit. It returns ErrIncompatible if
// the operands measure different dimensions. This is the composition
// primitive behind end-to-end cost coverage (paper Principle 3): adding
// up the same metric across all components of a system.
func (q Quantity) Add(o Quantity) (Quantity, error) {
	if !q.Unit.Compatible(o.Unit) {
		return Quantity{}, fmt.Errorf("%w: %s + %s", ErrIncompatible, q.Unit.Dim, o.Unit.Dim)
	}
	return Quantity{Value: q.Value + o.Canonical()/q.Unit.Scale, Unit: q.Unit}, nil
}

// Sub returns q-o expressed in q's unit, or ErrIncompatible.
func (q Quantity) Sub(o Quantity) (Quantity, error) {
	neg := o
	neg.Value = -neg.Value
	return q.Add(neg)
}

// Scale returns q multiplied by the dimensionless factor k, in q's unit.
func (q Quantity) Scale(k float64) Quantity {
	return Quantity{Value: q.Value * k, Unit: q.Unit}
}

// Mul returns the product q·o in the canonical unit of the combined
// dimension (e.g. W · s = J).
func (q Quantity) Mul(o Quantity) Quantity {
	d := q.Unit.Dim.Mul(o.Unit.Dim)
	return Quantity{Value: q.Canonical() * o.Canonical(), Unit: CanonicalUnit(d)}
}

// Div returns the quotient q/o in the canonical unit of the combined
// dimension (e.g. b / s = b/s). Dividing by a zero quantity yields ±Inf
// or NaN per IEEE-754, mirroring float64 division.
func (q Quantity) Div(o Quantity) Quantity {
	d := q.Unit.Dim.Div(o.Unit.Dim)
	return Quantity{Value: q.Canonical() / o.Canonical(), Unit: CanonicalUnit(d)}
}

// Ratio returns the dimensionless ratio q/o, or ErrIncompatible if the
// operands measure different dimensions. It is the primitive behind
// ideal-scaling factors (paper §4.2.1).
func (q Quantity) Ratio(o Quantity) (float64, error) {
	if !q.Unit.Compatible(o.Unit) {
		return 0, fmt.Errorf("%w: %s / %s", ErrIncompatible, q.Unit.Dim, o.Unit.Dim)
	}
	return q.Canonical() / o.Canonical(), nil
}

// Cmp compares two compatible quantities, returning -1, 0 or +1.
// Incompatible quantities return an error.
func (q Quantity) Cmp(o Quantity) (int, error) {
	if !q.Unit.Compatible(o.Unit) {
		return 0, fmt.Errorf("%w: comparing %s with %s", ErrIncompatible, q.Unit.Dim, o.Unit.Dim)
	}
	a, b := q.Canonical(), o.Canonical()
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

// ApproxEqual reports whether two compatible quantities are equal within
// relative tolerance rel. The comparison is purely relative so that it
// behaves identically at every magnitude (microseconds and gigabits per
// second alike); consequently zero is only approximately equal to zero.
func (q Quantity) ApproxEqual(o Quantity, rel float64) bool {
	if !q.Unit.Compatible(o.Unit) {
		return false
	}
	a, b := q.Canonical(), o.Canonical()
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// IsZero reports whether the value is exactly zero.
func (q Quantity) IsZero() bool { return q.Value == 0 }

// String renders the quantity with its unit symbol, trimming trailing
// zeros, e.g. "20 Gb/s" or "70 W".
func (q Quantity) String() string {
	if q.Unit.Symbol == "" {
		return trimFloat(q.Value)
	}
	return trimFloat(q.Value) + " " + q.Unit.Symbol
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	// Trim trailing zeros and a trailing decimal point.
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}
