package metric

import "fmt"

// Kind distinguishes cost metrics from performance metrics. The paper's
// central prescription is that heterogeneous-hardware evaluations report
// both kinds (§1, §2).
type Kind int

const (
	// Cost metrics measure resources consumed: power, space, silicon,
	// money. Lower is better unless Direction says otherwise.
	Cost Kind = iota
	// Performance metrics measure useful output: throughput, latency,
	// fairness.
	Performance
)

// String returns "cost" or "performance".
func (k Kind) String() string {
	switch k {
	case Cost:
		return "cost"
	case Performance:
		return "performance"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Direction says which way an axis improves. Throughput improves upward
// (HigherIsBetter); latency, power and price improve downward.
type Direction int

const (
	LowerIsBetter Direction = iota
	HigherIsBetter
)

// String returns "lower-is-better" or "higher-is-better".
func (d Direction) String() string {
	if d == HigherIsBetter {
		return "higher-is-better"
	}
	return "lower-is-better"
}

// Better reports whether value a is strictly better than b along this
// direction.
func (d Direction) Better(a, b float64) bool {
	if d == HigherIsBetter {
		return a > b
	}
	return a < b
}

// Properties records whether a metric has the three properties the paper
// argues good research cost metrics need (§3). A metric missing any of
// them is not necessarily useless — TCO drives real purchasing
// decisions — but results reported with it cannot be meaningfully
// compared across papers, organisations, or time.
type Properties struct {
	// ContextIndependent (§3.1, Principle 1): the metric yields
	// identical values for identical deployments — same hardware, same
	// configuration, same workload — regardless of who measures it,
	// where, or when. TCO and hardware price fail this; watts and die
	// area pass.
	ContextIndependent bool
	// Quantifiable (§3.2, Principle 2): the metric is measurable and
	// comparable head-to-head with agreed-upon tools. Carbon footprint
	// and programming complexity currently fail this.
	Quantifiable bool
	// EndToEnd (§3.3, Principle 3): values for the metric can be
	// composed across *all* components of every compared system.
	// CPU cores fail it when one system also uses an FPGA: cores and
	// LUTs do not add up across device types.
	EndToEnd bool
	// Qualification holds a caveat for metrics that meet a property
	// only with extra reported information — e.g. rack space is only
	// context-independent if power and cooling assumptions are stated.
	Qualification string
}

// Good reports whether all three properties hold; the paper's criterion
// for a metric being suitable for head-to-head research comparisons.
func (p Properties) Good() bool {
	return p.ContextIndependent && p.Quantifiable && p.EndToEnd
}

// Descriptor describes a metric: what it measures, in what unit, which
// way it improves, and whether it satisfies the paper's three principles
// for research-grade cost metrics.
type Descriptor struct {
	// Name is the registry key, e.g. "power", "tco", "throughput-bps".
	Name string
	// DisplayName is the human-readable name used in tables.
	DisplayName string
	// Kind says whether this is a cost or a performance metric.
	Kind Kind
	// Unit is the preferred reporting unit.
	Unit Unit
	// Direction says which way the metric improves.
	Direction Direction
	// Props records the paper's three cost-metric properties. They are
	// meaningful for Kind == Cost; performance metrics record analogous
	// judgements (e.g. reliability is hard to quantify, §3.2 footnote).
	Props Properties
	// Scalable reports whether the metric scales when the system is
	// horizontally scaled (paper §4.3): throughput and power do;
	// latency and Jain's fairness index do not.
	Scalable bool
	// Notes carries prose from the paper's discussion of the metric.
	Notes string
}

// Validate checks internal consistency of the descriptor.
func (d Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("metric: descriptor has empty name")
	}
	if d.Unit.Scale <= 0 {
		return fmt.Errorf("metric %q: unit scale must be positive, got %v", d.Name, d.Unit.Scale)
	}
	return nil
}

// String renders a compact summary, e.g.
// "power (W, cost, lower-is-better) [CI Q E2E]".
func (d Descriptor) String() string {
	marks := ""
	if d.Kind == Cost {
		marks = " [" + propMarks(d.Props) + "]"
	}
	return fmt.Sprintf("%s (%s, %s, %s)%s", d.Name, d.Unit.Symbol, d.Kind, d.Direction, marks)
}

func propMarks(p Properties) string {
	mark := func(ok bool, s string) string {
		if ok {
			return s
		}
		return "!" + s
	}
	return mark(p.ContextIndependent, "CI") + " " + mark(p.Quantifiable, "Q") + " " + mark(p.EndToEnd, "E2E")
}
