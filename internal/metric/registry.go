package metric

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds metric descriptors by name. A Registry is safe for
// concurrent use. The zero value is empty and ready to use; most callers
// want Standard(), which is pre-populated with the metrics the paper
// discusses.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Descriptor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Descriptor)}
}

// Register adds or replaces a descriptor. It returns an error if the
// descriptor fails validation.
func (r *Registry) Register(d Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]Descriptor)
	}
	r.entries[d.Name] = d
	return nil
}

// MustRegister is Register but panics on error; for package init paths.
func (r *Registry) MustRegister(d Descriptor) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the descriptor for name.
func (r *Registry) Lookup(name string) (Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.entries[name]
	return d, ok
}

// MustLookup returns the descriptor for name, panicking if absent. Use
// only for the standard names defined in this package.
func (r *Registry) MustLookup(name string) Descriptor {
	d, ok := r.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("metric: no descriptor registered for %q", name))
	}
	return d
}

// List returns all descriptors sorted by name.
func (r *Registry) List() []Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Descriptor, 0, len(r.entries))
	for _, d := range r.entries {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Costs returns registered cost metrics sorted by name.
func (r *Registry) Costs() []Descriptor { return r.filter(Cost) }

// Performances returns registered performance metrics sorted by name.
func (r *Registry) Performances() []Descriptor { return r.filter(Performance) }

func (r *Registry) filter(k Kind) []Descriptor {
	all := r.List()
	out := all[:0]
	for _, d := range all {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of registered descriptors.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Standard metric names, usable with Standard().MustLookup.
const (
	// Cost metrics (paper Table 1 and §3.4).
	MetricPower        = "power"          // watts — passes all three principles
	MetricHeat         = "heat"           // BTU/h — heat dissipation
	MetricDieArea      = "die-area"       // mm² of silicon
	MetricCores        = "cpu-cores"      // number of CPU cores
	MetricLUTs         = "fpga-luts"      // number of FPGA LUTs
	MetricMemory       = "memory"         // MB of memory
	MetricRackSpace    = "rack-space"     // rack units (qualified CI)
	MetricTCO          = "tco"            // $ — context-dependent
	MetricPrice        = "hardware-price" // $ — context-dependent
	MetricCarbon       = "carbon"         // kgCO2e — not yet quantifiable
	MetricProgComplex  = "programming-complexity"
	MetricEnergyPerBit = "energy-per-bit" // J/b — derived efficiency cost

	// Performance metrics.
	MetricThroughputBps = "throughput-bps"
	MetricThroughputPps = "throughput-pps"
	MetricLatency       = "latency"
	MetricJFI           = "jfi" // Jain's fairness index [13]
	MetricTPS           = "transactions-per-second"
)

var (
	standardOnce sync.Once
	standard     *Registry
)

// Standard returns the shared registry pre-populated with the metrics
// the paper discusses in §3 and §4, with their Table 1 classification.
// Callers must not mutate descriptors obtained from it; registering
// additional metrics is allowed.
func Standard() *Registry {
	standardOnce.Do(func() {
		standard = NewRegistry()
		for _, d := range standardDescriptors() {
			standard.MustRegister(d)
		}
	})
	return standard
}

func standardDescriptors() []Descriptor {
	allGood := Properties{ContextIndependent: true, Quantifiable: true, EndToEnd: true}
	return []Descriptor{
		{
			Name: MetricPower, DisplayName: "Power draw", Kind: Cost,
			Unit: Watt, Direction: LowerIsBetter, Props: allGood, Scalable: true,
			Notes: "Meets all three requirements: context independent, measurable with a variety of tools, and composable for end-to-end measurement (§3.4).",
		},
		{
			Name: MetricHeat, DisplayName: "Heat dissipation", Kind: Cost,
			Unit: BTUPerHour, Direction: LowerIsBetter, Props: allGood, Scalable: true,
			Notes: "Context-independent cost metric (Table 1); same dimension as power.",
		},
		{
			Name: MetricDieArea, DisplayName: "Silicon die area", Kind: Cost,
			Unit: SquareMillimetre, Direction: LowerIsBetter,
			Props: Properties{ContextIndependent: true, Quantifiable: true, EndToEnd: true,
				Qualification: "Comparable across devices only at comparable process nodes."},
			Scalable: true,
			Notes:    "Context-independent (Table 1); adds up across dies.",
		},
		{
			Name: MetricCores, DisplayName: "Number of CPU cores", Kind: Cost,
			Unit: Core, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: true, Quantifiable: true, EndToEnd: false},
			Scalable: true,
			Notes:    "Context-independent and quantifiable but not end-to-end: one cannot add up cores and LUTs on different devices (§3.4).",
		},
		{
			Name: MetricLUTs, DisplayName: "Number of FPGA LUTs", Kind: Cost,
			Unit: LUT, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: true, Quantifiable: true, EndToEnd: false},
			Scalable: true,
			Notes:    "Same failure mode as CPU cores: cannot be measured for a CPU-only system (§3.3).",
		},
		{
			Name: MetricMemory, DisplayName: "Memory usage", Kind: Cost,
			Unit: Megabyte, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: true, Quantifiable: true, EndToEnd: true, Qualification: "Memory technologies differ (DRAM vs on-chip SRAM vs TCAM); state the breakdown."},
			Scalable: true,
			Notes:    "Context-independent (Table 1).",
		},
		{
			Name: MetricRackSpace, DisplayName: "Rack space", Kind: Cost,
			Unit: RackUnit, Direction: LowerIsBetter,
			Props: Properties{ContextIndependent: false, Quantifiable: true, EndToEnd: true,
				Qualification: "Standard rack units exist, but enclosure density depends on available power and cooling; report those assumptions to make it comparable (§3.4)."},
			Scalable: true,
			Notes:    "Quantifiable and end-to-end but only conditionally context-independent (§3.4).",
		},
		{
			Name: MetricTCO, DisplayName: "Total cost of ownership", Kind: Cost,
			Unit: USD, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: false, Quantifiable: true, EndToEnd: true},
			Scalable: true,
			Notes:    "Arguably the most important purchasing metric, but context-dependent: depends on where and by whom the system is deployed, and varies over time (§3.1). Release the pricing model instead.",
		},
		{
			Name: MetricPrice, DisplayName: "Hardware price", Kind: Cost,
			Unit: USD, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: false, Quantifiable: true, EndToEnd: true},
			Scalable: true,
			Notes:    "Context-dependent (Table 1): bulk discounts, time, and confidential pricing.",
		},
		{
			Name: MetricCarbon, DisplayName: "Carbon footprint", Kind: Cost,
			Unit: KgCO2e, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: false, Quantifiable: false, EndToEnd: true},
			Scalable: true,
			Notes:    "No commonly agreed-upon measurement approach yet (§3.2); also context-dependent (Table 1 cites ISO 14067).",
		},
		{
			Name: MetricProgComplex, DisplayName: "Programming complexity", Kind: Cost,
			Unit: Scalar, Direction: LowerIsBetter,
			Props:    Properties{ContextIndependent: true, Quantifiable: false, EndToEnd: false},
			Scalable: false,
			Notes:    "Wide-spread disagreement on how to measure task complexity (§3.2); discuss qualitatively alongside quantifiable metrics.",
		},
		{
			Name: MetricEnergyPerBit, DisplayName: "Energy per bit", Kind: Cost,
			Unit: CanonicalUnit(Dim(DimEnergy, 1, DimData, -1)), Direction: LowerIsBetter,
			Props: allGood, Scalable: true,
			Notes: "Derived efficiency metric (power / throughput); context-independent and end-to-end.",
		},

		// Performance metrics.
		{
			Name: MetricThroughputBps, DisplayName: "Throughput", Kind: Performance,
			Unit: GigabitPerSecond, Direction: HigherIsBetter, Props: allGood, Scalable: true,
			Notes: "Report data rates with a mixture of packet sizes (§2).",
		},
		{
			Name: MetricThroughputPps, DisplayName: "Packet rate", Kind: Performance,
			Unit: MegaPacketPerSec, Direction: HigherIsBetter, Props: allGood, Scalable: true,
			Notes: "Report packets per second with minimum-sized packets (§2).",
		},
		{
			Name: MetricLatency, DisplayName: "Latency", Kind: Performance,
			Unit: Microsecond, Direction: LowerIsBetter, Props: allGood, Scalable: false,
			Notes: "Does not scale with horizontal scaling: there is a hard limit on how much latency improves at lower load (§4.3, footnote 4).",
		},
		{
			Name: MetricJFI, DisplayName: "Jain's fairness index", Kind: Performance,
			Unit: Scalar, Direction: HigherIsBetter, Props: allGood, Scalable: false,
			Notes: "Fairness does not scale when the system scales (§4.3, citing Jain et al. [13]).",
		},
		{
			Name: MetricTPS, DisplayName: "Transactions per second", Kind: Performance,
			Unit: TransactionPerSec, Direction: HigherIsBetter, Props: allGood, Scalable: true,
			Notes: "Customary for transactional databases via TPC benchmarks (§2).",
		},
	}
}
