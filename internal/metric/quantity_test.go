package metric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvertRate(t *testing.T) {
	q := Q(10, GigabitPerSecond)
	got, err := q.Convert(MegabitPerSecond)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if got.Value != 10000 {
		t.Errorf("10 Gb/s = %v Mb/s, want 10000", got.Value)
	}
}

func TestConvertIncompatible(t *testing.T) {
	_, err := Q(10, Watt).Convert(GigabitPerSecond)
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("converting W to Gb/s: err = %v, want ErrIncompatible", err)
	}
}

func TestAddSameDimensionDifferentUnits(t *testing.T) {
	// 1 Gb/s + 500 Mb/s = 1.5 Gb/s.
	got, err := Q(1, GigabitPerSecond).Add(Q(500, MegabitPerSecond))
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got.Unit != GigabitPerSecond || math.Abs(got.Value-1.5) > 1e-12 {
		t.Errorf("got %v, want 1.5 Gb/s", got)
	}
}

func TestAddIncompatibleFails(t *testing.T) {
	// The paper's Principle 3 in miniature: you cannot add CPU cores
	// to FPGA LUTs.
	_, err := Q(4, Core).Add(Q(20000, LUT))
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("cores + LUTs: err = %v, want ErrIncompatible", err)
	}
}

func TestSub(t *testing.T) {
	got, err := Q(70, Watt).Sub(Q(50, Watt))
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if got.Value != 20 {
		t.Errorf("70W - 50W = %v, want 20", got.Value)
	}
}

func TestMulPowerTimeIsEnergy(t *testing.T) {
	e := Q(200, Watt).Mul(Q(2, Hour))
	if e.Unit.Dim != Dim(DimEnergy, 1) {
		t.Fatalf("W·h dimension = %v, want energy", e.Unit.Dim)
	}
	// 200 W × 7200 s = 1.44e6 J = 400 kWh/1000... check via kWh: 0.4 kWh.
	kwh, err := e.Convert(KilowattHour)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if math.Abs(kwh.Value-0.4) > 1e-9 {
		t.Errorf("200W for 2h = %v kWh, want 0.4", kwh.Value)
	}
}

func TestDivDataTimeIsRate(t *testing.T) {
	r := Q(10e9, Bit).Div(Q(1, Second))
	if r.Unit.Dim != Dim(DimData, 1, DimTime, -1) {
		t.Fatalf("b/s dimension = %v", r.Unit.Dim)
	}
	gbps := r.MustConvert(GigabitPerSecond)
	if math.Abs(gbps.Value-10) > 1e-9 {
		t.Errorf("10e9 b / 1 s = %v Gb/s, want 10", gbps.Value)
	}
}

func TestRatio(t *testing.T) {
	// The §4.2.1 ideal-scaling factor: 100 Gb/s over 35 Gb/s ≈ 2.857.
	k, err := Q(100, GigabitPerSecond).Ratio(Q(35, GigabitPerSecond))
	if err != nil {
		t.Fatalf("Ratio: %v", err)
	}
	if math.Abs(k-100.0/35.0) > 1e-12 {
		t.Errorf("ratio = %v, want %v", k, 100.0/35.0)
	}
	if _, err := Q(1, Watt).Ratio(Q(1, Core)); !errors.Is(err, ErrIncompatible) {
		t.Errorf("W/core ratio err = %v, want ErrIncompatible", err)
	}
}

func TestCmp(t *testing.T) {
	lt, err := Q(1, GigabitPerSecond).Cmp(Q(2000, MegabitPerSecond))
	if err != nil || lt != -1 {
		t.Errorf("1Gb/s cmp 2000Mb/s = %d, %v; want -1, nil", lt, err)
	}
	eq, err := Q(1, GigabitPerSecond).Cmp(Q(1000, MegabitPerSecond))
	if err != nil || eq != 0 {
		t.Errorf("1Gb/s cmp 1000Mb/s = %d, %v; want 0, nil", eq, err)
	}
	if _, err := Q(1, Watt).Cmp(Q(1, Second)); !errors.Is(err, ErrIncompatible) {
		t.Errorf("W cmp s err = %v, want ErrIncompatible", err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !Q(100, Watt).ApproxEqual(Q(100.5, Watt), 0.01) {
		t.Error("100W ≈ 100.5W at 1% should hold")
	}
	if Q(100, Watt).ApproxEqual(Q(110, Watt), 0.01) {
		t.Error("100W ≈ 110W at 1% should not hold")
	}
	if Q(100, Watt).ApproxEqual(Q(100, Second), 0.5) {
		t.Error("incompatible quantities are never approx-equal")
	}
}

func TestBTUConversion(t *testing.T) {
	// 1 W ≈ 3.412 BTU/h.
	btu := Q(1, Watt).MustConvert(BTUPerHour)
	if math.Abs(btu.Value-3.412) > 0.01 {
		t.Errorf("1 W = %v BTU/h, want ≈3.412", btu.Value)
	}
}

func TestQuantityString(t *testing.T) {
	cases := []struct {
		q    Quantity
		want string
	}{
		{Q(20, GigabitPerSecond), "20 Gb/s"},
		{Q(70.5, Watt), "70.5 W"},
		{Q(0.97, Scalar), "0.97"},
		{Q(285.7143, Watt), "285.7143 W"},
	}
	for _, c := range cases {
		if got := c.q.String(); got != c.want {
			t.Errorf("String(%v %s) = %q, want %q", c.q.Value, c.q.Unit.Symbol, got, c.want)
		}
	}
}

// Property: conversion round-trips within floating-point tolerance.
func TestConvertRoundTrip(t *testing.T) {
	units := []Unit{BitPerSecond, MegabitPerSecond, GigabitPerSecond}
	f := func(v float64, i, j uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true // skip pathological inputs
		}
		a := units[int(i)%len(units)]
		b := units[int(j)%len(units)]
		q := Q(v, a)
		rt := q.MustConvert(b).MustConvert(a)
		return q.ApproxEqual(rt, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative (expressed in canonical units) for
// compatible quantities.
func TestAddCommutativeCanonical(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true
		}
		x := Q(a, Watt)
		y := Q(b, Kilowatt)
		s1, err1 := x.Add(y)
		s2, err2 := y.Add(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s1.Canonical()-s2.Canonical()) <= 1e-9*math.Max(1, math.Abs(s1.Canonical()))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Scale distributes over Add.
func TestScaleDistributesOverAdd(t *testing.T) {
	f := func(a, b float64, kRaw uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		k := float64(kRaw%10) + 0.5
		x, y := Q(a, Watt), Q(b, Watt)
		sum, _ := x.Add(y)
		lhs := sum.Scale(k)
		sx, sy := x.Scale(k), y.Scale(k)
		rhs, _ := sx.Add(sy)
		return math.Abs(lhs.Value-rhs.Value) <= 1e-6*math.Max(1, math.Abs(lhs.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
