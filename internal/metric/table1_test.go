package metric

import "testing"

func tableNames(ds []Descriptor) map[string]bool {
	m := make(map[string]bool, len(ds))
	for _, d := range ds {
		m[d.Name] = true
	}
	return m
}

func TestTable1MatchesPaper(t *testing.T) {
	// Paper Table 1:
	//   Context Dependent:  TCO ($), hardware price ($), carbon footprint.
	//   Context Independent: power (W), heat dissipation (BTU/h),
	//     silicon die area (mm²), number of CPU cores, number of FPGA
	//     LUTs, memory usage (MB).
	tab := ClassifyTable1(Standard())
	dep := tableNames(tab.ContextDependent)
	ind := tableNames(tab.ContextIndependent)

	for _, name := range []string{MetricTCO, MetricPrice, MetricCarbon} {
		if !dep[name] {
			t.Errorf("%s should be classified context-dependent", name)
		}
	}
	for _, name := range []string{MetricPower, MetricHeat, MetricDieArea, MetricCores, MetricLUTs, MetricMemory} {
		if !ind[name] {
			t.Errorf("%s should be classified context-independent", name)
		}
	}
	// No metric may appear in both groups.
	for n := range dep {
		if ind[n] {
			t.Errorf("%s appears in both Table 1 groups", n)
		}
	}
}

func TestTable1QualifiedIncludesRackSpace(t *testing.T) {
	tab := ClassifyTable1(Standard())
	if !tableNames(tab.Qualified)[MetricRackSpace] {
		t.Error("rack space should be listed with a qualification (§3.4)")
	}
}

func TestScorecardVerdicts(t *testing.T) {
	rows := Scorecard(Standard())
	verdict := make(map[string]ScoreRow)
	for _, r := range rows {
		verdict[r.Metric.Name] = r
	}

	// §3.4: power is suitable; cores/LUTs fail end-to-end; TCO fails
	// context-independence; carbon fails quantifiability.
	if !verdict[MetricPower].Suitable {
		t.Error("power should be a suitable research cost metric")
	}
	if verdict[MetricCores].Suitable || verdict[MetricCores].EndToEnd {
		t.Error("cores should fail the end-to-end principle and be unsuitable")
	}
	if verdict[MetricTCO].Suitable || verdict[MetricTCO].ContextIndependent {
		t.Error("TCO should fail context-independence and be unsuitable")
	}
	if verdict[MetricCarbon].Quantifiable {
		t.Error("carbon should fail quantifiability")
	}
	if verdict[MetricRackSpace].Caveat == "" {
		t.Error("rack space should carry a caveat")
	}
}

func TestScorecardOrdering(t *testing.T) {
	rows := Scorecard(Standard())
	seenUnsuitable := false
	for _, r := range rows {
		if !r.Suitable {
			seenUnsuitable = true
		} else if seenUnsuitable {
			t.Fatalf("suitable metric %s after unsuitable rows; want suitable-first order", r.Metric.Name)
		}
	}
}

func TestTable1OnlyCostMetrics(t *testing.T) {
	tab := ClassifyTable1(Standard())
	all := append(append([]Descriptor{}, tab.ContextDependent...), tab.ContextIndependent...)
	for _, d := range all {
		if d.Kind != Cost {
			t.Errorf("Table 1 contains non-cost metric %s", d.Name)
		}
	}
	// Throughput must not leak into a cost table.
	if tableNames(all)[MetricThroughputBps] {
		t.Error("throughput should not appear in Table 1")
	}
}
