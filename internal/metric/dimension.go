// Package metric provides units, quantities and metric descriptors for
// performance and cost measurement, following the principles of Sadok,
// Panda and Sherry, "Of Apples and Oranges: Fair Comparisons in
// Heterogenous Systems Evaluation" (HotNets '23).
//
// The package distinguishes three properties a good research cost metric
// should have (paper §3): it should be context-independent (§3.1),
// quantifiable (§3.2), and cover all compared systems end-to-end (§3.3).
// Each Descriptor records whether its metric has these properties, and
// Table1 reproduces the paper's classification of common metrics.
package metric

import (
	"fmt"
	"strings"
)

// BaseDim identifies one of the base dimensions used for dimensional
// analysis of quantities. The set is tailored to heterogeneous systems
// evaluation: alongside the physical dimensions (time, energy, volume)
// it includes discrete resource dimensions (cores, LUTs) and the
// context-dependent economic dimensions (currency, carbon) so that
// quantities of different kinds can never be confused or added.
type BaseDim int

// Base dimensions. The order is part of the package API only insofar as
// Dimension exponent vectors are indexed by it.
const (
	DimData         BaseDim = iota // information, canonical unit: bit
	DimPackets                     // packets (frames)
	DimTime                        // time, canonical unit: second
	DimEnergy                      // energy, canonical unit: joule
	DimVolume                      // physical space, canonical unit: cubic metre
	DimArea                        // silicon area, canonical unit: square millimetre
	DimCurrency                    // money, canonical unit: USD
	DimCarbon                      // greenhouse gases, canonical unit: kg CO2e
	DimCores                       // CPU cores
	DimLUTs                        // FPGA lookup tables
	DimMemory                      // memory capacity, canonical unit: byte
	DimTransactions                // transactions (e.g. TPC-style)
	DimRackUnits                   // standard 19" rack units
	numBaseDims
)

var baseDimNames = [numBaseDims]string{
	"data", "packets", "time", "energy", "volume", "area", "currency",
	"carbon", "cores", "luts", "memory", "transactions", "rackunits",
}

// String returns the lower-case name of the base dimension.
func (d BaseDim) String() string {
	if d < 0 || d >= numBaseDims {
		return fmt.Sprintf("BaseDim(%d)", int(d))
	}
	return baseDimNames[d]
}

// Dimension is an integer exponent vector over the base dimensions.
// For example, throughput in bits per second has Dimension with
// DimData exponent +1 and DimTime exponent -1; power (watts) has
// DimEnergy +1 and DimTime -1.
//
// The zero value is the dimensionless Dimension.
type Dimension struct {
	exp [numBaseDims]int8
}

// Dim constructs a Dimension from (BaseDim, exponent) pairs. It panics if
// given an odd number of arguments or an unknown base dimension, since a
// malformed dimension is a programming error, not a runtime condition.
func Dim(pairs ...any) Dimension {
	if len(pairs)%2 != 0 {
		panic("metric.Dim: odd number of arguments")
	}
	var d Dimension
	for i := 0; i < len(pairs); i += 2 {
		b, ok := pairs[i].(BaseDim)
		if !ok {
			panic(fmt.Sprintf("metric.Dim: argument %d is not a BaseDim", i))
		}
		e, ok := pairs[i+1].(int)
		if !ok {
			panic(fmt.Sprintf("metric.Dim: argument %d is not an int", i+1))
		}
		if b < 0 || b >= numBaseDims {
			panic(fmt.Sprintf("metric.Dim: unknown base dimension %d", int(b)))
		}
		d.exp[b] += int8(e)
	}
	return d
}

// Dimensionless reports whether every exponent is zero.
func (d Dimension) Dimensionless() bool { return d == Dimension{} }

// Exp returns the exponent of base dimension b.
func (d Dimension) Exp(b BaseDim) int {
	if b < 0 || b >= numBaseDims {
		return 0
	}
	return int(d.exp[b])
}

// Mul returns the dimension of a product of quantities with dimensions
// d and o (exponents add).
func (d Dimension) Mul(o Dimension) Dimension {
	var r Dimension
	for i := range d.exp {
		r.exp[i] = d.exp[i] + o.exp[i]
	}
	return r
}

// Div returns the dimension of a quotient of quantities with dimensions
// d and o (exponents subtract).
func (d Dimension) Div(o Dimension) Dimension {
	var r Dimension
	for i := range d.exp {
		r.exp[i] = d.exp[i] - o.exp[i]
	}
	return r
}

// Inv returns the reciprocal dimension (all exponents negated).
func (d Dimension) Inv() Dimension {
	var r Dimension
	for i := range d.exp {
		r.exp[i] = -d.exp[i]
	}
	return r
}

// String renders the dimension as a product of base-dimension powers,
// e.g. "data·time^-1". The dimensionless Dimension renders as "1".
func (d Dimension) String() string {
	var parts []string
	for i, e := range d.exp {
		switch {
		case e == 0:
		case e == 1:
			parts = append(parts, baseDimNames[i])
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", baseDimNames[i], e))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "·")
}
