package metric

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomDimension(r *rand.Rand) Dimension {
	var d Dimension
	for i := range d.exp {
		d.exp[i] = int8(r.Intn(7) - 3)
	}
	return d
}

// Generate implements quick.Generator so Dimension can be used directly
// in property-based tests.
func (Dimension) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDimension(r))
}

func TestDimConstruction(t *testing.T) {
	d := Dim(DimData, 1, DimTime, -1)
	if got := d.Exp(DimData); got != 1 {
		t.Errorf("Exp(DimData) = %d, want 1", got)
	}
	if got := d.Exp(DimTime); got != -1 {
		t.Errorf("Exp(DimTime) = %d, want -1", got)
	}
	if got := d.Exp(DimEnergy); got != 0 {
		t.Errorf("Exp(DimEnergy) = %d, want 0", got)
	}
}

func TestDimRepeatedPairsAccumulate(t *testing.T) {
	d := Dim(DimTime, -1, DimTime, -1)
	if got := d.Exp(DimTime); got != -2 {
		t.Errorf("accumulated exponent = %d, want -2", got)
	}
}

func TestDimPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dim with odd args did not panic")
		}
	}()
	Dim(DimData)
}

func TestDimPanicsOnWrongTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dim with non-BaseDim first arg did not panic")
		}
	}()
	Dim("data", 1)
}

func TestDimensionless(t *testing.T) {
	if !(Dimension{}).Dimensionless() {
		t.Error("zero Dimension should be dimensionless")
	}
	if Dim(DimData, 1).Dimensionless() {
		t.Error("data dimension should not be dimensionless")
	}
	if !Dim(DimData, 1).Div(Dim(DimData, 1)).Dimensionless() {
		t.Error("d/d should be dimensionless")
	}
}

func TestDimensionString(t *testing.T) {
	cases := []struct {
		d    Dimension
		want string
	}{
		{Dimension{}, "1"},
		{Dim(DimData, 1), "data"},
		{Dim(DimData, 1, DimTime, -1), "data·time^-1"},
		{Dim(DimEnergy, 1, DimTime, -1), "time^-1·energy"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.d.exp, got, c.want)
		}
	}
}

func TestDimensionMulDivInverse(t *testing.T) {
	// Property: (a.Mul(b)).Div(b) == a for all dimensions.
	f := func(a, b Dimension) bool {
		return a.Mul(b).Div(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionMulCommutative(t *testing.T) {
	f := func(a, b Dimension) bool {
		return a.Mul(b) == b.Mul(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionInvIsSelfInverse(t *testing.T) {
	f := func(a Dimension) bool {
		return a.Inv().Inv() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionDivSelfDimensionless(t *testing.T) {
	f := func(a Dimension) bool {
		return a.Div(a).Dimensionless()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseDimString(t *testing.T) {
	if DimData.String() != "data" {
		t.Errorf("DimData.String() = %q", DimData.String())
	}
	if got := BaseDim(99).String(); got != "BaseDim(99)" {
		t.Errorf("out-of-range BaseDim.String() = %q", got)
	}
}
