package hw

import (
	"fmt"

	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/sim"
)

// CPUConfig parameterises a core model. The defaults approximate a
// server-class x86 core dedicated to a run-to-completion dataplane.
type CPUConfig struct {
	// FreqHz is the core clock (default 3 GHz).
	FreqHz float64
	// IdleWatts is the core's share of package power when idle
	// (default 5 W).
	IdleWatts float64
	// ActiveWatts is the core's power at full load (default 15 W).
	ActiveWatts float64
	// OverheadCycles is the fixed per-packet cost of the I/O path
	// (descriptor handling, prefetching, memory stalls) added to the
	// network function's own cycles (default 600).
	OverheadCycles uint64
	// QueueDepth is the ingress descriptor ring size; arrivals beyond
	// it are dropped (default 512).
	QueueDepth int
	// FixedLatencySeconds is the host I/O latency added to every
	// packet's sojourn time — PCIe transfer, descriptor batching, cache
	// misses on the receive path (default 4 µs; set negative for zero).
	// It affects reported latency, not occupancy, which is why software
	// hosts cannot match in-pipeline accelerator latency even when
	// idle (§4.3's premise).
	FixedLatencySeconds float64
}

func (c CPUConfig) withDefaults() CPUConfig {
	if c.FreqHz == 0 {
		c.FreqHz = 3e9
	}
	if c.IdleWatts == 0 {
		c.IdleWatts = 5
	}
	if c.ActiveWatts == 0 {
		c.ActiveWatts = 15
	}
	if c.OverheadCycles == 0 {
		c.OverheadCycles = 600
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 512
	}
	switch {
	case c.FixedLatencySeconds == 0:
		c.FixedLatencySeconds = 4e-6
	case c.FixedLatencySeconds < 0:
		c.FixedLatencySeconds = 0
	}
	return c
}

// Core is a FIFO queueing server over CPU cycles: each packet occupies
// the core for (overhead + nf cycles) / freq seconds, arrivals queue up
// to QueueDepth, and excess arrivals are dropped — the behaviour of a
// poll-mode dataplane core under overload.
type Core struct {
	FaultState

	name string
	cfg  CPUConfig
	s    *sim.Sim

	nextFree sim.Time
	queued   int
	busy     float64 // accumulated busy seconds
	// Served and Dropped count packets.
	Served, Dropped uint64
}

// NewCore builds a core attached to simulator s.
func NewCore(name string, s *sim.Sim, cfg CPUConfig) *Core {
	return &Core{name: name, cfg: cfg.withDefaults(), s: s}
}

// Name implements Device.
func (c *Core) Name() string { return c.name }

// Config returns the effective configuration.
func (c *Core) Config() CPUConfig { return c.cfg }

// ServiceSeconds returns the service time for a packet costing cycles.
func (c *Core) ServiceSeconds(cycles uint64) float64 {
	return float64(cycles+c.cfg.OverheadCycles) / c.cfg.FreqHz
}

// CapacityPps returns the core's packet rate at a given per-packet
// cycle cost — the analytic capacity the simulation converges to.
func (c *Core) CapacityPps(cycles uint64) float64 {
	return c.cfg.FreqHz / float64(cycles+c.cfg.OverheadCycles)
}

// Submit offers a packet costing cycles to the core at the current
// simulated time. If the core is down or the queue is full the packet
// is dropped and false is returned. Otherwise done (which may be nil)
// is invoked when processing completes, with the packet's sojourn-time
// breakdown. A derated (throttled) core stretches the service time by
// the derating factor, so throttling shows up as longer busy time and
// higher energy for the same work — the thermal-throttle behaviour.
func (c *Core) Submit(cycles uint64, done func(Sojourn)) bool {
	now := c.s.Now()
	if c.Down() || c.queued >= c.cfg.QueueDepth {
		c.Dropped++
		return false
	}
	start := c.nextFree
	if start < now {
		start = now
	}
	service := c.ServiceSeconds(cycles) * c.slowdown()
	finish := start + sim.Time(service)
	c.nextFree = finish
	c.queued++
	c.busy += service
	sojourn := Sojourn{
		WaitSeconds:    float64(start - now),
		ServiceSeconds: service,
		FixedSeconds:   c.cfg.FixedLatencySeconds,
	}
	if err := c.s.At(finish, func() {
		c.queued--
		c.Served++
		if done != nil {
			done(sojourn)
		}
	}); err != nil {
		// Scheduling can only fail for a past/invalid time, which the
		// max() above prevents; treat as a bug.
		panic(fmt.Sprintf("hw: core %s: %v", c.name, err))
	}
	return true
}

// QueueLen returns the number of packets queued or in service — the
// instantaneous queue-depth probe the observability sampler reads.
func (c *Core) QueueLen() int { return c.queued }

// BusySeconds returns cumulative busy time, from which the sampler
// derives windowed utilization and instantaneous power.
func (c *Core) BusySeconds() float64 { return c.busy }

// Utilization returns busy-time fraction over [0, end).
func (c *Core) Utilization(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	u := c.busy / end.Seconds()
	if u > 1 {
		u = 1
	}
	return u
}

// EnergyJoules implements Device: idle power for the full interval plus
// the active increment for busy time.
func (c *Core) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	busy := c.busy
	if busy > end.Seconds() {
		busy = end.Seconds()
	}
	return c.cfg.IdleWatts*end.Seconds() + (c.cfg.ActiveWatts-c.cfg.IdleWatts)*busy
}

// MaxPowerWatts implements Device.
func (c *Core) MaxPowerWatts() float64 { return c.cfg.ActiveWatts }

// CostVector implements Device: one core plus its peak power.
func (c *Core) CostVector() cost.Vector {
	return cost.Vector{
		metric.MetricPower: metric.Q(c.cfg.ActiveWatts, metric.Watt),
		metric.MetricCores: metric.Q(1, metric.Core),
	}
}

// Chassis models the host's fixed overhead: PSU losses, fans, DRAM,
// uncore. It does no packet work but contributes power and rack space.
type Chassis struct {
	name      string
	Watts     float64
	RackUnits float64
}

// NewChassis builds a chassis with the given constant power draw.
func NewChassis(name string, watts, rackUnits float64) *Chassis {
	return &Chassis{name: name, Watts: watts, RackUnits: rackUnits}
}

// Name implements Device.
func (ch *Chassis) Name() string { return ch.name }

// EnergyJoules implements Device (constant draw).
func (ch *Chassis) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return ch.Watts * end.Seconds()
}

// MaxPowerWatts implements Device.
func (ch *Chassis) MaxPowerWatts() float64 { return ch.Watts }

// CostVector implements Device.
func (ch *Chassis) CostVector() cost.Vector {
	return cost.Vector{
		metric.MetricPower:     metric.Q(ch.Watts, metric.Watt),
		metric.MetricRackSpace: metric.Q(ch.RackUnits, metric.RackUnit),
	}
}
