package hw

// FaultState is the degraded-mode state shared by every active device
// model: an outage flag (the device rejects all work) and a service-rate
// derating factor (thermal throttling / brownout). Devices embed it, so
// the fault injector actuates any device through the same two methods.
// The zero value is a healthy device.
type FaultState struct {
	down   bool
	derate float64 // remaining rate fraction; 0 means unset (healthy, 1)
}

// SetDown marks the device failed (true) or recovered (false).
func (f *FaultState) SetDown(down bool) { f.down = down }

// Down reports whether the device is in an outage.
func (f *FaultState) Down() bool { return f.down }

// SetDerate sets the remaining service-rate fraction. Values outside
// (0, 1] restore full rate — derating can only slow a device down.
func (f *FaultState) SetDerate(factor float64) {
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	f.derate = factor
}

// DerateFactor returns the effective remaining rate fraction in (0, 1].
func (f *FaultState) DerateFactor() float64 {
	if f.derate == 0 {
		return 1
	}
	return f.derate
}

// slowdown returns the service-time multiplier (>= 1) the current
// derating implies.
func (f *FaultState) slowdown() float64 { return 1 / f.DerateFactor() }
