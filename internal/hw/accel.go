package hw

import (
	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// SwitchConfig parameterises a programmable-switch model.
type SwitchConfig struct {
	// PortRateBps is the per-port line rate (default 100 Gb/s).
	PortRateBps float64
	// Watts is the switch's (approximately constant) power draw
	// (default 100 W for the slice of a chassis one experiment uses).
	Watts float64
	// StageLatencySeconds is the per-pipeline-stage latency (default
	// 100 ns).
	StageLatencySeconds float64
	// Stages is the number of match-action stages traversed (default 4).
	Stages int
	// TableCapacity bounds the number of installable prefix rules
	// (switch SRAM/TCAM is small — default 4096).
	TableCapacity int
	// RackUnits is the space attributed to this deployment (default 1).
	RackUnits float64
}

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.PortRateBps == 0 {
		c.PortRateBps = 100e9
	}
	if c.Watts == 0 {
		c.Watts = 100
	}
	if c.StageLatencySeconds == 0 {
		c.StageLatencySeconds = 100e-9
	}
	if c.Stages == 0 {
		c.Stages = 4
	}
	if c.TableCapacity == 0 {
		c.TableCapacity = 4096
	}
	if c.RackUnits == 0 {
		c.RackUnits = 1
	}
	return c
}

// Switch models a programmable switch used as a firewall preprocessor
// (the §4.2.1 example): it applies drop rules in its match-action
// pipeline at line rate, so the host only sees traffic that survives.
// Switch power is nearly load-independent, which the model reflects.
type Switch struct {
	FaultState

	name  string
	cfg   SwitchConfig
	rules []nf.Rule
	// PreDropped and Passed count pipeline outcomes.
	PreDropped, Passed uint64
}

// NewSwitch builds a switch preprocessor.
func NewSwitch(name string, cfg SwitchConfig) *Switch {
	return &Switch{name: name, cfg: cfg.withDefaults()}
}

// Name implements Device.
func (sw *Switch) Name() string { return sw.name }

// Config returns the effective configuration.
func (sw *Switch) Config() SwitchConfig { return sw.cfg }

// InstallRules loads drop rules into the pipeline, bounded by table
// capacity; surplus rules are rejected (they must stay on the host).
// It returns the number of rules actually installed.
func (sw *Switch) InstallRules(rules []nf.Rule) int {
	n := len(rules)
	if n > sw.cfg.TableCapacity {
		n = sw.cfg.TableCapacity
	}
	sw.rules = append([]nf.Rule(nil), rules[:n]...)
	return n
}

// Process classifies a packet at line rate. It returns Drop when a
// pipeline rule discards the packet, and the pipeline latency. A
// derated (browned-out) pipeline stretches the stage latency by the
// derating factor; a downed switch never sees packets (the deployment
// fails open around it).
func (sw *Switch) Process(ft packet.FiveTuple) (verdict nf.Verdict, latencySeconds float64) {
	latencySeconds = float64(sw.cfg.Stages) * sw.cfg.StageLatencySeconds * sw.slowdown()
	for _, r := range sw.rules {
		if r.Matches(ft) {
			if r.Action == nf.Drop {
				sw.PreDropped++
				return nf.Drop, latencySeconds
			}
			break
		}
	}
	sw.Passed++
	return nf.Accept, latencySeconds
}

// EnergyJoules implements Device (constant draw).
func (sw *Switch) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return sw.cfg.Watts * end.Seconds()
}

// MaxPowerWatts implements Device.
func (sw *Switch) MaxPowerWatts() float64 { return sw.cfg.Watts }

// CostVector implements Device.
func (sw *Switch) CostVector() cost.Vector {
	return cost.Vector{
		metric.MetricPower:     metric.Q(sw.cfg.Watts, metric.Watt),
		metric.MetricRackSpace: metric.Q(sw.cfg.RackUnits, metric.RackUnit),
	}
}

// FPGAConfig parameterises an FPGA accelerator model.
type FPGAConfig struct {
	// CapacityPps is the pipeline's packet rate (default 50 Mpps).
	CapacityPps float64
	// PipelineLatencySeconds is the fixed processing latency (default
	// 1 µs).
	PipelineLatencySeconds float64
	// IdleWatts and ActiveWatts bound board power (defaults 20 W, 45 W).
	IdleWatts, ActiveWatts float64
	// LUTsUsed and LUTsTotal describe resource consumption (defaults
	// 180k of 1.2M).
	LUTsUsed, LUTsTotal float64
	// FlowTableSize, when positive, bounds the on-chip flow table the
	// pipeline learns flows into (BRAM is scarce). Packets of unknown
	// flows that find the table full are punted to the host slow path
	// via SubmitFlow — overflow degrades throughput, it does not drop.
	// Zero keeps the historical flow-agnostic pipeline.
	FlowTableSize int
	// TableEvict selects the full-table policy; EvictSeed drives
	// EvictRandom.
	TableEvict nf.EvictPolicy
	EvictSeed  uint64
}

func (c FPGAConfig) withDefaults() FPGAConfig {
	if c.CapacityPps == 0 {
		c.CapacityPps = 50e6
	}
	if c.PipelineLatencySeconds == 0 {
		c.PipelineLatencySeconds = 1e-6
	}
	if c.IdleWatts == 0 {
		c.IdleWatts = 20
	}
	if c.ActiveWatts == 0 {
		c.ActiveWatts = 45
	}
	if c.LUTsUsed == 0 {
		c.LUTsUsed = 180e3
	}
	if c.LUTsTotal == 0 {
		c.LUTsTotal = 1.2e6
	}
	return c
}

// FPGA models a bump-in-the-wire FPGA accelerator running the entire
// network function in a hardware pipeline: packets are served at the
// pipeline rate with fixed latency; beyond capacity, excess packets are
// dropped (no elastic queueing in the pipeline model).
type FPGA struct {
	FaultState

	name string
	cfg  FPGAConfig
	s    *sim.Sim

	nextFree sim.Time
	busy     float64
	table    *nf.FlowTable
	// Served, Overflowed and Unavailable count pipeline outcomes:
	// served packets, ingress-buffer overflows, and packets arriving
	// while the pipeline was down.
	Served, Overflowed, Unavailable uint64
	// TablePunts counts packets of unknown flows punted to the host
	// because the flow table was full (SubmitFlow with a bound).
	TablePunts uint64
}

// NewFPGA builds an FPGA accelerator attached to simulator s.
func NewFPGA(name string, s *sim.Sim, cfg FPGAConfig) *FPGA {
	f := &FPGA{name: name, cfg: cfg.withDefaults(), s: s}
	if f.cfg.FlowTableSize > 0 {
		f.table = nf.NewFlowTable(f.cfg.FlowTableSize, f.cfg.TableEvict, f.cfg.EvictSeed)
	}
	return f
}

// Name implements Device.
func (f *FPGA) Name() string { return f.name }

// Config returns the effective configuration.
func (f *FPGA) Config() FPGAConfig { return f.cfg }

// Submit offers a packet to the pipeline. It returns false when the
// pipeline is down or has more than a small ingress buffer of backlog
// (the caller decides whether that means host failover or loss),
// otherwise schedules done with the pipeline sojourn breakdown. A
// derated pipeline serves at its reduced rate.
func (f *FPGA) Submit(done func(Sojourn)) bool {
	if f.Down() {
		f.Unavailable++
		return false
	}
	now := f.s.Now()
	service := 1 / f.cfg.CapacityPps * f.slowdown()
	start := f.nextFree
	if start < now {
		start = now
	}
	if float64(start-now) > 128*service {
		f.Overflowed++
		return false
	}
	finish := start + sim.Time(service)
	f.nextFree = finish
	f.busy += service
	f.Served++
	sojourn := Sojourn{
		WaitSeconds:    float64(start - now),
		ServiceSeconds: service,
		FixedSeconds:   f.cfg.PipelineLatencySeconds,
	}
	if err := f.s.At(finish, func() {
		if done != nil {
			done(sojourn)
		}
	}); err != nil {
		panic(err)
	}
	return true
}

// SubmitFlow offers a packet of a known five-tuple to the pipeline,
// learning flows into the bounded on-chip table first. With no table
// bound configured it is exactly Submit. Unknown flows that find the
// table full are punted (returns false) — the overflow-to-slow-path
// semantics, distinct from the ingress-buffer Overflowed outcome.
func (f *FPGA) SubmitFlow(ft packet.FiveTuple, done func(Sojourn)) bool {
	if f.table != nil && !f.Down() {
		if _, known := f.table.Get(ft); !known {
			if _, _, _, ok := f.table.Put(ft, 1); !ok {
				f.TablePunts++
				return false
			}
		} else {
			f.table.Touch(ft)
		}
	}
	return f.Submit(done)
}

// FlowTableLen returns the number of learned flows (0 when unbounded).
func (f *FPGA) FlowTableLen() int {
	if f.table == nil {
		return 0
	}
	return f.table.Len()
}

// TableEvicted returns flow-table evictions (0 when unbounded or
// EvictNone).
func (f *FPGA) TableEvicted() uint64 {
	if f.table == nil {
		return 0
	}
	return f.table.Evictions
}

// BusySeconds returns the pipeline's cumulative busy time (sampler
// utilization probe).
func (f *FPGA) BusySeconds() float64 { return f.busy }

// BacklogPackets estimates the ingress backlog in packets at the
// current simulated time (sampler queue-depth probe).
func (f *FPGA) BacklogPackets() int {
	now := f.s.Now()
	if f.nextFree <= now {
		return 0
	}
	return int(float64(f.nextFree-now)*f.cfg.CapacityPps + 0.5)
}

// EnergyJoules implements Device.
func (f *FPGA) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	busy := f.busy
	if busy > end.Seconds() {
		busy = end.Seconds()
	}
	return f.cfg.IdleWatts*end.Seconds() + (f.cfg.ActiveWatts-f.cfg.IdleWatts)*busy
}

// MaxPowerWatts implements Device.
func (f *FPGA) MaxPowerWatts() float64 { return f.cfg.ActiveWatts }

// CostVector implements Device: power plus LUT usage (the metric that,
// per §3.3, cannot cover CPU-only systems — exercised by the coverage
// tests).
func (f *FPGA) CostVector() cost.Vector {
	return cost.Vector{
		metric.MetricPower: metric.Q(f.cfg.ActiveWatts, metric.Watt),
		metric.MetricLUTs:  metric.Q(f.cfg.LUTsUsed, metric.LUT),
	}
}
