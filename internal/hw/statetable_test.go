package hw

import (
	"testing"

	"fairbench/internal/nf"
	"fairbench/internal/sim"
)

func TestSmartNICInstallRefusedAttributed(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("snic", s, SmartNICConfig{FlowTableSize: 2})
	sn.Install(flow(1))
	sn.Install(flow(2))
	for i := 3; i < 8; i++ {
		if sn.Install(flow(i)) {
			t.Fatalf("install %d accepted past capacity under EvictNone", i)
		}
	}
	if sn.InstallRefused != 5 {
		t.Errorf("InstallRefused = %d, want 5", sn.InstallRefused)
	}
	if sn.Evicted() != 0 {
		t.Errorf("Evicted = %d under EvictNone", sn.Evicted())
	}
}

func TestSmartNICLRUTableTracksLiveFlows(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("snic", s, SmartNICConfig{
		FlowTableSize: 2, TableEvict: nf.EvictLRU, EvictSeed: 1,
	})
	sn.Install(flow(1))
	sn.Install(flow(2))
	// Fast-path traffic on flow 1 keeps it warm; flow 2 is the victim.
	_ = s.At(0, func() { sn.Offload(flow(1), nil) })
	s.RunAll()
	if !sn.Install(flow(3)) {
		t.Fatal("LRU table must admit new flows by evicting")
	}
	if sn.Evicted() != 1 {
		t.Errorf("Evicted = %d", sn.Evicted())
	}
	_ = s.At(s.Now()+1, func() {
		if !sn.Offload(flow(1), nil) {
			t.Error("warm flow evicted instead of cold one")
		}
		if sn.Offload(flow(2), nil) {
			t.Error("cold flow should have been evicted")
		}
	})
	s.RunAll()
}

func TestFPGAFlowTableOverflowPunts(t *testing.T) {
	s := sim.New()
	f := NewFPGA("fpga", s, FPGAConfig{FlowTableSize: 2})
	served, punted := 0, 0
	_ = s.At(0, func() {
		for i := 0; i < 6; i++ {
			if f.SubmitFlow(flow(i), nil) {
				served++
			} else {
				punted++
			}
		}
		// Known flows still ride the pipeline at a full table.
		if !f.SubmitFlow(flow(0), nil) {
			t.Error("known flow punted")
		}
	})
	s.RunAll()
	if served != 2 || punted != 4 {
		t.Errorf("served/punted = %d/%d, want 2/4", served, punted)
	}
	if f.TablePunts != 4 {
		t.Errorf("TablePunts = %d", f.TablePunts)
	}
	if f.FlowTableLen() != 2 {
		t.Errorf("table len = %d", f.FlowTableLen())
	}
}

func TestFPGAUnboundedKeepsHistoricalBehaviour(t *testing.T) {
	s := sim.New()
	f := NewFPGA("fpga", s, FPGAConfig{})
	_ = s.At(0, func() {
		for i := 0; i < 64; i++ {
			if !f.SubmitFlow(flow(i), nil) {
				t.Fatalf("flow %d rejected with no table bound", i)
			}
		}
	})
	s.RunAll()
	if f.FlowTableLen() != 0 || f.TablePunts != 0 {
		t.Errorf("unbounded pipeline grew state: len=%d punts=%d", f.FlowTableLen(), f.TablePunts)
	}
}
