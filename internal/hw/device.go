// Package hw models the heterogeneous hardware devices of the paper's
// examples — CPU cores, regular NICs, SmartNICs, programmable switches
// and FPGAs — as discrete-event queueing servers with power models and
// cost vectors.
//
// This package is the simulated substitute for the physical testbeds the
// paper's examples presume (see DESIGN.md, "Substitutions"). Each device
// model exposes:
//
//   - processing behaviour (service times, queues, drops) driven by the
//     cycle costs reported by internal/nf, so performance emerges from
//     executing code;
//   - a power model (idle/active split, integrated to energy over
//     simulated time), power being the paper's exemplar cost metric; and
//   - a cost vector (power plus device-specific metrics such as cores or
//     LUTs) feeding the end-to-end coverage machinery in internal/cost.
package hw

import (
	"fmt"

	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/sim"
)

// Device is a hardware component with a power model and a cost vector.
type Device interface {
	// Name identifies the device instance.
	Name() string
	// EnergyJoules returns the total energy consumed over [0, end),
	// integrating idle and active power.
	EnergyJoules(end sim.Time) float64
	// MaxPowerWatts returns the device's peak (provisioned) power draw,
	// the figure a deployment reports as its power cost. Evaluating
	// provisioned rather than instantaneous power matches how the
	// paper's examples attribute "50 W" to a configuration.
	MaxPowerWatts() float64
	// CostVector returns the device's context-independent cost metrics
	// (always including power; cores/LUTs where applicable).
	CostVector() cost.Vector
}

// Sojourn attributes a packet's in-device latency to stages: time
// spent queued behind earlier packets, the device's own service time,
// and the fixed I/O latency of reaching the device (PCIe transfer,
// offload path, pipeline fill). Completion callbacks receive the full
// breakdown so the observability layer can attribute latency per stage
// instead of a single opaque number.
type Sojourn struct {
	// WaitSeconds is the time queued before service began.
	WaitSeconds float64
	// ServiceSeconds is the device's busy time on this packet.
	ServiceSeconds float64
	// FixedSeconds is the path's fixed I/O latency.
	FixedSeconds float64
}

// Total returns the packet's end-to-end in-device latency.
func (s Sojourn) Total() float64 {
	return s.WaitSeconds + s.ServiceSeconds + s.FixedSeconds
}

// AveragePowerWatts computes mean power of a device over [0, end).
func AveragePowerWatts(d Device, end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return d.EnergyJoules(end) / end.Seconds()
}

// ComponentsOf converts devices into cost components for end-to-end
// composition (paper Principle 3).
func ComponentsOf(devices ...Device) []cost.Component {
	out := make([]cost.Component, 0, len(devices))
	for _, d := range devices {
		out = append(out, cost.Component{Name: d.Name(), Costs: d.CostVector()})
	}
	return out
}

// TotalPowerWatts composes the provisioned power of a set of devices
// end-to-end; it fails only if a device omits the power metric, which
// would be a bug (every Device must report power).
func TotalPowerWatts(devices ...Device) (float64, error) {
	q, err := cost.Compose(metric.MetricPower, ComponentsOf(devices...))
	if err != nil {
		return 0, fmt.Errorf("hw: composing power: %w", err)
	}
	w, err := q.Convert(metric.Watt)
	if err != nil {
		return 0, err
	}
	return w.Value, nil
}
