package hw

import (
	"testing"

	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

func TestFaultStateDerateClamps(t *testing.T) {
	var f FaultState
	if got := f.DerateFactor(); got != 1 {
		t.Errorf("zero-value derate = %v, want 1", got)
	}
	f.SetDerate(0.5)
	if got := f.DerateFactor(); got != 0.5 {
		t.Errorf("derate = %v, want 0.5", got)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		f.SetDerate(bad)
		if got := f.DerateFactor(); got != 1 {
			t.Errorf("SetDerate(%v) → factor %v, want clamped to 1", bad, got)
		}
	}
}

func TestCoreOutageDropsWork(t *testing.T) {
	s := sim.New()
	c := NewCore("c0", s, CPUConfig{})
	c.SetDown(true)
	if c.Submit(1000, nil) {
		t.Fatal("downed core accepted work")
	}
	if c.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", c.Dropped)
	}
	c.SetDown(false)
	if !c.Submit(1000, nil) {
		t.Fatal("recovered core rejected work")
	}
}

func TestCoreBrownoutStretchesService(t *testing.T) {
	measure := func(derate float64) float64 {
		s := sim.New()
		c := NewCore("c0", s, CPUConfig{})
		c.SetDerate(derate)
		var total float64
		c.Submit(30000, func(so Sojourn) { total = so.ServiceSeconds })
		s.Run(1)
		return total
	}
	healthy, browned := measure(1), measure(0.5)
	if browned <= healthy {
		t.Errorf("browned-out service %v not slower than healthy %v", browned, healthy)
	}
	if got, want := browned/healthy, 2.0; got < want*0.99 || got > want*1.01 {
		t.Errorf("0.5 derating stretched service by %vx, want %vx", got, want)
	}
}

func TestSmartNICOutage(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("sn", s, SmartNICConfig{})
	ft := packet.FiveTuple{Proto: packet.ProtoTCP, SrcPort: 1, DstPort: 2}
	if !sn.Install(ft) {
		t.Fatal("install on healthy SmartNIC failed")
	}
	if !sn.Offload(ft, nil) {
		t.Fatal("offload of installed flow failed")
	}
	sn.SetDown(true)
	if sn.Offload(ft, nil) {
		t.Fatal("downed SmartNIC served the fast path")
	}
	if sn.Install(ft) {
		t.Fatal("downed SmartNIC accepted a table install")
	}
	// A firmware crash loses the flow table: after recovery the flow
	// must be re-vetted by the host before the fast path serves it.
	sn.ResetTable()
	sn.SetDown(false)
	if sn.Offload(ft, nil) {
		t.Fatal("offload table survived ResetTable")
	}
	if !sn.Install(ft) {
		t.Fatal("recovered SmartNIC rejected a table install")
	}
	if !sn.Offload(ft, nil) {
		t.Fatal("re-installed flow not served")
	}
}

func TestFPGAOutageCountsUnavailable(t *testing.T) {
	s := sim.New()
	f := NewFPGA("f0", s, FPGAConfig{})
	f.SetDown(true)
	if f.Submit(nil) {
		t.Fatal("downed FPGA accepted a packet")
	}
	if f.Unavailable != 1 || f.Served != 0 {
		t.Errorf("Unavailable=%d Served=%d, want 1/0", f.Unavailable, f.Served)
	}
	f.SetDown(false)
	if !f.Submit(nil) {
		t.Fatal("recovered FPGA rejected a packet")
	}
	if f.Served != 1 {
		t.Errorf("Served = %d, want 1", f.Served)
	}
}

func TestSwitchBrownoutStretchesLatency(t *testing.T) {
	sw := NewSwitch("sw", SwitchConfig{})
	_, healthy := sw.Process(packet.FiveTuple{})
	sw.SetDerate(0.25)
	_, browned := sw.Process(packet.FiveTuple{})
	if got, want := browned/healthy, 4.0; got < want*0.99 || got > want*1.01 {
		t.Errorf("0.25 derating stretched switch latency by %vx, want %vx", got, want)
	}
}
