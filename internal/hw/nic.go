package hw

import (
	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// NIC is a conventional network interface: it delivers packets to host
// cores (RSS by flow hash) and contributes constant power. It performs
// no offload.
type NIC struct {
	name    string
	RateBps float64
	Watts   float64
	// Delivered counts packets handed to the host.
	Delivered uint64
}

// NewNIC builds a NIC with the given line rate and power draw.
func NewNIC(name string, rateBps, watts float64) *NIC {
	return &NIC{name: name, RateBps: rateBps, Watts: watts}
}

// Name implements Device.
func (n *NIC) Name() string { return n.name }

// EnergyJoules implements Device (constant draw — NIC power varies
// little with load).
func (n *NIC) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return n.Watts * end.Seconds()
}

// MaxPowerWatts implements Device.
func (n *NIC) MaxPowerWatts() float64 { return n.Watts }

// CostVector implements Device.
func (n *NIC) CostVector() cost.Vector {
	return cost.Vector{metric.MetricPower: metric.Q(n.Watts, metric.Watt)}
}

// RSS picks a core index for a flow by its symmetric hash, the
// receive-side-scaling dispatch real NICs implement.
func RSS(ft packet.FiveTuple, nCores int) int {
	if nCores <= 0 {
		return 0
	}
	return int(ft.FastHash() % uint64(nCores))
}

// SmartNICConfig parameterises a SmartNIC offload model.
type SmartNICConfig struct {
	// CapacityPps is the NIC dataplane's packet rate for offloaded
	// flows (default 30 Mpps).
	CapacityPps float64
	// IdleWatts and ActiveWatts bound the NIC SoC's power (defaults
	// 12 W and 25 W).
	IdleWatts, ActiveWatts float64
	// FlowTableSize caps the offload table; new flows beyond it stay
	// on the host (default 65536).
	FlowTableSize int
	// TableEvict selects what a full offload table does with new
	// installs: refuse them (EvictNone, the conventional hardware
	// behaviour — entries are sticky until an outage resets them) or
	// evict per policy so the table tracks the live flow set.
	TableEvict nf.EvictPolicy
	// EvictSeed drives eviction randomness (EvictRandom only).
	EvictSeed uint64
	// OffloadLatencySeconds is the fixed fast-path latency (default
	// 2 µs).
	OffloadLatencySeconds float64
}

func (c SmartNICConfig) withDefaults() SmartNICConfig {
	if c.CapacityPps == 0 {
		c.CapacityPps = 30e6
	}
	if c.IdleWatts == 0 {
		c.IdleWatts = 12
	}
	if c.ActiveWatts == 0 {
		c.ActiveWatts = 25
	}
	if c.FlowTableSize == 0 {
		c.FlowTableSize = 65536
	}
	if c.OffloadLatencySeconds == 0 {
		c.OffloadLatencySeconds = 2e-6
	}
	return c
}

// SmartNIC models flow-offload acceleration (the §4.2 example): the
// first packet of each flow goes to the host (slow path), which installs
// an offload entry; subsequent packets of known flows are handled
// entirely on the NIC at its dataplane rate. This is the
// AccelTCP/FlexTOE-style "established flows bypass the host" pattern.
type SmartNIC struct {
	FaultState

	name string
	cfg  SmartNICConfig
	s    *sim.Sim

	table    *nf.FlowTable
	nextFree sim.Time
	busy     float64
	// Offloaded, ToHost and TableMisses count dispatch outcomes.
	Offloaded, ToHost uint64
	// Saturated counts fast-path packets that found the NIC dataplane
	// busy beyond its queue and were punted to the host.
	Saturated uint64
	// InstallRefused counts offload installs rejected by a full table
	// (EvictNone) — the overflow-punt regime's tell-tale: those flows
	// ride the host slow path for their whole lifetime.
	InstallRefused uint64
}

// NewSmartNIC builds a SmartNIC attached to simulator s.
func NewSmartNIC(name string, s *sim.Sim, cfg SmartNICConfig) *SmartNIC {
	cfg = cfg.withDefaults()
	return &SmartNIC{
		name:  name,
		cfg:   cfg,
		s:     s,
		table: nf.NewFlowTable(cfg.FlowTableSize, cfg.TableEvict, cfg.EvictSeed),
	}
}

// Name implements Device.
func (sn *SmartNIC) Name() string { return sn.name }

// Config returns the effective configuration.
func (sn *SmartNIC) Config() SmartNICConfig { return sn.cfg }

// FlowTableLen returns the number of installed offload entries.
func (sn *SmartNIC) FlowTableLen() int { return sn.table.Len() }

// Evicted returns the number of offload entries evicted to admit new
// installs (always 0 under EvictNone).
func (sn *SmartNIC) Evicted() uint64 { return sn.table.Evictions }

// Install adds a flow to the offload table (called by the host after
// slow-path processing). It returns false when the NIC is down (a dead
// device cannot accept entries) or the table is full and the eviction
// policy refuses to make room.
func (sn *SmartNIC) Install(ft packet.FiveTuple) bool {
	if sn.Down() {
		return false
	}
	if _, _, _, ok := sn.table.Put(ft, 1); !ok {
		sn.InstallRefused++
		return false
	}
	return true
}

// ResetTable wipes the offload table — the state loss an outage causes:
// after recovery every flow must be re-vetted by the host slow path.
func (sn *SmartNIC) ResetTable() { sn.table.Reset() }

// Offload attempts to handle a packet on the NIC fast path. It returns
// true (and invokes done with the fast-path sojourn breakdown) when the
// flow is in the table and the dataplane has headroom; false punts the
// packet to the host — which is also what an outage or table miss does,
// giving offload deployments their graceful-degradation path.
func (sn *SmartNIC) Offload(ft packet.FiveTuple, done func(Sojourn)) bool {
	if sn.Down() {
		sn.ToHost++
		return false
	}
	if _, hit := sn.table.Get(ft); !hit {
		sn.ToHost++
		return false
	}
	// Keep recency truthful for LRU-managed tables: a fast-path hit is
	// a use.
	sn.table.Touch(ft)
	now := sn.s.Now()
	service := 1 / sn.cfg.CapacityPps * sn.slowdown()
	start := sn.nextFree
	if start < now {
		start = now
	}
	// A bounded fast-path queue: beyond 64 packets of backlog, punt.
	if float64(start-now) > 64*service {
		sn.Saturated++
		sn.ToHost++
		return false
	}
	finish := start + sim.Time(service)
	sn.nextFree = finish
	sn.busy += service
	sn.Offloaded++
	sojourn := Sojourn{
		WaitSeconds:    float64(start - now),
		ServiceSeconds: service,
		FixedSeconds:   sn.cfg.OffloadLatencySeconds,
	}
	if err := sn.s.At(finish, func() {
		if done != nil {
			done(sojourn)
		}
	}); err != nil {
		panic(err)
	}
	return true
}

// BusySeconds returns the dataplane's cumulative busy time (sampler
// utilization probe).
func (sn *SmartNIC) BusySeconds() float64 { return sn.busy }

// BacklogPackets estimates the fast-path backlog in packets at the
// current simulated time (sampler queue-depth probe).
func (sn *SmartNIC) BacklogPackets() int {
	now := sn.s.Now()
	if sn.nextFree <= now {
		return 0
	}
	return int(float64(sn.nextFree-now)*sn.cfg.CapacityPps + 0.5)
}

// EnergyJoules implements Device.
func (sn *SmartNIC) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	busy := sn.busy
	if busy > end.Seconds() {
		busy = end.Seconds()
	}
	return sn.cfg.IdleWatts*end.Seconds() + (sn.cfg.ActiveWatts-sn.cfg.IdleWatts)*busy
}

// MaxPowerWatts implements Device.
func (sn *SmartNIC) MaxPowerWatts() float64 { return sn.cfg.ActiveWatts }

// CostVector implements Device.
func (sn *SmartNIC) CostVector() cost.Vector {
	return cost.Vector{metric.MetricPower: metric.Q(sn.cfg.ActiveWatts, metric.Watt)}
}
