package hw

import (
	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

// NIC is a conventional network interface: it delivers packets to host
// cores (RSS by flow hash) and contributes constant power. It performs
// no offload.
type NIC struct {
	name    string
	RateBps float64
	Watts   float64
	// Delivered counts packets handed to the host.
	Delivered uint64
}

// NewNIC builds a NIC with the given line rate and power draw.
func NewNIC(name string, rateBps, watts float64) *NIC {
	return &NIC{name: name, RateBps: rateBps, Watts: watts}
}

// Name implements Device.
func (n *NIC) Name() string { return n.name }

// EnergyJoules implements Device (constant draw — NIC power varies
// little with load).
func (n *NIC) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	return n.Watts * end.Seconds()
}

// MaxPowerWatts implements Device.
func (n *NIC) MaxPowerWatts() float64 { return n.Watts }

// CostVector implements Device.
func (n *NIC) CostVector() cost.Vector {
	return cost.Vector{metric.MetricPower: metric.Q(n.Watts, metric.Watt)}
}

// RSS picks a core index for a flow by its symmetric hash, the
// receive-side-scaling dispatch real NICs implement.
func RSS(ft packet.FiveTuple, nCores int) int {
	if nCores <= 0 {
		return 0
	}
	return int(ft.FastHash() % uint64(nCores))
}

// SmartNICConfig parameterises a SmartNIC offload model.
type SmartNICConfig struct {
	// CapacityPps is the NIC dataplane's packet rate for offloaded
	// flows (default 30 Mpps).
	CapacityPps float64
	// IdleWatts and ActiveWatts bound the NIC SoC's power (defaults
	// 12 W and 25 W).
	IdleWatts, ActiveWatts float64
	// FlowTableSize caps the offload table; new flows beyond it stay
	// on the host (default 65536).
	FlowTableSize int
	// OffloadLatencySeconds is the fixed fast-path latency (default
	// 2 µs).
	OffloadLatencySeconds float64
}

func (c SmartNICConfig) withDefaults() SmartNICConfig {
	if c.CapacityPps == 0 {
		c.CapacityPps = 30e6
	}
	if c.IdleWatts == 0 {
		c.IdleWatts = 12
	}
	if c.ActiveWatts == 0 {
		c.ActiveWatts = 25
	}
	if c.FlowTableSize == 0 {
		c.FlowTableSize = 65536
	}
	if c.OffloadLatencySeconds == 0 {
		c.OffloadLatencySeconds = 2e-6
	}
	return c
}

// SmartNIC models flow-offload acceleration (the §4.2 example): the
// first packet of each flow goes to the host (slow path), which installs
// an offload entry; subsequent packets of known flows are handled
// entirely on the NIC at its dataplane rate. This is the
// AccelTCP/FlexTOE-style "established flows bypass the host" pattern.
type SmartNIC struct {
	FaultState

	name string
	cfg  SmartNICConfig
	s    *sim.Sim

	table    map[packet.FiveTuple]bool
	nextFree sim.Time
	busy     float64
	// Offloaded, ToHost and TableMisses count dispatch outcomes.
	Offloaded, ToHost uint64
	// Saturated counts fast-path packets that found the NIC dataplane
	// busy beyond its queue and were punted to the host.
	Saturated uint64
}

// NewSmartNIC builds a SmartNIC attached to simulator s.
func NewSmartNIC(name string, s *sim.Sim, cfg SmartNICConfig) *SmartNIC {
	return &SmartNIC{name: name, cfg: cfg.withDefaults(), s: s, table: make(map[packet.FiveTuple]bool)}
}

// Name implements Device.
func (sn *SmartNIC) Name() string { return sn.name }

// Config returns the effective configuration.
func (sn *SmartNIC) Config() SmartNICConfig { return sn.cfg }

// FlowTableLen returns the number of installed offload entries.
func (sn *SmartNIC) FlowTableLen() int { return len(sn.table) }

// Install adds a flow to the offload table (called by the host after
// slow-path processing). It returns false when the table is full or the
// NIC is down (a dead device cannot accept entries).
func (sn *SmartNIC) Install(ft packet.FiveTuple) bool {
	if sn.Down() || len(sn.table) >= sn.cfg.FlowTableSize {
		return false
	}
	sn.table[ft] = true
	return true
}

// ResetTable wipes the offload table — the state loss an outage causes:
// after recovery every flow must be re-vetted by the host slow path.
func (sn *SmartNIC) ResetTable() { sn.table = make(map[packet.FiveTuple]bool) }

// Offload attempts to handle a packet on the NIC fast path. It returns
// true (and invokes done with the fast-path sojourn breakdown) when the
// flow is in the table and the dataplane has headroom; false punts the
// packet to the host — which is also what an outage or table miss does,
// giving offload deployments their graceful-degradation path.
func (sn *SmartNIC) Offload(ft packet.FiveTuple, done func(Sojourn)) bool {
	if sn.Down() || !sn.table[ft] {
		sn.ToHost++
		return false
	}
	now := sn.s.Now()
	service := 1 / sn.cfg.CapacityPps * sn.slowdown()
	start := sn.nextFree
	if start < now {
		start = now
	}
	// A bounded fast-path queue: beyond 64 packets of backlog, punt.
	if float64(start-now) > 64*service {
		sn.Saturated++
		sn.ToHost++
		return false
	}
	finish := start + sim.Time(service)
	sn.nextFree = finish
	sn.busy += service
	sn.Offloaded++
	sojourn := Sojourn{
		WaitSeconds:    float64(start - now),
		ServiceSeconds: service,
		FixedSeconds:   sn.cfg.OffloadLatencySeconds,
	}
	if err := sn.s.At(finish, func() {
		if done != nil {
			done(sojourn)
		}
	}); err != nil {
		panic(err)
	}
	return true
}

// BusySeconds returns the dataplane's cumulative busy time (sampler
// utilization probe).
func (sn *SmartNIC) BusySeconds() float64 { return sn.busy }

// BacklogPackets estimates the fast-path backlog in packets at the
// current simulated time (sampler queue-depth probe).
func (sn *SmartNIC) BacklogPackets() int {
	now := sn.s.Now()
	if sn.nextFree <= now {
		return 0
	}
	return int(float64(sn.nextFree-now)*sn.cfg.CapacityPps + 0.5)
}

// EnergyJoules implements Device.
func (sn *SmartNIC) EnergyJoules(end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	busy := sn.busy
	if busy > end.Seconds() {
		busy = end.Seconds()
	}
	return sn.cfg.IdleWatts*end.Seconds() + (sn.cfg.ActiveWatts-sn.cfg.IdleWatts)*busy
}

// MaxPowerWatts implements Device.
func (sn *SmartNIC) MaxPowerWatts() float64 { return sn.cfg.ActiveWatts }

// CostVector implements Device.
func (sn *SmartNIC) CostVector() cost.Vector {
	return cost.Vector{metric.MetricPower: metric.Q(sn.cfg.ActiveWatts, metric.Watt)}
}
