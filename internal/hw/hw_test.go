package hw

import (
	"math"
	"testing"

	"fairbench/internal/cost"
	"fairbench/internal/metric"
	"fairbench/internal/nf"
	"fairbench/internal/packet"
	"fairbench/internal/sim"
)

func flow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr4From(uint32(0x0a000000 + i)), Dst: packet.Addr4{10, 0, 0, 1},
		SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func TestCoreServiceAndCapacity(t *testing.T) {
	s := sim.New()
	c := NewCore("core0", s, CPUConfig{FreqHz: 3e9, OverheadCycles: 600})
	// 900 + 600 cycles at 3 GHz = 500 ns.
	if got := c.ServiceSeconds(900); math.Abs(got-500e-9) > 1e-15 {
		t.Errorf("ServiceSeconds = %v, want 500ns", got)
	}
	if got := c.CapacityPps(900); math.Abs(got-2e6) > 1 {
		t.Errorf("CapacityPps = %v, want 2M", got)
	}
}

func TestCoreFIFOQueueing(t *testing.T) {
	s := sim.New()
	c := NewCore("core0", s, CPUConfig{FreqHz: 1e9, OverheadCycles: 600, QueueDepth: 16, FixedLatencySeconds: -1})
	var sojourns []Sojourn
	// Two back-to-back packets of 400+600 cycles (1 µs) at t=0: the
	// second waits for the first.
	submit := func() {
		for i := 0; i < 2; i++ {
			if !c.Submit(400, func(so Sojourn) { sojourns = append(sojourns, so) }) {
				t.Error("submit rejected")
			}
		}
	}
	if err := s.At(0, submit); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if len(sojourns) != 2 {
		t.Fatalf("sojourns = %v", sojourns)
	}
	if math.Abs(sojourns[0].Total()-1e-6) > 1e-12 || math.Abs(sojourns[1].Total()-2e-6) > 1e-12 {
		t.Errorf("latencies = %v, want [1µs 2µs]", sojourns)
	}
	// The second packet's extra microsecond is queueing, not service.
	if math.Abs(sojourns[1].WaitSeconds-1e-6) > 1e-12 || math.Abs(sojourns[1].ServiceSeconds-1e-6) > 1e-12 {
		t.Errorf("second sojourn = %+v, want 1µs wait + 1µs service", sojourns[1])
	}
	if sojourns[0].WaitSeconds != 0 {
		t.Errorf("first packet should not wait: %+v", sojourns[0])
	}
	if c.Served != 2 {
		t.Errorf("Served = %d", c.Served)
	}
}

func TestCoreOverloadDrops(t *testing.T) {
	s := sim.New()
	c := NewCore("core0", s, CPUConfig{FreqHz: 1e9, OverheadCycles: 0, QueueDepth: 4})
	dropped := 0
	_ = s.At(0, func() {
		for i := 0; i < 10; i++ {
			if !c.Submit(1_000_000, nil) { // 1 ms each
				dropped++
			}
		}
	})
	s.RunAll()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6 (queue depth 4)", dropped)
	}
	if c.Dropped != 6 || c.Served != 4 {
		t.Errorf("counters: served=%d dropped=%d", c.Served, c.Dropped)
	}
}

func TestCoreEnergyModel(t *testing.T) {
	s := sim.New()
	c := NewCore("core0", s, CPUConfig{FreqHz: 1e9, IdleWatts: 5, ActiveWatts: 15, OverheadCycles: 600})
	// Busy for 0.5 s of a 1 s window: E = 5*1 + 10*0.5 = 10 J.
	_ = s.At(0, func() { c.Submit(500_000_000-600, nil) })
	s.Run(1)
	if got := c.EnergyJoules(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("EnergyJoules = %v, want 10", got)
	}
	if got := c.Utilization(1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := AveragePowerWatts(c, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("AveragePowerWatts = %v, want 10", got)
	}
	if c.MaxPowerWatts() != 15 {
		t.Errorf("MaxPowerWatts = %v", c.MaxPowerWatts())
	}
}

func TestChassisConstantPower(t *testing.T) {
	ch := NewChassis("chassis", 30, 1)
	if got := ch.EnergyJoules(10); got != 300 {
		t.Errorf("EnergyJoules = %v", got)
	}
	v := ch.CostVector()
	if v[metric.MetricRackSpace].Value != 1 {
		t.Errorf("rack units = %v", v[metric.MetricRackSpace])
	}
}

func TestTotalPowerComposesEndToEnd(t *testing.T) {
	s := sim.New()
	devices := []Device{
		NewChassis("chassis", 15, 1),
		NewCore("core0", s, CPUConfig{ActiveWatts: 30}),
		NewNIC("nic", 10e9, 5),
	}
	w, err := TotalPowerWatts(devices...)
	if err != nil {
		t.Fatal(err)
	}
	if w != 50 {
		t.Errorf("total power = %v, want 50 (the paper's baseline)", w)
	}
}

func TestCoresMetricNotEndToEndAcrossFPGA(t *testing.T) {
	// Principle 3 in action: a cores-cost comparison of a CPU-only
	// system with a CPU+FPGA system fails coverage.
	s := sim.New()
	cpuOnly := ComponentsOf(NewCore("core0", s, CPUConfig{}))
	hybrid := ComponentsOf(NewCore("core0", s, CPUConfig{}), NewFPGA("fpga", s, FPGAConfig{}))
	if _, err := cost.Compose(metric.MetricCores, cpuOnly); err != nil {
		t.Errorf("cores over CPU-only should compose: %v", err)
	}
	if _, err := cost.Compose(metric.MetricCores, hybrid); err == nil {
		t.Error("cores over CPU+FPGA must fail end-to-end coverage")
	}
	if _, err := cost.Compose(metric.MetricPower, hybrid); err != nil {
		t.Errorf("power must compose over any mix: %v", err)
	}
}

func TestRSSStableAndBounded(t *testing.T) {
	for i := 0; i < 100; i++ {
		ft := flow(i)
		c := RSS(ft, 8)
		if c < 0 || c >= 8 {
			t.Fatalf("RSS out of range: %d", c)
		}
		if RSS(ft, 8) != c {
			t.Fatal("RSS must be deterministic")
		}
		if RSS(ft.Reverse(), 8) != c {
			t.Fatal("RSS must be direction-symmetric")
		}
	}
	if RSS(flow(0), 0) != 0 {
		t.Error("RSS with no cores should degrade to 0")
	}
}

func TestSmartNICOffloadPath(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("snic", s, SmartNICConfig{CapacityPps: 1e6})
	ft := flow(1)

	// Unknown flow: punted to host.
	if sn.Offload(ft, nil) {
		t.Fatal("unknown flow must not be offloaded")
	}
	if !sn.Install(ft) {
		t.Fatal("install failed")
	}
	done := false
	_ = s.At(0, func() {
		if !sn.Offload(ft, func(so Sojourn) {
			done = true
			if so.Total() < 1e-6 {
				t.Errorf("fast-path latency = %v, want >= service+fixed", so.Total())
			}
		}) {
			t.Error("installed flow should offload")
		}
	})
	s.RunAll()
	if !done {
		t.Error("offload completion callback not invoked")
	}
	if sn.Offloaded != 1 || sn.ToHost != 1 {
		t.Errorf("counters: offloaded=%d tohost=%d", sn.Offloaded, sn.ToHost)
	}
}

func TestSmartNICTableCapacity(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("snic", s, SmartNICConfig{FlowTableSize: 2})
	if !sn.Install(flow(1)) || !sn.Install(flow(2)) {
		t.Fatal("first installs should succeed")
	}
	if sn.Install(flow(3)) {
		t.Error("table beyond capacity should reject")
	}
	if sn.FlowTableLen() != 2 {
		t.Errorf("table len = %d", sn.FlowTableLen())
	}
}

func TestSmartNICSaturationPunts(t *testing.T) {
	s := sim.New()
	sn := NewSmartNIC("snic", s, SmartNICConfig{CapacityPps: 1000}) // 1 ms service
	ft := flow(1)
	sn.Install(ft)
	punted := 0
	_ = s.At(0, func() {
		for i := 0; i < 200; i++ {
			if !sn.Offload(ft, nil) {
				punted++
			}
		}
	})
	s.RunAll()
	if punted == 0 {
		t.Error("saturated fast path should punt to host")
	}
	if sn.Saturated == 0 {
		t.Error("Saturated counter should record punts")
	}
}

func TestSwitchPreFilter(t *testing.T) {
	sw := NewSwitch("tofino", SwitchConfig{Watts: 90, Stages: 4, StageLatencySeconds: 100e-9})
	installed := sw.InstallRules([]nf.Rule{
		{ID: 0, Src: nf.Prefix{Addr: packet.Addr4{10, 66, 0, 0}, Bits: 16}, Action: nf.Drop},
	})
	if installed != 1 {
		t.Fatalf("installed = %d", installed)
	}
	attack := packet.FiveTuple{Src: packet.Addr4{10, 66, 1, 1}, Dst: packet.Addr4{1, 1, 1, 1}, Proto: packet.ProtoUDP}
	v, lat := sw.Process(attack)
	if v != nf.Drop {
		t.Errorf("attack verdict = %v", v)
	}
	if math.Abs(lat-400e-9) > 1e-12 {
		t.Errorf("pipeline latency = %v, want 400ns", lat)
	}
	clean := flow(1)
	if v, _ := sw.Process(clean); v != nf.Accept {
		t.Errorf("clean verdict = %v", v)
	}
	if sw.PreDropped != 1 || sw.Passed != 1 {
		t.Errorf("counters: dropped=%d passed=%d", sw.PreDropped, sw.Passed)
	}
}

func TestSwitchTableCapacity(t *testing.T) {
	sw := NewSwitch("sw", SwitchConfig{TableCapacity: 10})
	rules := make([]nf.Rule, 100)
	if got := sw.InstallRules(rules); got != 10 {
		t.Errorf("installed = %d, want capacity cap 10", got)
	}
}

func TestSwitchConstantPower(t *testing.T) {
	sw := NewSwitch("sw", SwitchConfig{Watts: 100})
	if sw.EnergyJoules(2) != 200 || sw.MaxPowerWatts() != 100 {
		t.Error("switch power model should be constant")
	}
}

func TestFPGASubmitAndOverflow(t *testing.T) {
	s := sim.New()
	f := NewFPGA("fpga", s, FPGAConfig{CapacityPps: 1000, PipelineLatencySeconds: 1e-6})
	served := 0
	overflow := 0
	_ = s.At(0, func() {
		for i := 0; i < 300; i++ {
			if f.Submit(func(Sojourn) { served++ }) {
				continue
			}
			overflow++
		}
	})
	s.RunAll()
	if overflow == 0 {
		t.Error("pipeline should overflow beyond its ingress buffer")
	}
	if served == 0 || uint64(served) != f.Served {
		t.Errorf("served = %d, f.Served = %d", served, f.Served)
	}
}

func TestFPGACostVectorHasLUTs(t *testing.T) {
	s := sim.New()
	f := NewFPGA("fpga", s, FPGAConfig{})
	v := f.CostVector()
	if _, ok := v[metric.MetricLUTs]; !ok {
		t.Error("FPGA cost vector should report LUTs")
	}
	if _, ok := v[metric.MetricPower]; !ok {
		t.Error("FPGA cost vector should report power")
	}
}

func TestDeviceDefaults(t *testing.T) {
	s := sim.New()
	c := NewCore("c", s, CPUConfig{})
	if c.Config().FreqHz != 3e9 || c.Config().QueueDepth != 512 {
		t.Errorf("core defaults = %+v", c.Config())
	}
	sn := NewSmartNIC("s", s, SmartNICConfig{})
	if sn.Config().CapacityPps != 30e6 {
		t.Errorf("smartnic defaults = %+v", sn.Config())
	}
	sw := NewSwitch("w", SwitchConfig{})
	if sw.Config().PortRateBps != 100e9 {
		t.Errorf("switch defaults = %+v", sw.Config())
	}
	fp := NewFPGA("f", s, FPGAConfig{})
	if fp.Config().LUTsTotal != 1.2e6 {
		t.Errorf("fpga defaults = %+v", fp.Config())
	}
}

func TestProbes(t *testing.T) {
	s := sim.New()
	c := NewCore("c", s, CPUConfig{FreqHz: 1e9, OverheadCycles: 0, QueueDepth: 16})
	_ = s.At(0, func() {
		for i := 0; i < 3; i++ {
			c.Submit(1_000_000, nil) // 1 ms each
		}
		if c.QueueLen() != 3 {
			t.Errorf("QueueLen = %d, want 3", c.QueueLen())
		}
	})
	s.Run(10)
	if c.QueueLen() != 0 {
		t.Errorf("QueueLen after drain = %d", c.QueueLen())
	}
	want := 3 * c.ServiceSeconds(1_000_000)
	if got := c.BusySeconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("BusySeconds = %v, want %v", got, want)
	}

	sn := NewSmartNIC("sn", s, SmartNICConfig{CapacityPps: 1000})
	sn.Install(flow(1))
	if sn.BacklogPackets() != 0 {
		t.Errorf("idle backlog = %d", sn.BacklogPackets())
	}
	_ = s.At(s.Now(), func() {
		sn.Offload(flow(1), nil)
		sn.Offload(flow(1), nil)
		if got := sn.BacklogPackets(); got != 2 {
			t.Errorf("smartnic backlog = %d, want 2", got)
		}
	})
	s.RunAll()
	if sn.BusySeconds() <= 0 {
		t.Error("smartnic busy seconds should accumulate")
	}

	f := NewFPGA("f", s, FPGAConfig{CapacityPps: 1000})
	_ = s.At(s.Now(), func() {
		f.Submit(nil)
		if got := f.BacklogPackets(); got != 1 {
			t.Errorf("fpga backlog = %d, want 1", got)
		}
	})
	s.RunAll()
	if f.BusySeconds() <= 0 {
		t.Error("fpga busy seconds should accumulate")
	}
}

func TestSojournTotal(t *testing.T) {
	so := Sojourn{WaitSeconds: 1, ServiceSeconds: 2, FixedSeconds: 3}
	if so.Total() != 6 {
		t.Errorf("Total = %v", so.Total())
	}
}

func TestZeroEndEnergy(t *testing.T) {
	s := sim.New()
	for _, d := range []Device{
		NewCore("c", s, CPUConfig{}), NewChassis("ch", 30, 1),
		NewNIC("n", 1e9, 5), NewSmartNIC("sn", s, SmartNICConfig{}),
		NewSwitch("sw", SwitchConfig{}), NewFPGA("f", s, FPGAConfig{}),
	} {
		if d.EnergyJoules(0) != 0 {
			t.Errorf("%s: energy at t=0 should be 0", d.Name())
		}
		if AveragePowerWatts(d, 0) != 0 {
			t.Errorf("%s: average power over empty window should be 0", d.Name())
		}
	}
}
