// Package chaos is a seeded fault-injection layer over the runner's
// cell execution and artifact IO. It exists to prove the executor's
// invariants rather than to be used in production sweeps: injected
// panics, stalls past the per-cell deadline, torn (short, non-atomic)
// artifact writes, and ENOSPC-style write failures are all derived
// deterministically from a seed and the (cell, attempt) or (path,
// write-count) being decided, so a failing schedule replays exactly.
// The invariant tests in this package assert that no injected schedule
// can lose or duplicate a cell, reuse a trial seed, or leave a
// crashed-then-resumed sweep different from an uninterrupted run.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"
	"time"

	"fairbench/internal/runner"
)

// ErrInjected marks every chaos-originated failure, so tests can
// configure runner retries with ShouldRetry = errors.Is(err,
// ErrInjected) semantics and distinguish injected faults from real
// bugs.
var ErrInjected = errors.New("chaos: injected fault")

// Spec configures the fault mix. Probabilities are per decision: per
// (cell, attempt) for execution faults, per (path, write) for IO
// faults. Zero values disable the corresponding fault.
type Spec struct {
	// Seed drives every injection decision.
	Seed uint64
	// PanicProb injects a panic at the start of a cell attempt.
	PanicProb float64
	// StallProb stalls a cell attempt for Stall before running it —
	// with a per-cell deadline shorter than Stall, this exercises the
	// deadline/abandonment path.
	StallProb float64
	// Stall is the injected stall duration (default 50ms).
	Stall time.Duration
	// TornWriteProb makes an artifact write land only a prefix of the
	// bytes, non-atomically, before failing — the on-disk state a crash
	// inside a naive writer would leave.
	TornWriteProb float64
	// ENOSPCProb fails an artifact write outright, as a full disk
	// would, leaving the previous file (if any) untouched.
	ENOSPCProb float64
}

// Injector derives deterministic fault decisions from a Spec.
type Injector struct {
	spec Spec

	mu     sync.Mutex
	writes map[string]int // per-path write counter for IO decisions
}

// New returns an injector for the spec.
func New(spec Spec) *Injector {
	if spec.Stall <= 0 {
		spec.Stall = 50 * time.Millisecond
	}
	return &Injector{spec: spec, writes: map[string]int{}}
}

// decide hashes (seed, kind, key, n) into [0, 1) and compares against
// prob. Purely functional: the same inputs always decide the same way.
func (in *Injector) decide(kind, key string, n int, prob float64) bool {
	if prob <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", in.spec.Seed, kind, key, n)
	// SplitMix64 finalizer over the hash for well-mixed high bits.
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < prob
}

// WrapCells layers execution faults over every cell: on a decided
// (cell, attempt), the wrapped Run panics or stalls before delegating
// to the real cell. Because decisions are attempt-sensitive, a cell
// that draws a panic on attempt 0 can succeed on a retry — exactly the
// transient-failure shape the retry machinery exists for.
func (in *Injector) WrapCells(cells []runner.Experiment) []runner.Experiment {
	out := make([]runner.Experiment, len(cells))
	for i, c := range cells {
		c := c
		out[i] = runner.Experiment{
			Name: c.Name,
			Run: func(attempt int) ([]runner.Artifact, error) {
				if in.decide("panic", c.Name, attempt, in.spec.PanicProb) {
					panic(fmt.Sprintf("%v: panic in %s attempt %d", ErrInjected, c.Name, attempt))
				}
				if in.decide("stall", c.Name, attempt, in.spec.StallProb) {
					time.Sleep(in.spec.Stall)
				}
				return c.Run(attempt)
			},
		}
	}
	return out
}

// ArtifactWriter returns a runner.Options.WriteArtifact hook that
// injects IO faults. Decisions are keyed by (path, nth write of that
// path), so a retried write can succeed where the first try was torn.
func (in *Injector) ArtifactWriter() func(path string, data []byte, perm os.FileMode) error {
	return func(path string, data []byte, perm os.FileMode) error {
		in.mu.Lock()
		n := in.writes[path]
		in.writes[path] = n + 1
		in.mu.Unlock()
		if in.decide("torn", path, n, in.spec.TornWriteProb) {
			// A torn write is what a crash inside a non-atomic writer
			// leaves: a prefix of the bytes at the real path. The runner
			// records the cell as failed, and a retry or resume must
			// overwrite this wreckage.
			if err := os.WriteFile(path, data[:len(data)/2], perm); err != nil {
				return err
			}
			return fmt.Errorf("%w: torn write of %s (%d of %d bytes)", ErrInjected, path, len(data)/2, len(data))
		}
		if in.decide("enospc", path, n, in.spec.ENOSPCProb) {
			return fmt.Errorf("%w: no space left on device writing %s", ErrInjected, path)
		}
		return runner.WriteFileAtomic(path, data, perm)
	}
}

// Retryable reports whether err carries an injected fault. Injected
// panics reach the runner flattened into the recovered error's text,
// so identity is checked both ways: errors.Is for wrapped IO faults
// and a substring match for panics.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrInjected) || strings.Contains(err.Error(), ErrInjected.Error())
}
