package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"fairbench/internal/runner"
)

// testCells builds n deterministic cells whose artifact bytes are pure
// functions of the cell name, with a dispatch log for the invariant
// checks.
type dispatchLog struct {
	mu    sync.Mutex
	calls map[string]int // "cell/attempt" -> count
}

func (d *dispatchLog) record(cell string, attempt int) {
	d.mu.Lock()
	d.calls[fmt.Sprintf("%s/%d", cell, attempt)]++
	d.mu.Unlock()
}

func cellBody(name string) []byte {
	return []byte(fmt.Sprintf("artifact of %s\nseeded payload %d\n", name, len(name)*131))
}

func testCells(n int, log *dispatchLog) []runner.Experiment {
	out := make([]runner.Experiment, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cell-%02d", i)
		out[i] = runner.Experiment{
			Name: name,
			Run: func(attempt int) ([]runner.Artifact, error) {
				if log != nil {
					log.record(name, attempt)
				}
				return []runner.Artifact{{Name: name + ".txt", Body: cellBody(name)}}, nil
			},
		}
	}
	return out
}

// readArtifacts returns name -> bytes for every artifact file in dir
// (journal and manifest excluded — the journal records completion
// order, and manifest Attempts legitimately differ after retries).
func readArtifacts(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == runner.JournalName || e.Name() == runner.ManifestName {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestInjectionIsDeterministic: the same spec decides the same faults —
// a failing chaos schedule replays exactly.
func TestInjectionIsDeterministic(t *testing.T) {
	a, b := New(Spec{Seed: 7, PanicProb: 0.5}), New(Spec{Seed: 7, PanicProb: 0.5})
	differs := false
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("cell-%d", i)
		da, db := a.decide("panic", key, 0, 0.5), b.decide("panic", key, 0, 0.5)
		if da != db {
			t.Fatalf("decision for %s differs between identical injectors", key)
		}
		if da != a.decide("panic", key, 1, 0.5) {
			differs = true // attempt-sensitivity observed
		}
	}
	if !differs {
		t.Error("decisions never vary with attempt; retries could not clear faults")
	}
	if New(Spec{Seed: 8, PanicProb: 0.5}).decide("panic", "cell-0", 0, 0.5) ==
		a.decide("panic", "cell-0", 0, 0.5) &&
		New(Spec{Seed: 8, PanicProb: 0.5}).decide("panic", "cell-1", 0, 0.5) ==
			a.decide("panic", "cell-1", 0, 0.5) &&
		New(Spec{Seed: 8, PanicProb: 0.5}).decide("panic", "cell-2", 0, 0.5) ==
			a.decide("panic", "cell-2", 0, 0.5) {
		t.Log("note: seeds 7 and 8 agree on first three cells (possible but unlikely)")
	}
}

// TestChaosInvariants is the headline suite: across a grid of chaos
// seeds mixing panics, stalls, torn writes and ENOSPC, every sweep
// must uphold the executor's invariants — no lost cells, no duplicated
// cells, no (cell, attempt) dispatched twice, and artifacts intact
// (correct bytes) exactly for the cells recorded ok.
func TestChaosInvariants(t *testing.T) {
	const cells = 14
	specs := []Spec{
		{PanicProb: 0.3},
		{TornWriteProb: 0.4},
		{ENOSPCProb: 0.4},
		{PanicProb: 0.2, TornWriteProb: 0.2, ENOSPCProb: 0.2},
	}
	for _, base := range specs {
		for seed := uint64(1); seed <= 5; seed++ {
			spec := base
			spec.Seed = seed
			name := fmt.Sprintf("panic%.1f_torn%.1f_enospc%.1f_seed%d",
				spec.PanicProb, spec.TornWriteProb, spec.ENOSPCProb, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				in := New(spec)
				log := &dispatchLog{calls: map[string]int{}}
				dir := t.TempDir()
				res, err := runner.Run(in.WrapCells(testCells(cells, log)), runner.Options{
					OutDir:        dir,
					Jobs:          4,
					Retries:       6,
					ShouldRetry:   Retryable,
					WriteArtifact: in.ArtifactWriter(),
					Fingerprint:   "chaos-fp",
				})
				if err != nil {
					t.Fatal(err)
				}

				// Invariant: exactly one record per cell — none lost, none
				// duplicated.
				if got := len(res.Manifest.Records); got != cells {
					t.Errorf("manifest has %d records, want %d", got, cells)
				}
				seen := map[string]int{}
				for _, rec := range res.Manifest.Records {
					seen[rec.Experiment]++
				}
				for cell, n := range seen {
					if n != 1 {
						t.Errorf("cell %s has %d records", cell, n)
					}
				}

				// Invariant: no (cell, attempt) dispatched twice within the
				// run — attempt numbers are the seed-derivation input, so a
				// double dispatch would be a reused trial seed.
				log.mu.Lock()
				for key, n := range log.calls {
					if n != 1 {
						t.Errorf("(cell, attempt) %s dispatched %d times", key, n)
					}
				}
				log.mu.Unlock()

				// Invariant: a cell recorded ok has its artifact with exactly
				// the right bytes, injected torn writes notwithstanding.
				for _, rec := range res.Manifest.Records {
					path := filepath.Join(dir, rec.Experiment+".txt")
					data, rerr := os.ReadFile(path)
					if rec.Status == runner.StatusOK {
						if rerr != nil {
							t.Errorf("ok cell %s has no artifact: %v", rec.Experiment, rerr)
						} else if string(data) != string(cellBody(rec.Experiment)) {
							t.Errorf("ok cell %s artifact corrupted (%d bytes)", rec.Experiment, len(data))
						}
					}
				}
			})
		}
	}
}

// TestChaosThenResumeConvergesToCleanBytes: run under heavy chaos
// (quarantines expected), then resume with chaos off — the artifact
// directory must converge to exactly the bytes of a never-faulted run.
func TestChaosThenResumeConvergesToCleanBytes(t *testing.T) {
	const cells = 12
	cleanDir := t.TempDir()
	if _, err := runner.Run(testCells(cells, nil), runner.Options{
		OutDir: cleanDir, Fingerprint: "fp",
	}); err != nil {
		t.Fatal(err)
	}
	want := readArtifacts(t, cleanDir)

	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			in := New(Spec{Seed: seed, PanicProb: 0.5, TornWriteProb: 0.5, ENOSPCProb: 0.3})
			// Retries: 1 keeps the chaos run genuinely lossy — many cells
			// exhaust their budget and are quarantined.
			res, err := runner.Run(in.WrapCells(testCells(cells, nil)), runner.Options{
				OutDir: dir, Jobs: 4, Retries: 1,
				ShouldRetry:   Retryable,
				WriteArtifact: in.ArtifactWriter(),
				Fingerprint:   "fp",
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("chaos run: ok=%d quarantined=%d failed=%d",
				res.Ran-res.Quarantined-res.Failed, res.Quarantined, res.Failed)

			// Resume without chaos: the executor re-runs exactly the cells
			// that did not complete, and the directory converges.
			res, err = runner.Run(testCells(cells, nil), runner.Options{
				OutDir: dir, Jobs: 4, Resume: true, Fingerprint: "fp",
			})
			if err != nil {
				t.Fatal(err)
			}
			if rerr := res.Err(); rerr != nil {
				t.Fatalf("resume did not converge: %v", rerr)
			}
			got := readArtifacts(t, dir)
			if len(got) != len(want) {
				t.Errorf("artifact count = %d, want %d", len(got), len(want))
			}
			var names []string
			for name := range want {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if got[name] != want[name] {
					t.Errorf("%s differs from clean run after chaos-then-resume", name)
				}
			}
			// The manifest must be all-ok after convergence.
			for _, rec := range res.Manifest.Records {
				if rec.Status != runner.StatusOK {
					t.Errorf("post-resume record %+v, want ok", rec)
				}
			}
		})
	}
}

// TestChaosStallTriggersDeadline: an injected stall longer than the
// per-cell deadline produces a deadline failure, and the sweep
// continues past it.
func TestChaosStallTriggersDeadline(t *testing.T) {
	in := New(Spec{Seed: 3, StallProb: 1, Stall: 2 * time.Second})
	res, err := runner.Run(in.WrapCells(testCells(3, nil)), runner.Options{
		OutDir:  t.TempDir(),
		Timeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 3 {
		t.Fatalf("stalled cells: failed = %d, want 3: %+v", res.Failed, res)
	}
	for _, rec := range res.Manifest.Records {
		if rec.Status != runner.StatusFailed {
			t.Errorf("record %+v, want deadline failure", rec)
		}
	}
}

// TestTornWriteLeavesNoHalfArtifactAfterRetry: a torn first write is
// retried; the surviving file must be the complete artifact, not the
// torn prefix.
func TestTornWriteLeavesNoHalfArtifactAfterRetry(t *testing.T) {
	dir := t.TempDir()
	// Probabilistic injection with per-(path, n) decisions: find a seed
	// whose first write of the artifact is torn and second is clean.
	var in *Injector
	for seed := uint64(1); ; seed++ {
		if seed > 10_000 {
			t.Fatal("no seed tears write 0 and passes write 1")
		}
		cand := New(Spec{Seed: seed, TornWriteProb: 0.5})
		path := filepath.Join(dir, "cell-00.txt")
		if cand.decide("torn", path, 0, 0.5) && !cand.decide("torn", path, 1, 0.5) {
			in = cand
			break
		}
	}
	res, err := runner.Run(testCells(1, nil), runner.Options{
		OutDir: dir, Retries: 3,
		ShouldRetry:   Retryable,
		WriteArtifact: in.ArtifactWriter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := res.Manifest.Lookup("cell-00")
	if rec.Status != runner.StatusOK || rec.Attempts != 2 {
		t.Fatalf("record = %+v, want ok on the retry", rec)
	}
	data, err := os.ReadFile(filepath.Join(dir, "cell-00.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(cellBody("cell-00")) {
		t.Errorf("artifact is the torn prefix (%d bytes), want the full body", len(data))
	}
}

// TestRetryableClassifiesInjectedFaults: both wrapped IO errors and
// flattened panic text are recognised; ordinary errors are not.
func TestRetryableClassifiesInjectedFaults(t *testing.T) {
	if !Retryable(fmt.Errorf("wrap: %w", ErrInjected)) {
		t.Error("wrapped ErrInjected not retryable")
	}
	if !Retryable(fmt.Errorf("runner: experiment panicked: %s: panic in c attempt 0", ErrInjected.Error())) {
		t.Error("flattened panic text not retryable")
	}
	if Retryable(fmt.Errorf("a real bug")) || Retryable(nil) {
		t.Error("non-injected errors must not be retryable")
	}
}
