package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the default manifest filename inside the output
// directory.
const ManifestName = "manifest.json"

// ErrFingerprint is returned when a resume attempt finds a manifest
// written under different options (seed, fidelity, trials): resuming
// would silently mix artifacts from two incompatible configurations.
var ErrFingerprint = errors.New("runner: manifest fingerprint mismatch")

// Status is the recorded outcome of one experiment.
type Status string

const (
	// StatusOK: the experiment completed and all artifacts were
	// written.
	StatusOK Status = "ok"
	// StatusFailed: the experiment errored, panicked or exceeded its
	// deadline; Error holds the cause.
	StatusFailed Status = "failed"
	// StatusQuarantined: every granted retry failed with a retryable
	// error. The sweep completed around the cell and reports it;
	// Resume re-runs it.
	StatusQuarantined Status = "quarantined"
)

// ArtifactRecord names one written artifact and its size.
type ArtifactRecord struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// Record is the journal/manifest entry of one experiment. WallMS is
// the cell's wall-clock duration across all attempts; it is journaled
// (so a resumed run can still say how long its completed cells took)
// but stripped before the record enters the manifest, which must stay
// byte-identical across runs and Jobs values.
type Record struct {
	Experiment string           `json:"experiment"`
	Status     Status           `json:"status"`
	Error      string           `json:"error,omitempty"`
	Attempts   int              `json:"attempts"`
	WallMS     float64          `json:"wall_ms,omitempty"`
	Artifacts  []ArtifactRecord `json:"artifacts,omitempty"`
}

// Manifest is the checkpoint a sweep maintains: one record per
// experiment, plus the options fingerprint that produced them. It is
// saved atomically after every experiment, so a killed sweep can be
// resumed from its last completed experiment.
type Manifest struct {
	Version     int      `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Records     []Record `json:"records"`
}

// manifestVersion guards the on-disk schema.
const manifestVersion = 1

// LoadManifest reads a manifest from path. A missing file returns an
// empty manifest and no error, so first runs and resumed runs share
// one code path.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("runner: load manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("runner: load manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("runner: manifest %s has version %d, want %d", path, m.Version, manifestVersion)
	}
	return m, nil
}

// Save writes the manifest atomically.
func (m Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: save manifest: %w", err)
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// Lookup returns the record for the named experiment, if present.
func (m Manifest) Lookup(experiment string) (Record, bool) {
	for _, r := range m.Records {
		if r.Experiment == experiment {
			return r, true
		}
	}
	return Record{}, false
}

// Upsert replaces the record for rec.Experiment or appends it.
func (m *Manifest) Upsert(rec Record) {
	for i, r := range m.Records {
		if r.Experiment == rec.Experiment {
			m.Records[i] = rec
			return
		}
	}
	m.Records = append(m.Records, rec)
}

// Failed returns the records with StatusFailed.
func (m Manifest) Failed() []Record {
	var out []Record
	for _, r := range m.Records {
		if r.Status == StatusFailed {
			out = append(out, r)
		}
	}
	return out
}

// Completed reports whether the named experiment finished OK and every
// artifact it recorded still exists (non-empty) under outDir. A
// deleted or truncated artifact makes the experiment incomplete, so a
// resumed sweep regenerates exactly the missing work.
func (m Manifest) Completed(experiment, outDir string) bool {
	rec, ok := m.Lookup(experiment)
	if !ok {
		return false
	}
	return completedRecord(rec, outDir)
}

// completedRecord reports whether a record represents a completed cell
// whose artifacts are all intact on disk.
func completedRecord(rec Record, outDir string) bool {
	if rec.Status != StatusOK {
		return false
	}
	for _, a := range rec.Artifacts {
		info, err := os.Stat(filepath.Join(outDir, a.Name))
		if err != nil || info.Size() != int64(a.Bytes) {
			return false
		}
	}
	return true
}
