package runner

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPanic wraps a panic recovered from an experiment.
var ErrPanic = errors.New("runner: experiment panicked")

// ErrDeadline wraps a per-experiment wall-clock deadline overrun.
var ErrDeadline = errors.New("runner: experiment deadline exceeded")

// ErrRunDeadline is recorded for cells the whole-run deadline cut off:
// cells still queued when it fired, and cells whose retry backoff it
// interrupted.
var ErrRunDeadline = errors.New("runner: run deadline exceeded")

// Artifact is one named output file of an experiment.
type Artifact struct {
	Name string
	Body []byte
}

// Experiment is one cell of a sweep. Run receives the attempt number
// (0 on the first try, incremented on each retry) so it can derive a
// fresh seed when a measurement comes back non-finite. Cells scheduled
// in the same sweep may run concurrently (Options.Jobs), so Run must
// not share mutable state with other cells.
type Experiment struct {
	Name string
	Run  func(attempt int) ([]Artifact, error)
}

// Options configures a sweep.
type Options struct {
	// OutDir receives the artifacts, the journal and the manifest.
	OutDir string
	// Jobs is the worker-pool width: how many cells run concurrently.
	// Values <= 1 run the sweep serially. Jobs never changes the merged
	// output — results are merged in cell order, so a sweep is
	// byte-identical at any Jobs value — and it is deliberately excluded
	// from resume fingerprints. Use NormalizeJobs to map a user-facing
	// flag value onto a sane pool width.
	Jobs int
	// Timeout is the per-experiment wall-clock deadline (0 = none).
	Timeout time.Duration
	// RunTimeout is the whole-run wall-clock deadline (0 = none). When
	// it fires, in-flight cells finish (bounded by Timeout) but queued
	// cells are recorded as unfinished; a later Resume picks them up.
	RunTimeout time.Duration
	// Retries is the number of extra attempts granted when ShouldRetry
	// approves the error.
	Retries int
	// ShouldRetry decides whether an error is transient (e.g. a
	// non-finite measurement that a fresh seed may fix). Nil disables
	// retries.
	ShouldRetry func(error) bool
	// Backoff spaces retries with capped exponential, deterministically
	// jittered delays. The zero value retries immediately.
	Backoff BackoffConfig
	// Resume skips experiments the journal (or, for output directories
	// predating the journal, the manifest) records as completed with all
	// artifacts intact on disk.
	Resume bool
	// Fingerprint identifies the option set producing the artifacts;
	// Resume refuses to mix fingerprints. By contract it must not
	// encode Jobs: a serial run may be resumed in parallel and vice
	// versa.
	Fingerprint string
	// Log receives one line per experiment (nil discards).
	Log io.Writer
	// Observer receives wall-clock state transitions (cell start,
	// attempt errors, retry waits, finish, resume skips, run-deadline
	// cutoffs, pool shrinks) for telemetry. Nil means no observation;
	// an Observer never changes execution or output bytes.
	Observer Observer
	// ShrinkAfter retires one pool worker after this many consecutive
	// panicking cells (0 = default of 3). A run of panics usually means
	// a systemic resource problem that more parallelism makes worse;
	// the pool shrinks gracefully down to one worker and the sweep
	// still completes.
	ShrinkAfter int
	// WriteArtifact overrides artifact IO (nil = WriteFileAtomic). The
	// chaos harness injects torn writes and ENOSPC here.
	WriteArtifact func(path string, data []byte, perm os.FileMode) error
}

// Result summarises a sweep.
type Result struct {
	Manifest Manifest
	// Ran counts cells executed this run; Skipped counts cells Resume
	// found already complete.
	Ran, Skipped int
	// Failed counts cells with a non-retryable error; Quarantined
	// counts cells that failed every granted retry; Unfinished counts
	// cells the run deadline cut off before they started.
	Failed, Quarantined, Unfinished int
	ArtifactsWritten                int
	// WorkersShrunk counts pool workers retired by repeated panics.
	WorkersShrunk int
	// CellWalls records the wall-clock duration of every completed
	// cell, including cells a resumed run skipped (their durations come
	// from the journal). Durations are operator-facing only: they are
	// stripped from the manifest so its bytes stay identical across
	// runs and Jobs values.
	CellWalls              []CellWall
	ManifestPath           string
	JournalPath            string
	FailedExperiments      []string
	QuarantinedExperiments []string
	UnfinishedExperiments  []string
}

// Err returns a non-nil error when any experiment failed, was
// quarantined, or was cut off by the run deadline — after the whole
// sweep has run; callers decide whether that is fatal.
func (r Result) Err() error {
	if r.Failed == 0 && r.Quarantined == 0 && r.Unfinished == 0 {
		return nil
	}
	total := r.Ran + r.Skipped + r.Unfinished
	var parts []string
	if r.Failed > 0 {
		parts = append(parts, fmt.Sprintf("%d failed %v", r.Failed, r.FailedExperiments))
	}
	if r.Quarantined > 0 {
		parts = append(parts, fmt.Sprintf("%d quarantined %v", r.Quarantined, r.QuarantinedExperiments))
	}
	if r.Unfinished > 0 {
		parts = append(parts, fmt.Sprintf("%d unfinished %v", r.Unfinished, r.UnfinishedExperiments))
	}
	out := fmt.Sprintf("runner: of %d experiments: %s", total, parts[0])
	for _, p := range parts[1:] {
		out += "; " + p
	}
	return errors.New(out)
}

// Run executes the sweep. Independent cells fan out across a bounded
// worker pool (Options.Jobs); every cell runs inside panic isolation
// and (when configured) a wall-clock deadline, and a failure is
// recorded instead of aborting the sweep. Each completed cell is
// appended to an fsync'd JSONL journal, so a killed sweep loses at
// most the cells it was inside — never a written artifact and never a
// journaled record. After all cells finish, records are merged in the
// input cell order into the manifest, which makes the merged outputs
// byte-identical to a serial run at any Jobs value.
func Run(experiments []Experiment, o Options) (Result, error) {
	if o.OutDir == "" {
		return Result{}, fmt.Errorf("runner: no output directory")
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return Result{}, err
	}
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if o.Log != nil {
			logMu.Lock()
			fmt.Fprintf(o.Log, format+"\n", args...)
			logMu.Unlock()
		}
	}
	if o.Observer == nil {
		o.Observer = NopObserver{}
	}

	manifestPath := filepath.Join(o.OutDir, ManifestName)
	journalPath := filepath.Join(o.OutDir, JournalName)
	res := Result{ManifestPath: manifestPath, JournalPath: journalPath}

	prior, err := loadPrior(journalPath, manifestPath, o)
	if err != nil {
		return Result{}, err
	}

	// Partition cells into resume-skips and pending work, preserving
	// the canonical input order.
	skipped := map[string]bool{}
	var pending []Experiment
	for _, exp := range experiments {
		if o.Resume && completedRecord(prior[exp.Name], o.OutDir) {
			skipped[exp.Name] = true
			res.Skipped++
			o.Observer.CellResumeSkip(exp.Name)
			logf("skip %s (resume: complete)", exp.Name)
			continue
		}
		pending = append(pending, exp)
	}

	// The journal is rewritten atomically at the start of every run:
	// header plus every record kept from a resumed run, then one
	// appended record per completed cell.
	var kept []Record
	for _, exp := range experiments {
		if skipped[exp.Name] {
			kept = append(kept, prior[exp.Name])
		}
	}
	j, err := startJournal(journalPath, o.Fingerprint, kept)
	if err != nil {
		return res, err
	}
	defer j.Close()

	results := runPool(pending, o, j, logf, &res)

	// Merge in canonical cell order: the manifest (and therefore the
	// full artifact directory) is byte-identical at any Jobs value.
	manifest := Manifest{Version: manifestVersion, Fingerprint: o.Fingerprint}
	// Wall durations are collected for the operator summary and then
	// stripped from the records entering the manifest: the manifest is
	// a determinism surface (byte-identical at any Jobs value, across
	// runs and machines), and wall time is not.
	ri := 0
	for _, exp := range experiments {
		var rec Record
		if skipped[exp.Name] {
			rec = prior[exp.Name]
		} else {
			r := results[ri]
			ri++
			if r == nil { // run deadline cut this cell off before it started
				res.Unfinished++
				res.UnfinishedExperiments = append(res.UnfinishedExperiments, exp.Name)
				continue
			}
			rec = *r
			res.Ran++
			switch rec.Status {
			case StatusFailed:
				res.Failed++
				res.FailedExperiments = append(res.FailedExperiments, exp.Name)
			case StatusQuarantined:
				res.Quarantined++
				res.QuarantinedExperiments = append(res.QuarantinedExperiments, exp.Name)
			default:
				res.ArtifactsWritten += len(rec.Artifacts)
			}
		}
		if rec.WallMS > 0 {
			res.CellWalls = append(res.CellWalls, CellWall{Experiment: rec.Experiment, WallMS: rec.WallMS})
			rec.WallMS = 0
		}
		manifest.Upsert(rec)
	}
	if err := manifest.Save(manifestPath); err != nil {
		return res, err
	}
	res.Manifest = manifest
	return res, nil
}

// loadPrior returns the latest record per cell from the journal, or —
// for output directories predating the journal — from the manifest,
// enforcing the fingerprint contract either way.
func loadPrior(journalPath, manifestPath string, o Options) (map[string]Record, error) {
	prior := map[string]Record{}
	if !o.Resume {
		return prior, nil
	}
	fp, recs, found, err := LoadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	if !found {
		m, err := LoadManifest(manifestPath)
		if err != nil {
			return nil, err
		}
		fp, recs = m.Fingerprint, m.Records
	}
	if len(recs) > 0 && fp != o.Fingerprint {
		return nil, fmt.Errorf("%w: journal has %q, options give %q (rerun without -resume or with matching flags)",
			ErrFingerprint, fp, o.Fingerprint)
	}
	for _, r := range recs {
		prior[r.Experiment] = r
	}
	return prior, nil
}

// runPool fans the pending cells across the worker pool and returns
// one record per cell, indexed like pending (nil = never started).
func runPool(pending []Experiment, o Options, j *journal, logf func(string, ...any), res *Result) []*Record {
	results := make([]*Record, len(pending))
	if len(pending) == 0 {
		return results
	}
	jobs := o.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(pending) {
		jobs = len(pending)
	}
	shrinkAfter := o.ShrinkAfter
	if shrinkAfter <= 0 {
		shrinkAfter = 3
	}
	var deadline time.Time
	if o.RunTimeout > 0 {
		deadline = time.Now().Add(o.RunTimeout)
	}

	var next int64
	var poolMu sync.Mutex
	workers := jobs
	panicStreak := 0
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(pending) {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					// Leave the cell unstarted (results[i] stays nil) so a
					// later Resume runs exactly the missing work.
					o.Observer.CellCutoff(pending[i].Name)
					logf("SKIP %s: %v", pending[i].Name, ErrRunDeadline)
					continue
				}
				rec, runErr := runCell(pending[i], o, deadline, worker)
				results[i] = &rec
				if err := j.Append(rec); err != nil {
					logf("journal: %v", err)
				}
				switch rec.Status {
				case StatusOK:
					for _, a := range rec.Artifacts {
						logf("wrote %s (%d bytes)", filepath.Join(o.OutDir, a.Name), a.Bytes)
					}
				case StatusQuarantined:
					logf("QUARANTINE %s after %d attempts: %s", rec.Experiment, rec.Attempts, rec.Error)
				default:
					logf("FAIL %s: %s", rec.Experiment, rec.Error)
				}

				// Graceful pool shrink: a streak of panicking cells
				// retires workers (down to one) instead of hammering a
				// sick machine with full parallelism.
				poolMu.Lock()
				if errors.Is(runErr, ErrPanic) {
					panicStreak++
					if panicStreak >= shrinkAfter && workers > 1 {
						workers--
						panicStreak = 0
						res.WorkersShrunk++ // res is only read after wg.Wait
						remaining := workers
						poolMu.Unlock()
						o.Observer.PoolShrink(remaining)
						logf("pool: retiring a worker after repeated panics (%d remain)", remaining)
						return
					}
				} else if rec.Status == StatusOK {
					panicStreak = 0
				}
				poolMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return results
}

// runCell executes one cell: retries with backoff, panic isolation,
// the per-cell deadline, and atomic artifact writes. The returned
// error is the cell's final error (nil on success) — the record is
// what lands in the journal, wall duration included (the journal logs
// completion order and is not a determinism surface; the manifest
// strips the duration).
func runCell(exp Experiment, o Options, deadline time.Time, worker int) (Record, error) {
	writeArtifact := o.WriteArtifact
	if writeArtifact == nil {
		writeArtifact = WriteFileAtomic
	}
	start := time.Now()
	rec := Record{Experiment: exp.Name, Status: StatusOK}
	finish := func(err error) (Record, error) {
		rec.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		o.Observer.CellFinish(exp.Name, worker, rec)
		return rec, err
	}
	for attempt := 0; ; attempt++ {
		rec.Attempts = attempt + 1
		o.Observer.CellStart(exp.Name, worker, attempt)
		artifacts, err := callGuarded(exp, attempt, o.Timeout)
		if err == nil {
			// Artifact IO is part of the attempt: a torn write or ENOSPC
			// is retried like a poisoned measurement, and every write is
			// atomic, so a retried cell simply re-lands its files.
			var arecs []ArtifactRecord
			for _, a := range artifacts {
				if werr := writeArtifact(filepath.Join(o.OutDir, a.Name), a.Body, 0o644); werr != nil {
					err = werr
					break
				}
				arecs = append(arecs, ArtifactRecord{Name: a.Name, Bytes: len(a.Body)})
			}
			if err == nil {
				rec.Artifacts = arecs
				return finish(nil)
			}
		}
		o.Observer.CellAttemptError(exp.Name, worker, attempt, err)
		retryable := o.ShouldRetry != nil && o.ShouldRetry(err) && !errors.Is(err, ErrDeadline)
		if !retryable {
			rec.Status, rec.Error = StatusFailed, err.Error()
			return finish(err)
		}
		if attempt >= o.Retries {
			// Retry budget exhausted on a retryable error: quarantine the
			// cell so the sweep completes and reports it. With no budget
			// configured there is nothing to exhaust — plain failure.
			if o.Retries > 0 {
				rec.Status, rec.Error = StatusQuarantined, err.Error()
			} else {
				rec.Status, rec.Error = StatusFailed, err.Error()
			}
			return finish(err)
		}
		wait := o.Backoff.delay(exp.Name, attempt)
		o.Observer.CellRetryWait(exp.Name, worker, attempt, wait)
		if !sleepBackoff(wait, deadline) {
			rec.Status = StatusFailed
			rec.Error = fmt.Sprintf("%v during retry backoff (last error: %v)", ErrRunDeadline, err)
			return finish(ErrRunDeadline)
		}
	}
}

// sleepBackoff waits d, bounded by the run deadline. It reports false
// when the deadline fired first.
func sleepBackoff(d time.Duration, deadline time.Time) bool {
	if d <= 0 {
		return true
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= d {
			if remaining > 0 {
				time.Sleep(remaining)
			}
			return false
		}
	}
	time.Sleep(d)
	return true
}

// callGuarded invokes the experiment with panic recovery and, when
// timeout > 0, a wall-clock deadline. On deadline overrun the worker
// goroutine is abandoned (the simulation is CPU-bound and has no
// cancellation point); its eventual result is discarded.
func callGuarded(exp Experiment, attempt int, timeout time.Duration) (artifacts []Artifact, err error) {
	type outcome struct {
		artifacts []Artifact
		err       error
	}
	run := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out = outcome{err: fmt.Errorf("%w: %v\n%s", ErrPanic, r, debug.Stack())}
			}
		}()
		a, e := exp.Run(attempt)
		return outcome{artifacts: a, err: e}
	}
	if timeout <= 0 {
		out := run()
		return out.artifacts, out.err
	}
	ch := make(chan outcome, 1)
	go func() { ch <- run() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.artifacts, out.err
	case <-timer.C:
		return nil, fmt.Errorf("%w: %q exceeded %v", ErrDeadline, exp.Name, timeout)
	}
}
