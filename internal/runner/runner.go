package runner

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// ErrPanic wraps a panic recovered from an experiment.
var ErrPanic = errors.New("runner: experiment panicked")

// ErrDeadline wraps a per-experiment wall-clock deadline overrun.
var ErrDeadline = errors.New("runner: experiment deadline exceeded")

// Artifact is one named output file of an experiment.
type Artifact struct {
	Name string
	Body []byte
}

// Experiment is one unit of a sweep. Run receives the attempt number
// (0 on the first try, incremented on each retry) so it can derive a
// fresh seed when a measurement comes back non-finite.
type Experiment struct {
	Name string
	Run  func(attempt int) ([]Artifact, error)
}

// Options configures a sweep.
type Options struct {
	// OutDir receives the artifacts and the manifest.
	OutDir string
	// Timeout is the per-experiment wall-clock deadline (0 = none).
	Timeout time.Duration
	// Retries is the number of extra attempts granted when ShouldRetry
	// approves the error.
	Retries int
	// ShouldRetry decides whether an error is transient (e.g. a
	// non-finite measurement that a fresh seed may fix). Nil disables
	// retries.
	ShouldRetry func(error) bool
	// Resume skips experiments the manifest records as completed with
	// all artifacts intact on disk.
	Resume bool
	// Fingerprint identifies the option set producing the artifacts;
	// Resume refuses to mix fingerprints.
	Fingerprint string
	// Log receives one line per experiment (nil discards).
	Log io.Writer
}

// Result summarises a sweep.
type Result struct {
	Manifest          Manifest
	Ran, Skipped      int
	Failed            int
	ArtifactsWritten  int
	ManifestPath      string
	FailedExperiments []string
}

// Err returns a non-nil error when any experiment failed, after the
// whole sweep has run — callers decide whether that is fatal.
func (r Result) Err() error {
	if r.Failed == 0 {
		return nil
	}
	return fmt.Errorf("runner: %d of %d experiments failed: %v",
		r.Failed, r.Ran+r.Skipped, r.FailedExperiments)
}

// Run executes the sweep. Every experiment runs inside panic isolation
// and (when configured) a wall-clock deadline; a failure is recorded
// in the manifest and the sweep continues. The manifest is saved
// atomically after every experiment, so a killed sweep loses at most
// the experiment it was inside — never a written artifact.
func Run(experiments []Experiment, o Options) (Result, error) {
	if o.OutDir == "" {
		return Result{}, fmt.Errorf("runner: no output directory")
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return Result{}, err
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}

	manifestPath := filepath.Join(o.OutDir, ManifestName)
	manifest := Manifest{Version: manifestVersion, Fingerprint: o.Fingerprint}
	if o.Resume {
		prev, err := LoadManifest(manifestPath)
		if err != nil {
			return Result{}, err
		}
		if len(prev.Records) > 0 && prev.Fingerprint != o.Fingerprint {
			return Result{}, fmt.Errorf("%w: manifest has %q, options give %q (rerun without -resume or with matching flags)",
				ErrFingerprint, prev.Fingerprint, o.Fingerprint)
		}
		manifest = prev
		manifest.Fingerprint = o.Fingerprint
	}

	res := Result{ManifestPath: manifestPath}
	for _, exp := range experiments {
		if o.Resume && manifest.Completed(exp.Name, o.OutDir) {
			res.Skipped++
			logf("skip %s (resume: complete)", exp.Name)
			continue
		}
		rec := runOne(exp, o)
		if rec.Status == StatusFailed {
			res.Failed++
			res.FailedExperiments = append(res.FailedExperiments, exp.Name)
			logf("FAIL %s: %s", exp.Name, rec.Error)
		} else {
			for _, a := range rec.Artifacts {
				res.ArtifactsWritten++
				logf("wrote %s (%d bytes)", filepath.Join(o.OutDir, a.Name), a.Bytes)
			}
		}
		res.Ran++
		manifest.Upsert(rec)
		// Checkpoint after every experiment so a kill -9 between
		// experiments loses nothing.
		if err := manifest.Save(manifestPath); err != nil {
			return res, err
		}
	}
	res.Manifest = manifest
	return res, nil
}

// runOne executes one experiment with retries, panic isolation and the
// deadline, then writes its artifacts atomically.
func runOne(exp Experiment, o Options) Record {
	rec := Record{Experiment: exp.Name, Status: StatusOK}
	var artifacts []Artifact
	var err error
	for attempt := 0; ; attempt++ {
		rec.Attempts = attempt + 1
		artifacts, err = callGuarded(exp, attempt, o.Timeout)
		if err == nil {
			break
		}
		retryable := o.ShouldRetry != nil && o.ShouldRetry(err) && !errors.Is(err, ErrDeadline)
		if attempt >= o.Retries || !retryable {
			rec.Status = StatusFailed
			rec.Error = err.Error()
			return rec
		}
	}
	for _, a := range artifacts {
		if werr := WriteFileAtomic(filepath.Join(o.OutDir, a.Name), a.Body, 0o644); werr != nil {
			rec.Status = StatusFailed
			rec.Error = werr.Error()
			return rec
		}
		rec.Artifacts = append(rec.Artifacts, ArtifactRecord{Name: a.Name, Bytes: len(a.Body)})
	}
	return rec
}

// callGuarded invokes the experiment with panic recovery and, when
// timeout > 0, a wall-clock deadline. On deadline overrun the worker
// goroutine is abandoned (the simulation is CPU-bound and has no
// cancellation point); its eventual result is discarded.
func callGuarded(exp Experiment, attempt int, timeout time.Duration) (artifacts []Artifact, err error) {
	type outcome struct {
		artifacts []Artifact
		err       error
	}
	run := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out = outcome{err: fmt.Errorf("%w: %v\n%s", ErrPanic, r, debug.Stack())}
			}
		}()
		a, e := exp.Run(attempt)
		return outcome{artifacts: a, err: e}
	}
	if timeout <= 0 {
		out := run()
		return out.artifacts, out.err
	}
	ch := make(chan outcome, 1)
	go func() { ch <- run() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.artifacts, out.err
	case <-timer.C:
		return nil, fmt.Errorf("%w: %q exceeded %v", ErrDeadline, exp.Name, timeout)
	}
}
