package runner

import "time"

// Observer receives wall-clock state transitions from the worker pool.
// It is the instrumentation seam between the executor and the
// telemetry layer (internal/telemetry): the runner stays free of any
// knowledge of telemetry files, and telemetry stays out of the
// execution path — a nil Observer costs nothing.
//
// Threading contract: cell-scoped callbacks are invoked from pool
// worker goroutines, possibly concurrently for different cells;
// callbacks for one cell are sequential (a cell runs all its attempts
// on one worker). CellResumeSkip fires before the pool starts, on the
// caller's goroutine. Implementations must be safe for concurrent use
// and must not block — the pool does real work between callbacks.
//
// None of the callbacks may influence execution: the Observer is a
// read-only tap, which is what keeps the artifact bytes identical with
// and without one attached.
type Observer interface {
	// CellStart fires when a worker begins an attempt of a cell
	// (attempt 0 on the first try, incremented per retry).
	CellStart(cell string, worker, attempt int)
	// CellAttemptError fires when an attempt fails, before the retry
	// decision. The error may wrap ErrPanic or ErrDeadline.
	CellAttemptError(cell string, worker, attempt int, err error)
	// CellRetryWait fires before the backoff sleep separating a failed
	// attempt from the next one.
	CellRetryWait(cell string, worker, attempt int, wait time.Duration)
	// CellFinish fires when a cell reaches a terminal state; rec
	// carries the final status, attempt count and wall duration.
	CellFinish(cell string, worker int, rec Record)
	// CellResumeSkip fires for a cell Resume found already complete.
	CellResumeSkip(cell string)
	// CellCutoff fires for a cell the whole-run deadline left
	// unstarted (it stays resumable).
	CellCutoff(cell string)
	// PoolShrink fires when repeated panics retire a worker; remaining
	// is the new pool width.
	PoolShrink(remaining int)
}

// NopObserver is an Observer that ignores every callback; the runner
// substitutes it for a nil Options.Observer.
type NopObserver struct{}

func (NopObserver) CellStart(string, int, int)                    {}
func (NopObserver) CellAttemptError(string, int, int, error)      {}
func (NopObserver) CellRetryWait(string, int, int, time.Duration) {}
func (NopObserver) CellFinish(string, int, Record)                {}
func (NopObserver) CellResumeSkip(string)                         {}
func (NopObserver) CellCutoff(string)                             {}
func (NopObserver) PoolShrink(int)                                {}

// CellWall pairs a cell with its recorded wall-clock duration, for
// operator-facing summaries. Wall durations live in the journal (a
// completion-order log outside the determinism surface) and in these
// summaries — never in the manifest, whose bytes must not vary run to
// run.
type CellWall struct {
	Experiment string
	WallMS     float64
}

// SlowestCells returns up to n cells sorted by descending wall
// duration (ties broken by name for a stable order). Cells with no
// recorded duration (pre-journal manifests) are omitted.
func (r Result) SlowestCells(n int) []CellWall {
	walls := append([]CellWall(nil), r.CellWalls...)
	for i := 1; i < len(walls); i++ {
		for j := i; j > 0; j-- {
			a, b := walls[j-1], walls[j]
			if a.WallMS > b.WallMS || (a.WallMS == b.WallMS && a.Experiment <= b.Experiment) {
				break
			}
			walls[j-1], walls[j] = b, a
		}
	}
	if n < len(walls) {
		walls = walls[:n]
	}
	return walls
}
