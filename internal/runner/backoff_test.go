package runner

import (
	"testing"
	"time"
)

func TestBackoffZeroBaseIsImmediate(t *testing.T) {
	var c BackoffConfig
	for attempt := 0; attempt < 5; attempt++ {
		if d := c.delay("cell", attempt); d != 0 {
			t.Errorf("zero config delay(attempt %d) = %v, want 0", attempt, d)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := BackoffConfig{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond}
	// Jitter is +/-25%, so bound each attempt's delay rather than pin it.
	within := func(d, nominal time.Duration) bool {
		return d >= nominal*3/4 && d < nominal*5/4
	}
	if d := c.delay("cell", 0); !within(d, 100*time.Millisecond) {
		t.Errorf("attempt 0 delay = %v, want ~100ms", d)
	}
	if d := c.delay("cell", 1); !within(d, 200*time.Millisecond) {
		t.Errorf("attempt 1 delay = %v, want ~200ms", d)
	}
	for attempt := 2; attempt < 10; attempt++ {
		if d := c.delay("cell", attempt); !within(d, 400*time.Millisecond) {
			t.Errorf("attempt %d delay = %v, want capped ~400ms", attempt, d)
		}
	}
}

func TestBackoffDefaultCap(t *testing.T) {
	c := BackoffConfig{Base: 10 * time.Millisecond}
	if d := c.delay("cell", 30); d >= 16*10*time.Millisecond*5/4 {
		t.Errorf("uncapped config delay(30) = %v, want <= 16*Base + jitter", d)
	}
}

func TestBackoffIsDeterministicAndDecorrelated(t *testing.T) {
	c := BackoffConfig{Base: 50 * time.Millisecond}
	// Deterministic: same (cell, attempt) always yields the same delay.
	if a, b := c.delay("x", 1), c.delay("x", 1); a != b {
		t.Errorf("delay is not deterministic: %v != %v", a, b)
	}
	// Decorrelated: different cells on the same attempt should not all
	// land on the same instant (some pair must differ).
	cells := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	same := true
	first := c.delay(cells[0], 0)
	for _, cell := range cells[1:] {
		if c.delay(cell, 0) != first {
			same = false
			break
		}
	}
	if same {
		t.Error("jitter does not decorrelate cells: all delays identical")
	}
}
