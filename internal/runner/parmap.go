package runner

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Map runs fn(0), ..., fn(n-1) on up to jobs concurrent workers and
// returns the results in index order, so output never depends on
// scheduling. Each call is panic-isolated (a panic surfaces as an
// error wrapping ErrPanic). On failure Map returns the error of the
// lowest failing index — the same error a serial run would return —
// though a parallel run may have evaluated later indices a serial run
// would have skipped.
//
// Map is how the deterministic experiment drivers parallelize
// replicate trials without owning any concurrency themselves: fairlint
// confines goroutines to internal/runner, and the per-trial seeds are
// pure functions of (base seed, trial index), so trial results are
// independent of both worker count and completion order.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			v, err := mapCall(i, fn)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = mapCall(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mapCall invokes fn(i) with panic isolation.
func mapCall[T any](i int, fn func(i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, fmt.Errorf("%w: index %d: %v\n%s", ErrPanic, i, r, debug.Stack())
		}
	}()
	return fn(i)
}
