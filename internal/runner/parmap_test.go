package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderIndependentOfJobs(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("v%02d", i), nil }
	want, err := Map(1, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 16, 100} {
		got, err := Map(jobs, 20, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("jobs=%d: out[%d] = %q, want %q", jobs, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndSerial(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("n=0: out=%v err=%v, want nil, nil", out, err)
	}
	// Serial path fails fast: later indices are never evaluated.
	var calls int32
	boom := errors.New("boom")
	_, err = Map(1, 10, func(i int) (int, error) {
		atomic.AddInt32(&calls, 1)
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Errorf("serial Map made %d calls after failure at index 2, want 3", calls)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// Every odd index fails; the error reported must be index 1's —
	// the same error a serial run would return.
	_, err := Map(8, 16, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("failure at index %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "failure at index 1" {
		t.Errorf("err = %v, want the lowest failing index's error, unwrapped", err)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	_, err := Map(4, 8, func(i int) (int, error) {
		if i == 3 {
			panic("kaboom")
		}
		return i, nil
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "index 3") {
		t.Errorf("panic error should carry the value and index: %v", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, maxSeen int32
	_, err := Map(3, 50, func(i int) (int, error) {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			m := atomic.LoadInt32(&maxSeen)
			if n <= m || atomic.CompareAndSwapInt32(&maxSeen, m, n) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen > 3 {
		t.Errorf("max in-flight = %d, want <= jobs=3", maxSeen)
	}
}
