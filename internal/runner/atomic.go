// Package runner is the fault-tolerant parallel executor for sweeps of
// artifact-producing experiment cells. It hardens long runs against
// the ways they die — a panicking cell is isolated and recorded
// instead of aborting the sweep, per-cell and whole-run wall-clock
// deadlines bound execution, transient failures are retried with
// capped-exponential backoff and a fresh attempt number (so the caller
// derives a fresh, non-aliasing seed), cells that exhaust their
// retries are quarantined rather than fatal, and a pool that keeps
// hitting panics shrinks gracefully — while keeping the output
// deterministic: cells fan out across a bounded worker pool, but
// results are merged in canonical cell order, every artifact write is
// atomic (temp file + rename — a killed run never leaves a truncated
// SVG or CSV), and completed cells land in an append-only fsync'd
// JSONL journal that lets Resume replay exactly the missing work. The
// merged output directory is byte-identical at any Jobs value, and a
// crashed-then-resumed sweep converges to the same bytes as an
// uninterrupted one; internal/runner/chaos proves both under injected
// faults.
//
// This is also the one package fairlint permits concurrency in: the
// deterministic simulation kernel stays single-threaded, and the
// experiment drivers parallelize replicate trials through Map instead
// of owning goroutines.
package runner

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a same-directory temp file which is
// fsynced and then renamed over the target. On any error the temp file
// is removed and the previous target (if any) is left untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	return nil
}
