// Package runner hardens a sweep of artifact-producing experiments
// against the ways long runs die: a panicking experiment is isolated
// and recorded instead of aborting the sweep, a wall-clock deadline
// bounds each experiment, transient measurement failures are retried
// with a fresh attempt number (so the caller can derive a new seed),
// every artifact write is atomic (temp file + rename — a killed run
// never leaves a truncated SVG or CSV), and a checkpointed manifest
// lets a re-run with Resume skip experiments whose artifacts already
// exist intact.
package runner

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a same-directory temp file which is
// fsynced and then renamed over the target. On any error the temp file
// is removed and the previous target (if any) is left untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	return nil
}
