package runner

import "runtime"

// NormalizeJobs maps a user-facing -jobs flag value onto a sane worker
// pool width: zero or negative means "use every core", and absurd
// values are capped at 8x the core count (beyond that the pool only
// adds scheduler pressure — the cells are CPU-bound simulations).
// Jobs is an execution knob, never a determinism input: it must stay
// out of resume fingerprints so a serial run can be resumed in
// parallel and vice versa.
func NormalizeJobs(jobs int) int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	if jobs <= 0 {
		return n
	}
	if max := 8 * n; jobs > max {
		return max
	}
	return jobs
}
