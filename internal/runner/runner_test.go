package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func okExperiment(name string, body string) Experiment {
	return Experiment{
		Name: name,
		Run: func(int) ([]Artifact, error) {
			return []Artifact{{Name: name + ".txt", Body: []byte(body)}}, nil
		},
	}
}

func TestSweepContinuesPastPanic(t *testing.T) {
	dir := t.TempDir()
	exps := []Experiment{
		okExperiment("alpha", "alpha body"),
		{Name: "boom", Run: func(int) ([]Artifact, error) { panic("injected panic") }},
		okExperiment("omega", "omega body"),
	}
	res, err := Run(exps, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 3 || res.Failed != 1 {
		t.Fatalf("ran/failed = %d/%d, want 3/1", res.Ran, res.Failed)
	}
	// The panicking experiment is a failure record, not an abort: the
	// later experiment still produced its artifact.
	for _, name := range []string{"alpha.txt", "omega.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing after mid-sweep panic: %v", name, err)
		}
	}
	rec, ok := res.Manifest.Lookup("boom")
	if !ok || rec.Status != StatusFailed {
		t.Fatalf("boom record = %+v, want failed", rec)
	}
	if !strings.Contains(rec.Error, "injected panic") {
		t.Errorf("failure record should carry the panic value: %q", rec.Error)
	}
	if res.Err() == nil {
		t.Error("Result.Err should report the failure")
	}
	// The failure is surfaced in the on-disk manifest too.
	m, err := LoadManifest(res.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if failed := m.Failed(); len(failed) != 1 || failed[0].Experiment != "boom" {
		t.Errorf("manifest failed records = %+v", failed)
	}
}

func TestDeadlineExceededRecordsFailure(t *testing.T) {
	dir := t.TempDir()
	exps := []Experiment{
		{Name: "stuck", Run: func(int) ([]Artifact, error) {
			time.Sleep(5 * time.Second)
			return nil, nil
		}},
		okExperiment("after", "still runs"),
	}
	start := time.Now()
	res, err := Run(exps, Options{OutDir: dir, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline did not bound the experiment (took %v)", elapsed)
	}
	rec, _ := res.Manifest.Lookup("stuck")
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "deadline") {
		t.Errorf("stuck record = %+v, want deadline failure", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "after.txt")); err != nil {
		t.Errorf("experiment after the deadline overrun did not run: %v", err)
	}
}

func TestRetryWithNextAttempt(t *testing.T) {
	dir := t.TempDir()
	transient := errors.New("non-finite measurement")
	var attempts []int
	exps := []Experiment{{
		Name: "flaky",
		Run: func(attempt int) ([]Artifact, error) {
			attempts = append(attempts, attempt)
			if attempt < 2 {
				return nil, fmt.Errorf("trial poisoned: %w", transient)
			}
			return []Artifact{{Name: "flaky.txt", Body: []byte("recovered")}}, nil
		},
	}}
	res, err := Run(exps, Options{
		OutDir:      dir,
		Retries:     3,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 3 || attempts[0] != 0 || attempts[2] != 2 {
		t.Errorf("attempts = %v, want [0 1 2]", attempts)
	}
	rec, _ := res.Manifest.Lookup("flaky")
	if rec.Status != StatusOK || rec.Attempts != 3 {
		t.Errorf("record = %+v, want ok after 3 attempts", rec)
	}
	// Retries exhausted on a retryable error: the cell is quarantined —
	// the sweep completes and reports it instead of aborting.
	exps[0].Run = func(int) ([]Artifact, error) { return nil, transient }
	res, err = Run(exps, Options{OutDir: t.TempDir(), Retries: 1,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) }})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := res.Manifest.Lookup("flaky"); rec.Status != StatusQuarantined || rec.Attempts != 2 {
		t.Errorf("exhausted record = %+v, want quarantined after 2 attempts", rec)
	}
	if res.Quarantined != 1 || len(res.QuarantinedExperiments) != 1 {
		t.Errorf("result = %+v, want 1 quarantined", res)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "quarantined") {
		t.Errorf("Result.Err should report the quarantine: %v", res.Err())
	}
}

func TestResumeSkipsCompletedRegeneratesMissing(t *testing.T) {
	dir := t.TempDir()
	runs := map[string]int{}
	counted := func(name string) Experiment {
		return Experiment{Name: name, Run: func(int) ([]Artifact, error) {
			runs[name]++
			return []Artifact{{Name: name + ".txt", Body: []byte(name + " body")}}, nil
		}}
	}
	exps := []Experiment{counted("one"), counted("two"), counted("three")}
	opts := Options{OutDir: dir, Fingerprint: "fp-a"}
	if _, err := Run(exps, opts); err != nil {
		t.Fatal(err)
	}

	// Delete one artifact: resume must regenerate exactly that one.
	if err := os.Remove(filepath.Join(dir, "two.txt")); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	res, err := Run(exps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if runs["one"] != 1 || runs["three"] != 1 {
		t.Errorf("intact experiments re-ran: %v", runs)
	}
	if runs["two"] != 2 {
		t.Errorf("deleted artifact's experiment did not re-run: %v", runs)
	}
	if res.Skipped != 2 || res.Ran != 1 {
		t.Errorf("skipped/ran = %d/%d, want 2/1", res.Skipped, res.Ran)
	}
	if _, err := os.Stat(filepath.Join(dir, "two.txt")); err != nil {
		t.Errorf("artifact not regenerated: %v", err)
	}

	// A truncated artifact (size mismatch) also counts as incomplete.
	if err := os.WriteFile(filepath.Join(dir, "three.txt"), []byte("tr"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(exps, opts); err != nil {
		t.Fatal(err)
	}
	if runs["three"] != 2 {
		t.Errorf("truncated artifact's experiment did not re-run: %v", runs)
	}

	// Fingerprint mismatch refuses to resume.
	opts.Fingerprint = "fp-b"
	if _, err := Run(exps, opts); !errors.Is(err, ErrFingerprint) {
		t.Errorf("fingerprint mismatch err = %v, want ErrFingerprint", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.svg")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("version 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version 2" {
		t.Errorf("content = %q", got)
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		for _, e := range entries {
			t.Logf("entry: %s", e.Name())
		}
		t.Errorf("directory has %d entries, want 1 (temp files must not survive)", len(entries))
	}
	// Writing into a missing directory fails without creating debris.
	if err := WriteFileAtomic(filepath.Join(dir, "no-such", "x.txt"), []byte("x"), 0o644); err == nil {
		t.Error("write into missing directory should fail")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)
	m := Manifest{Version: 1, Fingerprint: "fp"}
	m.Upsert(Record{Experiment: "a", Status: StatusOK, Attempts: 1,
		Artifacts: []ArtifactRecord{{Name: "a.txt", Bytes: 3}}})
	m.Upsert(Record{Experiment: "b", Status: StatusFailed, Error: "boom", Attempts: 2})
	// Upsert replaces in place.
	m.Upsert(Record{Experiment: "b", Status: StatusOK, Attempts: 3,
		Artifacts: []ArtifactRecord{{Name: "b.txt", Bytes: 5}}})
	if len(m.Records) != 2 {
		t.Fatalf("records = %d, want 2 (upsert must replace)", len(m.Records))
	}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != "fp" || len(got.Records) != 2 {
		t.Errorf("round-trip = %+v", got)
	}
	// Completed: requires status ok and matching files.
	if got.Completed("a", dir) {
		t.Error("a should be incomplete (artifact file missing)")
	}
	if err := os.WriteFile(filepath.Join(dir, "a.txt"), []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !got.Completed("a", dir) {
		t.Error("a should be complete with its artifact on disk")
	}
	// Missing manifest loads empty.
	empty, err := LoadManifest(filepath.Join(dir, "nope.json"))
	if err != nil || len(empty.Records) != 0 {
		t.Errorf("missing manifest: %v, %+v", err, empty)
	}
}
