package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingObserver appends one line per callback, for sequence
// assertions.
type recordingObserver struct {
	mu    sync.Mutex
	lines []string
}

func (o *recordingObserver) add(format string, args ...any) {
	o.mu.Lock()
	o.lines = append(o.lines, fmt.Sprintf(format, args...))
	o.mu.Unlock()
}

func (o *recordingObserver) CellStart(cell string, worker, attempt int) {
	o.add("start %s a%d", cell, attempt)
}
func (o *recordingObserver) CellAttemptError(cell string, worker, attempt int, err error) {
	o.add("error %s a%d", cell, attempt)
}
func (o *recordingObserver) CellRetryWait(cell string, worker, attempt int, wait time.Duration) {
	o.add("wait %s a%d", cell, attempt)
}
func (o *recordingObserver) CellFinish(cell string, worker int, rec Record) {
	o.add("finish %s %s attempts=%d wall>0=%t", cell, rec.Status, rec.Attempts, rec.WallMS > 0)
}
func (o *recordingObserver) CellResumeSkip(cell string) { o.add("skip %s", cell) }
func (o *recordingObserver) CellCutoff(cell string)     { o.add("cutoff %s", cell) }
func (o *recordingObserver) PoolShrink(remaining int)   { o.add("shrink %d", remaining) }

func (o *recordingObserver) joined() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return strings.Join(o.lines, "\n")
}

func TestObserverSeesEveryTransition(t *testing.T) {
	dir := t.TempDir()
	flaky := errors.New("transient")
	attempts := 0
	exps := []Experiment{
		{Name: "good", Run: func(int) ([]Artifact, error) {
			return []Artifact{{Name: "good.txt", Body: []byte("ok\n")}}, nil
		}},
		{Name: "flaky", Run: func(attempt int) ([]Artifact, error) {
			attempts++
			if attempt == 0 {
				return nil, flaky
			}
			return []Artifact{{Name: "flaky.txt", Body: []byte("eventually\n")}}, nil
		}},
		{Name: "doomed", Run: func(int) ([]Artifact, error) { return nil, flaky }},
	}
	obs := &recordingObserver{}
	res, err := Run(exps, Options{
		OutDir:      dir,
		Retries:     1,
		ShouldRetry: func(err error) bool { return errors.Is(err, flaky) },
		Observer:    obs,
		Fingerprint: "obs-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 1 {
		t.Fatalf("result: %+v", res)
	}
	got := obs.joined()
	for _, want := range []string{
		"start good a0",
		"finish good ok attempts=1 wall>0=true",
		"start flaky a0",
		"error flaky a0",
		"wait flaky a0",
		"start flaky a1",
		"finish flaky ok attempts=2 wall>0=true",
		"start doomed a0",
		"error doomed a0",
		"start doomed a1",
		"error doomed a1",
		"finish doomed quarantined attempts=2 wall>0=true",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("observer missing %q; saw:\n%s", want, got)
		}
	}

	// Resume: the completed cells report as skips, with their wall
	// durations preserved in the journal and surfaced via CellWalls.
	obs2 := &recordingObserver{}
	res2, err := Run(exps, Options{
		OutDir:      dir,
		Resume:      true,
		Retries:     1,
		ShouldRetry: func(err error) bool { return errors.Is(err, flaky) },
		Observer:    obs2,
		Fingerprint: "obs-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Skipped != 2 {
		t.Fatalf("resume result: %+v", res2)
	}
	got2 := obs2.joined()
	for _, want := range []string{"skip good", "skip flaky"} {
		if !strings.Contains(got2, want) {
			t.Errorf("resume observer missing %q; saw:\n%s", want, got2)
		}
	}
	walls := map[string]float64{}
	for _, cw := range res2.CellWalls {
		walls[cw.Experiment] = cw.WallMS
	}
	if walls["good"] <= 0 || walls["flaky"] <= 0 {
		t.Errorf("resumed run lost completed cells' wall durations: %+v", res2.CellWalls)
	}
}

func TestWallDurationJournaledButNotInManifest(t *testing.T) {
	dir := t.TempDir()
	exps := []Experiment{{Name: "only", Run: func(int) ([]Artifact, error) {
		time.Sleep(2 * time.Millisecond) // make the duration visibly non-zero
		return []Artifact{{Name: "only.txt", Body: []byte("x\n")}}, nil
	}}}
	res, err := Run(exps, Options{OutDir: dir, Fingerprint: "wall-test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CellWalls) != 1 || res.CellWalls[0].WallMS <= 0 {
		t.Fatalf("CellWalls = %+v", res.CellWalls)
	}
	slow := res.SlowestCells(3)
	if len(slow) != 1 || slow[0].Experiment != "only" {
		t.Errorf("SlowestCells = %+v", slow)
	}

	journal, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), "wall_ms") {
		t.Error("journal record carries no wall_ms")
	}
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(manifest), "wall_ms") {
		t.Error("manifest carries wall_ms — wall time leaked into the determinism surface")
	}
}

func TestSlowestCellsOrdersAndTruncates(t *testing.T) {
	r := Result{CellWalls: []CellWall{
		{Experiment: "b", WallMS: 5},
		{Experiment: "a", WallMS: 9},
		{Experiment: "c", WallMS: 5},
		{Experiment: "d", WallMS: 1},
	}}
	got := r.SlowestCells(3)
	want := []CellWall{{"a", 9}, {"b", 5}, {"c", 5}}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("SlowestCells = %+v, want %+v", got, want)
	}
}
