package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// deterministicCells builds n cells whose artifacts are pure functions
// of the cell name, so any two complete sweeps over them must be
// byte-identical.
func deterministicCells(n int) []Experiment {
	out := make([]Experiment, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cell-%02d", i)
		out[i] = Experiment{
			Name: name,
			Run: func(int) ([]Artifact, error) {
				body := fmt.Sprintf("artifact of %s\npayload %d\n", name, len(name)*7)
				return []Artifact{
					{Name: name + ".txt", Body: []byte(body)},
					{Name: name + ".csv", Body: []byte("k,v\n" + name + ",1\n")},
				}, nil
			},
		}
	}
	return out
}

// readDir returns path->content for every file under dir, excluding
// the journal (which records completion order and is documented as not
// being a determinism surface).
func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == JournalName {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// assertSameDir fails unless both directories hold byte-identical
// files (journal excluded).
func assertSameDir(t *testing.T, want, got map[string]string, label string) {
	t.Helper()
	var names []string
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: %s missing", label, name)
			continue
		}
		if g != want[name] {
			t.Errorf("%s: %s differs:\nwant %q\ngot  %q", label, name, want[name], g)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected extra file %s", label, name)
		}
	}
}

// TestParallelMergeIsByteIdenticalToSerial is the acceptance-criterion
// test: the same sweep at -jobs=1 and -jobs=8 produces byte-identical
// merged artifacts, including the manifest (merged in cell order, not
// completion order).
func TestParallelMergeIsByteIdenticalToSerial(t *testing.T) {
	cells := deterministicCells(30)
	serialDir, parallelDir := t.TempDir(), t.TempDir()
	if _, err := Run(cells, Options{OutDir: serialDir, Jobs: 1, Fingerprint: "fp"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cells, Options{OutDir: parallelDir, Jobs: 8, Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 30 || res.Failed != 0 {
		t.Fatalf("parallel run = %+v", res)
	}
	assertSameDir(t, readDir(t, serialDir), readDir(t, parallelDir), "jobs=8 vs jobs=1")
}

// TestParallelActuallyOverlaps proves the pool runs cells concurrently
// (the speedup satellite depends on it): 8 cells that each sleep 40ms
// must finish far faster than serially on 8 workers.
func TestParallelActuallyOverlaps(t *testing.T) {
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	cells := make([]Experiment, 8)
	for i := range cells {
		name := fmt.Sprintf("sleepy-%d", i)
		cells[i] = Experiment{Name: name, Run: func(int) ([]Artifact, error) {
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(40 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return []Artifact{{Name: name + ".txt", Body: []byte(name)}}, nil
		}}
	}
	start := time.Now()
	if _, err := Run(cells, Options{OutDir: t.TempDir(), Jobs: 8}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("8 x 40ms cells on 8 workers took %v — pool is not parallel", elapsed)
	}
	if maxInFlight < 2 {
		t.Errorf("max in-flight cells = %d, want >= 2", maxInFlight)
	}
}

// TestNoCellDispatchedTwiceAndSeedsNeverAlias: within one run, every
// (cell, attempt) pair is dispatched at most once, and seeds derived
// from (cell, attempt) the way the drivers derive them are unique
// across the whole sweep — the no-reused-trial-seeds invariant.
func TestNoCellDispatchedTwiceAndSeedsNeverAlias(t *testing.T) {
	transient := errors.New("transient")
	var mu sync.Mutex
	dispatched := map[string]int{}
	seeds := map[uint64]string{}
	var cells []Experiment
	for i := 0; i < 12; i++ {
		i := i
		name := fmt.Sprintf("cell-%02d", i)
		cells = append(cells, Experiment{Name: name, Run: func(attempt int) ([]Artifact, error) {
			key := fmt.Sprintf("%s/%d", name, attempt)
			// SplitMix-style (cell, attempt) seed derivation, as the
			// fairfigs driver does with TrialSeed.
			z := uint64(i)<<32 + uint64(attempt) + 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			seed := z ^ (z >> 27)
			mu.Lock()
			dispatched[key]++
			if prev, dup := seeds[seed]; dup {
				mu.Unlock()
				t.Errorf("seed %d reused by %s and %s", seed, prev, key)
				return nil, nil
			}
			seeds[seed] = key
			mu.Unlock()
			if attempt < 2 && i%3 == 0 {
				return nil, transient
			}
			return []Artifact{{Name: name + ".txt", Body: []byte(name)}}, nil
		}})
	}
	res, err := Run(cells, Options{
		OutDir: t.TempDir(), Jobs: 4, Retries: 3,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Quarantined != 0 {
		t.Fatalf("sweep did not converge: %+v", res)
	}
	for key, n := range dispatched {
		if n != 1 {
			t.Errorf("(cell, attempt) %s dispatched %d times", key, n)
		}
	}
	if len(res.Manifest.Records) != len(cells) {
		t.Errorf("manifest has %d records, want %d (no lost or duplicated cells)",
			len(res.Manifest.Records), len(cells))
	}
}

// TestRunDeadlineLeavesCellsResumable: a whole-run deadline stops
// dispatch; undispatched cells are reported unfinished, and a resumed
// run completes them to the same bytes as a clean run.
func TestRunDeadlineLeavesCellsResumable(t *testing.T) {
	slowCells := func() []Experiment {
		cells := deterministicCells(12)
		for i := range cells {
			inner := cells[i].Run
			cells[i].Run = func(attempt int) ([]Artifact, error) {
				time.Sleep(30 * time.Millisecond)
				return inner(attempt)
			}
		}
		return cells
	}

	cleanDir := t.TempDir()
	if _, err := Run(slowCells(), Options{OutDir: cleanDir, Fingerprint: "fp"}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	res, err := Run(slowCells(), Options{
		OutDir: dir, Jobs: 2, RunTimeout: 70 * time.Millisecond, Fingerprint: "fp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished == 0 {
		t.Fatalf("run deadline did not cut any cells off: %+v", res)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "unfinished") {
		t.Errorf("Result.Err should report unfinished cells: %v", res.Err())
	}

	res, err = Run(slowCells(), Options{OutDir: dir, Resume: true, Jobs: 4, Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatalf("resume did not converge: %v", res.Err())
	}
	if res.Skipped == 0 {
		t.Errorf("resume re-ran everything; expected completed cells to be skipped: %+v", res)
	}
	assertSameDir(t, readDir(t, cleanDir), readDir(t, dir), "resumed vs clean")
}

// TestPoolShrinksUnderRepeatedPanics: a streak of panicking cells
// retires workers down to a floor of one, and the sweep still
// completes with a record for every cell.
func TestPoolShrinksUnderRepeatedPanics(t *testing.T) {
	var cells []Experiment
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("boom-%02d", i)
		cells = append(cells, Experiment{Name: name, Run: func(int) ([]Artifact, error) {
			panic("systemic failure")
		}})
	}
	res, err := Run(cells, Options{OutDir: t.TempDir(), Jobs: 4, ShrinkAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersShrunk < 1 {
		t.Errorf("pool never shrank under 16 consecutive panics: %+v", res)
	}
	if res.WorkersShrunk > 3 {
		t.Errorf("pool shrank below the one-worker floor: %+v", res)
	}
	if res.Ran != 16 || len(res.Manifest.Records) != 16 {
		t.Errorf("sweep did not complete after shrinking: ran %d, records %d", res.Ran, len(res.Manifest.Records))
	}
	for _, rec := range res.Manifest.Records {
		if rec.Status != StatusFailed {
			t.Errorf("record %+v, want failed", rec)
		}
	}
}

// TestQuarantineThresholdExact: with Retries=2, a cell that fails
// exactly 3 retryable attempts is quarantined; one that succeeds on
// its final attempt is not.
func TestQuarantineThresholdExact(t *testing.T) {
	transient := errors.New("transient")
	mk := func(name string, failures int) Experiment {
		return Experiment{Name: name, Run: func(attempt int) ([]Artifact, error) {
			if attempt < failures {
				return nil, transient
			}
			return []Artifact{{Name: name + ".txt", Body: []byte("ok")}}, nil
		}}
	}
	res, err := Run([]Experiment{mk("justFails", 3), mk("justSucceeds", 2)}, Options{
		OutDir: t.TempDir(), Retries: 2,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := res.Manifest.Lookup("justFails"); rec.Status != StatusQuarantined || rec.Attempts != 3 {
		t.Errorf("justFails = %+v, want quarantined after exactly 3 attempts", rec)
	}
	if rec, _ := res.Manifest.Lookup("justSucceeds"); rec.Status != StatusOK || rec.Attempts != 3 {
		t.Errorf("justSucceeds = %+v, want ok on the final attempt", rec)
	}
}

// TestZeroRetriesConfigured: with no retry budget a retryable error is
// a plain failure after a single attempt — the retry machinery
// (backoff, quarantine) never engages.
func TestZeroRetriesConfigured(t *testing.T) {
	transient := errors.New("transient")
	attempts := 0
	res, err := Run([]Experiment{{Name: "once", Run: func(int) ([]Artifact, error) {
		attempts++
		return nil, transient
	}}}, Options{
		OutDir: t.TempDir(), Retries: 0,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) },
		Backoff:     BackoffConfig{Base: time.Hour}, // must never be waited on
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
	if rec, _ := res.Manifest.Lookup("once"); rec.Status != StatusFailed || rec.Attempts != 1 {
		t.Errorf("record = %+v, want failed after one attempt", rec)
	}
}

// TestRunDeadlineShorterThanFirstBackoff: when the whole-run deadline
// fires before the first backoff wait completes, the cell is recorded
// failed with the run-deadline cause — promptly, not after the full
// backoff.
func TestRunDeadlineShorterThanFirstBackoff(t *testing.T) {
	transient := errors.New("transient")
	start := time.Now()
	res, err := Run([]Experiment{{Name: "backedOff", Run: func(int) ([]Artifact, error) {
		return nil, transient
	}}}, Options{
		OutDir: t.TempDir(), Retries: 3,
		ShouldRetry: func(err error) bool { return errors.Is(err, transient) },
		Backoff:     BackoffConfig{Base: 10 * time.Second},
		RunTimeout:  60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("run deadline did not interrupt the backoff (took %v)", elapsed)
	}
	rec, ok := res.Manifest.Lookup("backedOff")
	if !ok || rec.Status != StatusFailed || !strings.Contains(rec.Error, "run deadline") {
		t.Errorf("record = %+v, want failed with run-deadline cause", rec)
	}
}

func TestNormalizeJobs(t *testing.T) {
	for _, jobs := range []int{0, -1, -100} {
		if got := NormalizeJobs(jobs); got < 1 {
			t.Errorf("NormalizeJobs(%d) = %d, want >= 1 (all cores)", jobs, got)
		}
	}
	if got := NormalizeJobs(1 << 20); got >= 1<<20 {
		t.Errorf("NormalizeJobs(1<<20) = %d, absurd values must be capped", got)
	}
	if got := NormalizeJobs(2); got != 2 {
		t.Errorf("NormalizeJobs(2) = %d, want 2 (sane values pass through)", got)
	}
}
