package runner

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, err := startJournal(path, "fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Experiment: "a", Status: StatusOK, Attempts: 1,
			Artifacts: []ArtifactRecord{{Name: "a.txt", Bytes: 3}}},
		{Experiment: "b", Status: StatusFailed, Error: "boom", Attempts: 2},
		{Experiment: "c", Status: StatusQuarantined, Error: "transient", Attempts: 4},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fp, got, found, err := LoadJournal(path)
	if err != nil || !found || fp != "fp" {
		t.Fatalf("LoadJournal = fp %q, found %v, err %v", fp, found, err)
	}
	if len(got) != 3 {
		t.Fatalf("records = %d, want 3", len(got))
	}
	for i, r := range recs {
		if got[i].Experiment != r.Experiment || got[i].Status != r.Status || got[i].Attempts != r.Attempts {
			t.Errorf("record %d = %+v, want %+v", i, got[i], r)
		}
	}
}

func TestJournalMissingFile(t *testing.T) {
	_, _, found, err := LoadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || found {
		t.Errorf("missing journal: found=%v err=%v, want found=false, nil", found, err)
	}
}

// TestJournalTornFinalLine: a crash mid-append leaves a final line with
// no newline; loading drops exactly that fragment and keeps every
// complete record.
func TestJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, err := startJournal(path, "fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Experiment: "a", Status: StatusOK, Attempts: 1})
	j.Append(Record{Experiment: "b", Status: StatusOK, Attempts: 1})
	j.Close()
	// Simulate the torn append: a record fragment with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"experiment":"c","sta`)
	f.Close()

	_, recs, found, err := LoadJournal(path)
	if err != nil || !found {
		t.Fatalf("torn journal should load: found=%v err=%v", found, err)
	}
	if len(recs) != 2 || recs[0].Experiment != "a" || recs[1].Experiment != "b" {
		t.Errorf("records = %+v, want the two complete records", recs)
	}
}

// TestJournalCorruptMidLine: garbage in the middle stops parsing there
// — the records before it are kept, those after are conservatively
// dropped (resume just re-runs them).
func TestJournalCorruptMidLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, err := startJournal(path, "fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Experiment: "a", Status: StatusOK, Attempts: 1})
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("!! not json !!\n")
	f.Close()
	j2 := &journal{}
	_ = j2 // (appending after corruption is not modelled; load is what matters)
	f, _ = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"experiment":"b","status":"ok","attempts":1}` + "\n")
	f.Close()

	_, recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Experiment != "a" {
		t.Errorf("records = %+v, want only the pre-corruption record", recs)
	}
}

// TestJournalLaterRecordWins: when a cell appears twice (re-run after a
// failure), the later record replaces the earlier one in place.
func TestJournalLaterRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	j, err := startJournal(path, "fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Experiment: "a", Status: StatusFailed, Error: "first try", Attempts: 1})
	j.Append(Record{Experiment: "b", Status: StatusOK, Attempts: 1})
	j.Append(Record{Experiment: "a", Status: StatusOK, Attempts: 1})
	j.Close()
	_, recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %+v, want 2 (later record replaces)", recs)
	}
	if recs[0].Experiment != "a" || recs[0].Status != StatusOK {
		t.Errorf("record a = %+v, want later (ok) record in original position", recs[0])
	}
}

// TestJournalHeaderRejected: a file that is not a runner journal is an
// explicit error, never silently treated as records.
func TestJournalHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	if err := os.WriteFile(path, []byte(`{"something":"else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := LoadJournal(path)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("foreign file err = %v, want journal-format error", err)
	}
}

// TestJournalStartKeepsResumedRecords: startJournal rewrites the file
// as header + kept records, so the journal never accumulates stale
// generations across resumes.
func TestJournalStartKeepsResumedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalName)
	kept := []Record{{Experiment: "old", Status: StatusOK, Attempts: 1}}
	j, err := startJournal(path, "fp", kept)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Experiment: "new", Status: StatusOK, Attempts: 1})
	j.Close()
	fp, recs, _, err := LoadJournal(path)
	if err != nil || fp != "fp" {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Experiment != "old" || recs[1].Experiment != "new" {
		t.Errorf("records = %+v, want kept record then appended record", recs)
	}
}

// TestResumeFingerprintFromJournal: a journal written under different
// options refuses to resume with ErrFingerprint.
func TestResumeFingerprintFromJournal(t *testing.T) {
	dir := t.TempDir()
	exps := []Experiment{okExperiment("a", "body")}
	if _, err := Run(exps, Options{OutDir: dir, Fingerprint: "fp-1"}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(exps, Options{OutDir: dir, Resume: true, Fingerprint: "fp-2"})
	if !errors.Is(err, ErrFingerprint) {
		t.Errorf("err = %v, want ErrFingerprint", err)
	}
}

// TestResumeFromManifestOnlyDir: output directories written before the
// journal existed (manifest only) still resume.
func TestResumeFromManifestOnlyDir(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	exps := []Experiment{{Name: "a", Run: func(int) ([]Artifact, error) {
		runs++
		return []Artifact{{Name: "a.txt", Body: []byte("body")}}, nil
	}}}
	if _, err := Run(exps, Options{OutDir: dir, Fingerprint: "fp"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, JournalName)); err != nil {
		t.Fatal(err)
	}
	res, err := Run(exps, Options{OutDir: dir, Resume: true, Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 || runs != 1 {
		t.Errorf("pre-journal dir did not resume from manifest: skipped=%d runs=%d", res.Skipped, runs)
	}
}
