package runner

import (
	"hash/fnv"
	"time"
)

// BackoffConfig spaces retry attempts with capped exponential backoff.
// The zero value disables waiting (immediate retries — the historical
// behaviour, and the right one for deterministic re-seeded retries
// where waiting cannot help).
type BackoffConfig struct {
	// Base is the delay before the first retry; attempt k waits
	// Base<<k, capped at Max.
	Base time.Duration
	// Max caps the exponential growth (0 = 16*Base).
	Max time.Duration
}

// delay returns the wait before retrying the named cell's attempt
// (attempt 0 = the wait between the first failure and the first
// retry). The +/-25% jitter decorrelates retries across cells without
// any randomness: it is derived by hashing (cell, attempt), so a given
// schedule is reproducible run to run.
func (c BackoffConfig) delay(cell string, attempt int) time.Duration {
	if c.Base <= 0 {
		return 0
	}
	max := c.Max
	if max <= 0 {
		max = 16 * c.Base
	}
	d := c.Base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Deterministic jitter in [0.75, 1.25).
	h := fnv.New64a()
	h.Write([]byte(cell))
	h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	frac := 0.75 + 0.5*float64(h.Sum64()>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}
