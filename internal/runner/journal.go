package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The journal is the crash-safety spine of a parallel sweep: an
// append-only JSONL file whose first line is a header (format tag +
// options fingerprint) and whose remaining lines are one Record per
// completed cell, each fsync'd before the worker moves on. A SIGKILL
// therefore loses at most the cells that were mid-flight — every
// journaled cell survives, and Resume replays exactly the missing
// work. The final line of a torn journal (a crash mid-append) is
// detected and dropped: only newline-terminated lines count.
//
// Unlike the manifest — which is merged in canonical cell order after
// the sweep so it is byte-identical at any Jobs value — the journal
// records completion order and is NOT a determinism surface.

// JournalName is the journal filename inside the output directory.
const JournalName = "journal.jsonl"

// journalFormat tags the header line so a journal is self-identifying.
const journalFormat = "fairbench-runner-journal/v1"

// journalHeader is the first line of the journal.
type journalHeader struct {
	Journal     string `json:"journal"`
	Fingerprint string `json:"fingerprint"`
}

// journal is an open, append-only journal handle. Append is safe for
// concurrent use by pool workers.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// startJournal atomically (re)writes the journal as header + kept
// records — via a same-directory temp file and rename, so a crash
// mid-start never leaves a half-written journal — then reopens it for
// appending. On resume, kept carries the records of cells being
// skipped; on a fresh run it is empty.
func startJournal(path, fingerprint string, kept []Record) (*journal, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(journalHeader{Journal: journalFormat, Fingerprint: fingerprint}); err != nil {
		return nil, fmt.Errorf("runner: start journal: %w", err)
	}
	for _, r := range kept {
		if err := enc.Encode(r); err != nil {
			return nil, fmt.Errorf("runner: start journal: %w", err)
		}
	}
	if err := WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// Append journals one completed cell: marshal, newline-terminate,
// write, fsync. The fsync is what makes a journaled cell survive a
// kill -9 an instant later.
func (j *journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: journal append: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("runner: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal append: %w", err)
	}
	return nil
}

// Close closes the journal handle.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadJournal reads a journal. A missing file returns found=false and
// no error. Parsing stops — without error — at the first torn or
// unparsable line: a crash mid-append tears at most the final line,
// and the cells behind any dropped lines simply re-run on resume
// (their artifacts, written atomically, are never at risk). Later
// records win when a cell appears more than once (a resumed run
// re-journals the cells it re-ran).
func LoadJournal(path string) (fingerprint string, recs []Record, found bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", nil, false, nil
	}
	if err != nil {
		return "", nil, false, fmt.Errorf("runner: load journal: %w", err)
	}
	lines := completeLines(data)
	if len(lines) == 0 {
		return "", nil, true, nil
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Journal != journalFormat {
		return "", nil, true, fmt.Errorf("runner: %s is not a %s journal", path, journalFormat)
	}
	latest := map[string]int{}
	for _, line := range lines[1:] {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Experiment == "" {
			break // torn or corrupt: drop this line and everything after
		}
		if i, ok := latest[rec.Experiment]; ok {
			recs[i] = rec
			continue
		}
		latest[rec.Experiment] = len(recs)
		recs = append(recs, rec)
	}
	return hdr.Fingerprint, recs, true, nil
}

// completeLines splits data into newline-terminated lines, dropping a
// trailing fragment with no newline (a torn final append).
func completeLines(data []byte) [][]byte {
	var out [][]byte
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return out // data (if any) is a torn fragment
		}
		if line := bytes.TrimSpace(data[:i]); len(line) > 0 {
			out = append(out, line)
		}
		data = data[i+1:]
	}
}
