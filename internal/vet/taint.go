package vet

import (
	"go/token"
	"strings"
)

// reportFunc is how analyzers surface findings; vet.Run wires it to the
// finding accumulator.
type reportFunc func(pos token.Pos, rule, msg, hint string)

// unreached is the taint depth of a function with no path to a source.
const unreached = 1 << 30

// taintKinds are the nondeterminism classes rule taintreach tracks,
// checked in a fixed order so findings are deterministic.
var taintKinds = []struct {
	kind string
	noun string
}{
	{"wallclock", "the wall clock"},
	{"globalrand", "the global math/rand generator"},
	{"goroutine", "a goroutine spawn"},
}

// taintReach reports sim-boundary functions that can reach a
// nondeterminism source through any call chain, including chains that
// leave the boundary and come back — the wrapper loophole fairlint's
// per-file rules cannot see. Only the frontier is reported: a boundary
// function is a finding when it holds the source itself or when a
// tainted callee lies outside the boundary; a boundary caller of a
// reported boundary function is not re-reported, so each chain yields
// one actionable finding.
func taintReach(g *graph, report reportFunc) {
	for _, tk := range taintKinds {
		depths := taintDepths(g, tk.kind)
		for _, n := range g.nodes {
			if !inDirs(n.rel, g.cfg.SimBoundary) {
				continue
			}
			d, tainted := depths[n]
			if !tainted {
				continue
			}
			direct := d == 0
			frontier := direct
			if !frontier {
				for _, c := range n.out {
					if _, ok := depths[c]; ok && !inDirs(c.rel, g.cfg.SimBoundary) {
						frontier = true
						break
					}
				}
			}
			if !frontier {
				continue
			}
			chain, src := taintChain(n, depths, tk.kind)
			report(n.decl.Name.Pos(), RuleTaintReach,
				"sim-boundary function "+declName(n.fn)+" reaches "+tk.noun+" ("+src.desc+")",
				"call chain: "+strings.Join(chain, " -> ")+" -> "+src.desc+
					" at "+g.shortPos(src.pos)+
					"; keep "+tk.noun+" out of replayed code or add //fairlint:allow taintreach <reason>")
		}
	}
}

// taintDepths computes, for one source kind, each node's distance to
// the nearest source: 0 for a direct source, else 1 + the minimum over
// callees. Plain Bellman-Ford relaxation over the sorted node list; the
// fixpoint is unique, so iteration order only affects speed.
func taintDepths(g *graph, kind string) map[*fnode]int {
	depths := map[*fnode]int{}
	get := func(n *fnode) int {
		if d, ok := depths[n]; ok {
			return d
		}
		return unreached
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			best := unreached
			if hasSource(n, kind) {
				best = 0
			}
			for _, c := range n.out {
				if d := get(c); d < unreached && d+1 < best {
					best = d + 1
				}
			}
			if best < get(n) {
				depths[n] = best
				changed = true
			}
		}
	}
	return depths
}

// taintChain reconstructs one shortest source path from n, choosing the
// key-smallest callee at every step so the printed chain is stable.
func taintChain(n *fnode, depths map[*fnode]int, kind string) ([]string, source) {
	chain := []string{n.key}
	cur := n
	for depths[cur] > 0 {
		next := cur
		for _, c := range cur.out {
			if d, ok := depths[c]; ok && d == depths[cur]-1 {
				next = c
				break // n.out is sorted by key; first match is canonical
			}
		}
		cur = next
		chain = append(chain, cur.key)
	}
	return chain, firstSource(cur, kind)
}

func hasSource(n *fnode, kind string) bool {
	for _, s := range n.sources {
		if s.kind == kind {
			return true
		}
	}
	return false
}

// firstSource returns n's position-first direct source of the kind.
func firstSource(n *fnode, kind string) source {
	for _, s := range n.sources {
		if s.kind == kind {
			return s
		}
	}
	return source{kind: kind, desc: "?", pos: n.decl.Pos()}
}
