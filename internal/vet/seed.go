package vet

import (
	"go/ast"
	"go/types"

	"fairbench/internal/lint"
)

// seedProv enforces seed provenance: every RNG constructed anywhere in
// the module must be seeded by a value that dataflows from a parameter
// (a Spec field, a trial seed, an operator flag) — never from a bare
// literal, a named constant, or a package variable. A literal seed
// works, reproduces, and silently decouples the experiment from the
// replication machinery: replays with a different --seed keep using the
// hardcoded value and the "independent" trials are the same trial.
//
// The check is a backward dataflow over the constructing function:
// walk the seed expression through local assignments until hitting
// roots. Parameters, receivers, their fields, flag.* results, and
// values ranged from provenance-ok sources are good roots; literals,
// consts, and package vars are violations. Expression shapes the
// walker does not model are accepted (default-permissive): fairvet
// only reports seeds it can prove never depend on the caller.
func seedProv(g *graph, report reportFunc) {
	for _, n := range g.nodes {
		sp := newSeedPass(n.pkg, n.decl)
		sp.checkCalls(n.decl, report)
	}
	// Package-level `var r = rand.New(rand.NewSource(42))` initializers
	// run outside any function; check them with no parameter roots.
	for _, pkg := range g.pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					sp := newSeedPass(pkg, nil)
					for _, v := range vs.Values {
						sp.checkCalls(v, report)
					}
				}
			}
		}
	}
}

type seedPass struct {
	pkg     *lint.Package
	params  map[types.Object]bool
	assigns map[types.Object][]ast.Expr
}

// newSeedPass indexes the roots (params, receivers, results — of the
// declaration and of every function literal inside it) and every local
// assignment, so provOK can chase idents backward.
func newSeedPass(pkg *lint.Package, root ast.Node) *seedPass {
	sp := &seedPass{
		pkg:     pkg,
		params:  map[types.Object]bool{},
		assigns: map[types.Object][]ast.Expr{},
	}
	if root == nil {
		return sp
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					sp.params[obj] = true
				}
			}
		}
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		if obj := identObj(pkg.Info, id); obj != nil {
			sp.assigns[obj] = append(sp.assigns[obj], rhs)
		}
	}
	ast.Inspect(root, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncDecl:
			addFields(nd.Recv)
			addFields(nd.Type.Params)
			addFields(nd.Type.Results)
		case *ast.FuncLit:
			addFields(nd.Type.Params)
			addFields(nd.Type.Results)
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if len(nd.Rhs) == len(nd.Lhs) {
					record(id, nd.Rhs[i])
				} else if len(nd.Rhs) == 1 {
					record(id, nd.Rhs[0]) // multi-value call: chase the call
				}
			}
		case *ast.ValueSpec:
			for i, name := range nd.Names {
				if len(nd.Values) == len(nd.Names) {
					record(name, nd.Values[i])
				} else if len(nd.Values) == 1 {
					record(name, nd.Values[0])
				}
			}
		case *ast.RangeStmt:
			if id, ok := nd.Key.(*ast.Ident); ok && nd.Key != nil {
				record(id, nd.X)
			}
			if id, ok := nd.Value.(*ast.Ident); ok && nd.Value != nil {
				record(id, nd.X)
			}
		}
		return true
	})
	return sp
}

// checkCalls walks root for RNG-constructor calls and reports each
// argument that provably never derives from a parameter.
func (sp *seedPass) checkCalls(root ast.Node, report reportFunc) {
	ast.Inspect(root, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(sp.pkg.Info, call)
		if callee == nil || !isSeedCtor(callee) {
			return true
		}
		for _, arg := range call.Args {
			if !sp.provOK(arg, map[types.Object]bool{}) {
				report(arg.Pos(), RuleSeedProv,
					"seed for "+callee.Pkg().Name()+"."+callee.Name()+" does not derive from a parameter",
					"thread the seed from the Spec/TrialSeed/flag that reaches this code; "+
						"a hardcoded seed decouples the experiment from replication "+
						"(or add //fairlint:allow seedprov <reason>)")
				break
			}
		}
		return true
	})
}

// isSeedCtor reports whether fn constructs an RNG whose arguments must
// carry seed provenance: the math/rand (v1 and v2) constructor family,
// plus this module's sim.NewRNG and stats.NewRNG.
func isSeedCtor(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch pkg.Name() {
	case "rand":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			return true
		}
	case "sim", "stats":
		return fn.Name() == "NewRNG"
	}
	return false
}

// provOK reports whether e can carry caller-supplied provenance.
// visiting breaks assignment cycles (a var transitively assigned from
// itself is accepted: some other root must have fed the cycle).
func (sp *seedPass) provOK(e ast.Expr, visiting map[types.Object]bool) bool {
	info := sp.pkg.Info
	switch e := e.(type) {
	case *ast.BasicLit:
		return false
	case *ast.Ident:
		obj := identObj(info, e)
		switch o := obj.(type) {
		case *types.Const:
			return false
		case *types.Var:
			if sp.params[o] || o.IsField() {
				return true
			}
			if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
				return false // package variable: fixed at init, not threaded
			}
			if visiting[o] {
				return true
			}
			visiting[o] = true
			rhss := sp.assigns[o]
			if len(rhss) == 0 {
				return true // declared elsewhere (e.g. closure capture): permissive
			}
			for _, r := range rhss {
				if !sp.provOK(r, visiting) {
					return false
				}
			}
			return true
		default:
			return true // funcs, types, nil
		}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				switch info.Uses[e.Sel].(type) {
				case *types.Const, *types.Var:
					return false // qualified package const/var
				}
				return true
			}
		}
		return sp.provOK(e.X, visiting) // field of a provenance-ok value
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sp.provOK(e.Args[0], visiting) // conversion
		}
		if callee := calleeFunc(info, e); callee != nil {
			if callee.Pkg() != nil && callee.Pkg().Path() == "flag" {
				return true // operator-supplied
			}
			if isSeedCtor(callee) {
				return true // nested constructor: checked at its own site
			}
		}
		return true // arbitrary derivation (MixSeed, Derive, ...): permissive
	case *ast.ParenExpr:
		return sp.provOK(e.X, visiting)
	case *ast.UnaryExpr:
		return sp.provOK(e.X, visiting)
	case *ast.StarExpr:
		return sp.provOK(e.X, visiting)
	case *ast.BinaryExpr:
		// Mixing a root with a literal (seed ^ 0x9e37...) is derivation,
		// not hardcoding; one provenance-ok operand suffices.
		return sp.provOK(e.X, visiting) || sp.provOK(e.Y, visiting)
	case *ast.IndexExpr:
		return sp.provOK(e.X, visiting)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if sp.provOK(elt, visiting) {
				return true
			}
		}
		return false // all-literal composite (e.g. a [32]byte ChaCha8 key)
	default:
		return true
	}
}
