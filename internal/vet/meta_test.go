package vet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fairbench/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestModuleSelfVet is fairvet's own acceptance gate: the whole module
// must be clean (every finding fixed or justified with an explained
// allow), and two independent whole-program runs must emit
// byte-identical JSON — call-graph construction, taint propagation,
// and fixpoint iteration may not leak map order or pointer identity
// into the output.
func TestModuleSelfVet(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	root := moduleRoot(t)
	run := func() ([]Finding, []byte) {
		findings, err := Run(Config{Dir: root, Patterns: []string{"./..."}})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, findings); err != nil {
			t.Fatal(err)
		}
		return findings, buf.Bytes()
	}

	findings, first := run()
	for _, f := range findings {
		t.Errorf("tree not fairvet-clean: %s", f)
	}

	_, second := run()
	if !bytes.Equal(first, second) {
		t.Errorf("fairvet -json is not byte-identical across runs\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestHotpathsAnnotated guards the annotation policy: every zero-alloc
// steady-state product function exercised by the benchmark suite must
// carry //fairbench:hotpath, so the static gate stays armed for the
// functions whose BENCH_baseline.json numbers claim zero allocations.
func TestHotpathsAnnotated(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	root := moduleRoot(t)
	want := map[string]bool{
		"internal/sim.(*Sim).At":                  false,
		"internal/sim.(*Sim).Run":                 false,
		"internal/sim.(*Sim).RunAll":              false,
		"internal/packet.(*Parser).Parse":         false,
		"internal/nf.(*LinearMatcher).Match":      false,
		"internal/nf.(*Firewall).Process":         false,
		"internal/nf.(*Conntrack).Process":        false,
		"internal/workload.(*ScenarioGen).NextAt": false,
	}
	cfg := Config{Dir: root, Patterns: []string{"./..."}}
	cfg.fillDefaults()
	pkgs, fset, err := lint.Load(cfg.Dir, cfg.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(&cfg, pkgs, fset)
	for _, n := range g.nodes {
		if _, tracked := want[n.key]; tracked && n.hot {
			want[n.key] = true
		}
	}
	for key, hot := range want {
		if !hot {
			t.Errorf("%s lost its //fairbench:hotpath annotation", key)
		}
	}
}
