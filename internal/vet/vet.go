// Package vet implements fairvet, the whole-program companion to
// fairlint (internal/lint). fairlint checks determinism invariants one
// file at a time; every rule it has can be laundered through a one-line
// wrapper in an allowed package — `func now() time.Time { return
// time.Now() }` in internal/runner, called from internal/sim, breaks
// replay while passing every per-file check. fairvet closes that class
// of loophole by building an interprocedural call graph over the whole
// module (on top of fairlint's loader: go/parser + go/types, stdlib
// only) and checking reachability and dataflow properties:
//
//   - taintreach: wall-clock reads, global math/rand draws, and
//     goroutine spawns reachable *transitively* from any function in the
//     sim boundary (internal/{sim,hw,measure,fault,nf,workload}) are
//     findings, with the full call chain printed as the hint.
//   - seedprov: every RNG construction (rand.New/NewSource family,
//     sim.NewRNG, stats.NewRNG) must take a seed that dataflows from a
//     parameter — a Spec field, a TrialSeed, an operator flag — never a
//     bare literal or package variable, so no experiment can silently
//     decouple from the replication machinery.
//   - hotalloc: functions annotated //fairbench:hotpath, and everything
//     they reach inside the hot-path scope, must satisfy an AST-level
//     allocation model: no make, no append that can grow its backing
//     array, no interface boxing of non-pointer-shaped values, no
//     closures capturing enclosing locals, no string concatenation in
//     loops. Allocation on error-return and panic paths is exempt —
//     those abort the operation and never run at steady state.
//   - orderflow: map iteration order that escapes a function through a
//     return value or a struct field and reaches a writer in another
//     function — the flow fairlint's intra-function maporder rule
//     cannot see.
//
// Suppression reuses fairlint's grammar verbatim: `//fairlint:allow
// <rule> <reason>` on the offending line or the line above. Directives
// naming fairvet rules are policed here (unknown rule, missing reason,
// and suppressing nothing are findings); directives naming fairlint
// rules are left to fairlint, and vice versa.
package vet

import (
	"go/token"
	"sort"

	"fairbench/internal/lint"
)

// Rule identifiers, stable across releases; these are the names
// accepted by //fairlint:allow comments (fairlint treats them as
// foreign rules and defers their policy here).
const (
	RuleTaintReach = "taintreach"
	RuleSeedProv   = "seedprov"
	RuleHotAlloc   = "hotalloc"
	RuleOrderFlow  = "orderflow"
	// RuleAllow reports defective suppression comments naming fairvet
	// rules. Emitted by the allow machinery itself; not suppressible.
	RuleAllow = "allow"
)

// knownRules is the set of rule names this tool owns.
var knownRules = map[string]bool{
	RuleTaintReach: true,
	RuleSeedProv:   true,
	RuleHotAlloc:   true,
	RuleOrderFlow:  true,
}

// KnownRules returns fairvet's suppressible rule names in sorted order.
func KnownRules() []string {
	names := make([]string, 0, len(knownRules))
	for name := range knownRules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Finding reuses fairlint's finding shape (and its deterministic text
// and JSON renderers) so both tools' outputs compose.
type Finding = lint.Finding

// WriteText renders findings one per line; see lint.WriteText.
var WriteText = lint.WriteText

// WriteJSON renders findings as a deterministic JSON array; see
// lint.WriteJSON.
var WriteJSON = lint.WriteJSON

// Config selects what to analyze. Zero-value fields take the
// documented defaults.
type Config struct {
	// Dir is the root of the tree to analyze (the module root). Required.
	Dir string
	// Patterns are module-relative package patterns; default ./...
	Patterns []string
	// SimBoundary lists the package dirs whose functions must not
	// transitively reach nondeterminism (rule taintreach). Defaults to
	// DefaultSimBoundary.
	SimBoundary []string
	// HotpathScope lists the package dirs hot-path allocation checking
	// propagates through (rule hotalloc): an annotated function's
	// callees are checked when they live here. Defaults to
	// DefaultHotpathScope.
	HotpathScope []string
}

// DefaultSimBoundary is the determinism boundary: the packages whose
// code runs inside seeded, replayed simulations. It is fairlint's
// simconc set plus internal/workload, whose generators feed the
// simulated timeline packet by packet.
func DefaultSimBoundary() []string {
	return []string{
		"internal/sim",
		"internal/hw",
		"internal/measure",
		"internal/fault",
		"internal/nf",
		"internal/workload",
	}
}

// DefaultHotpathScope is where hotalloc findings propagate: the sim
// boundary plus internal/packet, whose parser is on the per-packet
// fast path of every deployment.
func DefaultHotpathScope() []string {
	return append(DefaultSimBoundary(), "internal/packet")
}

func (c *Config) fillDefaults() {
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.SimBoundary == nil {
		c.SimBoundary = DefaultSimBoundary()
	}
	if c.HotpathScope == nil {
		c.HotpathScope = DefaultHotpathScope()
	}
}

// Run loads every package matched by cfg.Patterns under cfg.Dir,
// builds the whole-program call graph, runs all analyzers, applies
// //fairlint:allow suppressions for fairvet-owned rules, and returns
// findings sorted by (file, line, col, rule, msg).
func Run(cfg Config) ([]Finding, error) {
	cfg.fillDefaults()
	pkgs, fset, err := lint.Load(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}

	g := buildGraph(&cfg, pkgs, fset)

	var findings []Finding
	report := func(pos token.Pos, rule, msg, hint string) {
		position := fset.Position(pos)
		findings = append(findings, Finding{
			File: lint.RelFile(cfg.Dir, position.Filename),
			Line: position.Line,
			Col:  position.Column,
			Rule: rule,
			Msg:  msg,
			Hint: hint,
		})
	}

	taintReach(g, report)
	seedProv(g, report)
	hotAlloc(g, report)
	orderFlow(g, report)

	var allows []lint.AllowDirective
	for _, pkg := range pkgs {
		allows = append(allows, lint.AllowDirectives(fset, cfg.Dir, pkg.Files)...)
	}
	findings = applyAllows(findings, allows)
	sortFindings(findings)
	return findings, nil
}

// applyAllows drops findings covered by a //fairlint:allow naming a
// fairvet rule on the same line or the line above, then appends
// RuleAllow findings for defective directives. Directives naming
// fairlint's rules are fairlint's to police and are skipped entirely;
// rules known to neither tool are reported by both.
func applyAllows(findings []Finding, allows []lint.AllowDirective) []Finding {
	lintRules := map[string]bool{}
	for _, r := range lint.KnownRules() {
		lintRules[r] = true
	}
	used := make([]bool, len(allows))
	idx := map[string]map[int]int{} // file -> line -> allow index
	for i, a := range allows {
		if !knownRules[a.Rule] {
			continue
		}
		byLine := idx[a.File]
		if byLine == nil {
			byLine = map[int]int{}
			idx[a.File] = byLine
		}
		byLine[a.Line] = i
	}

	kept := findings[:0]
	for _, f := range findings {
		matched := false
		if byLine := idx[f.File]; byLine != nil {
			for _, line := range []int{f.Line, f.Line - 1} {
				if i, ok := byLine[line]; ok && allows[i].Rule == f.Rule {
					used[i] = true
					matched = true
					break
				}
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for i, a := range allows {
		switch {
		case lintRules[a.Rule]:
			// fairlint's rule, fairlint's policy.
		case !knownRules[a.Rule]:
			kept = append(kept, Finding{
				File: a.File, Line: a.Line, Col: a.Col, Rule: RuleAllow,
				Msg:  "fairlint:allow names a rule unknown to fairvet: " + quoted(a.Rule),
				Hint: "fairvet rules: " + joinRules(),
			})
		case a.Reason == "":
			kept = append(kept, Finding{
				File: a.File, Line: a.Line, Col: a.Col, Rule: RuleAllow,
				Msg:  "fairlint:allow " + a.Rule + " has no reason",
				Hint: "state why the invariant may be broken here: //fairlint:allow " + a.Rule + " <reason>",
			})
		case !used[i]:
			kept = append(kept, Finding{
				File: a.File, Line: a.Line, Col: a.Col, Rule: RuleAllow,
				Msg:  "fairlint:allow " + a.Rule + " suppresses nothing",
				Hint: "delete the stale suppression",
			})
		}
	}
	return kept
}

func quoted(s string) string { return `"` + s + `"` }

func joinRules() string {
	out := ""
	for i, name := range KnownRules() {
		if i > 0 {
			out += ", "
		}
		out += name
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return a.Hint < b.Hint
	})
}
