package vet

import (
	"go/ast"
	"go/token"
	"strings"
)

// hotpathPrefix marks a function as a measured hot path. Like
// go:build and fairlint:allow directives, it must start the comment
// with no space after "//". The optional remainder is a free-form note
// ("fairbench case packet-parse") recorded for humans; the annotation
// itself is what arms rule hotalloc on the function and everything it
// reaches inside the hot-path scope.
const hotpathPrefix = "//fairbench:hotpath"

// ParseHotpath parses the text of a single line comment (including the
// leading "//"). It returns the free-form note and whether the comment
// is a fairbench:hotpath directive at all. "//fairbench:hotpathology"
// is not a directive: a word boundary is required after the marker.
func ParseHotpath(text string) (note string, ok bool) {
	rest, ok := strings.CutPrefix(text, hotpathPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && !isSpace(rest[0]) {
		return "", false
	}
	return strings.Join(strings.Fields(rest), " "), true
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

// hotpathLines returns, per file, the set of lines carrying a
// fairbench:hotpath directive. A function is annotated when a
// directive appears in its doc comment or on the line immediately
// above its declaration (the doc comment covers the idiomatic case;
// the line-above form mirrors fairlint:allow placement).
func hotpathLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := ParseHotpath(c.Text); ok {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotpathDecl reports whether decl carries a fairbench:hotpath
// annotation, given the file's directive line set.
func isHotpathDecl(fset *token.FileSet, lines map[int]bool, decl *ast.FuncDecl) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if _, ok := ParseHotpath(c.Text); ok {
				return true
			}
		}
	}
	return lines[fset.Position(decl.Pos()).Line-1]
}
