package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// orderFlow tracks map iteration order across function boundaries.
// fairlint's maporder rule is intra-function: it sees a map range that
// prints, and appends to a plain identifier that is printed later in
// the same function. It provably cannot see the two interprocedural
// shapes this analyzer covers:
//
//   - a function builds a slice inside a map range and returns it; a
//     caller (possibly in another package) writes it to an artifact —
//     the sink function contains no map range at all;
//   - a method appends map-ordered data to a struct field
//     (p.keys = append(p.keys, k) — a *selector* target, which the
//     intra-function escape check does not model) and a different
//     method writes the field.
//
// Per-function summaries record which return values and which struct
// fields carry map order; a fixpoint propagates them through chains of
// returns. Sinks are fmt print calls, io.WriteString, and Write /
// WriteString methods on io.Writer implementations. A sort of the
// carrier (sort.Strings and friends) before the sink clears the taint,
// mirroring fairlint. Only taint that crossed a function boundary is
// reported here — purely local flows stay fairlint's to report, so the
// two tools never double-report one defect.
func orderFlow(g *graph, report reportFunc) {
	of := &ofState{
		g:     g,
		ret:   map[ofRetKey]ofTaint{},
		field: map[ofFieldKey]ofTaint{},
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if of.analyze(n, nil) {
				changed = true
			}
		}
	}
	for _, n := range g.nodes {
		of.analyze(n, report)
	}
}

// ofTaint describes one map-order carrier: where the order was born and
// how it traveled.
type ofTaint struct {
	pos     token.Pos // the originating `for ... range m` statement
	site    string    // pos rendered as file:line (stable across runs)
	via     string    // first boundary crossed, for the hint; "" until crossed
	crossed bool      // has left the function that ranged the map
}

type ofRetKey struct {
	fn  *types.Func
	idx int
}

type ofFieldKey struct {
	typ   string // package-qualified named type, e.g. "demo.Report"
	field string
}

type ofState struct {
	g     *graph
	ret   map[ofRetKey]ofTaint
	field map[ofFieldKey]ofTaint
}

func (of *ofState) setRet(k ofRetKey, t ofTaint) bool {
	if _, ok := of.ret[k]; ok {
		return false
	}
	of.ret[k] = t
	return true
}

func (of *ofState) setField(k ofFieldKey, t ofTaint) bool {
	if _, ok := of.field[k]; ok {
		return false
	}
	of.field[k] = t
	return true
}

// analyze runs the local pass over one function: seeds taint from its
// map ranges, propagates through assignments and summary lookups,
// updates summaries (the returned bool reports summary growth), and —
// when report is non-nil — emits findings at sinks fed by taint that
// crossed a function boundary.
func (of *ofState) analyze(n *fnode, report reportFunc) bool {
	info := n.pkg.Info
	changed := false
	local := map[types.Object]ofTaint{}
	clearedField := map[ofFieldKey]bool{}

	var taintOf func(e ast.Expr) (ofTaint, bool)
	taintOf = func(e ast.Expr) (ofTaint, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := identObj(info, e); obj != nil {
				t, ok := local[obj]
				return t, ok
			}
		case *ast.SelectorExpr:
			if k, ok := of.fieldKeyOf(info, e); ok && !clearedField[k] {
				if t, tainted := of.field[k]; tainted {
					return cross(t, "via field "+k.typ+"."+k.field), true
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return taintOf(e.Args[0]) // conversion: []byte(s), MyList(s)
			}
			if builtinName(info, e) == "append" {
				for _, a := range e.Args {
					if t, ok := taintOf(a); ok {
						return t, true
					}
				}
				return ofTaint{}, false
			}
			callee := calleeFunc(info, e)
			if callee == nil {
				return ofTaint{}, false
			}
			if isOrderPropagator(callee) {
				for _, a := range e.Args {
					if t, ok := taintOf(a); ok {
						return t, true
					}
				}
				return ofTaint{}, false
			}
			if t, ok := of.ret[ofRetKey{origin(callee), 0}]; ok {
				return cross(t, "returned by "+calleeKey(of.g, callee)), true
			}
		case *ast.IndexExpr:
			return taintOf(e.X)
		}
		return ofTaint{}, false
	}

	assignTo := func(lhs ast.Expr, t ofTaint, tainted bool) {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			if obj := identObj(info, lhs); obj != nil {
				if tainted {
					local[obj] = t
				} else {
					delete(local, obj) // rebinding to clean data clears
				}
			}
		case *ast.SelectorExpr:
			if !tainted {
				return
			}
			if k, ok := of.fieldKeyOf(info, lhs); ok {
				if of.setField(k, t) {
					changed = true
				}
			}
		}
	}

	var stack []ast.Node
	inMapRange := func() (token.Pos, bool) {
		for i := len(stack) - 1; i >= 0; i-- {
			if r, ok := stack[i].(*ast.RangeStmt); ok {
				if _, isMap := info.TypeOf(r.X).Underlying().(*types.Map); isMap {
					return r.Pos(), true
				}
			}
		}
		return token.NoPos, false
	}

	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, nd)
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				if len(nd.Rhs) == len(nd.Lhs) {
					rhs := nd.Rhs[i]
					t, tainted := taintOf(rhs)
					// An append executed inside a map range builds its
					// target in iteration order, whatever is appended.
					if !tainted {
						if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(info, call) == "append" {
							if pos, in := inMapRange(); in {
								t = ofTaint{pos: pos, site: of.g.shortPos(pos)}
								tainted = true
							}
						}
					}
					assignTo(lhs, t, tainted)
				} else if len(nd.Rhs) == 1 {
					if call, ok := ast.Unparen(nd.Rhs[0]).(*ast.CallExpr); ok {
						if callee := calleeFunc(info, call); callee != nil {
							if t, ok := of.ret[ofRetKey{origin(callee), i}]; ok {
								assignTo(lhs, cross(t, "returned by "+calleeKey(of.g, callee)), true)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if name, pkgPath, ok := pkgCall(info, nd); ok && sortClears[pkgPath+"."+name] && len(nd.Args) > 0 {
				arg := ast.Unparen(nd.Args[0])
				if id, isIdent := arg.(*ast.Ident); isIdent {
					if obj := identObj(info, id); obj != nil {
						delete(local, obj)
					}
				} else if sel, isSel := arg.(*ast.SelectorExpr); isSel {
					if k, ok := of.fieldKeyOf(info, sel); ok {
						clearedField[k] = true
					}
				}
				return true
			}
			if report != nil {
				of.checkSink(info, nd, taintOf, report)
			}
		case *ast.ReturnStmt:
			for i, res := range nd.Results {
				if t, tainted := taintOf(res); tainted {
					if of.setRet(ofRetKey{origin(n.fn), i}, t) {
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}

// checkSink reports tainted arguments reaching a writer, but only when
// the taint crossed a function boundary (local flows are fairlint's).
func (of *ofState) checkSink(info *types.Info, call *ast.CallExpr, taintOf func(ast.Expr) (ofTaint, bool), report reportFunc) {
	if !isWriteSink(info, call) {
		return
	}
	for _, arg := range call.Args {
		t, tainted := taintOf(arg)
		if !tainted || !t.crossed {
			continue
		}
		report(arg.Pos(), RuleOrderFlow,
			"map iteration order reaches a writer across a function boundary ("+t.via+")",
			"order originates at the map range at "+t.site+
				"; sort the carrier before it escapes, or sort here before writing "+
				"(or add //fairlint:allow orderflow <reason>)")
		return // one finding per sink call is enough
	}
}

// cross marks a taint as having left its defining function, recording
// the first crossing for the hint.
func cross(t ofTaint, via string) ofTaint {
	t.crossed = true
	if t.via == "" {
		t.via = via
	}
	return t
}

// fieldKeyOf resolves x.f to (qualified type, field) when f is a
// struct field of a named type.
func (of *ofState) fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) (ofFieldKey, bool) {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return ofFieldKey{}, false
	}
	t := info.TypeOf(sel.X)
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ofFieldKey{}, false
	}
	typ := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil {
		typ = pkg.Name() + "." + typ
	}
	return ofFieldKey{typ: typ, field: v.Name()}, true
}

// calleeKey renders a callee for hints, preferring its graph key.
func calleeKey(g *graph, fn *types.Func) string {
	if n := g.byFn[origin(fn)]; n != nil {
		return n.key
	}
	return fn.Name()
}

// isOrderPropagator lists pure functions whose output preserves the
// element order of a tainted input: joining and formatting.
func isOrderPropagator(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "strings":
		return fn.Name() == "Join"
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Sprint") || strings.HasPrefix(fn.Name(), "Append")
	}
	return false
}

// sortClears are the calls that fix a carrier's order, keyed by
// "pkgpath.Func" (mirrors fairlint's sorted-after set).
var sortClears = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// fmt print functions that write rather than return.
var printSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// isWriteSink reports whether call emits bytes to an artifact: a fmt
// print call, io.WriteString, or a Write/WriteString method on an
// io.Writer implementation.
func isWriteSink(info *types.Info, call *ast.CallExpr) bool {
	if name, pkgPath, ok := pkgCall(info, call); ok {
		if pkgPath == "fmt" && printSinks[name] {
			return true
		}
		if pkgPath == "io" && name == "WriteString" {
			return true
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if callee.Name() != "Write" && callee.Name() != "WriteString" {
		return false
	}
	return types.Implements(sig.Recv().Type(), ioWriterIface) ||
		isIface(sig.Recv().Type())
}

// pkgCall decomposes a package-level function call into (name, package
// path).
func pkgCall(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return "", "", false
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "", false
	}
	return callee.Name(), callee.Pkg().Path(), true
}

// ioWriterIface is io.Writer built structurally, so implementation
// checks need no import of io's type data at analysis time.
var ioWriterIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()
