package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotAlloc enforces allocation discipline on measured hot paths. A
// function annotated //fairbench:hotpath, and everything it reaches
// through the call graph inside cfg.HotpathScope, must not allocate at
// steady state: the zero-alloc numbers in BENCH_baseline.json are load-
// bearing (an allocation on the per-packet path shows up as noise in
// every comparison the paper's methodology depends on), so the gate
// runs at vet time instead of waiting for a benchmark regression.
//
// The model is AST-level and intentionally conservative about what it
// flags (each pattern below allocates or may allocate) and about what
// it exempts: any expression lexically inside a `return` whose last
// value is a non-nil error, or inside the arguments of panic, sits on
// an abort path that never runs at steady state and is skipped.
//
//   - make of anything
//   - append, unless the target was rebound to an array-backed
//     reslice (t = a[:0] with a array-typed) in the same function —
//     the idiom internal/packet uses for its fixed-capacity scratch
//   - boxing a non-pointer-shaped value into an interface (pointer,
//     chan, func, map, and unsafe.Pointer fit in the iface word)
//   - a function literal that captures an enclosing local
//   - string concatenation inside a loop
func hotAlloc(g *graph, report reportFunc) {
	// Hot set: BFS from annotated roots; propagation continues only
	// through packages in HotpathScope so annotating a command's bench
	// harness does not drag fmt into the gate.
	rootOf := map[*fnode]*fnode{}
	var queue []*fnode
	for _, n := range g.nodes { // sorted, so BFS tie-breaks are stable
		if n.hot {
			rootOf[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.out {
			if _, seen := rootOf[c]; !seen && inDirs(c.rel, g.cfg.HotpathScope) {
				rootOf[c] = rootOf[n]
				queue = append(queue, c)
			}
		}
	}
	for _, n := range g.nodes {
		if root, hot := rootOf[n]; hot {
			checkAllocs(g, n, root, report)
		}
	}
}

// checkAllocs walks one hot function's body with an explicit ancestor
// stack (ast.Inspect's post-order nil callback pops it) so every site
// can consult its enclosing statements for exemptions.
func checkAllocs(g *graph, n *fnode, root *fnode, report reportFunc) {
	info := n.pkg.Info
	via := "on hot path from " + root.key
	if root == n {
		via = "in a //fairbench:hotpath function"
	}
	hint := func(fix string) string {
		return fix + " (" + via + "; or add //fairlint:allow hotalloc <reason>)"
	}
	bounded := boundedTargets(info, n.decl)

	var stack []ast.Node
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, nd)
		if onAbortPath(info, stack) {
			return true
		}
		switch nd := nd.(type) {
		case *ast.CallExpr:
			switch builtinName(info, nd) {
			case "make":
				report(nd.Pos(), RuleHotAlloc,
					"make allocates on the hot path",
					hint("hoist the allocation into construction/reset"))
			case "append":
				if len(nd.Args) > 0 && !bounded[exprKey(nd.Args[0])] && !isScratchReslice(nd.Args[0]) {
					report(nd.Pos(), RuleHotAlloc,
						"append may grow its backing array on the hot path",
						hint("preallocate, or rebind the target to an array-backed reslice (t = a[:0])"))
				}
			case "":
				checkCallBoxing(info, nd, report, hint)
			}
		case *ast.FuncLit:
			if cap := captured(info, n.decl, nd); cap != "" {
				report(nd.Pos(), RuleHotAlloc,
					"function literal captures "+cap+" and allocates on the hot path",
					hint("pass the value as a parameter or use a method value on a preallocated receiver"))
			}
		case *ast.BinaryExpr:
			if nd.Op == token.ADD && isString(info.TypeOf(nd)) && inLoop(stack) {
				report(nd.Pos(), RuleHotAlloc,
					"string concatenation in a loop allocates on the hot path",
					hint("use a preallocated []byte scratch buffer"))
			}
		case *ast.AssignStmt:
			if nd.Tok == token.ADD_ASSIGN && len(nd.Lhs) == 1 &&
				isString(info.TypeOf(nd.Lhs[0])) && inLoop(stack) {
				report(nd.Pos(), RuleHotAlloc,
					"string concatenation in a loop allocates on the hot path",
					hint("use a preallocated []byte scratch buffer"))
			}
		}
		return true
	})
}

// checkCallBoxing flags arguments boxed into interface parameters and
// single-argument interface conversions.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, report reportFunc, hint func(string) string) {
	flag := func(arg ast.Expr, at types.Type) {
		report(arg.Pos(), RuleHotAlloc,
			"boxing "+at.String()+" into an interface allocates on the hot path",
			hint("pass a pointer, or keep the value out of interface-typed slots"))
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			at := info.TypeOf(call.Args[0])
			if isIface(tv.Type) && boxes(at) {
				flag(call.Args[0], at)
			}
		}
		return
	}
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt, ok := paramType(sig, i, call.Ellipsis.IsValid())
		if !ok || !isIface(pt) {
			continue
		}
		if at := info.TypeOf(arg); boxes(at) {
			flag(arg, at)
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: anything but a pointer-shaped value or an existing
// interface does.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// builtinName returns "make"/"append"/... when call invokes a builtin,
// else "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// boundedTargets collects append targets proven bounded inside decl:
// every expression assigned from an array-backed reslice a[:0], the
// fixed-capacity scratch idiom (append then writes through the array;
// it cannot grow past the array without the reslice being rebound,
// which this function would also see).
func boundedTargets(info *types.Info, decl *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(decl, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
			if !ok || sl.Low != nil || !isZeroLit(sl.High) {
				continue
			}
			t := info.TypeOf(sl.X)
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if t == nil {
				continue
			}
			if _, isArr := t.Underlying().(*types.Array); isArr {
				if k := exprKey(as.Lhs[i]); k != "" {
					out[k] = true
				}
			}
		}
		return true
	})
	return out
}

// isScratchReslice recognizes append's scratch-reuse idiom: the first
// argument is an s[:0] reslice, so the append writes into s's existing
// backing array and only grows past the historical high-water mark —
// amortized zero at steady state.
func isScratchReslice(e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	return ok && sl.Low == nil && isZeroLit(sl.High)
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// exprKey renders an ident/selector chain ("p.Decoded") for structural
// comparison; "" for shapes the bounded-append proof does not model.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// captured returns the name of the first enclosing local a function
// literal references, or "" when the literal is capture-free (the
// compiler can keep those static).
func captured(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing declaration but
		// outside this literal.
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

// inLoop reports whether the innermost frames of the ancestor stack sit
// inside a for/range statement of the same function (a nested FuncLit
// resets the search: its body is a fresh frame).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// onAbortPath reports whether the current node (stack top) sits inside
// a `return` whose last value is a non-nil error, or inside panic's
// arguments. Those paths abort the operation — the allocation never
// happens at steady state, so fmt.Errorf detail on them stays free.
func onAbortPath(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ReturnStmt:
			if len(anc.Results) == 0 {
				return false
			}
			last := anc.Results[len(anc.Results)-1]
			if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
				return false
			}
			return implementsError(info.TypeOf(last))
		case *ast.CallExpr:
			if id, ok := ast.Unparen(anc.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
