// Corpus for the hotalloc rule: a //fairbench:hotpath function and
// everything it reaches inside the hot-path scope must not allocate at
// steady state. The golden runs with HotpathScope {"."} so propagation
// stays inside this package.
package hotcase

import "fmt"

// Sink models an interface-typed slot a hot path might feed.
type Sink interface{ Accept(v any) }

// Ring is the hot object: a fixed scratch array plus slices that the
// positive cases below mismanage.
type Ring struct {
	buf     [8]int
	cur     []int
	scratch []byte
	log     []int
	tmp     []int
}

// Step is the annotated root; helpers it calls are checked too.
//
//fairbench:hotpath corpus fast path
func (r *Ring) Step(s Sink, n int, parts []string, xs []byte) string {
	// Positive: boxing an int into an interface slot allocates.
	s.Accept(n)
	// Negative: pointer-shaped values fit in the interface word.
	s.Accept(&r.buf)
	// Negative: bounded append — the target was rebound to an
	// array-backed reslice in this function.
	r.cur = r.buf[:0]
	r.cur = append(r.cur, n)
	// Negative: scratch-reuse append writes into the existing backing.
	r.scratch = append(r.scratch[:0], xs...)
	// Positive: this append can grow its backing array.
	r.log = append(r.log, n)
	// Positive: the closure captures n from the enclosing scope.
	f := func() int { return n }
	// Negative: a capture-free literal stays static.
	g := func(x int) int { return x }
	r.tmp[0] = f() + g(n)
	if err := r.check(n); err != nil {
		return "bad"
	}
	r.grow()
	return r.label(parts)
}

// grow is hot by propagation from Step.
func (r *Ring) grow() {
	// Positive: make on the hot path.
	r.tmp = make([]int, 8)
	// Suppressed positive.
	//fairlint:allow hotalloc corpus demo of an amortized warm-up allocation
	r.log = append(r.log, len(r.tmp))
}

// check shows the abort-path exemption: fmt.Errorf boxes its varargs,
// but only on a path that returns a non-nil error.
func (r *Ring) check(n int) error {
	if n < 0 {
		return fmt.Errorf("hotcase: negative count %d", n)
	}
	return nil
}

// label concatenates strings in a loop — an allocation per iteration.
func (r *Ring) label(parts []string) string {
	out := ""
	for _, p := range parts {
		// Positive: string concatenation inside a loop.
		out += p
	}
	return out
}

// Cold is not annotated and not reached from any hot root: its make is
// not a finding.
func Cold() []int { return make([]int, 4) }
