// Corpus for the orderflow rule: map iteration order that crosses a
// function boundary — through a return value or a struct field — and
// then reaches a writer. fairlint's intra-function maporder rule
// cannot see any of the positives here from the sink side.
package ordercase

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Keys builds a slice in map iteration order and returns it: the
// carrier every positive below consumes.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys fixes the order before returning: consuming it is fine.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Positive: the unsorted return value reaches a writer here, a
// function with no map range in sight.
func Dump(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, Keys(m))
}

// Negative: the producer sorted.
func DumpSorted(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, SortedKeys(m))
}

// Negative: the sink sorts the carrier before writing.
func DumpSortedHere(w io.Writer, m map[string]int) {
	ks := Keys(m)
	sort.Strings(ks)
	fmt.Fprintln(w, ks)
}

// Report carries map order in a struct field. fairlint's escape check
// only models appends to plain identifiers, so the selector append in
// Collect is provably invisible to it.
type Report struct {
	names []string
}

// Collect stores map iteration order in r.names.
func (r *Report) Collect(m map[string]int) {
	for k := range m {
		r.names = append(r.names, k)
	}
}

// Positive: a different method writes the field.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintln(w, r.names)
}

// Positive: the order survives strings.Join, a []byte conversion, and
// an io.Writer method call.
func (r *Report) Raw(w io.Writer) {
	w.Write([]byte(strings.Join(r.names, ",")))
}

// Negative: sorting the field before the write clears it locally.
func (r *Report) WriteSorted(w io.Writer) {
	sort.Strings(r.names)
	fmt.Fprintln(w, r.names)
}

// Suppressed positive.
func (r *Report) WriteUnordered(w io.Writer) {
	//fairlint:allow orderflow corpus demo output whose order is irrelevant
	fmt.Fprintln(w, r.names)
}
