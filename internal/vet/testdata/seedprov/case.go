// Corpus for the seedprov rule: every RNG construction must be seeded
// by a value that dataflows from a parameter, a spec field, or an
// operator flag. Hardcoded seeds reproduce — and silently decouple the
// experiment from the replication machinery.
package seedcase

import (
	"flag"
	"math/rand"
)

var pkgSeed int64 = 99

const defaultSeed = 7

// Positive: package-level initializer, no caller can influence it.
var globalSrc = rand.NewSource(1)

// Positive: bare literal seed.
func Literal() *rand.Rand { return rand.New(rand.NewSource(42)) }

// Positive: named constant is still a hardcoded seed.
func Const() rand.Source { return rand.NewSource(defaultSeed) }

// Positive: package variable, fixed at init.
func PkgVar() rand.Source { return rand.NewSource(pkgSeed) }

// Positive: a literal laundered through a local and a conversion.
func Local() rand.Source {
	seed := int64(1234)
	return rand.NewSource(seed)
}

// Negative: the seed is the caller's.
func FromParam(seed int64) rand.Source { return rand.NewSource(seed) }

// Negative: spec-field provenance.
type Spec struct{ Seed int64 }

func FromSpec(s Spec) rand.Source { return rand.NewSource(s.Seed) }

// Negative: operator flags are valid roots.
func FromFlag() rand.Source {
	seed := flag.Int64("seed", 1, "trial seed")
	return rand.NewSource(*seed)
}

// Negative: mixing a parameter with literals is derivation, not
// hardcoding.
func Mixed(seed int64) rand.Source { return rand.NewSource(seed ^ 0x9e3779b9) }

// Suppressed positive.
func Suppressed() rand.Source {
	//fairlint:allow seedprov a fixed corpus seed is this demo's identity
	return rand.NewSource(5)
}
