// The laundering package: it sits OUTSIDE the sim boundary (and inside
// fairlint's wallclock allowlist), so per-file analysis sees nothing
// wrong with any function here. Each wrapper hands nondeterminism to
// whoever calls it.
package runner

import (
	"math/rand"
	"time"
)

// Now launders the wall clock behind an innocent float.
func Now() float64 { return float64(time.Now().UnixNano()) }

// Draw launders the global math/rand generator.
func Draw() int { return rand.Int() }

// Spawn launders a goroutine spawn behind a callback.
func Spawn(fn func()) { go fn() }

// Scale is deterministic: calling it from the boundary is fine.
func Scale(t float64) float64 { return t * 2 }
