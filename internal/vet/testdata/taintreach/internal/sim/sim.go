// Corpus for the taintreach rule: this package dir mirrors the sim
// boundary. Every function here that transitively reaches the wall
// clock, the global RNG, or a goroutine spawn — even through the
// wrappers in internal/runner, which fairlint cannot connect to this
// file — is a finding carrying the full call chain.
package sim

import "taintcorpus/internal/runner"

// Stamp launders time.Now through runner.Now: fairlint's wallclock
// rule is clean on both files, fairvet flags this one.
func Stamp() float64 { return runner.Now() }

// Jitter launders the global RNG the same way.
func Jitter() int { return runner.Draw() }

// Kick reaches a goroutine spawn two hops away.
func Kick() { runner.Spawn(func() {}) }

// Deep reaches the clock through a chain inside the boundary: only
// Stamp (the frontier) is reported, not this caller.
func Deep() float64 { return Stamp() + 1 }

// Step is deterministic end to end: no finding.
func Step(t float64) float64 { return runner.Scale(t) }

// Bridge is a suppressed positive: the allow names the rule and a
// reason, so it produces no finding (and the allow is "used").
//
//fairlint:allow taintreach corpus demo of a documented virtual-time bridge
func Bridge() float64 { return runner.Now() }
