module taintcorpus

go 1.22
