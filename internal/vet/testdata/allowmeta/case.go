// Corpus for fairvet's allow meta-rule: directives naming fairvet
// rules must carry a reason and suppress something; rules unknown to
// both tools are reported; fairlint's rules are fairlint's to police.
package allowmetacase

// Unknown to fairlint AND fairvet: both tools report it.
//
//fairlint:allow sparkle this rule exists nowhere
func unknownToBoth() {}

// Fairvet rule without a reason.
//
//fairlint:allow hotalloc
func missingReason() {}

// Fairvet rule with a reason that suppresses nothing.
//
//fairlint:allow seedprov corpus demo with nothing underneath
func unused() {}

// Fairlint rule: deferred by fairvet even though it is unused here
// (fairlint reports it; fairvet must not).
//
//fairlint:allow wallclock operator logging that never enters artifacts
func lintRuleDeferred() {}
