package vet

import (
	"strings"
	"testing"
)

// FuzzParseHotpath hammers the //fairbench:hotpath directive parser:
// it must never panic, must only accept exact-prefix directives with a
// word boundary after the marker, and must return a space-normalized
// note.
func FuzzParseHotpath(f *testing.F) {
	f.Add("//fairbench:hotpath")
	f.Add("//fairbench:hotpath fairbench case packet-parse")
	f.Add("//fairbench:hotpath\ttabbed note")
	f.Add("//fairbench:hotpathology not a directive")
	f.Add("// fairbench:hotpath leading space")
	f.Add("//fairbench:hotpath   many    spaces   ")
	f.Add("/* block */")
	f.Add("//fairbench:hotpath \x00 nul")
	f.Add("//fairbench:hotpath é üñí note")
	f.Fuzz(func(t *testing.T, text string) {
		note, ok := ParseHotpath(text)
		if !ok {
			if note != "" {
				t.Fatalf("rejected input returned data: note=%q", note)
			}
			return
		}
		if !strings.HasPrefix(text, hotpathPrefix) {
			t.Fatalf("accepted text without directive prefix: %q", text)
		}
		if rest := strings.TrimPrefix(text, hotpathPrefix); rest != "" && !isSpace(rest[0]) {
			t.Fatalf("accepted text without word boundary after marker: %q", text)
		}
		if note != strings.Join(strings.Fields(note), " ") {
			t.Fatalf("note not space-normalized: %q", note)
		}
	})
}
