package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fairbench/internal/lint"
)

// source is one direct nondeterminism source inside a function body.
type source struct {
	kind string // "wallclock", "globalrand", "goroutine"
	desc string // e.g. "time.Now", "rand.Intn", "go statement"
	pos  token.Pos
}

// fnode is one declared module function (or method) in the call graph.
// Function literals have no node of their own: a closure's body is
// attributed to the function that lexically declares it, so whatever
// the closure does is charged where the closure is written — the
// actionable position — rather than at an unknowable dynamic call site.
type fnode struct {
	key     string // deterministic display/sort key, e.g. "internal/sim.(*Sim).At"
	rel     string // module-relative package dir
	pkg     *lint.Package
	fn      *types.Func
	decl    *ast.FuncDecl
	out     []*fnode // callees, deduped, sorted by key
	outSet  map[*fnode]bool
	hot     bool // carries a //fairbench:hotpath annotation
	sources []source
}

func (n *fnode) addEdge(to *fnode) {
	if to == nil || to == n || n.outSet[to] {
		return
	}
	n.outSet[to] = true
	n.out = append(n.out, to)
}

// methodEntry indexes one concrete method for class-hierarchy dispatch
// resolution.
type methodEntry struct {
	rel   string
	named *types.Named
	fn    *types.Func
}

// graph is the whole-program call graph plus the indexes the analyzers
// share.
type graph struct {
	cfg     *Config
	fset    *token.FileSet
	pkgs    []*lint.Package
	nodes   []*fnode // sorted by key
	byFn    map[*types.Func]*fnode
	methods []methodEntry
	// closure maps a package rel to the set of module rels it imports,
	// transitively, including itself. Dynamic-dispatch targets are
	// pruned to the caller's closure: a concrete type the caller's
	// package cannot name is exceedingly unlikely to be its dynamic
	// callee, and admitting all implementers drowns the boundary in
	// phantom paths (see DESIGN.md §11 for the precision argument).
	closure map[string]map[string]bool
}

// buildGraph constructs nodes for every declared function with a body,
// then adds edges: static calls, interface-method calls resolved by
// pruned CHA, methods made callable by boxing a concrete value into an
// interface argument, and address-taken function references (a
// function passed as a value is assumed called by whoever takes it).
// Calls through plain function-typed values add no edges — the closure
// attribution rule above covers the common callback shapes.
func buildGraph(cfg *Config, pkgs []*lint.Package, fset *token.FileSet) *graph {
	g := &graph{
		cfg:     cfg,
		fset:    fset,
		pkgs:    pkgs,
		byFn:    map[*types.Func]*fnode{},
		closure: map[string]map[string]bool{},
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			hotLines := hotpathLines(fset, f)
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				key := declName(fn)
				if pkg.Rel != "." {
					key = pkg.Rel + "." + key
				}
				n := &fnode{
					key:    key,
					rel:    pkg.Rel,
					pkg:    pkg,
					fn:     fn,
					decl:   decl,
					outSet: map[*fnode]bool{},
					hot:    isHotpathDecl(fset, hotLines, decl),
				}
				g.byFn[fn] = n
				g.nodes = append(g.nodes, n)
			}
		}
		g.indexMethods(pkg)
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key < g.nodes[j].key })
	sort.Slice(g.methods, func(i, j int) bool {
		a, b := g.methods[i], g.methods[j]
		if a.rel != b.rel {
			return a.rel < b.rel
		}
		if a.named.Obj().Name() != b.named.Obj().Name() {
			return a.named.Obj().Name() < b.named.Obj().Name()
		}
		return a.fn.Name() < b.fn.Name()
	})
	g.buildClosure()

	for _, n := range g.nodes {
		g.scanBody(n)
		sort.Slice(n.out, func(i, j int) bool { return n.out[i].key < n.out[j].key })
		sort.Slice(n.sources, func(i, j int) bool { return n.sources[i].pos < n.sources[j].pos })
	}
	return g
}

// declName renders a function's display name without the package
// prefix: "At" for a function, "(*Sim).At" for a method.
func declName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		ptr = "*"
		t = p.Elem()
	}
	name := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	return "(" + ptr + name + ")." + fn.Name()
}

// indexMethods records every concrete method of every package-scope
// named type, for dynamic-dispatch resolution.
func (g *graph) indexMethods(pkg *lint.Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			g.methods = append(g.methods, methodEntry{rel: pkg.Rel, named: named, fn: named.Method(i)})
		}
	}
}

// buildClosure computes each package's transitive module-import set.
func (g *graph) buildClosure() {
	byPath := map[string]string{} // import path -> rel
	direct := map[string][]string{}
	for _, pkg := range g.pkgs {
		byPath[pkg.ImportPath] = pkg.Rel
	}
	for _, pkg := range g.pkgs {
		seen := map[string]bool{}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if rel, ok := byPath[path]; ok && !seen[rel] {
					seen[rel] = true
					direct[pkg.Rel] = append(direct[pkg.Rel], rel)
				}
			}
		}
	}
	var visit func(rel string, set map[string]bool)
	visit = func(rel string, set map[string]bool) {
		if set[rel] {
			return
		}
		set[rel] = true
		for _, dep := range direct[rel] {
			visit(dep, set)
		}
	}
	for _, pkg := range g.pkgs {
		set := map[string]bool{}
		visit(pkg.Rel, set)
		g.closure[pkg.Rel] = set
	}
}

// wallclockFuncs mirrors fairlint's wallclock set: the time functions
// that read or wait on the wall clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randExemptFuncs mirrors fairlint's globalrand exemptions: math/rand
// package functions that do not touch the shared global generator.
var randExemptFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// scanBody walks one declaration (including nested function literals)
// and records direct taint sources, call edges, dispatch edges, and
// address-taken edges.
func (g *graph) scanBody(n *fnode) {
	info := n.pkg.Info
	// Idents consumed as the Fun of a call; references outside this set
	// are address-taken uses.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(n.decl, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
		}
		return true
	})

	ast.Inspect(n.decl, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.GoStmt:
			n.sources = append(n.sources, source{
				kind: "goroutine", desc: "go statement", pos: nd.Pos(),
			})
		case *ast.CallExpr:
			g.callEdges(n, nd)
		case *ast.Ident:
			if calleeIdents[nd] {
				return true
			}
			if fn, ok := info.Uses[nd].(*types.Func); ok {
				n.addEdge(g.byFn[origin(fn)])
			}
		}
		return true
	})
}

func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// callEdges resolves one call expression into graph edges and direct
// taint sources.
func (g *graph) callEdges(n *fnode, call *ast.CallExpr) {
	info := n.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. An interface conversion makes the operand's
		// matching methods dynamically callable.
		if len(call.Args) == 1 {
			g.boxingEdges(n, tv.Type, info.TypeOf(call.Args[0]))
		}
		return
	}

	if callee := calleeFunc(info, call); callee != nil {
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				g.dispatchEdges(n, iface, callee.Name())
			} else {
				n.addEdge(g.byFn[origin(callee)])
			}
		} else {
			if target := g.byFn[origin(callee)]; target != nil {
				n.addEdge(target)
			} else {
				g.externalTaint(n, callee, call)
			}
		}
	}

	// Boxing a concrete value into an interface parameter makes the
	// value's matching methods callable by the callee.
	if sig, ok := typeAsSignature(info.TypeOf(call.Fun)); ok {
		for i, arg := range call.Args {
			pt, ok := paramType(sig, i, call.Ellipsis.IsValid())
			if !ok {
				continue
			}
			if _, isIface := pt.Underlying().(*types.Interface); isIface {
				g.boxingEdges(n, pt, info.TypeOf(arg))
			}
		}
	}
}

// externalTaint checks a call that leaves the module against the
// nondeterminism primitives.
func (g *graph) externalTaint(n *fnode, callee *types.Func, call *ast.CallExpr) {
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // methods on vetted instances (e.g. *rand.Rand) are fine
	}
	switch {
	case pkg.Path() == "time" && wallclockFuncs[callee.Name()]:
		n.sources = append(n.sources, source{
			kind: "wallclock", desc: "time." + callee.Name(), pos: call.Pos(),
		})
	case isRandPath(pkg.Path()) && !randExemptFuncs[callee.Name()]:
		n.sources = append(n.sources, source{
			kind: "globalrand", desc: "rand." + callee.Name(), pos: call.Pos(),
		})
	}
}

// dispatchEdges links an interface-method call to every concrete
// module implementation visible from the caller's import closure.
func (g *graph) dispatchEdges(n *fnode, iface *types.Interface, name string) {
	visible := g.closure[n.rel]
	for _, m := range g.methods {
		if m.fn.Name() != name || !visible[m.rel] {
			continue
		}
		if implementsEither(m.named, iface) {
			n.addEdge(g.byFn[origin(m.fn)])
		}
	}
}

// boxingEdges links a caller to the methods of a concrete type it
// boxes into an interface: once boxed, any of the interface's methods
// may be invoked on it by code the graph cannot see.
func (g *graph) boxingEdges(n *fnode, ifaceType, argType types.Type) {
	if argType == nil {
		return
	}
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return
	}
	if _, already := argType.Underlying().(*types.Interface); already {
		return // interface-to-interface: no new concrete methods exposed
	}
	if !implementsEither(argType, iface) {
		return
	}
	for i := 0; i < iface.NumMethods(); i++ {
		want := iface.Method(i).Name()
		obj, _, _ := types.LookupFieldOrMethod(argType, true, n.fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok {
			n.addEdge(g.byFn[origin(m)])
		}
	}
}

// implementsEither reports whether t or *t satisfies iface.
func implementsEither(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the static type of argument i of a call to sig,
// expanding variadics. ok is false when the argument corresponds to a
// `slice...` spread (no boxing happens there).
func paramType(sig *types.Signature, i int, spread bool) (types.Type, bool) {
	params := sig.Params()
	if sig.Variadic() {
		last := params.Len() - 1
		if i >= last {
			if spread {
				return nil, false
			}
			s, ok := params.At(last).Type().(*types.Slice)
			if !ok {
				return nil, false
			}
			return s.Elem(), true
		}
		return params.At(i).Type(), true
	}
	if i >= params.Len() {
		return nil, false
	}
	return params.At(i).Type(), true
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtin, dynamic, or conversion calls (mirrors fairlint's helper).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// inDirs reports whether module-relative package dir rel is one of (or
// nested under one of) the listed dirs.
func inDirs(rel string, dirs []string) bool {
	for _, d := range dirs {
		d = strings.TrimSuffix(strings.TrimPrefix(d, "./"), "/")
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// shortPos renders a position as "file:line" relative to the analyzed
// root, for call-chain hints.
func (g *graph) shortPos(pos token.Pos) string {
	p := g.fset.Position(pos)
	return lint.RelFile(g.cfg.Dir, p.Filename) + ":" + itoa(p.Line)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
