package vet

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fairbench/internal/lint"
)

// goldenCases lists each rule's corpus with the config it runs under.
// hotalloc pins HotpathScope to the corpus package itself so
// propagation from the annotated root is exercised.
var goldenCases = []struct {
	name string
	cfg  Config
}{
	{"taintreach", Config{}},
	{"seedprov", Config{}},
	{"hotalloc", Config{HotpathScope: []string{"."}}},
	{"orderflow", Config{}},
	{"allowmeta", Config{}},
}

// TestAnalyzerGoldens runs each rule's testdata corpus (positive,
// negative, and suppressed cases) and asserts the exact findings —
// positions, messages, and fix hints — against the expect.txt golden.
func TestAnalyzerGoldens(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join("testdata", c.name)
			cfg := c.cfg
			cfg.Dir = dir
			findings, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteText(&buf, findings); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldensCoverEveryRule guards the corpus itself: each analyzer
// must have at least one positive case, so a rule silently going dead
// fails here rather than in production.
func TestGoldensCoverEveryRule(t *testing.T) {
	seen := map[string]bool{}
	dirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		data, err := os.ReadFile(filepath.Join("testdata", d.Name(), "expect.txt"))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) >= 2 {
				seen[parts[1]] = true
			}
		}
	}
	for _, rule := range append(KnownRules(), RuleAllow) {
		if !seen[rule] {
			t.Errorf("no golden case exercises rule %s", rule)
		}
	}
}

// TestWrapperLaunderingInvisibleToFairlint is the tentpole's reason to
// exist, pinned as a test: on the taintreach corpus, fairlint reports
// NOTHING in the sim boundary package (the wall clock sits in
// internal/runner, which its wallclock rule allowlists, and per-file
// analysis cannot connect the wrapper to its boundary caller), while
// fairvet reports every laundered source with a call chain.
func TestWrapperLaunderingInvisibleToFairlint(t *testing.T) {
	dir := filepath.Join("testdata", "taintreach")

	lintFindings, err := lint.Run(lint.Config{Dir: dir})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range lintFindings {
		if strings.HasPrefix(f.File, "internal/sim/") {
			t.Errorf("fairlint unexpectedly sees the boundary violation (corpus no longer proves the loophole): %s", f)
		}
	}

	vetFindings, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatalf("vet.Run: %v", err)
	}
	kinds := map[string]bool{}
	for _, f := range vetFindings {
		if f.Rule == RuleTaintReach && strings.HasPrefix(f.File, "internal/sim/") {
			switch {
			case strings.Contains(f.Msg, "wall clock"):
				kinds["wallclock"] = true
			case strings.Contains(f.Msg, "math/rand"):
				kinds["globalrand"] = true
			case strings.Contains(f.Msg, "goroutine"):
				kinds["goroutine"] = true
			}
			if !strings.Contains(f.Hint, "call chain: ") {
				t.Errorf("taintreach finding lacks a call chain: %s", f)
			}
		}
	}
	for _, k := range []string{"wallclock", "globalrand", "goroutine"} {
		if !kinds[k] {
			t.Errorf("fairvet missed the laundered %s source", k)
		}
	}
}

// TestFieldEscapeInvisibleToFairlint pins the second loophole: a map
// range appending to a struct field (a selector, not a plain
// identifier) escapes fairlint's maporder rule entirely, while fairvet
// tracks it to the writer in another method.
func TestFieldEscapeInvisibleToFairlint(t *testing.T) {
	dir := filepath.Join("testdata", "orderflow")
	src, err := os.ReadFile(filepath.Join(dir, "case.go"))
	if err != nil {
		t.Fatal(err)
	}
	appendLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "r.names = append(") {
			appendLine = i + 1
			break
		}
	}
	if appendLine == 0 {
		t.Fatal("corpus lost its selector-append case")
	}

	lintFindings, err := lint.Run(lint.Config{Dir: dir})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range lintFindings {
		if f.Line == appendLine || strings.Contains(f.Msg, "names") {
			t.Errorf("fairlint unexpectedly sees the field escape (corpus no longer proves the loophole): %s", f)
		}
	}

	vetFindings, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatalf("vet.Run: %v", err)
	}
	sawField := false
	for _, f := range vetFindings {
		if f.Rule == RuleOrderFlow && strings.Contains(f.Msg, "via field") {
			sawField = true
		}
	}
	if !sawField {
		t.Error("fairvet missed the field-carried order escape")
	}
}

// TestSuppressedFindingsStaySuppressed pins the allow semantics for
// fairvet's rules: every corpus contains a suppressed positive and none
// may resurface, nor may the suppression itself be flagged.
func TestSuppressedFindingsStaySuppressed(t *testing.T) {
	for _, c := range goldenCases {
		if c.name == "allowmeta" {
			continue // its RuleAllow findings are the point
		}
		cfg := c.cfg
		cfg.Dir = filepath.Join("testdata", c.name)
		findings, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			if f.Rule == RuleAllow {
				t.Errorf("%s corpus: allow machinery flagged a working suppression: %s", c.name, f)
			}
		}
	}
}

// TestForeignRulesStayInSync pins the cross-tool deference protocol:
// the rule names fairlint defers to fairvet must be exactly the rules
// fairvet owns, and the two rule sets must never collide.
func TestForeignRulesStayInSync(t *testing.T) {
	if got, want := lint.ForeignRules(), KnownRules(); !reflect.DeepEqual(got, want) {
		t.Errorf("lint.ForeignRules() = %v, want fairvet's rules %v", got, want)
	}
	mine := map[string]bool{}
	for _, r := range KnownRules() {
		mine[r] = true
	}
	for _, r := range lint.KnownRules() {
		if mine[r] {
			t.Errorf("rule name %q is claimed by both fairlint and fairvet", r)
		}
	}
}

func TestParseHotpath(t *testing.T) {
	cases := []struct {
		text, note string
		ok         bool
	}{
		{"//fairbench:hotpath", "", true},
		{"//fairbench:hotpath fairbench case packet-parse", "fairbench case packet-parse", true},
		{"//fairbench:hotpath   spaced   note  ", "spaced note", true},
		{"//fairbench:hotpath\tnote", "note", true},
		{"//fairbench:hotpathology", "", false},
		{"// fairbench:hotpath spaced marker is not a directive", "", false},
		{"//fairbench:coldpath", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		note, ok := ParseHotpath(c.text)
		if note != c.note || ok != c.ok {
			t.Errorf("ParseHotpath(%q) = (%q, %v), want (%q, %v)", c.text, note, ok, c.note, c.ok)
		}
	}
}
