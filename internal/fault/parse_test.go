package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSpecExamples(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{
			in: "outage:dev=smartnic,at=5ms,for=5ms",
			want: Spec{Clauses: []Clause{
				{Kind: Outage, Target: TargetSmartNIC, At: 0.005, For: 0.005},
			}},
		},
		{
			in: "outage:dev=fpga,mttf=20ms,mttr=2ms;seed:17",
			want: Spec{Clauses: []Clause{
				{Kind: Outage, Target: TargetFPGA, MTTF: 0.02, MTTR: 0.002},
			}, Seed: 17},
		},
		{
			in: "brownout:dev=cores,at=0,for=10ms,factor=0.5",
			want: Spec{Clauses: []Clause{
				{Kind: Brownout, Target: TargetCores, For: 0.01, Severity: 0.5},
			}},
		},
		{
			in: "linkloss:prob=0.01;linkcorrupt:prob=0.002",
			want: Spec{Clauses: []Clause{
				{Kind: LinkLoss, Severity: 0.01},
				{Kind: LinkCorrupt, Severity: 0.002},
			}},
		},
		{
			// Plain-seconds durations parse like Go durations.
			in: "burst:factor=3,at=0.008,for=0.002",
			want: Spec{Clauses: []Clause{
				{Kind: Burst, At: 0.008, For: 0.002, Severity: 3},
			}},
		},
	} {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if len(got.Clauses) != len(tc.want.Clauses) || got.Seed != tc.want.Seed {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
			continue
		}
		for i := range got.Clauses {
			if got.Clauses[i] != tc.want.Clauses[i] {
				t.Errorf("ParseSpec(%q) clause %d = %+v, want %+v", tc.in, i, got.Clauses[i], tc.want.Clauses[i])
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",                                      // empty
		";",                                     // stray separator
		"seed:17",                               // seed only
		"seed:-1;linkloss:prob=0.1",             // bad seed
		"meteor:dev=cores",                      // unknown kind
		"outage",                                // missing target
		"outage:dev=gpu,at=1ms,for=1ms",         // unknown device
		"outage:dev=cores,at=1ms,for=1ms,x=1",   // unknown param
		"outage:dev=cores,at",                   // not key=value
		"outage:dev=cores,at=soon,for=1ms",      // unparseable duration
		"outage:dev=cores,at=-1ms,for=1ms",      // negative at
		"outage:dev=cores,at=1ms,for=-1ms",      // negative for
		"outage:dev=cores,at=1ms,mttf=1ms",      // mixed schedules (mttr missing too)
		"outage:dev=cores,mttf=1ms",             // mttr missing
		"outage:dev=cores,at=1ms,for=1ms,sev=2", // outage takes no severity
		"brownout:dev=cores,factor=1.5",         // factor outside (0,1)
		"brownout:dev=cores,factor=0",           // factor outside (0,1)
		"brownout:factor=0.5",                   // missing target
		"linkloss:prob=1.5",                     // prob outside (0,1]
		"linkloss:prob=0",                       // prob outside (0,1]
		"linkloss:dev=cores,prob=0.1",           // dev on a link clause
		"linkcorrupt:prob=nan",                  // NaN severity
		"burst:factor=1",                        // burst must exceed 1
		"burst:factor=0.5",                      // burst must exceed 1
	} {
		spec, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) = %+v, want error", in, spec)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("ParseSpec(%q) error %v does not wrap ErrSpec", in, err)
		}
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	for _, in := range []string{
		"outage:dev=smartnic,at=5ms,for=5ms",
		"outage:dev=fpga,mttf=20ms,mttr=2ms;seed:17",
		"brownout:dev=cores,at=1ms,for=10ms,factor=0.5",
		"linkloss:prob=0.01;burst:factor=3,at=8ms,for=2ms",
	} {
		first, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		second, err := ParseSpec(first.String())
		if err != nil {
			t.Fatalf("round trip ParseSpec(%q): %v", first.String(), err)
		}
		if first.String() != second.String() {
			t.Errorf("round trip %q -> %q -> %q", in, first.String(), second.String())
		}
	}
}

// FuzzParseSpec checks that arbitrary input never panics and that any
// accepted spec validates and round-trips through String.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"outage:dev=smartnic,at=5ms,for=5ms",
		"outage:dev=fpga,mttf=20ms,mttr=2ms;seed:17",
		"brownout:dev=cores,at=0,for=10ms,factor=0.5",
		"linkloss:prob=0.01",
		"burst:factor=3,at=8ms,for=2ms;seed:9",
		"linkcorrupt:prob=0.002;linkloss:prob=1",
		";;;",
		"outage:dev=cores,at=1e300,for=1e300",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			if !errors.Is(err, ErrSpec) && !strings.Contains(err.Error(), "invalid spec") {
				t.Fatalf("ParseSpec(%q) error %v does not wrap ErrSpec", in, err)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", in, spec, err)
		}
		if _, err := ParseSpec(spec.String()); err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %v", spec.String(), err)
		}
	})
}
