package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the textual fault-spec grammar used by
// `fairsim -faults` and the scenario catalogue:
//
//	spec    := clause (";" clause)*
//	clause  := kind [":" param ("," param)*] | "seed:" N
//	kind    := outage | brownout | linkloss | linkcorrupt | burst
//	param   := key "=" value
//	key     := dev | at | for | mttf | mttr | factor | prob
//
// Durations (at, for, mttf, mttr) accept Go duration syntax ("5ms",
// "2us") or plain seconds ("0.005"). Examples:
//
//	outage:dev=smartnic,at=5ms,for=5ms
//	outage:dev=fpga,mttf=20ms,mttr=2ms
//	brownout:dev=cores,at=0,for=10ms,factor=0.5
//	linkloss:prob=0.01
//	burst:factor=3,at=8ms,for=2ms;seed:17
//
// Every parse failure wraps ErrSpec so callers can surface it as a
// usage error.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{}
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("%w: empty spec", ErrSpec)
	}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return Spec{}, fmt.Errorf("%w: empty clause (stray %q?)", ErrSpec, ";")
		}
		head, rest, hasParams := strings.Cut(raw, ":")
		head = strings.ToLower(strings.TrimSpace(head))
		if head == "seed" {
			seed, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("%w: seed %q is not an unsigned integer", ErrSpec, rest)
			}
			spec.Seed = seed
			continue
		}
		kind, err := parseKind(head)
		if err != nil {
			return Spec{}, err
		}
		c := Clause{Kind: kind}
		if hasParams {
			if err := parseParams(&c, rest); err != nil {
				return Spec{}, fmt.Errorf("clause %q: %w", raw, err)
			}
		}
		if err := c.Validate(); err != nil {
			return Spec{}, err
		}
		spec.Clauses = append(spec.Clauses, c)
	}
	if spec.Empty() {
		return Spec{}, fmt.Errorf("%w: no fault clauses (only seed)", ErrSpec)
	}
	return spec, nil
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "outage":
		return Outage, nil
	case "brownout":
		return Brownout, nil
	case "linkloss":
		return LinkLoss, nil
	case "linkcorrupt":
		return LinkCorrupt, nil
	case "burst":
		return Burst, nil
	default:
		return 0, fmt.Errorf("%w: unknown fault kind %q (want outage, brownout, linkloss, linkcorrupt or burst)", ErrSpec, s)
	}
}

func parseParams(c *Clause, s string) error {
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("%w: parameter %q is not key=value", ErrSpec, p)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "dev":
			c.Target, err = parseTarget(val)
		case "at":
			c.At, err = parseSeconds(key, val)
		case "for":
			c.For, err = parseSeconds(key, val)
		case "mttf":
			c.MTTF, err = parseSeconds(key, val)
		case "mttr":
			c.MTTR, err = parseSeconds(key, val)
		case "factor", "prob", "sev":
			c.Severity, err = parseFloat(key, val)
		default:
			err = fmt.Errorf("%w: unknown parameter %q", ErrSpec, key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseTarget(s string) (Target, error) {
	switch strings.ToLower(s) {
	case "cores", "core", "cpu", "host":
		return TargetCores, nil
	case "smartnic", "snic", "nic":
		return TargetSmartNIC, nil
	case "switch", "sw":
		return TargetSwitch, nil
	case "fpga":
		return TargetFPGA, nil
	default:
		return TargetNone, fmt.Errorf("%w: unknown device %q (want cores, smartnic, switch or fpga)", ErrSpec, s)
	}
}

// parseSeconds accepts Go durations ("5ms") or plain seconds ("0.005").
func parseSeconds(key, s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q is neither a duration nor seconds", ErrSpec, key, s)
	}
	return f, nil
}

func parseFloat(key, s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q is not a number", ErrSpec, key, s)
	}
	return f, nil
}
