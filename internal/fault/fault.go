// Package fault is the deterministic fault-injection subsystem for the
// simulated heterogeneous substrate. It models the degraded operating
// regimes real deployments run in — transient device outages with
// MTTF/MTTR recovery, brownout/thermal throttling (temporary rate
// derating), link loss and bit corruption on the NIC path, and
// correlated burst overload — so the comparison methodology can be
// applied *within* a failure regime, not just the healthy one (the
// paper's Principle 2: systems must be compared in the same operating
// regime, and "degraded" is a regime too).
//
// Determinism is inherited from internal/sim: fault transitions are
// materialised up front from explicitly seeded streams and scheduled as
// first-class simulation events, so the same seed and the same spec
// yield a byte-identical trace (Principle 1's context-independence
// extends to failure schedules).
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the fault models.
type Kind int

const (
	// Outage takes the target device fully down for the window: a
	// crashed SmartNIC firmware, a rebooting switch, an FPGA
	// reconfiguration. Downed devices reject all work.
	Outage Kind = iota
	// Brownout derates the target's service rate by Severity (the
	// remaining rate fraction): thermal throttling, power capping.
	Brownout
	// LinkLoss drops each arriving packet with probability Severity
	// while the window is active (lossy NIC path).
	LinkLoss
	// LinkCorrupt flips one byte of each arriving frame with
	// probability Severity; header validation downstream catches most.
	LinkCorrupt
	// Burst multiplies the offered arrival rate by Severity (> 1)
	// while active: correlated overload, e.g. a failover herd.
	Burst
)

// String names the kind using the spec grammar's keywords.
func (k Kind) String() string {
	switch k {
	case Outage:
		return "outage"
	case Brownout:
		return "brownout"
	case LinkLoss:
		return "linkloss"
	case LinkCorrupt:
		return "linkcorrupt"
	case Burst:
		return "burst"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Target selects which device class a device-level fault hits. Faults
// describe the *environment*, not one deployment: a spec targeting a
// SmartNIC is a no-op on a deployment without one, which is exactly
// what lets the same fault regime be applied to every compared system.
type Target int

const (
	// TargetNone marks clauses without a device target (link/burst).
	TargetNone Target = iota
	// TargetCores hits every host dataplane core.
	TargetCores
	// TargetSmartNIC hits the SmartNIC offload engine.
	TargetSmartNIC
	// TargetSwitch hits the programmable-switch preprocessor.
	TargetSwitch
	// TargetFPGA hits the FPGA pipeline.
	TargetFPGA
)

// allTargets enumerates the device targets for state recomputation.
var allTargets = []Target{TargetCores, TargetSmartNIC, TargetSwitch, TargetFPGA}

// String names the target using the spec grammar's keywords.
func (t Target) String() string {
	switch t {
	case TargetCores:
		return "cores"
	case TargetSmartNIC:
		return "smartnic"
	case TargetSwitch:
		return "switch"
	case TargetFPGA:
		return "fpga"
	default:
		return "none"
	}
}

// Clause is one fault source. It is active either over one scheduled
// window [At, At+For) — For == 0 meaning until the end of the run — or
// recurrently with exponential MTTF/MTTR episodes drawn from the spec's
// seed.
type Clause struct {
	Kind   Kind
	Target Target
	// At and For position a scheduled window, in seconds.
	At, For float64
	// MTTF and MTTR are the mean seconds between failures and to
	// repair; both set selects the recurrent (stochastic) schedule.
	MTTF, MTTR float64
	// Severity is kind-specific: remaining rate fraction for Brownout
	// (0 < s < 1), per-packet probability for LinkLoss/LinkCorrupt
	// (0 < s <= 1), rate multiplier for Burst (s > 1). Unused (0) for
	// Outage.
	Severity float64
}

// ErrSpec is the typed error every spec validation/parse failure wraps,
// so callers can distinguish a malformed spec (usage error) from
// runtime failures.
var ErrSpec = errors.New("fault: invalid spec")

func (c Clause) deviceKind() bool { return c.Kind == Outage || c.Kind == Brownout }

// Validate checks the clause's internal consistency.
func (c Clause) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: clause %s: %s", ErrSpec, c.Kind, fmt.Sprintf(format, args...))
	}
	for _, v := range []struct {
		name string
		v    float64
	}{{"at", c.At}, {"for", c.For}, {"mttf", c.MTTF}, {"mttr", c.MTTR}, {"severity", c.Severity}} {
		// NaN slips past range comparisons (every comparison is false),
		// so non-finite numerics are rejected before the range checks.
		if math.IsNaN(v.v) || math.IsInf(v.v, 0) {
			return fail("%s=%v is not finite", v.name, v.v)
		}
	}
	if c.deviceKind() && c.Target == TargetNone {
		return fail("a device target (dev=cores|smartnic|switch|fpga) is required")
	}
	if !c.deviceKind() && c.Target != TargetNone {
		return fail("dev= applies only to outage/brownout clauses")
	}
	switch c.Kind {
	case Outage:
		if c.Severity != 0 {
			return fail("outage takes no severity")
		}
	case Brownout:
		if c.Severity <= 0 || c.Severity >= 1 {
			return fail("factor=%v outside (0,1)", c.Severity)
		}
	case LinkLoss, LinkCorrupt:
		if c.Severity <= 0 || c.Severity > 1 {
			return fail("prob=%v outside (0,1]", c.Severity)
		}
	case Burst:
		if c.Severity <= 1 {
			return fail("factor=%v must exceed 1", c.Severity)
		}
	default:
		return fail("unknown kind")
	}
	stochastic := c.MTTF != 0 || c.MTTR != 0
	if stochastic {
		if c.MTTF <= 0 || c.MTTR <= 0 {
			return fail("mttf and mttr must both be positive (got mttf=%v, mttr=%v)", c.MTTF, c.MTTR)
		}
		if c.At != 0 || c.For != 0 {
			return fail("at/for and mttf/mttr are mutually exclusive schedules")
		}
		return nil
	}
	if c.At < 0 {
		return fail("at=%v is negative", c.At)
	}
	if c.For < 0 {
		return fail("for=%v is negative", c.For)
	}
	return nil
}

// String renders the clause in the spec grammar (parseable round trip).
func (c Clause) String() string {
	var parts []string
	if c.Target != TargetNone {
		parts = append(parts, "dev="+c.Target.String())
	}
	if c.MTTF > 0 {
		parts = append(parts, fmt.Sprintf("mttf=%g,mttr=%g", c.MTTF, c.MTTR))
	} else if c.At != 0 || c.For != 0 {
		parts = append(parts, fmt.Sprintf("at=%g,for=%g", c.At, c.For))
	}
	switch c.Kind {
	case Brownout, Burst:
		parts = append(parts, fmt.Sprintf("factor=%g", c.Severity))
	case LinkLoss, LinkCorrupt:
		parts = append(parts, fmt.Sprintf("prob=%g", c.Severity))
	}
	if len(parts) == 0 {
		return c.Kind.String()
	}
	return c.Kind.String() + ":" + strings.Join(parts, ",")
}

// DefaultSeed drives fault schedules when the spec does not name one.
const DefaultSeed = 11

// Spec is a full fault specification: a set of clauses plus the seed
// their stochastic schedules and per-packet link draws flow from. The
// zero value is the healthy regime (no faults).
type Spec struct {
	Clauses []Clause
	// Seed drives MTTF/MTTR episode draws and link loss/corruption
	// coin flips (DefaultSeed when 0).
	Seed uint64
}

// Empty reports whether the spec injects nothing (the healthy regime).
func (s Spec) Empty() bool { return len(s.Clauses) == 0 }

// HasKind reports whether any clause has the given kind.
func (s Spec) HasKind(k Kind) bool {
	for _, c := range s.Clauses {
		if c.Kind == k {
			return true
		}
	}
	return false
}

// Validate checks every clause.
func (s Spec) Validate() error {
	for i, c := range s.Clauses {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("clause %d: %w", i, err)
		}
	}
	return nil
}

// String renders the spec in the parseable grammar.
func (s Spec) String() string {
	parts := make([]string, 0, len(s.Clauses)+1)
	for _, c := range s.Clauses {
		parts = append(parts, c.String())
	}
	if s.Seed != 0 && s.Seed != DefaultSeed {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	return strings.Join(parts, ";")
}

// Window is one materialised activity interval of a clause over a
// concrete run horizon: the unit the injector schedules, reports, and
// traces as a fault span.
type Window struct {
	// Clause indexes Spec.Clauses.
	Clause int
	Kind   Kind
	Target Target
	// Start and End bound the window in simulated seconds, clamped to
	// the run horizon.
	Start, End float64
	// Severity copies the clause severity.
	Severity float64
}

// Duration returns the window length in seconds.
func (w Window) Duration() float64 { return w.End - w.Start }
