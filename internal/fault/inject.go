package fault

import (
	"fmt"
	"math"
	"sort"

	"fairbench/internal/sim"
)

// Plant is the side of the deployment the injector actuates. Device
// faults are addressed by class; a deployment without the targeted
// device treats the call as a no-op (the fault describes the
// environment, and an absent device simply cannot fail).
type Plant interface {
	// SetDown marks the target failed (true) or recovered (false).
	SetDown(t Target, down bool)
	// SetDerate sets the target's remaining service-rate fraction;
	// 1 restores full rate.
	SetDerate(t Target, factor float64)
}

// maxWindows bounds schedule materialisation so a pathological spec
// (say mttf=1ns over a 1 s run) fails loudly instead of flooding the
// event queue.
const maxWindows = 100000

// Injector compiles a Spec into concrete fault windows over a run
// horizon and drives them as first-class simulation events. Device
// faults actuate the Plant; link faults and burst overload are exposed
// as state the ingress path queries per arrival. All randomness flows
// from the spec seed, so the same (seed, spec, horizon) produces the
// same schedule, event for event.
//
// Not safe for concurrent use; an injector belongs to one simulation.
type Injector struct {
	spec    Spec
	windows []Window
	active  []bool
	plant   Plant
	notify  func(w Window, start bool)

	linkRng     *sim.RNG
	lossProb    float64
	corruptProb float64
	rateFactor  float64
}

// NewInjector validates the spec and builds an unarmed injector.
func NewInjector(spec Spec) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	return &Injector{
		spec: spec,
		//fairlint:allow seedprov zero Spec.Seed selects the documented DefaultSeed fallback
		linkRng:    sim.NewRNG(seed).Derive("fault/link"),
		rateFactor: 1,
	}, nil
}

// OnTransition registers fn to observe every window start/end from
// inside the scheduled transition event — the hook the observability
// layer uses to record fault spans in causal trace order.
func (inj *Injector) OnTransition(fn func(w Window, start bool)) { inj.notify = fn }

// Windows returns the materialised schedule (empty before Arm), in
// deterministic order: by clause, then chronologically.
func (inj *Injector) Windows() []Window { return inj.windows }

// RateFactor returns the current offered-rate multiplier (>= 1; burst
// overload when > 1).
func (inj *Injector) RateFactor() float64 { return inj.rateFactor }

// DropArrival decides whether the link drops the arriving packet. The
// RNG advances only while a linkloss window is active, so fault-free
// stretches of a run stay identical to an unfaulted run.
func (inj *Injector) DropArrival() bool {
	return inj.lossProb > 0 && inj.linkRng.Float64() < inj.lossProb
}

// CorruptArrival decides whether the link corrupts the arriving frame;
// when it does, it returns the byte index to flip.
func (inj *Injector) CorruptArrival(frameLen int) (idx int, corrupt bool) {
	if inj.corruptProb <= 0 || frameLen <= 0 {
		return 0, false
	}
	if inj.linkRng.Float64() >= inj.corruptProb {
		return 0, false
	}
	return inj.linkRng.Intn(frameLen), true
}

// Arm materialises the fault schedule over [0, horizon) and registers
// every window transition as a simulation event on s. Call once, before
// the run starts.
func (inj *Injector) Arm(s *sim.Sim, horizon float64, plant Plant) error {
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return fmt.Errorf("fault: invalid horizon %v", horizon)
	}
	if plant == nil {
		return fmt.Errorf("fault: nil plant")
	}
	if err := inj.materialise(horizon); err != nil {
		return err
	}
	inj.plant = plant
	inj.active = make([]bool, len(inj.windows))
	for i, w := range inj.windows {
		i, w := i, w
		if err := s.At(sim.Time(w.Start), func() {
			inj.active[i] = true
			inj.recompute()
			if inj.notify != nil {
				inj.notify(w, true)
			}
		}); err != nil {
			return fmt.Errorf("fault: scheduling window start: %w", err)
		}
		if err := s.At(sim.Time(w.End), func() {
			inj.active[i] = false
			inj.recompute()
			if inj.notify != nil {
				inj.notify(w, false)
			}
		}); err != nil {
			return fmt.Errorf("fault: scheduling window end: %w", err)
		}
	}
	return nil
}

// materialise expands every clause into concrete windows over the
// horizon: scheduled clauses yield one clamped window; MTTF/MTTR
// clauses draw exponential failure/repair episodes from a per-clause
// stream derived from the spec seed.
func (inj *Injector) materialise(horizon float64) error {
	seed := inj.spec.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	//fairlint:allow seedprov zero Spec.Seed selects the documented DefaultSeed fallback
	root := sim.NewRNG(seed)
	inj.windows = inj.windows[:0]
	for ci, c := range inj.spec.Clauses {
		if c.MTTF > 0 {
			rng := root.Derive(fmt.Sprintf("fault/clause-%d", ci))
			t := 0.0
			for {
				t += rng.Exp(1 / c.MTTF)
				if t >= horizon {
					break
				}
				end := t + rng.Exp(1/c.MTTR)
				inj.addWindow(ci, c, t, end, horizon)
				if len(inj.windows) > maxWindows {
					return fmt.Errorf("%w: clause %d generates more than %d fault windows over %gs", ErrSpec, ci, maxWindows, horizon)
				}
				t = end
			}
			continue
		}
		end := c.At + c.For
		if c.For == 0 {
			end = horizon
		}
		inj.addWindow(ci, c, c.At, end, horizon)
	}
	sort.SliceStable(inj.windows, func(i, j int) bool {
		if inj.windows[i].Start != inj.windows[j].Start {
			return inj.windows[i].Start < inj.windows[j].Start
		}
		return inj.windows[i].Clause < inj.windows[j].Clause
	})
	return nil
}

func (inj *Injector) addWindow(ci int, c Clause, start, end, horizon float64) {
	if start >= horizon || end <= start {
		return
	}
	if end > horizon {
		end = horizon
	}
	inj.windows = append(inj.windows, Window{
		Clause: ci, Kind: c.Kind, Target: c.Target,
		Start: start, End: end, Severity: c.Severity,
	})
}

// recompute rebuilds the full fault state from the set of active
// windows. Recomputing from scratch (rather than incrementally
// applying/unapplying) keeps overlapping windows exact: outages nest by
// count, brownout factors multiply, link probabilities compose as
// complements, burst factors multiply.
func (inj *Injector) recompute() {
	down := make(map[Target]bool, len(allTargets))
	derate := make(map[Target]float64, len(allTargets))
	for _, t := range allTargets {
		derate[t] = 1
	}
	lossPass, corruptPass := 1.0, 1.0
	rate := 1.0
	for i, w := range inj.windows {
		if !inj.active[i] {
			continue
		}
		switch w.Kind {
		case Outage:
			down[w.Target] = true
		case Brownout:
			derate[w.Target] *= w.Severity
		case LinkLoss:
			lossPass *= 1 - w.Severity
		case LinkCorrupt:
			corruptPass *= 1 - w.Severity
		case Burst:
			rate *= w.Severity
		}
	}
	for _, t := range allTargets {
		inj.plant.SetDown(t, down[t])
		inj.plant.SetDerate(t, derate[t])
	}
	inj.lossProb = 1 - lossPass
	inj.corruptProb = 1 - corruptPass
	inj.rateFactor = rate
}
