package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fairbench/internal/sim"
)

// fakePlant records actuations for assertions.
type fakePlant struct {
	down   map[Target]bool
	derate map[Target]float64
	log    []string
}

func newFakePlant() *fakePlant {
	return &fakePlant{down: map[Target]bool{}, derate: map[Target]float64{}}
}

func (p *fakePlant) SetDown(t Target, down bool) {
	if p.down[t] != down {
		p.log = append(p.log, fmt.Sprintf("%s down=%v", t, down))
	}
	p.down[t] = down
}

func (p *fakePlant) SetDerate(t Target, factor float64) {
	if f, ok := p.derate[t]; !ok || f != factor {
		if factor != 1 || ok {
			p.log = append(p.log, fmt.Sprintf("%s derate=%g", t, factor))
		}
	}
	p.derate[t] = factor
}

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	spec, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestInjectorScheduledOutage(t *testing.T) {
	spec := mustSpec(t, "outage:dev=smartnic,at=2ms,for=3ms")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	p := newFakePlant()
	if err := inj.Arm(s, 0.01, p); err != nil {
		t.Fatal(err)
	}
	ws := inj.Windows()
	if len(ws) != 1 || ws[0].Start != 0.002 || ws[0].End != 0.005 {
		t.Fatalf("windows = %+v, want one [2ms,5ms)", ws)
	}
	// Probe device state between transitions.
	var states []bool
	for _, at := range []float64{0.001, 0.003, 0.006} {
		at := at
		if err := s.At(sim.Time(at), func() { states = append(states, p.down[TargetSmartNIC]) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0.01)
	want := []bool{false, true, false}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("down states at 1/3/6 ms = %v, want %v", states, want)
	}
}

func TestInjectorOverlappingBrownoutsMultiply(t *testing.T) {
	spec := mustSpec(t, "brownout:dev=cores,at=1ms,for=4ms,factor=0.5;brownout:dev=cores,at=2ms,for=1ms,factor=0.5")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	p := newFakePlant()
	if err := inj.Arm(s, 0.01, p); err != nil {
		t.Fatal(err)
	}
	var factors []float64
	for _, at := range []float64{0.0015, 0.0025, 0.0035, 0.006} {
		at := at
		if err := s.At(sim.Time(at), func() { factors = append(factors, p.derate[TargetCores]) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0.01)
	want := []float64{0.5, 0.25, 0.5, 1}
	if !reflect.DeepEqual(factors, want) {
		t.Errorf("derate factors = %v, want %v (overlap multiplies, recovery restores)", factors, want)
	}
}

func TestInjectorMTTFScheduleDeterministic(t *testing.T) {
	spec := mustSpec(t, "outage:dev=fpga,mttf=5ms,mttr=1ms;seed:21")
	mk := func() []Window {
		inj, err := NewInjector(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Arm(sim.New(), 0.1, newFakePlant()); err != nil {
			t.Fatal(err)
		}
		return inj.Windows()
	}
	a, b := mk(), mk()
	if len(a) == 0 {
		t.Fatal("MTTF=5ms over 100ms produced no fault windows")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	// A different seed must (overwhelmingly) move the windows.
	other := spec
	other.Seed = 22
	inj, err := NewInjector(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(sim.New(), 0.1, newFakePlant()); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, inj.Windows()) {
		t.Error("different seeds produced identical stochastic schedules")
	}
}

func TestInjectorPathologicalSpecBounded(t *testing.T) {
	inj, err := NewInjector(Spec{Clauses: []Clause{
		{Kind: Outage, Target: TargetCores, MTTF: 1e-9, MTTR: 1e-9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = inj.Arm(sim.New(), 1.0, newFakePlant())
	if err == nil {
		t.Fatal("nanosecond MTTF over a 1s horizon should exceed the window cap")
	}
	if !errors.Is(err, ErrSpec) {
		t.Errorf("window-cap error %v does not wrap ErrSpec", err)
	}
}

func TestInjectorLinkStateOnlyDuringWindows(t *testing.T) {
	spec := mustSpec(t, "linkloss:prob=1,at=2ms,for=2ms")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	if err := inj.Arm(s, 0.01, newFakePlant()); err != nil {
		t.Fatal(err)
	}
	drops := map[float64]bool{}
	for _, at := range []float64{0.001, 0.003, 0.005} {
		at := at
		if err := s.At(sim.Time(at), func() { drops[at] = inj.DropArrival() }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0.01)
	if drops[0.001] || drops[0.005] {
		t.Errorf("dropped outside the loss window: %v", drops)
	}
	if !drops[0.003] {
		t.Error("prob=1 loss window did not drop the in-window arrival")
	}
}

func TestInjectorBurstRateFactor(t *testing.T) {
	spec := mustSpec(t, "burst:factor=3,at=1ms,for=1ms")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	if err := inj.Arm(s, 0.01, newFakePlant()); err != nil {
		t.Fatal(err)
	}
	var factors []float64
	for _, at := range []float64{0.0005, 0.0015, 0.0025} {
		at := at
		if err := s.At(sim.Time(at), func() { factors = append(factors, inj.RateFactor()) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0.01)
	want := []float64{1, 3, 1}
	if !reflect.DeepEqual(factors, want) {
		t.Errorf("rate factors = %v, want %v", factors, want)
	}
}

func TestInjectorUntilHorizonWindow(t *testing.T) {
	// for=0 (or omitted) means the fault lasts until the horizon.
	spec := mustSpec(t, "outage:dev=switch,at=4ms")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(sim.New(), 0.01, newFakePlant()); err != nil {
		t.Fatal(err)
	}
	ws := inj.Windows()
	if len(ws) != 1 || ws[0].Start != 0.004 || ws[0].End != 0.01 {
		t.Fatalf("windows = %+v, want one [4ms, horizon)", ws)
	}
}

func TestInjectorTransitionNotifications(t *testing.T) {
	spec := mustSpec(t, "outage:dev=fpga,at=1ms,for=1ms;brownout:dev=cores,at=2ms,for=1ms,factor=0.5")
	inj, err := NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var seen []string
	inj.OnTransition(func(w Window, start bool) {
		seen = append(seen, fmt.Sprintf("%s/%s start=%v at=%v", w.Kind, w.Target, start, s.Now().Seconds()))
	})
	if err := inj.Arm(s, 0.01, newFakePlant()); err != nil {
		t.Fatal(err)
	}
	s.Run(0.01)
	want := []string{
		"outage/fpga start=true at=0.001",
		"outage/fpga start=false at=0.002",
		"brownout/cores start=true at=0.002",
		"brownout/cores start=false at=0.003",
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("transitions = %v, want %v", seen, want)
	}
}

func TestInjectorArmValidation(t *testing.T) {
	inj, err := NewInjector(mustSpec(t, "linkloss:prob=0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(sim.New(), 0, newFakePlant()); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := inj.Arm(sim.New(), 0.01, nil); err == nil {
		t.Error("nil plant accepted")
	}
}
