// Package profile is the saturation-delta profiler: it explains *why* a
// system saturates where it does, not just *that* it does.
//
// The methodology combines two ideas from the related literature. From
// operator-cost profiling ("Profiling Multi-Level Operator Costs for
// Bottleneck Diagnosis in High-Speed Data Planes"): the cost of one
// operator is the change in saturation throughput when that operator is
// removed, measured by re-running the RFC 2544 zero-loss binary search
// with the operator ablated. From component-effect inference
// (BenchCouncil): attribute a performance difference to the component
// whose removal moves the measured figure. Both reduce to the same
// primitive here — a seeded, reproducible saturation search per
// pipeline variant, with bootstrap confidence intervals over paired
// per-trial deltas.
//
// Sign convention: DeltaPps = saturation(ablated) − saturation(full).
// A positive delta means the operator costs capacity (removing it makes
// the system faster); a negative delta means the operator *contributes*
// capacity (removing it pushes work onto a slower path — e.g. ablating
// a SmartNIC fast path forces every packet through host cores).
//
// Ablation validity caveat (see DESIGN.md §7): an ablated pipeline does
// not deliver the same service — the delta prices the *mechanism*
// under the unchanged workload and seeds, it does not compare two
// equally-correct systems. Ablated devices stay in the bill of
// materials, so the cost axis is held constant while the performance
// axis moves.
package profile

import (
	"errors"
	"fmt"
	"strings"

	"fairbench/internal/obs"
	"fairbench/internal/rfc2544"
	"fairbench/internal/runner"
	"fairbench/internal/stats"
	"fairbench/internal/testbed"
	"fairbench/internal/workload"
)

// ErrNoSaturation is returned when a target cannot sustain even the
// minimum searched rate, leaving no saturation point to profile.
var ErrNoSaturation = errors.New("profile: no sustainable rate")

// Options parameterises a profiling run. The zero value is usable:
// every field has a default.
type Options struct {
	// TrialSeconds is the simulated duration of each search trial and
	// each bottleneck observation run (default 0.02).
	TrialSeconds float64
	// Seed is the base seed; trial k derives its workload seed from
	// (Seed, k), with trial 0 using Seed itself.
	Seed uint64
	// Trials is the number of replicated saturation searches per
	// pipeline variant (default 1; CIs degenerate to a point).
	Trials int
	// ResolutionFraction is the binary-search stopping width
	// (default 0.02).
	ResolutionFraction float64
	// Resamples and Level parameterise the bootstrap CIs
	// (defaults 200, 0.95).
	Resamples int
	Level     float64
	// PreKneeFraction and PostKneeFraction position the two observed
	// load regimes relative to the measured saturation rate
	// (defaults 0.6 and 1.1: comfortably below the knee, and past it).
	PreKneeFraction, PostKneeFraction float64
	// SampleCount is how many sampler ticks the bottleneck observation
	// run spreads over TrialSeconds (default 50).
	SampleCount int
	// Jobs is the number of replicated searches run concurrently
	// (<= 1 = serial). Per-trial seeds are pure functions of (Seed,
	// trial), so the profile is identical at any Jobs value.
	Jobs int
}

func (o Options) withDefaults() Options {
	if o.TrialSeconds == 0 {
		o.TrialSeconds = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if o.ResolutionFraction == 0 {
		o.ResolutionFraction = 0.02
	}
	if o.Resamples == 0 {
		o.Resamples = 200
	}
	if o.Level == 0 {
		o.Level = 0.95
	}
	if o.PreKneeFraction == 0 {
		o.PreKneeFraction = 0.6
	}
	if o.PostKneeFraction == 0 {
		o.PostKneeFraction = 1.1
	}
	if o.SampleCount == 0 {
		o.SampleCount = 50
	}
	return o
}

func (o Options) validate() error {
	bad := func(name string, v any) error {
		return fmt.Errorf("profile: invalid option %s=%v", name, v)
	}
	switch {
	case o.TrialSeconds < 0:
		return bad("TrialSeconds", o.TrialSeconds)
	case o.Trials < 0:
		return bad("Trials", o.Trials)
	case o.PreKneeFraction < 0 || o.PostKneeFraction < 0:
		return bad("KneeFraction", o.PreKneeFraction)
	case o.SampleCount < 0:
		return bad("SampleCount", o.SampleCount)
	}
	return nil
}

// trialSeed derives trial k's workload seed. Trial 0 uses the base
// seed unchanged so a single-trial profile reproduces the seed's
// canonical artifacts exactly.
func trialSeed(base uint64, k int) uint64 {
	if k == 0 {
		return base
	}
	return stats.MixSeed(base, uint64(k))
}

// OperatorCost is one operator's saturation-delta price.
type OperatorCost struct {
	// Operator is the stage toggle name (testbed.Stage* constant).
	Operator string
	// Description says what the ablation removes.
	Description string
	// FullPps and AblatedPps are the median saturation rates of the
	// full and ablated pipelines over the replicated trials.
	FullPps, AblatedPps float64
	// DeltaPps is the median of the paired per-trial deltas
	// (ablated − full); see the package sign convention.
	DeltaPps float64
	// DeltaCI is the bootstrap CI of the median paired delta.
	DeltaCI stats.Interval
	// Share is DeltaPps as a fraction of the full-pipeline saturation.
	Share float64
	// Trials is the number of paired trials behind the delta.
	Trials int
}

// StageLoad is one device's sampled load during a bottleneck
// observation run.
type StageLoad struct {
	Device    string
	MeanUtil  float64
	MaxUtil   float64
	MeanQueue float64
	MaxQueue  int
	Samples   int
}

// RegimeBottleneck names the bottleneck device of one load regime.
type RegimeBottleneck struct {
	// Regime labels the load regime ("pre-knee", "post-knee").
	Regime string
	// LoadFraction is the offered load as a fraction of saturation.
	LoadFraction float64
	// OfferedPps is the absolute offered rate.
	OfferedPps float64
	// LossFraction is the measured loss at that rate.
	LossFraction float64
	// Device is the bottleneck: highest mean sampled utilization, ties
	// broken by peak queue depth.
	Device string
	// Utilization and MaxQueue are the bottleneck's figures.
	Utilization float64
	MaxQueue    int
	// Stages lists every sampled device's load, in sampler order.
	Stages []StageLoad
}

// Profile is the full profiling result for one system.
type Profile struct {
	// System is the profiled deployment's name.
	System string
	// Trials is the number of replicated saturation searches.
	Trials int
	// SaturationPps and SaturationGbps are the medians over trials of
	// the full pipeline's zero-loss saturation point.
	SaturationPps  float64
	SaturationGbps float64
	// SaturationCI is the bootstrap CI of the median saturation rate.
	SaturationCI stats.Interval
	// Operators prices each ablatable operator, in catalogue order.
	Operators []OperatorCost
	// Regimes names the bottleneck per observed load regime.
	Regimes []RegimeBottleneck
}

// saturations runs one replicated saturation search for a pipeline
// variant, returning per-trial (pps, gbps) vectors indexed by trial.
// Per-trial seeds depend only on (o.Seed, trial), so the full and
// ablated variants see identical workloads trial by trial — the deltas
// are paired.
func saturations(t testbed.ProfileTarget, ablate []string, o Options) (pps, gbps []float64, err error) {
	type point struct{ pps, gbps float64 }
	pts, err := runner.Map(o.Jobs, o.Trials, func(k int) (point, error) {
		seed := trialSeed(o.Seed, k)
		res, err := rfc2544.Throughput(
			func() (*testbed.Deployment, error) { return t.Make(ablate) },
			func() (*workload.Generator, error) { return t.Workload(seed) },
			rfc2544.Opts{
				MinPps:             0.2e6,
				MaxPps:             t.MaxPps,
				TrialSeconds:       o.TrialSeconds,
				ResolutionFraction: o.ResolutionFraction,
			})
		if err != nil {
			return point{}, fmt.Errorf("profile: %s (ablate %v) trial %d: %w", t.System, ablate, k, err)
		}
		return point{pps: res.Pps, gbps: res.Gbps}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range pts {
		pps = append(pps, p.pps)
		gbps = append(gbps, p.gbps)
	}
	return pps, gbps, nil
}

// bottleneckAt observes the full pipeline at a fraction of its
// saturation rate and names the hottest device.
func bottleneckAt(t testbed.ProfileTarget, regime string, frac, satPps float64, o Options) (RegimeBottleneck, error) {
	out := RegimeBottleneck{Regime: regime, LoadFraction: frac, OfferedPps: frac * satPps}
	d, err := t.Make(nil)
	if err != nil {
		return out, err
	}
	g, err := t.Workload(o.Seed)
	if err != nil {
		return out, err
	}
	tr := obs.New(nil)
	d.Observe(tr, o.TrialSeconds/float64(o.SampleCount))
	res, err := d.Run(g, workload.CBR{}, out.OfferedPps, o.TrialSeconds)
	if err != nil {
		return out, err
	}
	out.LossFraction = res.LossFraction
	// Sampler source names carry the deployment prefix
	// ("fw-smartnic/smartnic"); strip it — the profile is per system.
	short := func(dev string) string { return strings.TrimPrefix(dev, t.System+"/") }
	for _, u := range tr.Utilization().Devices() {
		out.Stages = append(out.Stages, StageLoad{
			Device:    short(u.Device),
			MeanUtil:  u.MeanUtil(),
			MaxUtil:   u.MaxUtil,
			MeanQueue: u.MeanQueue(),
			MaxQueue:  u.MaxQueue,
			Samples:   u.Samples,
		})
	}
	bn, ok := tr.Utilization().Bottleneck()
	if !ok {
		return out, fmt.Errorf("profile: %s %s: no device samples recorded", t.System, regime)
	}
	out.Device = short(bn.Device)
	out.Utilization = bn.MeanUtil()
	out.MaxQueue = bn.MaxQueue
	return out, nil
}

// Run profiles one target: replicated full-pipeline saturation search,
// per-operator ablated re-searches with paired-delta bootstrap CIs, and
// bottleneck observation at the pre-knee and post-knee regimes.
func Run(t testbed.ProfileTarget, o Options) (Profile, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Profile{}, err
	}
	p := Profile{System: t.System, Trials: o.Trials}

	fullPps, fullGbps, err := saturations(t, nil, o)
	if err != nil {
		return p, err
	}
	p.SaturationPps = stats.Median(fullPps)
	p.SaturationGbps = stats.Median(fullGbps)
	if p.SaturationPps == 0 {
		return p, fmt.Errorf("%w: %s", ErrNoSaturation, t.System)
	}
	p.SaturationCI, err = stats.MedianCI(fullPps, o.Resamples, o.Level, stats.MixSeed(o.Seed, 1))
	if err != nil {
		return p, err
	}

	for i, st := range t.Stages {
		ablPps, _, err := saturations(t, []string{st.Name}, o)
		if err != nil {
			return p, err
		}
		deltas := make([]float64, len(ablPps))
		for k := range ablPps {
			deltas[k] = ablPps[k] - fullPps[k]
		}
		ci, err := stats.MedianCI(deltas, o.Resamples, o.Level, stats.MixSeed(o.Seed, uint64(i)+2))
		if err != nil {
			return p, err
		}
		p.Operators = append(p.Operators, OperatorCost{
			Operator:    st.Name,
			Description: st.Description,
			FullPps:     p.SaturationPps,
			AblatedPps:  stats.Median(ablPps),
			DeltaPps:    stats.Median(deltas),
			DeltaCI:     ci,
			Share:       stats.Median(deltas) / p.SaturationPps,
			Trials:      o.Trials,
		})
	}

	for _, reg := range []struct {
		name string
		frac float64
	}{{"pre-knee", o.PreKneeFraction}, {"post-knee", o.PostKneeFraction}} {
		rb, err := bottleneckAt(t, reg.name, reg.frac, p.SaturationPps, o)
		if err != nil {
			return p, err
		}
		p.Regimes = append(p.Regimes, rb)
	}
	return p, nil
}

// DeviceOrder returns the union of sampled device names across regimes
// in first-seen order — map membership for dedup, slice for order, so
// downstream report emitters never iterate a map.
func DeviceOrder(regimes []RegimeBottleneck) []string {
	seen := make(map[string]bool)
	var order []string
	for _, r := range regimes {
		for _, st := range r.Stages {
			if !seen[st.Device] {
				seen[st.Device] = true
				order = append(order, st.Device)
			}
		}
	}
	return order
}
