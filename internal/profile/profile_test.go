package profile

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fairbench/internal/nf"
	"fairbench/internal/testbed"
)

// quick returns low-fidelity options fast enough for unit tests.
func quick() Options {
	return Options{TrialSeconds: 0.004, Seed: 1, Trials: 1, ResolutionFraction: 0.1, SampleCount: 20}
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{
		{TrialSeconds: -1},
		{Trials: -2},
		{PreKneeFraction: -0.5},
		{SampleCount: -3},
	} {
		if _, err := Run(testbed.ProfileTarget{}, o); err == nil {
			t.Errorf("options %+v should be rejected", o)
		}
	}
}

func TestTrialSeedStability(t *testing.T) {
	if trialSeed(7, 0) != 7 {
		t.Error("trial 0 must use the base seed unchanged")
	}
	if trialSeed(7, 1) == 7 || trialSeed(7, 1) == trialSeed(7, 2) {
		t.Error("derived trial seeds must differ")
	}
}

func TestProfileSmartNIC(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation searches are not short")
	}
	target, err := testbed.FirewallProfileTarget("smartnic")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(target, quick())
	if err != nil {
		t.Fatal(err)
	}
	if p.System != "fw-smartnic" || p.SaturationPps <= 0 {
		t.Fatalf("bad profile header: %+v", p)
	}
	if !p.SaturationCI.Contains(p.SaturationPps) {
		t.Errorf("saturation CI %v excludes the median %v", p.SaturationCI, p.SaturationPps)
	}
	if len(p.Operators) != 3 {
		t.Fatalf("want 3 operator costs, got %d", len(p.Operators))
	}
	byName := map[string]OperatorCost{}
	for _, op := range p.Operators {
		byName[op.Operator] = op
		if !op.DeltaCI.Contains(op.DeltaPps) {
			t.Errorf("%s: delta CI %v excludes the median delta %v", op.Operator, op.DeltaCI, op.DeltaPps)
		}
	}
	// The fast path carries established flows; ablating it pushes
	// everything onto the single host core, so it must show up as a
	// large capacity *contribution* (negative delta).
	if fp := byName[testbed.StageSmartNICFastPath]; fp.DeltaPps >= 0 {
		t.Errorf("fast-path ablation should lose capacity (negative delta), got %v", fp.DeltaPps)
	}
	if len(p.Regimes) != 2 || p.Regimes[0].Regime != "pre-knee" || p.Regimes[1].Regime != "post-knee" {
		t.Fatalf("want pre-knee and post-knee regimes, got %+v", p.Regimes)
	}
	for _, r := range p.Regimes {
		if r.Device == "" || len(r.Stages) == 0 {
			t.Errorf("%s: no bottleneck named: %+v", r.Regime, r)
		}
	}
	if post := p.Regimes[1]; post.LossFraction == 0 {
		t.Errorf("post-knee regime at %.2fx saturation should lose packets", post.LoadFraction)
	}
}

func TestProfileDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation searches are not short")
	}
	target, err := testbed.FirewallProfileTarget("host-1core")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(target, quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(target, quick())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different profiles:\n%+v\n%+v", a, b)
	}
}

// TestDeviceOrderDeterministic is the maporder regression test for the
// profiler's per-stage aggregation: DeviceOrder dedups with a map but
// must order by first appearance, never by map iteration.
func TestDeviceOrderDeterministic(t *testing.T) {
	var regimes []RegimeBottleneck
	for r := 0; r < 2; r++ {
		var stages []StageLoad
		for i := 0; i < 64; i++ {
			stages = append(stages, StageLoad{Device: fmt.Sprintf("dev-%02d", i)})
		}
		regimes = append(regimes, RegimeBottleneck{Regime: fmt.Sprintf("r%d", r), Stages: stages})
	}
	want := DeviceOrder(regimes)
	if len(want) != 64 || want[0] != "dev-00" || want[63] != "dev-63" {
		t.Fatalf("bad device order: %v", want)
	}
	for i := 0; i < 50; i++ {
		if got := DeviceOrder(regimes); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: order changed: %v", i, got)
		}
	}
}

func TestRunRejectsUnsaturableTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation searches are not short")
	}
	// A core so slow that even the search's minimum rate overloads it:
	// there is no saturation point to profile.
	slow := testbed.ScenarioCore
	slow.FreqHz = 1e6
	target := testbed.ProfileTarget{
		System: "fw-snail",
		MaxPps: 1e6,
		Make: func(ablate []string) (*testbed.Deployment, error) {
			return testbed.New(testbed.Config{
				Name:         "fw-snail",
				Cores:        1,
				CoreCfg:      slow,
				ChassisWatts: testbed.ScenarioChassisWatts,
				NICWatts:     testbed.ScenarioNICWatts,
				NewNF: func(core int) (nf.Func, error) {
					return nf.NewFirewall(fmt.Sprintf("fw-core%d", core),
						nf.NewLinearMatcher(testbed.FirewallRules(0))), nil
				},
			})
		},
		Workload: testbed.E6Workload,
	}
	_, err := Run(target, quick())
	if !errors.Is(err, ErrNoSaturation) {
		t.Fatalf("want ErrNoSaturation, got %v", err)
	}
}
