package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errtype enforces the sentinel-error contract: every exported
// package-level Err* variable is a stable sentinel (built with errors.New
// or a dedicated error type, never fmt.Errorf), and every fmt.Errorf that
// mentions a sentinel wraps it with %w so errors.Is keeps working through
// the chain.
func errtype(p *pass) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				checkSentinelSpec(p, vs)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorfWrap(p, call)
			return true
		})
	}
}

func isSentinelName(name string) bool {
	return strings.HasPrefix(name, "Err") && ast.IsExported(name)
}

func checkSentinelSpec(p *pass, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if !isSentinelName(name.Name) {
			continue
		}
		obj := p.info.Defs[name]
		if obj == nil {
			continue
		}
		if !implementsError(obj.Type()) {
			p.report(name.Pos(), RuleErrType,
				"exported "+name.Name+" is not an error value",
				"sentinels must implement error; use errors.New or a dedicated error type")
			continue
		}
		if i >= len(vs.Values) {
			p.report(name.Pos(), RuleErrType,
				"exported sentinel "+name.Name+" has no initializer",
				"initialize at declaration so the sentinel identity is fixed for errors.Is")
			continue
		}
		init := ast.Unparen(vs.Values[i])
		if call, ok := init.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
				p.report(name.Pos(), RuleErrType,
					"sentinel "+name.Name+" built with fmt.Errorf is not a stable typed sentinel",
					"use errors.New(\"...\") or a dedicated error type so identity survives wrapping")
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel (an
// exported Err* error value) without enough %w verbs to wrap it.
func checkErrorfWrap(p *pass, call *ast.CallExpr) {
	fn := calleeFunc(p.info, call)
	if fn == nil || !isPkgFunc(fn, "fmt") || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps := strings.Count(format, "%w") - strings.Count(format, "%%w")
	var sentinels []string
	for _, arg := range call.Args[1:] {
		var id *ast.Ident
		switch a := ast.Unparen(arg).(type) {
		case *ast.Ident:
			id = a
		case *ast.SelectorExpr:
			id = a.Sel
		default:
			continue
		}
		obj := identObj(p.info, id)
		if obj == nil || !isSentinelName(obj.Name()) {
			continue
		}
		if _, isVar := obj.(*types.Var); !isVar || !implementsError(obj.Type()) {
			continue
		}
		sentinels = append(sentinels, obj.Name())
	}
	if len(sentinels) > wraps {
		p.report(call.Pos(), RuleErrType,
			"fmt.Errorf mentions sentinel "+strings.Join(sentinels, ", ")+" without wrapping via %w",
			"use %w for the sentinel so errors.Is/errors.As see through the chain")
	}
}
