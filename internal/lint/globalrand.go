package lint

import (
	"go/ast"
	"go/types"
)

// randSourceCtors are the math/rand constructors that take an explicit
// seed (or explicit seed material) and are therefore allowed as the
// argument of rand.New.
var randSourceCtors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// randExemptFuncs are math/rand package-level functions that do not touch
// the shared global generator.
var randExemptFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// globalrand flags use of the global math/rand generator and rand.New
// calls whose source is not visibly seeded. All pipeline randomness must
// flow through internal/stats' seeded SplitMix64 so (seed, trial) replay
// is exact.
func globalrand(p *pass) {
	for id, obj := range p.info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue // methods on *rand.Rand are fine: the instance was vetted at construction
		}
		if randExemptFuncs[fn.Name()] {
			continue
		}
		p.report(id.Pos(), RuleGlobalRand,
			"global rand."+fn.Name()+" draws from the shared unseeded generator",
			"thread a seeded RNG through (internal/stats SplitMix64) instead of the math/rand globals")
	}

	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.info, call)
			if fn == nil || fn.Name() != "New" || fn.Pkg() == nil ||
				!isRandPath(fn.Pkg().Path()) || !isPkgFunc(fn, fn.Pkg().Path()) {
				return true
			}
			if len(call.Args) == 1 {
				if src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
					if ctor := calleeFunc(p.info, src); ctor != nil && ctor.Pkg() != nil &&
						isRandPath(ctor.Pkg().Path()) && randSourceCtors[ctor.Name()] {
						return true // rand.New(rand.NewSource(seed)): explicitly seeded
					}
				}
			}
			p.report(call.Pos(), RuleGlobalRand,
				"rand.New with an opaque source cannot be audited for seeding",
				"construct the source inline: rand.New(rand.NewSource(seed)), or use internal/stats")
			return true
		})
	}
}
