package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzerGoldens runs each rule's testdata corpus (positive,
// negative, and suppressed cases) and asserts the exact findings —
// positions, messages, and fix hints — against the expect.txt golden.
func TestAnalyzerGoldens(t *testing.T) {
	rules := []string{"wallclock", "globalrand", "maporder", "simconc", "errtype", "allowmeta"}
	for _, rule := range rules {
		t.Run(rule, func(t *testing.T) {
			dir := filepath.Join("testdata", rule)
			findings, err := Run(Config{Dir: dir})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteText(&buf, findings); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(dir, "expect.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldensCoverEveryRule guards the corpus itself: each analyzer must
// have at least one positive case, so a rule silently going dead fails
// here rather than in production.
func TestGoldensCoverEveryRule(t *testing.T) {
	seen := map[string]bool{}
	dirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		data, err := os.ReadFile(filepath.Join("testdata", d.Name(), "expect.txt"))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) >= 2 {
				seen[parts[1]] = true
			}
		}
	}
	for _, rule := range append(KnownRules(), RuleAllow) {
		if !seen[rule] {
			t.Errorf("no golden case exercises rule %s", rule)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text, rule, reason string
		ok                 bool
	}{
		{"//fairlint:allow wallclock operator log only", "wallclock", "operator log only", true},
		{"//fairlint:allow wallclock", "wallclock", "", true},
		{"//fairlint:allow", "", "", true},
		{"//fairlint:allow  maporder   spaced   out  ", "maporder", "spaced out", true},
		{"//fairlint:allowwallclock smushed", "", "", false},
		{"// fairlint:allow wallclock spaced directive is not a directive", "", "", false},
		{"// ordinary comment", "", "", false},
		{"//fairlint:deny wallclock", "", "", false},
	}
	for _, c := range cases {
		rule, reason, ok := ParseAllow(c.text)
		if rule != c.rule || reason != c.reason || ok != c.ok {
			t.Errorf("ParseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, rule, reason, ok, c.rule, c.reason, c.ok)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel, pat string
		want     bool
	}{
		{".", "./...", true},
		{"internal/sim", "./...", true},
		{"internal/sim", "./internal/...", true},
		{"internal/sim", "internal/...", true},
		{"internal/sim", "./internal/sim", true},
		{"internal/simulator", "./internal/sim", false},
		{"internal/simulator", "./internal/sim/...", false},
		{"internal/sim/sub", "./internal/sim/...", true},
		{".", ".", true},
		{"cmd/fairsim", ".", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.rel, c.pat, got, c.want)
		}
	}
}

// TestSuppressedFindingsStaySuppressed pins the allow semantics: the
// corpus contains suppressed positives (same-line and line-above allows)
// and none of them may reappear as findings.
func TestSuppressedFindingsStaySuppressed(t *testing.T) {
	for _, dir := range []string{"wallclock", "globalrand", "maporder", "errtype"} {
		findings, err := Run(Config{Dir: filepath.Join("testdata", dir)})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			if f.Rule == RuleAllow {
				t.Errorf("%s corpus: allow machinery flagged a defective suppression: %s", dir, f)
			}
		}
	}
}
