// Corpus for the maporder rule: map iteration whose order reaches a
// writer or escapes through an unsorted append is flagged; the
// collect-sort-iterate idiom and order-insensitive sinks are fine.
package mapordercase

import (
	"fmt"
	"io"
	"sort"
)

func bad(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badEscape(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func badHelper(w io.Writer, m map[string]int) {
	for k := range m {
		emit(w, k)
	}
}

func emit(w io.Writer, s string) {
	_, _ = io.WriteString(w, s)
}

func good(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func goodSet(m map[string]int) map[string]struct{} {
	set := make(map[string]struct{}, len(m))
	for k := range m {
		set[k] = struct{}{}
	}
	return set
}

func suppressed(m map[string]int) []int {
	var sums []int
	for _, v := range m {
		sums = append(sums, v) //fairlint:allow maporder consumed by an order-insensitive integer sum
	}
	return sums
}
