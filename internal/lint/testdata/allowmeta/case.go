// Corpus for the allow meta-rule: a suppression must name a known rule,
// carry a reason, and actually suppress something.
package allowmetacase

import "time"

func properlySuppressed() time.Time {
	return time.Now() //fairlint:allow wallclock demo timestamp for docs output only
}

func missingReason() time.Time {
	return time.Now() //fairlint:allow wallclock
}

//fairlint:allow rainbow this rule does not exist
func unknownRule() {}

func unused() {
	//fairlint:allow wallclock nothing on this line reads the clock
}

// A directive naming a fairvet-owned rule is not fairlint's to police:
// no reason, nothing suppressed, and still no finding from fairlint.
//
//fairlint:allow taintreach
func foreignRuleDeferred() {}
