// Corpus for the errtype rule: sentinels must be stable error values and
// fmt.Errorf chains mentioning one must wrap with %w.
package errtypecase

import (
	"errors"
	"fmt"
)

var ErrGood = errors.New("errtypecase: stable sentinel")

var ErrBadFmt = fmt.Errorf("errtypecase: built at init with %d args", 1)

var ErrCount = 7

var ErrLater error

type flakyError struct{ code int }

func (e *flakyError) Error() string { return "flaky" }

var ErrTyped error = &flakyError{code: 1}

func init() {
	ErrLater = errors.New("errtypecase: assigned too late")
}

func wrapGood() error {
	return fmt.Errorf("loading config: %w", ErrGood)
}

func wrapBad() error {
	return fmt.Errorf("loading config: %v", ErrGood)
}

func wrapSuppressed() error {
	return fmt.Errorf("loading config: %v", ErrGood) //fairlint:allow errtype migration shim, callers match on string until v2
}
