// The runner package dir is allowlisted: wall time here is operational
// (deadlines, retries), not measurement, so nothing below is flagged.
package runner

import "time"

func Deadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

func Nap(d time.Duration) {
	time.Sleep(d)
}
