// The telemetry package dir is allowlisted: its whole purpose is
// recording wall-clock execution history (spans, samples) outside the
// determinism surface, so nothing below is flagged.
package telemetry

import "time"

func Stamp() time.Time {
	return time.Now()
}

func SinceStart(start time.Time) time.Duration {
	return time.Since(start)
}
