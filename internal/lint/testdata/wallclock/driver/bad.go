// A non-allowlisted sibling of the exempt dirs: the allowlist is
// per-package, not a prefix grab, so wall-clock reads here still fire.
package driver

import "time"

func Leaks() time.Time {
	return time.Now()
}
