// Corpus for the wallclock rule: wall-clock reads are flagged outside
// allowlisted packages; time types and constants are fine.
package wallclockcase

import "time"

const tick = 5 * time.Millisecond // constants carry no nondeterminism

func bad() time.Time {
	return time.Now()
}

func alsoBad(d time.Duration) {
	time.Sleep(d)
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since)
}

func good(d time.Duration) time.Duration {
	return d.Round(tick)
}

func suppressed() time.Time {
	return time.Now() //fairlint:allow wallclock operator-facing log timestamp, never enters artifacts
}
