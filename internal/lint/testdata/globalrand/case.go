// Corpus for the globalrand rule: globals and opaque sources are
// flagged; explicitly seeded instances and their methods are fine.
package globalrandcase

import "math/rand"

func bad() int {
	return rand.Intn(10)
}

func alsoBad() *rand.Rand {
	return rand.New(opaqueSource())
}

func opaqueSource() rand.Source {
	return rand.NewSource(1)
}

func good() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func suppressed() float64 {
	return rand.Float64() //fairlint:allow globalrand jitter for demo output only, not measured
}
