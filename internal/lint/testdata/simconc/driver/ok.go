// Outside the event-loop package set, concurrency is not fairlint's
// business: nothing in this file is flagged.
package driver

func fanOut(work []func()) {
	done := make(chan struct{})
	for _, w := range work {
		w := w
		go func() {
			w()
			done <- struct{}{}
		}()
	}
	for range work {
		<-done
	}
}
