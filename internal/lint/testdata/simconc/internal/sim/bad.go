// Corpus for the simconc rule: this file mirrors a deterministic
// event-loop package dir (internal/sim), where every concurrency
// construct below is flagged.
package sim

import "sync"

type Loop struct {
	mu sync.Mutex
	ch chan int
}

func (l *Loop) Spawn() {
	go l.drain()
}

func (l *Loop) drain() {
	for range l.ch {
	}
}

func (l *Loop) send(v int) {
	l.mu.Lock()
	l.ch <- v
	l.mu.Unlock()
}

func (l *Loop) recv() int {
	return <-l.ch
}
