package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loadedPkg is one type-checked package of the analyzed tree.
type loadedPkg struct {
	rel        string // module-relative dir, "." for the root package
	importPath string // modulePath + "/" + rel ("" when no go.mod)
	files      []*ast.File
	types      *types.Package
	info       *types.Info
}

// pass is the per-package context handed to each analyzer.
type pass struct {
	cfg    *Config
	fset   *token.FileSet
	rel    string
	pkg    *types.Package
	files  []*ast.File
	info   *types.Info
	report func(pos token.Pos, rule, msg, hint string)
}

// load discovers, parses, and type-checks every package under cfg.Dir
// matching cfg.Patterns, in deterministic dependency order. Test files
// (_test.go) are exempt from fairlint: tests may use wall time and ad-hoc
// randomness freely, because they never feed artifacts.
func load(cfg *Config) ([]*loadedPkg, *token.FileSet, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	modPath := readModulePath(filepath.Join(root, "go.mod"))

	rels, err := discover(root, cfg.Patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	byRel := make(map[string]*loadedPkg, len(rels))
	for _, rel := range rels {
		files, err := parseDir(fset, filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, nil, err
		}
		if len(files) == 0 {
			continue
		}
		ip := rel
		if modPath != "" {
			if rel == "." {
				ip = modPath
			} else {
				ip = modPath + "/" + rel
			}
		}
		byRel[rel] = &loadedPkg{rel: rel, importPath: ip, files: files}
	}

	order, err := topoOrder(byRel, modPath)
	if err != nil {
		return nil, nil, err
	}

	imp := &chainImporter{
		done: map[string]*types.Package{},
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var out []*loadedPkg
	for _, rel := range order {
		pkg := byRel[rel]
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(pkg.importPath, fset, pkg.files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %w", pkg.rel, err)
		}
		pkg.types = tp
		pkg.info = info
		if pkg.importPath != "" && pkg.importPath != pkg.rel {
			imp.done[pkg.importPath] = tp
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// chainImporter serves already-checked module packages from cache and
// defers everything else (the standard library, unmatched module
// packages) to the stdlib source importer.
type chainImporter struct {
	done map[string]*types.Package
	src  types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.done[path]; ok {
		return p, nil
	}
	return c.src.ImportFrom(path, dir, mode)
}

// discover walks root for package dirs (dirs holding at least one
// non-test .go file), returning sorted module-relative slash paths that
// match at least one pattern. Dirs named testdata or vendor, and dirs
// starting with "." or "_", are skipped, mirroring the go tool.
func discover(root string, patterns []string) ([]string, error) {
	var rels []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if !matchAnyPattern(rel, patterns) {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isLintableFile(e.Name()) {
				rels = append(rels, rel)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

func matchAnyPattern(rel string, patterns []string) bool {
	for _, p := range patterns {
		if matchPattern(rel, p) {
			return true
		}
	}
	return false
}

// matchPattern implements go-style package patterns relative to the
// module root: "./..." matches everything, "./x/..." a subtree,
// "./x" (or "x") exactly one package dir, "." the root package.
func matchPattern(rel, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." {
		return true
	}
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == base || strings.HasPrefix(rel, base+"/")
	}
	if pat == "" || pat == "." {
		return rel == "."
	}
	return rel == pat
}

// parseDir parses every non-test .go file of dir in sorted order, with
// comments (needed for //fairlint:allow directives).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && isLintableFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// topoOrder returns package rel paths in dependency order (imports
// first), alphabetical among independents, so type-checking can cache
// module-internal packages before their importers need them.
func topoOrder(byRel map[string]*loadedPkg, modPath string) ([]string, error) {
	rels := make([]string, 0, len(byRel))
	for rel := range byRel {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	deps := func(pkg *loadedPkg) []string {
		var out []string
		for _, f := range pkg.files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				var rel string
				switch {
				case modPath != "" && path == modPath:
					rel = "."
				case modPath != "" && strings.HasPrefix(path, modPath+"/"):
					rel = strings.TrimPrefix(path, modPath+"/")
				default:
					continue
				}
				if _, ok := byRel[rel]; ok {
					out = append(out, rel)
				}
			}
		}
		sort.Strings(out)
		return out
	}

	const (
		unseen = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []string
	var visit func(rel string) error
	visit = func(rel string) error {
		switch state[rel] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", rel)
		}
		state[rel] = visiting
		for _, dep := range deps(byRel[rel]) {
			if dep == rel {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[rel] = done
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// readModulePath extracts the module path from a go.mod, or "" if the
// file is absent (e.g. a testdata corpus root).
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// relFile converts an absolute filename into a slash-separated path
// relative to the analyzed root, keeping output machine-independent.
func relFile(root, filename string) string {
	abs, err := filepath.Abs(root)
	if err == nil {
		if rel, err := filepath.Rel(abs, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
