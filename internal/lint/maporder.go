package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporder flags `range` over a map whose loop body makes iteration order
// observable: writing to an io.Writer (directly, via fmt.Fprint*/Sprint*,
// or by passing a writer to a helper) or appending to a slice declared
// outside the loop. The escaping-append case is cleared when a sort.* or
// slices.Sort* call on the same slice follows the loop in the enclosing
// function — the canonical collect-keys-then-sort idiom. Loops that only
// feed another map or set are order-insensitive and never flagged.
func maporder(p *pass) {
	for _, f := range p.files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, file, rs)
			return true
		})
	}
}

func checkMapRange(p *pass, file *ast.File, rs *ast.RangeStmt) {
	var writePos token.Pos = token.NoPos
	var writeWhat string
	type escAppend struct {
		pos token.Pos
		obj types.Object
	}
	var escapes []escAppend

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if writePos == token.NoPos {
				if what, ok := sensitiveWrite(p, n); ok {
					writePos, writeWhat = n.Pos(), what
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObj(p.info, id)
				if obj == nil {
					continue
				}
				if obj.Pos() < rs.Pos() || obj.Pos() >= rs.End() {
					escapes = append(escapes, escAppend{pos: n.Pos(), obj: obj})
				}
			}
		}
		return true
	})

	if writePos != token.NoPos {
		p.report(writePos, RuleMapOrder,
			"map iteration order reaches "+writeWhat+" inside the loop",
			"iterate sorted keys: collect them, sort.Strings(keys), then index the map")
		return
	}
	for _, esc := range escapes {
		if sortedAfter(p, file, rs, esc.obj) {
			continue
		}
		p.report(esc.pos, RuleMapOrder,
			"append to "+esc.obj.Name()+" leaks map iteration order out of the loop",
			"sort "+esc.obj.Name()+" (sort.Strings/sort.Slice) before it is consumed")
	}
}

// sensitiveWrite reports whether a call inside a map-range body makes
// iteration order observable, and names the sink for the message.
func sensitiveWrite(p *pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.info, call)
	if fn != nil && fn.Pkg() != nil {
		sig, _ := fn.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		switch {
		case !isMethod && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Fprint") ||
				strings.HasPrefix(fn.Name(), "Sprint") ||
				strings.HasPrefix(fn.Name(), "Print") ||
				strings.HasPrefix(fn.Name(), "Append")):
			return "fmt." + fn.Name(), true
		case !isMethod && fn.Pkg().Path() == "io" && fn.Name() == "WriteString":
			return "io.WriteString", true
		case isMethod && (strings.HasPrefix(fn.Name(), "Write") || strings.HasPrefix(fn.Name(), "Print")):
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if implementsWriter(p.info.TypeOf(sel.X)) {
					return "an io.Writer method (" + fn.Name() + ")", true
				}
			}
		}
	}
	// A writer handed to any helper makes the helper's output order-dependent.
	for _, arg := range call.Args {
		t := p.info.TypeOf(arg)
		if t != nil && implementsWriter(t) {
			return "a helper taking an io.Writer", true
		}
	}
	return "", false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortFuncs are the stdlib sorting entry points that establish a
// deterministic order on a slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether, later in the function enclosing rs, a
// stdlib sort call mentions obj — the collect-then-sort idiom that makes
// the escaped append order-safe.
func sortedAfter(p *pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	body := enclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(p.info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		byName := sortFuncs[fn.Pkg().Path()]
		if byName == nil || !byName[fn.Name()] || !isPkgFunc(fn, fn.Pkg().Path()) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(p.info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
