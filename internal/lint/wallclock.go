package lint

import (
	"go/types"
)

// wallclockFuncs are the package-level time functions that read or wait on
// the wall clock. Types and constants (time.Duration, time.Millisecond)
// are fine: they carry no nondeterminism.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// wallclock flags wall-clock reads outside the allowlisted packages.
// Virtual time must come from the sim clock so seeded replay is
// byte-identical; wall time is operational only (runner deadlines), and
// each exception elsewhere needs a //fairlint:allow wallclock <reason>.
func wallclock(p *pass) {
	if inDirs(p.rel, p.cfg.WallclockAllow) {
		return
	}
	for id, obj := range p.info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || !isPkgFunc(fn, "time") || !wallclockFuncs[fn.Name()] {
			continue
		}
		p.report(id.Pos(), RuleWallclock,
			"wall-clock call time."+fn.Name()+" in deterministic code",
			"derive time from the sim clock, or justify with //fairlint:allow wallclock <reason>")
	}
}
