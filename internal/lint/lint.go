// Package lint implements fairlint, a repo-specific static-analysis pass
// that machine-checks the determinism invariants the fairbench pipeline
// rests on. Every verdict this reproduction emits is only credible because
// the sim → testbed → verdict pipeline replays byte-identically from a
// seed; fairlint enforces the conventions that keep it that way:
//
//   - wallclock:  no time.Now/Since/Sleep outside allowlisted packages —
//     virtual time must come from the sim clock.
//   - globalrand: no global math/rand functions and no rand.New with an
//     opaque source — randomness flows through seeded internal/stats RNGs.
//   - maporder:   no map iteration that writes to an io.Writer or escapes
//     through an unsorted append — map order would leak into artifacts.
//   - simconc:    no goroutines, channels, or sync primitives inside the
//     single-threaded deterministic event-loop packages.
//   - errtype:    exported Err* variables are stable sentinels built with
//     errors.New (or a dedicated error type), and fmt.Errorf chains that
//     mention one wrap it with %w.
//
// Findings can be suppressed with a `//fairlint:allow <rule> <reason>`
// comment on the offending line or the line above; an allow with no
// reason, an unknown rule, or one that suppresses nothing is itself a
// finding (rule "allow").
//
// The implementation is pure standard library (go/parser, go/ast,
// go/types) — no golang.org/x/tools dependency.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Rule identifiers, stable across releases; these are the names accepted
// by //fairlint:allow comments.
const (
	RuleWallclock  = "wallclock"
	RuleGlobalRand = "globalrand"
	RuleMapOrder   = "maporder"
	RuleSimConc    = "simconc"
	RuleErrType    = "errtype"
	// RuleAllow reports defective suppression comments. It is emitted by
	// the allow machinery itself and cannot be suppressed.
	RuleAllow = "allow"
)

// knownRules is the set of rule names a //fairlint:allow comment may name.
var knownRules = map[string]bool{
	RuleWallclock:  true,
	RuleGlobalRand: true,
	RuleMapOrder:   true,
	RuleSimConc:    true,
	RuleErrType:    true,
}

// foreignRules are rule names owned by fairvet (internal/vet), which
// shares the //fairlint:allow grammar. fairlint accepts directives
// naming them without further checks — reason and usage policing for
// these rules happens in fairvet, which symmetrically ignores
// directives naming fairlint's rules. internal/vet has a test pinning
// this list to its actual rule set (lint cannot import vet: vet is
// built on this package's loader).
var foreignRules = map[string]bool{
	"taintreach": true,
	"seedprov":   true,
	"hotalloc":   true,
	"orderflow":  true,
}

// ForeignRules returns the fairvet-owned rule names fairlint accepts
// in allow directives, sorted.
func ForeignRules() []string {
	names := make([]string, 0, len(foreignRules))
	for name := range foreignRules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KnownRules returns the suppressible rule names in sorted order.
func KnownRules() []string {
	names := make([]string, 0, len(knownRules))
	for name := range knownRules {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Finding is one determinism-invariant violation. File is relative to the
// analyzed module root (slash-separated) so output is machine-independent
// and byte-identical across runs.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	Hint string `json:"hint,omitempty"`
}

// String renders a finding as "file:line:col: rule: msg (fix: hint)".
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// Config selects what to analyze and which packages are exempt from
// which rules. Zero-value fields take the documented defaults.
type Config struct {
	// Dir is the root of the tree to analyze (the module root). Required.
	Dir string
	// Patterns are package patterns relative to Dir: "./..." (everything),
	// "./sub/..." (a subtree), or "./sub" (one package). Defaults to ./...
	Patterns []string
	// WallclockAllow lists module-relative package dirs where wall-clock
	// time is legitimate (operational deadlines, not measurement).
	// Defaults to DefaultWallclockAllow.
	WallclockAllow []string
	// SimPackages lists module-relative package dirs whose event loops
	// must stay single-threaded deterministic (rule simconc). Defaults to
	// DefaultSimPackages.
	SimPackages []string
}

// DefaultWallclockAllow exempts the experiment runner, whose
// deadline/retry machinery legitimately needs wall time, and the
// telemetry package, whose entire purpose is recording wall-clock
// execution history outside the determinism surface. Command binaries
// are deliberately NOT allowlisted: each wall-clock use there must
// carry a //fairlint:allow with a recorded reason.
func DefaultWallclockAllow() []string { return []string{"internal/runner", "internal/telemetry"} }

// DefaultSimPackages is the set of packages whose event loops replay
// deterministically and therefore must not spawn goroutines, use
// channels, or touch sync primitives.
func DefaultSimPackages() []string {
	return []string{
		"internal/sim",
		"internal/hw",
		"internal/measure",
		"internal/fault",
		"internal/nf",
	}
}

func (c *Config) fillDefaults() {
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.WallclockAllow == nil {
		c.WallclockAllow = DefaultWallclockAllow()
	}
	if c.SimPackages == nil {
		c.SimPackages = DefaultSimPackages()
	}
}

// Run loads every package matched by cfg.Patterns under cfg.Dir, runs all
// analyzers, applies //fairlint:allow suppressions, and returns findings
// sorted by (file, line, col, rule, msg). The process working directory
// must be inside a Go module for module-internal imports to resolve (the
// stdlib source importer shells out to the go command for resolution).
func Run(cfg Config) ([]Finding, error) {
	cfg.fillDefaults()
	pkgs, fset, err := load(&cfg)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	var allows []*allowDirective
	allowIdx := map[string]map[int]*allowDirective{}
	for _, pkg := range pkgs {
		p := &pass{
			cfg:  &cfg,
			fset: fset,
			rel:  pkg.rel,
			pkg:  pkg.types,
			info: pkg.info,
		}
		p.files = pkg.files
		p.report = func(pos token.Pos, rule, msg, hint string) {
			position := fset.Position(pos)
			findings = append(findings, Finding{
				File: relFile(cfg.Dir, position.Filename),
				Line: position.Line,
				Col:  position.Column,
				Rule: rule,
				Msg:  msg,
				Hint: hint,
			})
		}
		for _, a := range collectAllows(fset, cfg.Dir, pkg.files) {
			allows = append(allows, a)
			byLine := allowIdx[a.file]
			if byLine == nil {
				byLine = map[int]*allowDirective{}
				allowIdx[a.file] = byLine
			}
			byLine[a.line] = a
		}
		wallclock(p)
		globalrand(p)
		maporder(p)
		simconc(p)
		errtype(p)
	}

	findings = applyAllows(findings, allows, allowIdx)
	sortFindings(findings)
	return findings, nil
}

// applyAllows drops findings covered by a matching //fairlint:allow on the
// same line or the line above, then appends RuleAllow findings for
// defective directives (unknown rule, missing reason, suppresses nothing).
func applyAllows(findings []Finding, allows []*allowDirective, idx map[string]map[int]*allowDirective) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if a := matchAllow(idx, f); a != nil {
			a.used = true
			continue
		}
		kept = append(kept, f)
	}
	for _, a := range allows {
		switch {
		case foreignRules[a.rule]:
			// Owned by fairvet: it applies the reason/usage policy for
			// its rules over the same directives.
		case !knownRules[a.rule]:
			kept = append(kept, Finding{
				File: a.file, Line: a.line, Col: a.col, Rule: RuleAllow,
				Msg:  fmt.Sprintf("fairlint:allow names unknown rule %q", a.rule),
				Hint: "known rules: " + joinRules() + " (fairvet rules: " + joinForeignRules() + ")",
			})
		case a.reason == "":
			kept = append(kept, Finding{
				File: a.file, Line: a.line, Col: a.col, Rule: RuleAllow,
				Msg:  "fairlint:allow " + a.rule + " has no reason",
				Hint: "state why the invariant may be broken here: //fairlint:allow " + a.rule + " <reason>",
			})
		case !a.used:
			kept = append(kept, Finding{
				File: a.file, Line: a.line, Col: a.col, Rule: RuleAllow,
				Msg:  "fairlint:allow " + a.rule + " suppresses nothing",
				Hint: "delete the stale suppression",
			})
		}
	}
	return kept
}

func matchAllow(idx map[string]map[int]*allowDirective, f Finding) *allowDirective {
	byLine := idx[f.File]
	if byLine == nil {
		return nil
	}
	if a := byLine[f.Line]; a != nil && a.rule == f.Rule {
		return a
	}
	if a := byLine[f.Line-1]; a != nil && a.rule == f.Rule {
		return a
	}
	return nil
}

func joinRules() string {
	out := ""
	for i, name := range KnownRules() {
		if i > 0 {
			out += ", "
		}
		out += name
	}
	return out
}

func joinForeignRules() string {
	out := ""
	for i, name := range ForeignRules() {
		if i > 0 {
			out += ", "
		}
		out += name
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return a.Hint < b.Hint
	})
}

// WriteText renders findings one per line in "file:line:col: rule: msg"
// form. Output is deterministic because findings arrive sorted.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (never null) followed by a
// newline. Field order and formatting are fixed, so equal findings always
// produce byte-identical output.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
