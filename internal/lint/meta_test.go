package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestModuleSelfLint is the linter's own acceptance gate: the tree must
// be clean (every historical violation fixed or justified with an
// explained allow), and two independent full runs must emit byte-identical
// JSON — the linter cannot demand determinism it does not itself have.
func TestModuleSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is not short")
	}
	root := moduleRoot(t)
	run := func() ([]Finding, []byte) {
		findings, err := Run(Config{Dir: root, Patterns: []string{"./..."}})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, findings); err != nil {
			t.Fatal(err)
		}
		return findings, buf.Bytes()
	}

	findings, first := run()
	for _, f := range findings {
		t.Errorf("tree not fairlint-clean: %s", f)
	}

	_, second := run()
	if !bytes.Equal(first, second) {
		t.Errorf("fairlint -json is not byte-identical across runs\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestWriteJSONShape pins the empty-findings encoding: an empty array
// (never null) with a trailing newline, so CI diffs and the byte-identity
// guarantee are stable.
func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q", got, "[]\n")
	}
}
